#include "index/block_postings.h"

#include <algorithm>
#include <string_view>

#include "common/binary_io.h"
#include "index/top_k.h"
#include "obs/hooks.h"

namespace ckr {
namespace {

/// Number of 128-entry blocks covering `postings`.
inline uint32_t BlocksFor(uint32_t postings) {
  return (postings + kPostingBlockSize - 1) / kPostingBlockSize;
}

}  // namespace

// ---- Builder ----

void BlockPostingsStore::Builder::AddTerm(Span<const uint32_t> docs,
                                          Span<const uint32_t> tfs,
                                          Span<const double> scores) {
  CKR_DCHECK(!finished_);
  CKR_DCHECK_EQ(docs.size(), tfs.size());
  CKR_DCHECK_EQ(docs.size(), scores.size());
  BlockPostingsStore& s = store_;
  if (s.term_block_offset_.empty()) {
    s.codec_ = codec_;
    s.term_block_offset_.push_back(0);
    s.block_doc_offset_.push_back(0);
    s.block_tf_offset_.push_back(0);
  }
  const uint32_t n = static_cast<uint32_t>(docs.size());
  s.term_postings_.push_back(n);
  s.num_postings_ += n;

  double term_max = 0.0;
  for (uint32_t begin = 0; begin < n; begin += kPostingBlockSize) {
    const uint32_t count = std::min(kPostingBlockSize, n - begin);
    // Doc column: gaps minus one, rebased on the previous block's last
    // doc (a term's first block starts from zero).
    const uint32_t base = begin == 0 ? 0 : docs[begin - 1] + 1;
    scratch_.resize(count);
    CKR_DCHECK_LE(base, docs[begin]);
    scratch_[0] = docs[begin] - base;
    for (uint32_t j = 1; j < count; ++j) {
      CKR_DCHECK_LT(docs[begin + j - 1], docs[begin + j]);
      scratch_[j] = docs[begin + j] - docs[begin + j - 1] - 1;
    }
    EncodeBlock(codec_, scratch_.data(), count, &s.doc_pool_);
    s.block_doc_offset_.push_back(s.doc_pool_.size());
    // Tf column: tf minus one (every posting has tf >= 1).
    for (uint32_t j = 0; j < count; ++j) {
      CKR_DCHECK_GE(tfs[begin + j], 1u);
      scratch_[j] = tfs[begin + j] - 1;
    }
    EncodeBlock(codec_, scratch_.data(), count, &s.tf_pool_);
    s.block_tf_offset_.push_back(s.tf_pool_.size());

    s.block_last_doc_.push_back(docs[begin + count - 1]);
    double block_max = 0.0;
    for (uint32_t j = 0; j < count; ++j) {
      block_max = std::max(block_max, scores[begin + j]);
    }
    s.block_max_score_.push_back(block_max);
    term_max = std::max(term_max, block_max);
  }
  s.term_block_offset_.push_back(
      static_cast<uint32_t>(s.block_last_doc_.size()));
  s.term_max_score_.push_back(term_max);
}

BlockPostingsStore BlockPostingsStore::Builder::Finish() {
  CKR_DCHECK(!finished_);
  finished_ = true;
  BlockPostingsStore& s = store_;
  if (s.term_block_offset_.empty()) {
    s.codec_ = codec_;
    s.term_block_offset_.push_back(0);
    s.block_doc_offset_.push_back(0);
    s.block_tf_offset_.push_back(0);
  }
  s.doc_pool_.shrink_to_fit();
  s.tf_pool_.shrink_to_fit();
  return std::move(store_);
}

// ---- Store ----

uint32_t BlockPostingsStore::BlockDocCount(uint32_t tid,
                                           uint32_t block) const {
  CKR_DCHECK_LE(term_block_offset_[tid], block);
  CKR_DCHECK_LT(block, term_block_offset_[tid + 1]);
  if (block + 1 < term_block_offset_[tid + 1]) return kPostingBlockSize;
  const uint32_t full_blocks = term_block_offset_[tid + 1] -
                               term_block_offset_[tid] - 1;
  return term_postings_[tid] - full_blocks * kPostingBlockSize;
}

Status BlockPostingsStore::DecodeBlockInto(uint32_t tid, uint32_t block,
                                           uint32_t* docs,
                                           uint32_t* tfs) const {
  const uint32_t count = BlockDocCount(tid, block);
  const size_t doc_begin = block_doc_offset_[block];
  Status s = DecodeBlock(codec_, doc_pool_.data() + doc_begin,
                         block_doc_offset_[block + 1] - doc_begin, count,
                         docs);
  if (!s.ok()) return s;
  const size_t tf_begin = block_tf_offset_[block];
  s = DecodeBlock(codec_, tf_pool_.data() + tf_begin,
                  block_tf_offset_[block + 1] - tf_begin, count, tfs);
  if (!s.ok()) return s;
  const uint32_t base =
      block == term_block_offset_[tid] ? 0 : block_last_doc_[block - 1] + 1;
  docs[0] += base;
  for (uint32_t j = 1; j < count; ++j) {
    docs[j] += docs[j - 1] + 1;
  }
  for (uint32_t j = 0; j < count; ++j) {
    tfs[j] += 1;
  }
  return Status::OK();
}

Status BlockPostingsStore::ValidateBlocksDecode(uint64_t num_docs) const {
  uint32_t docs[kPostingBlockSize];
  uint32_t tfs[kPostingBlockSize];
  for (size_t t = 0; t < NumTerms(); ++t) {
    const uint32_t tid = static_cast<uint32_t>(t);
    for (uint32_t b = term_block_offset_[t]; b < term_block_offset_[t + 1];
         ++b) {
      Status s = DecodeBlockInto(tid, b, docs, tfs);
      if (!s.ok()) return s;
      const uint32_t count = BlockDocCount(tid, b);
      for (uint32_t j = 0; j < count; ++j) {
        if (j > 0 && docs[j] <= docs[j - 1]) {
          return Status::InvalidArgument(
              "block postings: doc ids not strictly ascending");
        }
        if (docs[j] >= num_docs) {
          return Status::InvalidArgument(
              "block postings: doc id out of range");
        }
        if (tfs[j] == 0) {
          return Status::InvalidArgument("block postings: zero tf");
        }
      }
      if (docs[count - 1] != block_last_doc_[b]) {
        return Status::InvalidArgument(
            "block postings: skip pointer disagrees with block contents");
      }
    }
  }
  return Status::OK();
}

size_t BlockPostingsStore::MemoryBytes() const {
  return doc_pool_.capacity() + tf_pool_.capacity() +
         term_block_offset_.capacity() * sizeof(uint32_t) +
         term_postings_.capacity() * sizeof(uint32_t) +
         term_max_score_.capacity() * sizeof(double) +
         block_last_doc_.capacity() * sizeof(uint32_t) +
         block_max_score_.capacity() * sizeof(double) +
         block_doc_offset_.capacity() * sizeof(uint64_t) +
         block_tf_offset_.capacity() * sizeof(uint64_t);
}

void BlockPostingsStore::AppendTo(BinaryWriter* writer,
                                  bool include_maxes) const {
  const size_t terms = NumTerms();
  const size_t blocks = NumBlocks();
  writer->U64(static_cast<uint64_t>(terms));
  writer->U64(static_cast<uint64_t>(blocks));
  writer->U64(num_postings_);
  for (uint32_t v : term_block_offset_) writer->U32(v);
  for (uint32_t v : term_postings_) writer->U32(v);
  for (uint32_t v : block_last_doc_) writer->U32(v);
  for (uint64_t v : block_doc_offset_) writer->U64(v);
  for (uint64_t v : block_tf_offset_) writer->U64(v);
  CKR_CHECK(doc_pool_.size() <= 0xffffffffull);
  CKR_CHECK(tf_pool_.size() <= 0xffffffffull);
  auto pool_view = [](const std::vector<uint8_t>& pool) {
    return pool.empty()
               ? std::string_view()
               : std::string_view(reinterpret_cast<const char*>(pool.data()),
                                  pool.size());
  };
  writer->Str(pool_view(doc_pool_));
  writer->Str(pool_view(tf_pool_));
  if (include_maxes) {
    for (double v : block_max_score_) writer->F64(v);
    for (double v : term_max_score_) writer->F64(v);
  }
}

Status BlockPostingsStore::LoadColumns(BinaryReader* reader,
                                       bool expect_maxes) {
  const uint64_t terms = reader->U64();
  const uint64_t blocks = reader->U64();
  num_postings_ = reader->U64();
  if (!reader->ok()) {
    return Status::InvalidArgument("block postings: truncated header");
  }
  // Every declared count is checked against the bytes actually present
  // before any resize (the store-pack deserialization discipline).
  auto fits = [&](uint64_t count, size_t elem) {
    return count <= reader->remaining() / elem;
  };
  if (!fits(terms + 1, 4) || terms > 0xffffffffull) {
    return Status::InvalidArgument("block postings: term count too large");
  }
  if (!fits(blocks, 4) || blocks > 0xfffffffeull) {
    return Status::InvalidArgument("block postings: block count too large");
  }
  term_block_offset_.resize(static_cast<size_t>(terms) + 1);
  for (uint32_t& v : term_block_offset_) v = reader->U32();
  term_postings_.resize(static_cast<size_t>(terms));
  for (uint32_t& v : term_postings_) v = reader->U32();
  if (!fits(blocks, 4)) {
    return Status::InvalidArgument("block postings: truncated skip column");
  }
  block_last_doc_.resize(static_cast<size_t>(blocks));
  for (uint32_t& v : block_last_doc_) v = reader->U32();
  if (!fits(2 * (blocks + 1), 8)) {
    return Status::InvalidArgument("block postings: truncated offsets");
  }
  block_doc_offset_.resize(static_cast<size_t>(blocks) + 1);
  for (uint64_t& v : block_doc_offset_) v = reader->U64();
  block_tf_offset_.resize(static_cast<size_t>(blocks) + 1);
  for (uint64_t& v : block_tf_offset_) v = reader->U64();
  const std::string doc_bytes = reader->Str();
  doc_pool_.assign(doc_bytes.begin(), doc_bytes.end());
  const std::string tf_bytes = reader->Str();
  tf_pool_.assign(tf_bytes.begin(), tf_bytes.end());
  if (expect_maxes) {
    if (!fits(blocks + terms, 8)) {
      return Status::InvalidArgument("block postings: truncated max columns");
    }
    block_max_score_.resize(static_cast<size_t>(blocks));
    for (double& v : block_max_score_) v = reader->F64();
    term_max_score_.resize(static_cast<size_t>(terms));
    for (double& v : term_max_score_) v = reader->F64();
  }
  if (!reader->ok()) {
    return Status::InvalidArgument("block postings: truncated payload");
  }
  return Status::OK();
}

Status BlockPostingsStore::ValidateAfterLoad(bool expect_maxes) {
  const size_t terms = NumTerms();
  const size_t blocks = NumBlocks();
  if (term_block_offset_.front() != 0 ||
      term_block_offset_.back() != blocks) {
    return Status::InvalidArgument("block postings: bad block CSR bounds");
  }
  uint64_t postings = 0;
  for (size_t t = 0; t < terms; ++t) {
    if (term_block_offset_[t] > term_block_offset_[t + 1]) {
      return Status::InvalidArgument("block postings: block CSR not sorted");
    }
    const uint32_t nblocks = term_block_offset_[t + 1] - term_block_offset_[t];
    if (nblocks != BlocksFor(term_postings_[t])) {
      return Status::InvalidArgument(
          "block postings: block count disagrees with posting count");
    }
    postings += term_postings_[t];
  }
  if (postings != num_postings_) {
    return Status::InvalidArgument("block postings: posting count mismatch");
  }
  if (block_doc_offset_.front() != 0 ||
      block_doc_offset_.back() != doc_pool_.size() ||
      block_tf_offset_.front() != 0 ||
      block_tf_offset_.back() != tf_pool_.size()) {
    return Status::InvalidArgument("block postings: pool offset bounds");
  }
  for (size_t b = 0; b < blocks; ++b) {
    if (block_doc_offset_[b] > block_doc_offset_[b + 1] ||
        block_tf_offset_[b] > block_tf_offset_[b + 1]) {
      return Status::InvalidArgument("block postings: offsets not sorted");
    }
  }
  if (expect_maxes && (block_max_score_.size() != blocks ||
                       term_max_score_.size() != terms)) {
    return Status::InvalidArgument("block postings: max column size");
  }
  return Status::OK();
}

StatusOr<BlockPostingsStore> BlockPostingsStore::ReadFrom(
    BinaryReader* reader, BlockCodec codec, bool expect_maxes) {
  BlockPostingsStore store;
  store.codec_ = codec;
  Status s = store.LoadColumns(reader, expect_maxes);
  if (!s.ok()) return s;
  s = store.ValidateAfterLoad(expect_maxes);
  if (!s.ok()) return s;
  return store;
}

Status BlockPostingsStore::RecomputeMaxScores(
    Span<const double> term_idf, Span<const double> default_norm) {
  const Bm25Params defaults;
  const size_t terms = NumTerms();
  if (term_idf.size() != terms) {
    return Status::InvalidArgument("recompute maxes: idf size mismatch");
  }
  block_max_score_.assign(NumBlocks(), 0.0);
  term_max_score_.assign(terms, 0.0);
  uint32_t docs[kPostingBlockSize];
  uint32_t tfs[kPostingBlockSize];
  for (size_t t = 0; t < terms; ++t) {
    const uint32_t tid = static_cast<uint32_t>(t);
    double term_max = 0.0;
    for (uint32_t b = term_block_offset_[t]; b < term_block_offset_[t + 1];
         ++b) {
      Status s = DecodeBlockInto(tid, b, docs, tfs);
      if (!s.ok()) return s;
      const uint32_t count = BlockDocCount(tid, b);
      double block_max = 0.0;
      for (uint32_t j = 0; j < count; ++j) {
        if (docs[j] >= default_norm.size()) {
          return Status::InvalidArgument("recompute maxes: doc out of range");
        }
        const double tf = static_cast<double>(tfs[j]);
        const double c = term_idf[t] * tf * (defaults.k1 + 1.0) /
                         (tf + default_norm[docs[j]]);
        block_max = std::max(block_max, c);
      }
      block_max_score_[b] = block_max;
      term_max = std::max(term_max, block_max);
    }
    term_max_score_[t] = term_max;
  }
  return Status::OK();
}

// ---- PostingCursor ----

PostingCursor::PostingCursor(const BlockPostingsStore* store, uint32_t tid)
    : store_(store), tid_(tid) {
  first_block_ = store->TermFirstBlock(tid);
  num_blocks_ = store->TermBlocks(tid);
  postings_ = store->TermPostings(tid);
  term_max_ = store->TermMaxScore(tid);
  if (num_blocks_ == 0) return;  // cur_doc_ stays kEndDoc.
  DecodeBlock(0);
  pos_ = 0;
  cur_doc_ = docs_[0];
}

void PostingCursor::DecodeBlock(uint32_t rel_block) {
  cur_block_ = rel_block;
  count_ = store_->BlockDocCount(tid_, first_block_ + rel_block);
  Status s =
      store_->DecodeBlockInto(tid_, first_block_ + rel_block, docs_, tfs_);
  (void)s;
  CKR_DCHECK(s.ok());
  CKR_OBS_COUNTER_INC("ckr.index.blocks_decoded");
}

void PostingCursor::Next() {
  CKR_DCHECK(!AtEnd());
  if (pos_ + 1 < count_) {
    ++pos_;
    cur_doc_ = docs_[pos_];
    return;
  }
  if (cur_block_ + 1 >= num_blocks_) {
    cur_doc_ = kEndDoc;
    return;
  }
  DecodeBlock(cur_block_ + 1);
  pos_ = 0;
  cur_doc_ = docs_[0];
}

void PostingCursor::NextGEQ(uint32_t target) {
  if (cur_doc_ >= target) return;  // Covers AtEnd: kEndDoc >= everything.
  if (target <= store_->BlockLastDoc(first_block_ + cur_block_)) {
    // Target lives in the already-decoded block.
    while (docs_[pos_] < target) {
      ++pos_;
      CKR_DCHECK_LT(pos_, count_);
    }
    cur_doc_ = docs_[pos_];
    return;
  }
  // Skip forward over whole blocks via the last-doc pointers; the blocks
  // passed over are never decoded.
  uint32_t b = cur_block_ + 1;
  while (b < num_blocks_ &&
         store_->BlockLastDoc(first_block_ + b) < target) {
    ++b;
  }
  CKR_OBS_COUNTER_ADD("ckr.index.blocks_skipped", b - cur_block_ - 1);
  if (b >= num_blocks_) {
    cur_doc_ = kEndDoc;
    return;
  }
  DecodeBlock(b);
  pos_ = 0;
  while (docs_[pos_] < target) {
    ++pos_;
    CKR_DCHECK_LT(pos_, count_);
  }
  cur_doc_ = docs_[pos_];
}

PostingCursor::BlockBound PostingCursor::ShallowBound(uint32_t target) const {
  CKR_DCHECK(!AtEnd());
  CKR_DCHECK_LE(cur_doc_, target);
  uint32_t b = cur_block_;
  while (b < num_blocks_ &&
         store_->BlockLastDoc(first_block_ + b) < target) {
    ++b;
  }
  if (b >= num_blocks_) return {0.0, kEndDoc};
  return {store_->BlockMaxScore(first_block_ + b),
          store_->BlockLastDoc(first_block_ + b)};
}

}  // namespace ckr
