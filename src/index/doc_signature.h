// Bitwise term signatures for exact-safe candidate prefiltering (the
// topsig idea): every document gets a fixed-width Bloom-style bit row in
// which each contained term sets `probes` deterministic bit positions.
// A conjunctive query (phrase terms, entity-entry terms) folds its own
// terms into a query signature the same way; a document whose row does
// not contain *all* query bits provably lacks at least one query term,
// so the AND-mask test
//
//     (row & query_sig) == query_sig
//
// rejects only true negatives. The converse does not hold (colliding
// probes can make a row look like a superset), which is exactly the safe
// direction for a prefilter in front of an exact path: survivors are
// re-checked by the position pool / Aho-Corasick automaton, and results
// stay bit-identical with the prefilter on or off (property-tested).
//
// Layout follows the repo's CSR discipline: one contiguous uint64_t pool,
// row i at [i * words_per_row, (i+1) * words_per_row) — SIMD/prefetch
// friendly, no per-row allocations. Bit positions come from Mix64 /
// HashCombine (common/hash.h), which are stable across runs and
// platforms, so signatures obey the determinism contract (lint rule R1)
// and may be persisted or compared across processes.
//
// The same rows double as an approximate "related documents" scenario:
// Hamming similarity (bits - popcount(row_a XOR row_b)) ranks documents
// by term-set overlap; see SignatureMatrix::HammingSimilarity and
// InvertedIndex::RelatedDocuments.
#ifndef CKR_INDEX_DOC_SIGNATURE_H_
#define CKR_INDEX_DOC_SIGNATURE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace ckr {

/// Shape of a signature matrix. Fixed at construction; both sides of an
/// AND-mask test must use identical config (the matrix builds the query
/// signature itself, so this cannot be violated through the public API).
struct SignatureConfig {
  /// Signature width in bits; must be a non-zero multiple of 64.
  uint32_t bits = 256;
  /// Bit positions set per term; must be in [1, bits].
  uint32_t probes = 2;
};

/// The deterministic bit position of probe `probe` of term `tid` in a
/// `bits`-wide signature. Exposed so tests can pin the packing layout.
uint32_t SignatureBitPosition(uint32_t tid, uint32_t probe, uint32_t bits);

/// A row-per-document (or row-per-entry) bit matrix of term signatures.
/// Immutable once filled; thread-safe for concurrent reads.
class SignatureMatrix {
 public:
  SignatureMatrix() : SignatureMatrix(SignatureConfig{}) {}
  explicit SignatureMatrix(const SignatureConfig& config);

  uint32_t bits() const { return config_.bits; }
  uint32_t probes() const { return config_.probes; }
  /// uint64_t words per row (bits / 64).
  uint32_t words_per_row() const { return words_; }
  size_t num_rows() const { return words_ == 0 ? 0 : pool_.size() / words_; }

  /// Resizes to `num_rows` zeroed rows, discarding previous contents.
  void Reset(size_t num_rows);

  /// ORs term `tid`'s probe bits into row `row`.
  void AddTerm(size_t row, uint32_t tid);

  /// ORs term `tid`'s probe bits into every row in `rows` — the CSR
  /// posting-list form of the build (bit positions hashed once per term,
  /// not once per posting).
  void AddTermToRows(uint32_t tid, Span<const uint32_t> rows);

  /// Row `row` as a bounds-checked span of `words_per_row()` words.
  Span<const uint64_t> Row(size_t row) const {
    return MakeSpan(pool_).subspan(row * words_, words_);
  }

  /// Builds the signature of a term set into `*out` (resized to
  /// `words_per_row()`, zeroed first). An empty term set yields the
  /// all-zero signature, which every row covers — degenerate queries can
  /// never be falsely rejected.
  void BuildSignature(Span<const uint32_t> tids,
                      std::vector<uint64_t>* out) const;

  /// ORs term `tid`'s probe bits into signature buffer `sig` (the
  /// incremental form of BuildSignature — callers that stream token ids
  /// fold them in one at a time). `sig` must have words_per_row() words.
  void AddTermToSignature(uint32_t tid, Span<uint64_t> sig) const;

  /// True iff `super` contains every bit of `sub` — the exact-safe
  /// AND-mask test over two equal-length signature buffers.
  static bool Covers(Span<const uint64_t> super, Span<const uint64_t> sub);

  /// True iff `row` contains every bit of `sig`: the exact-safe AND-mask
  /// test. `sig` must have words_per_row() words (same config).
  bool CoversAll(size_t row, Span<const uint64_t> sig) const;

  /// Hamming similarity between two rows: bits() - popcount(a XOR b).
  /// Symmetric; equals bits() iff the rows are identical.
  uint32_t HammingSimilarity(size_t a, size_t b) const;

  /// Heap footprint of the signature pool.
  size_t MemoryBytes() const { return pool_.capacity() * sizeof(uint64_t); }

 private:
  SignatureConfig config_;
  uint32_t words_ = 0;
  std::vector<uint64_t> pool_;  ///< num_rows * words_, row-major.
};

}  // namespace ckr

#endif  // CKR_INDEX_DOC_SIGNATURE_H_
