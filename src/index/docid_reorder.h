// Docid reordering for index locality: recursive graph bisection over the
// term-document graph.
//
// Delta-coded posting lists shrink (and skip pointers skip more) when
// documents that share vocabulary sit on nearby internal ids: gaps inside
// a topical term's list collapse from corpus-spanning to cluster-local.
// This module computes such an ordering with the standard
// minimize-log-gaps recursive bisection (Dhulipala et al., "Compressing
// Graphs and Indexes with Recursive Graph Bisection", KDD'16 — the
// algorithm behind PISA's reorder-docids tool):
//
//  * recursively split the current doc range into halves L and R;
//  * per pass, score every document by the change in total log2(gap) cost
//    its move to the other half would cause, using the per-term posting
//    degrees within L and R (the standard ΔB(deg, n) = deg*log2(n/(deg+1))
//    surrogate), then swap the highest positive-gain pairs;
//  * stop a level when no swap helps, recurse until ranges are small.
//
// Everything is integer/table arithmetic over a flat forward index, so the
// ordering is deterministic: same corpus, same permutation, every run and
// worker count. The permutation is applied by InvertedIndex::Finalize();
// external doc ids ride along, so ranked results are unchanged.
#ifndef CKR_INDEX_DOCID_REORDER_H_
#define CKR_INDEX_DOCID_REORDER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace ckr {

/// Tuning knobs of the bisection. Defaults follow the KDD'16 / PISA
/// settings scaled for a single-core build pass.
struct BisectionParams {
  size_t min_partition = 32;  ///< Stop recursing below this many docs.
  int max_passes = 8;         ///< Swap passes per level (early exit on 0 swaps).
};

/// Computes a locality-maximizing document order from a CSR forward index:
/// `tok_tid[doc_tok_offset[d] .. doc_tok_offset[d+1])` are the (possibly
/// repeated) term ids of document d, exactly the columns InvertedIndex
/// holds before Finalize. Returns `order` with `order[i]` = old internal
/// doc index placed at new position i — a permutation of [0, num_docs).
std::vector<uint32_t> ComputeBisectionOrder(Span<const uint32_t> tok_tid,
                                            Span<const size_t> doc_tok_offset,
                                            size_t num_terms,
                                            const BisectionParams& params = {});

}  // namespace ckr

#endif  // CKR_INDEX_DOCID_REORDER_H_
