#include "index/block_max_index.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/binary_io.h"
#include "obs/hooks.h"

namespace ckr {
namespace {

/// One live query term inside an evaluator. `orig` is the term's position
/// in the query's tids span — the summation slot that keeps every fl-sum
/// in query order.
struct QueryTerm {
  size_t orig = 0;
  uint32_t tid = 0;
  double max_score = 0.0;
  PostingCursor cursor;
};

/// fl-adds (orig, value) pairs in ascending orig order. Bitwise equal to
/// the exhaustive accumulator's per-doc sum: that sum adds the same
/// positive values in the same query order, and the terms missing here
/// would add an exact 0.0 — an identity on the nonnegative partial sums.
double SumInQueryOrder(std::vector<std::pair<size_t, double>>* vals) {
  std::sort(vals->begin(), vals->end(),
            [](const std::pair<size_t, double>& a,
               const std::pair<size_t, double>& b) {
              return a.first < b.first;
            });
  double s = 0.0;
  for (const auto& [orig, v] : *vals) {
    (void)orig;
    s += v;
  }
  return s;
}

/// Pushes into the heap and counts k-th-score (pruning threshold) changes.
void PushCounted(TopKHeap* heap, const SearchResult& r) {
  const bool was_full = heap->Full();
  const double old_threshold = was_full ? heap->ThresholdScore() : 0.0;
  heap->Push(r);
  if (heap->Full() &&
      (!was_full || heap->ThresholdScore() != old_threshold)) {
    CKR_OBS_COUNTER_INC("ckr.index.threshold_updates");
  }
}

}  // namespace

// ---- Builder ----

BlockMaxIndex::Builder::Builder(BlockCodec codec, std::vector<DocId> ext_ids,
                                std::vector<double> default_norm)
    : store_builder_(codec) {
  CKR_CHECK_EQ(ext_ids.size(), default_norm.size());
  index_.ext_id_ = std::move(ext_ids);
  index_.default_norm_ = std::move(default_norm);
}

void BlockMaxIndex::Builder::AddTerm(Span<const uint32_t> docs,
                                     Span<const uint32_t> tfs) {
  CKR_CHECK(explicit_idf_.empty());  // One AddTerm flavour per builder.
  const double n = static_cast<double>(index_.ext_id_.size());
  const double dfd = static_cast<double>(docs.size());
  const double idf = std::log(1.0 + (n - dfd + 0.5) / (dfd + 0.5));
  AddTermScored(docs, tfs, idf);
}

void BlockMaxIndex::Builder::AddTerm(Span<const uint32_t> docs,
                                     Span<const uint32_t> tfs, double idf) {
  CKR_CHECK_EQ(explicit_idf_.size(), terms_added_);
  explicit_idf_.push_back(idf);
  AddTermScored(docs, tfs, idf);
}

void BlockMaxIndex::Builder::AddTermScored(Span<const uint32_t> docs,
                                           Span<const uint32_t> tfs,
                                           double idf) {
  const Bm25Params defaults;
  scores_.resize(docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    const double tf = static_cast<double>(tfs[i]);
    scores_[i] = idf * tf * (defaults.k1 + 1.0) /
                 (tf + index_.default_norm_[docs[i]]);
  }
  store_builder_.AddTerm(docs, tfs, MakeSpan(scores_));
  ++terms_added_;
}

BlockMaxIndex BlockMaxIndex::Builder::Finish() {
  index_.store_ = store_builder_.Finish();
  if (explicit_idf_.empty()) {
    index_.RecomputeIdf();
  } else {
    CKR_CHECK_EQ(explicit_idf_.size(), index_.store_.NumTerms());
    index_.term_idf_ = std::move(explicit_idf_);
  }
  return std::move(index_);
}

// ---- Scoring ----

double BlockMaxIndex::Contribution(uint32_t tid, uint32_t doc,
                                   uint32_t tf) const {
  const Bm25Params defaults;
  const double tfd = static_cast<double>(tf);
  return term_idf_[tid] * tfd * (defaults.k1 + 1.0) /
         (tfd + default_norm_[doc]);
}

void BlockMaxIndex::RecomputeIdf() {
  const double n = static_cast<double>(ext_id_.size());
  term_idf_.resize(store_.NumTerms());
  for (size_t t = 0; t < term_idf_.size(); ++t) {
    const double dfd =
        static_cast<double>(store_.TermPostings(static_cast<uint32_t>(t)));
    term_idf_[t] = std::log(1.0 + (n - dfd + 0.5) / (dfd + 0.5));
  }
}

std::vector<SearchResult> BlockMaxIndex::TopK(Span<const uint32_t> tids,
                                              size_t k,
                                              QueryEvaluator evaluator) const {
  switch (evaluator) {
    case QueryEvaluator::kExhaustive:
      return TopKExhaustive(tids, k);
    case QueryEvaluator::kMaxScore:
      return TopKMaxScore(tids, k);
    case QueryEvaluator::kBlockMaxWand:
      return TopKBlockMaxWand(tids, k);
  }
  CKR_CHECK(false && "unreachable evaluator");
  return {};
}

// ---- Exhaustive (cursor-driven document-at-a-time union) ----

std::vector<SearchResult> BlockMaxIndex::TopKExhaustive(
    Span<const uint32_t> tids, size_t k) const {
  std::vector<QueryTerm> terms;
  terms.reserve(tids.size());
  for (size_t i = 0; i < tids.size(); ++i) {
    QueryTerm qt;
    qt.orig = i;
    qt.tid = tids[i];
    qt.cursor = PostingCursor(&store_, tids[i]);
    if (!qt.cursor.AtEnd()) terms.push_back(std::move(qt));
  }
  TopKHeap heap(k);
  std::vector<std::pair<size_t, double>> vals;
  while (true) {
    uint32_t d = PostingCursor::kEndDoc;
    for (const QueryTerm& t : terms) d = std::min(d, t.cursor.doc());
    if (d == PostingCursor::kEndDoc) break;
    vals.clear();
    for (QueryTerm& t : terms) {
      if (t.cursor.doc() != d) continue;
      vals.emplace_back(t.orig, Contribution(t.tid, d, t.cursor.tf()));
    }
    CKR_OBS_COUNTER_ADD("ckr.index.postings_scored", vals.size());
    PushCounted(&heap, {ext_id_[d], SumInQueryOrder(&vals)});
    for (QueryTerm& t : terms) {
      if (t.cursor.doc() == d) t.cursor.Next();
    }
  }
  return heap.Take();
}

// ---- MaxScore ----
//
// Terms are ordered by ascending list-wide maximum; the non-essential set
// is the longest prefix whose query-order max-sum stays strictly below
// the current k-th score — a document found *only* in those lists scores
// at most that sum (elementwise dominance, monotone fl-addition) and so
// can never enter. Candidates are generated from the essential lists in
// ascending doc order; non-essential lists are probed with NextGEQ only
// while the candidate's score bound still reaches the threshold. The
// threshold never decreases, so the non-essential prefix only grows and
// demoted cursors are never consulted as candidate generators again.

std::vector<SearchResult> BlockMaxIndex::TopKMaxScore(
    Span<const uint32_t> tids, size_t k) const {
  const size_t m_all = tids.size();
  std::vector<QueryTerm> terms;
  terms.reserve(m_all);
  for (size_t i = 0; i < m_all; ++i) {
    QueryTerm qt;
    qt.orig = i;
    qt.tid = tids[i];
    qt.max_score = store_.TermMaxScore(tids[i]);
    qt.cursor = PostingCursor(&store_, tids[i]);
    if (!qt.cursor.AtEnd()) terms.push_back(std::move(qt));
  }
  std::sort(terms.begin(), terms.end(),
            [](const QueryTerm& a, const QueryTerm& b) {
              if (a.max_score != b.max_score) return a.max_score < b.max_score;
              return a.orig < b.orig;
            });
  const size_t m = terms.size();
  TopKHeap heap(k);
  if (m == 0 || k == 0) return heap.Take();

  // contrib[orig] carries each term's current value for the candidate:
  // the exact contribution once the term's list was consulted, the term
  // maximum while it was not. Summed in query (orig) order it is the
  // candidate's score upper bound, and once every entry is exact it *is*
  // the candidate's score, bit-identical to the exhaustive sum.
  std::vector<double> contrib(m_all, 0.0);
  auto sum_contrib = [&contrib, m_all]() {
    double s = 0.0;
    for (size_t i = 0; i < m_all; ++i) s += contrib[i];
    return s;
  };
  // Query-order max-sum of the first `p` (lowest-max) terms.
  auto prefix_bound = [&](size_t p) {
    for (size_t j = 0; j < p; ++j) contrib[terms[j].orig] = terms[j].max_score;
    const double s = sum_contrib();
    for (size_t j = 0; j < p; ++j) contrib[terms[j].orig] = 0.0;
    return s;
  };

  size_t ness = 0;  // terms[0..ness) are non-essential.
  while (true) {
    if (heap.Full()) {
      const double theta = heap.ThresholdScore();
      while (ness < m && prefix_bound(ness + 1) < theta) ++ness;
      if (ness == m) break;  // Even all terms together fall short.
    }
    uint32_t d = PostingCursor::kEndDoc;
    for (size_t j = ness; j < m; ++j) {
      d = std::min(d, terms[j].cursor.doc());
    }
    if (d == PostingCursor::kEndDoc) break;

    for (size_t i = 0; i < m_all; ++i) contrib[i] = 0.0;
    for (size_t j = 0; j < ness; ++j) {
      contrib[terms[j].orig] = terms[j].max_score;
    }
    for (size_t j = ness; j < m; ++j) {
      if (terms[j].cursor.doc() != d) continue;
      contrib[terms[j].orig] = Contribution(terms[j].tid, d,
                                            terms[j].cursor.tf());
      CKR_OBS_COUNTER_INC("ckr.index.postings_scored");
    }
    double bound = sum_contrib();
    // Probe non-essential lists from the largest maximum down; every probe
    // replaces a maximum with the exact contribution (or 0), so the bound
    // only tightens and the strict-threshold exit stays safe.
    bool rejected = false;
    for (size_t j = ness; j-- > 0;) {
      if (heap.Full() && bound < heap.ThresholdScore()) {
        rejected = true;
        break;
      }
      terms[j].cursor.NextGEQ(d);
      if (terms[j].cursor.doc() == d) {
        contrib[terms[j].orig] = Contribution(terms[j].tid, d,
                                              terms[j].cursor.tf());
        CKR_OBS_COUNTER_INC("ckr.index.postings_scored");
      } else {
        contrib[terms[j].orig] = 0.0;
      }
      bound = sum_contrib();
    }
    if (!rejected) {
      // Every contrib entry is exact now; bound == score.
      PushCounted(&heap, {ext_id_[d], bound});
    }
    for (size_t j = ness; j < m; ++j) {
      if (terms[j].cursor.doc() == d) terms[j].cursor.Next();
    }
  }
  return heap.Take();
}

// ---- Block-Max-WAND ----
//
// Cursors stay sorted by current doc. The pivot is the first position
// where the query-order sum of list-wide maxima reaches the threshold:
// no document before the pivot's can enter (it appears only in lists
// whose max-sum falls strictly short). The pivot document is then tested
// against the *block* maxima of the lists at or before it — a much
// tighter bound. If even that falls short, every doc up to the smallest
// involved block boundary is skipped without decoding anything;
// otherwise the pivot is either scored exactly (when all preceding
// cursors align on it) or a preceding cursor is advanced to it.

std::vector<SearchResult> BlockMaxIndex::TopKBlockMaxWand(
    Span<const uint32_t> tids, size_t k) const {
  std::vector<QueryTerm> terms;
  terms.reserve(tids.size());
  for (size_t i = 0; i < tids.size(); ++i) {
    QueryTerm qt;
    qt.orig = i;
    qt.tid = tids[i];
    qt.max_score = store_.TermMaxScore(tids[i]);
    qt.cursor = PostingCursor(&store_, tids[i]);
    if (!qt.cursor.AtEnd()) terms.push_back(std::move(qt));
  }
  TopKHeap heap(k);
  if (terms.empty() || k == 0) return heap.Take();

  std::vector<QueryTerm*> order(terms.size());
  for (size_t i = 0; i < terms.size(); ++i) order[i] = &terms[i];
  std::vector<std::pair<size_t, double>> vals;
  while (true) {
    std::sort(order.begin(), order.end(),
              [](const QueryTerm* a, const QueryTerm* b) {
                if (a->cursor.doc() != b->cursor.doc()) {
                  return a->cursor.doc() < b->cursor.doc();
                }
                return a->orig < b->orig;
              });
    size_t live = order.size();
    while (live > 0 && order[live - 1]->cursor.AtEnd()) --live;
    if (live == 0) break;

    // Pivot: smallest prefix whose query-order max-sum reaches theta.
    size_t p = 0;
    if (heap.Full()) {
      const double theta = heap.ThresholdScore();
      vals.clear();
      bool found = false;
      for (p = 0; p < live; ++p) {
        vals.emplace_back(order[p]->orig, order[p]->max_score);
        std::vector<std::pair<size_t, double>> copy = vals;
        if (SumInQueryOrder(&copy) >= theta) {
          found = true;
          break;
        }
      }
      if (!found) break;  // No remaining document can enter.
    }
    const uint32_t pivot_doc = order[p]->cursor.doc();
    // Extend over cursors already sitting on the pivot document.
    size_t pe = p;
    while (pe + 1 < live && order[pe + 1]->cursor.doc() == pivot_doc) ++pe;

    // Shallow probe: per-list block maxima at the pivot document.
    double block_bound = 0.0;
    uint32_t min_last = PostingCursor::kEndDoc;
    {
      vals.clear();
      for (size_t j = 0; j <= pe; ++j) {
        const PostingCursor::BlockBound bb =
            order[j]->cursor.ShallowBound(pivot_doc);
        vals.emplace_back(order[j]->orig, bb.max_score);
        min_last = std::min(min_last, bb.last_doc);
      }
      block_bound = SumInQueryOrder(&vals);
    }
    if (heap.Full() && block_bound < heap.ThresholdScore()) {
      // Not even the block maxima reach the threshold: every document up
      // to the nearest involved block boundary is unreachable. Jump past
      // it (clamped by the next list's current doc, whose contributions
      // the bound does not cover).
      uint32_t dprime = min_last == PostingCursor::kEndDoc
                            ? PostingCursor::kEndDoc
                            : min_last + 1;
      if (pe + 1 < live) {
        dprime = std::min(dprime, order[pe + 1]->cursor.doc());
      }
      dprime = std::max(dprime, pivot_doc + 1);
      for (size_t j = 0; j <= pe; ++j) {
        if (order[j]->cursor.doc() < dprime) order[j]->cursor.NextGEQ(dprime);
      }
      continue;
    }
    if (order[0]->cursor.doc() == pivot_doc) {
      // All cursors up to pe sit on the pivot: score it exactly.
      vals.clear();
      for (size_t j = 0; j <= pe; ++j) {
        vals.emplace_back(order[j]->orig,
                          Contribution(order[j]->tid, pivot_doc,
                                       order[j]->cursor.tf()));
      }
      CKR_OBS_COUNTER_ADD("ckr.index.postings_scored", pe + 1);
      PushCounted(&heap, {ext_id_[pivot_doc], SumInQueryOrder(&vals)});
      for (size_t j = 0; j <= pe; ++j) order[j]->cursor.Next();
    } else {
      // Advance the highest-impact trailing cursor up to the pivot.
      size_t adv = 0;
      for (size_t j = 1; j <= pe; ++j) {
        if (order[j]->cursor.doc() >= pivot_doc) continue;
        if (order[adv]->cursor.doc() >= pivot_doc ||
            order[j]->max_score > order[adv]->max_score ||
            (order[j]->max_score == order[adv]->max_score &&
             order[j]->orig < order[adv]->orig)) {
          adv = j;
        }
      }
      order[adv]->cursor.NextGEQ(pivot_doc);
    }
  }
  return heap.Take();
}

// ---- Serialization ----

std::string BlockMaxIndex::SerializeVersion(uint16_t version) const {
  CKR_CHECK(version >= 1 && version <= kBlockIndexVersion);
  BinaryWriter writer;
  writer.U32(kBlockIndexMagic);
  writer.U16(version);
  writer.U16(static_cast<uint16_t>(codec()));
  writer.U64(static_cast<uint64_t>(ext_id_.size()));
  writer.U64(static_cast<uint64_t>(store_.NumTerms()));
  for (DocId id : ext_id_) writer.U32(id);
  for (double v : default_norm_) writer.F64(v);
  store_.AppendTo(&writer, /*include_maxes=*/version >= 2);
  return writer.Release();
}

StatusOr<BlockMaxIndex> BlockMaxIndex::Deserialize(std::string_view blob) {
  BinaryReader reader(blob);
  if (reader.U32() != kBlockIndexMagic) {
    return Status::InvalidArgument("block index: bad magic");
  }
  const uint16_t version = reader.U16();
  if (version < 1 || version > kBlockIndexVersion) {
    return Status::InvalidArgument("block index: unsupported version");
  }
  const uint16_t codec_raw = reader.U16();
  if (codec_raw > 0xff ||
      !IsValidBlockCodec(static_cast<uint8_t>(codec_raw))) {
    return Status::InvalidArgument("block index: unknown codec");
  }
  const BlockCodec codec = static_cast<BlockCodec>(codec_raw);
  const uint64_t num_docs = reader.U64();
  const uint64_t num_terms = reader.U64();
  if (!reader.ok()) {
    return Status::InvalidArgument("block index: truncated header");
  }
  // Doc indices are u32 with 0xffffffff reserved as the cursor's end
  // sentinel; counts beyond that (or beyond the bytes present) are
  // rejected before any allocation.
  if (num_docs >= 0xffffffffull ||
      num_docs > reader.remaining() / 12) {
    return Status::InvalidArgument("block index: doc count too large");
  }
  BlockMaxIndex index;
  index.ext_id_.resize(static_cast<size_t>(num_docs));
  for (DocId& id : index.ext_id_) id = reader.U32();
  index.default_norm_.resize(static_cast<size_t>(num_docs));
  for (double& v : index.default_norm_) {
    v = reader.F64();
    if (!(std::isfinite(v) && v > 0.0)) {
      return Status::InvalidArgument("block index: bad norm");
    }
  }
  if (!reader.ok()) {
    return Status::InvalidArgument("block index: truncated doc columns");
  }
  StatusOr<BlockPostingsStore> store_or =
      BlockPostingsStore::ReadFrom(&reader, codec, /*expect_maxes=*/
                                   version >= 2);
  if (!store_or.ok()) return store_or.status();
  index.store_ = std::move(store_or).value();
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("block index: trailing bytes");
  }
  if (index.store_.NumTerms() != num_terms) {
    return Status::InvalidArgument("block index: term count mismatch");
  }
  CKR_RETURN_IF_ERROR(index.store_.ValidateBlocksDecode(num_docs));
  std::vector<DocId> sorted_ids = index.ext_id_;
  std::sort(sorted_ids.begin(), sorted_ids.end());
  if (std::adjacent_find(sorted_ids.begin(), sorted_ids.end()) !=
      sorted_ids.end()) {
    return Status::InvalidArgument("block index: duplicate external doc id");
  }
  index.RecomputeIdf();
  if (version < 2) {
    CKR_RETURN_IF_ERROR(index.store_.RecomputeMaxScores(
        MakeSpan(index.term_idf_), MakeSpan(index.default_norm_)));
  }
  return index;
}

size_t BlockMaxIndex::MemoryBytes() const {
  return store_.MemoryBytes() + ext_id_.capacity() * sizeof(DocId) +
         default_norm_.capacity() * sizeof(double) +
         term_idf_.capacity() * sizeof(double);
}

}  // namespace ckr
