#include "index/doc_signature.h"

#include <bit>

#include "common/hash.h"

namespace ckr {

uint32_t SignatureBitPosition(uint32_t tid, uint32_t probe, uint32_t bits) {
  // Mix64 over the combined (tid, probe) key gives independent, stable
  // positions per probe; the modulo keeps every position in range for any
  // width (bits is a power-of-64 multiple, not of two, so masking is out).
  const uint64_t h = Mix64(HashCombine(static_cast<uint64_t>(tid),
                                       static_cast<uint64_t>(probe)));
  return static_cast<uint32_t>(h % bits);
}

SignatureMatrix::SignatureMatrix(const SignatureConfig& config)
    : config_(config) {
  CKR_CHECK(config_.bits > 0 && config_.bits % 64 == 0);
  CKR_CHECK(config_.probes >= 1 && config_.probes <= config_.bits);
  words_ = config_.bits / 64;
}

void SignatureMatrix::Reset(size_t num_rows) {
  pool_.assign(num_rows * words_, 0);
}

void SignatureMatrix::AddTerm(size_t row, uint32_t tid) {
  uint64_t* bits = pool_.data() + row * words_;
  CKR_DCHECK_LE((row + 1) * words_, pool_.size());
  for (uint32_t p = 0; p < config_.probes; ++p) {
    const uint32_t pos = SignatureBitPosition(tid, p, config_.bits);
    bits[pos >> 6] |= uint64_t{1} << (pos & 63);
  }
}

void SignatureMatrix::AddTermToRows(uint32_t tid, Span<const uint32_t> rows) {
  for (uint32_t p = 0; p < config_.probes; ++p) {
    const uint32_t pos = SignatureBitPosition(tid, p, config_.bits);
    const uint32_t word = pos >> 6;
    const uint64_t mask = uint64_t{1} << (pos & 63);
    for (size_t i = 0; i < rows.size(); ++i) {
      const size_t row = rows[i];
      CKR_DCHECK_LE((row + 1) * words_, pool_.size());
      pool_[row * words_ + word] |= mask;
    }
  }
}

void SignatureMatrix::BuildSignature(Span<const uint32_t> tids,
                                     std::vector<uint64_t>* out) const {
  out->assign(words_, 0);
  for (size_t i = 0; i < tids.size(); ++i) {
    for (uint32_t p = 0; p < config_.probes; ++p) {
      const uint32_t pos = SignatureBitPosition(tids[i], p, config_.bits);
      (*out)[pos >> 6] |= uint64_t{1} << (pos & 63);
    }
  }
}

void SignatureMatrix::AddTermToSignature(uint32_t tid,
                                         Span<uint64_t> sig) const {
  CKR_DCHECK_EQ(sig.size(), words_);
  for (uint32_t p = 0; p < config_.probes; ++p) {
    const uint32_t pos = SignatureBitPosition(tid, p, config_.bits);
    sig[pos >> 6] |= uint64_t{1} << (pos & 63);
  }
}

bool SignatureMatrix::Covers(Span<const uint64_t> super,
                             Span<const uint64_t> sub) {
  CKR_DCHECK_EQ(super.size(), sub.size());
  for (size_t w = 0; w < super.size(); ++w) {
    if ((super[w] & sub[w]) != sub[w]) return false;
  }
  return true;
}

bool SignatureMatrix::CoversAll(size_t row, Span<const uint64_t> sig) const {
  return Covers(Row(row), sig);
}

uint32_t SignatureMatrix::HammingSimilarity(size_t a, size_t b) const {
  const uint64_t* ra = pool_.data() + a * words_;
  const uint64_t* rb = pool_.data() + b * words_;
  CKR_DCHECK_LE((a + 1) * words_, pool_.size());
  CKR_DCHECK_LE((b + 1) * words_, pool_.size());
  uint32_t distance = 0;
  for (uint32_t w = 0; w < words_; ++w) {
    distance += static_cast<uint32_t>(std::popcount(ra[w] ^ rb[w]));
  }
  return config_.bits - distance;
}

}  // namespace ckr
