#include "index/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "framework/golomb.h"
#include "index/docid_reorder.h"
#include "obs/hooks.h"
#include "text/tokenizer.h"

namespace ckr {

void CollectionStats::Absorb(const CollectionStats& other) {
  num_docs += other.num_docs;
  total_tokens += other.total_tokens;
  for (const auto& [term, df] : other.doc_freq) {
    doc_freq[term] += df;
  }
}

uint32_t InvertedIndex::InternTerm(std::string_view token) {
  auto it = term_ids_.find(token);
  if (it != term_ids_.end()) return it->second;
  uint32_t tid = static_cast<uint32_t>(term_ids_.size());
  term_ids_.emplace(std::string(token), tid);
  return tid;
}

uint32_t InvertedIndex::LookupTerm(std::string_view term) const {
  auto it = term_ids_.find(term);
  return it == term_ids_.end() ? kInvalidTid : it->second;
}

void InvertedIndex::Add(const Document& doc) {
  CKR_DCHECK(!finalized_);
  if (doc_tok_offset_.empty()) doc_tok_offset_.push_back(0);
  std::vector<Token> toks = Tokenize(doc.text);
  for (const Token& t : toks) {
    tok_tid_.push_back(InternTerm(t.text));
    if (options_.store_text) {
      tok_begin_.push_back(static_cast<uint32_t>(t.begin));
      tok_end_.push_back(static_cast<uint32_t>(t.end));
    }
  }
  doc_tok_offset_.push_back(tok_tid_.size());
  doc_index_[doc.id] = static_cast<uint32_t>(docs_.size());
  docs_.push_back({doc.id, options_.store_text ? doc.text : std::string()});
}

void InvertedIndex::ApplyDocidOrder() {
  const size_t num_docs = docs_.size();
  std::vector<uint32_t> order;
  if (options_.docid_order == DocidOrder::kBisection) {
    order = ComputeBisectionOrder(MakeSpan(tok_tid_), MakeSpan(doc_tok_offset_),
                                  term_ids_.size());
  } else if (options_.docid_order == DocidOrder::kExplicit) {
    order = options_.explicit_order;
    CKR_CHECK_EQ(order.size(), num_docs);
    std::vector<uint8_t> hit(num_docs, 0);
    for (uint32_t o : order) {
      CKR_CHECK_LT(o, num_docs);
      CKR_CHECK(!hit[o]);
      hit[o] = 1;
    }
  }
  bool identity = true;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] != i) {
      identity = false;
      break;
    }
  }
  if (order.empty() || identity) return;

  std::vector<StoredDoc> new_docs(num_docs);
  std::vector<size_t> new_offset;
  new_offset.reserve(num_docs + 1);
  new_offset.push_back(0);
  std::vector<uint32_t> new_tid;
  new_tid.reserve(tok_tid_.size());
  std::vector<uint32_t> new_begin;
  std::vector<uint32_t> new_end;
  const bool has_offsets = !tok_begin_.empty();
  if (has_offsets) {
    new_begin.reserve(tok_begin_.size());
    new_end.reserve(tok_end_.size());
  }
  for (size_t i = 0; i < num_docs; ++i) {
    const uint32_t od = order[i];
    new_docs[i] = std::move(docs_[od]);
    for (size_t j = doc_tok_offset_[od]; j < doc_tok_offset_[od + 1]; ++j) {
      new_tid.push_back(tok_tid_[j]);
      if (has_offsets) {
        new_begin.push_back(tok_begin_[j]);
        new_end.push_back(tok_end_[j]);
      }
    }
    new_offset.push_back(new_tid.size());
  }
  docs_ = std::move(new_docs);
  doc_tok_offset_ = std::move(new_offset);
  tok_tid_ = std::move(new_tid);
  tok_begin_ = std::move(new_begin);
  tok_end_ = std::move(new_end);
  for (size_t d = 0; d < num_docs; ++d) {
    doc_index_[docs_[d].id] = static_cast<uint32_t>(d);
  }
}

void InvertedIndex::Finalize() {
  const size_t num_docs = docs_.size();
  const size_t num_terms = term_ids_.size();
  if (doc_tok_offset_.empty()) doc_tok_offset_.push_back(0);
  ApplyDocidOrder();

  doc_len_.resize(num_docs);
  uint64_t total_len = 0;
  for (size_t d = 0; d < num_docs; ++d) {
    doc_len_[d] =
        static_cast<uint32_t>(doc_tok_offset_[d + 1] - doc_tok_offset_[d]);
    total_len += doc_len_[d];
  }
  avg_doc_len_ =
      num_docs == 0
          ? 0.0
          : static_cast<double>(total_len) / static_cast<double>(num_docs);
  score_num_docs_ = static_cast<double>(num_docs);

  const Bm25Params defaults;
  default_norm_.resize(num_docs);
  for (size_t d = 0; d < num_docs; ++d) {
    double dl = static_cast<double>(doc_len_[d]);
    default_norm_[d] = defaults.k1 * (1.0 - defaults.b +
                                      defaults.b * dl / avg_doc_len_);
  }

  // Pass 1: document frequency per term = number of posting slots.
  std::vector<uint32_t> df(num_terms, 0);
  std::vector<uint32_t> last_doc(num_terms, kInvalidTid);
  for (size_t d = 0; d < num_docs; ++d) {
    for (size_t i = doc_tok_offset_[d]; i < doc_tok_offset_[d + 1]; ++i) {
      uint32_t tid = tok_tid_[i];
      if (last_doc[tid] != d) {
        last_doc[tid] = static_cast<uint32_t>(d);
        ++df[tid];
      }
    }
  }
  post_offset_.assign(num_terms + 1, 0);
  for (size_t t = 0; t < num_terms; ++t) {
    post_offset_[t + 1] = post_offset_[t] + df[t];
  }
  const size_t num_slots = post_offset_[num_terms];
  post_doc_.resize(num_slots);
  post_tf_.resize(num_slots);
  pos_offset_.resize(num_slots);
  pos_len_.resize(num_slots);
  pos_first_.resize(num_slots);
  pos_pool_.clear();

  // Pass 2 (doc-major, so each term's slots come out sorted by doc):
  // group the document's occurrences by term id, then emit one slot per
  // group with its positions Golomb-coded into the shared pool.
  std::vector<size_t> cursor(post_offset_.begin(), post_offset_.end() - 1);
  std::vector<std::pair<uint32_t, uint32_t>> occ;  // (tid, position)
  std::vector<uint32_t> positions;
  for (size_t d = 0; d < num_docs; ++d) {
    occ.clear();
    uint32_t pos = 0;
    for (size_t i = doc_tok_offset_[d]; i < doc_tok_offset_[d + 1]; ++i) {
      occ.emplace_back(tok_tid_[i], pos++);
    }
    // Stable: positions stay ascending within each term group.
    std::stable_sort(occ.begin(), occ.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    const uint32_t universe = doc_len_[d];
    for (size_t i = 0; i < occ.size();) {
      uint32_t tid = occ[i].first;
      positions.clear();
      while (i < occ.size() && occ[i].first == tid) {
        positions.push_back(occ[i].second);
        ++i;
      }
      size_t slot = cursor[tid]++;
      post_doc_[slot] = static_cast<uint32_t>(d);
      post_tf_[slot] = static_cast<uint32_t>(positions.size());
      auto offset_or = AppendEncodedSortedIds(positions, universe, &pos_pool_);
      CKR_DCHECK(offset_or.ok());
      pos_offset_[slot] = *offset_or;
      pos_len_[slot] = static_cast<uint32_t>(pos_pool_.size() - *offset_or);
      pos_first_[slot] = positions.front();
    }
  }
  pos_pool_.shrink_to_fit();
#if CKR_DEBUG_CHECKS
  // Frozen-layout invariants: the slot offset table is monotone and fully
  // consumed, every slot's doc index is in range and strictly ascending
  // within its term (pass 2 emits doc-major), and every positions blob
  // lies inside the shared pool.
  CKR_DCHECK_EQ(post_offset_.size(), num_terms + 1);
  for (size_t t = 0; t < num_terms; ++t) {
    CKR_DCHECK_LE(post_offset_[t], post_offset_[t + 1]);
    CKR_DCHECK_EQ(cursor[t], post_offset_[t + 1]);
    for (size_t slot = post_offset_[t]; slot < post_offset_[t + 1]; ++slot) {
      CKR_DCHECK_LT(post_doc_[slot], num_docs);
      if (slot > post_offset_[t]) {
        CKR_DCHECK_LT(post_doc_[slot - 1], post_doc_[slot]);
      }
      CKR_DCHECK_LE(pos_offset_[slot] + pos_len_[slot], pos_pool_.size());
    }
  }
  for (uint32_t tid : tok_tid_) CKR_DCHECK_LT(tid, num_terms);
#endif
  finalized_ = true;
  if (options_.build_signature_filter) {
    // Term-major over the freshly built CSR postings: each term's probe
    // bits are hashed once and OR-ed into every posting's doc row.
    signatures_ = SignatureMatrix(options_.signature);
    signatures_.Reset(num_docs);
    for (size_t t = 0; t < num_terms; ++t) {
      signatures_.AddTermToRows(static_cast<uint32_t>(t),
                                CsrRow(post_doc_, post_offset_, t));
    }
    has_signatures_ = true;
  }
  if (options_.build_block_index) RebuildBlockIndex(options_.block_codec);
}

void InvertedIndex::RebuildBlockIndex(BlockCodec codec) {
  CKR_DCHECK(finalized_);
  std::vector<DocId> ext_ids;
  ext_ids.reserve(docs_.size());
  for (const StoredDoc& d : docs_) ext_ids.push_back(d.id);
  BlockMaxIndex::Builder builder(codec, std::move(ext_ids), default_norm_);
  const size_t num_terms = term_ids_.size();
  for (size_t t = 0; t < num_terms; ++t) {
    if (stats_overridden_) {
      // Same idf expression as the exhaustive scorer above, fed with the
      // overridden (n, df) so the block maxima and per-posting scores stay
      // bit-identical to the single-index oracle.
      const double dfd = score_df_[t];
      const double idf =
          std::log(1.0 + (score_num_docs_ - dfd + 0.5) / (dfd + 0.5));
      builder.AddTerm(CsrRow(post_doc_, post_offset_, t),
                      CsrRow(post_tf_, post_offset_, t), idf);
    } else {
      builder.AddTerm(CsrRow(post_doc_, post_offset_, t),
                      CsrRow(post_tf_, post_offset_, t));
    }
  }
  block_index_ = builder.Finish();
  has_block_index_ = true;
}

Status InvertedIndex::LoadBlockIndex(std::string_view blob) {
  CKR_DCHECK(finalized_);
  if (stats_overridden_) {
    // Serialized blobs recompute idf from their *local* (df, n); loading
    // one here would silently drop the collection-wide statistics.
    return Status::FailedPrecondition(
        "cannot load a serialized block index while collection stats are "
        "overridden; RebuildBlockIndex instead");
  }
  StatusOr<BlockMaxIndex> loaded = BlockMaxIndex::Deserialize(blob);
  if (!loaded.ok()) return loaded.status();
  if (loaded->NumDocs() != docs_.size()) {
    return Status::InvalidArgument("block index blob: doc count mismatch");
  }
  if (loaded->NumTerms() != term_ids_.size()) {
    return Status::InvalidArgument("block index blob: term count mismatch");
  }
  for (size_t d = 0; d < docs_.size(); ++d) {
    if (loaded->ExternalId(static_cast<uint32_t>(d)) != docs_[d].id) {
      return Status::InvalidArgument("block index blob: doc id mismatch");
    }
  }
  for (size_t t = 0; t < term_ids_.size(); ++t) {
    const uint32_t df =
        static_cast<uint32_t>(post_offset_[t + 1] - post_offset_[t]);
    if (loaded->store().TermPostings(static_cast<uint32_t>(t)) != df) {
      return Status::InvalidArgument(
          "block index blob: document frequency mismatch");
    }
  }
  block_index_ = std::move(loaded).value();
  has_block_index_ = true;
  return Status::OK();
}

uint32_t InvertedIndex::DocFreq(std::string_view term) const {
  uint32_t tid = LookupTerm(term);
  if (tid == kInvalidTid) return 0;
  return static_cast<uint32_t>(post_offset_[tid + 1] - post_offset_[tid]);
}

CollectionStats InvertedIndex::LocalCollectionStats() const {
  CKR_DCHECK(finalized_);
  CollectionStats stats;
  stats.num_docs = docs_.size();
  stats.total_tokens = tok_tid_.size();
  stats.doc_freq.reserve(term_ids_.size());
  for (const auto& [term, tid] : term_ids_) {
    stats.doc_freq.emplace(
        term, static_cast<uint64_t>(post_offset_[tid + 1] - post_offset_[tid]));
  }
  return stats;
}

Status InvertedIndex::OverrideCollectionStats(const CollectionStats& stats) {
  if (!finalized_) {
    return Status::FailedPrecondition(
        "OverrideCollectionStats requires a finalized index");
  }
  if (stats.num_docs < docs_.size()) {
    return Status::InvalidArgument(
        "collection stats: num_docs below this index's document count");
  }
  if (stats.total_tokens < tok_tid_.size()) {
    return Status::InvalidArgument(
        "collection stats: total_tokens below this index's token count");
  }
  // Validate and gather per-tid df before mutating anything.
  std::vector<double> df(term_ids_.size(), 0.0);
  for (const auto& [term, tid] : term_ids_) {
    auto it = stats.doc_freq.find(term);
    if (it == stats.doc_freq.end()) {
      return Status::InvalidArgument(
          "collection stats: missing document frequency for term '" + term +
          "'");
    }
    const uint64_t local = post_offset_[tid + 1] - post_offset_[tid];
    if (it->second < local) {
      return Status::InvalidArgument(
          "collection stats: document frequency of term '" + term +
          "' below this index's local df");
    }
    df[tid] = static_cast<double>(it->second);
  }
  score_df_ = std::move(df);
  score_num_docs_ = static_cast<double>(stats.num_docs);
  avg_doc_len_ = stats.num_docs == 0
                     ? 0.0
                     : static_cast<double>(stats.total_tokens) /
                           static_cast<double>(stats.num_docs);
  stats_overridden_ = true;
  // Same expression, in the same operation order, as Finalize() — the
  // oracle index computes its norms with this exact arithmetic, so each
  // shard's norms are bit-identical to the oracle's for shared documents.
  const Bm25Params defaults;
  for (size_t d = 0; d < docs_.size(); ++d) {
    const double dl = static_cast<double>(doc_len_[d]);
    default_norm_[d] =
        defaults.k1 * (1.0 - defaults.b + defaults.b * dl / avg_doc_len_);
  }
  if (has_block_index_) RebuildBlockIndex(block_index_.codec());
  return Status::OK();
}

std::vector<SearchResult> InvertedIndex::Search(
    std::string_view query, size_t k, const Bm25Params& params,
    QueryEvaluator evaluator) const {
  CKR_DCHECK(finalized_);
  std::vector<std::string> terms = TokenizeToStrings(query);
  // Deduplicate query terms (same sorted accumulation order as the legacy
  // path, so per-doc floating-point sums are bit-identical).
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());

  // Empty/whitespace-only query: no terms, no results — return before
  // allocating per-doc accumulators (all evaluators agree on {}).
  if (terms.empty()) {
    CKR_OBS_COUNTER_INC("ckr.index.searches");
    return {};
  }

  const bool default_params =
      params.k1 == Bm25Params{}.k1 && params.b == Bm25Params{}.b;
  if (evaluator != QueryEvaluator::kExhaustive && default_params &&
      has_block_index_) {
    // Pruned evaluation on the block index. Term ids are passed in the
    // sorted-term order used below, so the pruned score sums replay the
    // exhaustive accumulation order addend by addend (bit-identical).
    std::vector<uint32_t> tids;
    tids.reserve(terms.size());
    for (const std::string& term : terms) {
      uint32_t tid = LookupTerm(term);
      if (tid != kInvalidTid) tids.push_back(tid);
    }
    CKR_OBS_COUNTER_INC("ckr.index.searches");
    CKR_OBS_COUNTER_ADD("ckr.index.search_terms", terms.size());
    return block_index_.TopK(MakeSpan(tids), k, evaluator);
  }
  const double n = score_num_docs_;
  std::vector<double> acc(docs_.size(), 0.0);
  std::vector<uint8_t> seen(docs_.size(), 0);
  std::vector<uint32_t> touched;
  for (const std::string& term : terms) {
    uint32_t tid = LookupTerm(term);
    if (tid == kInvalidTid) continue;
    const Span<const uint32_t> slot_docs = CsrRow(post_doc_, post_offset_, tid);
    const Span<const uint32_t> slot_tfs = CsrRow(post_tf_, post_offset_, tid);
    CKR_OBS_COUNTER_ADD("ckr.index.postings_scored", slot_docs.size());
    const double dfd = stats_overridden_
                           ? score_df_[tid]
                           : static_cast<double>(slot_docs.size());
    double idf = std::log(1.0 + (n - dfd + 0.5) / (dfd + 0.5));
    for (size_t slot = 0; slot < slot_docs.size(); ++slot) {
      uint32_t d = slot_docs[slot];
      double tf = static_cast<double>(slot_tfs[slot]);
      double norm =
          default_params
              ? default_norm_[d]
              : params.k1 * (1.0 - params.b +
                             params.b * static_cast<double>(doc_len_[d]) /
                                 avg_doc_len_);
      acc[d] += idf * tf * (params.k1 + 1.0) / (tf + norm);
      if (!seen[d]) {
        seen[d] = 1;
        touched.push_back(d);
      }
    }
  }
  TopKHeap heap(k);
  for (uint32_t d : touched) heap.Push({docs_[d].id, acc[d]});
  CKR_OBS_COUNTER_INC("ckr.index.searches");
  CKR_OBS_COUNTER_ADD("ckr.index.search_terms", terms.size());
  CKR_OBS_COUNTER_ADD("ckr.index.search_docs_touched", touched.size());
  return heap.Take();
}

uint64_t InvertedIndex::RegularResultCount(std::string_view query) const {
  CKR_DCHECK(finalized_);
  std::vector<std::string> terms = TokenizeToStrings(query);
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());

  // Empty/whitespace-only query: nothing can match; skip the bitmap.
  if (terms.empty()) return 0;
  // Single-term fast path: the union is one posting list.
  if (terms.size() == 1) return DocFreq(terms[0]);

  std::vector<uint8_t> seen(docs_.size(), 0);
  uint64_t count = 0;
  for (const std::string& term : terms) {
    uint32_t tid = LookupTerm(term);
    if (tid == kInvalidTid) continue;
    for (uint32_t d : CsrRow(post_doc_, post_offset_, tid)) {
      if (!seen[d]) {
        seen[d] = 1;
        ++count;
      }
    }
  }
  return count;
}

void InvertedIndex::DecodePositions(size_t slot,
                                    std::vector<uint32_t>* out) const {
  Status s = DecodeSortedIdsInto(pos_pool_.data() + pos_offset_[slot],
                                 pos_len_[slot], out);
  (void)s;
  CKR_DCHECK(s.ok());
}

bool InvertedIndex::ResolvePhrase(std::string_view phrase,
                                  std::vector<uint32_t>* tids,
                                  size_t* rarest) const {
  std::vector<std::string> terms = TokenizeToStrings(phrase);
  if (terms.empty()) return false;
  tids->clear();
  tids->reserve(terms.size());
  for (const std::string& t : terms) {
    uint32_t tid = LookupTerm(t);
    if (tid == kInvalidTid) return false;
    tids->push_back(tid);
  }
  // Rarest-term selection drives both the seeding posting list and the
  // PhraseSearch idf. Under a collection-stats override the comparison
  // uses the global df so every shard (and the oracle) picks the same
  // term — any term is a correct positional seed, but the idf must match.
  auto eff_df = [this](uint32_t tid) {
    return stats_overridden_
               ? score_df_[tid]
               : static_cast<double>(post_offset_[tid + 1] -
                                     post_offset_[tid]);
  };
  *rarest = 0;
  for (size_t i = 1; i < tids->size(); ++i) {
    if (eff_df((*tids)[i]) < eff_df((*tids)[*rarest])) *rarest = i;
  }
  return true;
}

namespace {

/// True if the phrase window starting at rarest-occurrence `q` matches the
/// doc's token stream. A window match at start p means every token p+t
/// equals term t, which holds iff term t has a position at p+t (positions
/// come from the same token stream) — so witnesses are exactly the legacy
/// ones.
inline bool WindowMatches(Span<const uint32_t> toks, uint32_t q,
                          size_t rarest, const std::vector<uint32_t>& tids) {
  if (q < rarest) return false;
  const uint32_t p = q - static_cast<uint32_t>(rarest);
  const uint32_t width = static_cast<uint32_t>(tids.size());
  if (p + width > toks.size()) return false;
  for (uint32_t t = 0; t < width; ++t) {
    if (t == rarest) continue;  // q is a known occurrence.
    if (toks[p + t] != tids[t]) return false;
  }
  return true;
}

}  // namespace

bool InvertedIndex::PhraseInDoc(uint32_t d, const std::vector<uint32_t>& tids,
                                size_t rarest, size_t rarest_slot,
                                std::vector<uint32_t>* pos_buf,
                                uint32_t* num_starts) const {
  const Span<const uint32_t> toks = CsrRow(tok_tid_, doc_tok_offset_, d);
  CKR_DCHECK_EQ(toks.size(), doc_len_[d]);
  const uint32_t tf = post_tf_[rarest_slot];
  const bool first_hits =
      WindowMatches(toks, pos_first_[rarest_slot], rarest, tids);

  if (num_starts == nullptr) {
    // Existence only: the stored first position answers most docs without
    // touching the compressed pool.
    if (first_hits) return true;
    if (tf == 1) return false;
    DecodePositions(rarest_slot, pos_buf);
    for (size_t i = 1; i < pos_buf->size(); ++i) {
      if (WindowMatches(toks, (*pos_buf)[i], rarest, tids)) return true;
    }
    return false;
  }

  uint32_t starts = 0;
  if (tf == 1) {
    starts = first_hits ? 1 : 0;
  } else {
    DecodePositions(rarest_slot, pos_buf);
    for (uint32_t q : *pos_buf) {
      if (WindowMatches(toks, q, rarest, tids)) ++starts;
    }
  }
  *num_starts = starts;
  return starts > 0;
}

uint64_t InvertedIndex::PhraseResultCount(std::string_view phrase) const {
  CKR_DCHECK(finalized_);
  std::vector<uint32_t> tids;
  size_t rarest = 0;
  if (!ResolvePhrase(phrase, &tids, &rarest)) return 0;
  // Single-term phrase: every posting slot is a match.
  if (tids.size() == 1) {
    return post_offset_[tids[0] + 1] - post_offset_[tids[0]];
  }

  // Signature prefilter: a seed document whose signature does not cover
  // every phrase term provably lacks one of them, so the positional check
  // cannot succeed — skipping it never changes the count (exact-safe;
  // duplicate phrase terms just OR the same bits twice).
  std::vector<uint64_t> qsig;
  const bool gated = has_signatures_;
  if (gated) signatures_.BuildSignature(MakeSpan(tids), &qsig);

  std::vector<uint32_t> pos_buf;
  uint64_t count = 0;
  const size_t rb = post_offset_[tids[rarest]];
  const size_t re = post_offset_[tids[rarest] + 1];
  for (size_t seed = rb; seed < re; ++seed) {
    const uint32_t d = post_doc_[seed];
    if (gated) {
      CKR_OBS_COUNTER_INC("ckr.sig.docs_tested");
      if (!signatures_.CoversAll(d, MakeSpan(qsig))) {
        CKR_OBS_COUNTER_INC("ckr.sig.docs_rejected");
        continue;
      }
    }
    if (PhraseInDoc(d, tids, rarest, seed, &pos_buf, nullptr)) {
      ++count;
    }
  }
  return count;
}

std::vector<SearchResult> InvertedIndex::PhraseSearch(std::string_view phrase,
                                                      size_t k) const {
  CKR_DCHECK(finalized_);
  CKR_OBS_COUNTER_INC("ckr.index.phrase_searches");
  std::vector<uint32_t> tids;
  size_t rarest = 0;
  if (!ResolvePhrase(phrase, &tids, &rarest)) return {};

  const double n = score_num_docs_;
  const size_t rb = post_offset_[tids[rarest]];
  const size_t re = post_offset_[tids[rarest] + 1];
  const double dfr = stats_overridden_ ? score_df_[tids[rarest]]
                                       : static_cast<double>(re - rb);
  // Loop-invariant in the legacy code; identical expression, same bits.
  const double idf = std::log(1.0 + (n - dfr + 0.5) / (dfr + 0.5));

  // Same exact-safe prefilter as PhraseResultCount. Single-term phrases
  // skip it: every seed trivially covers its own term's bits.
  std::vector<uint64_t> qsig;
  const bool gated = has_signatures_ && tids.size() > 1;
  if (gated) signatures_.BuildSignature(MakeSpan(tids), &qsig);

  TopKHeap heap(k);
  std::vector<uint32_t> pos_buf;
  for (size_t seed = rb; seed < re; ++seed) {
    uint32_t d = post_doc_[seed];
    if (gated) {
      CKR_OBS_COUNTER_INC("ckr.sig.docs_tested");
      if (!signatures_.CoversAll(d, MakeSpan(qsig))) {
        CKR_OBS_COUNTER_INC("ckr.sig.docs_rejected");
        continue;
      }
    }
    uint32_t starts = 0;
    if (tids.size() == 1) {
      starts = post_tf_[seed];  // Every occurrence is a phrase start.
    } else if (!PhraseInDoc(d, tids, rarest, seed, &pos_buf, &starts)) {
      continue;
    }
    double dl = static_cast<double>(doc_len_[d]);
    double score =
        idf * static_cast<double>(starts) / (1.0 + 0.002 * dl);
    heap.Push({docs_[d].id, score});
  }
  return heap.Take();
}

std::vector<SearchResult> InvertedIndex::RelatedDocuments(DocId doc,
                                                          size_t k) const {
  CKR_DCHECK(finalized_);
  if (!has_signatures_ || k == 0) return {};
  const int32_t di = FindDocIndex(doc);
  if (di < 0) return {};
  const size_t src = static_cast<size_t>(di);
  CKR_OBS_COUNTER_INC("ckr.sig.related_queries");
  // One popcount sweep over the contiguous signature pool; the bounded
  // heap keeps the Search ranking contract (descending similarity, ties
  // by ascending external id), so the top-k is unique and docid-order
  // invariant.
  TopKHeap heap(k);
  for (size_t d = 0; d < docs_.size(); ++d) {
    if (d == src) continue;
    const uint32_t sim =
        signatures_.HammingSimilarity(src, d);
    heap.Push({docs_[d].id, static_cast<double>(sim)});
  }
  return heap.Take();
}

int32_t InvertedIndex::FindDocIndex(DocId id) const {
  auto it = doc_index_.find(id);
  return it == doc_index_.end() ? -1 : static_cast<int32_t>(it->second);
}

const std::string& InvertedIndex::DocText(DocId doc) const {
  static const std::string* const kEmpty = new std::string();
  int32_t d = FindDocIndex(doc);
  return d < 0 ? *kEmpty : docs_[static_cast<size_t>(d)].text;
}

std::string InvertedIndex::Snippet(DocId doc, std::string_view query,
                                   size_t context_tokens) const {
  if (!options_.store_text) return "";  // No text/offsets to slice.
  int32_t di = FindDocIndex(doc);
  if (di < 0) return "";
  const size_t d = static_cast<size_t>(di);
  const size_t tok_begin = doc_tok_offset_[d];
  const size_t num_tokens = doc_tok_offset_[d + 1] - tok_begin;
  if (num_tokens == 0) return "";
  const uint32_t* tids = tok_tid_.data() + tok_begin;

  // Query tokens as term ids; out-of-vocabulary terms get the invalid id,
  // which matches no document token (every document token is interned).
  std::vector<std::string> terms = TokenizeToStrings(query);
  std::vector<uint32_t> qtids;
  qtids.reserve(terms.size());
  for (const std::string& t : terms) qtids.push_back(LookupTerm(t));

  // Prefer the first contiguous phrase hit; fall back to the first hit of
  // any query term; fall back to the document head.
  size_t center = 0;
  bool found = false;
  if (!qtids.empty()) {
    for (size_t i = 0; i + qtids.size() <= num_tokens && !found; ++i) {
      bool match = true;
      for (size_t j = 0; j < qtids.size(); ++j) {
        if (tids[i + j] != qtids[j]) {
          match = false;
          break;
        }
      }
      if (match) {
        center = i + qtids.size() / 2;
        found = true;
      }
    }
    for (size_t i = 0; i < num_tokens && !found; ++i) {
      for (uint32_t q : qtids) {
        if (q != kInvalidTid && tids[i] == q) {
          center = i;
          found = true;
          break;
        }
      }
    }
  }
  size_t half = context_tokens / 2;
  size_t lo = center > half ? center - half : 0;
  size_t hi = std::min(num_tokens, lo + context_tokens);
  if (hi - lo < context_tokens && hi == num_tokens) {
    lo = hi > context_tokens ? hi - context_tokens : 0;
  }
  size_t byte_lo = tok_begin_[tok_begin + lo];
  size_t byte_hi = tok_end_[tok_begin + hi - 1];
  std::string out = docs_[d].text.substr(byte_lo, byte_hi - byte_lo);
  // Normalize whitespace (including CR, so CRLF text stays single-line).
  for (char& c : out) {
    if (c == '\n' || c == '\t' || c == '\r') c = ' ';
  }
  return out;
}

size_t InvertedIndex::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const StoredDoc& d : docs_) {
    bytes += sizeof(StoredDoc) + d.text.capacity();
  }
  bytes += doc_index_.bucket_count() * sizeof(void*);
  bytes += doc_index_.size() *
           (sizeof(std::pair<DocId, uint32_t>) + 2 * sizeof(void*));
  bytes += doc_tok_offset_.capacity() * sizeof(size_t);
  bytes += tok_tid_.capacity() * sizeof(uint32_t);
  bytes += tok_begin_.capacity() * sizeof(uint32_t);
  bytes += tok_end_.capacity() * sizeof(uint32_t);
  bytes += term_ids_.bucket_count() * sizeof(void*);
  for (const auto& [term, tid] : term_ids_) {
    (void)tid;
    bytes += sizeof(std::pair<std::string, uint32_t>) + 2 * sizeof(void*);
    if (term.capacity() > sizeof(std::string)) bytes += term.capacity();
  }
  bytes += post_offset_.capacity() * sizeof(size_t);
  bytes += post_doc_.capacity() * sizeof(uint32_t);
  bytes += post_tf_.capacity() * sizeof(uint32_t);
  bytes += pos_offset_.capacity() * sizeof(uint64_t);
  bytes += pos_len_.capacity() * sizeof(uint32_t);
  bytes += pos_first_.capacity() * sizeof(uint32_t);
  bytes += pos_pool_.capacity();
  bytes += doc_len_.capacity() * sizeof(uint32_t);
  bytes += default_norm_.capacity() * sizeof(double);
  bytes += score_df_.capacity() * sizeof(double);
  bytes += block_index_.MemoryBytes();
  bytes += signatures_.MemoryBytes();
  return bytes;
}

}  // namespace ckr
