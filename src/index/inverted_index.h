// Positional inverted index with BM25 ranked retrieval, phrase search, and
// snippet generation — the substitute for the Yahoo! Search backend used by
// the paper's feature pipeline:
//  * feature (4) searchengine_phrase = number of results of a phrase query;
//  * relevant-keyword mining reads the snippets of the top-100 results;
//  * Prisma runs pseudo-relevance feedback over the top-50 results.
//
// Layout (PISA-style, frozen by Finalize()):
//  * terms are interned into dense ids at Add() time; lookups are
//    heterogeneous (string_view, no temporary std::string);
//  * postings live in CSR flat arrays — per-term slot ranges over
//    contiguous (doc, tf) columns, with each slot's token positions
//    delta-encoded through the framework's Golomb coder into one shared
//    byte pool (decoded only when a phrase check actually needs them);
//  * per-doc token-id streams + byte offsets (for phrase snippets) are
//    CSR too — no per-document string vectors survive Finalize();
//  * per-doc lengths and the default-parameter BM25 norm are precomputed.
// Search/PhraseSearch select the top k through a bounded heap instead of
// sorting the full result set, and the *ResultCount entry points count
// without materializing results at all. All results are bit-identical to
// LegacyInvertedIndex (the equivalence suite enforces this).
#ifndef CKR_INDEX_INVERTED_INDEX_H_
#define CKR_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "corpus/document.h"
#include "index/block_max_index.h"
#include "index/doc_signature.h"
#include "index/top_k.h"

namespace ckr {

/// How Finalize() assigns internal doc ids. External ids always ride
/// along, so ranked results are identical under every order; only the
/// compressed layout (delta gaps, block composition) changes.
enum class DocidOrder : uint8_t {
  kAddOrder = 0,   ///< Internal ids follow Add() order (the default).
  kBisection = 1,  ///< Recursive graph bisection (docid_reorder.h).
  kExplicit = 2,   ///< Caller-supplied permutation (tests, cluster hints).
};

/// Collection-level scoring statistics: everything BM25 takes from the
/// corpus as a whole rather than from one document. A sharded deployment
/// computes each shard's LocalCollectionStats(), folds them together with
/// Absorb(), and pushes the merged totals back into every shard via
/// InvertedIndex::OverrideCollectionStats() — after which each shard
/// scores with the *union's* n / df / avg_doc_len, so per-document BM25
/// contributions are bit-identical to a single index over all documents
/// (the sharded-serving exactness contract, see src/serve/).
struct CollectionStats {
  uint64_t num_docs = 0;
  uint64_t total_tokens = 0;
  /// Term -> number of documents containing it, collection-wide.
  std::unordered_map<std::string, uint64_t> doc_freq;

  /// Folds `other` into this: counts add, term frequencies union+add.
  /// Commutative and associative over integers, so any merge order yields
  /// the same stats.
  void Absorb(const CollectionStats& other);
};

/// Build-time knobs for million-doc, out-of-core-friendly index builds.
/// Must be fixed at construction (Add() consults store_text). The default
/// state is byte-for-byte the historical behaviour.
struct IndexBuildOptions {
  /// Keep raw document text and per-token byte offsets. Required by
  /// Snippet()/DocText(); at corpus scale the text dominates peak memory,
  /// so streaming builds switch it off (Snippet/DocText then return "").
  ///
  /// Degraded-path contract: only the *text* surface degrades. The
  /// per-doc token-id streams and the Golomb position pool are always
  /// retained, so Search, RegularResultCount, PhraseResultCount and
  /// PhraseSearch return exactly the same results/counts as a
  /// store_text=true build (regression-tested in tests/index_test.cc);
  /// Snippet()/DocText() return "" instead of failing.
  bool store_text = true;
  /// Build the BlockMaxIndex eagerly inside Finalize(). Switching it off
  /// avoids doubling peak memory during million-doc builds; call
  /// RebuildBlockIndex() later, or leave it off — pruned evaluators fall
  /// back to the exhaustive scorer (identical results) until it exists.
  bool build_block_index = true;
  /// Build the per-document term-signature matrix inside Finalize() and
  /// gate the multi-term phrase paths (PhraseResultCount, PhraseSearch)
  /// behind its exact-safe AND-mask prefilter (doc_signature.h). The
  /// prefilter only ever skips documents that provably lack a phrase
  /// term, so results are bit-identical with it on or off
  /// (property-tested); switching it off saves bits()/8 bytes per doc
  /// and disables RelatedDocuments().
  bool build_signature_filter = true;
  /// Shape of the signature matrix (width, probes per term).
  SignatureConfig signature;
  BlockCodec block_codec = BlockCodec::kVarintGB;
  DocidOrder docid_order = DocidOrder::kAddOrder;
  /// For kExplicit: `explicit_order[i]` = Add()-order doc index placed at
  /// internal position i. Must be a permutation of [0, NumDocs()).
  std::vector<uint32_t> explicit_order;
};

/// Immutable after Finalize(); thread-safe for concurrent reads.
class InvertedIndex {
 public:
  InvertedIndex() = default;
  explicit InvertedIndex(IndexBuildOptions options)
      : options_(std::move(options)) {}

  /// Indexes a document; `doc.id` must be unique within the index.
  void Add(const Document& doc);

  /// Builds postings and collection statistics; call once after all Add()s.
  /// Applies the configured docid order first (the permutation/remap
  /// contract: every Search/count result is identical under any order
  /// because scores depend only on per-doc statistics and ties break on
  /// external ids — property-tested in tests/property_test.cc).
  void Finalize();

  bool finalized() const { return finalized_; }
  size_t NumDocs() const { return docs_.size(); }
  size_t NumTerms() const { return term_ids_.size(); }

  /// External id of internal document `d` (requires d < NumDocs()). The
  /// serving layer uses this to validate that shards hold disjoint
  /// document sets.
  DocId ExternalDocId(uint32_t d) const { return docs_[d].id; }

  /// Document frequency of a term (heterogeneous lookup — no allocation).
  uint32_t DocFreq(std::string_view term) const;

  /// This index's own collection statistics (requires finalized()).
  CollectionStats LocalCollectionStats() const;

  /// Replaces the statistics BM25 scores with (n, per-term df,
  /// avg_doc_len) by collection-wide values — the sharded-serving seam.
  /// Validates first (`stats` must dominate the local statistics: at
  /// least as many docs/tokens, and every local term present with df >=
  /// its local df); nothing is mutated on failure. On success the
  /// default-parameter norms are recomputed and, when a block index
  /// exists, it is rebuilt under the same codec so the pruned evaluators
  /// score with the same statistics. Serialized block indexes do not
  /// carry the override: LoadBlockIndex() refuses while one is active
  /// (rebuild instead).
  [[nodiscard]] Status OverrideCollectionStats(const CollectionStats& stats);

  /// True after a successful OverrideCollectionStats().
  bool collection_stats_overridden() const { return stats_overridden_; }

  /// BM25 disjunctive retrieval over the query's normalized terms.
  ///
  /// Ranking contract (every evaluator): results are ordered by
  /// descending score; equal-score documents by ascending external doc
  /// id. The order is total, so the returned top-k is unique.
  ///
  /// `evaluator` selects the top-k algorithm (top_k.h). The pruned
  /// evaluators (MaxScore, Block-Max-WAND) run on the block-compressed
  /// index and return the exact exhaustive result — same documents,
  /// bit-identical scores — but their max-score metadata is precomputed
  /// for the default Bm25Params, so a query with non-default parameters
  /// silently falls back to the exhaustive scorer.
  std::vector<SearchResult> Search(
      std::string_view query, size_t k, const Bm25Params& params = {},
      QueryEvaluator evaluator = QueryEvaluator::kExhaustive) const;

  /// Number of documents matching the disjunctive query. Count-only fast
  /// path: marks the posting union in a doc bitmap, no scoring/sorting.
  uint64_t RegularResultCount(std::string_view query) const;

  /// Number of documents containing the phrase contiguously — the paper's
  /// "number of result pages returned" for a phrase query. Count-only:
  /// intersects doc lists and stops at the first adjacency witness per
  /// document instead of materializing a ranked result set.
  ///
  /// An empty/whitespace-only phrase or one containing an
  /// out-of-vocabulary term returns 0 (no document can contain it).
  /// When the index carries signatures, multi-term counting first rejects
  /// seed documents whose signature cannot cover every phrase term
  /// (exact-safe: the count is identical with the prefilter on or off).
  uint64_t PhraseResultCount(std::string_view phrase) const;

  /// Ranked documents containing the phrase contiguously (BM25 over the
  /// phrase's terms, restricted to phrase matches).
  std::vector<SearchResult> PhraseSearch(std::string_view phrase,
                                         size_t k) const;

  /// Approximate "related documents": the top-k other documents ranked by
  /// Hamming similarity between term signatures (bits - popcount(XOR) —
  /// high when the documents share most of their vocabulary). Ranking
  /// contract matches Search: descending similarity, ties by ascending
  /// external doc id, so the result is unique and docid-order invariant.
  /// Returns empty if `doc` is unknown or the index was built with
  /// build_signature_filter=false.
  std::vector<SearchResult> RelatedDocuments(DocId doc, size_t k) const;

  /// True once Finalize() built the signature matrix.
  bool has_signatures() const { return has_signatures_; }

  /// The per-document signature matrix (requires has_signatures()).
  const SignatureMatrix& signatures() const { return signatures_; }

  /// Builds a query-biased snippet for a result: a window of
  /// `context_tokens` tokens centered on the first query-term hit.
  std::string Snippet(DocId doc, std::string_view query,
                      size_t context_tokens = 30) const;

  /// Raw text of an indexed document.
  const std::string& DocText(DocId doc) const;

  /// Approximate heap footprint of the index structures — the memory row
  /// of bench_offline_perf.
  size_t MemoryBytes() const;

  /// Bytes of the Golomb-compressed positions pool (diagnostics).
  size_t PositionPoolBytes() const { return pos_pool_.size(); }

  /// The block-compressed pruning index backing the MaxScore /
  /// Block-Max-WAND evaluators. Finalize() builds it (with the configured
  /// codec) unless options.build_block_index is false.
  const BlockMaxIndex& block_index() const { return block_index_; }

  /// True once a block index exists (eager Finalize build, explicit
  /// RebuildBlockIndex, or LoadBlockIndex). While false, Search() routes
  /// pruned evaluators through the exhaustive scorer.
  bool has_block_index() const { return has_block_index_; }

  /// Build options this index was constructed with.
  const IndexBuildOptions& build_options() const { return options_; }

  /// Rebuilds the block index under a different codec (the evaluators and
  /// results are codec-independent; only the compressed size changes).
  void RebuildBlockIndex(BlockCodec codec);

  /// Serialized block index (current format version).
  std::string SerializeBlockIndex() const { return block_index_.Serialize(); }

  /// Replaces the block index with a deserialized blob after validating it
  /// agrees with this index (same doc count, external ids, and term
  /// count). The blob is fully validated before anything is replaced.
  [[nodiscard]] Status LoadBlockIndex(std::string_view blob);

 private:
  static constexpr uint32_t kInvalidTid = 0xffffffffu;

  struct StoredDoc {
    DocId id = 0;
    std::string text;
  };

  /// Permutes docs_ and the CSR token streams into the configured docid
  /// order (no-op for kAddOrder / identity orders). Runs first in
  /// Finalize(), so every downstream structure sees the final order.
  void ApplyDocidOrder();

  /// Interns `token`, assigning the next dense id on first sight.
  uint32_t InternTerm(std::string_view token);
  /// Dense id of a term, or kInvalidTid if unseen.
  uint32_t LookupTerm(std::string_view term) const;

  int32_t FindDocIndex(DocId id) const;
  /// Decodes the positions blob of posting slot `slot` into `*out`.
  void DecodePositions(size_t slot, std::vector<uint32_t>* out) const;
  /// Resolves a phrase to term ids and per-term posting slot ranges;
  /// returns false if the phrase is empty or any term is unseen.
  bool ResolvePhrase(std::string_view phrase, std::vector<uint32_t>* tids,
                     size_t* rarest) const;
  /// True if doc `d` contains the phrase starting at any position. Decodes
  /// only the rarest term's position list (slot `rarest_slot`, reusable
  /// buffer `pos_buf`) and verifies each candidate window directly against
  /// the doc's token-id stream — no other position list is touched. With
  /// `num_starts` all starts are counted; without it the first witness
  /// returns early.
  bool PhraseInDoc(uint32_t d, const std::vector<uint32_t>& tids,
                   size_t rarest, size_t rarest_slot,
                   std::vector<uint32_t>* pos_buf,
                   uint32_t* num_starts) const;

  // ---- Documents (CSR token streams; built during Add) ----
  std::vector<StoredDoc> docs_;
  std::unordered_map<DocId, uint32_t> doc_index_;
  std::vector<size_t> doc_tok_offset_;   ///< docs+1 offsets into pools below.
  std::vector<uint32_t> tok_tid_;        ///< Token term ids, all docs.
  std::vector<uint32_t> tok_begin_;      ///< Byte offset per token.
  std::vector<uint32_t> tok_end_;

  // ---- Term dictionary ----
  std::unordered_map<std::string, uint32_t, StringViewHash, std::equal_to<>>
      term_ids_;

  // ---- Postings (CSR; built by Finalize) ----
  std::vector<size_t> post_offset_;      ///< terms+1 slot offsets.
  std::vector<uint32_t> post_doc_;       ///< Doc index per slot.
  std::vector<uint32_t> post_tf_;        ///< Term frequency per slot.
  std::vector<uint64_t> pos_offset_;     ///< Positions blob start per slot.
  std::vector<uint32_t> pos_len_;        ///< Positions blob length per slot.
  std::vector<uint32_t> pos_first_;      ///< First position per slot (phrase
                                         ///< checks skip the decode when
                                         ///< tf == 1 or the first occurrence
                                         ///< is already a witness).
  std::vector<uint8_t> pos_pool_;        ///< Golomb-coded positions.

  // ---- Collection statistics ----
  std::vector<uint32_t> doc_len_;        ///< Tokens per doc.
  std::vector<double> default_norm_;     ///< k1*(1-b+b*dl/avg), default params.
  double avg_doc_len_ = 0.0;             ///< Scoring avg (global if overridden).
  double score_num_docs_ = 0.0;          ///< n used by idf (global if overridden).
  std::vector<double> score_df_;         ///< Per-tid df override (empty unless
                                         ///< stats_overridden_).
  bool stats_overridden_ = false;
  bool finalized_ = false;

  // ---- Block-compressed pruning index (built by Finalize) ----
  BlockMaxIndex block_index_;
  bool has_block_index_ = false;

  // ---- Per-document term signatures (built by Finalize) ----
  SignatureMatrix signatures_;
  bool has_signatures_ = false;

  IndexBuildOptions options_;
};

}  // namespace ckr

#endif  // CKR_INDEX_INVERTED_INDEX_H_
