// Positional inverted index with BM25 ranked retrieval, phrase search, and
// snippet generation — the substitute for the Yahoo! Search backend used by
// the paper's feature pipeline:
//  * feature (4) searchengine_phrase = number of results of a phrase query;
//  * relevant-keyword mining reads the snippets of the top-100 results;
//  * Prisma runs pseudo-relevance feedback over the top-50 results.
#ifndef CKR_INDEX_INVERTED_INDEX_H_
#define CKR_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "corpus/document.h"

namespace ckr {

/// One ranked hit.
struct SearchResult {
  DocId doc = 0;
  double score = 0.0;
};

/// BM25 parameters (standard defaults).
struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
};

/// Immutable after Finalize(). Stores normalized token streams per document
/// for phrase matching and snippeting.
class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Indexes a document; `doc.id` must be unique within the index.
  void Add(const Document& doc);

  /// Builds postings and collection statistics; call once after all Add()s.
  void Finalize();

  bool finalized() const { return finalized_; }
  size_t NumDocs() const { return docs_.size(); }
  size_t NumTerms() const { return postings_.size(); }

  /// Document frequency of a term.
  uint32_t DocFreq(std::string_view term) const;

  /// BM25 disjunctive retrieval over the query's normalized terms.
  std::vector<SearchResult> Search(std::string_view query, size_t k,
                                   const Bm25Params& params = {}) const;

  /// Number of documents containing the phrase contiguously — the paper's
  /// "number of result pages returned" for a phrase query.
  uint64_t PhraseResultCount(std::string_view phrase) const;

  /// Ranked documents containing the phrase contiguously (BM25 over the
  /// phrase's terms, restricted to phrase matches).
  std::vector<SearchResult> PhraseSearch(std::string_view phrase,
                                         size_t k) const;

  /// Builds a query-biased snippet for a result: a window of
  /// `context_tokens` tokens centered on the first query-term hit.
  std::string Snippet(DocId doc, std::string_view query,
                      size_t context_tokens = 30) const;

  /// Raw text of an indexed document.
  const std::string& DocText(DocId doc) const;

 private:
  struct Posting {
    uint32_t doc_index = 0;          ///< Index into docs_.
    std::vector<uint32_t> positions; ///< Token positions.
  };
  struct StoredDoc {
    DocId id = 0;
    std::string text;
    std::vector<std::string> tokens;      ///< Normalized tokens.
    std::vector<uint32_t> token_begin;    ///< Byte offset per token.
    std::vector<uint32_t> token_end;
  };

  const StoredDoc* FindDoc(DocId id) const;
  /// Positions where the phrase's tokens occur contiguously in `doc`.
  static std::vector<uint32_t> PhrasePositions(
      const std::vector<const Posting*>& term_postings, size_t doc_index);

  std::vector<StoredDoc> docs_;
  std::unordered_map<DocId, uint32_t> doc_index_;
  std::unordered_map<std::string, std::vector<Posting>> postings_;
  double avg_doc_len_ = 0.0;
  bool finalized_ = false;
};

}  // namespace ckr

#endif  // CKR_INDEX_INVERTED_INDEX_H_
