#include "index/docid_reorder.h"

#include <algorithm>
#include <cmath>

namespace ckr {
namespace {

/// Recursive bisection state shared across levels: the (filtered) forward
/// index, the evolving order, the per-side degree counters (zeroed via
/// touch lists so a level only pays for the terms it sees), and a log2
/// table so the gain inner loop is pure lookups.
class Bisector {
 public:
  Bisector(Span<const uint32_t> tok_tid, Span<const size_t> doc_tok_offset,
           size_t num_terms, const BisectionParams& params)
      : params_(params) {
    const size_t num_docs = doc_tok_offset.size() - 1;
    // Document frequency per term, to filter the forward index: terms with
    // one posting have no gap to shrink, and near-ubiquitous terms (df >
    // docs/4) already have ~unit gaps under any order. Both classes only
    // slow the gain passes down.
    std::vector<uint32_t> df(num_terms, 0);
    std::vector<uint32_t> seen(num_terms, 0xffffffffu);
    for (size_t d = 0; d < num_docs; ++d) {
      for (size_t i = doc_tok_offset[d]; i < doc_tok_offset[d + 1]; ++i) {
        const uint32_t t = tok_tid[i];
        if (seen[t] != d) {
          seen[t] = static_cast<uint32_t>(d);
          ++df[t];
        }
      }
    }
    const uint32_t df_cap =
        std::max<uint32_t>(8, static_cast<uint32_t>(num_docs / 4));
    fwd_offset_.reserve(num_docs + 1);
    fwd_offset_.push_back(0);
    std::vector<uint32_t> uniq;
    for (size_t d = 0; d < num_docs; ++d) {
      uniq.assign(tok_tid.begin() + static_cast<ptrdiff_t>(doc_tok_offset[d]),
                  tok_tid.begin() +
                      static_cast<ptrdiff_t>(doc_tok_offset[d + 1]));
      std::sort(uniq.begin(), uniq.end());
      uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
      for (uint32_t t : uniq) {
        if (df[t] >= 2 && df[t] <= df_cap) fwd_terms_.push_back(t);
      }
      fwd_offset_.push_back(fwd_terms_.size());
    }
    deg_l_.assign(num_terms, 0);
    deg_r_.assign(num_terms, 0);
    log2_.resize(num_docs + 2);
    for (size_t i = 1; i < log2_.size(); ++i) {
      log2_[i] = std::log2(static_cast<double>(i));
    }
    order_.resize(num_docs);
    for (size_t d = 0; d < num_docs; ++d) {
      order_[d] = static_cast<uint32_t>(d);
    }
  }

  std::vector<uint32_t> Run() {
    if (order_.size() > params_.min_partition) Bisect(0, order_.size());
    return std::move(order_);
  }

 private:
  Span<const uint32_t> Terms(uint32_t doc) const {
    return Span<const uint32_t>(fwd_terms_.data() + fwd_offset_[doc],
                                fwd_offset_[doc + 1] - fwd_offset_[doc]);
  }

  /// The KDD'16 cost surrogate: encoding deg gaps of one term over an
  /// n-doc partition costs ~deg * log2(n / (deg + 1)) bits.
  double Cost(uint32_t deg, double log2_n) const {
    return deg == 0
               ? 0.0
               : static_cast<double>(deg) * (log2_n - log2_[deg + 1]);
  }

  void Bisect(size_t lo, size_t hi) {
    const size_t n = hi - lo;
    if (n <= params_.min_partition) return;
    const size_t mid = lo + n / 2;
    const size_t nl = mid - lo;
    const size_t nr = hi - mid;
    const double log2_nl = log2_[nl];
    const double log2_nr = log2_[nr];

    std::vector<std::pair<double, size_t>> gain_l(nl);  // (gain, position)
    std::vector<std::pair<double, size_t>> gain_r(nr);
    for (int pass = 0; pass < params_.max_passes; ++pass) {
      // Degrees of every term within each half, reset via the touch list.
      for (size_t p = lo; p < hi; ++p) {
        std::vector<uint32_t>& deg = p < mid ? deg_l_ : deg_r_;
        for (uint32_t t : Terms(order_[p])) {
          if (deg_l_[t] == 0 && deg_r_[t] == 0) touched_.push_back(t);
          ++deg[t];
        }
      }
      // Move gains. For a doc in L, moving it to R takes every one of its
      // terms from (deg_l, deg_r) to (deg_l - 1, deg_r + 1); the gain is
      // the cost drop of that transition (symmetrically for R).
      for (size_t p = lo; p < mid; ++p) {
        double g = 0.0;
        for (uint32_t t : Terms(order_[p])) {
          g += Cost(deg_l_[t], log2_nl) + Cost(deg_r_[t], log2_nr) -
               Cost(deg_l_[t] - 1, log2_nl) - Cost(deg_r_[t] + 1, log2_nr);
        }
        gain_l[p - lo] = {g, p};
      }
      for (size_t p = mid; p < hi; ++p) {
        double g = 0.0;
        for (uint32_t t : Terms(order_[p])) {
          g += Cost(deg_l_[t], log2_nl) + Cost(deg_r_[t], log2_nr) -
               Cost(deg_r_[t] - 1, log2_nr) - Cost(deg_l_[t] + 1, log2_nl);
        }
        gain_r[p - mid] = {g, p};
      }
      for (uint32_t t : touched_) {
        deg_l_[t] = 0;
        deg_r_[t] = 0;
      }
      touched_.clear();
      // Deterministic order: gain descending, then the (unique) old doc id
      // at the position — no dependence on sort stability.
      auto rank = [this](const std::pair<double, size_t>& a,
                         const std::pair<double, size_t>& b) {
        if (a.first != b.first) return a.first > b.first;
        return order_[a.second] < order_[b.second];
      };
      std::sort(gain_l.begin(), gain_l.end(), rank);
      std::sort(gain_r.begin(), gain_r.end(), rank);
      size_t swaps = 0;
      for (size_t i = 0; i < std::min(nl, nr); ++i) {
        if (gain_l[i].first + gain_r[i].first <= 0.0) break;
        std::swap(order_[gain_l[i].second], order_[gain_r[i].second]);
        ++swaps;
      }
      if (swaps == 0) break;
    }
    Bisect(lo, mid);
    Bisect(mid, hi);
  }

  BisectionParams params_;
  std::vector<uint32_t> fwd_terms_;
  std::vector<size_t> fwd_offset_;
  std::vector<uint32_t> order_;
  std::vector<uint32_t> deg_l_;
  std::vector<uint32_t> deg_r_;
  std::vector<uint32_t> touched_;
  std::vector<double> log2_;
};

}  // namespace

std::vector<uint32_t> ComputeBisectionOrder(Span<const uint32_t> tok_tid,
                                            Span<const size_t> doc_tok_offset,
                                            size_t num_terms,
                                            const BisectionParams& params) {
  CKR_CHECK(!doc_tok_offset.empty());
  const size_t num_docs = doc_tok_offset.size() - 1;
  if (num_docs == 0) return {};
  CKR_CHECK(params.min_partition >= 1);
  Bisector bisector(tok_tid, doc_tok_offset, num_terms, params);
  return bisector.Run();
}

}  // namespace ckr
