// Block-compressed posting lists with skip metadata — the pruning-capable
// postings representation that backs the MaxScore / Block-Max-WAND
// evaluators (block_max_index.h).
//
// Layout (all CSR, frozen by the builder):
//  * each term's postings are cut into fixed 128-entry blocks; every block
//    encodes its doc-id gaps (minus one) and tf values (minus one)
//    independently through a pluggable integer codec (block_codecs.h),
//    so a cursor decodes only the blocks a query actually visits;
//  * per block the store keeps the last doc id (the skip pointer NextGEQ
//    binary-searches / scans), the byte offsets of its two blobs, and the
//    maximum exact BM25 contribution of any posting in the block (the
//    Block-Max-WAND upper bound);
//  * per term it keeps the posting count and the list-wide maximum
//    contribution (the MaxScore upper bound).
//
// Upper-bound exactness: block/term maxima are the *same doubles* the
// scorer computes (idf * tf * (k1+1) / (tf + norm)), so bounds dominate
// scores by IEEE monotonicity — no epsilon slack, which is what lets the
// pruned evaluators return bit-identical top-k sets (see
// block_max_index.cc for the dominance argument).
#ifndef CKR_INDEX_BLOCK_POSTINGS_H_
#define CKR_INDEX_BLOCK_POSTINGS_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "index/block_codecs.h"

namespace ckr {

class BinaryReader;
class BinaryWriter;

/// Docs per block. 128 keeps a decoded block (docs + tfs) within two
/// cache lines per column and matches the granularity PISA-style engines
/// use for block-max metadata.
inline constexpr uint32_t kPostingBlockSize = 128;

/// Immutable block-compressed postings for a whole term dictionary.
class BlockPostingsStore {
 public:
  /// Assembles a store term by term (defined after the class — it holds
  /// the store it grows by value). Terms must be added in dense id order,
  /// docs strictly ascending within a term.
  class Builder;

  BlockPostingsStore() = default;

  BlockCodec codec() const { return codec_; }
  size_t NumTerms() const {
    return term_block_offset_.empty() ? 0 : term_block_offset_.size() - 1;
  }
  size_t NumBlocks() const { return block_last_doc_.size(); }
  uint64_t NumPostings() const { return num_postings_; }

  uint32_t TermPostings(uint32_t tid) const { return term_postings_[tid]; }
  uint32_t TermBlocks(uint32_t tid) const {
    return term_block_offset_[tid + 1] - term_block_offset_[tid];
  }
  double TermMaxScore(uint32_t tid) const { return term_max_score_[tid]; }

  /// Bytes of the two encoded pools — the number the >= 2x-vs-CSR
  /// compression acceptance compares.
  size_t CompressedPostingBytes() const {
    return doc_pool_.size() + tf_pool_.size();
  }
  /// Pools plus every metadata column.
  size_t MemoryBytes() const;

  /// Serializes every column (pools, offsets, skip + max metadata) in
  /// index order. `include_maxes` matches the format version: v1 blobs
  /// predate the max-score columns, v2 blobs carry them.
  void AppendTo(BinaryWriter* writer, bool include_maxes) const;

  /// Parses an AppendTo payload. Validates counts against the remaining
  /// bytes before any allocation, CSR monotonicity, and blob offsets;
  /// callers owning the blob format must then run ValidateBlocksDecode
  /// (codec well-formedness, doc ordering). When `expect_maxes` is false
  /// (a v1 blob), the max columns come back empty; call
  /// RecomputeMaxScores before handing the store to a cursor.
  [[nodiscard]] static StatusOr<BlockPostingsStore> ReadFrom(
      BinaryReader* reader, BlockCodec codec, bool expect_maxes);

  /// Rebuilds the per-block / per-term max-score columns by decoding
  /// every block and evaluating the exact default-parameter contribution
  /// idf * tf * (k1+1) / (tf + norm) — the v1-blob upgrade path.
  [[nodiscard]] Status RecomputeMaxScores(Span<const double> term_idf,
                                          Span<const double> default_norm);

  /// Decodes every block and rejects malformed codec payloads,
  /// non-ascending or out-of-range doc ids, zero tfs, and skip pointers
  /// that disagree with block contents. Run on every untrusted load (v1
  /// gets the decode for free via RecomputeMaxScores but still needs the
  /// range checks).
  [[nodiscard]] Status ValidateBlocksDecode(uint64_t num_docs) const;

  // ---- Cursor support (read-only views over the frozen columns) ----
  uint32_t TermFirstBlock(uint32_t tid) const {
    return term_block_offset_[tid];
  }
  uint32_t BlockLastDoc(uint32_t block) const {
    return block_last_doc_[block];
  }
  double BlockMaxScore(uint32_t block) const { return block_max_score_[block]; }
  /// Docs held by global block `block` of term `tid` (all blocks are full
  /// except a term's last).
  uint32_t BlockDocCount(uint32_t tid, uint32_t block) const;
  /// Decodes one block's doc ids and tfs into `docs[0..count)` /
  /// `tfs[0..count)`; count = BlockDocCount. Encoded gaps are rebased on
  /// the previous block's last doc (0 for a term's first block).
  [[nodiscard]] Status DecodeBlockInto(uint32_t tid, uint32_t block,
                                       uint32_t* docs, uint32_t* tfs) const;

 private:
  friend class Builder;

  [[nodiscard]] Status LoadColumns(BinaryReader* reader, bool expect_maxes);
  [[nodiscard]] Status ValidateAfterLoad(bool expect_maxes);

  BlockCodec codec_ = BlockCodec::kVarintGB;
  uint64_t num_postings_ = 0;
  std::vector<uint32_t> term_block_offset_;  ///< terms+1, global block CSR.
  std::vector<uint32_t> term_postings_;      ///< Postings per term.
  std::vector<double> term_max_score_;       ///< Max contribution per term.
  std::vector<uint32_t> block_last_doc_;     ///< Skip pointer per block.
  std::vector<double> block_max_score_;      ///< Max contribution per block.
  std::vector<uint64_t> block_doc_offset_;   ///< blocks+1 into doc_pool_.
  std::vector<uint64_t> block_tf_offset_;    ///< blocks+1 into tf_pool_.
  std::vector<uint8_t> doc_pool_;            ///< Encoded doc-gap blobs.
  std::vector<uint8_t> tf_pool_;             ///< Encoded tf-1 blobs.
};

class BlockPostingsStore::Builder {
 public:
  explicit Builder(BlockCodec codec) : codec_(codec) {}

  /// Appends term `tid` (== number of AddTerm calls so far). `scores[i]`
  /// is the exact BM25 contribution of posting i (default parameters);
  /// the builder folds these into per-block and per-term maxima.
  void AddTerm(Span<const uint32_t> docs, Span<const uint32_t> tfs,
               Span<const double> scores);

  BlockPostingsStore Finish();

 private:
  BlockCodec codec_;
  BlockPostingsStore store_;
  std::vector<uint32_t> scratch_;
  bool finished_ = false;
};

/// Skip-capable decoding iterator over one term's block postings. The
/// cursor is always positioned on a real posting (or at the end); blocks
/// are decoded lazily, so NextGEQ jumps straight to the target's block via
/// the last-doc skip pointers and never touches the blocks in between.
class PostingCursor {
 public:
  /// doc() value once the list is exhausted; compares greater than every
  /// real doc id.
  static constexpr uint32_t kEndDoc = 0xffffffffu;

  PostingCursor() = default;
  PostingCursor(const BlockPostingsStore* store, uint32_t tid);

  uint32_t doc() const { return cur_doc_; }
  /// Term frequency at the current posting (undefined at end).
  uint32_t tf() const {
    CKR_DCHECK(!AtEnd());
    return tfs_[pos_];
  }
  bool AtEnd() const { return cur_doc_ == kEndDoc; }

  uint32_t postings() const { return postings_; }
  double term_max_score() const { return term_max_; }
  /// Upper bound of the current block (undefined at end).
  double block_max_score() const {
    CKR_DCHECK(!AtEnd());
    return store_->BlockMaxScore(first_block_ + cur_block_);
  }

  /// Advances one posting.
  void Next();
  /// Advances to the first posting with doc >= target (no-op when already
  /// there). Skips and never decodes blocks whose last doc < target.
  void NextGEQ(uint32_t target);

  /// Shallow Block-Max-WAND probe: the max score and last doc of the
  /// block that contains the first posting >= target, without moving the
  /// cursor or decoding anything. Requires doc() <= target < kEndDoc.
  struct BlockBound {
    double max_score = 0.0;
    uint32_t last_doc = kEndDoc;
  };
  BlockBound ShallowBound(uint32_t target) const;

 private:
  void DecodeBlock(uint32_t rel_block);

  const BlockPostingsStore* store_ = nullptr;
  uint32_t tid_ = 0;
  uint32_t first_block_ = 0;
  uint32_t num_blocks_ = 0;
  uint32_t postings_ = 0;
  double term_max_ = 0.0;
  uint32_t cur_block_ = 0;  ///< Relative to first_block_.
  uint32_t count_ = 0;      ///< Postings in the decoded block.
  uint32_t pos_ = 0;        ///< Index into the decoded block.
  uint32_t cur_doc_ = kEndDoc;
  uint32_t docs_[kPostingBlockSize];
  uint32_t tfs_[kPostingBlockSize];
};

}  // namespace ckr

#endif  // CKR_INDEX_BLOCK_POSTINGS_H_
