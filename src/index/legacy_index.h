// The original string-keyed inverted index (unordered_map postings, full
// result-set materialization for counts). Superseded by the term-id flat
// layout in inverted_index.h; kept as the reference implementation for the
// equivalence suite and the old-vs-new rows of bench_offline_perf.
#ifndef CKR_INDEX_LEGACY_INDEX_H_
#define CKR_INDEX_LEGACY_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "corpus/document.h"
#include "index/inverted_index.h"

namespace ckr {

/// Immutable after Finalize(). Stores normalized token streams per document
/// for phrase matching and snippeting.
class LegacyInvertedIndex {
 public:
  LegacyInvertedIndex() = default;

  /// Indexes a document; `doc.id` must be unique within the index.
  void Add(const Document& doc);

  /// Builds postings and collection statistics; call once after all Add()s.
  void Finalize();

  bool finalized() const { return finalized_; }
  size_t NumDocs() const { return docs_.size(); }
  size_t NumTerms() const { return postings_.size(); }

  /// Document frequency of a term.
  uint32_t DocFreq(std::string_view term) const;

  /// BM25 disjunctive retrieval over the query's normalized terms.
  std::vector<SearchResult> Search(std::string_view query, size_t k,
                                   const Bm25Params& params = {}) const;

  /// Number of documents containing the phrase contiguously. Materializes
  /// and sorts the full result set just to take its size — the cost the
  /// flat index's count-only path removes.
  uint64_t PhraseResultCount(std::string_view phrase) const;

  /// Number of documents matching the disjunctive query, via full
  /// materialization (the legacy SearchService::RegularResultCount path).
  uint64_t RegularResultCount(std::string_view query) const;

  /// Ranked documents containing the phrase contiguously.
  std::vector<SearchResult> PhraseSearch(std::string_view phrase,
                                         size_t k) const;

  /// Builds a query-biased snippet for a result.
  std::string Snippet(DocId doc, std::string_view query,
                      size_t context_tokens = 30) const;

  /// Raw text of an indexed document.
  const std::string& DocText(DocId doc) const;

  /// Approximate heap footprint of the index structures (postings, token
  /// streams, doc map) — the memory row of bench_offline_perf.
  size_t MemoryBytes() const;

 private:
  struct Posting {
    uint32_t doc_index = 0;          ///< Index into docs_.
    std::vector<uint32_t> positions; ///< Token positions.
  };
  struct StoredDoc {
    DocId id = 0;
    std::string text;
    std::vector<std::string> tokens;      ///< Normalized tokens.
    std::vector<uint32_t> token_begin;    ///< Byte offset per token.
    std::vector<uint32_t> token_end;
  };

  const StoredDoc* FindDoc(DocId id) const;
  /// Positions where the phrase's tokens occur contiguously in `doc`.
  static std::vector<uint32_t> PhrasePositions(
      const std::vector<const Posting*>& term_postings, size_t doc_index);

  std::vector<StoredDoc> docs_;
  std::unordered_map<DocId, uint32_t> doc_index_;
  std::unordered_map<std::string, std::vector<Posting>> postings_;
  double avg_doc_len_ = 0.0;
  bool finalized_ = false;
};

}  // namespace ckr

#endif  // CKR_INDEX_LEGACY_INDEX_H_
