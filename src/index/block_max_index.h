// Block-max query evaluation: the pruning-capable retrieval structure that
// answers disjunctive BM25 top-k queries without scoring every posting.
// Wraps a BlockPostingsStore (block-compressed postings + skip and
// max-score metadata) together with everything scoring needs — the
// external doc ids results are ranked by, the precomputed default-parameter
// norms, and per-term idf — so the structure is self-contained and
// serializable independently of the full InvertedIndex.
//
// Three evaluators, one contract: TopK returns the *identical* result list
// (same documents, bit-identical scores, same order) for every
// QueryEvaluator; the pruned ones merely skip work. The exactness argument
// (also enforced by the equivalence tests):
//  * a document's score is the IEEE left-to-right sum of its terms' exact
//    contributions in query order — the very accumulation order the
//    exhaustive CSR scorer uses, and absent terms add an exact 0.0, which
//    is an identity on the nonnegative partial sums;
//  * every upper bound (per-term maxima for MaxScore, per-block maxima for
//    Block-Max-WAND) is the fl-sum *in the same query order* of values
//    that dominate the exact contributions elementwise; round-to-nearest
//    addition is monotone, so the bound dominates any achievable score
//    with zero ULP of slack;
//  * a candidate is discarded only when its bound is *strictly* below the
//    current k-th score — a document tying the threshold can still enter
//    through the ascending-doc-id tie-break (top_k.h) — so no document of
//    the true top-k is ever pruned.
#ifndef CKR_INDEX_BLOCK_MAX_INDEX_H_
#define CKR_INDEX_BLOCK_MAX_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "corpus/document.h"
#include "index/block_postings.h"
#include "index/top_k.h"

namespace ckr {

/// On-disk magic of a serialized BlockMaxIndex ('CKRX').
inline constexpr uint32_t kBlockIndexMagic = 0x434b5258;
/// Current format version. v1 blobs (no max-score columns) load too: the
/// loader rebuilds the maxima from the postings, bit-identically, since
/// they are pure functions of (df, tf, norm).
inline constexpr uint16_t kBlockIndexVersion = 2;

/// Immutable after Builder::Finish() / Deserialize(); thread-safe for
/// concurrent reads (TopK shares no mutable state).
class BlockMaxIndex {
 public:
  /// Assembles the index (defined after the class — it holds the index it
  /// grows by value). Terms must be added in dense term-id order with
  /// doc indices strictly ascending; `ext_ids[d]` is the external id
  /// results carry for internal doc `d`, `default_norm[d]` the
  /// precomputed k1*(1-b+b*dl/avg) BM25 norm.
  class Builder;

  BlockMaxIndex() = default;

  size_t NumDocs() const { return ext_id_.size(); }
  size_t NumTerms() const { return store_.NumTerms(); }
  BlockCodec codec() const { return store_.codec(); }
  const BlockPostingsStore& store() const { return store_; }
  /// External id of internal doc `d` (the id results rank by).
  DocId ExternalId(uint32_t d) const { return ext_id_[d]; }

  /// BM25 top-k over the disjunction of `tids` (dense term ids, distinct,
  /// in *query evaluation order* — score sums follow this order, which is
  /// what makes all evaluators bit-identical to the exhaustive CSR path).
  /// Ranking contract: descending score, ties by ascending external id.
  std::vector<SearchResult> TopK(Span<const uint32_t> tids, size_t k,
                                 QueryEvaluator evaluator) const;

  /// Serializes at the current format version.
  std::string Serialize() const { return SerializeVersion(kBlockIndexVersion); }
  /// Serializes at an explicit version (1 drops the max-score columns) —
  /// exposed so tests can exercise the backward-compatible load path.
  std::string SerializeVersion(uint16_t version) const;

  /// Parses a Serialize() blob. Every declared count is validated against
  /// the bytes present before allocation; every block is decoded and
  /// checked (codec well-formedness, strictly ascending in-range doc ids,
  /// nonzero tfs, skip-pointer consistency); external ids must be unique
  /// and norms finite and positive. v1 blobs get their max-score columns
  /// rebuilt. Term idf is never stored — it is recomputed from (df, n)
  /// with the exact formula the scorer uses, so a loaded index scores
  /// bit-identically to a built one.
  [[nodiscard]] static StatusOr<BlockMaxIndex> Deserialize(
      std::string_view blob);

  /// Bytes of the two compressed posting pools (the compression-ratio
  /// numerator in bench_offline_perf; the CSR baseline is 8 bytes per
  /// posting for the doc + tf columns).
  size_t CompressedPostingBytes() const {
    return store_.CompressedPostingBytes();
  }
  size_t MemoryBytes() const;

 private:
  /// Exact BM25 contribution of (term, doc, tf) under default parameters —
  /// the same expression, in the same operation order, as the exhaustive
  /// scorer, so the doubles are identical.
  double Contribution(uint32_t tid, uint32_t doc, uint32_t tf) const;

  /// Rebuilds term_idf_ from document frequencies; the one code path both
  /// Builder::Finish and Deserialize use.
  void RecomputeIdf();

  std::vector<SearchResult> TopKExhaustive(Span<const uint32_t> tids,
                                           size_t k) const;
  std::vector<SearchResult> TopKMaxScore(Span<const uint32_t> tids,
                                         size_t k) const;
  std::vector<SearchResult> TopKBlockMaxWand(Span<const uint32_t> tids,
                                             size_t k) const;

  BlockPostingsStore store_;
  std::vector<DocId> ext_id_;         ///< Internal doc index -> external id.
  std::vector<double> default_norm_;  ///< Default-parameter BM25 norm.
  std::vector<double> term_idf_;      ///< Recomputed, never serialized.
};

class BlockMaxIndex::Builder {
 public:
  Builder(BlockCodec codec, std::vector<DocId> ext_ids,
          std::vector<double> default_norm);

  /// Appends the postings of the next term id. Per-posting exact BM25
  /// contributions (default parameters) are computed here and folded
  /// into the store's block/term maxima.
  void AddTerm(Span<const uint32_t> docs, Span<const uint32_t> tfs);

  /// Same, with an explicit idf instead of one derived from the local
  /// (df, n) — the collection-stats-override path: a sharded index scores
  /// with the whole collection's idf (inverted_index.h CollectionStats).
  /// A builder must use one AddTerm flavour for every term; Finish()
  /// keeps the explicit idfs instead of recomputing local ones. Note a
  /// Serialize()d index never stores idf, so deserializing one built this
  /// way reverts to local idf — callers rebuild instead (the
  /// InvertedIndex::LoadBlockIndex guard).
  void AddTerm(Span<const uint32_t> docs, Span<const uint32_t> tfs,
               double idf);

  BlockMaxIndex Finish();

 private:
  void AddTermScored(Span<const uint32_t> docs, Span<const uint32_t> tfs,
                     double idf);

  BlockMaxIndex index_;
  BlockPostingsStore::Builder store_builder_;
  std::vector<double> scores_;
  std::vector<double> explicit_idf_;
  size_t terms_added_ = 0;
};

}  // namespace ckr

#endif  // CKR_INDEX_BLOCK_MAX_INDEX_H_
