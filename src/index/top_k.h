// Ranked-retrieval result types and the bounded top-k selector shared by
// every query evaluator (the exhaustive CSR scorer in inverted_index.cc
// and the pruned block-max evaluators in block_max_index.cc). One header
// so all evaluators rank through the *same* total order — the equivalence
// suite demands identical top-k sets, which starts with identical
// tie-breaking.
#ifndef CKR_INDEX_TOP_K_H_
#define CKR_INDEX_TOP_K_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "corpus/document.h"

namespace ckr {

/// One ranked hit.
struct SearchResult {
  DocId doc = 0;
  double score = 0.0;
};

/// BM25 parameters (standard defaults).
struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
};

/// Which top-k algorithm Search() runs. All three return the identical
/// result list (same docs, bit-identical scores, same order); they differ
/// only in how much work they skip:
///  * kExhaustive  scores every posting of every query term (the oracle);
///  * kMaxScore    partitions terms into essential/non-essential by their
///                 maximum contribution and probes non-essential lists
///                 only for candidates that can still beat the threshold;
///  * kBlockMaxWand pivots on per-block score upper bounds and skips whole
///                 128-doc blocks that cannot contain a top-k document.
enum class QueryEvaluator : uint8_t {
  kExhaustive = 0,
  kMaxScore = 1,
  kBlockMaxWand = 2,
};

/// The deterministic ranking contract, shared by every evaluator and by
/// LegacyInvertedIndex: descending score; equal-score documents are
/// ordered by ascending (external) doc id. The doc id leg makes the order
/// total, so the top-k *set* is uniquely determined — the property the
/// pruned evaluators' equivalence proof rests on.
inline bool RankBefore(const SearchResult& a, const SearchResult& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.doc < b.doc;
}

/// Bounded top-k selection. With RankBefore as the heap comparator the
/// front is the worst-ranked of the kept k, so a candidate enters iff it
/// ranks before the current worst — the same k results, in the same order,
/// as sort-everything-then-truncate. Each document may be pushed at most
/// once (every pushed doc id distinct), which makes the final contents
/// independent of push order.
class TopKHeap {
 public:
  explicit TopKHeap(size_t k) : k_(k) {}

  void Push(const SearchResult& r) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.push_back(r);
      std::push_heap(heap_.begin(), heap_.end(), RankBefore);
    } else if (RankBefore(r, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), RankBefore);
      heap_.back() = r;
      std::push_heap(heap_.begin(), heap_.end(), RankBefore);
    }
  }

  /// True once k results are held — only then is there a pruning
  /// threshold at all.
  bool Full() const { return heap_.size() >= k_ && k_ > 0; }

  /// The score of the current k-th result. Pruning contract: a document
  /// whose score upper bound is *strictly* below this can never enter the
  /// final top-k (scores in the heap only improve), but a document tying
  /// it still can — via the ascending-doc-id tie-break — so evaluators
  /// must skip only on `bound < ThresholdScore()`.
  double ThresholdScore() const { return heap_.front().score; }

  std::vector<SearchResult> Take() {
    std::sort(heap_.begin(), heap_.end(), RankBefore);
    return std::move(heap_);
  }

 private:
  size_t k_;
  std::vector<SearchResult> heap_;
};

}  // namespace ckr

#endif  // CKR_INDEX_TOP_K_H_
