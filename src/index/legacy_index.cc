#include "index/legacy_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "common/string_util.h"
#include "text/tokenizer.h"

namespace ckr {

void LegacyInvertedIndex::Add(const Document& doc) {
  CKR_DCHECK(!finalized_);
  StoredDoc stored;
  stored.id = doc.id;
  stored.text = doc.text;
  std::vector<Token> toks = Tokenize(stored.text);
  stored.tokens.reserve(toks.size());
  stored.token_begin.reserve(toks.size());
  stored.token_end.reserve(toks.size());
  for (Token& t : toks) {
    stored.tokens.push_back(std::move(t.text));
    stored.token_begin.push_back(static_cast<uint32_t>(t.begin));
    stored.token_end.push_back(static_cast<uint32_t>(t.end));
  }
  doc_index_[stored.id] = static_cast<uint32_t>(docs_.size());
  docs_.push_back(std::move(stored));
}

void LegacyInvertedIndex::Finalize() {
  postings_.clear();
  uint64_t total_len = 0;
  for (uint32_t d = 0; d < docs_.size(); ++d) {
    const StoredDoc& doc = docs_[d];
    total_len += doc.tokens.size();
    for (uint32_t pos = 0; pos < doc.tokens.size(); ++pos) {
      std::vector<Posting>& plist = postings_[doc.tokens[pos]];
      if (plist.empty() || plist.back().doc_index != d) {
        plist.push_back({d, {}});
      }
      plist.back().positions.push_back(pos);
    }
  }
  avg_doc_len_ = docs_.empty()
                     ? 0.0
                     : static_cast<double>(total_len) /
                           static_cast<double>(docs_.size());
  finalized_ = true;
}

uint32_t LegacyInvertedIndex::DocFreq(std::string_view term) const {
  auto it = postings_.find(std::string(term));
  return it == postings_.end() ? 0
                               : static_cast<uint32_t>(it->second.size());
}

std::vector<SearchResult> LegacyInvertedIndex::Search(
    std::string_view query, size_t k, const Bm25Params& params) const {
  CKR_DCHECK(finalized_);
  std::vector<std::string> terms = TokenizeToStrings(query);
  // Deduplicate query terms.
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());

  std::unordered_map<uint32_t, double> scores;
  const double n = static_cast<double>(docs_.size());
  for (const std::string& term : terms) {
    auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    const auto& plist = it->second;
    const double df = static_cast<double>(plist.size());
    double idf = std::log(1.0 + (n - df + 0.5) / (df + 0.5));
    for (const Posting& p : plist) {
      double tf = static_cast<double>(p.positions.size());
      double dl = static_cast<double>(docs_[p.doc_index].tokens.size());
      double denom =
          tf + params.k1 * (1.0 - params.b + params.b * dl / avg_doc_len_);
      scores[p.doc_index] += idf * tf * (params.k1 + 1.0) / denom;
    }
  }
  std::vector<SearchResult> results;
  results.reserve(scores.size());
  for (const auto& [d, s] : scores) {
    results.push_back({docs_[d].id, s});
  }
  std::sort(results.begin(), results.end(),
            [](const SearchResult& a, const SearchResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;  // Deterministic tie-break.
            });
  if (results.size() > k) results.resize(k);
  return results;
}

std::vector<uint32_t> LegacyInvertedIndex::PhrasePositions(
    const std::vector<const Posting*>& term_postings, size_t /*doc_index*/) {
  // term_postings[i] is the posting of term i in the same document.
  std::vector<uint32_t> starts;
  const std::vector<uint32_t>& first = term_postings[0]->positions;
  for (uint32_t p : first) {
    bool match = true;
    for (size_t t = 1; t < term_postings.size(); ++t) {
      const auto& pos = term_postings[t]->positions;
      if (!std::binary_search(pos.begin(), pos.end(),
                              p + static_cast<uint32_t>(t))) {
        match = false;
        break;
      }
    }
    if (match) starts.push_back(p);
  }
  return starts;
}

uint64_t LegacyInvertedIndex::PhraseResultCount(std::string_view phrase) const {
  return PhraseSearch(phrase, docs_.size() + 1).size();
}

uint64_t LegacyInvertedIndex::RegularResultCount(std::string_view query) const {
  return Search(query, docs_.size() + 1).size();
}

std::vector<SearchResult> LegacyInvertedIndex::PhraseSearch(
    std::string_view phrase, size_t k) const {
  CKR_DCHECK(finalized_);
  std::vector<std::string> terms = TokenizeToStrings(phrase);
  std::vector<SearchResult> results;
  if (terms.empty()) return results;

  // Gather posting lists; bail if any term is absent.
  std::vector<const std::vector<Posting>*> lists;
  for (const std::string& t : terms) {
    auto it = postings_.find(t);
    if (it == postings_.end()) return results;
    lists.push_back(&it->second);
  }
  // Intersect by doc via the rarest list.
  size_t rarest = 0;
  for (size_t i = 1; i < lists.size(); ++i) {
    if (lists[i]->size() < lists[rarest]->size()) rarest = i;
  }
  const double n = static_cast<double>(docs_.size());
  for (const Posting& seed : *lists[rarest]) {
    uint32_t d = seed.doc_index;
    std::vector<const Posting*> in_doc(lists.size(), nullptr);
    bool all = true;
    for (size_t i = 0; i < lists.size(); ++i) {
      const auto& plist = *lists[i];
      auto it = std::lower_bound(
          plist.begin(), plist.end(), d,
          [](const Posting& p, uint32_t doc) { return p.doc_index < doc; });
      if (it == plist.end() || it->doc_index != d) {
        all = false;
        break;
      }
      in_doc[i] = &*it;
    }
    if (!all) continue;
    std::vector<uint32_t> starts = PhrasePositions(in_doc, d);
    if (starts.empty()) continue;
    // Score: phrase tf * idf of the rarest term, normalized by length.
    double idf = std::log(
        1.0 + (n - static_cast<double>(lists[rarest]->size()) + 0.5) /
                  (static_cast<double>(lists[rarest]->size()) + 0.5));
    double dl = static_cast<double>(docs_[d].tokens.size());
    double score = idf * static_cast<double>(starts.size()) /
                   (1.0 + 0.002 * dl);
    results.push_back({docs_[d].id, score});
  }
  std::sort(results.begin(), results.end(),
            [](const SearchResult& a, const SearchResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  if (results.size() > k) results.resize(k);
  return results;
}

const LegacyInvertedIndex::StoredDoc* LegacyInvertedIndex::FindDoc(
    DocId id) const {
  auto it = doc_index_.find(id);
  return it == doc_index_.end() ? nullptr : &docs_[it->second];
}

const std::string& LegacyInvertedIndex::DocText(DocId doc) const {
  static const std::string* const kEmpty = new std::string();
  const StoredDoc* d = FindDoc(doc);
  return d == nullptr ? *kEmpty : d->text;
}

std::string LegacyInvertedIndex::Snippet(DocId doc, std::string_view query,
                                         size_t context_tokens) const {
  const StoredDoc* d = FindDoc(doc);
  if (d == nullptr || d->tokens.empty()) return "";
  std::vector<std::string> terms = TokenizeToStrings(query);
  std::unordered_set<std::string> term_set(terms.begin(), terms.end());

  // Prefer the first contiguous phrase hit; fall back to the first hit of
  // any query term; fall back to the document head.
  size_t center = 0;
  bool found = false;
  if (!terms.empty()) {
    for (size_t i = 0; i + terms.size() <= d->tokens.size() && !found; ++i) {
      bool match = true;
      for (size_t j = 0; j < terms.size(); ++j) {
        if (d->tokens[i + j] != terms[j]) {
          match = false;
          break;
        }
      }
      if (match) {
        center = i + terms.size() / 2;
        found = true;
      }
    }
    for (size_t i = 0; i < d->tokens.size() && !found; ++i) {
      if (term_set.count(d->tokens[i]) > 0) {
        center = i;
        found = true;
      }
    }
  }
  size_t half = context_tokens / 2;
  size_t lo = center > half ? center - half : 0;
  size_t hi = std::min(d->tokens.size(), lo + context_tokens);
  if (hi - lo < context_tokens && hi == d->tokens.size()) {
    lo = hi > context_tokens ? hi - context_tokens : 0;
  }
  size_t byte_lo = d->token_begin[lo];
  size_t byte_hi = d->token_end[hi - 1];
  std::string out = d->text.substr(byte_lo, byte_hi - byte_lo);
  // Normalize whitespace (including CR) so snippets are single-line.
  for (char& c : out) {
    if (c == '\n' || c == '\t' || c == '\r') c = ' ';
  }
  return out;
}

size_t LegacyInvertedIndex::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const StoredDoc& d : docs_) {
    bytes += sizeof(StoredDoc) + d.text.capacity();
    bytes += d.token_begin.capacity() * sizeof(uint32_t);
    bytes += d.token_end.capacity() * sizeof(uint32_t);
    bytes += d.tokens.capacity() * sizeof(std::string);
    for (const std::string& t : d.tokens) {
      // Small-string contents live inside the std::string object.
      if (t.capacity() > sizeof(std::string)) bytes += t.capacity();
    }
  }
  // unordered_map node + bucket overhead, approximated at one pointer per
  // bucket plus two per node (next pointer + hash cache).
  bytes += doc_index_.bucket_count() * sizeof(void*);
  bytes += doc_index_.size() *
           (sizeof(std::pair<DocId, uint32_t>) + 2 * sizeof(void*));
  bytes += postings_.bucket_count() * sizeof(void*);
  for (const auto& [term, plist] : postings_) {
    bytes += sizeof(std::pair<std::string, std::vector<Posting>>) +
             2 * sizeof(void*);
    if (term.capacity() > sizeof(std::string)) bytes += term.capacity();
    bytes += plist.capacity() * sizeof(Posting);
    for (const Posting& p : plist) {
      bytes += p.positions.capacity() * sizeof(uint32_t);
    }
  }
  return bytes;
}

}  // namespace ckr
