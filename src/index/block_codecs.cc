#include "index/block_codecs.h"

#include <algorithm>

#include "common/check.h"

namespace ckr {
namespace {

// ---- varint-GB ----

inline uint32_t VarintByteLen(uint32_t v) {
  if (v < (1u << 8)) return 1;
  if (v < (1u << 16)) return 2;
  if (v < (1u << 24)) return 3;
  return 4;
}

void EncodeVarintGb(const uint32_t* values, size_t count,
                    std::vector<uint8_t>* out) {
  for (size_t i = 0; i < count; i += 4) {
    const size_t group = std::min<size_t>(4, count - i);
    uint8_t control = 0;
    for (size_t j = 0; j < group; ++j) {
      control = static_cast<uint8_t>(
          control | ((VarintByteLen(values[i + j]) - 1) << (2 * j)));
    }
    out->push_back(control);
    for (size_t j = 0; j < group; ++j) {
      uint32_t v = values[i + j];
      const uint32_t len = VarintByteLen(v);
      for (uint32_t b = 0; b < len; ++b) {
        out->push_back(static_cast<uint8_t>(v & 0xffu));
        v >>= 8;
      }
    }
  }
}

Status DecodeVarintGb(const uint8_t* data, size_t size, size_t count,
                      uint32_t* out) {
  size_t pos = 0;
  size_t produced = 0;
  while (produced < count) {
    if (pos >= size) {
      return Status::InvalidArgument("varint-gb block truncated (no control)");
    }
    const uint8_t control = data[pos++];
    const size_t group = std::min<size_t>(4, count - produced);
    // The encoder zeroes the control bits of absent tail slots; anything
    // else is corruption.
    if (group < 4 && (control >> (2 * group)) != 0) {
      return Status::InvalidArgument("varint-gb tail control bits not zero");
    }
    for (size_t j = 0; j < group; ++j) {
      const size_t len = static_cast<size_t>((control >> (2 * j)) & 3u) + 1;
      if (pos + len > size) {
        return Status::InvalidArgument("varint-gb block truncated (value)");
      }
      uint32_t v = 0;
      for (size_t b = 0; b < len; ++b) {
        v |= static_cast<uint32_t>(data[pos + b]) << (8 * b);
      }
      pos += len;
      out[produced++] = v;
    }
  }
  if (pos != size) {
    return Status::InvalidArgument("varint-gb block has trailing bytes");
  }
  return Status::OK();
}

// ---- Simple8b ----

struct Simple8bSelector {
  uint32_t count;  ///< Values per word.
  uint32_t bits;   ///< Width of each.
};

// Classic Simple8b table: 4-bit selector, 60 payload bits. Selectors 0/1
// are the zero-run forms (240/120 zeros, no payload).
constexpr Simple8bSelector kSelectors[16] = {
    {240, 0}, {120, 0}, {60, 1}, {30, 2}, {20, 3}, {15, 4},
    {12, 5},  {10, 6},  {8, 7},  {7, 8},  {6, 10}, {5, 12},
    {4, 15},  {3, 20},  {2, 30}, {1, 60},
};

constexpr uint64_t kPayloadMask = (uint64_t{1} << 60) - 1;

inline bool FitsWidth(uint32_t v, uint32_t bits) {
  if (bits >= 32) return true;
  if (bits == 0) return v == 0;
  return v < (uint32_t{1} << bits);
}

void EncodeSimple8b(const uint32_t* values, size_t count,
                    std::vector<uint8_t>* out) {
  size_t i = 0;
  while (i < count) {
    // First selector whose whole window fits wins — the table is ordered
    // by decreasing density, and selector 15 (1 x 60 bits) always fits.
    uint32_t sel = 0;
    size_t packed = 0;
    for (; sel < 16; ++sel) {
      packed = std::min<size_t>(kSelectors[sel].count, count - i);
      bool fits = true;
      for (size_t j = 0; j < packed; ++j) {
        if (!FitsWidth(values[i + j], kSelectors[sel].bits)) {
          fits = false;
          break;
        }
      }
      if (fits) break;
    }
    CKR_DCHECK_LT(sel, 16u);
    uint64_t word = static_cast<uint64_t>(sel) << 60;
    const uint32_t bits = kSelectors[sel].bits;
    for (size_t j = 0; j < packed; ++j) {
      word |= static_cast<uint64_t>(values[i + j])
              << (static_cast<uint32_t>(j) * bits);
    }
    for (int b = 0; b < 8; ++b) {
      out->push_back(static_cast<uint8_t>((word >> (8 * b)) & 0xffu));
    }
    i += packed;
  }
}

Status DecodeSimple8b(const uint8_t* data, size_t size, size_t count,
                      uint32_t* out) {
  size_t pos = 0;
  size_t produced = 0;
  while (produced < count) {
    if (pos + 8 > size) {
      return Status::InvalidArgument("simple8b block truncated");
    }
    uint64_t word = 0;
    for (int b = 0; b < 8; ++b) {
      word |= static_cast<uint64_t>(data[pos + b]) << (8 * b);
    }
    pos += 8;
    const uint32_t sel = static_cast<uint32_t>(word >> 60);
    const uint32_t bits = kSelectors[sel].bits;
    const uint64_t payload = word & kPayloadMask;
    const size_t n = std::min<size_t>(kSelectors[sel].count, count - produced);
    if (bits == 0) {
      if (payload != 0) {
        return Status::InvalidArgument("simple8b zero-run word has payload");
      }
      for (size_t j = 0; j < n; ++j) out[produced++] = 0;
      continue;
    }
    const uint64_t value_mask =
        bits >= 60 ? kPayloadMask : (uint64_t{1} << bits) - 1;
    for (size_t j = 0; j < n; ++j) {
      const uint64_t v =
          (payload >> (static_cast<uint32_t>(j) * bits)) & value_mask;
      if (v > 0xffffffffull) {
        return Status::InvalidArgument("simple8b value exceeds 32 bits");
      }
      out[produced++] = static_cast<uint32_t>(v);
    }
    // The encoder zero-pads unused tail slots of the final word.
    const uint32_t used_bits = static_cast<uint32_t>(n) * bits;
    if (used_bits < 60 && (payload >> used_bits) != 0) {
      return Status::InvalidArgument("simple8b tail padding not zero");
    }
  }
  if (pos != size) {
    return Status::InvalidArgument("simple8b block has trailing bytes");
  }
  return Status::OK();
}

}  // namespace

std::string_view BlockCodecName(BlockCodec codec) {
  switch (codec) {
    case BlockCodec::kVarintGB:
      return "varint-gb";
    case BlockCodec::kSimple8b:
      return "simple8b";
  }
  return "unknown";
}

bool IsValidBlockCodec(uint8_t raw) {
  return raw == static_cast<uint8_t>(BlockCodec::kVarintGB) ||
         raw == static_cast<uint8_t>(BlockCodec::kSimple8b);
}

void EncodeBlock(BlockCodec codec, const uint32_t* values, size_t count,
                 std::vector<uint8_t>* out) {
  if (count == 0) return;
  switch (codec) {
    case BlockCodec::kVarintGB:
      EncodeVarintGb(values, count, out);
      return;
    case BlockCodec::kSimple8b:
      EncodeSimple8b(values, count, out);
      return;
  }
  CKR_CHECK(false && "unreachable codec");
}

Status DecodeBlock(BlockCodec codec, const uint8_t* data, size_t size,
                   size_t count, uint32_t* out) {
  if (count == 0) {
    return size == 0 ? Status::OK()
                     : Status::InvalidArgument("empty block has bytes");
  }
  switch (codec) {
    case BlockCodec::kVarintGB:
      return DecodeVarintGb(data, size, count, out);
    case BlockCodec::kSimple8b:
      return DecodeSimple8b(data, size, count, out);
  }
  return Status::InvalidArgument("unknown block codec");
}

}  // namespace ckr
