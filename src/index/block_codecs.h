// Integer codecs for fixed-size posting blocks: each 128-entry block of
// doc-id gaps / term frequencies is encoded independently so a cursor can
// decode exactly the blocks a query touches and skip the rest.
//
// Two codecs, both byte-aligned per block:
//  * varint-GB (group varint): values in groups of four behind one control
//    byte holding four 2-bit byte-lengths — branch-light byte-at-a-time
//    decoding, 1..4 bytes per value plus 1/4 byte of control;
//  * Simple8b: 64-bit words, a 4-bit selector choosing how many
//    equal-width values share the word's 60 payload bits (240/120
//    zero-run selectors included) — word-packed decoding that shines on
//    the small gaps dense posting lists produce.
//
// Both are self-terminating given the value count, which block metadata
// always records, and both decoders are bounds-checked: a truncated or
// oversized blob is an error, never an out-of-bounds read (the store-pack
// deserialization discipline).
#ifndef CKR_INDEX_BLOCK_CODECS_H_
#define CKR_INDEX_BLOCK_CODECS_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ckr {

/// Codec for the doc/tf columns of a block-compressed posting list. The
/// enumerator values are the on-disk codec ids of the serialized index —
/// append-only, never renumber.
enum class BlockCodec : uint8_t {
  kVarintGB = 0,
  kSimple8b = 1,
};

/// Human-readable codec name ("varint-gb" / "simple8b").
std::string_view BlockCodecName(BlockCodec codec);

/// True for a codec id the deserializer understands.
bool IsValidBlockCodec(uint8_t raw);

/// Appends the encoding of `values[0..count)` to `*out`. Values are
/// arbitrary uint32s (the block builder feeds doc-id gaps minus one and
/// tf minus one, so zeros are common and small values dominate).
void EncodeBlock(BlockCodec codec, const uint32_t* values, size_t count,
                 std::vector<uint8_t>* out);

/// Decodes exactly `count` values from the `size`-byte blob at `data`
/// into `out[0..count)` (caller provides the room). Fails on truncated
/// input, on trailing bytes beyond the encoding's end, and on malformed
/// words — the blob must be exactly one EncodeBlock output for `count`.
[[nodiscard]] Status DecodeBlock(BlockCodec codec, const uint8_t* data,
                                 size_t size, size_t count, uint32_t* out);

}  // namespace ckr

#endif  // CKR_INDEX_BLOCK_CODECS_H_
