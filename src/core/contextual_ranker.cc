#include "core/contextual_ranker.h"

#include <string>
#include <vector>

#include "common/parallel.h"

namespace ckr {

StatusOr<std::unique_ptr<ContextualRanker>> ContextualRanker::Train(
    const ContextualRankerOptions& options) {
  std::unique_ptr<ContextualRanker> ranker(new ContextualRanker());

  auto pipeline_or = Pipeline::Build(options.pipeline);
  if (!pipeline_or.ok()) return pipeline_or.status();
  ranker->pipeline_ = std::move(*pipeline_or);
  const Pipeline& p = *ranker->pipeline_;

  DatasetBuilder builder(p, options.dataset);
  auto dataset_or = builder.Build();
  if (!dataset_or.ok()) return dataset_or.status();
  ranker->dataset_ = std::move(*dataset_or);

  // The deployed model: full interestingness layout + relevance feature,
  // relevance tie-break (Section V-A.6).
  ModelSpec spec;
  spec.group_mask = kAllFeatureGroups;
  spec.use_interestingness = true;
  spec.include_relevance = true;
  spec.relevance_resource = options.relevance_resource;
  spec.tie_break_relevance = true;
  spec.svm = options.svm;
  ExperimentRunner runner(ranker->dataset_);
  auto model_or = runner.TrainFullModel(spec);
  if (!model_or.ok()) return model_or.status();
  ranker->model_ = std::move(*model_or);

  // Offline store population: every candidate the detector can emit (the
  // editorial dictionaries plus all multi-term units).
  std::vector<std::pair<std::string, EntityType>> candidates;
  for (const Entity& e : p.world().entities()) {
    if (e.in_dictionary) candidates.emplace_back(e.key, e.type);
  }
  for (const UnitInfo* u : p.units().MultiTermUnits()) {
    EntityId id = p.world().FindByKey(u->phrase);
    if (id != kInvalidEntity && p.world().entity(id).in_dictionary) continue;
    candidates.emplace_back(u->phrase, EntityType::kConcept);
  }

  ranker->relevance_store_ =
      std::make_unique<PackedRelevanceStore>(&ranker->tids_);
  // Parallel extraction into per-candidate slots; the store insertions
  // stay sequential (TID interning is order-sensitive).
  std::vector<InterestingnessVector> ivecs(candidates.size());
  std::vector<std::vector<RelevantTerm>> mined(candidates.size());
  unsigned workers = options.dataset.num_threads == 0
                         ? DefaultWorkerCount()
                         : options.dataset.num_threads;
  ParallelFor(candidates.size(), workers, [&](size_t i) {
    const auto& [key, type] = candidates[i];
    ivecs[i] = p.interestingness().Extract(key, type);
    mined[i] = p.relevance_miner().Mine(key, options.relevance_resource,
                                        options.dataset.relevance_terms);
  });
  for (size_t i = 0; i < candidates.size(); ++i) {
    ranker->interestingness_store_.Add(candidates[i].first, ivecs[i]);
    ranker->relevance_store_->Add(candidates[i].first, std::move(mined[i]));
  }
  ranker->interestingness_store_.Finalize();
  ranker->relevance_store_->Finalize();

  ranker->runtime_ = std::make_unique<RuntimeRanker>(
      p.detector(), ranker->interestingness_store_, *ranker->relevance_store_,
      ranker->tids_, ranker->model_);
  return ranker;
}

std::vector<RankedAnnotation> ContextualRanker::Rank(std::string_view text,
                                                     size_t top_n) const {
  std::vector<RankedAnnotation> ranked =
      runtime_->ProcessDocument(text, &stats_);
  if (top_n > 0 && ranked.size() > top_n) ranked.resize(top_n);
  return ranked;
}

std::vector<std::vector<RankedAnnotation>> ContextualRanker::RankBatch(
    std::span<const std::string_view> docs, unsigned num_threads,
    size_t top_n) const {
  std::vector<std::vector<RankedAnnotation>> results =
      runtime_->ProcessBatch(docs, num_threads, &stats_);
  if (top_n > 0) {
    for (auto& ranked : results) {
      if (ranked.size() > top_n) ranked.resize(top_n);
    }
  }
  return results;
}

}  // namespace ckr
