// The experiment runner behind Tables III, IV, V and Figures 1-3: ranks
// the dataset's windows with each technique and reports the paper's
// metrics (weighted/plain pairwise error rate, NDCG@{1,2,3}).
#ifndef CKR_CORE_EXPERIMENT_H_
#define CKR_CORE_EXPERIMENT_H_

#include <array>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "eval/metrics.h"
#include "features/relevance.h"
#include "ranksvm/rank_svm.h"

namespace ckr {

/// Metrics of one technique over the dataset.
struct EvalResult {
  double weighted_error_rate = 0.0;
  double error_rate = 0.0;
  std::array<double, 3> ndcg{};  ///< NDCG@1, @2, @3 (mean over windows).
  size_t windows = 0;
  /// 95% bootstrap CI of the weighted error rate (windows resampled).
  BootstrapCi weighted_error_ci;
};

/// Learned-model configuration.
struct ModelSpec {
  /// Interestingness feature groups included (Table III ablations).
  unsigned group_mask = kAllFeatureGroups;
  bool use_interestingness = true;
  /// Append the mined relevance score as a feature (Table V).
  bool include_relevance = false;
  RelevanceResource relevance_resource = RelevanceResource::kSnippets;
  /// Tie-break equal model scores by the relevance score (Section V-A.6:
  /// "in case of ties, we decided to favor concepts that have higher
  /// relevance scores").
  bool tie_break_relevance = false;
  RankSvmConfig svm;
};

/// Evaluates ranking techniques on a built dataset.
///
/// `num_threads` bounds the worker fan-out of the parallel legs — CV fold
/// training (independent folds, each scoring only its own held-out
/// instances) and the bootstrap-CI resampling (per-replicate RNGs). Every
/// leg writes only per-item output slots, so metrics are bit-identical
/// for any worker count; 0 means all hardware threads.
class ExperimentRunner {
 public:
  explicit ExperimentRunner(const ClickDataset& dataset,
                            unsigned num_threads = 0);

  /// Random ordering baseline (expected 50% error).
  EvalResult EvaluateRandom(uint64_t seed = 1) const;

  /// Production baseline: rank by concept-vector score.
  EvalResult EvaluateBaseline() const;

  /// Rank by the mined relevance score alone (Table IV; no training).
  EvalResult EvaluateRelevanceOnly(RelevanceResource resource) const;

  /// Cross-validated ranking SVM per the ModelSpec. Trains fold models on
  /// the training stories and scores each window exactly once.
  [[nodiscard]] StatusOr<EvalResult> EvaluateModelCV(const ModelSpec& spec) const;

  /// Trains one model on the full dataset (for deployment / the runtime
  /// framework).
  [[nodiscard]] StatusOr<RankSvmModel> TrainFullModel(const ModelSpec& spec) const;

  /// Assembles the feature vector of one instance under a spec (shared
  /// with the runtime framework and tests).
  static std::vector<double> Features(const WindowInstance& inst,
                                      const ModelSpec& spec);

 private:
  EvalResult EvaluateScores(const std::vector<double>& scores) const;

  const ClickDataset& dataset_;
  unsigned num_threads_;
  std::vector<std::vector<size_t>> window_groups_;
  CtrBucketizer buckets_;
};

}  // namespace ckr

#endif  // CKR_CORE_EXPERIMENT_H_
