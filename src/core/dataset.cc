#include "core/dataset.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/parallel.h"
#include "features/offline_miner.h"
#include "obs/hooks.h"

namespace ckr {

std::vector<double> ClickDataset::AllCtrs() const {
  std::vector<double> out;
  out.reserve(instances.size());
  for (const WindowInstance& inst : instances) out.push_back(inst.ctr);
  return out;
}

std::vector<std::vector<size_t>> ClickDataset::GroupByWindow() const {
  std::unordered_map<uint32_t, size_t> group_index;
  std::vector<std::vector<size_t>> groups;
  for (size_t i = 0; i < instances.size(); ++i) {
    uint32_t g = instances[i].window_group;
    auto it = group_index.find(g);
    if (it == group_index.end()) {
      group_index.emplace(g, groups.size());
      groups.emplace_back();
      groups.back().push_back(i);
    } else {
      groups[it->second].push_back(i);
    }
  }
  return groups;
}

DatasetBuilder::DatasetBuilder(const Pipeline& pipeline,
                               const DatasetConfig& config)
    : pipeline_(pipeline), config_(config) {}

StatusOr<ClickDataset> DatasetBuilder::Build() const {
  CKR_OBS_SCOPED_TIMER("ckr.offline.stage.dataset_build_seconds");
  CKR_OBS_COUNTER_INC("ckr.offline.dataset_builds");
  const auto& stories = pipeline_.news_stories();
  const unsigned workers =
      config_.num_threads == 0 ? DefaultWorkerCount() : config_.num_threads;
  CKR_OBS_COUNTER_ADD("ckr.offline.stories_in", stories.size());

  // Stage 1 (parallel over stories): annotate, apply the production
  // annotation cut, simulate traffic. Each story writes only its own slot,
  // so the result is independent of thread scheduling.
  std::vector<StoryReport> reports(stories.size());
  ParallelFor(stories.size(), workers, [&](size_t s) {
    const Document& story = stories[s];
    std::vector<Detection> detections =
        pipeline_.detector().Detect(story.text);
    // The production baseline annotates only its top-ranked entities; the
    // rest get no Shortcut and therefore produce no click data.
    if (config_.max_annotations_per_story > 0) {
      std::vector<std::string> keys;
      std::unordered_set<std::string> seen;
      for (const Detection& d : detections) {
        if (d.type == EntityType::kPattern) continue;
        if (seen.insert(d.key).second) keys.push_back(d.key);
      }
      if (keys.size() > config_.max_annotations_per_story) {
        std::vector<double> scores =
            pipeline_.concept_vectors().ScoreCandidates(story.text, keys);
        std::vector<size_t> order(keys.size());
        for (size_t i = 0; i < order.size(); ++i) order[i] = i;
        std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
          if (scores[a] != scores[b]) return scores[a] > scores[b];
          return keys[a] < keys[b];
        });
        std::unordered_set<std::string> kept_keys;
        for (size_t i = 0; i < config_.max_annotations_per_story; ++i) {
          kept_keys.insert(keys[order[i]]);
        }
        std::vector<Detection> pruned;
        for (Detection& d : detections) {
          if (d.type == EntityType::kPattern || kept_keys.count(d.key) > 0) {
            pruned.push_back(std::move(d));
          }
        }
        detections = std::move(pruned);
      }
    }
    reports[s] = pipeline_.clicks().Simulate(story, detections);
  });

  // Stage 2: the cleaning rules of Section V-A.1.
  std::vector<StoryReport> kept = FilterReports(reports, config_.filter);
  CKR_OBS_COUNTER_ADD("ckr.offline.stories_kept", kept.size());
  if (kept.empty()) {
    return Status::FailedPrecondition(
        "no stories survive the cleaning rules; scale up the world");
  }

  // Stage 3: distinct concepts across surviving reports (insertion order
  // fixed by report order, so ids are deterministic).
  std::vector<ConceptKey> concepts;
  std::unordered_map<std::string, size_t> concept_index;
  for (const StoryReport& report : kept) {
    for (const AnnotationRecord& a : report.annotations) {
      if (concept_index.emplace(a.key, concepts.size()).second) {
        concepts.push_back({a.key, a.type});
      }
    }
  }

  // Stage 4: the per-concept offline fan-out — static interestingness
  // vectors and relevant-keyword mining from all three resources, spread
  // across workers with one output slot per concept.
  OfflineConceptMiner miner(pipeline_.interestingness(),
                            pipeline_.relevance_miner());
  std::vector<MinedConcept> cache =
      miner.MineAll(concepts, config_.relevance_terms, workers);
  RelevanceScorer scorers[kNumRelevanceResources];
  for (size_t c = 0; c < concepts.size(); ++c) {
    for (size_t r = 0; r < kNumRelevanceResources; ++r) {
      scorers[r].AddConcept(concepts[c].key, cache[c].relevance[r]);
    }
  }

  // Stage 5 (sequential): windowing + instance assembly.
  ClickDataset ds;
  uint32_t next_window_group = 0;
  for (uint32_t s = 0; s < kept.size(); ++s) {
    const StoryReport& report = kept[s];
    const Document& story = stories[report.story];
    ds.surviving_stories.push_back(report.story);

    std::vector<TextSpan> windows = PartitionIntoWindows(
        story.text.size(), config_.window_size, config_.window_overlap);
    for (const TextSpan& w : windows) {
      // Annotations whose first occurrence falls inside the window.
      std::vector<const AnnotationRecord*> in_window;
      for (const AnnotationRecord& a : report.annotations) {
        if (a.position >= w.begin && a.position < w.end) {
          in_window.push_back(&a);
        }
      }
      if (in_window.size() < 2) continue;  // No ranking signal.

      std::string_view window_text(story.text.data() + w.begin, w.size());
      auto stemmed = RelevanceScorer::StemContext(window_text);

      // Baseline concept-vector scores for the window's candidates.
      std::vector<std::string> keys;
      keys.reserve(in_window.size());
      for (const AnnotationRecord* a : in_window) keys.push_back(a->key);
      std::vector<double> baseline =
          pipeline_.concept_vectors().ScoreCandidates(window_text, keys);

      uint32_t group = next_window_group++;
      for (size_t i = 0; i < in_window.size(); ++i) {
        const AnnotationRecord& a = *in_window[i];
        const MinedConcept& entry = cache[concept_index.at(a.key)];

        WindowInstance inst;
        inst.key = a.key;
        inst.type = a.type;
        inst.window_group = group;
        inst.story_index = s;
        inst.position = a.position;
        inst.views = a.views;
        inst.clicks = a.clicks;
        inst.ctr = a.Ctr();
        inst.baseline_score = baseline[i];
        inst.interestingness = entry.interestingness;
        for (int r = 0; r < 3; ++r) {
          inst.relevance[static_cast<size_t>(r)] =
              scorers[r].Score(a.key, stemmed);
        }
        ds.instances.push_back(std::move(inst));
        ds.total_clicks += a.clicks;
      }
    }
  }
  ds.num_windows = next_window_group;
  ds.num_distinct_concepts = concepts.size();
  CKR_OBS_COUNTER_ADD("ckr.offline.windows", ds.num_windows);
  CKR_OBS_COUNTER_ADD("ckr.offline.instances", ds.instances.size());
  CKR_OBS_COUNTER_ADD("ckr.offline.distinct_concepts", concepts.size());
  ds.story_fold = KFoldAssignment(ds.surviving_stories.size(),
                                  config_.cv_folds, config_.cv_seed);
  return ds;
}

}  // namespace ckr
