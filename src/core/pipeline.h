// The assembled Contextual Shortcuts laboratory: one object owning the
// synthetic world and every substrate built from it, wired exactly as the
// paper's production system consumed its proprietary counterparts.
//
// Construction order (all offline in the paper):
//   world -> corpora (web / news / answers) -> term dictionary ->
//   inverted index -> query log -> unit dictionary -> search services ->
//   wiki store -> entity detector -> concept-vector baseline ->
//   interestingness extractor -> relevance miners/scorers -> click
//   simulator.
#ifndef CKR_CORE_PIPELINE_H_
#define CKR_CORE_PIPELINE_H_

#include <memory>
#include <vector>

#include "clicks/click_model.h"
#include "common/status.h"
#include "conceptvec/concept_vector.h"
#include "corpus/doc_generator.h"
#include "corpus/document.h"
#include "corpus/term_dictionary.h"
#include "corpus/world.h"
#include "detect/entity_detector.h"
#include "features/interestingness.h"
#include "features/relevance.h"
#include "index/inverted_index.h"
#include "querylog/query_generator.h"
#include "querylog/query_log.h"
#include "search/search_service.h"
#include "units/unit_extractor.h"
#include "wiki/wiki_store.h"

namespace ckr {

/// Every knob of the end-to-end system.
struct PipelineConfig {
  WorldConfig world;
  QueryGeneratorConfig querylog;
  UnitExtractorConfig units;
  DetectorOptions detector;
  ConceptVectorConfig conceptvec;
  ClickModelConfig clicks;

  /// Returns a configuration scaled down for fast tests.
  static PipelineConfig SmallForTests();
};

/// Immutable after Build(); thread-safe for concurrent reads.
class Pipeline {
 public:
  /// Builds the full laboratory. Deterministic in the config seeds.
  [[nodiscard]] static StatusOr<std::unique_ptr<Pipeline>> Build(const PipelineConfig& config);

  const PipelineConfig& config() const { return config_; }
  const World& world() const { return *world_; }
  const std::vector<Document>& web_corpus() const { return web_corpus_; }
  const std::vector<Document>& news_stories() const { return news_stories_; }
  const std::vector<Document>& answers_snippets() const {
    return answers_snippets_;
  }
  const TermDictionary& term_dictionary() const { return term_dict_; }
  const TermDictionary& stemmed_term_dictionary() const {
    return stemmed_term_dict_;
  }
  const InvertedIndex& index() const { return index_; }
  const QueryLog& query_log() const { return query_log_; }
  const UnitDictionary& units() const { return units_; }
  const SearchService& search() const { return *search_; }
  const WikiStore& wiki() const { return wiki_; }
  const EntityDetector& detector() const { return *detector_; }
  const ConceptVectorGenerator& concept_vectors() const {
    return *conceptvec_;
  }
  const InterestingnessExtractor& interestingness() const {
    return *interestingness_;
  }
  const RelevanceMiner& relevance_miner() const { return *relevance_miner_; }
  const ClickSimulator& clicks() const { return *clicks_; }

 private:
  Pipeline() = default;

  PipelineConfig config_;
  std::unique_ptr<World> world_;
  std::vector<Document> web_corpus_;
  std::vector<Document> news_stories_;
  std::vector<Document> answers_snippets_;
  TermDictionary term_dict_;
  TermDictionary stemmed_term_dict_;
  InvertedIndex index_;
  QueryLog query_log_;
  UnitDictionary units_;
  WikiStore wiki_;
  std::unique_ptr<SearchService> search_;
  std::unique_ptr<EntityDetector> detector_;
  std::unique_ptr<ConceptVectorGenerator> conceptvec_;
  std::unique_ptr<InterestingnessExtractor> interestingness_;
  std::unique_ptr<RelevanceMiner> relevance_miner_;
  std::unique_ptr<ClickSimulator> clicks_;
};

}  // namespace ckr

#endif  // CKR_CORE_PIPELINE_H_
