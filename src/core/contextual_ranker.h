// Public entry point of the library.
//
// ContextualRanker bundles the full system the paper deploys: it builds
// the world and substrates, simulates click traffic, trains the combined
// interestingness+relevance ranking model, loads the quantized runtime
// stores of Section VI, and then ranks the key concepts of any new
// document through the production RuntimeRanker.
//
//   auto ranker = ContextualRanker::Train({});
//   auto ranked = (*ranker)->Rank(document_text, /*top_n=*/5);
#ifndef CKR_CORE_CONTEXTUAL_RANKER_H_
#define CKR_CORE_CONTEXTUAL_RANKER_H_

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/dataset.h"
#include "core/experiment.h"
#include "core/pipeline.h"
#include "framework/runtime_ranker.h"
#include "framework/store_pack.h"

namespace ckr {

/// End-to-end options. The deployed model always uses the full feature
/// layout (all interestingness groups + the snippet relevance score) so
/// that the runtime store layout matches; experiment-time ablations go
/// through ExperimentRunner instead.
struct ContextualRankerOptions {
  PipelineConfig pipeline;
  DatasetConfig dataset;
  RankSvmConfig svm;
  RelevanceResource relevance_resource = RelevanceResource::kSnippets;
};

/// Immutable after Train(); Rank() is const and thread-compatible (stats
/// accumulation aside).
class ContextualRanker {
 public:
  /// Builds + trains the whole system (offline phase). Minutes at paper
  /// scale, seconds at test scale.
  [[nodiscard]] static StatusOr<std::unique_ptr<ContextualRanker>> Train(
      const ContextualRankerOptions& options);

  /// Ranks the key concepts of a document, best first. `top_n` == 0 means
  /// all.
  std::vector<RankedAnnotation> Rank(std::string_view text,
                                     size_t top_n = 0) const;

  /// Batch serving: ranks every document using up to `num_threads` workers
  /// (0 or 1 = inline). Output slot i corresponds to docs[i]; results are
  /// deterministic and identical to per-document Rank() calls regardless
  /// of thread count. Stats are accumulated as with Rank().
  std::vector<std::vector<RankedAnnotation>> RankBatch(
      std::span<const std::string_view> docs, unsigned num_threads,
      size_t top_n = 0) const;

  const Pipeline& pipeline() const { return *pipeline_; }
  const ClickDataset& dataset() const { return dataset_; }
  const RankSvmModel& model() const { return model_; }
  /// The underlying Section VI runtime (for benchmarks and direct batch
  /// access with caller-managed stats/scratch).
  const RuntimeRanker& runtime() const { return *runtime_; }

  const QuantizedInterestingnessStore& interestingness_store() const {
    return interestingness_store_;
  }
  const PackedRelevanceStore& relevance_store() const {
    return *relevance_store_;
  }
  const GlobalTidTable& tid_table() const { return tids_; }

  /// Throughput counters accumulated across Rank() calls (Section VI
  /// performance experiment).
  const RuntimeStats& stats() const { return stats_; }
  void ResetStats() { stats_ = RuntimeStats(); }

  /// Serializes the deployable runtime artifact (model + TID table +
  /// quantized stores) in the StorePack format; see
  /// framework/store_pack.h.
  std::string SerializePack() const {
    return SerializeStorePack(tids_, interestingness_store_,
                              *relevance_store_, model_);
  }

  /// Attaches a live CTR tracker (Section VIII online adaptation); its
  /// per-concept adjustments are added to every Rank() score. Pass
  /// nullptr to detach. The tracker must outlive this object.
  void SetOnlineTracker(const CtrTracker* tracker) {
    runtime_->SetOnlineTracker(tracker);
  }

 private:
  ContextualRanker() = default;

  std::unique_ptr<Pipeline> pipeline_;
  ClickDataset dataset_;
  RankSvmModel model_;
  GlobalTidTable tids_;
  QuantizedInterestingnessStore interestingness_store_;
  std::unique_ptr<PackedRelevanceStore> relevance_store_;
  std::unique_ptr<RuntimeRanker> runtime_;
  mutable RuntimeStats stats_;
};

}  // namespace ckr

#endif  // CKR_CORE_CONTEXTUAL_RANKER_H_
