#include "core/pipeline.h"

namespace ckr {

PipelineConfig PipelineConfig::SmallForTests() {
  PipelineConfig cfg;
  cfg.world.num_topics = 8;
  cfg.world.background_vocab = 800;
  cfg.world.words_per_topic = 50;
  cfg.world.num_named_entities = 180;
  cfg.world.num_concepts = 120;
  cfg.world.num_generic_concepts = 16;
  cfg.world.num_web_docs = 500;
  cfg.world.num_news_stories = 120;
  cfg.world.num_answers_snippets = 60;
  cfg.querylog.num_submissions = 30000;
  cfg.units.min_term_freq = 3;
  cfg.units.min_unit_freq = 3;
  return cfg;
}

StatusOr<std::unique_ptr<Pipeline>> Pipeline::Build(
    const PipelineConfig& config) {
  std::unique_ptr<Pipeline> p(new Pipeline());
  p->config_ = config;

  auto world_or = World::Create(config.world);
  if (!world_or.ok()) return world_or.status();
  p->world_ = std::move(*world_or);

  DocGenerator gen(*p->world_);
  p->web_corpus_ =
      gen.GenerateCorpus(Document::Kind::kWeb, config.world.num_web_docs);
  p->news_stories_ =
      gen.GenerateCorpus(Document::Kind::kNews, config.world.num_news_stories);
  p->answers_snippets_ = gen.GenerateCorpus(
      Document::Kind::kAnswers, config.world.num_answers_snippets);

  p->term_dict_.Build(p->web_corpus_);
  p->stemmed_term_dict_.Build(p->web_corpus_, /*stemmed=*/true);

  for (const Document& doc : p->web_corpus_) p->index_.Add(doc);
  p->index_.Finalize();

  QueryGenerator qgen(*p->world_, config.querylog);
  p->query_log_ = qgen.Generate();

  UnitExtractor extractor(config.units);
  auto units_or = extractor.Extract(p->query_log_);
  if (!units_or.ok()) return units_or.status();
  p->units_ = std::move(*units_or);

  p->wiki_ = WikiStore::Build(*p->world_, config.world.seed ^ 0x817ac1e);

  p->search_ = std::make_unique<SearchService>(p->index_, p->query_log_,
                                               p->term_dict_);
  p->detector_ = std::make_unique<EntityDetector>(
      EntityDetector::FromWorld(*p->world_, &p->units_, config.detector));
  p->conceptvec_ = std::make_unique<ConceptVectorGenerator>(
      p->term_dict_, p->units_, config.conceptvec);
  p->interestingness_ = std::make_unique<InterestingnessExtractor>(
      p->query_log_, p->units_, *p->search_, p->wiki_);
  p->relevance_miner_ =
      std::make_unique<RelevanceMiner>(*p->search_, p->stemmed_term_dict_);
  p->clicks_ = std::make_unique<ClickSimulator>(*p->world_, config.clicks);
  return p;
}

}  // namespace ckr
