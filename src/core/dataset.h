// Click-through dataset construction (paper Sections III and V-A.1).
//
// News stories are annotated by the detector, traffic is simulated, the
// cleaning rules are applied, large documents are partitioned into
// overlapping 2500-character windows (position-bias mitigation), and each
// surviving annotation becomes a labeled ranking instance carrying: the
// CTR label, the concept-vector baseline score, the nine interestingness
// features, and the mined relevance score against the window context for
// each of the three resources.
#ifndef CKR_CORE_DATASET_H_
#define CKR_CORE_DATASET_H_

#include <array>
#include <string>
#include <vector>

#include "clicks/click_model.h"
#include "core/pipeline.h"
#include "eval/cross_validation.h"
#include "features/interestingness.h"
#include "features/relevance.h"
#include "text/sentence.h"

namespace ckr {

/// Windowing, cleaning and CV knobs.
struct DatasetConfig {
  size_t window_size = 2500;
  size_t window_overlap = 500;
  /// The production system annotates only its top-ranked entities per
  /// story (the paper's data averages ~7.4 annotated concepts/story);
  /// detections beyond this cut, ranked by concept-vector score, receive
  /// no Shortcut and therefore no click data. 0 disables the cut.
  size_t max_annotations_per_story = 8;
  ReportFilter filter;
  int cv_folds = 5;
  uint64_t cv_seed = 31337;
  size_t relevance_terms = 100;  ///< m: mined keywords kept per concept.
  /// Worker threads for the offline phase (detection, click simulation,
  /// per-concept mining). Deterministic for any value: work is
  /// partitioned per story / per concept with no cross-item state.
  unsigned num_threads = 0;  ///< 0 = use all hardware threads.
};

/// One labeled ranking instance (a concept in a window).
struct WindowInstance {
  std::string key;
  EntityType type = EntityType::kConcept;
  uint32_t window_group = 0;  ///< Global window id (pairing group).
  uint32_t story_index = 0;   ///< Index into ClickDataset::stories.
  size_t position = 0;        ///< Byte offset within the story.
  uint64_t views = 0;
  uint64_t clicks = 0;
  double ctr = 0.0;
  double baseline_score = 0.0;  ///< Concept-vector score in the window.
  InterestingnessVector interestingness;
  /// Relevance score per resource, indexed by RelevanceResource.
  std::array<double, 3> relevance{};
};

/// The assembled dataset.
struct ClickDataset {
  std::vector<WindowInstance> instances;
  std::vector<uint32_t> surviving_stories;  ///< Story ids after cleaning.
  std::vector<int> story_fold;              ///< Fold per surviving story.
  size_t num_windows = 0;
  uint64_t total_clicks = 0;
  size_t num_distinct_concepts = 0;

  /// All CTR labels (for the NDCG bucketizer).
  std::vector<double> AllCtrs() const;

  /// Instance indexes grouped by window, in window order.
  std::vector<std::vector<size_t>> GroupByWindow() const;
};

/// Builds the dataset from a pipeline. Mining results are cached per
/// concept, so the cost is O(distinct concepts) resource calls.
class DatasetBuilder {
 public:
  DatasetBuilder(const Pipeline& pipeline, const DatasetConfig& config = {});

  [[nodiscard]] StatusOr<ClickDataset> Build() const;

 private:
  const Pipeline& pipeline_;
  DatasetConfig config_;
};

}  // namespace ckr

#endif  // CKR_CORE_DATASET_H_
