#include "core/experiment.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "common/rng.h"

namespace ckr {

ExperimentRunner::ExperimentRunner(const ClickDataset& dataset,
                                   unsigned num_threads)
    : dataset_(dataset),
      num_threads_(num_threads == 0 ? DefaultWorkerCount() : num_threads),
      window_groups_(dataset.GroupByWindow()),
      buckets_(dataset.AllCtrs()) {}

std::vector<double> ExperimentRunner::Features(const WindowInstance& inst,
                                               const ModelSpec& spec) {
  std::vector<double> f;
  if (spec.use_interestingness) {
    f = inst.interestingness.Flatten(spec.group_mask);
  }
  if (spec.include_relevance) {
    // Log-scaled: raw relevance scores have heavy per-concept scale
    // variance that starves a linear ranker.
    f.push_back(std::log1p(
        inst.relevance[static_cast<size_t>(spec.relevance_resource)]));
  }
  return f;
}

EvalResult ExperimentRunner::EvaluateScores(
    const std::vector<double>& scores) const {
  EvalResult result;
  PairwiseErrorAccumulator weighted, plain;
  double ndcg_sum[3] = {0, 0, 0};
  std::vector<std::pair<double, double>> window_masses;
  window_masses.reserve(window_groups_.size());
  for (const auto& group : window_groups_) {
    std::vector<double> pred, ctr;
    pred.reserve(group.size());
    ctr.reserve(group.size());
    for (size_t idx : group) {
      pred.push_back(scores[idx]);
      ctr.push_back(dataset_.instances[idx].ctr);
    }
    PairwiseErrorAccumulator window_acc;
    AccumulatePairwiseError(pred, ctr, /*weighted=*/true, &window_acc);
    window_masses.emplace_back(window_acc.error_mass, window_acc.total_mass);
    weighted.error_mass += window_acc.error_mass;
    weighted.total_mass += window_acc.total_mass;
    AccumulatePairwiseError(pred, ctr, /*weighted=*/false, &plain);
    for (size_t k = 0; k < 3; ++k) {
      ndcg_sum[k] += NdcgAtK(pred, ctr, buckets_, k + 1);
    }
  }
  result.weighted_error_rate = weighted.Rate();
  result.weighted_error_ci =
      BootstrapRatioCi(window_masses, /*resamples=*/2000,
                       /*confidence=*/0.95, /*seed=*/8675309, num_threads_);
  result.error_rate = plain.Rate();
  result.windows = window_groups_.size();
  for (size_t k = 0; k < 3; ++k) {
    result.ndcg[k] = result.windows > 0
                         ? ndcg_sum[k] / static_cast<double>(result.windows)
                         : 0.0;
  }
  return result;
}

EvalResult ExperimentRunner::EvaluateRandom(uint64_t seed) const {
  Rng rng(seed);
  std::vector<double> scores(dataset_.instances.size());
  for (double& s : scores) s = rng.NextDouble();
  return EvaluateScores(scores);
}

EvalResult ExperimentRunner::EvaluateBaseline() const {
  std::vector<double> scores;
  scores.reserve(dataset_.instances.size());
  for (const WindowInstance& inst : dataset_.instances) {
    scores.push_back(inst.baseline_score);
  }
  return EvaluateScores(scores);
}

EvalResult ExperimentRunner::EvaluateRelevanceOnly(
    RelevanceResource resource) const {
  std::vector<double> scores;
  scores.reserve(dataset_.instances.size());
  for (const WindowInstance& inst : dataset_.instances) {
    scores.push_back(inst.relevance[static_cast<size_t>(resource)]);
  }
  return EvaluateScores(scores);
}

StatusOr<EvalResult> ExperimentRunner::EvaluateModelCV(
    const ModelSpec& spec) const {
  int folds = 0;
  for (int f : dataset_.story_fold) folds = std::max(folds, f + 1);
  if (folds < 2) {
    return Status::FailedPrecondition("dataset has fewer than 2 folds");
  }
  // Folds are independent: each one trains on the other folds' stories
  // and writes scores only for its own held-out instances, so the fan-out
  // below is bit-identical for any worker count. Fold trainers keep the
  // spec's own num_threads (default 1) — the fold level already provides
  // the parallelism.
  std::vector<double> scores(dataset_.instances.size(), 0.0);
  std::vector<Status> fold_status(folds, Status::OK());
  ParallelFor(static_cast<size_t>(folds), num_threads_, [&](size_t f) {
    const int fold = static_cast<int>(f);
    std::vector<RankingInstance> train;
    for (const WindowInstance& inst : dataset_.instances) {
      if (dataset_.story_fold[inst.story_index] == fold) continue;
      RankingInstance ri;
      ri.features = Features(inst, spec);
      ri.label = inst.ctr;
      ri.group = inst.window_group;
      train.push_back(std::move(ri));
    }
    RankSvmTrainer trainer(spec.svm);
    auto model_or = trainer.Train(train);
    if (!model_or.ok()) {
      fold_status[f] = model_or.status();
      return;
    }
    const RankSvmModel& model = *model_or;
    for (size_t i = 0; i < dataset_.instances.size(); ++i) {
      const WindowInstance& inst = dataset_.instances[i];
      if (dataset_.story_fold[inst.story_index] != fold) continue;
      double s = model.Score(Features(inst, spec));
      if (spec.tie_break_relevance) {
        // Negligible against real score differences; decisive on ties.
        s += 1e-9 * inst.relevance[static_cast<size_t>(
                        spec.relevance_resource)];
      }
      scores[i] = s;
    }
  });
  for (const Status& status : fold_status) {
    if (!status.ok()) return status;
  }
  return EvaluateScores(scores);
}

StatusOr<RankSvmModel> ExperimentRunner::TrainFullModel(
    const ModelSpec& spec) const {
  std::vector<RankingInstance> train;
  train.reserve(dataset_.instances.size());
  for (const WindowInstance& inst : dataset_.instances) {
    RankingInstance ri;
    ri.features = Features(inst, spec);
    ri.label = inst.ctr;
    ri.group = inst.window_group;
    train.push_back(std::move(ri));
  }
  RankSvmTrainer trainer(spec.svm);
  return trainer.Train(train);
}

}  // namespace ckr
