#include "text/html.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace ckr {
namespace {

// Tags whose end implies a text break.
bool IsBlockTag(std::string_view name) {
  static const char* const kBlockTags[] = {
      "p",  "div", "br",  "li", "ul", "ol", "h1", "h2", "h3",
      "h4", "h5",  "h6",  "tr", "td", "th", "table", "blockquote",
  };
  for (const char* t : kBlockTags) {
    if (name == t) return true;
  }
  return false;
}

// Extracts the tag name from the inside of "<...>" (lower-cased, without a
// leading '/').
std::string TagName(std::string_view inside) {
  size_t i = 0;
  if (i < inside.size() && inside[i] == '/') ++i;
  size_t start = i;
  while (i < inside.size() &&
         std::isalnum(static_cast<unsigned char>(inside[i]))) {
    ++i;
  }
  return ToLowerAscii(inside.substr(start, i - start));
}

// Decodes an entity starting at text[i] == '&'; appends the decoded char(s)
// to out and returns the index one past the entity, or i+1 (emitting '&')
// if it is not a recognized entity.
size_t DecodeEntity(std::string_view text, size_t i, std::string& out) {
  size_t semi = text.find(';', i + 1);
  if (semi == std::string_view::npos || semi - i > 8) {
    out.push_back('&');
    return i + 1;
  }
  std::string_view body = text.substr(i + 1, semi - i - 1);
  if (body == "amp") {
    out.push_back('&');
  } else if (body == "lt") {
    out.push_back('<');
  } else if (body == "gt") {
    out.push_back('>');
  } else if (body == "quot") {
    out.push_back('"');
  } else if (body == "apos") {
    out.push_back('\'');
  } else if (body == "nbsp") {
    out.push_back(' ');
  } else if (!body.empty() && body[0] == '#') {
    long code = std::strtol(std::string(body.substr(1)).c_str(), nullptr, 10);
    if (code >= 32 && code < 127) {
      out.push_back(static_cast<char>(code));
    } else {
      out.push_back(' ');
    }
  } else {
    out.push_back('&');
    return i + 1;
  }
  return semi + 1;
}

}  // namespace

std::string StripHtml(std::string_view html) {
  std::string out;
  out.reserve(html.size());
  size_t i = 0;
  const size_t n = html.size();
  while (i < n) {
    char c = html[i];
    if (c == '<') {
      // Comment?
      if (html.substr(i, 4) == "<!--") {
        size_t end = html.find("-->", i + 4);
        i = (end == std::string_view::npos) ? n : end + 3;
        continue;
      }
      size_t close = html.find('>', i + 1);
      if (close == std::string_view::npos) break;  // Truncated tag: stop.
      std::string_view inside = html.substr(i + 1, close - i - 1);
      std::string name = TagName(inside);
      if (name == "script" || name == "style") {
        // Skip to the matching close tag.
        std::string end_tag = "</" + name;
        size_t pos = close + 1;
        size_t found = std::string_view::npos;
        while (pos < n) {
          size_t cand = html.find('<', pos);
          if (cand == std::string_view::npos) break;
          std::string_view rest = html.substr(cand, end_tag.size());
          if (ToLowerAscii(rest) == end_tag) {
            found = cand;
            break;
          }
          pos = cand + 1;
        }
        if (found == std::string_view::npos) {
          i = n;
        } else {
          size_t tag_close = html.find('>', found);
          i = (tag_close == std::string_view::npos) ? n : tag_close + 1;
        }
        continue;
      }
      if (IsBlockTag(name)) out.push_back('\n');
      i = close + 1;
    } else if (c == '&') {
      i = DecodeEntity(html, i, out);
    } else {
      out.push_back(c);
      ++i;
    }
  }
  return out;
}

std::string EscapeHtml(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace ckr
