// Stop-word list used by concept-vector generation (paper Section II-B:
// "The stop-words are removed") and by relevant-keyword mining.
#ifndef CKR_TEXT_STOPWORDS_H_
#define CKR_TEXT_STOPWORDS_H_

#include <string_view>
#include <unordered_set>

namespace ckr {

/// Returns true for common English function words (articles, prepositions,
/// pronouns, auxiliaries). The list is fixed and lower-case.
bool IsStopWord(std::string_view word);

/// The full stop-word set (for iteration in tests and generators).
const std::unordered_set<std::string_view>& StopWordSet();

}  // namespace ckr

#endif  // CKR_TEXT_STOPWORDS_H_
