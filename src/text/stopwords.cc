#include "text/stopwords.h"

namespace ckr {

const std::unordered_set<std::string_view>& StopWordSet() {
  static const std::unordered_set<std::string_view>* const kSet =
      new std::unordered_set<std::string_view>({
          "a",    "about", "above", "after", "again",  "all",   "also",
          "am",   "an",    "and",   "any",   "are",    "as",    "at",
          "be",   "been",  "before", "being", "below", "between", "both",
          "but",  "by",    "can",   "could", "did",    "do",    "does",
          "doing", "down", "during", "each", "few",    "for",   "from",
          "further", "had", "has",  "have",  "having", "he",    "her",
          "here", "hers",  "him",   "his",   "how",    "i",     "if",
          "in",   "into",  "is",    "it",    "its",    "itself", "just",
          "may",  "me",    "might", "more",  "most",   "must",  "my",
          "no",   "nor",   "not",   "now",   "of",     "off",   "on",
          "once", "only",  "or",    "other", "our",    "ours",  "out",
          "over", "own",   "said",  "same",  "she",    "should", "so",
          "some", "such",  "than",  "that",  "the",    "their", "theirs",
          "them", "then",  "there", "these", "they",   "this",  "those",
          "through", "to", "too",   "under", "until",  "up",    "upon",
          "us",   "very",  "was",   "we",    "were",   "what",  "when",
          "where", "which", "while", "who",  "whom",   "why",   "will",
          "with", "would", "you",   "your",  "yours",  "yourself",
      });
  return *kSet;
}

bool IsStopWord(std::string_view word) {
  return StopWordSet().count(word) > 0;
}

}  // namespace ckr
