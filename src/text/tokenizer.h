// Tokenization: the first pre-processing stage of the Contextual Shortcuts
// pipeline (paper Section II). Produces tokens with byte offsets so that
// downstream detectors can annotate the original text.
#ifndef CKR_TEXT_TOKENIZER_H_
#define CKR_TEXT_TOKENIZER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace ckr {

/// A token with its position in the source text.
struct Token {
  std::string text;   ///< Normalized token (lower-cased).
  std::string raw;    ///< Original surface form.
  size_t begin = 0;   ///< Byte offset of the first character.
  size_t end = 0;     ///< Byte offset one past the last character.

  bool operator==(const Token& other) const = default;
};

/// Options controlling token normalization.
struct TokenizerOptions {
  bool lowercase = true;
  /// Strip surrounding punctuation from each token ("(Obama," -> "obama").
  bool strip_punct = true;
  /// Keep tokens that are purely numeric.
  bool keep_numbers = true;
};

/// Splits text on whitespace and normalizes each token. Tokens that become
/// empty after normalization are dropped.
std::vector<Token> Tokenize(std::string_view text,
                            const TokenizerOptions& options = {});

/// Buffer-reuse variant of Tokenize for hot paths: overwrites `*out`
/// in place, reusing both the vector capacity and each slot's string
/// buffers, so steady-state tokenization of similar-sized documents
/// performs no heap allocations.
void TokenizeInto(std::string_view text, std::vector<Token>* out,
                  const TokenizerOptions& options = {});

/// Convenience: normalized token strings only.
std::vector<std::string> TokenizeToStrings(std::string_view text,
                                           const TokenizerOptions& options = {});

/// Normalizes a free-text phrase into the canonical form used for concept
/// keys: lower-cased, punctuation-stripped tokens joined by single spaces.
std::string NormalizePhrase(std::string_view phrase);

/// Applies the Porter stemmer to every token of an already-normalized
/// phrase.
std::string StemPhrase(std::string_view phrase);

}  // namespace ckr

#endif  // CKR_TEXT_TOKENIZER_H_
