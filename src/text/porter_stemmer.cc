#include "text/porter_stemmer.h"

#include <cctype>

namespace ckr {
namespace {

// Implementation of the 1980 Porter algorithm. The word is held in a
// mutable buffer `b` with logical end `k` (index of last character), and
// `j` marks the stem boundary during suffix checks, mirroring the variable
// names of Porter's reference implementation for ease of cross-checking.
class Stemmer {
 public:
  /// Stems `word` in place (the caller's buffer is reused, so repeated
  /// stemming through PorterStemInto allocates nothing in steady state).
  explicit Stemmer(std::string& word) : b_(word) {
    k_ = static_cast<int>(b_.size()) - 1;
  }

  void Run() {
    if (k_ <= 1) return;  // Words of length <= 2 are left unchanged.
    Step1ab();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5();
    b_.resize(static_cast<size_t>(k_) + 1);
  }

 private:
  // True if b_[i] is a consonant.
  bool Cons(int i) const {
    switch (b_[static_cast<size_t>(i)]) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return (i == 0) ? true : !Cons(i - 1);
      default:
        return true;
    }
  }

  // Measure of the stem b_[0..j_]: the number of VC sequences.
  int M() const {
    int n = 0;
    int i = 0;
    while (true) {
      if (i > j_) return n;
      if (!Cons(i)) break;
      ++i;
    }
    ++i;
    while (true) {
      while (true) {
        if (i > j_) return n;
        if (Cons(i)) break;
        ++i;
      }
      ++i;
      ++n;
      while (true) {
        if (i > j_) return n;
        if (!Cons(i)) break;
        ++i;
      }
      ++i;
    }
  }

  // True if the stem b_[0..j_] contains a vowel.
  bool VowelInStem() const {
    for (int i = 0; i <= j_; ++i) {
      if (!Cons(i)) return true;
    }
    return false;
  }

  // True if b_[i-1..i] is a double consonant.
  bool DoubleC(int i) const {
    if (i < 1) return false;
    if (b_[static_cast<size_t>(i)] != b_[static_cast<size_t>(i - 1)]) {
      return false;
    }
    return Cons(i);
  }

  // True if b_[i-2..i] is consonant-vowel-consonant and the final consonant
  // is not w, x or y; used to restore an 'e' (e.g. hop(p)ing -> hope).
  bool Cvc(int i) const {
    if (i < 2 || !Cons(i) || Cons(i - 1) || !Cons(i - 2)) return false;
    char ch = b_[static_cast<size_t>(i)];
    return ch != 'w' && ch != 'x' && ch != 'y';
  }

  // True if the word ends with suffix `s`; on success sets j_ to the stem
  // boundary.
  bool Ends(std::string_view s) {
    int len = static_cast<int>(s.size());
    if (len > k_ + 1) return false;
    if (b_.compare(static_cast<size_t>(k_ - len + 1), static_cast<size_t>(len),
                   s) != 0) {
      return false;
    }
    j_ = k_ - len;
    return true;
  }

  // Replaces the suffix after j_ with `s` and adjusts k_.
  void SetTo(std::string_view s) {
    b_.replace(static_cast<size_t>(j_ + 1), static_cast<size_t>(k_ - j_),
               s);
    k_ = j_ + static_cast<int>(s.size());
  }

  void R(std::string_view s) {
    if (M() > 0) SetTo(s);
  }

  // Step 1ab: plurals and -ed / -ing.
  void Step1ab() {
    if (b_[static_cast<size_t>(k_)] == 's') {
      if (Ends("sses")) {
        k_ -= 2;
      } else if (Ends("ies")) {
        SetTo("i");
      } else if (b_[static_cast<size_t>(k_ - 1)] != 's') {
        --k_;
      }
    }
    if (Ends("eed")) {
      if (M() > 0) --k_;
    } else if ((Ends("ed") || Ends("ing")) && VowelInStem()) {
      k_ = j_;
      if (Ends("at")) {
        SetTo("ate");
      } else if (Ends("bl")) {
        SetTo("ble");
      } else if (Ends("iz")) {
        SetTo("ize");
      } else if (DoubleC(k_)) {
        char ch = b_[static_cast<size_t>(k_)];
        if (ch != 'l' && ch != 's' && ch != 'z') --k_;
      } else {
        j_ = k_;
        if (M() == 1 && Cvc(k_)) SetTo("e");
      }
    }
  }

  // Step 1c: y -> i when there is another vowel in the stem.
  void Step1c() {
    if (Ends("y") && VowelInStem()) b_[static_cast<size_t>(k_)] = 'i';
  }

  // Step 2: double suffixes -> single ones, when M > 0.
  void Step2() {
    if (k_ < 1) return;
    switch (b_[static_cast<size_t>(k_ - 1)]) {
      case 'a':
        if (Ends("ational")) { R("ate"); break; }
        if (Ends("tional")) { R("tion"); break; }
        break;
      case 'c':
        if (Ends("enci")) { R("ence"); break; }
        if (Ends("anci")) { R("ance"); break; }
        break;
      case 'e':
        if (Ends("izer")) { R("ize"); break; }
        break;
      case 'l':
        if (Ends("bli")) { R("ble"); break; }
        if (Ends("alli")) { R("al"); break; }
        if (Ends("entli")) { R("ent"); break; }
        if (Ends("eli")) { R("e"); break; }
        if (Ends("ousli")) { R("ous"); break; }
        break;
      case 'o':
        if (Ends("ization")) { R("ize"); break; }
        if (Ends("ation")) { R("ate"); break; }
        if (Ends("ator")) { R("ate"); break; }
        break;
      case 's':
        if (Ends("alism")) { R("al"); break; }
        if (Ends("iveness")) { R("ive"); break; }
        if (Ends("fulness")) { R("ful"); break; }
        if (Ends("ousness")) { R("ous"); break; }
        break;
      case 't':
        if (Ends("aliti")) { R("al"); break; }
        if (Ends("iviti")) { R("ive"); break; }
        if (Ends("biliti")) { R("ble"); break; }
        break;
      case 'g':
        if (Ends("logi")) { R("log"); break; }
        break;
      default:
        break;
    }
  }

  // Step 3: -ic-, -full, -ness etc.
  void Step3() {
    switch (b_[static_cast<size_t>(k_)]) {
      case 'e':
        if (Ends("icate")) { R("ic"); break; }
        if (Ends("ative")) { R(""); break; }
        if (Ends("alize")) { R("al"); break; }
        break;
      case 'i':
        if (Ends("iciti")) { R("ic"); break; }
        break;
      case 'l':
        if (Ends("ical")) { R("ic"); break; }
        if (Ends("ful")) { R(""); break; }
        break;
      case 's':
        if (Ends("ness")) { R(""); break; }
        break;
      default:
        break;
    }
  }

  // Step 4: -ant, -ence etc. removed when M > 1.
  void Step4() {
    if (k_ < 1) return;
    switch (b_[static_cast<size_t>(k_ - 1)]) {
      case 'a':
        if (Ends("al")) break;
        return;
      case 'c':
        if (Ends("ance")) break;
        if (Ends("ence")) break;
        return;
      case 'e':
        if (Ends("er")) break;
        return;
      case 'i':
        if (Ends("ic")) break;
        return;
      case 'l':
        if (Ends("able")) break;
        if (Ends("ible")) break;
        return;
      case 'n':
        if (Ends("ant")) break;
        if (Ends("ement")) break;
        if (Ends("ment")) break;
        if (Ends("ent")) break;
        return;
      case 'o':
        if (Ends("ion") && j_ >= 0 &&
            (b_[static_cast<size_t>(j_)] == 's' ||
             b_[static_cast<size_t>(j_)] == 't')) {
          break;
        }
        if (Ends("ou")) break;  // e.g. -ous via step 3 residue.
        return;
      case 's':
        if (Ends("ism")) break;
        return;
      case 't':
        if (Ends("ate")) break;
        if (Ends("iti")) break;
        return;
      case 'u':
        if (Ends("ous")) break;
        return;
      case 'v':
        if (Ends("ive")) break;
        return;
      case 'z':
        if (Ends("ize")) break;
        return;
      default:
        return;
    }
    if (M() > 1) k_ = j_;
  }

  // Step 5: final -e removal and -ll -> -l.
  void Step5() {
    j_ = k_;
    if (b_[static_cast<size_t>(k_)] == 'e') {
      int a = M();
      if (a > 1 || (a == 1 && !Cvc(k_ - 1))) --k_;
    }
    if (b_[static_cast<size_t>(k_)] == 'l' && DoubleC(k_) && M() > 1) --k_;
  }

  std::string& b_;
  int k_ = -1;
  int j_ = 0;
};

}  // namespace

void PorterStemInto(std::string_view word, std::string* out) {
  out->assign(word);
  if (word.size() <= 2) return;
  for (char c : word) {
    if (!std::islower(static_cast<unsigned char>(c))) return;
  }
  Stemmer(*out).Run();
}

std::string PorterStem(std::string_view word) {
  std::string out;
  PorterStemInto(word, &out);
  return out;
}

}  // namespace ckr
