// Minimal HTML handling for the pre-processing stage (paper Section II:
// "A sequence of pre-processing steps handles HTML parsing ...").
#ifndef CKR_TEXT_HTML_H_
#define CKR_TEXT_HTML_H_

#include <string>
#include <string_view>

namespace ckr {

/// Strips tags, comments, script/style bodies, and decodes the common named
/// character entities (&amp; &lt; &gt; &quot; &apos; &nbsp;) plus numeric
/// ASCII entities. Block-level tags are replaced by newlines so paragraph
/// detection still works downstream.
std::string StripHtml(std::string_view html);

/// Escapes &, <, > and " for embedding plain text into HTML (used by the
/// annotation output writer).
std::string EscapeHtml(std::string_view text);

}  // namespace ckr

#endif  // CKR_TEXT_HTML_H_
