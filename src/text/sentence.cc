#include "text/sentence.h"

#include <cctype>
#include <string>

#include "common/check.h"
#include "common/string_util.h"

namespace ckr {
namespace {

bool IsAbbreviation(std::string_view text, size_t dot_pos) {
  // Word immediately before the dot.
  size_t start = dot_pos;
  while (start > 0 &&
         std::isalpha(static_cast<unsigned char>(text[start - 1]))) {
    --start;
  }
  std::string_view word = text.substr(start, dot_pos - start);
  if (word.size() == 1 &&
      std::isupper(static_cast<unsigned char>(word[0]))) {
    return true;  // Single initial, e.g. "John F. Kennedy".
  }
  static const char* const kAbbrevs[] = {
      "mr", "mrs", "ms", "dr", "prof", "sen", "rep", "gov", "gen",
      "sgt", "col", "lt",  "st", "jr", "sr", "inc", "corp", "co",
      "vs", "etc", "jan", "feb", "mar", "apr", "jun", "jul", "aug",
      "sep", "sept", "oct", "nov", "dec", "u.s", "u.k",
  };
  std::string lower = ToLowerAscii(word);
  for (const char* a : kAbbrevs) {
    if (lower == a) return true;
  }
  return false;
}

bool IsDecimalPoint(std::string_view text, size_t dot_pos) {
  return dot_pos > 0 && dot_pos + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[dot_pos - 1])) &&
         std::isdigit(static_cast<unsigned char>(text[dot_pos + 1]));
}

}  // namespace

std::vector<TextSpan> DetectSentences(std::string_view text) {
  std::vector<TextSpan> spans;
  size_t begin = 0;
  const size_t n = text.size();
  for (size_t i = 0; i < n; ++i) {
    char c = text[i];
    bool boundary = false;
    if (c == '!' || c == '?') {
      boundary = true;
    } else if (c == '.') {
      if (!IsAbbreviation(text, i) && !IsDecimalPoint(text, i)) {
        boundary = true;
      }
    } else if (c == '\n') {
      boundary = true;
    }
    if (boundary) {
      // Consume trailing closers/quotes after the terminator.
      size_t end = i + 1;
      while (end < n && (text[end] == '"' || text[end] == '\'' ||
                         text[end] == ')' || text[end] == ']')) {
        ++end;
      }
      // Require whitespace (or end-of-text) after the terminator for . ! ?
      if (c != '\n' && end < n &&
          !std::isspace(static_cast<unsigned char>(text[end]))) {
        continue;
      }
      if (end > begin) {
        std::string_view body = text.substr(begin, end - begin);
        std::string_view trimmed = TrimView(body);
        if (!trimmed.empty()) {
          size_t off = static_cast<size_t>(trimmed.data() - text.data());
          spans.push_back({off, off + trimmed.size()});
        }
      }
      begin = end;
      i = end - 1;
    }
  }
  if (begin < n) {
    std::string_view trimmed = TrimView(text.substr(begin));
    if (!trimmed.empty()) {
      size_t off = static_cast<size_t>(trimmed.data() - text.data());
      spans.push_back({off, off + trimmed.size()});
    }
  }
  return spans;
}

std::vector<TextSpan> DetectParagraphs(std::string_view text) {
  std::vector<TextSpan> spans;
  size_t begin = 0;
  const size_t n = text.size();
  size_t i = 0;
  while (i < n) {
    // A paragraph break is a newline followed by optional spaces and
    // another newline.
    if (text[i] == '\n') {
      size_t j = i + 1;
      while (j < n && (text[j] == ' ' || text[j] == '\t' || text[j] == '\r')) {
        ++j;
      }
      if (j < n && text[j] == '\n') {
        std::string_view trimmed = TrimView(text.substr(begin, i - begin));
        if (!trimmed.empty()) {
          size_t off = static_cast<size_t>(trimmed.data() - text.data());
          spans.push_back({off, off + trimmed.size()});
        }
        while (j < n && std::isspace(static_cast<unsigned char>(text[j]))) {
          ++j;
        }
        begin = j;
        i = j;
        continue;
      }
    }
    ++i;
  }
  if (begin < n) {
    std::string_view trimmed = TrimView(text.substr(begin));
    if (!trimmed.empty()) {
      size_t off = static_cast<size_t>(trimmed.data() - text.data());
      spans.push_back({off, off + trimmed.size()});
    }
  }
  return spans;
}

std::vector<TextSpan> PartitionIntoWindows(size_t text_size,
                                           size_t window_size,
                                           size_t overlap) {
  CKR_DCHECK(window_size > 0);
  CKR_DCHECK(overlap < window_size);
  std::vector<TextSpan> windows;
  if (text_size == 0) return windows;
  if (text_size <= window_size) {
    windows.push_back({0, text_size});
    return windows;
  }
  const size_t stride = window_size - overlap;
  size_t begin = 0;
  while (true) {
    size_t end = begin + window_size;
    if (end >= text_size) {
      windows.push_back({begin, text_size});
      break;
    }
    windows.push_back({begin, end});
    begin += stride;
  }
  return windows;
}

}  // namespace ckr
