#include "text/tokenizer.h"

#include <cctype>

#include "common/string_util.h"
#include "text/porter_stemmer.h"

namespace ckr {
namespace {

bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)); }

bool AllDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

void TokenizeInto(std::string_view text, std::vector<Token>* out,
                  const TokenizerOptions& options) {
  size_t count = 0;  // Slots [0, count) of *out are live; the rest reuse
                     // their string capacity from earlier documents.
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    while (i < n && IsSpace(text[i])) ++i;
    if (i >= n) break;
    size_t start = i;
    while (i < n && !IsSpace(text[i])) ++i;
    std::string_view raw = text.substr(start, i - start);
    std::string_view piece = raw;
    size_t begin = start;
    if (options.strip_punct) {
      std::string_view stripped = StripSurroundingPunct(piece);
      begin = start + static_cast<size_t>(stripped.data() - piece.data());
      piece = stripped;
    }
    if (piece.empty()) continue;
    if (!options.keep_numbers && AllDigits(piece)) continue;
    if (count == out->size()) out->emplace_back();
    Token& tok = (*out)[count++];
    tok.raw.assign(piece);
    if (options.lowercase) {
      tok.text.resize(piece.size());
      for (size_t c = 0; c < piece.size(); ++c) {
        tok.text[c] = static_cast<char>(
            std::tolower(static_cast<unsigned char>(piece[c])));
      }
    } else {
      tok.text.assign(piece);
    }
    // Possessive normalization: "obama's" matches the entity "obama" (the
    // raw form and offsets keep the full surface).
    if (tok.text.size() > 2 && EndsWith(tok.text, "'s")) {
      tok.text.resize(tok.text.size() - 2);
    }
    tok.begin = begin;
    tok.end = begin + piece.size();
  }
  out->resize(count);
}

std::vector<Token> Tokenize(std::string_view text,
                            const TokenizerOptions& options) {
  std::vector<Token> tokens;
  TokenizeInto(text, &tokens, options);
  return tokens;
}

std::vector<std::string> TokenizeToStrings(std::string_view text,
                                           const TokenizerOptions& options) {
  std::vector<std::string> out;
  for (auto& tok : Tokenize(text, options)) out.push_back(std::move(tok.text));
  return out;
}

std::string NormalizePhrase(std::string_view phrase) {
  std::vector<std::string> tokens = TokenizeToStrings(phrase);
  return JoinStrings(tokens, " ");
}

std::string StemPhrase(std::string_view phrase) {
  std::vector<std::string> tokens = TokenizeToStrings(phrase);
  for (std::string& t : tokens) t = PorterStem(t);
  return JoinStrings(tokens, " ");
}

}  // namespace ckr
