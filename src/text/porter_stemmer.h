// Porter stemming algorithm (M.F. Porter, "An algorithm for suffix
// stripping", Program 14(3), 1980) — the stemmer cited by the paper [17]
// and used by the runtime framework's Stemmer component (Section VI).
#ifndef CKR_TEXT_PORTER_STEMMER_H_
#define CKR_TEXT_PORTER_STEMMER_H_

#include <string>
#include <string_view>

namespace ckr {

/// Stems a single lower-case ASCII word with the classic 5-step Porter
/// algorithm. Words of length <= 2 are returned unchanged, as in the
/// original definition. Non-alphabetic input is returned unchanged.
std::string PorterStem(std::string_view word);

/// Buffer-reuse variant for hot paths: stems `word` into `*out`, reusing
/// the string's capacity. `word` must not alias `*out`.
void PorterStemInto(std::string_view word, std::string* out);

}  // namespace ckr

#endif  // CKR_TEXT_PORTER_STEMMER_H_
