// Sentence and paragraph boundary detection (paper Section II pre-
// processing) and the evaluation-time document windowing of Section V-A.1
// ("we partitioned large documents into windows of size 2500 characters
// ... consecutive windows overlap (with 500 characters)").
#ifndef CKR_TEXT_SENTENCE_H_
#define CKR_TEXT_SENTENCE_H_

#include <cstddef>
#include <string_view>
#include <vector>

namespace ckr {

/// A half-open [begin, end) byte span of the source text.
struct TextSpan {
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }
  bool operator==(const TextSpan& other) const = default;
};

/// Splits text into sentences on '.', '!' and '?' followed by whitespace,
/// with protection for common abbreviations ("Mr.", "Dr.", "U.S.", single
/// initials) and decimal numbers.
std::vector<TextSpan> DetectSentences(std::string_view text);

/// Splits text into paragraphs on blank lines.
std::vector<TextSpan> DetectParagraphs(std::string_view text);

/// Partitions a document into fixed-size character windows with overlap;
/// the last window is shortened to the text end. `overlap` must be smaller
/// than `window_size`. A document shorter than `window_size` yields one
/// window covering the whole text.
std::vector<TextSpan> PartitionIntoWindows(size_t text_size,
                                           size_t window_size = 2500,
                                           size_t overlap = 500);

}  // namespace ckr

#endif  // CKR_TEXT_SENTENCE_H_
