#include "detect/disambiguator.h"

#include "text/tokenizer.h"

namespace ckr {

void SenseDisambiguator::AddSense(std::string_view key, Sense sense) {
  KeySenses& ks = senses_[NormalizePhrase(key)];
  std::unordered_set<std::string> profile(sense.profile.begin(),
                                          sense.profile.end());
  ks.senses.push_back(std::move(sense));
  ks.profiles.push_back(std::move(profile));
}

bool SenseDisambiguator::HasSenses(std::string_view key) const {
  return senses_.count(NormalizePhrase(key)) > 0;
}

const Sense* SenseDisambiguator::Resolve(
    std::string_view key, const std::vector<std::string>& tokens,
    size_t match_begin, size_t match_end, size_t window_tokens) const {
  auto it = senses_.find(NormalizePhrase(key));
  if (it == senses_.end()) return nullptr;
  const KeySenses& ks = it->second;
  size_t lo = match_begin > window_tokens ? match_begin - window_tokens : 0;
  size_t hi = std::min(tokens.size(), match_end + window_tokens);

  size_t best = 0;  // Primary sense wins ties.
  size_t best_hits = 0;
  for (size_t s = 0; s < ks.senses.size(); ++s) {
    size_t hits = 0;
    for (size_t t = lo; t < hi; ++t) {
      if (t >= match_begin && t < match_end) continue;  // The mention itself.
      if (ks.profiles[s].count(tokens[t]) > 0) ++hits;
    }
    if (hits > best_hits) {
      best_hits = hits;
      best = s;
    }
  }
  return &ks.senses[best];
}

}  // namespace ckr
