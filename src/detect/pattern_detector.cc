#include "detect/pattern_detector.h"

#include <array>
#include <cctype>

#include "common/string_util.h"
#include "obs/hooks.h"

namespace ckr {
namespace {

// Table-driven IsWordChar: the detector scans every byte of every
// document, so avoid the libc isalnum call in the hot loop.
constexpr std::array<bool, 256> MakeWordCharTable() {
  std::array<bool, 256> t{};
  for (int c = '0'; c <= '9'; ++c) t[c] = true;
  for (int c = 'a'; c <= 'z'; ++c) t[c] = true;
  for (int c = 'A'; c <= 'Z'; ++c) t[c] = true;
  t['_'] = true;
  return t;
}
constexpr std::array<bool, 256> kWordChar = MakeWordCharTable();

bool IsWordChar(char c) { return kWordChar[static_cast<unsigned char>(c)]; }

bool IsLocalPartChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
         c == '_' || c == '+' || c == '-';
}

bool IsDomainChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-';
}

// Matches a dotted domain with at least one dot and a 2+ letter TLD,
// starting at `pos`. Returns end offset or `pos` on failure.
size_t MatchDomain(std::string_view text, size_t pos) {
  size_t i = pos;
  int labels = 0;
  while (i < text.size()) {
    size_t label_start = i;
    while (i < text.size() && IsDomainChar(text[i])) ++i;
    if (i == label_start) break;
    ++labels;
    if (i < text.size() && text[i] == '.') {
      // Only consume the dot if another label follows.
      if (i + 1 < text.size() && IsDomainChar(text[i + 1])) {
        ++i;
        continue;
      }
    }
    break;
  }
  if (labels < 2) return pos;
  // Last label must be alphabetic, length >= 2 (a TLD).
  size_t tld_start = i;
  while (tld_start > pos && text[tld_start - 1] != '.') --tld_start;
  if (i - tld_start < 2) return pos;
  for (size_t j = tld_start; j < i; ++j) {
    if (!std::isalpha(static_cast<unsigned char>(text[j]))) return pos;
  }
  return i;
}

}  // namespace

size_t MatchEmail(std::string_view text, size_t pos) {
  // local-part@domain.tld — the scan starts at the local part.
  size_t i = pos;
  while (i < text.size() && IsLocalPartChar(text[i])) ++i;
  if (i == pos || i >= text.size() || text[i] != '@') return pos;
  size_t domain_end = MatchDomain(text, i + 1);
  return domain_end == i + 1 ? pos : domain_end;
}

size_t MatchUrl(std::string_view text, size_t pos) {
  size_t i = pos;
  std::string_view rest = text.substr(pos);
  if (StartsWith(rest, "http://")) {
    i = pos + 7;
  } else if (StartsWith(rest, "https://")) {
    i = pos + 8;
  } else if (StartsWith(rest, "www.")) {
    i = pos;  // Domain match consumes the www label too.
  } else {
    return pos;
  }
  size_t domain_end = MatchDomain(text, i);
  if (domain_end == i) return pos;
  i = domain_end;
  // Optional path/query up to whitespace; strip trailing punctuation.
  while (i < text.size() &&
         !std::isspace(static_cast<unsigned char>(text[i])) &&
         text[i] != '<' && text[i] != '>' && text[i] != '"') {
    ++i;
  }
  while (i > domain_end &&
         std::ispunct(static_cast<unsigned char>(text[i - 1])) &&
         text[i - 1] != '/') {
    --i;
  }
  return i;
}

size_t MatchPhone(std::string_view text, size_t pos) {
  // North-American shapes: 555-123-4567, (555) 123-4567, 555.123.4567,
  // +1-555-123-4567. Require exactly 10 digits (11 with leading 1).
  size_t i = pos;
  int digits = 0;
  bool saw_separator = false;
  if (i < text.size() && text[i] == '+') ++i;
  if (i < text.size() && text[i] == '(') ++i;
  size_t start_digits = i;
  while (i < text.size()) {
    char c = text[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      ++digits;
      ++i;
    } else if ((c == '-' || c == '.' || c == ' ' || c == ')' || c == '(') &&
               digits > 0 && digits < 11) {
      // Separators must be followed by a digit (possibly after one space).
      size_t j = i + 1;
      if (c == ')' && j < text.size() && text[j] == ' ') ++j;
      if (j >= text.size() ||
          !std::isdigit(static_cast<unsigned char>(text[j]))) {
        break;
      }
      saw_separator = true;
      i = j;
    } else {
      break;
    }
  }
  if (i == start_digits) return pos;
  if (!saw_separator) return pos;  // Bare digit runs are not phones.
  if (digits == 10 || digits == 11) return i;
  return pos;
}

uint64_t PatternWindowSignature(std::string_view window) {
  uint64_t sig = 0;
  char prev = '\0';
  for (const char c : window) {
    if (c == ':') {
      sig |= kPatternClassUrlColon;
    } else if (c == '@') {
      sig |= kPatternClassAt;
    } else if (c == '+' || c == '(' ||
               std::isdigit(static_cast<unsigned char>(c))) {
      sig |= kPatternClassPhoneStart;
    } else if (c == 'w' && prev == 'w') {
      sig |= kPatternClassUrlWww;
    }
    prev = c;
  }
  return sig;
}

void DetectPatternsInto(std::string_view text, std::vector<PatternMatch>* out,
                        bool signature_prefilter) {
  size_t count = 0;  // Slots [0, count) are live; later slots keep their
                     // string capacity for reuse across documents.
  size_t i = 0;
  const size_t n = text.size();
  // Position of the next '@' at or after the cursor; an email can only
  // match when one exists ahead, which skips the local-part scan entirely
  // on '@'-free documents (the common case).
  size_t next_at = text.find('@');
  bool prev_word = false;
  size_t gate_end = 0;  // Text before this offset passed a window check.
  while (i < n) {
    if (signature_prefilter && i >= gate_end) {
      // Window prefilter: every URL needs a ':' (schemes) or "ww" digram
      // ("www.") within the scheme-length margin of its start, and every
      // phone starts on a digit/'+'/'(' — so a window whose extended
      // signature has no start class, while no '@' remains ahead (emails
      // impossible), provably contains no match start and is skipped
      // without per-byte scanning. Matches never *start* behind the
      // cursor, so skipping the window is exact.
      const size_t window_end = std::min(i + kPatternWindowBytes, n);
      const size_t scan_end = std::min(window_end + kPatternWindowMargin, n);
      if (next_at != std::string_view::npos && next_at < i) {
        next_at = text.find('@', i);
      }
      CKR_OBS_COUNTER_INC("ckr.sig.windows_tested");
      const uint64_t sig = PatternWindowSignature(text.substr(i, scan_end - i));
      if (next_at == std::string_view::npos &&
          (sig & kPatternStartMask) == 0) {
        CKR_OBS_COUNTER_INC("ckr.sig.windows_rejected");
        prev_word = IsWordChar(text[window_end - 1]);
        i = window_end;
        gate_end = window_end;
        continue;
      }
      gate_end = window_end;
    }
    const char c = text[i];
    // Only try at token starts: beginning of text or after a non-word char.
    if (prev_word) {
      prev_word = IsWordChar(c);
      ++i;
      continue;
    }
    prev_word = IsWordChar(c);
    size_t end = 0;
    PatternKind kind = PatternKind::kEmail;
    if (next_at != std::string_view::npos && next_at < i) {
      next_at = text.find('@', i);
    }
    // URL before email (URLs can contain '@' in userinfo); email before
    // phone (emails can start with digits). Each matcher is gated on the
    // characters it requires, so a plain word costs zero matcher calls.
    if ((c == 'h' || c == 'w') && (end = MatchUrl(text, i)) != i) {
      kind = PatternKind::kUrl;
    } else if (next_at != std::string_view::npos && IsLocalPartChar(c) &&
               (end = MatchEmail(text, i)) != i) {
      kind = PatternKind::kEmail;
    } else if ((c == '+' || c == '(' ||
                std::isdigit(static_cast<unsigned char>(c))) &&
               (end = MatchPhone(text, i)) != i) {
      kind = PatternKind::kPhone;
    } else {
      ++i;
      continue;
    }
    if (count == out->size()) out->emplace_back();
    PatternMatch& m = (*out)[count++];
    m.kind = kind;
    m.begin = i;
    m.end = end;
    m.text.assign(text.substr(i, end - i));
    i = end;
    prev_word = end > 0 && IsWordChar(text[end - 1]);
  }
  out->resize(count);
}

std::vector<PatternMatch> DetectPatterns(std::string_view text) {
  std::vector<PatternMatch> out;
  DetectPatternsInto(text, &out);
  return out;
}

}  // namespace ckr
