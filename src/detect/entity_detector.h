// The Contextual Shortcuts detection pipeline (paper Section II):
// pre-processing -> specialized detectors (patterns, dictionary named
// entities, query-log concepts) -> post-processing (collision resolution
// between overlapping entities, disambiguation, filtering).
#ifndef CKR_DETECT_ENTITY_DETECTOR_H_
#define CKR_DETECT_ENTITY_DETECTOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "corpus/taxonomy.h"
#include "corpus/world.h"
#include "detect/aho_corasick.h"
#include "detect/disambiguator.h"
#include "detect/pattern_detector.h"
#include "index/doc_signature.h"
#include "text/tokenizer.h"
#include "units/unit_extractor.h"

namespace ckr {

/// One annotated entity occurrence in a document.
struct Detection {
  std::string key;       ///< Normalized phrase (empty for patterns).
  std::string surface;   ///< Text as it appears in the document.
  EntityType type = EntityType::kConcept;
  int subtype = 0;
  size_t begin = 0;      ///< Byte span in the source text.
  size_t end = 0;
  bool from_dictionary = false;  ///< Editorial dictionary vs query-log unit.
  double unit_score = 0.0;       ///< Normalized unit score (concepts).
};

/// Pipeline switches.
struct DetectorOptions {
  bool detect_patterns = true;
  /// Resolve overlapping matches (longest-leftmost wins). Disabling keeps
  /// every raw match; used by the collision ablation.
  bool resolve_collisions = true;
  /// Drop single-term concept matches shorter than this many characters.
  size_t min_concept_chars = 3;
  /// Gate the Aho-Corasick scan (and the pattern scanners' windows)
  /// behind bitwise term signatures: a document whose signature covers no
  /// candidate entry completely provably contains no phrase match, so the
  /// automaton pass is skipped. Exact-safe — detections are identical
  /// with the prefilter on or off (property-tested); the off switch
  /// exists for the equivalence tests and benchmarks.
  bool signature_prefilter = true;
};

/// An id-keyed detection: the allocation-free core of the pipeline's
/// output. `entry_id` indexes the detector's candidate table (EntryKey()
/// recovers the normalized phrase); pattern hits carry kPatternEntry and
/// a `pattern_idx` into the scratch's pattern list instead.
struct RawDetection {
  uint32_t entry_id = 0;
  uint32_t pattern_idx = 0;
  EntityType type = EntityType::kConcept;
  int subtype = 0;
  size_t begin = 0;  ///< Byte span in the source text.
  size_t end = 0;
};

/// Immutable, thread-safe after construction.
class EntityDetector {
 public:
  /// RawDetection::entry_id of pattern entities.
  static constexpr uint32_t kPatternEntry = static_cast<uint32_t>(-1);

  /// An editorial-dictionary entry.
  struct DictionaryEntry {
    std::string key;  ///< Normalized phrase.
    EntityType type = EntityType::kConcept;
    int subtype = 0;
  };

  /// Reusable working state for the allocation-free detection path. One
  /// per thread; contents are overwritten by every DetectRaw call and the
  /// backing buffers are reused across documents.
  struct Scratch {
    std::vector<Token> tokens;
    std::vector<uint32_t> token_tids;
    std::vector<std::string> token_texts;  ///< Built only for sense lookup.
    std::vector<PatternMatch> patterns;
    std::vector<PhraseMatch> matches;
    std::vector<PhraseMatch> kept;
    std::vector<RawDetection> raw;
    std::vector<uint8_t> taken;
    std::vector<uint64_t> doc_sig;  ///< Signature-prefilter work buffer.
  };

  /// Builds a detector from explicit dictionary entries and (optionally)
  /// a unit dictionary of query-log concepts. Multi-term units become
  /// concept detections; single-term units are ignored (too noisy), as are
  /// units colliding with dictionary keys (dictionary identity wins —
  /// the platform's disambiguation step).
  EntityDetector(const std::vector<DictionaryEntry>& dictionary,
                 const UnitDictionary* units,
                 const DetectorOptions& options = {});

  /// Convenience: dictionary = the world's editorial entities.
  static EntityDetector FromWorld(const World& world,
                                  const UnitDictionary* units,
                                  const DetectorOptions& options = {});

  /// Attaches a sense disambiguator for ambiguous surfaces (e.g.
  /// "jaguar"); resolved matches get their type/subtype overridden by the
  /// winning sense. Pass nullptr to detach; must outlive the detector.
  void SetDisambiguator(const SenseDisambiguator* disambiguator) {
    disambiguator_ = disambiguator;
  }

  /// Runs the full pipeline over plain text. Output is sorted by begin
  /// offset; overlaps resolved per options.
  std::vector<Detection> Detect(std::string_view text) const;

  /// Allocation-free pipeline core: tokenizes into `scratch->tokens` and
  /// fills `scratch->raw` with id-keyed detections in the same order
  /// Detect() returns them. The returned reference aliases scratch->raw.
  const std::vector<RawDetection>& DetectRaw(std::string_view text,
                                             Scratch* scratch) const;

  /// Like DetectRaw but trusts the caller-provided `scratch->tokens`
  /// (must be Tokenize(text) with default options); lets the runtime
  /// ranker tokenize once for both stemming and detection.
  const std::vector<RawDetection>& DetectRawPreTokenized(
      std::string_view text, Scratch* scratch) const;

  size_t NumDictionaryEntries() const { return num_dictionary_entries_; }
  size_t NumConceptEntries() const { return num_concept_entries_; }
  /// Total candidate entries; RawDetection::entry_id < NumEntries().
  size_t NumEntries() const { return entries_.size(); }
  /// Normalized phrase of a candidate entry.
  const std::string& EntryKey(uint32_t entry_id) const {
    return entries_[entry_id].key;
  }

 private:
  struct CandidateEntry {
    std::string key;
    EntityType type;
    int subtype;
    bool from_dictionary;
    double unit_score;
  };

  std::vector<CandidateEntry> entries_;
  const SenseDisambiguator* disambiguator_ = nullptr;
  PhraseMatcher matcher_;
  DetectorOptions options_;
  size_t num_dictionary_entries_ = 0;
  size_t num_concept_entries_ = 0;

  // ---- Signature prefilter (built at construction) ----
  // Row e = the OR of entry e's term-probe bits. A document whose own
  // signature (built from its known token ids) covers no entry row cannot
  // contain any phrase match — an Aho-Corasick hit implies every term of
  // that entry appears as a token, hence every entry bit is present in
  // the document signature. The converse is false (hash collisions), but
  // survivors run the real automaton, so detections never change.
  SignatureMatrix entry_sigs_;
  /// Entry ids ordered by ascending term count (then id): short entries
  /// are covered most often, so the accept scan exits early.
  std::vector<uint32_t> gate_order_;
};

}  // namespace ckr

#endif  // CKR_DETECT_ENTITY_DETECTOR_H_
