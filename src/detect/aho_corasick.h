// Token-level Aho-Corasick multi-phrase matcher.
//
// The Contextual Shortcuts platform matches hundreds of thousands of
// dictionary entities and query-log concepts against each document in one
// pass (paper Sections II and VI). Patterns are sequences of normalized
// tokens; matching runs over a document's token stream in O(tokens +
// matches). Token-level matching gives word-boundary correctness for free.
#ifndef CKR_DETECT_AHO_CORASICK_H_
#define CKR_DETECT_AHO_CORASICK_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace ckr {

/// A phrase match over a token stream.
struct PhraseMatch {
  uint32_t token_begin = 0;  ///< Index of the first matched token.
  uint32_t token_count = 0;  ///< Number of tokens matched.
  uint32_t payload = 0;      ///< Caller-supplied id of the phrase.
};

/// Builds once, matches many times. Not thread-safe during construction;
/// FindAll is const and thread-safe after Build().
class PhraseMatcher {
 public:
  PhraseMatcher() = default;

  /// Registers a phrase (whitespace-separated normalized tokens) with a
  /// caller-defined payload. Duplicate phrases keep the first payload.
  /// Must be called before Build().
  Status AddPhrase(std::string_view phrase, uint32_t payload);

  /// Constructs goto/fail links. Idempotent.
  void Build();

  bool built() const { return built_; }
  size_t NumPhrases() const { return num_phrases_; }

  /// All (possibly overlapping) phrase occurrences in the token stream.
  std::vector<PhraseMatch> FindAll(
      const std::vector<std::string>& tokens) const;

 private:
  static constexpr uint32_t kNoTerm = static_cast<uint32_t>(-1);
  static constexpr int kRoot = 0;

  struct Node {
    std::unordered_map<uint32_t, int> next;  ///< term id -> node.
    int fail = kRoot;
    std::vector<std::pair<uint32_t, uint32_t>> outputs;  ///< (payload, len).
  };

  uint32_t InternTerm(const std::string& term);
  /// Term id for matching; kNoTerm if the term appears in no pattern.
  uint32_t LookupTerm(const std::string& term) const;

  std::vector<Node> nodes_{1};
  std::unordered_map<std::string, uint32_t> term_ids_;
  size_t num_phrases_ = 0;
  bool built_ = false;
};

}  // namespace ckr

#endif  // CKR_DETECT_AHO_CORASICK_H_
