// Token-level Aho-Corasick multi-phrase matcher.
//
// The Contextual Shortcuts platform matches hundreds of thousands of
// dictionary entities and query-log concepts against each document in one
// pass (paper Sections II and VI). Patterns are sequences of normalized
// tokens; matching runs over a document's token stream in O(tokens +
// matches). Token-level matching gives word-boundary correctness for free.
//
// Build() freezes the trie into a flat CSR-style automaton: one contiguous
// node array, transitions stored as sorted (term, target) spans probed
// with a linear/binary scan, and output lists flattened into one array.
// The per-node hash maps used during construction are discarded, so the
// matching loop touches only three contiguous arrays — the index-layout
// discipline of PISA-style engines applied to the matcher.
#ifndef CKR_DETECT_AHO_CORASICK_H_
#define CKR_DETECT_AHO_CORASICK_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/status.h"

namespace ckr {

/// A phrase match over a token stream.
struct PhraseMatch {
  uint32_t token_begin = 0;  ///< Index of the first matched token.
  uint32_t token_count = 0;  ///< Number of tokens matched.
  uint32_t payload = 0;      ///< Caller-supplied id of the phrase.
};

/// Builds once, matches many times. Not thread-safe during construction;
/// FindAll is const and thread-safe after Build().
class PhraseMatcher {
 public:
  /// Sentinel term id for tokens that appear in no registered phrase.
  static constexpr uint32_t kUnknownTerm = static_cast<uint32_t>(-1);

  PhraseMatcher() = default;

  /// Registers a phrase (whitespace-separated normalized tokens) with a
  /// caller-defined payload. Duplicate phrases keep the first payload.
  /// Must be called before Build().
  [[nodiscard]] Status AddPhrase(std::string_view phrase, uint32_t payload);

  /// Constructs goto/fail links and freezes the flat automaton.
  /// Idempotent.
  void Build();

  bool built() const { return built_; }
  size_t NumPhrases() const { return num_phrases_; }
  size_t NumTerms() const { return term_ids_.size(); }

  /// Term id of a normalized token, kUnknownTerm if it appears in no
  /// phrase. Usable any time; stable across Build().
  uint32_t TermId(std::string_view term) const;

  /// All (possibly overlapping) phrase occurrences in the token stream.
  std::vector<PhraseMatch> FindAll(
      const std::vector<std::string>& tokens) const;

  /// Allocation-free variant over pre-interned term ids (from TermId);
  /// kUnknownTerm entries reset the automaton, exactly like tokens that
  /// appear in no phrase. Clears and fills `*out`.
  void FindAllTids(const uint32_t* tids, size_t n,
                   std::vector<PhraseMatch>* out) const;

 private:
  static constexpr int kRoot = 0;

  /// Construction-only trie node; discarded by Build().
  struct BuildNode {
    std::unordered_map<uint32_t, int> next;  ///< term id -> node.
    int fail = kRoot;
    std::vector<std::pair<uint32_t, uint32_t>> outputs;  ///< (payload, len).
  };

  /// Frozen node: half-open spans into trans_terms_/trans_targets_ and
  /// outputs_.
  struct FlatNode {
    uint32_t trans_begin = 0;
    uint32_t trans_end = 0;
    uint32_t out_begin = 0;
    uint32_t out_end = 0;
    int32_t fail = kRoot;
  };

  uint32_t InternTerm(const std::string& term);
  /// Flat-automaton transition: target of `node` on `tid`, or -1.
  int32_t FlatStep(int32_t node, uint32_t tid) const;

  std::vector<BuildNode> nodes_{1};  ///< Cleared once frozen.
  std::unordered_map<std::string, uint32_t, StringViewHash, std::equal_to<>>
      term_ids_;
  size_t num_phrases_ = 0;
  bool built_ = false;

  // Frozen CSR automaton (valid iff built_).
  std::vector<FlatNode> flat_;
  std::vector<uint32_t> trans_terms_;    ///< Sorted within each node span.
  std::vector<int32_t> trans_targets_;   ///< Parallel to trans_terms_.
  std::vector<std::pair<uint32_t, uint32_t>> outputs_;  ///< (payload, len).
};

}  // namespace ckr

#endif  // CKR_DETECT_AHO_CORASICK_H_
