// Pattern-based entity detection (paper Section II-A, entity type 1):
// emails, URLs, and phone numbers via hand-rolled scanners. "Pattern based
// entities are not subject to any relevance calculations [and] are always
// annotated and shown to the user."
#ifndef CKR_DETECT_PATTERN_DETECTOR_H_
#define CKR_DETECT_PATTERN_DETECTOR_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace ckr {

/// Kinds of pattern entities.
enum class PatternKind { kEmail, kUrl, kPhone };

/// A pattern hit with its byte span.
struct PatternMatch {
  PatternKind kind;
  size_t begin = 0;
  size_t end = 0;
  std::string text;  ///< The matched surface.
};

/// Scans text for all pattern entities, left to right, non-overlapping.
std::vector<PatternMatch> DetectPatterns(std::string_view text);

/// Buffer-reuse variant for hot paths: overwrites `*out` in place, reusing
/// vector capacity and slot string buffers.
void DetectPatternsInto(std::string_view text, std::vector<PatternMatch>* out);

/// Individual scanners (exposed for focused testing). Each tries to match
/// at `pos` and returns the end offset, or `pos` if no match.
size_t MatchEmail(std::string_view text, size_t pos);
size_t MatchUrl(std::string_view text, size_t pos);
size_t MatchPhone(std::string_view text, size_t pos);

}  // namespace ckr

#endif  // CKR_DETECT_PATTERN_DETECTOR_H_
