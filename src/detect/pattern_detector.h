// Pattern-based entity detection (paper Section II-A, entity type 1):
// emails, URLs, and phone numbers via hand-rolled scanners. "Pattern based
// entities are not subject to any relevance calculations [and] are always
// annotated and shown to the user."
#ifndef CKR_DETECT_PATTERN_DETECTOR_H_
#define CKR_DETECT_PATTERN_DETECTOR_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace ckr {

/// Kinds of pattern entities.
enum class PatternKind { kEmail, kUrl, kPhone };

/// A pattern hit with its byte span.
struct PatternMatch {
  PatternKind kind;
  size_t begin = 0;
  size_t end = 0;
  std::string text;  ///< The matched surface.
};

/// Scans text for all pattern entities, left to right, non-overlapping.
std::vector<PatternMatch> DetectPatterns(std::string_view text);

/// Byte-class bits of the window prefilter signature (see
/// PatternWindowSignature). Each class marks a byte (or digram) some
/// scanner *requires*, so a window whose signature lacks every start
/// class cannot contain a match start and is skipped wholesale — an
/// exact-safe AND-mask test like the doc_signature one (rejections are
/// true negatives only; property-tested against the ungated scan).
inline constexpr uint64_t kPatternClassUrlColon = uint64_t{1} << 0;  ///< ':'
inline constexpr uint64_t kPatternClassUrlWww = uint64_t{1} << 1;  ///< "ww"
inline constexpr uint64_t kPatternClassPhoneStart =
    uint64_t{1} << 2;  ///< digit, '+', '('
inline constexpr uint64_t kPatternClassAt = uint64_t{1} << 3;  ///< '@'

/// Classes that can begin a URL or phone match. Emails are gated
/// separately: the scanner tracks the next '@' position globally, which
/// subsumes a per-window '@' class.
inline constexpr uint64_t kPatternStartMask =
    kPatternClassUrlColon | kPatternClassUrlWww | kPatternClassPhoneStart;

/// Prefilter window width, and the lookahead margin appended to the
/// signature scan so a match *starting* in the window is visible even
/// when its witness bytes (the ':' of "https://", the second 'w' of
/// "www.") fall just past the window edge. 8 covers the longest scheme
/// prefix ("https://").
inline constexpr size_t kPatternWindowBytes = 64;
inline constexpr size_t kPatternWindowMargin = 8;

/// Bitwise OR of the byte-class bits over `window` (digram classes fire
/// on adjacent byte pairs). Deterministic; exposed for unit tests.
uint64_t PatternWindowSignature(std::string_view window);

/// Buffer-reuse variant for hot paths: overwrites `*out` in place, reusing
/// vector capacity and slot string buffers. `signature_prefilter` arms the
/// per-window class-signature gate; results are identical either way (the
/// off switch exists for the equivalence tests and benchmarks).
void DetectPatternsInto(std::string_view text, std::vector<PatternMatch>* out,
                        bool signature_prefilter = true);

/// Individual scanners (exposed for focused testing). Each tries to match
/// at `pos` and returns the end offset, or `pos` if no match.
size_t MatchEmail(std::string_view text, size_t pos);
size_t MatchUrl(std::string_view text, size_t pos);
size_t MatchPhone(std::string_view text, size_t pos);

}  // namespace ckr

#endif  // CKR_DETECT_PATTERN_DETECTOR_H_
