// Sense disambiguation (paper Section II-A: "It is possible that a named
// entity can be a member of multiple types, such as the term jaguar, in
// which case the entity is disambiguated"; Section IV-C discusses the
// same issue for ambiguous concepts whose relevant keywords form
// distinct local clusters).
//
// Each sense of an ambiguous surface carries a profile of context words
// (its keyword cluster). At detection time, the sense whose profile
// overlaps the token window around the mention most wins; ties keep the
// declared primary sense. This is the lightweight production counterpart
// of the LSA-style clustering the paper points to.
#ifndef CKR_DETECT_DISAMBIGUATOR_H_
#define CKR_DETECT_DISAMBIGUATOR_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "corpus/taxonomy.h"

namespace ckr {

/// One sense of an ambiguous surface form.
struct Sense {
  EntityType type = EntityType::kConcept;
  int subtype = 0;
  /// Context words that indicate this sense (normalized tokens).
  std::vector<std::string> profile;
};

/// Registry of ambiguous keys and their senses.
class SenseDisambiguator {
 public:
  /// Registers a sense for a normalized key. The first registered sense of
  /// a key is its primary (fallback) sense.
  void AddSense(std::string_view key, Sense sense);

  bool HasSenses(std::string_view key) const;
  size_t NumAmbiguousKeys() const { return senses_.size(); }

  /// Picks the sense with the highest profile hit count within
  /// `window_tokens` tokens on each side of [match_begin, match_end) in
  /// the token stream. Returns nullptr for unregistered keys.
  const Sense* Resolve(std::string_view key,
                       const std::vector<std::string>& tokens,
                       size_t match_begin, size_t match_end,
                       size_t window_tokens = 20) const;

 private:
  struct KeySenses {
    std::vector<Sense> senses;
    /// Per-sense profile word sets (parallel to senses).
    std::vector<std::unordered_set<std::string>> profiles;
  };
  std::unordered_map<std::string, KeySenses> senses_;
};

}  // namespace ckr

#endif  // CKR_DETECT_DISAMBIGUATOR_H_
