#include "detect/aho_corasick.h"

#include <deque>

#include "common/string_util.h"

namespace ckr {

uint32_t PhraseMatcher::InternTerm(const std::string& term) {
  auto [it, inserted] =
      term_ids_.emplace(term, static_cast<uint32_t>(term_ids_.size()));
  return it->second;
}

uint32_t PhraseMatcher::LookupTerm(const std::string& term) const {
  auto it = term_ids_.find(term);
  return it == term_ids_.end() ? kNoTerm : it->second;
}

Status PhraseMatcher::AddPhrase(std::string_view phrase, uint32_t payload) {
  if (built_) {
    return Status::FailedPrecondition("AddPhrase after Build()");
  }
  std::vector<std::string> terms = SplitString(phrase, " \t");
  if (terms.empty()) {
    return Status::InvalidArgument("empty phrase");
  }
  int node = kRoot;
  for (const std::string& term : terms) {
    uint32_t tid = InternTerm(term);
    auto it = nodes_[node].next.find(tid);
    if (it == nodes_[node].next.end()) {
      nodes_.push_back(Node{});
      it = nodes_[node].next.emplace(tid, static_cast<int>(nodes_.size() - 1))
               .first;
    }
    node = it->second;
  }
  // First payload wins for duplicates.
  for (const auto& [payload0, len0] : nodes_[node].outputs) {
    if (len0 == terms.size()) return Status::OK();
  }
  nodes_[node].outputs.emplace_back(payload,
                                    static_cast<uint32_t>(terms.size()));
  ++num_phrases_;
  return Status::OK();
}

void PhraseMatcher::Build() {
  if (built_) return;
  // BFS to set fail links and merge output lists along fail chains.
  std::deque<int> queue;
  for (auto& [tid, child] : nodes_[kRoot].next) {
    nodes_[child].fail = kRoot;
    queue.push_back(child);
  }
  while (!queue.empty()) {
    int node = queue.front();
    queue.pop_front();
    for (auto& [tid, child] : nodes_[node].next) {
      // Follow fail links to find the longest proper suffix state with a
      // `tid` transition.
      int f = nodes_[node].fail;
      while (f != kRoot && nodes_[f].next.count(tid) == 0) {
        f = nodes_[f].fail;
      }
      auto it = nodes_[f].next.find(tid);
      int fail_to = (it != nodes_[f].next.end() && it->second != child)
                        ? it->second
                        : kRoot;
      nodes_[child].fail = fail_to;
      // Inherit the fail target's outputs so every match is reported at
      // its end position.
      for (const auto& out : nodes_[fail_to].outputs) {
        nodes_[child].outputs.push_back(out);
      }
      queue.push_back(child);
    }
  }
  built_ = true;
}

std::vector<PhraseMatch> PhraseMatcher::FindAll(
    const std::vector<std::string>& tokens) const {
  std::vector<PhraseMatch> matches;
  if (!built_) return matches;
  int node = kRoot;
  for (uint32_t i = 0; i < tokens.size(); ++i) {
    uint32_t tid = LookupTerm(tokens[i]);
    if (tid == kNoTerm) {
      node = kRoot;
      continue;
    }
    while (node != kRoot && nodes_[node].next.count(tid) == 0) {
      node = nodes_[node].fail;
    }
    auto it = nodes_[node].next.find(tid);
    node = (it == nodes_[node].next.end()) ? kRoot : it->second;
    for (const auto& [payload, len] : nodes_[node].outputs) {
      PhraseMatch m;
      m.token_begin = i + 1 - len;
      m.token_count = len;
      m.payload = payload;
      matches.push_back(m);
    }
  }
  return matches;
}

}  // namespace ckr
