#include "detect/aho_corasick.h"

#include <algorithm>
#include <deque>

#include "common/check.h"
#include "common/string_util.h"

namespace ckr {

uint32_t PhraseMatcher::InternTerm(const std::string& term) {
  auto [it, inserted] =
      term_ids_.emplace(term, static_cast<uint32_t>(term_ids_.size()));
  return it->second;
}

uint32_t PhraseMatcher::TermId(std::string_view term) const {
  auto it = term_ids_.find(term);
  return it == term_ids_.end() ? kUnknownTerm : it->second;
}

Status PhraseMatcher::AddPhrase(std::string_view phrase, uint32_t payload) {
  if (built_) {
    return Status::FailedPrecondition("AddPhrase after Build()");
  }
  std::vector<std::string> terms = SplitString(phrase, " \t");
  if (terms.empty()) {
    return Status::InvalidArgument("empty phrase");
  }
  int node = kRoot;
  for (const std::string& term : terms) {
    uint32_t tid = InternTerm(term);
    auto it = nodes_[node].next.find(tid);
    if (it == nodes_[node].next.end()) {
      nodes_.push_back(BuildNode{});
      it = nodes_[node].next.emplace(tid, static_cast<int>(nodes_.size() - 1))
               .first;
    }
    node = it->second;
  }
  // First payload wins for duplicates.
  for (const auto& [payload0, len0] : nodes_[node].outputs) {
    if (len0 == terms.size()) return Status::OK();
  }
  nodes_[node].outputs.emplace_back(payload,
                                    static_cast<uint32_t>(terms.size()));
  ++num_phrases_;
  return Status::OK();
}

void PhraseMatcher::Build() {
  if (built_) return;
  // BFS to set fail links and merge output lists along fail chains.
  std::deque<int> queue;
  for (auto& [tid, child] : nodes_[kRoot].next) {
    nodes_[child].fail = kRoot;
    queue.push_back(child);
  }
  while (!queue.empty()) {
    int node = queue.front();
    queue.pop_front();
    for (auto& [tid, child] : nodes_[node].next) {
      // Follow fail links to find the longest proper suffix state with a
      // `tid` transition.
      int f = nodes_[node].fail;
      while (f != kRoot && nodes_[f].next.count(tid) == 0) {
        f = nodes_[f].fail;
      }
      auto it = nodes_[f].next.find(tid);
      int fail_to = (it != nodes_[f].next.end() && it->second != child)
                        ? it->second
                        : kRoot;
      nodes_[child].fail = fail_to;
      // Inherit the fail target's outputs so every match is reported at
      // its end position.
      for (const auto& out : nodes_[fail_to].outputs) {
        nodes_[child].outputs.push_back(out);
      }
      queue.push_back(child);
    }
  }

  // Freeze into the CSR layout: per-node transition spans sorted by term
  // id, output lists flattened, construction maps discarded.
  flat_.resize(nodes_.size());
  size_t total_trans = 0;
  size_t total_outs = 0;
  for (const BuildNode& n : nodes_) {
    total_trans += n.next.size();
    total_outs += n.outputs.size();
  }
  trans_terms_.reserve(total_trans);
  trans_targets_.reserve(total_trans);
  outputs_.reserve(total_outs);
  std::vector<std::pair<uint32_t, int>> sorted;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const BuildNode& n = nodes_[i];
    FlatNode& f = flat_[i];
    f.fail = static_cast<int32_t>(n.fail);
    f.trans_begin = static_cast<uint32_t>(trans_terms_.size());
    sorted.assign(n.next.begin(), n.next.end());
    std::sort(sorted.begin(), sorted.end());
    for (const auto& [tid, target] : sorted) {
      trans_terms_.push_back(tid);
      trans_targets_.push_back(static_cast<int32_t>(target));
    }
    f.trans_end = static_cast<uint32_t>(trans_terms_.size());
    f.out_begin = static_cast<uint32_t>(outputs_.size());
    outputs_.insert(outputs_.end(), n.outputs.begin(), n.outputs.end());
    f.out_end = static_cast<uint32_t>(outputs_.size());
  }
  nodes_.clear();
  nodes_.shrink_to_fit();
#if CKR_DEBUG_CHECKS
  // Frozen-automaton invariants: node spans are monotone half-open ranges
  // inside the flat arrays, and every fail link / transition target is a
  // valid node index.
  for (const FlatNode& f : flat_) {
    CKR_DCHECK_LE(f.trans_begin, f.trans_end);
    CKR_DCHECK_LE(static_cast<size_t>(f.trans_end), trans_terms_.size());
    CKR_DCHECK_LE(f.out_begin, f.out_end);
    CKR_DCHECK_LE(static_cast<size_t>(f.out_end), outputs_.size());
    CKR_DCHECK_GE(f.fail, 0);
    CKR_DCHECK_LT(static_cast<size_t>(f.fail), flat_.size());
  }
  for (int32_t target : trans_targets_) {
    CKR_DCHECK_GT(target, 0);
    CKR_DCHECK_LT(static_cast<size_t>(target), flat_.size());
  }
#endif
  built_ = true;
}

int32_t PhraseMatcher::FlatStep(int32_t node, uint32_t tid) const {
  CKR_DCHECK_LT(static_cast<size_t>(node), flat_.size());
  const FlatNode& f = flat_[static_cast<size_t>(node)];
  const size_t lo = f.trans_begin;
  const Span<const uint32_t> terms(trans_terms_.data() + lo,
                                   f.trans_end - f.trans_begin);
  const Span<const int32_t> targets(trans_targets_.data() + lo, terms.size());
  // Short spans (the overwhelming majority outside the root) probe
  // linearly; the root's wide fan-out binary-searches.
  if (terms.size() <= 8) {
    for (size_t i = 0; i < terms.size(); ++i) {
      if (terms[i] == tid) return targets[i];
    }
    return -1;
  }
  const uint32_t* it = std::lower_bound(terms.begin(), terms.end(), tid);
  if (it == terms.end() || *it != tid) return -1;
  return targets[static_cast<size_t>(it - terms.begin())];
}

void PhraseMatcher::FindAllTids(const uint32_t* tids, size_t n,
                                std::vector<PhraseMatch>* out) const {
  out->clear();
  if (!built_) return;
  int32_t node = kRoot;
  for (size_t i = 0; i < n; ++i) {
    uint32_t tid = tids[i];
    if (tid == kUnknownTerm) {
      node = kRoot;
      continue;
    }
    int32_t next;
    while ((next = FlatStep(node, tid)) < 0 && node != kRoot) {
      node = flat_[static_cast<size_t>(node)].fail;
    }
    node = next < 0 ? kRoot : next;
    const FlatNode& f = flat_[static_cast<size_t>(node)];
    const Span<const std::pair<uint32_t, uint32_t>> outs(
        outputs_.data() + f.out_begin, f.out_end - f.out_begin);
    for (const auto& [payload, len] : outs) {
      CKR_DCHECK_GE(static_cast<uint32_t>(i) + 1, len);
      PhraseMatch m;
      m.token_begin = static_cast<uint32_t>(i) + 1 - len;
      m.token_count = len;
      m.payload = payload;
      out->push_back(m);
    }
  }
}

std::vector<PhraseMatch> PhraseMatcher::FindAll(
    const std::vector<std::string>& tokens) const {
  std::vector<PhraseMatch> matches;
  if (!built_) return matches;
  std::vector<uint32_t> tids;
  tids.reserve(tokens.size());
  for (const std::string& tok : tokens) tids.push_back(TermId(tok));
  FindAllTids(tids.data(), tids.size(), &matches);
  return matches;
}

}  // namespace ckr
