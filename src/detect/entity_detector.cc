#include "detect/entity_detector.h"

#include <algorithm>

#include "common/check.h"
#include "obs/hooks.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace ckr {

EntityDetector::EntityDetector(const std::vector<DictionaryEntry>& dictionary,
                               const UnitDictionary* units,
                               const DetectorOptions& options)
    : options_(options) {
  std::unordered_map<std::string, size_t> by_key;
  for (const DictionaryEntry& d : dictionary) {
    if (d.key.empty()) continue;
    if (by_key.count(d.key) > 0) continue;  // First definition wins.
    CandidateEntry e;
    e.key = d.key;
    e.type = d.type;
    e.subtype = d.subtype;
    e.from_dictionary = true;
    e.unit_score = 0.0;
    by_key[e.key] = entries_.size();
    entries_.push_back(std::move(e));
    ++num_dictionary_entries_;
  }
  if (units != nullptr) {
    for (const UnitInfo* u : units->MultiTermUnits()) {
      auto it = by_key.find(u->phrase);
      if (it != by_key.end()) {
        // Disambiguation: the editorial identity wins, but the unit score
        // is still attached so ranking features can use it.
        entries_[it->second].unit_score = u->score;
        continue;
      }
      CandidateEntry e;
      e.key = u->phrase;
      e.type = EntityType::kConcept;
      e.subtype = 0;
      e.from_dictionary = false;
      e.unit_score = u->score;
      by_key[e.key] = entries_.size();
      entries_.push_back(std::move(e));
      ++num_concept_entries_;
    }
  }
  for (uint32_t i = 0; i < entries_.size(); ++i) {
    Status s = matcher_.AddPhrase(entries_[i].key, i);
    CKR_DCHECK(s.ok());
    (void)s;
  }
  matcher_.Build();

  // Signature prefilter rows: one per candidate entry, over the term ids
  // the automaton itself interned (so the document-side TermId stream and
  // the entry rows live in the same id space).
  entry_sigs_.Reset(entries_.size());
  std::vector<std::pair<uint32_t, uint32_t>> order;  // (term count, entry)
  order.reserve(entries_.size());
  for (uint32_t i = 0; i < entries_.size(); ++i) {
    uint32_t terms = 0;
    for (const Token& t : Tokenize(entries_[i].key)) {
      const uint32_t tid = matcher_.TermId(t.text);
      if (tid == PhraseMatcher::kUnknownTerm) continue;
      entry_sigs_.AddTerm(i, tid);
      ++terms;
    }
    order.emplace_back(terms, i);
  }
  std::sort(order.begin(), order.end());
  gate_order_.reserve(order.size());
  for (const auto& [terms, i] : order) {
    (void)terms;
    gate_order_.push_back(i);
  }
}

EntityDetector EntityDetector::FromWorld(const World& world,
                                         const UnitDictionary* units,
                                         const DetectorOptions& options) {
  std::vector<DictionaryEntry> dict;
  dict.reserve(world.NumEntities());
  for (const Entity& e : world.entities()) {
    if (!e.in_dictionary) continue;
    dict.push_back({e.key, e.type, e.subtype});
  }
  return EntityDetector(dict, units, options);
}

const std::vector<RawDetection>& EntityDetector::DetectRaw(
    std::string_view text, Scratch* scratch) const {
  TokenizeInto(text, &scratch->tokens);
  return DetectRawPreTokenized(text, scratch);
}

const std::vector<RawDetection>& EntityDetector::DetectRawPreTokenized(
    std::string_view text, Scratch* scratch) const {
  const std::vector<Token>& tokens = scratch->tokens;
  scratch->raw.clear();

  // Stage 1: pattern detectors (regex-equivalent scanners). Patterns are
  // never subject to collision pruning by phrase matches; instead phrase
  // matches overlapping a pattern are dropped below.
  scratch->patterns.clear();
  if (options_.detect_patterns) {
    DetectPatternsInto(text, &scratch->patterns,
                       options_.signature_prefilter);
    for (uint32_t pi = 0; pi < scratch->patterns.size(); ++pi) {
      const PatternMatch& p = scratch->patterns[pi];
      RawDetection d;
      d.entry_id = kPatternEntry;
      d.pattern_idx = pi;
      d.type = EntityType::kPattern;
      d.subtype = static_cast<int>(p.kind);
      d.begin = p.begin;
      d.end = p.end;
      scratch->raw.push_back(d);
    }
  }

  // Stage 2: one Aho-Corasick pass over pre-interned term ids for
  // dictionary entities and concepts — unless the signature gate proves
  // no candidate entry can match. The document signature is folded from
  // the same TermId stream the automaton would consume; any automaton hit
  // implies all of one entry's terms (hence all of its signature bits)
  // are present, so a document covering no entry row is a true negative.
  scratch->token_tids.clear();
  scratch->token_tids.reserve(tokens.size());
  const bool gate = options_.signature_prefilter && !entries_.empty();
  bool any_known = false;
  if (gate) scratch->doc_sig.assign(entry_sigs_.words_per_row(), 0);
  for (const Token& t : tokens) {
    const uint32_t tid = matcher_.TermId(t.text);
    scratch->token_tids.push_back(tid);
    if (gate && tid != PhraseMatcher::kUnknownTerm) {
      entry_sigs_.AddTermToSignature(tid, MakeSpan(scratch->doc_sig));
      any_known = true;
    }
  }
  bool may_match = true;
  if (gate) {
    CKR_OBS_COUNTER_INC("ckr.sig.docs_tested");
    may_match = false;
    if (any_known) {
      // The document signature must contain *all* of some entry's bits
      // (doc ⊇ entry) for that entry to possibly match.
      for (const uint32_t e : gate_order_) {
        if (SignatureMatrix::Covers(MakeSpan(scratch->doc_sig),
                                    entry_sigs_.Row(e))) {
          may_match = true;
          break;
        }
      }
    }
    if (!may_match) CKR_OBS_COUNTER_INC("ckr.sig.docs_rejected");
  }
  scratch->matches.clear();
  if (may_match) {
    matcher_.FindAllTids(scratch->token_tids.data(),
                         scratch->token_tids.size(), &scratch->matches);
  }

  // Stage 3: filtering.
  std::vector<PhraseMatch>& kept = scratch->kept;
  kept.clear();
  for (const PhraseMatch& m : scratch->matches) {
    const CandidateEntry& e = entries_[m.payload];
    if (!e.from_dictionary) {
      if (m.token_count == 1 &&
          (e.key.size() < options_.min_concept_chars || IsStopWord(e.key))) {
        continue;
      }
    }
    size_t byte_begin = tokens[m.token_begin].begin;
    size_t byte_end = tokens[m.token_begin + m.token_count - 1].end;
    // Drop phrase matches that overlap a pattern entity.
    bool overlaps_pattern = false;
    for (const PatternMatch& p : scratch->patterns) {
      if (byte_begin < p.end && p.begin < byte_end) {
        overlaps_pattern = true;
        break;
      }
    }
    if (!overlaps_pattern) kept.push_back(m);
  }

  // Stage 4: collision resolution between overlapping phrase matches:
  // longest match wins; ties broken leftmost, then dictionary-first.
  std::sort(kept.begin(), kept.end(),
            [this](const PhraseMatch& a, const PhraseMatch& b) {
              if (a.token_count != b.token_count) {
                return a.token_count > b.token_count;
              }
              if (a.token_begin != b.token_begin) {
                return a.token_begin < b.token_begin;
              }
              return entries_[a.payload].from_dictionary &&
                     !entries_[b.payload].from_dictionary;
            });
  size_t num_kept = kept.size();
  if (options_.resolve_collisions) {
    scratch->taken.assign(tokens.size(), 0);
    size_t out = 0;
    for (size_t ki = 0; ki < kept.size(); ++ki) {
      const PhraseMatch& m = kept[ki];
      bool clash = false;
      for (uint32_t t = m.token_begin; t < m.token_begin + m.token_count;
           ++t) {
        if (scratch->taken[t] != 0) {
          clash = true;
          break;
        }
      }
      if (clash) continue;
      for (uint32_t t = m.token_begin; t < m.token_begin + m.token_count;
           ++t) {
        scratch->taken[t] = 1;
      }
      kept[out++] = m;
    }
    num_kept = out;
  }

  bool token_texts_ready = false;
  for (size_t ki = 0; ki < num_kept; ++ki) {
    const PhraseMatch& m = kept[ki];
    const CandidateEntry& e = entries_[m.payload];
    RawDetection d;
    d.entry_id = m.payload;
    d.type = e.type;
    d.subtype = e.subtype;
    if (disambiguator_ != nullptr && disambiguator_->HasSenses(e.key)) {
      if (!token_texts_ready) {
        // Materialized lazily: only documents containing an ambiguous
        // surface pay for the per-token strings the sense profiles need.
        size_t count = 0;
        for (const Token& t : tokens) {
          if (count == scratch->token_texts.size()) {
            scratch->token_texts.emplace_back();
          }
          scratch->token_texts[count++].assign(t.text);
        }
        scratch->token_texts.resize(count);
        token_texts_ready = true;
      }
      const Sense* sense = disambiguator_->Resolve(
          e.key, scratch->token_texts, m.token_begin,
          m.token_begin + m.token_count);
      if (sense != nullptr) {
        d.type = sense->type;
        d.subtype = sense->subtype;
      }
    }
    d.begin = tokens[m.token_begin].begin;
    d.end = tokens[m.token_begin + m.token_count - 1].end;
    scratch->raw.push_back(d);
  }

  std::sort(scratch->raw.begin(), scratch->raw.end(),
            [](const RawDetection& a, const RawDetection& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.end > b.end;
            });
  CKR_OBS_COUNTER_INC("ckr.detect.documents");
  CKR_OBS_COUNTER_ADD("ckr.detect.tokens", tokens.size());
  CKR_OBS_COUNTER_ADD("ckr.detect.pattern_matches", scratch->patterns.size());
  CKR_OBS_COUNTER_ADD("ckr.detect.phrase_matches", scratch->matches.size());
  CKR_OBS_COUNTER_ADD("ckr.detect.raw_detections", scratch->raw.size());
  return scratch->raw;
}

std::vector<Detection> EntityDetector::Detect(std::string_view text) const {
  Scratch scratch;
  const std::vector<RawDetection>& raw = DetectRaw(text, &scratch);
  std::vector<Detection> detections;
  detections.reserve(raw.size());
  for (const RawDetection& r : raw) {
    Detection d;
    d.type = r.type;
    d.subtype = r.subtype;
    d.begin = r.begin;
    d.end = r.end;
    if (r.entry_id == kPatternEntry) {
      d.surface = scratch.patterns[r.pattern_idx].text;
    } else {
      const CandidateEntry& e = entries_[r.entry_id];
      d.key = e.key;
      d.from_dictionary = e.from_dictionary;
      d.unit_score = e.unit_score;
      d.surface = std::string(text.substr(d.begin, d.end - d.begin));
    }
    detections.push_back(std::move(d));
  }
  return detections;
}

}  // namespace ckr
