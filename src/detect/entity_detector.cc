#include "detect/entity_detector.h"

#include <algorithm>
#include <cassert>

#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace ckr {

EntityDetector::EntityDetector(const std::vector<DictionaryEntry>& dictionary,
                               const UnitDictionary* units,
                               const DetectorOptions& options)
    : options_(options) {
  std::unordered_map<std::string, size_t> by_key;
  for (const DictionaryEntry& d : dictionary) {
    if (d.key.empty()) continue;
    if (by_key.count(d.key) > 0) continue;  // First definition wins.
    CandidateEntry e;
    e.key = d.key;
    e.type = d.type;
    e.subtype = d.subtype;
    e.from_dictionary = true;
    e.unit_score = 0.0;
    by_key[e.key] = entries_.size();
    entries_.push_back(std::move(e));
    ++num_dictionary_entries_;
  }
  if (units != nullptr) {
    for (const UnitInfo* u : units->MultiTermUnits()) {
      auto it = by_key.find(u->phrase);
      if (it != by_key.end()) {
        // Disambiguation: the editorial identity wins, but the unit score
        // is still attached so ranking features can use it.
        entries_[it->second].unit_score = u->score;
        continue;
      }
      CandidateEntry e;
      e.key = u->phrase;
      e.type = EntityType::kConcept;
      e.subtype = 0;
      e.from_dictionary = false;
      e.unit_score = u->score;
      by_key[e.key] = entries_.size();
      entries_.push_back(std::move(e));
      ++num_concept_entries_;
    }
  }
  for (uint32_t i = 0; i < entries_.size(); ++i) {
    Status s = matcher_.AddPhrase(entries_[i].key, i);
    assert(s.ok());
    (void)s;
  }
  matcher_.Build();
}

EntityDetector EntityDetector::FromWorld(const World& world,
                                         const UnitDictionary* units,
                                         const DetectorOptions& options) {
  std::vector<DictionaryEntry> dict;
  dict.reserve(world.NumEntities());
  for (const Entity& e : world.entities()) {
    if (!e.in_dictionary) continue;
    dict.push_back({e.key, e.type, e.subtype});
  }
  return EntityDetector(dict, units, options);
}

std::vector<Detection> EntityDetector::Detect(std::string_view text) const {
  std::vector<Detection> detections;

  // Stage 1: pattern detectors (regex-equivalent scanners). Patterns are
  // never subject to collision pruning by phrase matches; instead phrase
  // matches overlapping a pattern are dropped below.
  std::vector<PatternMatch> patterns;
  if (options_.detect_patterns) {
    patterns = DetectPatterns(text);
    for (const PatternMatch& p : patterns) {
      Detection d;
      d.surface = p.text;
      d.type = EntityType::kPattern;
      d.subtype = static_cast<int>(p.kind);
      d.begin = p.begin;
      d.end = p.end;
      detections.push_back(std::move(d));
    }
  }

  // Stage 2: tokenization + one Aho-Corasick pass for dictionary entities
  // and concepts.
  std::vector<Token> tokens = Tokenize(text);
  std::vector<std::string> token_texts;
  token_texts.reserve(tokens.size());
  for (const Token& t : tokens) token_texts.push_back(t.text);
  std::vector<PhraseMatch> matches = matcher_.FindAll(token_texts);

  // Stage 3: filtering.
  std::vector<PhraseMatch> kept;
  kept.reserve(matches.size());
  for (const PhraseMatch& m : matches) {
    const CandidateEntry& e = entries_[m.payload];
    if (!e.from_dictionary) {
      if (m.token_count == 1 &&
          (e.key.size() < options_.min_concept_chars || IsStopWord(e.key))) {
        continue;
      }
    }
    size_t byte_begin = tokens[m.token_begin].begin;
    size_t byte_end = tokens[m.token_begin + m.token_count - 1].end;
    // Drop phrase matches that overlap a pattern entity.
    bool overlaps_pattern = false;
    for (const PatternMatch& p : patterns) {
      if (byte_begin < p.end && p.begin < byte_end) {
        overlaps_pattern = true;
        break;
      }
    }
    if (!overlaps_pattern) kept.push_back(m);
  }

  // Stage 4: collision resolution between overlapping phrase matches:
  // longest match wins; ties broken leftmost, then dictionary-first.
  std::sort(kept.begin(), kept.end(),
            [this](const PhraseMatch& a, const PhraseMatch& b) {
              if (a.token_count != b.token_count) {
                return a.token_count > b.token_count;
              }
              if (a.token_begin != b.token_begin) {
                return a.token_begin < b.token_begin;
              }
              return entries_[a.payload].from_dictionary &&
                     !entries_[b.payload].from_dictionary;
            });
  std::vector<PhraseMatch> resolved;
  if (options_.resolve_collisions) {
    std::vector<bool> taken(token_texts.size(), false);
    for (const PhraseMatch& m : kept) {
      bool clash = false;
      for (uint32_t t = m.token_begin; t < m.token_begin + m.token_count;
           ++t) {
        if (taken[t]) {
          clash = true;
          break;
        }
      }
      if (clash) continue;
      for (uint32_t t = m.token_begin; t < m.token_begin + m.token_count;
           ++t) {
        taken[t] = true;
      }
      resolved.push_back(m);
    }
  } else {
    resolved = std::move(kept);
  }

  for (const PhraseMatch& m : resolved) {
    const CandidateEntry& e = entries_[m.payload];
    Detection d;
    d.key = e.key;
    d.type = e.type;
    d.subtype = e.subtype;
    if (disambiguator_ != nullptr && disambiguator_->HasSenses(e.key)) {
      const Sense* sense = disambiguator_->Resolve(
          e.key, token_texts, m.token_begin, m.token_begin + m.token_count);
      if (sense != nullptr) {
        d.type = sense->type;
        d.subtype = sense->subtype;
      }
    }
    d.from_dictionary = e.from_dictionary;
    d.unit_score = e.unit_score;
    d.begin = tokens[m.token_begin].begin;
    d.end = tokens[m.token_begin + m.token_count - 1].end;
    d.surface = std::string(text.substr(d.begin, d.end - d.begin));
    detections.push_back(std::move(d));
  }

  std::sort(detections.begin(), detections.end(),
            [](const Detection& a, const Detection& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.end > b.end;
            });
  return detections;
}

}  // namespace ckr
