#include "serve/server.h"

#include <utility>

#include "common/check.h"

namespace ckr {

ServeDaemon::ServeDaemon(const ServeDaemonConfig& config)
    : config_(config),
      clock_(config.clock != nullptr ? config.clock : &RealClock()),
      queue_(config.queue_capacity) {
  CKR_CHECK_GE(config_.num_workers, 1u);
  obs::MetricRegistry& reg = config_.metrics != nullptr
                                 ? *config_.metrics
                                 : obs::MetricRegistry::Global();
  admitted_ = reg.GetCounter("ckr.serve.admitted");
  completed_ = reg.GetCounter("ckr.serve.completed");
  partial_ = reg.GetCounter("ckr.serve.partial");
  shed_queue_full_ = reg.GetCounter("ckr.serve.shed_queue_full");
  shed_deadline_ = reg.GetCounter("ckr.serve.shed_deadline");
  no_snapshot_ = reg.GetCounter("ckr.serve.no_snapshot");
  swaps_ = reg.GetCounter("ckr.serve.snapshot_swaps");
  queue_depth_ = reg.GetGauge("ckr.serve.queue_depth");
  queue_seconds_ = reg.GetHistogram("ckr.serve.queue_seconds");
  latency_seconds_ = reg.GetHistogram("ckr.serve.latency_seconds");
}

ServeDaemon::~ServeDaemon() { Stop(); }

uint64_t ServeDaemon::Publish(std::unique_ptr<ServingSnapshot> snapshot) {
  const uint64_t generation = registry_.Publish(std::move(snapshot));
  if (generation > 1) swaps_->Increment();
  return generation;
}

Status ServeDaemon::Start() {
  // Serializing on lifecycle_mu_ (not just the CAS) keeps workers_ single
  // -writer: a Stop() racing with Start() can no longer join the vector
  // while it is being filled.
  MutexLock lock(&lifecycle_mu_);
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
    return Status::FailedPrecondition("daemon already started");
  }
  workers_.reserve(config_.num_workers);
  for (unsigned w = 0; w < config_.num_workers; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void ServeDaemon::Stop() {
  // lifecycle_mu_ (kServeLifecycle) is held across queue_.Shutdown()
  // (kRequestQueue) — ascending in the declared lock order. Workers do
  // not take lifecycle_mu_, so joining under it cannot deadlock.
  MutexLock lock(&lifecycle_mu_);
  queue_.Shutdown();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  started_.store(false, std::memory_order_release);
}

void ServeDaemon::Respond(ServeRequest& request, ServeResponse&& response) {
  response.id = request.id;
  if (request.done) request.done(std::move(response));
}

bool ServeDaemon::Submit(ServeRequest&& request) {
  if (!started()) {
    ServeResponse response;
    response.outcome = ServeOutcome::kNotStarted;
    Respond(request, std::move(response));
    return false;
  }
  request.admit_nanos = clock_->NowNanos();
  // TryPush moves from `request` only on success; on rejection it is
  // untouched and still owns its callback.
  if (!queue_.TryPush(&request)) {
    ServeResponse response;
    response.outcome = ServeOutcome::kShedQueueFull;
    shed_queue_full_->Increment();
    Respond(request, std::move(response));
    return false;
  }
  admitted_->Increment();
  queue_depth_->Set(static_cast<double>(queue_.Size()));
  return true;
}

void ServeDaemon::WorkerLoop() {
  ServeRequest request;
  while (queue_.Pop(&request)) {
    const int64_t picked_up = clock_->NowNanos();
    const double queue_seconds =
        static_cast<double>(picked_up - request.admit_nanos) / 1e9;
    queue_seconds_->Record(queue_seconds);

    ServeResponse response;
    response.queue_seconds = queue_seconds;

    // Deadline shed: a request that waited past its deadline gets its
    // answer ("too late") without spending shard work on it.
    if (request.deadline_nanos > 0 && picked_up > request.deadline_nanos) {
      shed_deadline_->Increment();
      response.outcome = ServeOutcome::kShedDeadline;
      response.total_seconds = clock_->SecondsSince(request.admit_nanos);
      latency_seconds_->Record(response.total_seconds);
      Respond(request, std::move(response));
      continue;
    }

    SnapshotHandle snapshot = registry_.Acquire();
    if (!snapshot) {
      no_snapshot_->Increment();
      response.outcome = ServeOutcome::kNoSnapshot;
      response.total_seconds = clock_->SecondsSince(request.admit_nanos);
      latency_seconds_->Record(response.total_seconds);
      Respond(request, std::move(response));
      continue;
    }

    ShardedIndex::PartialResult scatter = snapshot->index.SearchWithDeadline(
        request.query, request.k, snapshot->evaluator, *clock_,
        request.deadline_nanos, config_.shard_parallelism);
    response.generation = snapshot->generation;
    response.results = std::move(scatter.results);
    response.shards_answered = scatter.shards_answered;
    if (scatter.complete) {
      completed_->Increment();
      response.outcome = ServeOutcome::kOk;
    } else {
      partial_->Increment();
      response.outcome = ServeOutcome::kPartial;
    }
    response.total_seconds = clock_->SecondsSince(request.admit_nanos);
    latency_seconds_->Record(response.total_seconds);
    // The handle is released after the response is built: an in-flight
    // request pins its generation even if a swap landed meanwhile.
    snapshot.Reset();
    Respond(request, std::move(response));
  }
}

}  // namespace ckr
