#include "serve/load_gen.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/hash.h"

namespace ckr {
namespace {

// Stream tags keeping the per-request, hot-set, and arrival draws on
// disjoint counter-seeded streams of the same workload seed.
constexpr uint64_t kRequestStream = 0x10adc0de00000001ULL;
constexpr uint64_t kHotSetStream = 0x10adc0de00000002ULL;
constexpr uint64_t kArrivalStream = 0x10adc0de00000003ULL;

}  // namespace

Status LoadGenConfig::Validate() const {
  if (num_users == 0) return Status::InvalidArgument("num_users must be > 0");
  if (user_zipf <= 0.0) {
    return Status::InvalidArgument("user_zipf must be > 0");
  }
  if (hot_entity_prob < 0.0 || hot_entity_prob > 1.0) {
    return Status::InvalidArgument("hot_entity_prob must be in [0,1]");
  }
  if (hot_entity_prob > 0.0 && hot_set_size == 0) {
    return Status::InvalidArgument(
        "hot_set_size must be > 0 when hot_entity_prob > 0");
  }
  if (burst_period == 0) {
    return Status::InvalidArgument("burst_period must be > 0");
  }
  if (top_k == 0) return Status::InvalidArgument("top_k must be > 0");
  return Status::OK();
}

LoadGenerator::LoadGenerator(const World& world, const LoadGenConfig& config)
    : world_(world),
      config_(config),
      user_sampler_(static_cast<size_t>(config.num_users), config.user_zipf) {
  CKR_CHECK(config.Validate().ok());
  CKR_CHECK_GT(world.NumEntities(), 0u);
  // Same latent query demand as the click-log generator: popularity plus
  // a floor so every entity has non-zero mass.
  entity_cdf_.reserve(world.NumEntities());
  double total = 0.0;
  for (const Entity& e : world.entities()) {
    total += 0.02 + e.popularity;
    entity_cdf_.push_back(total);
  }
}

EntityId LoadGenerator::DrawEntity(Rng& rng) const {
  const double u = rng.NextDouble() * entity_cdf_.back();
  const size_t pick = static_cast<size_t>(
      std::lower_bound(entity_cdf_.begin(), entity_cdf_.end(), u) -
      entity_cdf_.begin());
  return static_cast<EntityId>(std::min(pick, entity_cdf_.size() - 1));
}

EntityId LoadGenerator::HotEntity(uint64_t epoch, size_t member) const {
  // Counter-seeded per (epoch, member): the hot set is a pure function of
  // the seed, shared by every request in the epoch without coordination.
  Rng rng(Mix64(HashCombine(
      config_.seed ^ kHotSetStream,
      epoch * config_.hot_set_size + static_cast<uint64_t>(member))));
  return DrawEntity(rng);
}

LoadRequest LoadGenerator::Request(uint64_t i) const {
  Rng rng(Mix64(HashCombine(config_.seed ^ kRequestStream, i)));
  LoadRequest req;
  req.index = i;
  req.user = static_cast<uint32_t>(user_sampler_.Sample(rng) - 1);
  req.hot = rng.NextBernoulli(config_.hot_entity_prob);
  if (req.hot) {
    const uint64_t epoch = i / config_.burst_period;
    const size_t member =
        static_cast<size_t>(rng.NextBounded(config_.hot_set_size));
    req.entity = HotEntity(epoch, member);
  } else {
    req.entity = DrawEntity(rng);
  }
  req.query = world_.entity(req.entity).key;
  return req;
}

std::vector<int64_t> LoadGenerator::ArrivalNanos(size_t n,
                                                 double offered_qps) const {
  CKR_CHECK(offered_qps > 0.0);
  std::vector<int64_t> arrivals;
  arrivals.reserve(n);
  // Interarrival gaps are independent counter-seeded draws; only the
  // cumulative sum is sequential. Accumulate in double seconds (the bench
  // horizon is far below the 2^53 precision cliff) and convert once.
  double seconds = 0.0;
  for (size_t i = 0; i < n; ++i) {
    Rng rng(Mix64(HashCombine(config_.seed ^ kArrivalStream,
                              static_cast<uint64_t>(i))));
    // Exponential with rate offered_qps; 1-u keeps the log argument > 0.
    const double gap = -std::log(1.0 - rng.NextDouble()) / offered_qps;
    seconds += gap;
    arrivals.push_back(static_cast<int64_t>(seconds * 1e9));
  }
  return arrivals;
}

}  // namespace ckr
