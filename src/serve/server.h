// ckr_serve — the in-process sharded serving daemon.
//
// Requests enter through a bounded MPMC queue (request_queue.h) with
// admission control; a pool of worker threads pops them, checks the
// deadline (expired requests are shed without touching the index),
// acquires the current snapshot generation (snapshot.h), runs the
// deadline-bounded scatter/gather over the shards (sharded_index.h), and
// invokes the request's completion callback with the outcome. Publish()
// hot-swaps a new generation at any time — including mid-load — with
// zero downtime: in-flight requests finish on the generation they
// acquired.
//
// Time enters only through the injected ckr::Clock (the repo's R1
// determinism contract): tests drive deadlines with a fake clock;
// production passes RealClock().
//
// Telemetry is the daemon's product surface, reported into an
// obs::MetricRegistry (default: the process-global one) under
// "ckr.serve.*": admitted/completed/partial counters, the three shed
// classes, queue-depth gauge, and queue/latency histograms the bench
// turns into p50/p99/p999. These are direct registry writes, not
// CKR_OBS_* hooks: shed accounting is behaviour, not optional
// observability, so the CKR_OBS_DISABLED kill switch (which guards the
// library's hot-path hooks) does not apply here.
#ifndef CKR_SERVE_SERVER_H_
#define CKR_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "index/top_k.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "serve/request_queue.h"
#include "serve/snapshot.h"

namespace ckr {

/// How a request left the daemon.
enum class ServeOutcome : uint8_t {
  kOk = 0,           ///< Full scatter/gather on every shard.
  kPartial = 1,      ///< Deadline cut the scatter short; results flagged,
                     ///< not dropped (shards_answered says how many ran).
  kShedQueueFull = 2,   ///< Rejected at admission: queue at capacity.
  kShedDeadline = 3,    ///< Popped after its deadline; index never touched.
  kNoSnapshot = 4,      ///< No generation published yet.
  kNotStarted = 5,      ///< Submitted while the daemon was not running.
};

struct ServeResponse {
  uint64_t id = 0;
  ServeOutcome outcome = ServeOutcome::kOk;
  /// Generation that served the request (0 when none was acquired).
  uint64_t generation = 0;
  std::vector<SearchResult> results;
  size_t shards_answered = 0;
  /// Admission -> worker pickup, and admission -> completion, on the
  /// daemon's clock. Zero for requests shed at admission.
  double queue_seconds = 0.0;
  double total_seconds = 0.0;
};

struct ServeRequest {
  uint64_t id = 0;
  std::string query;
  size_t k = 10;
  /// Absolute deadline on the daemon's clock (NowNanos scale); 0 = none.
  int64_t deadline_nanos = 0;
  /// Invoked exactly once per Submit(): on a worker thread for executed
  /// or deadline-shed requests, synchronously on the submitting thread
  /// for admission sheds. May be empty.
  std::function<void(ServeResponse&&)> done;
  /// Stamped by Submit().
  int64_t admit_nanos = 0;
};

struct ServeDaemonConfig {
  unsigned num_workers = 2;
  /// Threads fanning one request's scatter across shards; 1 (default)
  /// scans shards inline — on the serving path, concurrency should come
  /// from the worker pool, which overlaps *requests* without per-request
  /// thread spawns.
  unsigned shard_parallelism = 1;
  size_t queue_capacity = 1024;
  /// Defaults to RealClock() / the global registry when null.
  const Clock* clock = nullptr;
  obs::MetricRegistry* metrics = nullptr;
};

/// The daemon. Thread-safe: Submit/Publish may be called from any thread
/// while workers run.
class ServeDaemon {
 public:
  explicit ServeDaemon(const ServeDaemonConfig& config);
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Installs a new serving generation (zero downtime; see snapshot.h).
  /// Legal before Start() — the usual cold boot — and at any time after.
  /// Returns the generation number.
  uint64_t Publish(std::unique_ptr<ServingSnapshot> snapshot);

  uint64_t CurrentGeneration() const { return registry_.CurrentGeneration(); }
  /// Generations alive (current + retired ones still pinned by in-flight
  /// requests); the swap tests assert it drains back to 1.
  int64_t LiveGenerations() const { return registry_.LiveGenerations(); }

  /// Spawns the worker pool. Returns FailedPrecondition if already
  /// started.
  [[nodiscard]] Status Start() CKR_EXCLUDES(lifecycle_mu_);

  /// Graceful stop: closes admission, drains the backlog (every admitted
  /// request is answered), joins the workers. Idempotent, and safe to
  /// race with Start(): both serialize on lifecycle_mu_.
  void Stop() CKR_EXCLUDES(lifecycle_mu_);

  bool started() const { return started_.load(std::memory_order_acquire); }

  /// Admission. True = queued (the callback fires later on a worker);
  /// false = shed, with `request.done` already invoked synchronously
  /// carrying the precise outcome (kShedQueueFull / kNotStarted).
  bool Submit(ServeRequest&& request);

  const ServeDaemonConfig& config() const { return config_; }

 private:
  void WorkerLoop();
  void Respond(ServeRequest& request, ServeResponse&& response);

  ServeDaemonConfig config_;
  const Clock* clock_;
  SnapshotRegistry registry_;
  BoundedMpmcQueue<ServeRequest> queue_;
  /// Serializes Start/Stop. Lowest-ranked lock in the hierarchy: Stop()
  /// calls queue_.Shutdown() (kRequestQueue) while holding it.
  mutable Mutex lifecycle_mu_{LockRank::kServeLifecycle};
  std::vector<std::thread> workers_ CKR_GUARDED_BY(lifecycle_mu_);
  /// Readable from Submit() without the lifecycle lock; Start publishes
  /// with release, started() reads with acquire.
  // ckr-lint: unguarded(lock-free running flag; see Start/started)
  std::atomic<bool> started_{false};

  // Cached metric pointers (registry lookups lock; lookups happen once).
  obs::Counter* admitted_;
  obs::Counter* completed_;
  obs::Counter* partial_;
  obs::Counter* shed_queue_full_;
  obs::Counter* shed_deadline_;
  obs::Counter* no_snapshot_;
  obs::Counter* swaps_;
  obs::Gauge* queue_depth_;
  obs::Histogram* queue_seconds_;
  obs::Histogram* latency_seconds_;
};

}  // namespace ckr

#endif  // CKR_SERVE_SERVER_H_
