// Bounded MPMC queue with admission control — the daemon's front door.
//
// Producers never block: TryPush() either enqueues or reports the queue
// full, and the caller sheds the request (admission control: under
// overload the daemon answers "shed" in microseconds instead of letting
// the backlog, and therefore every queued request's latency, grow without
// bound). Consumers block on a condition variable; Shutdown() wakes them
// all, and Pop() drains the remaining backlog before reporting closed —
// so every admitted request is still answered during a graceful stop.
//
// Mutex+condvar rather than a lock-free ring: the critical sections are
// O(1) pointer shuffles, contention is bounded by the worker count, and
// the queue is exercised under tsan (scripts/tsan_check.sh) where simple
// synchronization is an asset, not a cost.
#ifndef CKR_SERVE_REQUEST_QUEUE_H_
#define CKR_SERVE_REQUEST_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace ckr {

template <typename T>
class BoundedMpmcQueue {
 public:
  explicit BoundedMpmcQueue(size_t capacity) : capacity_(capacity) {}

  BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
  BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

  /// Enqueues unless the queue is full or shut down; never blocks.
  /// Returns false when the item was rejected (the shed signal) — then
  /// `*item` is left untouched, so the caller can still answer it.
  [[nodiscard]] bool TryPush(T* item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(*item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is shut down *and*
  /// drained; returns false only in the latter case.
  [[nodiscard]] bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return shutdown_ || !items_.empty(); });
    if (items_.empty()) return false;  // Shut down and drained.
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Closes admission and wakes every blocked consumer. Items already
  /// queued are still Pop()ed (graceful drain). Idempotent.
  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    not_empty_.notify_all();
  }

  /// Instantaneous depth (the queue-depth gauge's sample).
  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  bool shut_down() const {
    std::lock_guard<std::mutex> lock(mu_);
    return shutdown_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool shutdown_ = false;
};

}  // namespace ckr

#endif  // CKR_SERVE_REQUEST_QUEUE_H_
