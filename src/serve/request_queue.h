// Bounded MPMC queue with admission control — the daemon's front door.
//
// Producers never block: TryPush() either enqueues or reports the queue
// full, and the caller sheds the request (admission control: under
// overload the daemon answers "shed" in microseconds instead of letting
// the backlog, and therefore every queued request's latency, grow without
// bound). Consumers block on a condition variable; Shutdown() wakes them
// all, and Pop() drains the remaining backlog before reporting closed —
// so every admitted request is still answered during a graceful stop.
//
// Mutex+condvar rather than a lock-free ring: the critical sections are
// O(1) pointer shuffles, contention is bounded by the worker count, and
// the queue is exercised under tsan (scripts/tsan_check.sh) where simple
// synchronization is an asset, not a cost.
//
// Concurrency contract: every field is CKR_GUARDED_BY(queue_mu_) — an
// annotated ckr::Mutex, ranked kRequestQueue in the declared hierarchy
// (the daemon's lifecycle lock is held while Shutdown() runs, so
// lifecycle_mu_ < queue_mu_). The condition variable is
// condition_variable_any waiting on the annotated mutex directly.
#ifndef CKR_SERVE_REQUEST_QUEUE_H_
#define CKR_SERVE_REQUEST_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace ckr {

template <typename T>
class BoundedMpmcQueue {
 public:
  explicit BoundedMpmcQueue(size_t capacity) : capacity_(capacity) {}

  BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
  BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

  /// Enqueues unless the queue is full or shut down; never blocks.
  /// Returns false when the item was rejected (the shed signal) — then
  /// `*item` is left untouched, so the caller can still answer it.
  [[nodiscard]] bool TryPush(T* item) CKR_EXCLUDES(queue_mu_) {
    {
      MutexLock lock(&queue_mu_);
      if (shutdown_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(*item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is shut down *and*
  /// drained; returns false only in the latter case.
  [[nodiscard]] bool Pop(T* out) CKR_EXCLUDES(queue_mu_) {
    MutexLock lock(&queue_mu_);
    // condition_variable_any releases and re-acquires queue_mu_ through
    // its BasicLockable face; net-held across the wait, like any condvar
    // loop.
    while (!shutdown_ && items_.empty()) not_empty_.wait(queue_mu_);
    if (items_.empty()) return false;  // Shut down and drained.
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Closes admission and wakes every blocked consumer. Items already
  /// queued are still Pop()ed (graceful drain). Idempotent.
  void Shutdown() CKR_EXCLUDES(queue_mu_) {
    {
      MutexLock lock(&queue_mu_);
      shutdown_ = true;
    }
    not_empty_.notify_all();
  }

  /// Instantaneous depth (the queue-depth gauge's sample).
  size_t Size() const CKR_EXCLUDES(queue_mu_) {
    MutexLock lock(&queue_mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  bool shut_down() const CKR_EXCLUDES(queue_mu_) {
    MutexLock lock(&queue_mu_);
    return shutdown_;
  }

 private:
  const size_t capacity_;
  mutable Mutex queue_mu_{LockRank::kRequestQueue};
  /// Thread-safe by construction; waits re-enter through queue_mu_.
  // ckr-lint: unguarded(condvar is its own synchronization primitive)
  std::condition_variable_any not_empty_;
  std::deque<T> items_ CKR_GUARDED_BY(queue_mu_);
  bool shutdown_ CKR_GUARDED_BY(queue_mu_) = false;
};

}  // namespace ckr

#endif  // CKR_SERVE_REQUEST_QUEUE_H_
