// Doc-partitioned index sharding for the serving daemon.
//
// A ShardedIndex splits the corpus into N contiguous document ranges,
// each owned by one InvertedIndex shard built from a single streamed
// corpus pass (CorpusStreamer routes every document to its range owner).
// After the shards are finalized their LocalCollectionStats() are merged
// and pushed back into every shard (OverrideCollectionStats), so each
// shard computes BM25 with the whole collection's n / df / avg_doc_len.
//
// Exactness contract: sharded top-k is *bit-identical* to a single index
// over the union, for any shard count and every QueryEvaluator. The
// argument, enforced by tests/property_test.cc and serve_smoke_test:
//  * every document lives in exactly one shard, with the same length,
//    term frequencies, and (after the stats override) the same norms and
//    idf the oracle uses — so its score is the same IEEE left-to-right
//    sum over the same sorted-deduplicated query terms, bit for bit;
//  * each shard returns its exact local top-k under the ranking contract
//    (desc score, ties by asc external id — a total order), and the
//    global top-k of a disjoint union is a subset of the per-shard
//    top-ks; merging by the same comparator and truncating to k is
//    therefore exactly the oracle's list.
#ifndef CKR_SERVE_SHARDED_INDEX_H_
#define CKR_SERVE_SHARDED_INDEX_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "corpus/corpus_stream.h"
#include "corpus/document.h"
#include "corpus/world.h"
#include "index/inverted_index.h"
#include "index/top_k.h"
#include "obs/clock.h"

namespace ckr {

/// Contiguous [begin, end) document-index range owned by one shard.
struct ShardRange {
  uint64_t begin = 0;
  uint64_t end = 0;
  uint64_t size() const { return end - begin; }
};

/// Range of shard `shard` of `num_shards` over `num_docs` documents:
/// contiguous near-equal split, the first num_docs % num_shards shards
/// one document larger. Requires shard < num_shards.
ShardRange ShardRangeOf(size_t shard, size_t num_shards, uint64_t num_docs);

/// Build knobs for a streamed sharded build.
struct ShardedIndexConfig {
  size_t num_shards = 4;
  /// Per-shard build options. build_block_index applies after the
  /// collection-stats override (so block maxima carry global stats).
  IndexBuildOptions build;
  /// Chunking/worker knobs of the single corpus pass.
  CorpusStreamConfig stream;

  [[nodiscard]] Status Validate() const;
};

/// Merges per-shard top-k lists (each sorted by the ranking contract:
/// descending score, ties by ascending external doc id) into the global
/// top-k — same comparator, truncated to k. Pure function, property-
/// tested against the single-index oracle and edge cases (empty shards,
/// k below the cross-shard tie width).
std::vector<SearchResult> MergeShardTopK(
    const std::vector<std::vector<SearchResult>>& per_shard, size_t k);

/// Immutable after construction; Search* methods are safe to call
/// concurrently (shards are read-only).
class ShardedIndex {
 public:
  /// Result of a deadline-bounded scatter: shards that could not run
  /// before the deadline are *flagged*, never silently dropped.
  struct PartialResult {
    std::vector<SearchResult> results;
    size_t shards_answered = 0;
    bool complete = true;
  };

  /// Builds shards from one streamed corpus pass over [0, num_docs),
  /// routing each document to its ShardRangeOf owner, then merges and
  /// overrides collection stats (see file comment).
  [[nodiscard]] static StatusOr<ShardedIndex> Build(
      const World& world, Document::Kind kind, uint64_t num_docs,
      const ShardedIndexConfig& config);

  /// Wraps externally built, finalized shards (tests and custom builds).
  /// Validates that external doc ids are disjoint across shards, then
  /// applies the merged-stats override to every shard. Shards may be
  /// empty.
  [[nodiscard]] static StatusOr<ShardedIndex> FromShards(
      std::vector<std::unique_ptr<InvertedIndex>> shards);

  size_t NumShards() const { return shards_.size(); }
  uint64_t NumDocs() const { return num_docs_; }
  const InvertedIndex& shard(size_t s) const { return *shards_[s]; }
  /// Documents per shard — the corpus size the evaluator policy
  /// (ChooseEvaluator) judges, since each scatter leg runs on one shard.
  uint64_t MaxShardDocs() const;

  /// Scatter/gather top-k over every shard, sequential scatter — the
  /// deterministic oracle-equivalent entry point.
  std::vector<SearchResult> Search(std::string_view query, size_t k,
                                   const Bm25Params& params = {},
                                   QueryEvaluator evaluator =
                                       QueryEvaluator::kExhaustive) const;

  /// Deadline-bounded scatter/gather. Before each shard leg runs, the
  /// injected clock is checked against `deadline_nanos` (absolute,
  /// 0 = none): legs that cannot start in time are skipped and the
  /// result is marked incomplete. `shard_parallelism` > 1 fans the
  /// scatter across ParallelForWorkers threads (per-shard slots, so
  /// executed legs stay deterministic); 1 runs inline — the default for
  /// the daemon, whose parallelism comes from its worker pool.
  PartialResult SearchWithDeadline(std::string_view query, size_t k,
                                   QueryEvaluator evaluator,
                                   const Clock& clock, int64_t deadline_nanos,
                                   unsigned shard_parallelism = 1) const;

  /// Disjoint doc partition => the union count is the sum of shard counts.
  uint64_t RegularResultCount(std::string_view query) const;

 private:
  explicit ShardedIndex(std::vector<std::unique_ptr<InvertedIndex>> shards);

  std::vector<std::unique_ptr<InvertedIndex>> shards_;
  uint64_t num_docs_ = 0;
};

}  // namespace ckr

#endif  // CKR_SERVE_SHARDED_INDEX_H_
