// Deterministic million-user load generator for the serving bench.
//
// Traffic is a pure function of (seed, request index): every request is
// drawn from its own counter-seeded RNG stream (the click_log DrawPair
// idiom), so a workload replays bit-identically regardless of how many
// client threads submit it or in which order the draws happen. The shape
// mirrors the repo's click-log model:
//
//  * users follow a Zipf(num_users, user_zipf) popularity law;
//  * queries are entity keys drawn from the World's latent popularity
//    CDF — the same demand distribution the click-log generator uses;
//  * a rotating "hot set" injects bursts: each epoch of `burst_period`
//    requests shares a small set of hot entities that a configurable
//    fraction of traffic hits, modeling breaking-news query spikes.
//
// For open-loop runs, ArrivalNanos() lays out a Poisson arrival schedule
// (exponential interarrivals at a target QPS) on the bench's clock; the
// offered load is independent of service times, which is what makes
// queueing delay and shedding visible under overload.
#ifndef CKR_SERVE_LOAD_GEN_H_
#define CKR_SERVE_LOAD_GEN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "corpus/world.h"

namespace ckr {

struct LoadGenConfig {
  uint64_t seed = 20260808;
  /// Distinct simulated users (Zipf-ranked).
  uint32_t num_users = 1u << 20;
  double user_zipf = 1.07;
  /// Fraction of requests redirected to the current hot set.
  double hot_entity_prob = 0.25;
  /// Entities per hot set.
  size_t hot_set_size = 16;
  /// Requests per hot-set rotation (epoch length).
  uint64_t burst_period = 4096;
  /// Top-k requested from the daemon.
  size_t top_k = 10;

  [[nodiscard]] Status Validate() const;
};

/// One generated request (before submission to the daemon).
struct LoadRequest {
  uint64_t index = 0;
  uint32_t user = 0;
  EntityId entity = 0;
  /// Entity key — the query text handed to the daemon.
  std::string query;
  /// True when the request was redirected to the epoch's hot set.
  bool hot = false;
};

class LoadGenerator {
 public:
  /// The world must outlive the generator. CHECK-fails on an invalid
  /// config or an entity-less world (use Validate() to pre-flight).
  LoadGenerator(const World& world, const LoadGenConfig& config);

  /// Request `i` of the workload — a pure function of (seed, i).
  LoadRequest Request(uint64_t i) const;

  /// Hot-set member `member` of epoch `epoch` (what Request() draws from
  /// with probability hot_entity_prob). Exposed for determinism tests.
  EntityId HotEntity(uint64_t epoch, size_t member) const;

  /// Absolute Poisson arrival offsets (nanoseconds from schedule start)
  /// for `n` requests at `offered_qps`; non-decreasing, deterministic in
  /// the config seed. Requires offered_qps > 0.
  std::vector<int64_t> ArrivalNanos(size_t n, double offered_qps) const;

  const LoadGenConfig& config() const { return config_; }

 private:
  /// Maps a uniform draw through the entity-popularity CDF.
  EntityId DrawEntity(Rng& rng) const;

  const World& world_;
  LoadGenConfig config_;
  ZipfSampler user_sampler_;
  /// Cumulative popularity weights over world_.entities().
  std::vector<double> entity_cdf_;
};

}  // namespace ckr

#endif  // CKR_SERVE_LOAD_GEN_H_
