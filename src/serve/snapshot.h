// Hot snapshot swap: RCU-style generation pointers for zero-downtime
// republish of a freshly built index / retrained model.
//
// A ServingSnapshot is an immutable serving generation. The registry
// holds the current generation behind a pointer that Publish() swaps
// atomically (under a microscopic critical section — O(1), no allocation,
// never blocked by request execution). Readers take a refcounted
// SnapshotHandle: in-flight requests keep scoring against the generation
// they acquired while new requests see the new one, and a retired
// generation is destroyed exactly when its last handle is released.
//
// Memory-ordering contract (exercised under tsan by serve_test):
//  * Acquire() loads the current node and increments its refcount inside
//    the registry mutex — the same mutex Publish() swaps under — so a
//    node's count can never tick up after it was retired with zero
//    readers;
//  * Release() decrements with memory_order_acq_rel; the thread that
//    drops the count to zero (reader or publisher, whichever is last)
//    observes every write made by other releasing threads before it
//    frees, which makes the delete race-free;
//  * the publisher's own reference keeps the *current* generation's
//    count >= 1, so only retired generations can reach zero.
#ifndef CKR_SERVE_SNAPSHOT_H_
#define CKR_SERVE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "index/top_k.h"
#include "serve/sharded_index.h"

namespace ckr {

/// One immutable serving generation: the sharded index plus the policy
/// chosen when it was loaded. Requests never see a half-swapped mix.
struct ServingSnapshot {
  /// Assigned by SnapshotRegistry::Publish (1, 2, ...).
  uint64_t generation = 0;
  ShardedIndex index;
  /// Evaluator policy fixed at load time from the per-shard corpus size
  /// (ChooseEvaluator in search/search_service.h).
  QueryEvaluator evaluator = QueryEvaluator::kExhaustive;

  explicit ServingSnapshot(ShardedIndex idx) : index(std::move(idx)) {}
};

namespace internal {

/// Refcounted holder of one generation. `refs` counts the publisher's
/// reference (exactly one, dropped when the generation is retired) plus
/// one per outstanding SnapshotHandle. Whoever drops the count to zero
/// frees the node; `live_nodes` lets tests assert retired generations
/// actually die.
struct SnapshotNode {
  std::unique_ptr<const ServingSnapshot> snapshot;
  /// The RCU refcount protocol (see file comment): ticks up only inside
  /// the registry mutex, drops with acq_rel anywhere.
  // ckr-lint: unguarded(refcount; acq_rel fetch_sub is the sync)
  std::atomic<int64_t> refs{1};
  /// Shared with the registry (a handle may legitimately outlive it).
  // ckr-lint: unguarded(live-generation gauge; acq_rel adds/subs)
  std::shared_ptr<std::atomic<int64_t>> live_nodes;
};

/// Drops one reference; frees the node when it was the last.
void ReleaseSnapshotNode(SnapshotNode* node);

}  // namespace internal

/// RAII reference to one generation. Movable, not copyable; the snapshot
/// stays valid (and immutable) for the handle's lifetime even if newer
/// generations are published meanwhile.
class SnapshotHandle {
 public:
  SnapshotHandle() = default;
  ~SnapshotHandle() { Reset(); }

  SnapshotHandle(SnapshotHandle&& other) noexcept : node_(other.node_) {
    other.node_ = nullptr;
  }
  SnapshotHandle& operator=(SnapshotHandle&& other) noexcept {
    if (this != &other) {
      Reset();
      node_ = other.node_;
      other.node_ = nullptr;
    }
    return *this;
  }
  SnapshotHandle(const SnapshotHandle&) = delete;
  SnapshotHandle& operator=(const SnapshotHandle&) = delete;

  /// Null when acquired before the first Publish().
  explicit operator bool() const { return node_ != nullptr; }
  const ServingSnapshot* get() const {
    return node_ == nullptr ? nullptr : node_->snapshot.get();
  }
  const ServingSnapshot& operator*() const { return *get(); }
  const ServingSnapshot* operator->() const { return get(); }

  /// Releases the reference early (idempotent).
  void Reset() {
    if (node_ != nullptr) {
      internal::ReleaseSnapshotNode(node_);
      node_ = nullptr;
    }
  }

 private:
  friend class SnapshotRegistry;
  explicit SnapshotHandle(internal::SnapshotNode* node) : node_(node) {}

  internal::SnapshotNode* node_ = nullptr;
};

/// The generation slot. Thread-safe; Publish and Acquire may race freely.
class SnapshotRegistry {
 public:
  SnapshotRegistry() = default;
  ~SnapshotRegistry();

  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  /// Installs `snapshot` as the current generation, stamps its generation
  /// number, and retires the previous one (freed once its last in-flight
  /// handle releases). Returns the new generation number.
  uint64_t Publish(std::unique_ptr<ServingSnapshot> snapshot)
      CKR_EXCLUDES(registry_mu_);

  /// Refcounted reference to the current generation; null handle before
  /// the first Publish().
  SnapshotHandle Acquire() const CKR_EXCLUDES(registry_mu_);

  /// Generation number of the current snapshot (0 before first Publish).
  uint64_t CurrentGeneration() const CKR_EXCLUDES(registry_mu_);

  /// Generations still alive (current + retired-but-referenced). The
  /// zero-downtime swap tests assert this returns to 1 after in-flight
  /// handles drain.
  int64_t LiveGenerations() const {
    return live_nodes_->load(std::memory_order_acquire);
  }

 private:
  /// The generation-swap critical section: microscopic, never blocked by
  /// request execution. Ranked below metrics_mu_ / log_mu only.
  mutable Mutex registry_mu_{LockRank::kSnapshotRegistry};
  internal::SnapshotNode* current_ CKR_GUARDED_BY(registry_mu_) = nullptr;
  uint64_t next_generation_ CKR_GUARDED_BY(registry_mu_) = 1;
  // ckr-lint: unguarded(shared gauge; handles outlive the registry)
  std::shared_ptr<std::atomic<int64_t>> live_nodes_ =
      std::make_shared<std::atomic<int64_t>>(0);
};

}  // namespace ckr

#endif  // CKR_SERVE_SNAPSHOT_H_
