#include "serve/snapshot.h"

#include <utility>

#include "common/check.h"

namespace ckr {
namespace internal {

void ReleaseSnapshotNode(SnapshotNode* node) {
  // acq_rel: the releaser that hits zero must observe every prior
  // release's writes before freeing (the classic shared_ptr discipline).
  const int64_t prev = node->refs.fetch_sub(1, std::memory_order_acq_rel);
  CKR_DCHECK_GE(prev, 1);
  if (prev == 1) {
    node->live_nodes->fetch_sub(1, std::memory_order_acq_rel);
    delete node;
  }
}

}  // namespace internal

SnapshotRegistry::~SnapshotRegistry() {
  internal::SnapshotNode* current = nullptr;
  {
    MutexLock lock(&registry_mu_);
    current = current_;
    current_ = nullptr;
  }
  // Drop the publisher reference. Outstanding handles (if any) keep the
  // node alive past the registry — they only need the node, not us.
  if (current != nullptr) internal::ReleaseSnapshotNode(current);
}

uint64_t SnapshotRegistry::Publish(std::unique_ptr<ServingSnapshot> snapshot) {
  CKR_CHECK(snapshot != nullptr);
  auto* node = new internal::SnapshotNode();
  node->live_nodes = live_nodes_;
  live_nodes_->fetch_add(1, std::memory_order_acq_rel);

  internal::SnapshotNode* retired = nullptr;
  uint64_t generation = 0;
  {
    MutexLock lock(&registry_mu_);
    generation = next_generation_++;
    snapshot->generation = generation;
    node->snapshot = std::move(snapshot);
    retired = current_;
    current_ = node;
  }
  // Retire outside the lock: dropping the publisher reference may destroy
  // a whole index generation, which must never stall Acquire().
  if (retired != nullptr) internal::ReleaseSnapshotNode(retired);
  return generation;
}

SnapshotHandle SnapshotRegistry::Acquire() const {
  MutexLock lock(&registry_mu_);
  if (current_ == nullptr) return SnapshotHandle();
  // Inside the mutex the publisher reference is still held, so the count
  // is >= 1 and can never resurrect from zero.
  current_->refs.fetch_add(1, std::memory_order_relaxed);
  return SnapshotHandle(current_);
}

uint64_t SnapshotRegistry::CurrentGeneration() const {
  MutexLock lock(&registry_mu_);
  return current_ == nullptr ? 0 : current_->snapshot->generation;
}

}  // namespace ckr
