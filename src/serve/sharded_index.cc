#include "serve/sharded_index.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"

namespace ckr {

ShardRange ShardRangeOf(size_t shard, size_t num_shards, uint64_t num_docs) {
  CKR_CHECK_LT(shard, num_shards);
  const uint64_t base = num_docs / num_shards;
  const uint64_t rem = num_docs % num_shards;
  ShardRange r;
  r.begin = static_cast<uint64_t>(shard) * base +
            std::min<uint64_t>(shard, rem);
  r.end = r.begin + base + (shard < rem ? 1 : 0);
  return r;
}

Status ShardedIndexConfig::Validate() const {
  if (num_shards == 0) {
    return Status::InvalidArgument("sharded index needs at least one shard");
  }
  return Status::OK();
}

std::vector<SearchResult> MergeShardTopK(
    const std::vector<std::vector<SearchResult>>& per_shard, size_t k) {
  std::vector<SearchResult> merged;
  size_t total = 0;
  for (const auto& shard : per_shard) total += shard.size();
  merged.reserve(total);
  for (const auto& shard : per_shard) {
    merged.insert(merged.end(), shard.begin(), shard.end());
  }
  // Each input list is already RankBefore-sorted, but a flat sort of at
  // most NumShards * k entries is cheap and keeps the function total-order
  // correct even for unsorted inputs. RankBefore is a strict total order
  // over distinct doc ids, so the result is unique.
  std::sort(merged.begin(), merged.end(), RankBefore);
  if (merged.size() > k) merged.resize(k);
  return merged;
}

ShardedIndex::ShardedIndex(std::vector<std::unique_ptr<InvertedIndex>> shards)
    : shards_(std::move(shards)) {
  for (const auto& shard : shards_) num_docs_ += shard->NumDocs();
}

StatusOr<ShardedIndex> ShardedIndex::Build(const World& world,
                                           Document::Kind kind,
                                           uint64_t num_docs,
                                           const ShardedIndexConfig& config) {
  CKR_RETURN_IF_ERROR(config.Validate());
  // Shards ingest with the block index deferred: it must be built *after*
  // the collection-stats override so its maxima carry the global idf.
  IndexBuildOptions shard_opts = config.build;
  shard_opts.build_block_index = false;
  std::vector<std::unique_ptr<InvertedIndex>> shards;
  shards.reserve(config.num_shards);
  for (size_t s = 0; s < config.num_shards; ++s) {
    shards.push_back(std::make_unique<InvertedIndex>(shard_opts));
  }

  // One streamed pass in ascending doc order; a walking cursor routes each
  // document to its contiguous range owner.
  CorpusStreamer streamer(world);
  uint64_t count = 0;
  size_t cur = 0;
  uint64_t cur_end = ShardRangeOf(0, config.num_shards, num_docs).end;
  Status s = streamer.Stream(
      kind, static_cast<size_t>(num_docs), config.stream,
      [&](Document&& doc) {
        while (count >= cur_end) {
          ++cur;
          cur_end = ShardRangeOf(cur, config.num_shards, num_docs).end;
        }
        shards[cur]->Add(doc);
        ++count;
      });
  if (!s.ok()) return s;

  for (auto& shard : shards) shard->Finalize();
  CollectionStats merged;
  for (const auto& shard : shards) {
    merged.Absorb(shard->LocalCollectionStats());
  }
  for (auto& shard : shards) {
    CKR_RETURN_IF_ERROR(shard->OverrideCollectionStats(merged));
    if (config.build.build_block_index) {
      shard->RebuildBlockIndex(config.build.block_codec);
    }
  }
  return ShardedIndex(std::move(shards));
}

StatusOr<ShardedIndex> ShardedIndex::FromShards(
    std::vector<std::unique_ptr<InvertedIndex>> shards) {
  if (shards.empty()) {
    return Status::InvalidArgument("sharded index needs at least one shard");
  }
  std::unordered_set<DocId> seen;
  for (const auto& shard : shards) {
    if (shard == nullptr || !shard->finalized()) {
      return Status::InvalidArgument(
          "every shard must be a finalized index");
    }
    for (uint32_t d = 0; d < shard->NumDocs(); ++d) {
      if (!seen.insert(shard->ExternalDocId(d)).second) {
        return Status::InvalidArgument(
            "shards must hold disjoint document sets");
      }
    }
  }
  CollectionStats merged;
  for (const auto& shard : shards) {
    merged.Absorb(shard->LocalCollectionStats());
  }
  // OverrideCollectionStats rebuilds an existing block index itself;
  // shards without one keep their exhaustive-fallback behaviour.
  for (auto& shard : shards) {
    CKR_RETURN_IF_ERROR(shard->OverrideCollectionStats(merged));
  }
  return ShardedIndex(std::move(shards));
}

uint64_t ShardedIndex::MaxShardDocs() const {
  uint64_t max_docs = 0;
  for (const auto& shard : shards_) {
    max_docs = std::max<uint64_t>(max_docs, shard->NumDocs());
  }
  return max_docs;
}

std::vector<SearchResult> ShardedIndex::Search(std::string_view query,
                                               size_t k,
                                               const Bm25Params& params,
                                               QueryEvaluator evaluator) const {
  std::vector<std::vector<SearchResult>> per_shard(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    per_shard[s] = shards_[s]->Search(query, k, params, evaluator);
  }
  return MergeShardTopK(per_shard, k);
}

ShardedIndex::PartialResult ShardedIndex::SearchWithDeadline(
    std::string_view query, size_t k, QueryEvaluator evaluator,
    const Clock& clock, int64_t deadline_nanos,
    unsigned shard_parallelism) const {
  const size_t n = shards_.size();
  std::vector<std::vector<SearchResult>> per_shard(n);
  std::vector<uint8_t> answered(n, 0);
  auto run_shard = [&](size_t s) {
    // Admission per leg: a leg that cannot *start* before the deadline is
    // skipped; one that started runs to completion (bounded by one
    // shard's worth of work).
    if (deadline_nanos > 0 && clock.NowNanos() > deadline_nanos) return;
    per_shard[s] = shards_[s]->Search(query, k, Bm25Params{}, evaluator);
    answered[s] = 1;
  };
  if (shard_parallelism > 1) {
    ParallelForWorkers(n, shard_parallelism,
                       [&](unsigned worker, size_t s) {
                         (void)worker;
                         run_shard(s);
                       });
  } else {
    for (size_t s = 0; s < n; ++s) run_shard(s);
  }
  PartialResult out;
  for (uint8_t a : answered) out.shards_answered += a;
  out.complete = out.shards_answered == n;
  out.results = MergeShardTopK(per_shard, k);
  return out;
}

uint64_t ShardedIndex::RegularResultCount(std::string_view query) const {
  uint64_t count = 0;
  for (const auto& shard : shards_) {
    count += shard->RegularResultCount(query);
  }
  return count;
}

}  // namespace ckr
