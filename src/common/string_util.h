// Small string helpers used throughout the library.
#ifndef CKR_COMMON_STRING_UTIL_H_
#define CKR_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace ckr {

/// Splits on any character in `delims`, dropping empty pieces.
std::vector<std::string> SplitString(std::string_view text,
                                     std::string_view delims);

/// Joins pieces with `sep`.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

/// ASCII lower-casing (the library's text domain is ASCII by construction).
std::string ToLowerAscii(std::string_view text);

/// Strips leading/trailing characters found in `strip_chars` (default:
/// whitespace).
std::string_view TrimView(std::string_view text,
                          std::string_view strip_chars = " \t\r\n");

/// Strips surrounding (not internal) punctuation, per the paper's relevant-
/// term normalization ("surrounding punctuation characters are removed").
std::string_view StripSurroundingPunct(std::string_view token);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
bool EndsWith(std::string_view text, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace ckr

#endif  // CKR_COMMON_STRING_UTIL_H_
