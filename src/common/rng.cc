#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ckr {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(sm);
  // xoshiro requires a nonzero state; SplitMix64 of any seed gives one with
  // overwhelming probability, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  CKR_DCHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  CKR_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextGaussian() {
  if (has_gaussian_) {
    has_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  // Avoid log(0).
  if (u1 < 1e-300) u1 = 1e-300;
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

size_t Rng::NextCategorical(const std::vector<double>& weights) {
  CKR_DCHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CKR_DCHECK(w >= 0.0);
    total += w;
  }
  CKR_DCHECK(total > 0.0);
  double x = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (x < acc) return i;
  }
  return weights.size() - 1;  // Floating-point edge: return last index.
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  for (size_t i = n; i > 1; --i) {
    size_t j = NextBounded(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Rng Rng::Fork(uint64_t stream) {
  // Derive a child seed from fresh output mixed with the stream id so
  // different streams are decorrelated.
  uint64_t mix = Next() ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  return Rng(mix);
}

ZipfSampler::ZipfSampler(size_t n, double exponent) {
  CKR_DCHECK(n > 0);
  pmf_.resize(n);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t r = 1; r <= n; ++r) {
    pmf_[r - 1] = 1.0 / std::pow(static_cast<double>(r), exponent);
    total += pmf_[r - 1];
  }
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    pmf_[i] /= total;
    acc += pmf_[i];
    cdf_[i] = acc;
  }
  cdf_.back() = 1.0;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  double x = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), x);
  return static_cast<size_t>(it - cdf_.begin()) + 1;
}

double ZipfSampler::Pmf(size_t rank) const {
  CKR_DCHECK(rank >= 1 && rank <= pmf_.size());
  return pmf_[rank - 1];
}

}  // namespace ckr
