// Status and StatusOr: exception-free error propagation across library
// boundaries, following the RocksDB/Arrow idiom. Functions that can fail
// return Status (or StatusOr<T> when they also produce a value); callers
// must check ok() before using the value.
#ifndef CKR_COMMON_STATUS_H_
#define CKR_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace ckr {

/// Error taxonomy for the library. Kept deliberately small; the message
/// string carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIOError,
};

/// A lightweight success/error result. Copyable and cheap when OK (no
/// allocation on the success path). The class-level [[nodiscard]] makes
/// the compiler reject silently dropped Status values anywhere in the
/// tree; ckr_lint's R3 additionally requires the per-declaration
/// attribute on public APIs so headers document the contract locally.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: k must be > 0".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A Status or a value of type T. Accessing the value of a non-OK result
/// is a programming error (CKR_DCHECKs in debug/sanitizer builds).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    CKR_DCHECK(!status_.ok());
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CKR_DCHECK(ok());
    return *value_;
  }
  T& value() & {
    CKR_DCHECK(ok());
    return *value_;
  }
  T&& value() && {
    CKR_DCHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status to the caller (statement form).
#define CKR_RETURN_IF_ERROR(expr)         \
  do {                                    \
    ::ckr::Status _ckr_st = (expr);       \
    if (!_ckr_st.ok()) return _ckr_st;    \
  } while (0)

}  // namespace ckr

#endif  // CKR_COMMON_STATUS_H_
