// Little-endian binary serialization primitives shared by the runtime
// store pack (model + TID table + quantized stores) and the compact
// ranksvm v2 model format. Deliberately minimal: a length-checked reader
// over a contiguous buffer and an append-only writer; every composite
// format is versioned by its owner.
#ifndef CKR_COMMON_BINARY_IO_H_
#define CKR_COMMON_BINARY_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ckr {

/// Append-only buffer writer.
class BinaryWriter {
 public:
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void F64(double v);
  /// Length-prefixed (u32) byte string.
  void Str(std::string_view s);

  const std::string& buffer() const { return buffer_; }
  std::string Release() { return std::move(buffer_); }

 private:
  void Raw(const void* data, size_t size);
  std::string buffer_;
};

/// Bounds-checked reader; after any over-read, ok() is false and all
/// subsequent reads return zero values.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  uint16_t U16();
  uint32_t U32();
  uint64_t U64();
  double F64();
  std::string Str();

  bool ok() const { return ok_; }
  /// True when the whole buffer was consumed exactly.
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }
  /// Bytes left to read (0 once the reader has over-read).
  size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }

 private:
  bool Raw(void* out, size_t size);
  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace ckr

#endif  // CKR_COMMON_BINARY_IO_H_
