// Debug-invariant layer: always-on CKR_CHECK, compiled-out CKR_DCHECK,
// and a bounds-checked ckr::Span for the CSR hot paths.
//
// The repo's correctness story is Status/StatusOr for recoverable errors
// (bad input, corrupt files) and CHECK-style invariants for programming
// errors (a CSR offset table that is not monotone, a term id past the
// dictionary). CKR_CHECK is active in every build and aborts with
// file:line. CKR_DCHECK is active when NDEBUG is absent or the build
// defines CKR_ENABLE_DCHECKS (the sanitizer presets do); otherwise it
// expands to an unevaluated operand — zero codegen, but identifiers used
// only in the check do not become "unused" warnings.
//
// ckr::Span carries (pointer, length) over a contiguous CSR slice and
// bounds-checks operator[] under CKR_DCHECK; in release it is exactly a
// raw pointer plus an unused length (tests/check_release_test.cc pins the
// layout and the no-evaluation guarantee).
#ifndef CKR_COMMON_CHECK_H_
#define CKR_COMMON_CHECK_H_

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <type_traits>
#include <vector>

// CKR_FORCE_NO_DCHECKS is a per-TU test hook (see check_release_test.cc);
// normal code never defines it.
#if defined(CKR_FORCE_NO_DCHECKS)
#define CKR_DEBUG_CHECKS 0
#elif defined(CKR_ENABLE_DCHECKS) || !defined(NDEBUG)
#define CKR_DEBUG_CHECKS 1
#else
#define CKR_DEBUG_CHECKS 0
#endif

namespace ckr {
namespace internal {

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr) {
  std::fprintf(stderr, "CKR_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace ckr

/// Aborts with file:line and the failed expression. Active in all builds;
/// use for invariants whose violation makes continuing meaningless even in
/// production (e.g. a corrupt frozen automaton).
#define CKR_CHECK(cond)                                              \
  (__builtin_expect(!(cond), 0)                                      \
       ? ::ckr::internal::CheckFail(__FILE__, __LINE__, #cond)       \
       : (void)0)

#define CKR_CHECK_EQ(a, b) CKR_CHECK((a) == (b))
#define CKR_CHECK_NE(a, b) CKR_CHECK((a) != (b))
#define CKR_CHECK_LT(a, b) CKR_CHECK((a) < (b))
#define CKR_CHECK_LE(a, b) CKR_CHECK((a) <= (b))
#define CKR_CHECK_GT(a, b) CKR_CHECK((a) > (b))
#define CKR_CHECK_GE(a, b) CKR_CHECK((a) >= (b))

#if CKR_DEBUG_CHECKS
#define CKR_DCHECK(cond) CKR_CHECK(cond)
#else
// Unevaluated operand: no codegen, no side effects, but operands are
// odr-used enough to silence -Wunused under -Werror.
#define CKR_DCHECK(cond) ((void)sizeof((cond) ? 1 : 0))
#endif

#define CKR_DCHECK_EQ(a, b) CKR_DCHECK((a) == (b))
#define CKR_DCHECK_NE(a, b) CKR_DCHECK((a) != (b))
#define CKR_DCHECK_LT(a, b) CKR_DCHECK((a) < (b))
#define CKR_DCHECK_LE(a, b) CKR_DCHECK((a) <= (b))
#define CKR_DCHECK_GT(a, b) CKR_DCHECK((a) > (b))
#define CKR_DCHECK_GE(a, b) CKR_DCHECK((a) >= (b))

namespace ckr {

/// A non-owning view over `size` contiguous elements. The CSR hot paths
/// (flat automaton transitions, per-term posting slots, matrix rows) hand
/// these out instead of raw pointer arithmetic so every element access is
/// bounds-checked wherever CKR_DCHECK is live.
template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(T* data, size_t size) : data_(data), size_(size) {}

  /// Span<T> converts to Span<const T>; never the other way.
  template <typename U,
            typename = std::enable_if_t<std::is_same_v<const U, T>>>
  constexpr Span(const Span<U>& other)  // NOLINT(runtime/explicit)
      : data_(other.data()), size_(other.size()) {}

  constexpr T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }

  constexpr T& operator[](size_t i) const {
    CKR_DCHECK_LT(i, size_);
    return data_[i];
  }
  constexpr T& front() const {
    CKR_DCHECK(!empty());
    return data_[0];
  }
  constexpr T& back() const {
    CKR_DCHECK(!empty());
    return data_[size_ - 1];
  }

  constexpr T* begin() const { return data_; }
  constexpr T* end() const { return data_ + size_; }

  /// The half-open sub-range [offset, offset + count).
  constexpr Span subspan(size_t offset, size_t count) const {
    CKR_DCHECK_LE(offset, size_);
    CKR_DCHECK_LE(count, size_ - offset);
    return Span(data_ + offset, count);
  }

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
};

/// Span over a whole vector.
template <typename T>
Span<T> MakeSpan(std::vector<T>& v) {
  return Span<T>(v.data(), v.size());
}
template <typename T>
Span<const T> MakeSpan(const std::vector<T>& v) {
  return Span<const T>(v.data(), v.size());
}

/// CSR slice helper: the elements of `pool` in [offsets[i], offsets[i+1]).
/// DCHECKs the offset pair is monotone and inside the pool.
template <typename T, typename Offset>
Span<const T> CsrRow(const std::vector<T>& pool,
                     const std::vector<Offset>& offsets, size_t i) {
  CKR_DCHECK_LT(i + 1, offsets.size());
  const size_t begin = static_cast<size_t>(offsets[i]);
  const size_t end = static_cast<size_t>(offsets[i + 1]);
  CKR_DCHECK_LE(begin, end);
  CKR_DCHECK_LE(end, pool.size());
  return Span<const T>(pool.data() + begin, end - begin);
}

}  // namespace ckr

#endif  // CKR_COMMON_CHECK_H_
