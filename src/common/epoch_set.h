// Epoch-stamped flat membership set over a dense id universe.
//
// The online ranker needs a per-document "set of context TIDs" that is
// cleared for every document. A hash set pays an allocation and a hash per
// insert; a plain bitset pays an O(universe) clear per document. The
// epoch-stamp trick gets O(1) insert/lookup *and* O(1) clear: each slot
// stores the epoch in which it was last inserted, and Clear() just bumps
// the current epoch. The backing array is allocated once per scratch
// object and reused across documents — zero steady-state allocations.
#ifndef CKR_COMMON_EPOCH_SET_H_
#define CKR_COMMON_EPOCH_SET_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace ckr {

/// Membership set for ids in [0, universe). Not thread-safe; intended to
/// live inside per-worker scratch state.
class EpochSet {
 public:
  /// Clears the set and (re)sizes it for ids in [0, universe). Growing the
  /// universe reallocates; a steady universe makes this O(1).
  void Reset(size_t universe) {
    if (stamps_.size() < universe) stamps_.resize(universe, 0);
    if (++epoch_ == 0) {  // Wrapped: stamps from 2^32 resets ago collide.
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 1;
    }
    size_ = 0;
  }

  /// Inserts `id`; returns true if it was newly inserted. Ids outside the
  /// Reset() universe are ignored (returns false).
  bool Insert(uint32_t id) {
    if (id >= stamps_.size()) return false;
    if (stamps_[id] == epoch_) return false;
    stamps_[id] = epoch_;
    ++size_;
    return true;
  }

  bool Contains(uint32_t id) const {
    return id < stamps_.size() && stamps_[id] == epoch_;
  }

  /// Number of distinct ids inserted since the last Reset().
  size_t size() const { return size_; }

 private:
  std::vector<uint32_t> stamps_;
  uint32_t epoch_ = 0;
  size_t size_ = 0;
};

}  // namespace ckr

#endif  // CKR_COMMON_EPOCH_SET_H_
