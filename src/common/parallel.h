// Minimal deterministic data-parallel helper for the offline phase.
//
// ParallelFor partitions [0, n) across worker threads; the callable must
// be safe to run concurrently for distinct indices and must write only to
// per-index slots. Results are therefore independent of thread count and
// scheduling — determinism is preserved by construction.
#ifndef CKR_COMMON_PARALLEL_H_
#define CKR_COMMON_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "common/check.h"

namespace ckr {

namespace internal {

/// Debug-only tripwire for the per-index-slot discipline: every index in
/// [0, n) must be dispatched to exactly one worker. The atomic dispenser
/// guarantees this by construction, so a second claim of the same index
/// means the dispenser (or a future refactor of it) is broken — exactly
/// the kind of silent determinism loss this layer exists to catch.
class DispatchLedger {
 public:
  explicit DispatchLedger(size_t n) {
#if CKR_DEBUG_CHECKS
    claimed_ = std::make_unique<std::atomic<uint8_t>[]>(n);
    for (size_t i = 0; i < n; ++i) {
      claimed_[i].store(0, std::memory_order_relaxed);
    }
#else
    (void)n;
#endif
  }

  void Claim(size_t i) {
#if CKR_DEBUG_CHECKS
    // Relaxed is enough for the tripwire: exchange is an atomic RMW, so
    // two claims of the same index always observe each other.
    CKR_CHECK(claimed_[i].exchange(1, std::memory_order_relaxed) == 0);
#else
    (void)i;
#endif
  }

 private:
#if CKR_DEBUG_CHECKS
  // ckr-lint: unguarded(per-index claim flags; exchange RMW is the sync)
  std::unique_ptr<std::atomic<uint8_t>[]> claimed_;
#endif
};

}  // namespace internal

/// Runs fn(i) for every i in [0, n) using up to `num_threads` workers
/// (0 or 1 = run inline on the calling thread). Blocks until done.
template <typename Fn>
void ParallelFor(size_t n, unsigned num_threads, Fn&& fn) {
  if (n == 0) return;
  if (num_threads <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  unsigned workers = num_threads;
  if (workers > n) workers = static_cast<unsigned>(n);
  std::atomic<size_t> next{0};
  internal::DispatchLedger ledger(n);
  auto body = [&]() {
    while (true) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      ledger.Claim(i);
      fn(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (unsigned t = 0; t + 1 < workers; ++t) threads.emplace_back(body);
  body();
  for (std::thread& t : threads) t.join();
}

/// Like ParallelFor, but the callable receives (worker, i) where `worker`
/// is a dense id in [0, effective workers). Lets callers keep one scratch
/// object per worker so the steady state allocates nothing per item.
/// Worker ids — not item-to-worker assignment — are deterministic; the
/// callable must still write only to per-index output slots for results to
/// be independent of scheduling.
template <typename Fn>
void ParallelForWorkers(size_t n, unsigned num_threads, Fn&& fn) {
  if (n == 0) return;
  if (num_threads <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(0u, i);
    return;
  }
  unsigned workers = num_threads;
  if (workers > n) workers = static_cast<unsigned>(n);
  std::atomic<size_t> next{0};
  internal::DispatchLedger ledger(n);
  auto body = [&](unsigned worker) {
    CKR_DCHECK_LT(worker, workers);
    while (true) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      ledger.Claim(i);
      fn(worker, i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (unsigned t = 0; t + 1 < workers; ++t) {
    threads.emplace_back(body, t + 1);
  }
  body(0);
  for (std::thread& t : threads) t.join();
}

/// A sensible default worker count for the offline phase.
inline unsigned DefaultWorkerCount() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace ckr

#endif  // CKR_COMMON_PARALLEL_H_
