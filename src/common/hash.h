// Hashing primitives shared across the library (term ids, feature hashing,
// hash-table keys).
#ifndef CKR_COMMON_HASH_H_
#define CKR_COMMON_HASH_H_

#include <cstdint>
#include <functional>
#include <string_view>

namespace ckr {

/// Transparent hasher for string-keyed unordered containers (C++20
/// heterogeneous lookup): find(string_view) without building a temporary
/// std::string. Pair with std::equal_to<> as the key-equality functor.
struct StringViewHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

/// 64-bit FNV-1a over a byte string. Stable across platforms/runs, so it is
/// safe to persist values derived from it.
uint64_t Fnv1a64(std::string_view data);

/// Finalizing mixer (MurmurHash3 fmix64); good avalanche for integer keys.
uint64_t Mix64(uint64_t x);

/// Combines two hash values (boost-style, 64-bit).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace ckr

#endif  // CKR_COMMON_HASH_H_
