// Minimal process-wide logging for the library: a leveled message sink
// that defaults to stderr and can be replaced (e.g. by tests that assert
// on warning paths, or by embedders that route into their own logger).
//
// This is deliberately tiny — the library logs rarely and only for
// conditions that would otherwise fail silently (e.g. a feature-dimension
// mismatch at scoring time, or a training-pair cap truncating data).
#ifndef CKR_COMMON_LOG_H_
#define CKR_COMMON_LOG_H_

#include <functional>
#include <string_view>

namespace ckr {

enum class LogLevel { kInfo = 0, kWarn = 1, kError = 2 };

/// Receives every message emitted through LogMessage.
using LogSink = std::function<void(LogLevel, std::string_view)>;

/// Emits one message to the installed sink (stderr by default).
/// Thread-safe; messages from concurrent threads are not interleaved.
void LogMessage(LogLevel level, std::string_view message);

inline void LogInfo(std::string_view message) {
  LogMessage(LogLevel::kInfo, message);
}
inline void LogWarn(std::string_view message) {
  LogMessage(LogLevel::kWarn, message);
}
inline void LogError(std::string_view message) {
  LogMessage(LogLevel::kError, message);
}

/// Replaces the process-wide sink; an empty sink restores the stderr
/// default. Returns the previously installed sink (empty for the
/// default). Intended for tests and embedders; calls are serialized with
/// in-flight LogMessage calls.
LogSink SetLogSink(LogSink sink);

}  // namespace ckr

#endif  // CKR_COMMON_LOG_H_
