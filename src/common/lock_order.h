// The lock hierarchy — one central registry, checked twice.
//
// Statically: the `ckr-lock-order:` comment lines below are the declared
// hierarchy ckr_lint rule R8 reads (the CLI and the self-test gate merge
// declarations from every scanned file, so nested lock_guard / MutexLock
// scopes anywhere in the tree that acquire against this order fail lint).
// Names are the mutex member identifiers as they appear at lock sites,
// which is why every ranked mutex in the tree has a distinctive name
// (`queue_mu_`, not `mu_`).
//
// Dynamically: every ckr::Mutex (common/mutex.h) constructed with a
// LockRank reports acquisitions to the LockOrderRegistry below — a
// thread-local held-lock stack that CKR_DCHECKs strictly increasing rank
// on every acquire. Like the rest of check.h's debug layer it is active
// whenever CKR_DEBUG_CHECKS is on (plain debug builds and the sanitizer
// presets, which set CKR_ENABLE_DCHECKS) and compiles to a true no-op in
// release: zero members, zero codegen, proven by check_release_test.
//
// The declared hierarchy, lowest-ranked (acquired first) to highest:
//
// ckr-lock-order: lifecycle_mu_ < queue_mu_
// ckr-lock-order: queue_mu_ < registry_mu_
// ckr-lock-order: registry_mu_ < metrics_mu_
// ckr-lock-order: metrics_mu_ < log_mu
//
// Rationale: the daemon's Stop() holds its lifecycle lock while closing
// the request queue; workers hold no lock while scattering but touch the
// snapshot registry, then metrics; anything may log last. Locks that are
// never held together still get an order so a future nesting has exactly
// one legal direction.
#ifndef CKR_COMMON_LOCK_ORDER_H_
#define CKR_COMMON_LOCK_ORDER_H_

#include <cstddef>

#include "common/check.h"

#if CKR_DEBUG_CHECKS
#include <vector>
#endif

namespace ckr {

/// Global acquisition ranks, sparse so layers can grow. A thread may only
/// acquire a ranked lock whose rank is strictly greater than every ranked
/// lock it already holds; kUnranked locks opt out (leaf locks with no
/// nesting, and everything in release builds).
enum class LockRank : int {
  kUnranked = 0,
  kServeLifecycle = 10,   ///< ServeDaemon::lifecycle_mu_
  kRequestQueue = 20,     ///< BoundedMpmcQueue::queue_mu_
  kSnapshotRegistry = 30, ///< SnapshotRegistry::registry_mu_
  kMetricsRegistry = 40,  ///< obs::MetricRegistry::metrics_mu_
  kLogSink = 50,          ///< log.cc LogState::log_mu
};

/// Debug-only runtime lock-order checker. All static; the held-lock
/// stack is thread-local, so threads are independent and there is no
/// synchronization of its own to order.
class LockOrderRegistry {
 public:
#if CKR_DEBUG_CHECKS
  /// Called by ckr::Mutex on every successful acquisition of a ranked
  /// lock. Aborts (CKR_DCHECK) when `rank` does not strictly exceed the
  /// highest-ranked lock this thread already holds — a lock-order
  /// inversion, i.e. a potential deadlock, caught on the first
  /// single-threaded execution instead of the unlucky interleaving.
  static void OnAcquire(LockRank rank) {
    if (rank == LockRank::kUnranked) return;
    std::vector<int>& held = HeldStack();
    // Strict: also trips on recursive acquisition of the same lock rank
    // (std::mutex self-deadlock).
    CKR_DCHECK(held.empty() || held.back() < static_cast<int>(rank));
    held.push_back(static_cast<int>(rank));
  }

  /// Called on release. Releases may be out of LIFO order (manual
  /// Lock/Unlock pairs), so the newest matching entry is removed.
  static void OnRelease(LockRank rank) {
    if (rank == LockRank::kUnranked) return;
    std::vector<int>& held = HeldStack();
    for (size_t i = held.size(); i > 0; --i) {
      if (held[i - 1] == static_cast<int>(rank)) {
        held.erase(held.begin() + static_cast<std::ptrdiff_t>(i) - 1);
        return;
      }
    }
    CKR_DCHECK(false && "released a ranked lock that was not held");
  }

  /// Ranked locks the calling thread currently holds (tests).
  static size_t HeldCountForTesting() { return HeldStack().size(); }

 private:
  static std::vector<int>& HeldStack() {
    thread_local std::vector<int> held;
    return held;
  }
#else
  // Release: unevaluated no-ops, same discipline as CKR_DCHECK itself.
  static void OnAcquire(LockRank rank) { (void)rank; }
  static void OnRelease(LockRank rank) { (void)rank; }
  static size_t HeldCountForTesting() { return 0; }
#endif
};

}  // namespace ckr

#endif  // CKR_COMMON_LOCK_ORDER_H_
