// Annotated mutex wrapper — the capability type the thread-safety
// analysis tracks.
//
// libstdc++'s std::mutex carries no Clang thread-safety attributes, so a
// raw std::mutex member is invisible to -Wthread-safety and ckr_lint
// rule R6 rejects it in src/. ckr::Mutex wraps std::mutex one-to-one
// (same release layout, pinned by check_release_test) and adds:
//
//  * CKR_CAPABILITY, so CKR_GUARDED_BY(mu_) fields and CKR_ACQUIRE /
//    CKR_RELEASE methods type-check under clang's analysis;
//  * an optional LockRank: ranked mutexes report every acquisition to
//    LockOrderRegistry (common/lock_order.h), which CKR_DCHECKs the
//    declared hierarchy at runtime in debug/sanitizer builds;
//  * BasicLockable lower-case lock()/unlock(), so the wrapper drops
//    straight into std::condition_variable_any::wait.
//
// ckr::MutexLock is the scoped holder (std::lock_guard shape, annotated
// CKR_SCOPED_CAPABILITY). Prefer it over manual Lock/Unlock pairs —
// ckr_lint rule R8 reads MutexLock/lock_guard/unique_lock scopes when
// checking the declared lock order statically.
#ifndef CKR_COMMON_MUTEX_H_
#define CKR_COMMON_MUTEX_H_

#include <mutex>

#include "common/check.h"
#include "common/lock_order.h"
#include "common/thread_annotations.h"

namespace ckr {

class CKR_LOCKABLE Mutex {
 public:
  Mutex() = default;
  /// A ranked mutex participates in the runtime lock-order check; see
  /// LockRank for the declared hierarchy. Rank storage exists only when
  /// CKR_DEBUG_CHECKS is on — in release Mutex is exactly a std::mutex.
  explicit Mutex(LockRank rank) {
#if CKR_DEBUG_CHECKS
    rank_ = rank;
#else
    (void)rank;
#endif
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CKR_ACQUIRE() {
    mu_.lock();
    LockOrderRegistry::OnAcquire(rank());
  }

  void Unlock() CKR_RELEASE() {
    LockOrderRegistry::OnRelease(rank());
    mu_.unlock();
  }

  [[nodiscard]] bool TryLock() CKR_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    LockOrderRegistry::OnAcquire(rank());
    return true;
  }

  /// BasicLockable aliases for std::condition_variable_any::wait, which
  /// releases and re-acquires the mutex through these (inside a system
  /// header, so the analysis does not second-guess the net-zero effect).
  void lock() CKR_ACQUIRE() { Lock(); }
  void unlock() CKR_RELEASE() { Unlock(); }

 private:
  LockRank rank() const {
#if CKR_DEBUG_CHECKS
    return rank_;
#else
    return LockRank::kUnranked;
#endif
  }

  // ckr-lint: unguarded(raw lock inside the annotated capability wrapper)
  std::mutex mu_;
#if CKR_DEBUG_CHECKS
  LockRank rank_ = LockRank::kUnranked;
#endif
};

/// Scoped acquisition (std::lock_guard shape). The thread-safety
/// analysis treats construction as acquiring and destruction as
/// releasing the passed mutex.
class CKR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) CKR_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() CKR_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

}  // namespace ckr

#endif  // CKR_COMMON_MUTEX_H_
