// Thread-safety annotation macros — the static half of the concurrency
// contract (the dynamic half is lock_order.h's runtime registry).
//
// Each macro expands to the corresponding Clang thread-safety attribute
// when the compiler supports it and to nothing otherwise, so GCC builds
// are byte-identical with or without the annotations while a Clang build
// with -Wthread-safety (wired into CMake for Clang, and into
// scripts/clang_tsa_check.sh) turns every guard-discipline violation
// into a compile error under -Werror.
//
// The annotated vocabulary, enforced tree-wide by ckr_lint rule R6
// (every std::mutex / std::atomic member must declare its discipline):
//
//   CKR_CAPABILITY("mutex") / CKR_LOCKABLE   on a lock type
//   CKR_SCOPED_CAPABILITY                    on an RAII lock holder
//   CKR_GUARDED_BY(mu)                       on data a lock protects
//   CKR_PT_GUARDED_BY(mu)                    on a pointer whose pointee
//                                            the lock protects
//   CKR_REQUIRES(mu)                         caller must hold mu
//   CKR_ACQUIRE(mu) / CKR_RELEASE(mu)        lock-taking / -dropping fns
//   CKR_TRY_ACQUIRE(result, mu)              conditional acquisition
//   CKR_EXCLUDES(mu)                         caller must NOT hold mu
//   CKR_ACQUIRED_BEFORE / _AFTER             declared lock ordering
//   CKR_NO_THREAD_SAFETY_ANALYSIS            per-function opt-out
//
// std::mutex under libstdc++ carries none of these attributes, so raw
// std::mutex members are invisible to the analysis; shared state uses
// the annotated ckr::Mutex / ckr::MutexLock wrappers (common/mutex.h)
// instead.
#ifndef CKR_COMMON_THREAD_ANNOTATIONS_H_
#define CKR_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define CKR_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define CKR_THREAD_ANNOTATION_ATTRIBUTE__(x)  // GCC: no-op.
#endif

/// Marks a type as a lock: instances are capabilities the analysis
/// tracks. `x` names the capability kind in diagnostics ("mutex").
#define CKR_CAPABILITY(x) CKR_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Shorthand for the common case.
#define CKR_LOCKABLE CKR_CAPABILITY("mutex")

/// Marks an RAII type whose constructor acquires and destructor releases
/// a capability (ckr::MutexLock).
#define CKR_SCOPED_CAPABILITY \
  CKR_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// The annotated field may only be read or written while holding `x`.
#define CKR_GUARDED_BY(x) CKR_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// The annotated pointer's *pointee* may only be touched while holding
/// `x` (the pointer itself is unrestricted).
#define CKR_PT_GUARDED_BY(x) \
  CKR_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Declared acquisition order between locks (the static mirror of the
/// ckr-lock-order registry in common/lock_order.h).
#define CKR_ACQUIRED_BEFORE(...) \
  CKR_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define CKR_ACQUIRED_AFTER(...) \
  CKR_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// The caller must hold the listed capabilities (exclusively / shared).
#define CKR_REQUIRES(...) \
  CKR_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define CKR_REQUIRES_SHARED(...) \
  CKR_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// The function acquires / releases the listed capabilities (empty
/// argument list = `this`, the member-lock idiom).
#define CKR_ACQUIRE(...) \
  CKR_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define CKR_ACQUIRE_SHARED(...) \
  CKR_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))
#define CKR_RELEASE(...) \
  CKR_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define CKR_RELEASE_SHARED(...) \
  CKR_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `result`.
#define CKR_TRY_ACQUIRE(...) \
  CKR_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// The caller must NOT hold the listed capabilities (deadlock guard on
/// public entry points of self-locking classes).
#define CKR_EXCLUDES(...) \
  CKR_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (fake-acquire for the
/// analysis after an out-of-band check).
#define CKR_ASSERT_CAPABILITY(x) \
  CKR_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// The function returns a reference to the named capability.
#define CKR_RETURN_CAPABILITY(x) \
  CKR_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Opt-out for functions whose locking is deliberately invisible to the
/// analysis; always pair with a comment saying why.
#define CKR_NO_THREAD_SAFETY_ANALYSIS \
  CKR_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // CKR_COMMON_THREAD_ANNOTATIONS_H_
