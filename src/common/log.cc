#include "common/log.h"

#include <cstdio>
#include <mutex>
#include <utility>

namespace ckr {

namespace {

std::mutex& SinkMutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}

LogSink& Sink() {
  static LogSink* sink = new LogSink();
  return *sink;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void LogMessage(LogLevel level, std::string_view message) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  const LogSink& sink = Sink();
  if (sink) {
    sink(level, message);
    return;
  }
  std::fprintf(stderr, "[ckr %s] %.*s\n", LevelName(level),
               static_cast<int>(message.size()), message.data());
}

LogSink SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  LogSink previous = std::move(Sink());
  Sink() = std::move(sink);
  return previous;
}

}  // namespace ckr
