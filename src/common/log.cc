#include "common/log.h"

#include <cstdio>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace ckr {

namespace {

/// The sink and the lock that guards it, one leaked instance (hooks may
/// log from static destructors). log_mu is the highest-ranked lock in
/// the declared hierarchy: logging is legal under any other lock.
struct LogState {
  Mutex log_mu{LockRank::kLogSink};
  LogSink sink CKR_GUARDED_BY(log_mu);
};

LogState& State() {
  static LogState* state = new LogState();
  return *state;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void LogMessage(LogLevel level, std::string_view message) {
  LogState& state = State();
  MutexLock lock(&state.log_mu);
  if (state.sink) {
    state.sink(level, message);
    return;
  }
  std::fprintf(stderr, "[ckr %s] %.*s\n", LevelName(level),
               static_cast<int>(message.size()), message.data());
}

LogSink SetLogSink(LogSink sink) {
  LogState& state = State();
  MutexLock lock(&state.log_mu);
  LogSink previous = std::move(state.sink);
  state.sink = std::move(sink);
  return previous;
}

}  // namespace ckr
