#include "common/binary_io.h"

#include <cstring>

namespace ckr {

void BinaryWriter::Raw(const void* data, size_t size) {
  buffer_.append(static_cast<const char*>(data), size);
}

void BinaryWriter::U16(uint16_t v) { Raw(&v, sizeof(v)); }
void BinaryWriter::U32(uint32_t v) { Raw(&v, sizeof(v)); }
void BinaryWriter::U64(uint64_t v) { Raw(&v, sizeof(v)); }
void BinaryWriter::F64(double v) { Raw(&v, sizeof(v)); }

void BinaryWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  Raw(s.data(), s.size());
}

bool BinaryReader::Raw(void* out, size_t size) {
  if (!ok_ || pos_ + size > data_.size()) {
    ok_ = false;
    std::memset(out, 0, size);
    return false;
  }
  std::memcpy(out, data_.data() + pos_, size);
  pos_ += size;
  return true;
}

uint16_t BinaryReader::U16() {
  uint16_t v = 0;
  Raw(&v, sizeof(v));
  return v;
}
uint32_t BinaryReader::U32() {
  uint32_t v = 0;
  Raw(&v, sizeof(v));
  return v;
}
uint64_t BinaryReader::U64() {
  uint64_t v = 0;
  Raw(&v, sizeof(v));
  return v;
}
double BinaryReader::F64() {
  double v = 0;
  Raw(&v, sizeof(v));
  return v;
}

std::string BinaryReader::Str() {
  uint32_t size = U32();
  if (!ok_ || pos_ + size > data_.size()) {
    ok_ = false;
    return "";
  }
  std::string out(data_.substr(pos_, size));
  pos_ += size;
  return out;
}

}  // namespace ckr
