// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in the library draws from an explicitly seeded
// Rng (xoshiro256** seeded via SplitMix64). Experiments are therefore
// bit-reproducible across runs and machines; no component ever touches
// std::random_device or wall-clock time.
#ifndef CKR_COMMON_RNG_H_
#define CKR_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ckr {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
uint64_t SplitMix64(uint64_t& state);

/// Deterministic pseudo-random generator (xoshiro256**).
class Rng {
 public:
  /// Constructs a generator whose full 256-bit state is derived from
  /// `seed` via SplitMix64.
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) using Lemire rejection; bound must be
  /// > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  double NextGaussian();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Samples from an unnormalized non-negative weight vector; returns the
  /// chosen index. Requires a positive total weight.
  size_t NextCategorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of indices [0, n).
  std::vector<size_t> Permutation(size_t n);

  /// Derives an independent child generator; `stream` distinguishes
  /// children of the same parent.
  Rng Fork(uint64_t stream);

 private:
  uint64_t s_[4];
  bool has_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Zipf(s, n) sampler over ranks {1..n} with exponent s, implemented with a
/// precomputed CDF and binary search. Rank 1 is the most frequent outcome.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double exponent);

  /// Returns a rank in [1, n].
  size_t Sample(Rng& rng) const;

  /// Probability mass of a given rank.
  double Pmf(size_t rank) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
  std::vector<double> pmf_;
};

}  // namespace ckr

#endif  // CKR_COMMON_RNG_H_
