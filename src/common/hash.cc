#include "common/hash.h"

namespace ckr {

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace ckr
