#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace ckr {

std::vector<std::string> SplitString(std::string_view text,
                                     std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || delims.find(text[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string ToLowerAscii(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view TrimView(std::string_view text, std::string_view strip_chars) {
  size_t b = text.find_first_not_of(strip_chars);
  if (b == std::string_view::npos) return std::string_view();
  size_t e = text.find_last_not_of(strip_chars);
  return text.substr(b, e - b + 1);
}

std::string_view StripSurroundingPunct(std::string_view token) {
  size_t b = 0;
  size_t e = token.size();
  while (b < e && std::ispunct(static_cast<unsigned char>(token[b]))) ++b;
  while (e > b && std::ispunct(static_cast<unsigned char>(token[e - 1]))) --e;
  return token.substr(b, e - b);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    // Encoding error (e.g. an invalid multibyte sequence under %ls).
    // Return a distinguishable sentinel rather than silently formatting
    // nothing — callers embed the result in logs and JSON.
    va_end(args_copy);
    return "<format-error>";
  }
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    int written = std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    if (written < 0) out = "<format-error>";
  }
  va_end(args_copy);
  return out;
}

}  // namespace ckr
