// Aggregated search-engine query log — the substitute for "the most
// popular 20 million queries submitted to the engine in the week of
// November 17th-23rd, 2007" (paper Section V-A.1).
//
// The log stores each distinct query with its frequency and serves the
// lookups the feature pipeline needs: exact-match frequency, phrase-
// containment frequency (paper features (1) and (2) of Table I), per-term
// statistics for mutual information (unit extraction, Eq. 1), and a
// term -> query inverted index used by the suggestion service.
#ifndef CKR_QUERYLOG_QUERY_LOG_H_
#define CKR_QUERYLOG_QUERY_LOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/status.h"

namespace ckr {

/// One distinct query with its aggregated submission count.
struct QueryEntry {
  std::string text;                 ///< Normalized query string.
  std::vector<std::string> terms;   ///< Normalized terms (split of text).
  uint64_t freq = 0;                ///< Number of submissions.
};

/// Immutable aggregated log. Build via AddQuery + Finalize (or through
/// QueryGenerator).
class QueryLog {
 public:
  QueryLog() = default;

  /// Accumulates `count` submissions of `query` (normalized internally).
  void AddQuery(std::string_view query, uint64_t count = 1);

  /// Freezes the log and builds the derived indexes. Must be called before
  /// any lookup; calling lookups earlier returns zeros.
  void Finalize();

  bool finalized() const { return finalized_; }
  size_t NumDistinctQueries() const { return entries_.size(); }
  uint64_t TotalSubmissions() const { return total_submissions_; }
  const std::vector<QueryEntry>& entries() const { return entries_; }

  /// Feature (1) freq_exact: submissions of exactly this phrase.
  uint64_t ExactFreq(std::string_view phrase) const;

  /// Feature (2) freq_phrase_contained: total submissions of queries that
  /// contain the phrase as a contiguous term sequence (includes exact
  /// matches).
  uint64_t PhraseContainedFreq(std::string_view phrase) const;

  /// Total submissions of queries containing the single term.
  uint64_t TermFreq(std::string_view term) const;

  /// Total submissions of queries containing both terms (anywhere).
  uint64_t PairFreq(std::string_view a, std::string_view b) const;

  /// Pointwise mutual information of two terms over query submissions
  /// (paper Eq. 1): log(p(x,y) / (p(x) p(y))). Returns 0 when either term
  /// is unseen or they never co-occur.
  double MutualInformation(std::string_view a, std::string_view b) const;

  /// Ids (indexes into entries()) of queries containing `term`.
  const std::vector<uint32_t>& QueriesWithTerm(std::string_view term) const;

 private:
  static std::string PairKey(std::string_view a, std::string_view b);

  std::unordered_map<std::string, uint64_t> raw_counts_;
  std::vector<QueryEntry> entries_;
  std::unordered_map<std::string, uint32_t> query_index_;
  std::unordered_map<std::string, uint64_t> subphrase_freq_;
  // Transparent hashers: TermFreq/QueriesWithTerm run per candidate term
  // in the offline fan-out, so lookups must not allocate a temporary.
  std::unordered_map<std::string, uint64_t, StringViewHash, std::equal_to<>>
      term_freq_;
  std::unordered_map<std::string, uint64_t> pair_freq_;
  std::unordered_map<std::string, std::vector<uint32_t>, StringViewHash,
                     std::equal_to<>>
      term_to_queries_;
  uint64_t total_submissions_ = 0;
  bool finalized_ = false;
};

}  // namespace ckr

#endif  // CKR_QUERYLOG_QUERY_LOG_H_
