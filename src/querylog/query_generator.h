// Query traffic simulation.
//
// Generates the weekly query log from the world's latent demand model:
//  * entity/concept queries, drawn with probability proportional to the
//    entity's popularity — exact surface queries, surface plus topical
//    context words ("phrase contained"), or partial-surface queries;
//  * generic background queries of 1-4 words (Zipfian word choice), which
//    provide the noise floor and make junk units frequent.
//
// The resulting log drives the interestingness features (freq_exact,
// freq_phrase_contained), unit extraction (mutual information), and the
// related-query-suggestion service.
#ifndef CKR_QUERYLOG_QUERY_GENERATOR_H_
#define CKR_QUERYLOG_QUERY_GENERATOR_H_

#include <cstdint>

#include "corpus/world.h"
#include "querylog/query_log.h"

namespace ckr {

/// Traffic-mix knobs.
struct QueryGeneratorConfig {
  uint64_t seed = 7;
  uint64_t num_submissions = 150000;  ///< Total query submissions.
  double entity_query_prob = 0.55;    ///< Share of entity-driven queries.
  double exact_prob = 0.45;     ///< P(exact surface | entity query).
  double context_prob = 0.35;   ///< P(surface + context | entity query).
  // Remaining entity-query mass issues a partial (single-term) query.
};

/// Generates and finalizes a QueryLog for a world.
class QueryGenerator {
 public:
  QueryGenerator(const World& world, const QueryGeneratorConfig& config);

  /// Builds the aggregated log (deterministic in config.seed).
  QueryLog Generate();

 private:
  const World& world_;
  QueryGeneratorConfig config_;
};

}  // namespace ckr

#endif  // CKR_QUERYLOG_QUERY_GENERATOR_H_
