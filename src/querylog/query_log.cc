#include "querylog/query_log.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "text/tokenizer.h"

namespace ckr {

void QueryLog::AddQuery(std::string_view query, uint64_t count) {
  std::string norm = NormalizePhrase(query);
  if (norm.empty()) return;
  raw_counts_[norm] += count;
  finalized_ = false;
}

std::string QueryLog::PairKey(std::string_view a, std::string_view b) {
  // Order-independent key.
  if (b < a) std::swap(a, b);
  std::string key(a);
  key.push_back('\x01');
  key.append(b);
  return key;
}

void QueryLog::Finalize() {
  entries_.clear();
  query_index_.clear();
  subphrase_freq_.clear();
  term_freq_.clear();
  pair_freq_.clear();
  term_to_queries_.clear();
  total_submissions_ = 0;

  entries_.reserve(raw_counts_.size());
  for (const auto& [text, freq] : raw_counts_) {
    QueryEntry e;
    e.text = text;
    e.terms = SplitString(text, " ");
    e.freq = freq;
    entries_.push_back(std::move(e));
  }
  // Deterministic order independent of hash-map iteration.
  std::sort(entries_.begin(), entries_.end(),
            [](const QueryEntry& a, const QueryEntry& b) {
              return a.text < b.text;
            });

  for (uint32_t qid = 0; qid < entries_.size(); ++qid) {
    const QueryEntry& e = entries_[qid];
    query_index_[e.text] = qid;
    total_submissions_ += e.freq;

    // Contiguous sub-phrases (including the full query).
    const size_t k = e.terms.size();
    for (size_t i = 0; i < k; ++i) {
      std::string phrase;
      for (size_t j = i; j < k; ++j) {
        if (j > i) phrase.push_back(' ');
        phrase.append(e.terms[j]);
        subphrase_freq_[phrase] += e.freq;
      }
    }

    // Distinct terms of this query.
    std::vector<std::string> uniq = e.terms;
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    for (const std::string& t : uniq) {
      term_freq_[t] += e.freq;
      term_to_queries_[t].push_back(qid);
    }
    for (size_t i = 0; i < uniq.size(); ++i) {
      for (size_t j = i + 1; j < uniq.size(); ++j) {
        pair_freq_[PairKey(uniq[i], uniq[j])] += e.freq;
      }
    }
  }
  finalized_ = true;
}

uint64_t QueryLog::ExactFreq(std::string_view phrase) const {
  std::string norm = NormalizePhrase(phrase);
  auto it = query_index_.find(norm);
  return it == query_index_.end() ? 0 : entries_[it->second].freq;
}

uint64_t QueryLog::PhraseContainedFreq(std::string_view phrase) const {
  std::string norm = NormalizePhrase(phrase);
  auto it = subphrase_freq_.find(norm);
  return it == subphrase_freq_.end() ? 0 : it->second;
}

uint64_t QueryLog::TermFreq(std::string_view term) const {
  auto it = term_freq_.find(term);
  return it == term_freq_.end() ? 0 : it->second;
}

uint64_t QueryLog::PairFreq(std::string_view a, std::string_view b) const {
  auto it = pair_freq_.find(PairKey(a, b));
  return it == pair_freq_.end() ? 0 : it->second;
}

double QueryLog::MutualInformation(std::string_view a,
                                   std::string_view b) const {
  if (total_submissions_ == 0) return 0.0;
  uint64_t fa = TermFreq(a);
  uint64_t fb = TermFreq(b);
  uint64_t fab = PairFreq(a, b);
  if (fa == 0 || fb == 0 || fab == 0) return 0.0;
  double n = static_cast<double>(total_submissions_);
  double pxy = static_cast<double>(fab) / n;
  double px = static_cast<double>(fa) / n;
  double py = static_cast<double>(fb) / n;
  return std::log(pxy / (px * py));
}

const std::vector<uint32_t>& QueryLog::QueriesWithTerm(
    std::string_view term) const {
  static const std::vector<uint32_t>* const kEmpty =
      new std::vector<uint32_t>();
  auto it = term_to_queries_.find(term);
  return it == term_to_queries_.end() ? *kEmpty : it->second;
}

}  // namespace ckr
