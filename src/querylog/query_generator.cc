#include "querylog/query_generator.h"

#include <string>
#include <vector>

#include "common/string_util.h"

namespace ckr {

QueryGenerator::QueryGenerator(const World& world,
                               const QueryGeneratorConfig& config)
    : world_(world), config_(config) {}

QueryLog QueryGenerator::Generate() {
  Rng rng(config_.seed);
  QueryLog log;

  // Precompute the entity demand distribution once.
  std::vector<double> demand;
  demand.reserve(world_.NumEntities());
  for (const Entity& e : world_.entities()) {
    // Quadratic emphasis: popular entities dominate query traffic, giving
    // the log the heavy-tailed shape of real search demand.
    demand.push_back(0.01 + e.popularity * e.popularity);
  }

  const Vocabulary& vocab = world_.vocabulary();
  for (uint64_t i = 0; i < config_.num_submissions; ++i) {
    if (rng.NextBernoulli(config_.entity_query_prob)) {
      const Entity& e = world_.entity(
          static_cast<EntityId>(rng.NextCategorical(demand)));
      double kind = rng.NextDouble();
      if (kind < config_.exact_prob) {
        log.AddQuery(e.key);
      } else if (kind < config_.exact_prob + config_.context_prob) {
        // Surface plus 1-2 context words drawn from the entity's topic;
        // these queries feed freq_phrase_contained and keep the concept's
        // terms co-occurring for unit extraction.
        std::string q = e.key;
        int extra = 1 + static_cast<int>(rng.NextBounded(2));
        for (int x = 0; x < extra; ++x) {
          size_t topic = static_cast<size_t>(e.primary_topic);
          WordId wid = vocab.SampleForTopic(topic, 0.7, rng);
          if (rng.NextBernoulli(0.5)) {
            q = vocab.Word(wid) + " " + q;
          } else {
            q += " " + vocab.Word(wid);
          }
        }
        log.AddQuery(q);
      } else {
        // Partial query: one term of the surface form.
        std::vector<std::string> terms = SplitString(e.key, " ");
        log.AddQuery(terms[rng.NextBounded(terms.size())]);
      }
    } else {
      // Generic background query.
      int n = 1 + static_cast<int>(rng.NextBounded(4));
      std::vector<std::string> words;
      for (int w = 0; w < n; ++w) {
        words.push_back(vocab.Word(vocab.SampleBackground(rng)));
      }
      log.AddQuery(JoinStrings(words, " "));
    }
  }
  log.Finalize();
  return log;
}

}  // namespace ckr
