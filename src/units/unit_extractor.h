// Unit extraction from search query logs (paper Section II-B, after
// Parikh & Kapur [7][8]).
//
// "Units are constructed from query logs in an iterative statistical
// approach using the frequencies of the distinct queries as follows. In the
// first iteration, all the single terms that appear in queries are
// considered to be units. In the following iterations, the units that
// frequently co-occur in queries are combined into larger candidate units.
// The validation of these units is performed based on statistical measures,
// including mutual information."
//
// A candidate of length k is accepted when some split into two adjacent
// existing units has pointwise mutual information (Eq. 1, over query
// submissions) above the threshold and the candidate itself is frequent
// enough. Scores are min-max normalized to [0, 1] as the paper requires.
#ifndef CKR_UNITS_UNIT_EXTRACTOR_H_
#define CKR_UNITS_UNIT_EXTRACTOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "querylog/query_log.h"

namespace ckr {

/// One extracted unit.
struct UnitInfo {
  std::string phrase;   ///< Normalized phrase.
  int num_terms = 1;
  uint64_t freq = 0;    ///< Phrase-containment frequency in the log.
  double raw_mi = 0.0;  ///< Validation MI (multi-term units only).
  double score = 0.0;   ///< Normalized unit score in [0, 1].
};

/// Immutable result of extraction.
class UnitDictionary {
 public:
  /// Adds a unit; last write wins for duplicate phrases.
  void Add(UnitInfo info);

  const UnitInfo* Find(std::string_view phrase) const;
  bool Contains(std::string_view phrase) const { return Find(phrase) != nullptr; }

  /// Normalized score; 0.0 for unknown phrases.
  double UnitScore(std::string_view phrase) const;

  size_t size() const { return units_.size(); }
  const std::vector<UnitInfo>& units() const { return units_; }

  /// Multi-term units only (the concept candidates for detection).
  std::vector<const UnitInfo*> MultiTermUnits() const;

 private:
  std::vector<UnitInfo> units_;
  // Transparent hasher: UnitScore is probed per detected phrase.
  std::unordered_map<std::string, size_t, StringViewHash, std::equal_to<>>
      index_;
};

/// Extraction thresholds. Defaults suit the default world scale (~150k
/// submissions); min_unit_freq should grow roughly linearly with log size.
struct UnitExtractorConfig {
  int max_unit_terms = 4;
  uint64_t min_term_freq = 5;    ///< Iteration-1 floor for single terms.
  uint64_t min_unit_freq = 4;    ///< Floor for multi-term candidates.
  double mi_threshold = 1.5;     ///< Validation MI floor (nats).
  size_t max_units = 200000;     ///< Safety cap.
};

/// Runs the iterative extraction over a finalized QueryLog.
class UnitExtractor {
 public:
  explicit UnitExtractor(const UnitExtractorConfig& config = {});

  /// Returns the unit dictionary; fails if the log is not finalized.
  [[nodiscard]] StatusOr<UnitDictionary> Extract(const QueryLog& log) const;

 private:
  UnitExtractorConfig config_;
};

}  // namespace ckr

#endif  // CKR_UNITS_UNIT_EXTRACTOR_H_
