#include "units/unit_extractor.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/string_util.h"

namespace ckr {

void UnitDictionary::Add(UnitInfo info) {
  auto it = index_.find(info.phrase);
  if (it != index_.end()) {
    units_[it->second] = std::move(info);
    return;
  }
  index_[info.phrase] = units_.size();
  units_.push_back(std::move(info));
}

const UnitInfo* UnitDictionary::Find(std::string_view phrase) const {
  auto it = index_.find(phrase);
  return it == index_.end() ? nullptr : &units_[it->second];
}

double UnitDictionary::UnitScore(std::string_view phrase) const {
  const UnitInfo* info = Find(phrase);
  return info == nullptr ? 0.0 : info->score;
}

std::vector<const UnitInfo*> UnitDictionary::MultiTermUnits() const {
  std::vector<const UnitInfo*> out;
  for (const UnitInfo& u : units_) {
    if (u.num_terms > 1) out.push_back(&u);
  }
  return out;
}

UnitExtractor::UnitExtractor(const UnitExtractorConfig& config)
    : config_(config) {}

StatusOr<UnitDictionary> UnitExtractor::Extract(const QueryLog& log) const {
  if (!log.finalized()) {
    return Status::FailedPrecondition("query log must be finalized");
  }
  const double total = static_cast<double>(log.TotalSubmissions());
  if (total <= 0) {
    return Status::FailedPrecondition("query log is empty");
  }

  UnitDictionary dict;
  // Iteration 1: all sufficiently frequent single terms are units.
  std::unordered_set<std::string> current;  // Units of the latest length.
  std::vector<std::pair<std::string, uint64_t>> single_terms;
  {
    std::unordered_set<std::string> seen;
    for (const QueryEntry& q : log.entries()) {
      for (const std::string& t : q.terms) {
        if (!seen.insert(t).second) continue;
        uint64_t f = log.TermFreq(t);
        if (f >= config_.min_term_freq) single_terms.emplace_back(t, f);
      }
    }
  }
  // Deterministic order + single-term scores from normalized log-frequency.
  std::sort(single_terms.begin(), single_terms.end());
  double min_lf = 1e300, max_lf = -1e300;
  for (const auto& [term, f] : single_terms) {
    double lf = std::log(static_cast<double>(f));
    min_lf = std::min(min_lf, lf);
    max_lf = std::max(max_lf, lf);
  }
  for (const auto& [term, f] : single_terms) {
    UnitInfo info;
    info.phrase = term;
    info.num_terms = 1;
    info.freq = f;
    double lf = std::log(static_cast<double>(f));
    info.score = (max_lf > min_lf) ? (lf - min_lf) / (max_lf - min_lf) : 1.0;
    dict.Add(std::move(info));
    current.insert(term);
  }

  // Subsequent iterations: grow units by one term per round by combining
  // an existing unit of length k-1 with an adjacent single-term unit, or
  // two units whose lengths sum to k. Validation: PMI of the two halves
  // measured over query submissions.
  std::vector<UnitInfo> accepted_multi;
  std::unordered_set<std::string> all_units = current;
  for (int len = 2; len <= config_.max_unit_terms; ++len) {
    // Candidate phrases of `len` terms with their containment frequency.
    std::unordered_map<std::string, uint64_t> candidates;
    for (const QueryEntry& q : log.entries()) {
      const auto& t = q.terms;
      if (static_cast<int>(t.size()) < len) continue;
      for (size_t i = 0; i + len <= t.size(); ++i) {
        std::string phrase = t[i];
        for (int j = 1; j < len; ++j) {
          phrase.push_back(' ');
          phrase.append(t[i + j]);
        }
        candidates[phrase] += q.freq;
      }
    }
    std::vector<std::pair<std::string, uint64_t>> ordered(candidates.begin(),
                                                          candidates.end());
    std::sort(ordered.begin(), ordered.end());
    size_t accepted_this_round = 0;
    for (const auto& [phrase, freq] : ordered) {
      if (freq < config_.min_unit_freq) continue;
      if (all_units.count(phrase) > 0) continue;
      std::vector<std::string> terms = SplitString(phrase, " ");
      // Best split into two existing units.
      double best_mi = -1e300;
      bool has_split = false;
      for (size_t cut = 1; cut < terms.size(); ++cut) {
        std::string left = JoinStrings(
            std::vector<std::string>(terms.begin(), terms.begin() + cut), " ");
        std::string right = JoinStrings(
            std::vector<std::string>(terms.begin() + cut, terms.end()), " ");
        if (all_units.count(left) == 0 || all_units.count(right) == 0) {
          continue;
        }
        has_split = true;
        double p_left =
            static_cast<double>(log.PhraseContainedFreq(left)) / total;
        double p_right =
            static_cast<double>(log.PhraseContainedFreq(right)) / total;
        double p_joint = static_cast<double>(freq) / total;
        if (p_left <= 0 || p_right <= 0 || p_joint <= 0) continue;
        best_mi = std::max(best_mi, std::log(p_joint / (p_left * p_right)));
      }
      if (!has_split || best_mi < config_.mi_threshold) continue;
      UnitInfo info;
      info.phrase = phrase;
      info.num_terms = len;
      info.freq = freq;
      info.raw_mi = best_mi;
      accepted_multi.push_back(std::move(info));
      all_units.insert(phrase);
      ++accepted_this_round;
      if (dict.size() + accepted_multi.size() >= config_.max_units) break;
    }
    if (accepted_this_round == 0) break;  // Fixed point reached.
  }

  // Normalize multi-term scores to [0, 1]. Raw PMI alone favors rare
  // pairs (the classic PMI pathology), so the unit score combines
  // cohesion (MI) with salience (log frequency) before min-max
  // normalization — frequent cohesive units (including junk phrases like
  // "my favorite") score high, matching the paper's observation that such
  // units enter the candidate set "due to their high unit scores".
  if (!accepted_multi.empty()) {
    double lo = 1e300, hi = -1e300;
    for (UnitInfo& u : accepted_multi) {
      double combined =
          u.raw_mi * std::log1p(static_cast<double>(u.freq));
      u.score = combined;  // Temporarily hold the unnormalized value.
      lo = std::min(lo, combined);
      hi = std::max(hi, combined);
    }
    for (UnitInfo& u : accepted_multi) {
      u.score = (hi > lo) ? (u.score - lo) / (hi - lo) : 1.0;
      dict.Add(std::move(u));
    }
  }
  return dict;
}

}  // namespace ckr
