// The instrumentation hooks library code actually calls.
//
// Every hook targets the global MetricRegistry and caches its metric
// pointer in a function-local static, so the steady-state cost is one
// relaxed atomic add. Defining CKR_OBS_DISABLED (the CMake option of the
// same name, or a per-TU #define as in tests/obs_disabled_test.cc) turns
// every hook into a true no-op with unevaluated operands — the same
// zero-codegen contract CKR_DCHECK honors in release builds, proven the
// same way.
#ifndef CKR_OBS_HOOKS_H_
#define CKR_OBS_HOOKS_H_

#include "obs/metrics.h"
#include "obs/stage_timer.h"

#if defined(CKR_OBS_DISABLED)
#define CKR_OBS_ENABLED 0
#else
#define CKR_OBS_ENABLED 1
#endif

#define CKR_OBS_CONCAT_INNER(a, b) a##b
#define CKR_OBS_CONCAT(a, b) CKR_OBS_CONCAT_INNER(a, b)

namespace ckr {
namespace obs {

/// What CKR_OBS_SCOPED_TIMER declares when obs is disabled: an empty,
/// trivially destructible object — the "zero-size hook" the disabled
/// build's test pins with static_asserts.
struct NullStageTimer {};

}  // namespace obs
}  // namespace ckr

#if CKR_OBS_ENABLED

/// Adds 1 to the named global counter.
#define CKR_OBS_COUNTER_INC(name) CKR_OBS_COUNTER_ADD(name, 1)

/// Adds `delta` (converted to uint64_t) to the named global counter.
#define CKR_OBS_COUNTER_ADD(name, delta)                            \
  do {                                                              \
    static ::ckr::obs::Counter* ckr_obs_counter_ =                  \
        ::ckr::obs::MetricRegistry::Global().GetCounter(name);      \
    ckr_obs_counter_->Add(static_cast<uint64_t>(delta));            \
  } while (0)

/// Sets the named global gauge.
#define CKR_OBS_GAUGE_SET(name, value)                              \
  do {                                                              \
    static ::ckr::obs::Gauge* ckr_obs_gauge_ =                      \
        ::ckr::obs::MetricRegistry::Global().GetGauge(name);        \
    ckr_obs_gauge_->Set(static_cast<double>(value));                \
  } while (0)

/// Records `value` into the named global histogram (default latency
/// buckets on first use).
#define CKR_OBS_HISTOGRAM_RECORD(name, value)                       \
  do {                                                              \
    static ::ckr::obs::Histogram* ckr_obs_hist_ =                   \
        ::ckr::obs::MetricRegistry::Global().GetHistogram(name);    \
    ckr_obs_hist_->Record(static_cast<double>(value));              \
  } while (0)

/// Declares an RAII timer recording this scope's duration into the named
/// global histogram via the registry's clock.
#define CKR_OBS_SCOPED_TIMER(name)                                  \
  ::ckr::obs::StageTimer CKR_OBS_CONCAT(ckr_obs_scoped_timer_,      \
                                        __COUNTER__)(               \
      &::ckr::obs::MetricRegistry::Global(), name)

#else  // !CKR_OBS_ENABLED

// Unevaluated operands (the CKR_DCHECK release pattern): no codegen, no
// side effects, no "unused variable" warnings for operands only used
// here.
#define CKR_OBS_COUNTER_INC(name) ((void)sizeof(name))
#define CKR_OBS_COUNTER_ADD(name, delta) \
  ((void)sizeof(((void)(name), (void)(delta), 0)))
#define CKR_OBS_GAUGE_SET(name, value) \
  ((void)sizeof(((void)(name), (void)(value), 0)))
#define CKR_OBS_HISTOGRAM_RECORD(name, value) \
  ((void)sizeof(((void)(name), (void)(value), 0)))
#define CKR_OBS_SCOPED_TIMER(name)                                  \
  [[maybe_unused]] ::ckr::obs::NullStageTimer CKR_OBS_CONCAT(       \
      ckr_obs_scoped_timer_, __COUNTER__) {}

#endif  // CKR_OBS_ENABLED

#endif  // CKR_OBS_HOOKS_H_
