// RAII stage timing over the injectable clock. A StageTimer reads the
// clock once at construction and once at Stop() (or destruction) and
// records the elapsed seconds into a histogram. With a FakeClock the
// recorded value is exactly the injected advance, so snapshot tests are
// bit-stable.
#ifndef CKR_OBS_STAGE_TIMER_H_
#define CKR_OBS_STAGE_TIMER_H_

#include <string_view>

#include "obs/metrics.h"

namespace ckr {
namespace obs {

/// Times one scope; records into `histogram` using `clock`. Movable-from
/// never, copyable never — one measurement per object.
class StageTimer {
 public:
  StageTimer(Histogram* histogram, const Clock* clock)
      : histogram_(histogram),
        clock_(clock),
        start_nanos_(clock->NowNanos()) {}

  /// Resolves the histogram (default latency buckets) and clock from a
  /// registry.
  StageTimer(MetricRegistry* registry, std::string_view name)
      : StageTimer(registry->GetHistogram(name), &registry->clock()) {}

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  ~StageTimer() { Stop(); }

  /// Records once and returns the elapsed seconds; later calls (and the
  /// destructor) are no-ops returning the same elapsed value.
  double Stop() {
    if (!stopped_) {
      stopped_ = true;
      elapsed_seconds_ = clock_->SecondsSince(start_nanos_);
      histogram_->Record(elapsed_seconds_);
    }
    return elapsed_seconds_;
  }

 private:
  Histogram* histogram_;
  const Clock* clock_;
  int64_t start_nanos_;
  double elapsed_seconds_ = 0.0;
  bool stopped_ = false;
};

}  // namespace obs
}  // namespace ckr

#endif  // CKR_OBS_STAGE_TIMER_H_
