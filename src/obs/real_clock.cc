// The single sanctioned wall-clock read in src/ (see clock.h). Every
// other translation unit gets time through the ckr::Clock interface, so
// ckr_lint rule R1 stays enforceable tree-wide: this file carries the
// one rule-scoped suppression instead of a global exemption.
#include "obs/clock.h"

#include <chrono>

namespace ckr {
namespace {

class SteadyClock final : public Clock {
 public:
  int64_t NowNanos() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now()  // ckr-lint: allow(R1)
                   .time_since_epoch())
        .count();
  }
};

}  // namespace

const Clock& RealClock() {
  static const SteadyClock clock;
  return clock;
}

}  // namespace ckr
