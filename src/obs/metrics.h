// ckr_obs — the low-overhead observability layer.
//
// A MetricRegistry owns named counters, gauges and fixed-bucket
// histograms. Metric objects are created once (mutex-protected) and then
// updated lock-free with relaxed atomics, so hot paths pay one atomic
// add per event; call sites cache the metric pointer in a function-local
// static (see hooks.h). SnapshotJson() renders the whole registry as
// JSON with sorted keys and fixed number formatting — byte-stable given
// the same metric values, which the FakeClock tests rely on.
//
// Durations flow through the registry's injected ckr::Clock (clock.h),
// keeping the determinism contract: tests swap in a FakeClock and the
// snapshot is bit-identical run to run.
#ifndef CKR_OBS_METRICS_H_
#define CKR_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/clock.h"

namespace ckr {
namespace obs {

/// Monotonically increasing event count. Thread-safe.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  // ckr-lint: unguarded(lock-free relaxed counter cell; Add is the sync)
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value. Thread-safe.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  // ckr-lint: unguarded(lock-free last-write-wins cell)
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. A value lands in the first bucket whose upper
/// bound it does not exceed (v <= bounds[i]); values above the last
/// bound land in the overflow bucket, so there are bounds.size() + 1
/// buckets. Bounds are fixed at construction — no rebinning, no
/// allocation on Record(). Thread-safe.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Record(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  size_t NumBuckets() const { return counts_.size(); }
  uint64_t BucketCount(size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

  /// Estimated q-quantile (q in [0, 1]) from the bucket counts, with
  /// deterministic linear interpolation inside the covering bucket:
  /// the target rank is q * total; the covering bucket is the first whose
  /// cumulative count reaches it, and the estimate interpolates between
  /// the bucket's lower and upper bound by the rank's fractional position
  /// within the bucket. The first bucket's lower bound is 0 (latencies);
  /// ranks landing in the overflow bucket report the last finite bound —
  /// the histogram cannot resolve beyond it. A zero-sample histogram
  /// returns 0.0 for every q — callers need no empty check before
  /// rendering dashboards or snapshots, and the value is pinned by
  /// obs_test so it cannot drift to NaN or a sentinel.
  /// The counts are read bucket-by-bucket with relaxed loads, so under
  /// concurrent Record() the estimate is approximate; quiescent
  /// histograms give exact, reproducible values (the bench/test regime).
  double Percentile(double q) const;

 private:
  std::vector<double> bounds_;  ///< Sorted ascending upper bounds.
  /// bounds_.size() + 1 buckets.
  // ckr-lint: unguarded(per-bucket relaxed counters; Record is lock-free)
  std::vector<std::atomic<uint64_t>> counts_;
  // ckr-lint: unguarded(relaxed total; approximate under concurrency)
  std::atomic<uint64_t> count_{0};
  // ckr-lint: unguarded(relaxed sum; approximate under concurrency)
  std::atomic<double> sum_{0.0};
};

/// Default histogram bounds for stage latencies, in seconds (1us..10s,
/// decade steps). Fixed so snapshots from different processes line up.
const std::vector<double>& DefaultLatencyBoundsSeconds();

/// Owns metrics by name. Creation locks; updates through the returned
/// pointers are lock-free. Metric pointers stay valid for the registry's
/// lifetime (the global registry is never destroyed).
class MetricRegistry {
 public:
  explicit MetricRegistry(const Clock* clock = &RealClock())
      : clock_(clock) {}

  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Finds or creates. A name maps to one metric kind: requesting an
  /// existing name as a different kind returns that name with a
  /// "!kind" suffix instead (observability must never abort serving).
  Counter* GetCounter(std::string_view name) CKR_EXCLUDES(metrics_mu_);
  Gauge* GetGauge(std::string_view name) CKR_EXCLUDES(metrics_mu_);
  /// `bounds` applies only on first creation of `name`.
  Histogram* GetHistogram(std::string_view name,
                          const std::vector<double>& bounds =
                              DefaultLatencyBoundsSeconds())
      CKR_EXCLUDES(metrics_mu_);

  const Clock& clock() const {
    return *clock_.load(std::memory_order_acquire);
  }
  /// Swaps the time source (tests only; callers serialize against
  /// concurrent timer use).
  void SetClockForTesting(const Clock* clock) {
    clock_.store(clock, std::memory_order_release);
  }

  /// Deterministic JSON: object keys sorted bytewise, doubles printed
  /// with round-trip precision. Counters under "counters", gauges under
  /// "gauges", histograms under "histograms" with per-bucket counts.
  std::string SnapshotJson() const CKR_EXCLUDES(metrics_mu_);

  /// Zeroes every metric (names and bucket layouts survive). Tests only.
  void ResetAllForTesting() CKR_EXCLUDES(metrics_mu_);

  /// The process-wide registry every CKR_OBS_* hook reports into.
  /// Intentionally leaked so hooks in static destructors stay safe.
  static MetricRegistry& Global();

 private:
  /// Guards metric creation and snapshots; updates through returned
  /// pointers stay lock-free. Ranked: a registry lookup may log, never
  /// the reverse.
  mutable Mutex metrics_mu_{LockRank::kMetricsRegistry};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      CKR_GUARDED_BY(metrics_mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      CKR_GUARDED_BY(metrics_mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      CKR_GUARDED_BY(metrics_mu_);
  // ckr-lint: unguarded(acquire/release swapped test seam; see setter)
  std::atomic<const Clock*> clock_;
};

}  // namespace obs
}  // namespace ckr

#endif  // CKR_OBS_METRICS_H_
