// Injectable time source for the observability layer (and for every
// component that reports durations).
//
// The repo's determinism contract (ckr_lint rule R1) bans wall-clock
// reads outside bench/. Observability needs durations, so time enters
// the library through exactly one seam: the ckr::Clock interface. Tests
// inject a FakeClock and get bit-stable metric snapshots; production
// uses RealClock(), whose steady_clock read lives in
// src/obs/real_clock.cc behind a rule-scoped ckr-lint suppression — the
// single sanctioned wall-clock read in src/.
#ifndef CKR_OBS_CLOCK_H_
#define CKR_OBS_CLOCK_H_

#include <cstdint>

namespace ckr {

/// Monotonic time source. Implementations must be thread-safe.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Nanoseconds since an arbitrary fixed origin; never decreases.
  virtual int64_t NowNanos() const = 0;

  /// Convenience: seconds elapsed since an earlier NowNanos() reading.
  double SecondsSince(int64_t start_nanos) const {
    return static_cast<double>(NowNanos() - start_nanos) / 1e9;
  }
};

/// Deterministic clock for tests: time moves only when advanced.
/// Thread-compatible (callers serialize advances against readers).
class FakeClock final : public Clock {
 public:
  explicit FakeClock(int64_t start_nanos = 0) : now_nanos_(start_nanos) {}

  int64_t NowNanos() const override { return now_nanos_; }

  void AdvanceNanos(int64_t nanos) { now_nanos_ += nanos; }
  void AdvanceSeconds(double seconds) {
    now_nanos_ += static_cast<int64_t>(seconds * 1e9);
  }
  void SetNanos(int64_t nanos) { now_nanos_ = nanos; }

 private:
  int64_t now_nanos_ = 0;
};

/// The process-wide monotonic clock (std::chrono::steady_clock).
/// Defined in real_clock.cc — the only translation unit in src/ allowed
/// to read the wall clock.
const Clock& RealClock();

}  // namespace ckr

#endif  // CKR_OBS_CLOCK_H_
