#include "obs/metrics.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace ckr {
namespace obs {
namespace {

/// Round-trip double rendering; fixed format keeps snapshots byte-stable.
std::string Num(double v) { return StrFormat("%.17g", v); }

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  CKR_DCHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::Record(double value) {
  size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

double Histogram::Percentile(double q) const {
  q = std::min(1.0, std::max(0.0, q));
  // Total from the bucket counts (not count_): bucket-consistent even if
  // a concurrent Record() sits between its two increments.
  uint64_t total = 0;
  for (size_t i = 0; i < counts_.size(); ++i) total += BucketCount(i);
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double in_bucket = static_cast<double>(BucketCount(i));
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket >= target) {
      if (i >= bounds_.size()) return bounds_.empty() ? 0.0 : bounds_.back();
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double fraction = (target - cumulative) / in_bucket;
      return lo + fraction * (hi - lo);
    }
    cumulative += in_bucket;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& DefaultLatencyBoundsSeconds() {
  static const std::vector<double> kBounds = {1e-6, 1e-5, 1e-4, 1e-3,
                                              1e-2, 1e-1, 1.0,  10.0};
  return kBounds;
}

Counter* MetricRegistry::GetCounter(std::string_view name) {
  MutexLock lock(&metrics_mu_);
  std::string key(name);
  if (gauges_.count(key) != 0 || histograms_.count(key) != 0) {
    key += "!counter";
  }
  auto& slot = counters_[key];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricRegistry::GetGauge(std::string_view name) {
  MutexLock lock(&metrics_mu_);
  std::string key(name);
  if (counters_.count(key) != 0 || histograms_.count(key) != 0) {
    key += "!gauge";
  }
  auto& slot = gauges_[key];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricRegistry::GetHistogram(std::string_view name,
                                        const std::vector<double>& bounds) {
  MutexLock lock(&metrics_mu_);
  std::string key(name);
  if (counters_.count(key) != 0 || gauges_.count(key) != 0) {
    key += "!histogram";
  }
  auto& slot = histograms_[key];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return slot.get();
}

std::string MetricRegistry::SnapshotJson() const {
  MutexLock lock(&metrics_mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += StrFormat("%s\n    \"%s\": %llu", first ? "" : ",", name.c_str(),
                     static_cast<unsigned long long>(counter->Value()));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += StrFormat("%s\n    \"%s\": %s", first ? "" : ",", name.c_str(),
                     Num(gauge->Value()).c_str());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    out += StrFormat("%s\n    \"%s\": {\"count\": %llu, \"sum\": %s, "
                     "\"buckets\": [",
                     first ? "" : ",", name.c_str(),
                     static_cast<unsigned long long>(hist->Count()),
                     Num(hist->Sum()).c_str());
    for (size_t i = 0; i < hist->NumBuckets(); ++i) {
      std::string le = i < hist->bounds().size()
                           ? "\"le\": " + Num(hist->bounds()[i])
                           : std::string("\"le\": \"+Inf\"");
      out += StrFormat("%s{%s, \"count\": %llu}", i == 0 ? "" : ", ",
                       le.c_str(),
                       static_cast<unsigned long long>(hist->BucketCount(i)));
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

void MetricRegistry::ResetAllForTesting() {
  MutexLock lock(&metrics_mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

MetricRegistry& MetricRegistry::Global() {
  // Leaked: hooks may fire from static destructors after main().
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace ckr
