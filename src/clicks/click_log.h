// ORCAS-regime click-log synthesis: a streaming, seeded generator of
// clicked (query, document) pairs at search-engine scale.
//
// The paper mined its signals from Yahoo!'s click pipeline; the public
// analogue is ORCAS (18M clicked query-document pairs for 10M distinct
// queries over a 3.2M-doc corpus — see PAPERS.md). This module reproduces
// that *shape* over the synthetic world:
//
//  * users are Zipfian — a heavy head of power users issues most clicks;
//  * queries are entity/concept queries drawn by latent popularity (the
//    same demand model the query-log generator uses);
//  * the clicked document follows a geometric position-bias over a stable
//    per-query "result list": rank r of query q deterministically maps to
//    one document of q's home topic, so click mass per query concentrates
//    on a few URLs exactly like ORCAS' clicked-URL histograms;
//  * a small off-topic mass models misclicks and exploratory traffic.
//
// Every pair is derived from its own counter-seeded RNG stream, so the log
// is bit-identical for any worker count, chunk size, or generation order,
// and costs O(chunk) memory no matter how many pairs are drawn.
#ifndef CKR_CLICKS_CLICK_LOG_H_
#define CKR_CLICKS_CLICK_LOG_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/status.h"
#include "corpus/doc_generator.h"
#include "corpus/document.h"
#include "corpus/world.h"

namespace ckr {

/// Shape knobs of the synthetic click log. Defaults follow the ORCAS
/// regime scaled by the corpus: ~6 clicked pairs per document.
struct ClickLogConfig {
  uint64_t seed = 20201013;      // ORCAS release date-ish.
  uint64_t num_pairs = 0;        ///< Click events; 0 = 6 * corpus size.
  uint64_t num_users = 1 << 16;  ///< User population (Zipfian activity).
  double user_zipf = 1.07;       ///< Exponent of the user activity tail.
  /// Geometric position bias: P(clicked rank >= r+1 | >= r). ~0.62 puts
  /// two thirds of clicks on the top three results.
  double rank_continue = 0.62;
  uint32_t max_rank = 20;        ///< Deepest clickable rank.
  double off_topic_prob = 0.06;  ///< Misclick / exploratory mass.
  size_t chunk_pairs = 8192;     ///< Pairs materialized at once.
  unsigned workers = 1;          ///< Threads generating within a chunk.

  [[nodiscard]] Status Validate() const;
};

/// One clicked query-document pair (the ORCAS record shape: the query is
/// an entity/concept of the world, the document a member of the corpus).
struct ClickRecord {
  uint32_t user = 0;
  EntityId query = kInvalidEntity;
  DocId doc = 0;
};

/// Aggregate statistics of a streamed log (the bench scale record).
struct ClickLogStats {
  uint64_t pairs = 0;
  uint64_t distinct_query_doc_pairs = 0;
  uint64_t distinct_queries = 0;
  uint64_t distinct_docs = 0;
  uint64_t distinct_users = 0;
};

/// Streams a click log over a generated corpus. Immutable after
/// construction; Stream() is safe to call concurrently.
class ClickLogGenerator {
 public:
  /// `world` must outlive the generator. The corpus is identified by
  /// (kind, num_docs): per-document topics are replayed through
  /// DocGenerator::DocTopic, so no document text is ever materialized.
  ClickLogGenerator(const World& world, Document::Kind kind, size_t num_docs,
                    const ClickLogConfig& config);

  /// Streams every pair chunk by chunk in ascending pair-index order.
  /// Within a chunk pairs are drawn in parallel into per-slot outputs;
  /// the consumed spans are identical for any worker count. Returns
  /// InvalidArgument on nonsensical configs.
  [[nodiscard]] Status Stream(
      const std::function<void(Span<const ClickRecord>)>& consume) const;

  /// Total pairs the configured stream produces.
  uint64_t NumPairs() const { return num_pairs_; }

  const ClickLogConfig& config() const { return config_; }

 private:
  ClickRecord DrawPair(uint64_t pair_index) const;

  const World& world_;
  ClickLogConfig config_;
  uint64_t num_pairs_ = 0;
  size_t num_docs_ = 0;
  ZipfSampler user_sampler_;
  std::vector<double> entity_cdf_;          ///< Popularity-cumulative.
  std::vector<std::vector<DocId>> topic_docs_;  ///< Per-topic doc ids.
};

/// Streams the whole log once and aggregates its statistics.
[[nodiscard]] StatusOr<ClickLogStats> CollectClickLogStats(
    const ClickLogGenerator& log);

}  // namespace ckr

#endif  // CKR_CLICKS_CLICK_LOG_H_
