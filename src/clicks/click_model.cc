#include "clicks/click_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/hash.h"

namespace ckr {

ClickSimulator::ClickSimulator(const World& world,
                               const ClickModelConfig& config)
    : world_(world), config_(config) {}

std::pair<double, double> ClickSimulator::Latents(
    const Document& story, const std::string& key) const {
  EntityId id = world_.FindByKey(key);
  if (id == kInvalidEntity) {
    return {config_.unknown_interestingness, config_.unknown_relevance};
  }
  const Entity& e = world_.entity(id);
  double r = story.TruthRelevance(id);
  if (r == 0.0) {
    // The surface occurred by chance (not planted): weak topical tie.
    bool on_topic = e.primary_topic == story.topic ||
                    e.secondary_topic == story.topic;
    r = on_topic ? 0.25 : config_.unknown_relevance;
  }
  return {e.interestingness, r};
}

double ClickSimulator::ClickProbability(const Document& story,
                                        const std::string& key,
                                        size_t position, Rng& rng) const {
  auto [g, r] = Latents(story, key);
  double pos_frac = story.text.empty()
                        ? 0.0
                        : static_cast<double>(position) /
                              static_cast<double>(story.text.size());
  double bias = std::exp(-config_.position_decay * pos_frac);
  double quality = config_.relevance_weight * r +
                   config_.interest_weight * g +
                   config_.interaction_weight * r * g;
  quality = std::max(config_.quality_floor,
                     quality - config_.quality_threshold);
  quality = std::pow(quality, config_.quality_exponent);
  double noise = std::exp(config_.noise_sigma * rng.NextGaussian());
  double p = config_.base_ctr * bias * quality * noise;
  return std::min(0.5, std::max(0.0, p));
}

StoryReport ClickSimulator::Simulate(const Document& story,
                                     const std::vector<Detection>& detections,
                                     double view_scale) const {
  // Per-story stream keyed by story id: stable under re-simulation.
  Rng rng(Mix64(HashCombine(config_.seed, story.id)));

  StoryReport report;
  report.story = story.id;
  report.topic = story.topic;
  double v = config_.mean_views *
             std::exp(config_.views_sigma * rng.NextGaussian()) * view_scale;
  report.views = static_cast<uint64_t>(std::max(1.0, v));

  // Collapse repeated keys to the earliest occurrence.
  std::unordered_map<std::string, size_t> first_index;
  for (const Detection& d : detections) {
    if (d.type == EntityType::kPattern) continue;  // Not ranked/tracked.
    auto it = first_index.find(d.key);
    if (it != first_index.end()) continue;
    first_index[d.key] = report.annotations.size();
    AnnotationRecord rec;
    rec.key = d.key;
    rec.type = d.type;
    rec.subtype = d.subtype;
    rec.from_dictionary = d.from_dictionary;
    rec.unit_score = d.unit_score;
    rec.position = d.begin;
    rec.views = report.views;
    report.annotations.push_back(std::move(rec));
  }

  for (AnnotationRecord& rec : report.annotations) {
    double p = ClickProbability(story, rec.key, rec.position, rng);
    // Binomial(views, p): direct Bernoulli loop for small view counts,
    // normal approximation above that.
    if (report.views <= 4096) {
      uint64_t clicks = 0;
      for (uint64_t i = 0; i < report.views; ++i) {
        if (rng.NextBernoulli(p)) ++clicks;
      }
      rec.clicks = clicks;
    } else {
      double mean = static_cast<double>(report.views) * p;
      double sd = std::sqrt(mean * (1.0 - p));
      double c = mean + sd * rng.NextGaussian();
      rec.clicks = static_cast<uint64_t>(
          std::min(static_cast<double>(report.views), std::max(0.0, c)));
    }
  }
  return report;
}

std::vector<StoryReport> FilterReports(const std::vector<StoryReport>& reports,
                                       const ReportFilter& filter) {
  std::vector<StoryReport> kept;
  for (const StoryReport& r : reports) {
    if (r.views < filter.min_views) continue;
    if (r.annotations.size() < filter.min_concepts) continue;
    uint64_t top = 0;
    for (const AnnotationRecord& a : r.annotations) {
      top = std::max(top, a.clicks);
    }
    if (top < filter.min_top_clicks) continue;
    kept.push_back(r);
  }
  return kept;
}

}  // namespace ckr
