#include "clicks/click_log.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "common/parallel.h"

namespace ckr {

Status ClickLogConfig::Validate() const {
  if (num_users == 0) return Status::InvalidArgument("num_users must be > 0");
  if (chunk_pairs == 0) {
    return Status::InvalidArgument("chunk_pairs must be > 0");
  }
  if (max_rank == 0) return Status::InvalidArgument("max_rank must be > 0");
  if (rank_continue < 0.0 || rank_continue >= 1.0) {
    return Status::InvalidArgument("rank_continue must be in [0,1)");
  }
  if (off_topic_prob < 0.0 || off_topic_prob > 1.0) {
    return Status::InvalidArgument("off_topic_prob must be in [0,1]");
  }
  return Status::OK();
}

ClickLogGenerator::ClickLogGenerator(const World& world, Document::Kind kind,
                                     size_t num_docs,
                                     const ClickLogConfig& config)
    : world_(world),
      config_(config),
      num_docs_(num_docs),
      user_sampler_(static_cast<size_t>(config.num_users), config.user_zipf) {
  num_pairs_ = config.num_pairs != 0
                   ? config.num_pairs
                   : static_cast<uint64_t>(num_docs) * 6;
  // Latent query demand: the same popularity weights the query-log
  // generator samples from, folded into a cumulative table so a draw is
  // one binary search instead of a linear scan over the concept universe.
  entity_cdf_.reserve(world.NumEntities());
  double total = 0.0;
  for (const Entity& e : world.entities()) {
    total += 0.02 + e.popularity;
    entity_cdf_.push_back(total);
  }
  // Per-topic document pools, replayed from the per-document RNG streams —
  // no document is ever assembled.
  DocGenerator gen(world);
  topic_docs_.resize(world.config().num_topics);
  for (size_t d = 0; d < num_docs; ++d) {
    const int topic = gen.DocTopic(kind, static_cast<DocId>(d));
    topic_docs_[static_cast<size_t>(topic)].push_back(static_cast<DocId>(d));
  }
}

ClickRecord ClickLogGenerator::DrawPair(uint64_t pair_index) const {
  // Counter-seeded per-pair stream: the record is a pure function of
  // (seed, pair_index), independent of worker count and draw order.
  Rng rng(Mix64(HashCombine(config_.seed, pair_index)));
  ClickRecord rec;
  rec.user = static_cast<uint32_t>(user_sampler_.Sample(rng) - 1);
  const double u = rng.NextDouble() * entity_cdf_.back();
  const size_t pick = static_cast<size_t>(
      std::lower_bound(entity_cdf_.begin(), entity_cdf_.end(), u) -
      entity_cdf_.begin());
  rec.query = static_cast<EntityId>(
      std::min(pick, entity_cdf_.size() - 1));
  uint32_t rank = 0;
  while (rank + 1 < config_.max_rank &&
         rng.NextBernoulli(config_.rank_continue)) {
    ++rank;
  }
  const Entity& entity = world_.entity(rec.query);
  const bool off_topic =
      entity.is_generic || rng.NextBernoulli(config_.off_topic_prob);
  size_t topic = static_cast<size_t>(entity.primary_topic);
  if (entity.secondary_topic >= 0 && rng.NextBernoulli(0.25)) {
    topic = static_cast<size_t>(entity.secondary_topic);
  }
  const std::vector<DocId>& pool = topic_docs_[topic];
  if (off_topic || pool.empty()) {
    rec.doc = static_cast<DocId>(rng.NextBounded(num_docs_));
  } else {
    // Rank r of query q always resolves to the same document: the stable
    // "result list" that concentrates click mass per query on a few URLs.
    const uint64_t slot = Mix64(HashCombine(
        config_.seed ^ 0x0cca50cca5ULL,
        (static_cast<uint64_t>(rec.query) << 8) | rank));
    rec.doc = pool[static_cast<size_t>(slot % pool.size())];
  }
  return rec;
}

Status ClickLogGenerator::Stream(
    const std::function<void(Span<const ClickRecord>)>& consume) const {
  CKR_RETURN_IF_ERROR(config_.Validate());
  if (num_docs_ == 0) {
    return Status::InvalidArgument("click log needs a non-empty corpus");
  }
  std::vector<ClickRecord> chunk(
      static_cast<size_t>(std::min<uint64_t>(config_.chunk_pairs, num_pairs_)));
  for (uint64_t base = 0; base < num_pairs_; base += config_.chunk_pairs) {
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(config_.chunk_pairs, num_pairs_ - base));
    ParallelForWorkers(n, config_.workers, [&](unsigned worker, size_t i) {
      (void)worker;
      chunk[i] = DrawPair(base + static_cast<uint64_t>(i));
    });
    consume(Span<const ClickRecord>(chunk.data(), n));
  }
  return Status::OK();
}

StatusOr<ClickLogStats> CollectClickLogStats(const ClickLogGenerator& log) {
  ClickLogStats stats;
  std::unordered_set<uint64_t> pairs;
  std::unordered_set<uint32_t> queries;
  std::unordered_set<uint32_t> docs;
  std::unordered_set<uint32_t> users;
  Status s = log.Stream([&](Span<const ClickRecord> chunk) {
    for (const ClickRecord& r : chunk) {
      ++stats.pairs;
      pairs.insert((static_cast<uint64_t>(r.query) << 32) |
                   static_cast<uint64_t>(r.doc));
      queries.insert(r.query);
      docs.insert(r.doc);
      users.insert(r.user);
    }
  });
  if (!s.ok()) return s;
  stats.distinct_query_doc_pairs = pairs.size();
  stats.distinct_queries = queries.size();
  stats.distinct_docs = docs.size();
  stats.distinct_users = users.size();
  return stats;
}

}  // namespace ckr
