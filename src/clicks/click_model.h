// Click-through data simulation — the substitute for the Contextual
// Shortcuts tracking pipeline (paper Section III).
//
// For each sampled news story the platform records: the story text, the
// annotated entities with metadata (taxonomy type, position), the number
// of story views, and per-entity click counts. This module generates that
// data from the world's latent ground truth:
//
//   P(click | view, annotation) =
//     base_ctr * position_bias(position) *
//     (w_r * relevance + w_g * interestingness + w_rg * relevance *
//      interestingness) * lognormal noise
//
// The learner never sees the latents — only the resulting counts, exactly
// like the paper's pipeline sees CTRs.
#ifndef CKR_CLICKS_CLICK_MODEL_H_
#define CKR_CLICKS_CLICK_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "corpus/document.h"
#include "corpus/world.h"
#include "detect/entity_detector.h"

namespace ckr {

/// Behavioural knobs of the simulated audience.
struct ClickModelConfig {
  uint64_t seed = 99;
  double base_ctr = 0.6;        ///< Scale of the click probability.
  /// Convexity of quality -> clicks: users strongly prefer the few truly
  /// compelling entities, so click propensity grows super-linearly in
  /// quality (the paper's production data shows most annotations earn
  /// almost no clicks).
  double quality_exponent = 1.6;
  /// Subtractive quality threshold: annotations below it are essentially
  /// never clicked (the production tail of Section V-C earns ~no clicks).
  double quality_threshold = 0.18;
  double quality_floor = 0.01;  ///< Residual propensity below threshold.
  double relevance_weight = 0.45;
  double interest_weight = 0.30;
  double interaction_weight = 0.25;  ///< Weight of the r*g product term.
  double position_decay = 0.9;   ///< Exponential early-position bias.
  double noise_sigma = 0.68;     ///< Lognormal multiplicative noise.
  double mean_views = 90.0;      ///< Median sampled views per story.
  double views_sigma = 0.8;      ///< Lognormal spread of views.
  /// Latents assumed for annotations that match no world entity (noise
  /// units assembled by chance).
  double unknown_interestingness = 0.04;
  double unknown_relevance = 0.06;
};

/// One annotated entity on one story, with its tracking counts.
struct AnnotationRecord {
  std::string key;            ///< Normalized concept key.
  EntityType type = EntityType::kConcept;
  int subtype = 0;
  bool from_dictionary = false;
  double unit_score = 0.0;
  size_t position = 0;        ///< Byte offset of the first occurrence.
  uint64_t views = 0;         ///< == story views for every annotation.
  uint64_t clicks = 0;

  double Ctr() const {
    return views == 0 ? 0.0
                      : static_cast<double>(clicks) / static_cast<double>(views);
  }
};

/// The weekly tracking report for one story.
struct StoryReport {
  DocId story = 0;
  int topic = 0;
  uint64_t views = 0;
  std::vector<AnnotationRecord> annotations;  ///< One per distinct key.
};

/// The data-cleaning rules of Section V-A.1.
struct ReportFilter {
  uint64_t min_views = 30;
  size_t min_concepts = 2;         ///< "more than one concept".
  uint64_t min_top_clicks = 4;     ///< ">= one concept with > 3 clicks".
};

/// Generates tracking reports. Deterministic in (config.seed, story id).
class ClickSimulator {
 public:
  ClickSimulator(const World& world, const ClickModelConfig& config = {});

  /// Simulates traffic on a story annotated with `detections` (pattern
  /// detections are skipped: the paper excludes them from ranking).
  /// Multiple occurrences of the same key collapse into one annotation at
  /// the earliest position. `view_scale` multiplies the sampled views
  /// (used by the production-replay experiment).
  StoryReport Simulate(const Document& story,
                       const std::vector<Detection>& detections,
                       double view_scale = 1.0) const;

  /// Click probability for a single annotation (exposed for tests and the
  /// production replay).
  double ClickProbability(const Document& story, const std::string& key,
                          size_t position, Rng& rng) const;

  const ClickModelConfig& config() const { return config_; }

 private:
  /// Latent (interestingness, relevance) for a key on a story.
  std::pair<double, double> Latents(const Document& story,
                                    const std::string& key) const;

  const World& world_;
  ClickModelConfig config_;
};

/// Applies the Section V-A.1 cleaning rules; returns the surviving subset.
std::vector<StoryReport> FilterReports(const std::vector<StoryReport>& reports,
                                       const ReportFilter& filter = {});

}  // namespace ckr

#endif  // CKR_CLICKS_CLICK_MODEL_H_
