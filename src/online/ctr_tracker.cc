#include "online/ctr_tracker.h"

#include <algorithm>
#include <cmath>

namespace ckr {

CtrTracker::CtrTracker(const CtrTrackerConfig& config) : config_(config) {}

void CtrTracker::Record(std::string_view key, uint64_t views,
                        uint64_t clicks) {
  ConceptStats& s = stats_[std::string(key)];
  s.fresh_views += static_cast<double>(views);
  s.fresh_clicks += static_cast<double>(clicks);
  total_views_ += static_cast<double>(views);
  total_clicks_ += static_cast<double>(clicks);
}

void CtrTracker::Tick() {
  for (auto& [key, s] : stats_) {
    s.hist_views = s.hist_views * config_.decay + s.fresh_views;
    s.hist_clicks = s.hist_clicks * config_.decay + s.fresh_clicks;
    s.fresh_views = 0;
    s.fresh_clicks = 0;
  }
  total_views_ *= config_.decay;
  total_clicks_ *= config_.decay;
}

double CtrTracker::SystemCtr() const {
  // A weak global prior keeps the estimate sane before any traffic.
  return (total_clicks_ + 1.0) / (total_views_ + 100.0);
}

double CtrTracker::SmoothedCtr(std::string_view key) const {
  auto it = stats_.find(key);
  double system = SystemCtr();
  if (it == stats_.end()) return system;
  const ConceptStats& s = it->second;
  double views = s.hist_views + s.fresh_views;
  double clicks = s.hist_clicks + s.fresh_clicks;
  return (clicks + config_.prior_views * system) /
         (views + config_.prior_views);
}

double CtrTracker::Adjustment(std::string_view key) const {
  auto it = stats_.find(key);
  if (it == stats_.end()) return 0.0;
  double ratio = SmoothedCtr(key) / std::max(1e-12, SystemCtr());
  double log_ratio = std::log(std::max(1e-12, ratio));
  log_ratio = std::clamp(log_ratio, -config_.max_adjustment,
                         config_.max_adjustment);
  return config_.adjustment_weight * log_ratio;
}

double CtrTracker::SpikeStrength(const ConceptStats& s) const {
  if (s.fresh_views < config_.spike_min_views) return 0.0;
  double fresh_ctr = s.fresh_clicks / s.fresh_views;
  double hist_ctr = s.hist_views > 0 ? s.hist_clicks / s.hist_views : 0.0;
  double reference = std::max(hist_ctr, SystemCtr());
  if (reference <= 0) return 0.0;
  return fresh_ctr / reference;
}

bool CtrTracker::IsSpiking(std::string_view key) const {
  auto it = stats_.find(key);
  if (it == stats_.end()) return false;
  return SpikeStrength(it->second) >= config_.spike_ratio;
}

std::vector<std::string> CtrTracker::SpikingConcepts() const {
  std::vector<std::pair<double, std::string>> spiking;
  for (const auto& [key, s] : stats_) {
    double strength = SpikeStrength(s);
    if (strength >= config_.spike_ratio) spiking.emplace_back(strength, key);
  }
  std::sort(spiking.rbegin(), spiking.rend());
  std::vector<std::string> out;
  out.reserve(spiking.size());
  for (auto& [strength, key] : spiking) out.push_back(std::move(key));
  return out;
}

}  // namespace ckr
