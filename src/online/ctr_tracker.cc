#include "online/ctr_tracker.h"

#include <algorithm>
#include <cmath>

#include "obs/hooks.h"

namespace ckr {

CtrTracker::CtrTracker(const CtrTrackerConfig& config) : config_(config) {}

void CtrTracker::Record(std::string_view key, uint64_t views,
                        uint64_t clicks) {
  ConceptStats& s = stats_[std::string(key)];
  s.fresh_views += static_cast<double>(views);
  s.fresh_clicks += static_cast<double>(clicks);
  total_views_ += static_cast<double>(views);
  total_clicks_ += static_cast<double>(clicks);
  CKR_OBS_COUNTER_INC("ckr.online.ctr_records");
  CKR_OBS_COUNTER_ADD("ckr.online.ctr_views", views);
  CKR_OBS_COUNTER_ADD("ckr.online.ctr_clicks", clicks);
}

void CtrTracker::Tick() {
  for (auto& [key, s] : stats_) {
    s.hist_views = s.hist_views * config_.decay + s.fresh_views;
    s.hist_clicks = s.hist_clicks * config_.decay + s.fresh_clicks;
    s.fresh_views = 0;
    s.fresh_clicks = 0;
  }
  total_views_ *= config_.decay;
  total_clicks_ *= config_.decay;
  CKR_OBS_COUNTER_INC("ckr.online.ctr_ticks");
  CKR_OBS_GAUGE_SET("ckr.online.ctr_tracked_concepts",
                    static_cast<double>(stats_.size()));
}

double CtrTracker::SystemCtr() const {
  // A weak global prior keeps the estimate sane (and the denominator
  // nonzero) before any traffic: with zero observations this is exactly
  // the prior CTR of 0.01, never 0/0.
  return (total_clicks_ + 1.0) / (total_views_ + 100.0);
}

double CtrTracker::SmoothedCtr(std::string_view key) const {
  auto it = stats_.find(key);
  double system = SystemCtr();
  if (it == stats_.end()) return system;
  const ConceptStats& s = it->second;
  double views = s.hist_views + s.fresh_views;
  double clicks = s.hist_clicks + s.fresh_clicks;
  double denom = views + config_.prior_views;
  if (denom <= 0.0) {
    // Zero observations under a zero prior would be 0/0; a tracked-but-
    // unseen concept gets the same answer as an untracked one.
    CKR_OBS_COUNTER_INC("ckr.online.ctr_cold_start_neutral");
    return system;
  }
  return (clicks + config_.prior_views * system) / denom;
}

double CtrTracker::Adjustment(std::string_view key) const {
  auto it = stats_.find(key);
  if (it == stats_.end()) return 0.0;
  const double system = SystemCtr();
  const double smoothed = SmoothedCtr(key);
  if (!(smoothed > 0.0) || !(system > 0.0)) {
    // A smoothed CTR of exactly 0 (clicks=0 with a zero/tiny prior) is a
    // cold-start artifact, not evidence: ln(0) would slam the concept to
    // the full -max_adjustment. No evidence means neutral.
    CKR_OBS_COUNTER_INC("ckr.online.ctr_adjustment_neutralized");
    return 0.0;
  }
  double log_ratio = std::log(smoothed / system);
  if (log_ratio < -config_.max_adjustment ||
      log_ratio > config_.max_adjustment) {
    CKR_OBS_COUNTER_INC("ckr.online.ctr_adjustment_clamped");
  }
  log_ratio = std::clamp(log_ratio, -config_.max_adjustment,
                         config_.max_adjustment);
  return config_.adjustment_weight * log_ratio;
}

double CtrTracker::SpikeStrength(const ConceptStats& s) const {
  if (s.fresh_views < config_.spike_min_views) return 0.0;
  if (s.hist_views <= 0.0) {
    // First period for this concept — no decayed history exists yet, so
    // there is nothing to spike against. Without this gate any new
    // concept whose first-period CTR beats the system prior would
    // "spike" before a single Tick().
    CKR_OBS_COUNTER_INC("ckr.online.ctr_spike_no_history");
    return 0.0;
  }
  double fresh_ctr = s.fresh_clicks / s.fresh_views;
  double hist_ctr = s.hist_clicks / s.hist_views;
  double reference = std::max(hist_ctr, SystemCtr());
  if (reference <= 0) return 0.0;
  return fresh_ctr / reference;
}

bool CtrTracker::IsSpiking(std::string_view key) const {
  auto it = stats_.find(key);
  if (it == stats_.end()) return false;
  bool spiking = SpikeStrength(it->second) >= config_.spike_ratio;
  if (spiking) CKR_OBS_COUNTER_INC("ckr.online.ctr_spikes_detected");
  return spiking;
}

std::vector<std::string> CtrTracker::SpikingConcepts() const {
  std::vector<std::pair<double, std::string>> spiking;
  for (const auto& [key, s] : stats_) {
    double strength = SpikeStrength(s);
    if (strength >= config_.spike_ratio) spiking.emplace_back(strength, key);
  }
  std::sort(spiking.rbegin(), spiking.rend());
  std::vector<std::string> out;
  out.reserve(spiking.size());
  for (auto& [strength, key] : spiking) out.push_back(std::move(key));
  return out;
}

}  // namespace ckr
