// Online CTR adaptation — the paper's future-work extension (Section
// VIII): "the system would be able to respond to sudden fluctuations in
// click data, either boosting scores of low scoring concepts that are
// experiencing high CTRs, or punishing the scores of those experiencing
// low CTRs. This may allow the system to potentially react intelligently
// to world events in real time."
//
// CtrTracker aggregates live per-concept view/click counts in decayed
// time buckets. For each concept it exposes:
//  * a Bayesian-smoothed recent CTR (shrunk toward the system-wide CTR by
//    a pseudo-count prior, so sparsely observed concepts stay neutral);
//  * a score adjustment in log-odds form, clamped to a configurable band,
//    that the runtime ranker adds to the model score; and
//  * a spike detector comparing the current bucket against the decayed
//    history (the Section IV-C idea of features that "identify spikes or
//    changes in news articles and/or query logs").
#ifndef CKR_ONLINE_CTR_TRACKER_H_
#define CKR_ONLINE_CTR_TRACKER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/hash.h"

namespace ckr {

/// Tracker behaviour.
struct CtrTrackerConfig {
  /// Multiplier applied to accumulated counts at each Tick() (one tick =
  /// one aggregation period, e.g. a day). Smaller forgets faster.
  double decay = 0.7;
  /// Pseudo-views of the system-prior CTR blended into every estimate.
  double prior_views = 300.0;
  /// Adjustment band: the log-ratio of smoothed to system CTR is clamped
  /// to [-max_adjustment, +max_adjustment].
  double max_adjustment = 1.2;
  /// Weight of the adjustment when added to a model score.
  double adjustment_weight = 1.0;
  /// Spike detection: the current bucket must exceed this multiple of the
  /// decayed historical rate, with at least `spike_min_views` fresh views.
  double spike_ratio = 3.0;
  double spike_min_views = 50.0;
};

/// Accumulates click feedback and produces score adjustments.
/// Not thread-safe; callers serialize feeding and ticking.
class CtrTracker {
 public:
  explicit CtrTracker(const CtrTrackerConfig& config = {});

  /// Records traffic observed for a concept in the current period.
  void Record(std::string_view key, uint64_t views, uint64_t clicks);

  /// Closes the current period: folds fresh counts into the decayed
  /// history.
  void Tick();

  /// System-wide smoothed CTR over everything observed (history + fresh).
  double SystemCtr() const;

  /// Bayesian-smoothed recent CTR of one concept.
  double SmoothedCtr(std::string_view key) const;

  /// Additive score adjustment in [-max_adjustment, max_adjustment] *
  /// adjustment_weight: ln(smoothed / system), clamped. Unobserved
  /// concepts get 0, and so does any concept whose smoothed or system
  /// CTR is degenerate (<= 0, e.g. zero clicks under a zero prior):
  /// cold-start noise must never hand a concept the full punishment band.
  double Adjustment(std::string_view key) const;

  /// True if the concept's fresh-period CTR spikes above its decayed
  /// historical rate (a "world event" signal). A concept with no decayed
  /// history yet (nothing folded in by Tick()) never spikes — there is
  /// no baseline to spike against.
  bool IsSpiking(std::string_view key) const;

  /// Concepts currently spiking, most extreme first.
  std::vector<std::string> SpikingConcepts() const;

  size_t NumTracked() const { return stats_.size(); }

 private:
  struct ConceptStats {
    double hist_views = 0;
    double hist_clicks = 0;
    double fresh_views = 0;
    double fresh_clicks = 0;
  };

  /// Spike strength: fresh CTR / max(historical CTR, system CTR); < 1
  /// when not spiking or too little fresh data.
  double SpikeStrength(const ConceptStats& s) const;

  CtrTrackerConfig config_;
  // Transparent hasher: lookups run per annotation at serving time.
  std::unordered_map<std::string, ConceptStats, StringViewHash,
                     std::equal_to<>>
      stats_;
  double total_views_ = 0;
  double total_clicks_ = 0;
};

}  // namespace ckr

#endif  // CKR_ONLINE_CTR_TRACKER_H_
