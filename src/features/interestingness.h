// The interestingness feature space (paper Section IV-A, Table I).
//
//  1 freq_exact             queries exactly equal to the concept
//  2 freq_phrase_contained  queries containing the concept as a phrase
//  3 unit_score             mutual information of the concept's terms
//  4 searchengine_phrase    result count of the phrase query
//  5 concept_size           number of terms
//  6 number_of_chars        number of characters
//  7 subconcepts            subconcepts with > 2 terms and unit score > .25
//  8 high_level_type        taxonomy major type (one-hot encoded)
//  9 wiki_word_count        length of the Wikipedia article (0 if none)
//
// Count-valued features are log-scaled (ln(1+x)) before entering the
// model; the ranker additionally standardizes all dimensions on the
// training split.
#ifndef CKR_FEATURES_INTERESTINGNESS_H_
#define CKR_FEATURES_INTERESTINGNESS_H_

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "corpus/taxonomy.h"
#include "querylog/query_log.h"
#include "search/search_service.h"
#include "units/unit_extractor.h"
#include "wiki/wiki_store.h"

namespace ckr {

/// Ablation groups of Table III.
enum class FeatureGroup {
  kQueryLogs = 0,    ///< Features 1-3.
  kSearchResults,    ///< Feature 4.
  kTextBased,        ///< Features 5-7.
  kTaxonomy,         ///< Feature 8.
  kOther,            ///< Feature 9 (Wikipedia).
};

constexpr int kNumFeatureGroups = 5;

/// The raw (pre-standardization) interestingness vector. The one-hot type
/// block uses kNumEntityTypes slots; `none` (not in any dictionary) is all
/// zeros.
struct InterestingnessVector {
  double freq_exact = 0.0;
  double freq_phrase_contained = 0.0;
  double unit_score = 0.0;
  double searchengine_phrase = 0.0;
  double concept_size = 0.0;
  double number_of_chars = 0.0;
  double subconcepts = 0.0;
  std::array<double, kNumEntityTypes> high_level_type{};
  double wiki_word_count = 0.0;

  /// Flattens to the dense layout used by the ranker. `group_mask` is a
  /// bitmask over FeatureGroup; excluded groups contribute zeros (so the
  /// dimensionality — and the trained model shape — is stable across
  /// ablations).
  std::vector<double> Flatten(unsigned group_mask = 0x1f) const;

  /// Dimensionality of Flatten() output.
  static size_t Dim() { return 8 + kNumEntityTypes; }

  /// Human-readable names of the flattened dimensions.
  static std::vector<std::string> DimNames();
};

/// Bitmask with every group enabled.
constexpr unsigned kAllFeatureGroups = 0x1f;

/// Bitmask excluding one group (Table III's "- Query Logs" rows).
constexpr unsigned MaskWithout(FeatureGroup g) {
  return kAllFeatureGroups & ~(1u << static_cast<int>(g));
}

/// Offline extractor: computes the static vector of each concept from the
/// query log, the unit dictionary, the search engine and the wiki store.
class InterestingnessExtractor {
 public:
  InterestingnessExtractor(const QueryLog& log, const UnitDictionary& units,
                           const SearchService& search, const WikiStore& wiki);

  /// `key` is the normalized concept phrase; `type` its taxonomy type
  /// (kConcept when not in the editorial dictionaries).
  InterestingnessVector Extract(std::string_view key, EntityType type) const;

 private:
  const QueryLog& log_;
  const UnitDictionary& units_;
  const SearchService& search_;
  const WikiStore& wiki_;
};

}  // namespace ckr

#endif  // CKR_FEATURES_INTERESTINGNESS_H_
