#include "features/offline_miner.h"

#include <chrono>

#include "common/parallel.h"

namespace ckr {
namespace {

double WallSeconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -  // ckr-lint: allow(R1) wall-clock stats
                                       start)
      .count();
}

}  // namespace

OfflineConceptMiner::OfflineConceptMiner(
    const InterestingnessExtractor& interestingness,
    const RelevanceMiner& miner)
    : interestingness_(interestingness), miner_(miner) {}

std::vector<MinedConcept> OfflineConceptMiner::MineAll(
    const std::vector<ConceptKey>& concepts, size_t relevance_terms,
    unsigned num_threads, OfflineMiningStats* stats) const {
  const unsigned workers =
      num_threads == 0 ? DefaultWorkerCount() : num_threads;
  std::vector<MinedConcept> out(concepts.size());
  std::vector<double> busy(workers, 0.0);
  std::vector<uint64_t> mined(workers, 0);

  auto t0 = std::chrono::steady_clock::now();  // ckr-lint: allow(R1) wall-clock stats
  ParallelForWorkers(concepts.size(), workers, [&](unsigned worker,
                                                   size_t c) {
    auto item_start = std::chrono::steady_clock::now();  // ckr-lint: allow(R1) wall-clock stats
    const ConceptKey& item = concepts[c];
    MinedConcept& slot = out[c];
    slot.interestingness = interestingness_.Extract(item.key, item.type);
    for (size_t r = 0; r < kNumRelevanceResources; ++r) {
      slot.relevance[r] = miner_.Mine(
          item.key, static_cast<RelevanceResource>(r), relevance_terms);
    }
    busy[worker] += WallSeconds(item_start);
    ++mined[worker];
  });

  if (stats != nullptr) {
    stats->workers = workers;
    stats->wall_seconds = WallSeconds(t0);
    stats->worker_busy_seconds = std::move(busy);
    stats->worker_concepts = std::move(mined);
  }
  return out;
}

}  // namespace ckr
