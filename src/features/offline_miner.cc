#include "features/offline_miner.h"

#include "common/parallel.h"
#include "obs/hooks.h"

namespace ckr {

OfflineConceptMiner::OfflineConceptMiner(
    const InterestingnessExtractor& interestingness,
    const RelevanceMiner& miner)
    : interestingness_(interestingness), miner_(miner) {}

std::vector<MinedConcept> OfflineConceptMiner::MineAll(
    const std::vector<ConceptKey>& concepts, size_t relevance_terms,
    unsigned num_threads, OfflineMiningStats* stats) const {
  const unsigned workers =
      num_threads == 0 ? DefaultWorkerCount() : num_threads;
  std::vector<MinedConcept> out(concepts.size());
  std::vector<double> busy(workers, 0.0);
  std::vector<uint64_t> mined(workers, 0);

  const int64_t t0 = clock_->NowNanos();
  ParallelForWorkers(concepts.size(), workers, [&](unsigned worker,
                                                   size_t c) {
    const int64_t item_start = clock_->NowNanos();
    const ConceptKey& item = concepts[c];
    MinedConcept& slot = out[c];
    slot.interestingness = interestingness_.Extract(item.key, item.type);
    for (size_t r = 0; r < kNumRelevanceResources; ++r) {
      slot.relevance[r] = miner_.Mine(
          item.key, static_cast<RelevanceResource>(r), relevance_terms);
    }
    busy[worker] += clock_->SecondsSince(item_start);
    ++mined[worker];
  });
  const double wall_s = clock_->SecondsSince(t0);

  CKR_OBS_COUNTER_INC("ckr.offline.mine_all_calls");
  CKR_OBS_COUNTER_ADD("ckr.offline.concepts_mined", concepts.size());
  CKR_OBS_GAUGE_SET("ckr.offline.mine_workers", static_cast<double>(workers));
  CKR_OBS_HISTOGRAM_RECORD("ckr.offline.stage.mine_all_seconds", wall_s);

  if (stats != nullptr) {
    stats->workers = workers;
    stats->wall_seconds = wall_s;
    stats->worker_busy_seconds = std::move(busy);
    stats->worker_concepts = std::move(mined);
  }
  return out;
}

}  // namespace ckr
