// Relevance of a concept in a context (paper Section IV-B).
//
// Offline, for each concept c_i the miner extracts the top m=100 relevant
// context keywords relevantTerms_i = {(t_1, s_1), ..., (t_m, s_m)} from one
// of three resources: search engine snippets (tf*idf over the snippets of
// the top-100 results), Prisma feedback terms (tf*idf over the feedback
// "document"), or related query suggestions (score = sum_k
// ln(query_freq_k) * idf(term)). Terms are stemmed, lower-cased, and
// stripped of surrounding punctuation.
//
// At runtime the relevance score of a concept in a context is the
// co-occurrence mass of its pre-mined keywords in that context. Generic or
// low-quality concepts mine only low-scoring keywords (their snippet
// distribution does not cluster), so their score stays low in every
// context — the paper's "safety net" (discussion in Section IV-C and
// Table II).
#ifndef CKR_FEATURES_RELEVANCE_H_
#define CKR_FEATURES_RELEVANCE_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "corpus/term_dictionary.h"
#include "search/search_service.h"

namespace ckr {

/// The three mining resources of Section IV-B.1.
enum class RelevanceResource {
  kSnippets = 0,
  kPrisma,
  kQuerySuggestions,
};

std::string_view RelevanceResourceName(RelevanceResource r);

/// One mined keyword with its confidence score.
struct RelevantTerm {
  std::string term;   ///< Stemmed, lower-cased.
  double score = 0.0;
};

/// Mines relevantTerms_i for concepts from a chosen resource.
class RelevanceMiner {
 public:
  /// `stemmed_dict` must be a *stemmed* term dictionary (mined terms are
  /// stems, so idf lookups must be stem-keyed). Terms whose document-
  /// frequency ratio exceeds `max_df_ratio` are excluded from mining —
  /// they occur in so much of the corpus that they carry no relevance
  /// signal (the df-cutoff analogue of the engine's deep stop lists).
  RelevanceMiner(const SearchService& search,
                 const TermDictionary& stemmed_dict,
                 double max_df_ratio = 0.15);

  /// Top `m` relevant keywords for the concept, sorted by descending
  /// score.
  std::vector<RelevantTerm> Mine(std::string_view concept_phrase,
                                 RelevanceResource resource,
                                 size_t m = 100) const;

  /// Table II's diagnostic: the summation of the mined keywords' scores.
  static double SummationOfScores(const std::vector<RelevantTerm>& terms);

 private:
  std::vector<RelevantTerm> FromSnippets(std::string_view concept_phrase,
                                         size_t m) const;
  std::vector<RelevantTerm> FromPrisma(std::string_view concept_phrase,
                                       size_t m) const;
  std::vector<RelevantTerm> FromSuggestions(std::string_view concept_phrase,
                                            size_t m) const;

  const SearchService& search_;
  const TermDictionary& term_dict_;
  double max_df_ratio_;
};

/// Runtime scorer: holds the mined keyword lists of all supported concepts
/// and scores any (concept, context) pair by keyword co-occurrence.
class RelevanceScorer {
 public:
  /// Registers a concept's mined keywords (replaces earlier entries).
  void AddConcept(std::string_view concept_phrase,
                  std::vector<RelevantTerm> terms);

  bool HasConcept(std::string_view concept_phrase) const;
  size_t NumConcepts() const { return concept_terms_.size(); }

  /// Pre-processes a context once for scoring many concepts against it:
  /// stems every token and counts occurrences.
  static std::unordered_map<std::string, uint32_t> StemContext(
      std::string_view context);

  /// Relevance score: sum of mined-term scores over terms present in the
  /// context (each mined term counted once — presence, not frequency,
  /// following the paper's co-occurrence formulation). Unknown concepts
  /// score 0.
  double Score(std::string_view concept_phrase,
               const std::unordered_map<std::string, uint32_t>& stemmed_context)
      const;

  /// Convenience overload that stems the raw context itself.
  double Score(std::string_view concept_phrase,
               std::string_view context) const;

 private:
  std::unordered_map<std::string, std::vector<RelevantTerm>> concept_terms_;
};

}  // namespace ckr

#endif  // CKR_FEATURES_RELEVANCE_H_
