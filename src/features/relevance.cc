#include "features/relevance.h"

#include <algorithm>
#include <cmath>

#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace ckr {
namespace {

// Sorts by descending score (term as tie-break) and truncates to m.
std::vector<RelevantTerm> TopM(std::unordered_map<std::string, double> scores,
                               size_t m) {
  std::vector<RelevantTerm> out;
  out.reserve(scores.size());
  for (auto& [term, score] : scores) out.push_back({term, score});
  std::sort(out.begin(), out.end(),
            [](const RelevantTerm& a, const RelevantTerm& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.term < b.term;
            });
  if (out.size() > m) out.resize(m);
  return out;
}

// Stemmed, stop-word-free token stream of a text blob.
std::vector<std::string> StemmedTokens(std::string_view text) {
  std::vector<std::string> out;
  for (std::string& tok : TokenizeToStrings(text)) {
    if (IsStopWord(tok)) continue;
    out.push_back(PorterStem(tok));
  }
  return out;
}

}  // namespace

std::string_view RelevanceResourceName(RelevanceResource r) {
  switch (r) {
    case RelevanceResource::kSnippets:
      return "snippets";
    case RelevanceResource::kPrisma:
      return "prisma";
    case RelevanceResource::kQuerySuggestions:
      return "query_suggestions";
  }
  return "unknown";
}

RelevanceMiner::RelevanceMiner(const SearchService& search,
                               const TermDictionary& stemmed_dict,
                               double max_df_ratio)
    : search_(search),
      term_dict_(stemmed_dict),
      max_df_ratio_(max_df_ratio) {}

std::vector<RelevantTerm> RelevanceMiner::Mine(std::string_view concept_phrase,
                                               RelevanceResource resource,
                                               size_t m) const {
  switch (resource) {
    case RelevanceResource::kSnippets:
      return FromSnippets(concept_phrase, m);
    case RelevanceResource::kPrisma:
      return FromPrisma(concept_phrase, m);
    case RelevanceResource::kQuerySuggestions:
      return FromSuggestions(concept_phrase, m);
  }
  return {};
}

std::vector<RelevantTerm> RelevanceMiner::FromSnippets(
    std::string_view concept_phrase, size_t m) const {
  // "We pretend that the returned snippets constitute a single document
  // and then use a bag-of-words model" — tf over the concatenated
  // snippets, idf from the term dictionary.
  std::vector<std::string> snippets = search_.Snippets(concept_phrase, 100);
  std::unordered_map<std::string, double> tf;
  for (const std::string& s : snippets) {
    for (std::string& tok : StemmedTokens(s)) ++tf[tok];
  }
  // Exclude the concept's own terms: they trivially co-occur.
  for (std::string& t : StemmedTokens(concept_phrase)) tf.erase(t);
  std::unordered_map<std::string, double> scores;
  for (const auto& [term, f] : tf) {
    if (term_dict_.DocFreqRatio(term) > max_df_ratio_) continue;
    scores[term] = f * term_dict_.Idf(term);
  }
  return TopM(std::move(scores), m);
}

std::vector<RelevantTerm> RelevanceMiner::FromPrisma(
    std::string_view concept_phrase, size_t m) const {
  // The 20 feedback terms form one small document; tf*idf over it. The
  // tight cap is the coverage limitation the paper reports for Prisma.
  std::vector<std::string> feedback =
      search_.PrismaFeedbackTerms(concept_phrase, 20);
  std::unordered_map<std::string, double> tf;
  for (const std::string& f : feedback) {
    for (std::string& tok : StemmedTokens(f)) ++tf[tok];
  }
  for (std::string& t : StemmedTokens(concept_phrase)) tf.erase(t);
  std::unordered_map<std::string, double> scores;
  for (const auto& [term, f] : tf) {
    if (term_dict_.DocFreqRatio(term) > max_df_ratio_) continue;
    scores[term] = f * term_dict_.Idf(term);
  }
  return TopM(std::move(scores), m);
}

std::vector<RelevantTerm> RelevanceMiner::FromSuggestions(
    std::string_view concept_phrase, size_t m) const {
  // score(term) = sum over suggestions containing it of ln(query_freq) *
  // idf(term).
  std::vector<Suggestion> suggestions =
      search_.RelatedSuggestions(concept_phrase, 300);
  std::unordered_map<std::string, double> log_freq_sum;
  for (const Suggestion& s : suggestions) {
    std::vector<std::string> toks = StemmedTokens(s.query);
    std::sort(toks.begin(), toks.end());
    toks.erase(std::unique(toks.begin(), toks.end()), toks.end());
    double lf = std::log(1.0 + static_cast<double>(s.freq));
    for (const std::string& t : toks) log_freq_sum[t] += lf;
  }
  for (std::string& t : StemmedTokens(concept_phrase)) log_freq_sum.erase(t);
  std::unordered_map<std::string, double> scores;
  for (const auto& [term, lfs] : log_freq_sum) {
    if (term_dict_.DocFreqRatio(term) > max_df_ratio_) continue;
    scores[term] = lfs * term_dict_.Idf(term);
  }
  return TopM(std::move(scores), m);
}

double RelevanceMiner::SummationOfScores(
    const std::vector<RelevantTerm>& terms) {
  double total = 0.0;
  for (const RelevantTerm& t : terms) total += t.score;
  return total;
}

void RelevanceScorer::AddConcept(std::string_view concept_phrase,
                                 std::vector<RelevantTerm> terms) {
  concept_terms_[NormalizePhrase(concept_phrase)] = std::move(terms);
}

bool RelevanceScorer::HasConcept(std::string_view concept_phrase) const {
  return concept_terms_.count(NormalizePhrase(concept_phrase)) > 0;
}

std::unordered_map<std::string, uint32_t> RelevanceScorer::StemContext(
    std::string_view context) {
  std::unordered_map<std::string, uint32_t> counts;
  for (std::string& tok : TokenizeToStrings(context)) {
    if (IsStopWord(tok)) continue;
    ++counts[PorterStem(tok)];
  }
  return counts;
}

double RelevanceScorer::Score(
    std::string_view concept_phrase,
    const std::unordered_map<std::string, uint32_t>& stemmed_context) const {
  auto it = concept_terms_.find(NormalizePhrase(concept_phrase));
  if (it == concept_terms_.end()) return 0.0;
  double score = 0.0;
  for (const RelevantTerm& t : it->second) {
    if (stemmed_context.count(t.term) > 0) score += t.score;
  }
  return score;
}

double RelevanceScorer::Score(std::string_view concept_phrase,
                              std::string_view context) const {
  return Score(concept_phrase, StemContext(context));
}

}  // namespace ckr
