// Parallel per-concept offline fan-out (paper Sections IV-A/IV-B).
//
// Every offline experiment walks the same loop: for each distinct concept,
// extract the static interestingness vector and mine relevant keywords
// from the three resources. The work items are independent, so the miner
// fans them out on ParallelForWorkers with one output slot per concept —
// results are bit-identical for any thread count, mirroring the
// ProcessBatch design of the serving runtime.
#ifndef CKR_FEATURES_OFFLINE_MINER_H_
#define CKR_FEATURES_OFFLINE_MINER_H_

#include <array>
#include <string>
#include <vector>

#include "corpus/taxonomy.h"
#include "features/interestingness.h"
#include "features/relevance.h"
#include "obs/clock.h"

namespace ckr {

/// Number of RelevanceResource values.
inline constexpr size_t kNumRelevanceResources = 3;

/// One concept to mine: its normalized key and taxonomy type.
struct ConceptKey {
  std::string key;
  EntityType type = EntityType::kConcept;
};

/// Everything the offline phase derives for one concept.
struct MinedConcept {
  InterestingnessVector interestingness;
  /// Mined keywords per resource, indexed by RelevanceResource.
  std::array<std::vector<RelevantTerm>, kNumRelevanceResources> relevance;
};

/// Per-run accounting (workers and busy time are informational; they do
/// not affect the mined output).
struct OfflineMiningStats {
  unsigned workers = 0;
  double wall_seconds = 0.0;
  std::vector<double> worker_busy_seconds;   ///< One entry per worker.
  std::vector<uint64_t> worker_concepts;     ///< Concepts mined per worker.
};

/// Fans the per-concept extraction + mining across worker threads.
/// The referenced extractor/miner must be immutable and thread-safe for
/// concurrent reads (they are: both only read the pipeline substrates).
class OfflineConceptMiner {
 public:
  OfflineConceptMiner(const InterestingnessExtractor& interestingness,
                      const RelevanceMiner& miner);

  /// Mines all concepts with up to `num_threads` workers (0 = all hardware
  /// threads). Returns one slot per input concept, in input order; the
  /// output is independent of `num_threads` and of scheduling.
  std::vector<MinedConcept> MineAll(const std::vector<ConceptKey>& concepts,
                                    size_t relevance_terms,
                                    unsigned num_threads,
                                    OfflineMiningStats* stats = nullptr) const;

  /// Swaps the stats clock (wall/busy accounting only; never the output).
  void SetClockForTesting(const Clock* clock) { clock_ = clock; }

 private:
  const InterestingnessExtractor& interestingness_;
  const RelevanceMiner& miner_;
  const Clock* clock_ = &RealClock();
};

}  // namespace ckr

#endif  // CKR_FEATURES_OFFLINE_MINER_H_
