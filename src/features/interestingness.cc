#include "features/interestingness.h"

#include <cmath>

#include "common/string_util.h"
#include "text/tokenizer.h"

namespace ckr {
namespace {

bool GroupEnabled(unsigned mask, FeatureGroup g) {
  return (mask & (1u << static_cast<int>(g))) != 0;
}

}  // namespace

std::vector<double> InterestingnessVector::Flatten(unsigned group_mask) const {
  std::vector<double> out(Dim(), 0.0);
  if (GroupEnabled(group_mask, FeatureGroup::kQueryLogs)) {
    out[0] = freq_exact;
    out[1] = freq_phrase_contained;
    out[2] = unit_score;
  }
  if (GroupEnabled(group_mask, FeatureGroup::kSearchResults)) {
    out[3] = searchengine_phrase;
  }
  if (GroupEnabled(group_mask, FeatureGroup::kTextBased)) {
    out[4] = concept_size;
    out[5] = number_of_chars;
    out[6] = subconcepts;
  }
  if (GroupEnabled(group_mask, FeatureGroup::kOther)) {
    out[7] = wiki_word_count;
  }
  if (GroupEnabled(group_mask, FeatureGroup::kTaxonomy)) {
    for (int i = 0; i < kNumEntityTypes; ++i) {
      out[8 + static_cast<size_t>(i)] = high_level_type[static_cast<size_t>(i)];
    }
  }
  return out;
}

std::vector<std::string> InterestingnessVector::DimNames() {
  std::vector<std::string> names = {
      "freq_exact",     "freq_phrase_contained",
      "unit_score",     "searchengine_phrase",
      "concept_size",   "number_of_chars",
      "subconcepts",    "wiki_word_count",
  };
  for (int i = 0; i < kNumEntityTypes; ++i) {
    names.push_back("type_" +
                    std::string(EntityTypeName(static_cast<EntityType>(i))));
  }
  return names;
}

InterestingnessExtractor::InterestingnessExtractor(const QueryLog& log,
                                                   const UnitDictionary& units,
                                                   const SearchService& search,
                                                   const WikiStore& wiki)
    : log_(log), units_(units), search_(search), wiki_(wiki) {}

InterestingnessVector InterestingnessExtractor::Extract(std::string_view key,
                                                        EntityType type) const {
  InterestingnessVector v;
  std::string norm = NormalizePhrase(key);

  // (1)-(3): query-log features; counts are log-scaled.
  v.freq_exact = std::log1p(static_cast<double>(log_.ExactFreq(norm)));
  v.freq_phrase_contained =
      std::log1p(static_cast<double>(log_.PhraseContainedFreq(norm)));
  v.unit_score = units_.UnitScore(norm);

  // (4): phrase-query result count.
  v.searchengine_phrase =
      std::log1p(static_cast<double>(search_.PhraseResultCount(norm)));

  // (5)-(7): text shape.
  std::vector<std::string> terms = SplitString(norm, " ");
  v.concept_size = static_cast<double>(terms.size());
  v.number_of_chars = static_cast<double>(norm.size());
  int subconcepts = 0;
  const size_t k = terms.size();
  for (size_t i = 0; i < k; ++i) {
    std::string phrase;
    for (size_t j = i; j < k; ++j) {
      if (j > i) phrase.push_back(' ');
      phrase.append(terms[j]);
      size_t len = j - i + 1;
      if (len == k && i == 0) continue;  // The concept itself.
      if (len > 2 && units_.UnitScore(phrase) > 0.25) ++subconcepts;
    }
  }
  v.subconcepts = static_cast<double>(subconcepts);

  // (8): taxonomy one-hot (kConcept marks "not editorially listed" and is
  // a category of its own).
  v.high_level_type[static_cast<size_t>(type)] = 1.0;

  // (9): Wikipedia article length.
  v.wiki_word_count =
      std::log1p(static_cast<double>(wiki_.ArticleWordCount(norm)));
  return v;
}

}  // namespace ckr
