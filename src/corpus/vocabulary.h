// Synthetic vocabulary generation.
//
// The original system ran over English text from Yahoo! News and the Yahoo!
// Search corpus. This substrate generates a deterministic pseudo-English
// vocabulary (pronounceable syllable words) with a Zipfian background
// distribution plus per-topic specific terms, and name pools for entity
// surface forms. Everything downstream (tf*idf, query logs, snippets,
// relevance mining) only depends on distributional structure, which this
// module controls by construction.
#ifndef CKR_CORPUS_VOCABULARY_H_
#define CKR_CORPUS_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"

namespace ckr {

/// Identifier of a vocabulary word.
using WordId = uint32_t;

/// Deterministic pseudo-word factory. Generated words are unique,
/// lower-case, 3-12 characters, alternating consonant/vowel syllables.
class WordFactory {
 public:
  explicit WordFactory(uint64_t seed);

  /// Generates a fresh word of `syllables` syllables not generated before
  /// and not colliding with the reserved set.
  std::string MakeWord(int syllables, Rng& rng);

  /// Generates a capitalized name-like word (for entity surface forms).
  std::string MakeName(int syllables, Rng& rng);

  /// Marks a word as reserved so MakeWord never returns it.
  void Reserve(const std::string& word);

 private:
  std::unordered_set<std::string> used_;
  Rng rng_;
};

/// The world vocabulary: a shared background vocabulary with Zipf weights
/// and per-topic specific words.
class Vocabulary {
 public:
  /// Builds `background_size` common words plus `topics * per_topic`
  /// topic-specific words.
  Vocabulary(size_t background_size, size_t num_topics, size_t per_topic,
             uint64_t seed);

  size_t size() const { return words_.size(); }
  const std::string& Word(WordId id) const { return words_[id]; }

  /// Registers an extra word created after construction (e.g. entity
  /// companion vocabulary). Returns its id; existing words return their
  /// current id.
  WordId AddWord(const std::string& word);

  /// Word lookup; returns false if unknown.
  bool Lookup(const std::string& word, WordId* id) const;

  size_t background_size() const { return background_size_; }
  size_t num_topics() const { return num_topics_; }

  /// Topic-specific word ids for a topic.
  const std::vector<WordId>& TopicWords(size_t topic) const {
    return topic_words_[topic];
  }

  /// Samples a background word (Zipf rank ~ frequency).
  WordId SampleBackground(Rng& rng) const;

  /// Samples a word for a document of the given topic: with probability
  /// `topic_prob` a topic word (uniform), else a background word (Zipf).
  WordId SampleForTopic(size_t topic, double topic_prob, Rng& rng) const;

  /// True if the word id is specific to `topic`.
  bool IsTopicWord(WordId id, size_t topic) const;

  /// The topic a word belongs to, or -1 for background words.
  int TopicOf(WordId id) const;

 private:
  std::vector<std::string> words_;
  std::unordered_map<std::string, WordId> index_;
  std::vector<std::vector<WordId>> topic_words_;
  size_t background_size_;
  size_t num_topics_;
  ZipfSampler background_zipf_;
};

}  // namespace ckr

#endif  // CKR_CORPUS_VOCABULARY_H_
