#include "corpus/corpus_stream.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/parallel.h"

namespace ckr {

WorldConfig ScaledWorldConfig(size_t num_web_docs, uint64_t seed) {
  WorldConfig cfg;
  cfg.seed = seed;
  cfg.num_web_docs = num_web_docs;
  // Scale factor relative to the paper-scale world. The entity universe
  // and topic count grow with its cube root: a 100x corpus gets a ~4.6x
  // concept universe, which keeps per-concept click mass realistic (ORCAS
  // has ~10M distinct queries over 3M docs, not one query per doc).
  const double scale =
      static_cast<double>(num_web_docs) / static_cast<double>(6000);
  const double growth = std::cbrt(std::max(1.0, scale));
  auto grow = [growth](size_t base) {
    return static_cast<size_t>(static_cast<double>(base) * growth);
  };
  cfg.num_topics = std::max<size_t>(24, grow(24));
  cfg.num_named_entities = grow(900);
  cfg.num_concepts = grow(600);
  cfg.num_generic_concepts = grow(60);
  // News/answers corpora are not part of the scaled web world; keep them
  // small so World validation stays happy without paying for them.
  cfg.num_news_stories = 0;
  cfg.num_answers_snippets = 0;
  if (scale > 1.0) {
    // Web-page-summary regime: short documents keep a million-doc build
    // wall-clock-feasible while leaving posting lists long enough for
    // skipping to matter.
    cfg.web_doc_min_tokens = 60;
    cfg.web_doc_max_tokens = 180;
  }
  return cfg;
}

Status CorpusStreamer::Stream(
    Document::Kind kind, size_t count, const CorpusStreamConfig& config,
    const std::function<void(Document&&)>& consume) const {
  if (config.chunk_docs == 0) {
    return Status::InvalidArgument("chunk_docs must be > 0");
  }
  std::vector<Document> chunk(std::min(config.chunk_docs, count));
  for (size_t base = 0; base < count; base += config.chunk_docs) {
    const size_t n = std::min(config.chunk_docs, count - base);
    ParallelForWorkers(n, config.workers, [&](unsigned worker, size_t i) {
      (void)worker;
      chunk[i] = generator_.Generate(kind, static_cast<DocId>(base + i));
    });
    for (size_t i = 0; i < n; ++i) consume(std::move(chunk[i]));
  }
  return Status::OK();
}

}  // namespace ckr
