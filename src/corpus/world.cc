#include "corpus/world.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "text/tokenizer.h"

namespace ckr {

Status WorldConfig::Validate() const {
  if (num_topics == 0) return Status::InvalidArgument("num_topics must be > 0");
  if (background_vocab < 100) {
    return Status::InvalidArgument("background_vocab must be >= 100");
  }
  if (words_per_topic < 8) {
    return Status::InvalidArgument("words_per_topic must be >= 8");
  }
  if (num_named_entities + num_concepts == 0) {
    return Status::InvalidArgument("world must contain entities");
  }
  if (web_doc_min_tokens == 0 || web_doc_min_tokens > web_doc_max_tokens ||
      news_min_tokens > news_max_tokens ||
      answers_min_tokens > answers_max_tokens) {
    return Status::InvalidArgument("document token ranges are inconsistent");
  }
  if (on_topic_entities_min == 0 ||
      on_topic_entities_min > on_topic_entities_max) {
    return Status::InvalidArgument("on-topic entity range is inconsistent");
  }
  if (topic_word_prob < 0.0 || topic_word_prob > 1.0) {
    return Status::InvalidArgument("topic_word_prob must be in [0,1]");
  }
  return Status::OK();
}

int Entity::TermCount() const {
  if (key.empty()) return 0;
  int count = 1;
  for (char c : key) {
    if (c == ' ') ++count;
  }
  return count;
}

World::World(const WorldConfig& config) : config_(config), rng_(config.seed) {}

StatusOr<std::unique_ptr<World>> World::Create(const WorldConfig& config) {
  CKR_RETURN_IF_ERROR(config.Validate());
  std::unique_ptr<World> world(new World(config));
  world->vocab_ = std::make_unique<Vocabulary>(
      config.background_vocab, config.num_topics, config.words_per_topic,
      config.seed ^ 0x5ca1ab1eULL);
  world->topic_entities_.resize(config.num_topics);
  world->BuildEntities();
  return world;
}

namespace {

// Beta(a, b) sample via two Gamma draws (Marsaglia-Tsang would be heavier
// than needed; use the sum-of-logs approach through Gamma via Johnk for
// small shapes). For our shapes (>= 1) a simple rejection on the density
// mode suffices and stays deterministic.
double SampleBeta(double a, double b, Rng& rng) {
  // Johnk's algorithm works for any a, b and is branch-light.
  for (int i = 0; i < 256; ++i) {
    double u = rng.NextDouble();
    double v = rng.NextDouble();
    double x = std::pow(u, 1.0 / a);
    double y = std::pow(v, 1.0 / b);
    if (x + y <= 1.0 && x + y > 0.0) return x / (x + y);
  }
  return a / (a + b);  // Fall back to the mean.
}

double Clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

}  // namespace

void World::BuildEntities() {
  WordFactory name_factory(config_.seed ^ 0xfeedULL);
  // Distribute named entities across the dictionary types.
  static const EntityType kDictTypes[] = {
      EntityType::kPerson,       EntityType::kPlace,
      EntityType::kOrganization, EntityType::kEvent,
      EntityType::kAnimal,       EntityType::kProduct,
  };
  static const double kTypeShare[] = {0.34, 0.22, 0.18, 0.10, 0.04, 0.12};
  for (size_t i = 0; i < config_.num_named_entities; ++i) {
    size_t type_idx = rng_.NextCategorical(
        std::vector<double>(kTypeShare, kTypeShare + 6));
    FinishEntity(MakeNamedEntity(kDictTypes[type_idx], rng_, name_factory));
  }
  for (size_t i = 0; i < config_.num_concepts; ++i) {
    FinishEntity(MakeConcept(rng_));
  }
  for (size_t i = 0; i < config_.num_generic_concepts; ++i) {
    FinishEntity(MakeGenericConcept(rng_));
  }
  // Companion vocabulary: 3-5 shared topic words plus 2-3 entity-specific
  // words minted here (their rarity makes them highly distinctive for
  // snippet mining).
  WordFactory companion_factory(config_.seed ^ 0xc0ffeeULL);
  for (Entity& e : entities_) {
    if (e.is_generic) continue;
    const auto& topic_words =
        vocab_->TopicWords(static_cast<size_t>(e.primary_topic));
    size_t n_topic = 3 + rng_.NextBounded(3);
    for (size_t i = 0; i < n_topic; ++i) {
      e.companions.push_back(topic_words[rng_.NextBounded(topic_words.size())]);
    }
    size_t n_specific = 2 + rng_.NextBounded(2);
    for (size_t i = 0; i < n_specific; ++i) {
      std::string w = companion_factory.MakeWord(
          2 + static_cast<int>(rng_.NextBounded(2)), rng_);
      e.companions.push_back(vocab_->AddWord(w));
    }
  }
}

Entity World::MakeNamedEntity(EntityType type, Rng& rng,
                              WordFactory& factory) {
  Entity e;
  e.type = type;
  e.in_dictionary = true;
  e.subtype = static_cast<int>(
      rng.NextBounded(taxonomy_.Subtypes(type).size()));
  e.primary_topic = static_cast<int>(rng.NextBounded(config_.num_topics));
  if (rng.NextBernoulli(0.25)) {
    e.secondary_topic =
        static_cast<int>(rng.NextBounded(config_.num_topics));
    if (e.secondary_topic == e.primary_topic) e.secondary_topic = -1;
  }
  // Surface form: persons get two name tokens, others one or two.
  int name_tokens =
      (type == EntityType::kPerson) ? 2 : 1 + (rng.NextBernoulli(0.45) ? 1 : 0);
  std::vector<std::string> parts;
  for (int t = 0; t < name_tokens; ++t) {
    parts.push_back(factory.MakeName(2 + static_cast<int>(rng.NextBounded(2)),
                                     rng));
  }
  e.surface = JoinStrings(parts, " ");
  // Interestingness skews low (most entities are mildly interesting, few
  // are hot) and popularity correlates with it plus independent noise.
  // The major type carries a real prior — users click celebrities and
  // products far more readily than places or animals — which is what
  // makes the taxonomy feature informative (Table III: removing the
  // taxonomy group visibly hurts the learned model).
  static const double kTypeShift[] = {
      0.16,   // person
      -0.10,  // place
      0.0,    // organization
      0.10,   // event
      -0.16,  // animal
      0.13,   // product
  };
  double shift = 0.0;
  switch (type) {
    case EntityType::kPerson:
      shift = kTypeShift[0];
      break;
    case EntityType::kPlace:
      shift = kTypeShift[1];
      break;
    case EntityType::kOrganization:
      shift = kTypeShift[2];
      break;
    case EntityType::kEvent:
      shift = kTypeShift[3];
      break;
    case EntityType::kAnimal:
      shift = kTypeShift[4];
      break;
    case EntityType::kProduct:
      shift = kTypeShift[5];
      break;
    default:
      break;
  }
  e.interestingness = Clamp01(SampleBeta(1.4, 3.2, rng) + shift);
  e.popularity =
      Clamp01(0.65 * e.interestingness + 0.35 * SampleBeta(1.2, 3.5, rng));
  e.notability =
      Clamp01(0.7 * e.interestingness + 0.3 * rng.NextDouble());
  if (type == EntityType::kPlace) {
    e.latitude = static_cast<float>(rng.NextDouble() * 180.0 - 90.0);
    e.longitude = static_cast<float>(rng.NextDouble() * 360.0 - 180.0);
  }
  return e;
}

Entity World::MakeConcept(Rng& rng) {
  Entity e;
  e.type = EntityType::kConcept;
  e.in_dictionary = false;
  e.primary_topic = static_cast<int>(rng.NextBounded(config_.num_topics));
  // Concept surface: 2-4 words, at least one topic word plus mostly
  // common background words — real multi-word concepts ("auto insurance",
  // "science fiction movies") are built from ordinary vocabulary, which
  // keeps their constituent-term weights comparable to entity names'.
  // Unit length skews short, like real query-log units.
  double len_draw = rng.NextDouble();
  int n_terms = len_draw < 0.6 ? 2 : (len_draw < 0.9 ? 3 : 4);
  const auto& topic_words = vocab_->TopicWords(e.primary_topic);
  std::vector<std::string> parts;
  std::vector<size_t> picks;
  for (int t = 0; t < n_terms; ++t) {
    if (t > 0 && rng.NextBernoulli(0.55)) {
      parts.push_back(vocab_->Word(vocab_->SampleBackground(rng)));
      continue;
    }
    size_t pick = rng.NextBounded(topic_words.size());
    // Avoid duplicate words inside one concept.
    if (std::find(picks.begin(), picks.end(), pick) != picks.end()) {
      pick = (pick + 1) % topic_words.size();
    }
    picks.push_back(pick);
    parts.push_back(vocab_->Word(topic_words[pick]));
  }
  e.surface = JoinStrings(parts, " ");
  e.interestingness = SampleBeta(1.3, 3.4, rng);
  e.popularity =
      Clamp01(0.7 * e.interestingness + 0.3 * SampleBeta(1.2, 3.0, rng));
  e.notability = Clamp01(0.55 * e.interestingness + 0.25 * rng.NextDouble());
  return e;
}

Entity World::MakeGenericConcept(Rng& rng) {
  Entity e;
  e.type = EntityType::kConcept;
  e.in_dictionary = false;
  e.is_generic = true;
  e.primary_topic = static_cast<int>(rng.NextBounded(config_.num_topics));
  // Junk units are built from very frequent background words (the analogue
  // of "my favorite", "the other", "what is happening"), so they occur in
  // documents of every topic and co-occur heavily in queries.
  int n_terms = 2 + static_cast<int>(rng.NextBounded(2));
  std::vector<std::string> parts;
  for (int t = 0; t < n_terms; ++t) {
    WordId id = static_cast<WordId>(rng.NextBounded(160));  // Top Zipf ranks.
    parts.push_back(vocab_->Word(id));
  }
  e.surface = JoinStrings(parts, " ");
  // Junk units are heavily queried (that is why they became units) but are
  // neither interesting nor ever topically relevant.
  e.interestingness = SampleBeta(1.2, 8.0, rng);
  e.popularity = Clamp01(0.35 + 0.5 * rng.NextDouble());
  e.notability = 0.0;
  return e;
}

void World::FinishEntity(Entity entity) {
  entity.key = NormalizePhrase(entity.surface);
  if (key_index_.count(entity.key) > 0) {
    // Duplicate surface form (rare): skip rather than create ambiguity in
    // the key index.
    return;
  }
  entity.id = static_cast<EntityId>(entities_.size());
  key_index_[entity.key] = entity.id;
  // Generic junk units have no topical home: they are planted by the
  // dedicated junk path, never as on-topic subjects.
  if (!entity.is_generic) {
    topic_entities_[static_cast<size_t>(entity.primary_topic)].push_back(
        entity.id);
    if (entity.secondary_topic >= 0) {
      topic_entities_[static_cast<size_t>(entity.secondary_topic)].push_back(
          entity.id);
    }
  }
  if (entity.is_generic) generic_concepts_.push_back(entity.id);
  entities_.push_back(std::move(entity));
}

EntityId World::FindByKey(const std::string& key) const {
  auto it = key_index_.find(key);
  return it == key_index_.end() ? kInvalidEntity : it->second;
}

EntityId World::SampleTopicEntity(size_t topic, Rng& rng) const {
  const auto& pool = topic_entities_[topic];
  if (pool.empty()) return kInvalidEntity;
  // Weight by popularity so hot entities appear in more stories, matching
  // real news dynamics.
  std::vector<double> weights;
  weights.reserve(pool.size());
  for (EntityId id : pool) {
    weights.push_back(0.05 + entities_[id].popularity);
  }
  return pool[rng.NextCategorical(weights)];
}

EntityId World::SampleOffTopicEntity(size_t topic, Rng& rng) const {
  for (int attempt = 0; attempt < 64; ++attempt) {
    EntityId id = static_cast<EntityId>(rng.NextBounded(entities_.size()));
    const Entity& e = entities_[id];
    if (e.is_generic) continue;
    if (e.primary_topic != static_cast<int>(topic) &&
        e.secondary_topic != static_cast<int>(topic)) {
      return id;
    }
  }
  return kInvalidEntity;
}

}  // namespace ckr
