// Streaming corpus generation at scales where materializing the corpus is
// off the table.
//
// The paper's click pipeline was mined from web-scale logs; the fixed
// paper-scale world (~6k web docs) is far too small to exercise the
// block-max machinery or produce honest evaluator-crossover numbers. This
// module scales the synthetic world to hundreds of thousands or millions
// of documents without ever holding more than one chunk in memory:
//
//  * ScaledWorldConfig derives a WorldConfig for a target web-corpus size
//    (entity universe and topic count grow sublinearly, document length
//    shrinks toward web-snippet scale so wall-clock stays sane);
//  * CorpusStreamer generates documents in fixed-size chunks. Within a
//    chunk documents are produced in parallel via ParallelForWorkers —
//    each document's bytes come from its own counter-seeded RNG stream
//    (DocGenerator::Generate), so the output is bit-identical for any
//    worker count and any chunk size — and the chunk is handed to the
//    consumer in ascending id order on the calling thread. Chunk storage
//    is recycled: peak memory is O(chunk_docs) documents regardless of
//    corpus size.
#ifndef CKR_CORPUS_CORPUS_STREAM_H_
#define CKR_CORPUS_CORPUS_STREAM_H_

#include <cstddef>
#include <functional>

#include "common/status.h"
#include "corpus/doc_generator.h"
#include "corpus/document.h"
#include "corpus/world.h"

namespace ckr {

/// Derives a world configuration for a web corpus of `num_web_docs`
/// documents. The entity/concept universe and the topic count grow with
/// the cube root of the scale factor relative to the paper-scale world
/// (doubling the corpus should not double the concept universe — real
/// vocabularies grow sublinearly), and web documents are shortened to the
/// 60-180 token web-page-summary regime so a million-doc build stays
/// wall-clock-feasible on one core. Deterministic in (num_web_docs, seed).
WorldConfig ScaledWorldConfig(size_t num_web_docs, uint64_t seed);

/// Chunking and parallelism knobs for streaming generation.
struct CorpusStreamConfig {
  size_t chunk_docs = 2048;  ///< Documents materialized at once.
  unsigned workers = 1;      ///< Threads generating within a chunk.
};

/// Streams a corpus through a consumer without materializing it.
class CorpusStreamer {
 public:
  /// `world` must outlive the streamer.
  explicit CorpusStreamer(const World& world) : generator_(world) {}

  /// Generates documents id in [0, count) of `kind` and hands each to
  /// `consume` in ascending id order. Documents are moved into the
  /// consumer and their storage is recycled chunk by chunk. Returns
  /// InvalidArgument on a zero chunk size.
  [[nodiscard]] Status Stream(
      Document::Kind kind, size_t count, const CorpusStreamConfig& config,
      const std::function<void(Document&&)>& consume) const;

  const DocGenerator& generator() const { return generator_; }

 private:
  DocGenerator generator_;
};

}  // namespace ckr

#endif  // CKR_CORPUS_CORPUS_STREAM_H_
