#include "corpus/doc_generator.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/hash.h"
#include "common/string_util.h"

namespace ckr {
namespace {

double Clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

// Centrality prior: most planted entities are moderately central, a few
// dominate the story.
double SampleCentrality(Rng& rng) {
  double u = rng.NextDouble();
  return u * u;  // Skew low; squared uniform has mean 1/3.
}

struct ScheduledMention {
  size_t slot;  // Token index at which the mention is emitted.
  size_t plan_index;
};

}  // namespace

DocGenerator::DocGenerator(const World& world) : world_(world) {}

std::vector<DocGenerator::PlannedEntity> DocGenerator::PlanEntities(
    int topic, Document::Kind kind, Rng& rng) const {
  const WorldConfig& cfg = world_.config();
  std::vector<PlannedEntity> plan;

  size_t n_on = cfg.on_topic_entities_min +
                rng.NextBounded(cfg.on_topic_entities_max -
                                cfg.on_topic_entities_min + 1);
  if (kind == Document::Kind::kAnswers) {
    n_on = std::max<size_t>(2, n_on / 2);  // Short snippets carry fewer.
  }
  std::vector<EntityId> used;
  for (size_t i = 0; i < n_on; ++i) {
    EntityId id = world_.SampleTopicEntity(static_cast<size_t>(topic), rng);
    if (id == kInvalidEntity) break;
    if (std::find(used.begin(), used.end(), id) != used.end()) continue;
    used.push_back(id);
    PlannedEntity pe;
    pe.entity = id;
    // Editors write stories around entities their audience cares about:
    // centrality correlates with latent interestingness, with independent
    // story-to-story variation on top.
    pe.centrality = Clamp01(0.45 * SampleCentrality(rng) +
                            0.55 * world_.entity(id).interestingness *
                                (0.5 + rng.NextDouble()));
    // On-topic relevance: centrality raises it; noise keeps labels soft.
    pe.relevance = Clamp01(0.22 + 0.7 * pe.centrality +
                           0.08 * rng.NextGaussian());
    pe.relevance = std::max(pe.relevance, 0.12);
    pe.mention_count = 1 + static_cast<int>(pe.centrality * 6.999);
    plan.push_back(pe);
  }

  size_t n_off = rng.NextBounded(cfg.off_topic_entities_max + 1);
  for (size_t i = 0; i < n_off; ++i) {
    EntityId id = world_.SampleOffTopicEntity(static_cast<size_t>(topic), rng);
    if (id == kInvalidEntity) continue;
    if (std::find(used.begin(), used.end(), id) != used.end()) continue;
    used.push_back(id);
    PlannedEntity pe;
    pe.entity = id;
    pe.centrality = 0.05 + 0.15 * rng.NextDouble();
    pe.relevance = 0.05 + 0.18 * rng.NextDouble();
    pe.mention_count = 1;
    plan.push_back(pe);
  }

  if (rng.NextBernoulli(cfg.generic_concept_prob) &&
      !world_.GenericConcepts().empty()) {
    size_t n_junk = 1;
    for (size_t i = 0; i < n_junk; ++i) {
      EntityId id = world_.GenericConcepts()[rng.NextBounded(
          world_.GenericConcepts().size())];
      if (std::find(used.begin(), used.end(), id) != used.end()) continue;
      used.push_back(id);
      PlannedEntity pe;
      pe.entity = id;
      pe.centrality = 0.02 + 0.1 * rng.NextDouble();
      pe.relevance = 0.02 + 0.08 * rng.NextDouble();
      pe.mention_count = 1;
      plan.push_back(pe);
    }
  }
  return plan;
}

Document DocGenerator::Assemble(Document::Kind kind, DocId id, int topic,
                                size_t token_budget,
                                const std::vector<PlannedEntity>& plan,
                                Rng& rng) const {
  const WorldConfig& cfg = world_.config();
  Document doc;
  doc.id = id;
  doc.kind = kind;
  doc.topic = topic;

  // Schedule mention slots. High-centrality entities get earlier first
  // mentions (news leads with its subject); repeats spread over the body.
  std::vector<ScheduledMention> schedule;
  for (size_t p = 0; p < plan.size(); ++p) {
    const PlannedEntity& pe = plan[p];
    for (int m = 0; m < pe.mention_count; ++m) {
      double u = rng.NextDouble();
      if (m == 0) u = std::pow(u, 1.0 + 2.0 * pe.centrality);
      size_t slot = static_cast<size_t>(u * static_cast<double>(token_budget));
      if (slot >= token_budget) slot = token_budget - 1;
      schedule.push_back({slot, p});
    }
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const ScheduledMention& a, const ScheduledMention& b) {
              return a.slot < b.slot;
            });

  double topic_prob = cfg.topic_word_prob;
  if (kind == Document::Kind::kAnswers) topic_prob *= 0.7;  // Noisier text.

  std::string text;
  text.reserve(token_budget * 7);
  // Companion burst state: after a mention, nearby tokens are drawn from
  // the entity's companion vocabulary with a centrality-scaled
  // probability, giving relevant entities a distinctive local context.
  size_t burst_remaining = 0;
  double burst_prob = 0.0;
  const std::vector<WordId>* burst_words = nullptr;
  size_t next_sched = 0;
  size_t sentence_len = 0;
  size_t sentence_target = 8 + rng.NextBounded(12);
  size_t sentences_in_para = 0;
  size_t para_target = 3 + rng.NextBounded(4);
  bool at_sentence_start = true;

  auto begin_token = [&]() {
    if (!text.empty() && text.back() != '\n') text.push_back(' ');
  };
  auto end_sentence = [&]() {
    text.push_back('.');
    ++sentences_in_para;
    sentence_len = 0;
    sentence_target = 8 + rng.NextBounded(12);
    at_sentence_start = true;
    if (sentences_in_para >= para_target) {
      text.append("\n\n");
      sentences_in_para = 0;
      para_target = 3 + rng.NextBounded(4);
    }
  };

  for (size_t i = 0; i < token_budget; ++i) {
    bool emitted_mention = false;
    while (next_sched < schedule.size() && schedule[next_sched].slot <= i) {
      const PlannedEntity& pe = plan[schedule[next_sched].plan_index];
      const Entity& e = world_.entity(pe.entity);
      begin_token();
      MentionTruth mt;
      mt.entity = pe.entity;
      mt.begin = text.size();
      text.append(e.surface);
      mt.end = text.size();
      mt.relevance = pe.relevance;
      mt.centrality = pe.centrality;
      doc.mentions.push_back(mt);
      ++next_sched;
      emitted_mention = true;
      ++sentence_len;
      at_sentence_start = false;
      if (!e.companions.empty()) {
        burst_remaining = 1 + rng.NextBounded(3);
        burst_prob = 0.22 + 0.4 * pe.centrality;
        burst_words = &e.companions;
      }
    }
    if (emitted_mention && sentence_len >= sentence_target) {
      end_sentence();
      continue;
    }
    begin_token();
    WordId wid;
    if (burst_remaining > 0 && burst_words != nullptr &&
        rng.NextBernoulli(burst_prob)) {
      wid = (*burst_words)[rng.NextBounded(burst_words->size())];
      --burst_remaining;
    } else {
      if (burst_remaining > 0) --burst_remaining;
      wid = world_.vocabulary().SampleForTopic(static_cast<size_t>(topic),
                                               topic_prob, rng);
    }
    std::string word = world_.vocabulary().Word(wid);
    if (at_sentence_start) {
      word[0] = static_cast<char>(
          std::toupper(static_cast<unsigned char>(word[0])));
      at_sentence_start = false;
    }
    text.append(word);
    ++sentence_len;
    if (sentence_len >= sentence_target) end_sentence();
  }
  // Flush any mentions scheduled at the very end.
  while (next_sched < schedule.size()) {
    const PlannedEntity& pe = plan[schedule[next_sched].plan_index];
    const Entity& e = world_.entity(pe.entity);
    begin_token();
    MentionTruth mt;
    mt.entity = pe.entity;
    mt.begin = text.size();
    text.append(e.surface);
    mt.end = text.size();
    mt.relevance = pe.relevance;
    mt.centrality = pe.centrality;
    doc.mentions.push_back(mt);
    ++next_sched;
  }
  if (!text.empty() && text.back() != '.') text.push_back('.');
  doc.text = std::move(text);
  return doc;
}

Rng DocGenerator::PerDocRng(Document::Kind kind, DocId id) const {
  // Per-document stream: independent of generation order.
  uint64_t stream =
      HashCombine(world_.config().seed,
                  (static_cast<uint64_t>(kind) << 32) |
                      static_cast<uint64_t>(id));
  return Rng(Mix64(stream));
}

int DocGenerator::DocTopic(Document::Kind kind, DocId id) const {
  Rng rng = PerDocRng(kind, id);
  return static_cast<int>(rng.NextBounded(world_.config().num_topics));
}

Document DocGenerator::Generate(Document::Kind kind, DocId id) const {
  const WorldConfig& cfg = world_.config();
  Rng rng = PerDocRng(kind, id);
  int topic = static_cast<int>(rng.NextBounded(cfg.num_topics));
  size_t min_tokens = 0;
  size_t max_tokens = 0;
  switch (kind) {
    case Document::Kind::kWeb:
      min_tokens = cfg.web_doc_min_tokens;
      max_tokens = cfg.web_doc_max_tokens;
      break;
    case Document::Kind::kNews:
      min_tokens = cfg.news_min_tokens;
      max_tokens = cfg.news_max_tokens;
      break;
    case Document::Kind::kAnswers:
      min_tokens = cfg.answers_min_tokens;
      max_tokens = cfg.answers_max_tokens;
      break;
  }
  size_t budget = min_tokens + rng.NextBounded(max_tokens - min_tokens + 1);
  std::vector<PlannedEntity> plan = PlanEntities(topic, kind, rng);
  return Assemble(kind, id, topic, budget, plan, rng);
}

std::vector<Document> DocGenerator::GenerateCorpus(Document::Kind kind,
                                                   size_t count) const {
  std::vector<Document> docs;
  docs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    docs.push_back(Generate(kind, static_cast<DocId>(i)));
  }
  return docs;
}

}  // namespace ckr
