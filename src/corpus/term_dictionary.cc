#include "corpus/term_dictionary.h"

#include <cmath>
#include <unordered_set>

#include "text/porter_stemmer.h"
#include "text/tokenizer.h"

namespace ckr {

void TermDictionary::Build(const std::vector<Document>& corpus, bool stemmed) {
  doc_freq_.clear();
  num_docs_ = 0;
  for (const Document& doc : corpus) AddDocument(doc.text, stemmed);
}

void TermDictionary::AddDocument(std::string_view text, bool stemmed) {
  std::unordered_set<std::string> seen;
  for (std::string& tok : TokenizeToStrings(text)) {
    seen.insert(stemmed ? PorterStem(tok) : std::move(tok));
  }
  for (const std::string& t : seen) ++doc_freq_[t];
  ++num_docs_;
}

double TermDictionary::DocFreqRatio(std::string_view term) const {
  if (num_docs_ == 0) return 0.0;
  return static_cast<double>(DocFreq(term)) / static_cast<double>(num_docs_);
}

uint32_t TermDictionary::DocFreq(std::string_view term) const {
  auto it = doc_freq_.find(term);
  return it == doc_freq_.end() ? 0 : it->second;
}

double TermDictionary::Idf(std::string_view term) const {
  double n = static_cast<double>(num_docs_);
  double df = static_cast<double>(DocFreq(term));
  return std::log((n + 1.0) / (df + 1.0)) + 1.0;
}

}  // namespace ckr
