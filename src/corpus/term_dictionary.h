// Term dictionary with document frequencies — the paper's "term dictionary
// which contains the term-document frequencies (i.e. the number of
// documents of a large web corpus containing the dictionary term)"
// (Section II-B). Built once over the web corpus and shared by concept-
// vector generation and relevant-keyword mining.
#ifndef CKR_CORPUS_TERM_DICTIONARY_H_
#define CKR_CORPUS_TERM_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "corpus/document.h"

namespace ckr {

/// Immutable after Build(); lookup is by normalized token.
class TermDictionary {
 public:
  TermDictionary() = default;

  /// Counts document frequencies over the corpus (tokens normalized by the
  /// standard tokenizer; stop words are kept so callers can decide). With
  /// `stemmed`, tokens are Porter-stemmed first — relevance mining needs a
  /// stemmed dictionary because its mined terms are stems.
  void Build(const std::vector<Document>& corpus, bool stemmed = false);

  /// Adds one more document's tokens (used for incremental construction).
  void AddDocument(std::string_view text, bool stemmed = false);

  /// Document-frequency ratio df(t)/N in [0, 1]; 0 for unseen terms.
  double DocFreqRatio(std::string_view term) const;

  size_t NumDocs() const { return num_docs_; }
  size_t NumTerms() const { return doc_freq_.size(); }

  /// Document frequency of a term (0 if unseen).
  uint32_t DocFreq(std::string_view term) const;

  /// Smoothed inverse document frequency:
  ///   idf(t) = ln((N + 1) / (df(t) + 1)) + 1.
  /// Always positive; unseen terms get the maximum value.
  double Idf(std::string_view term) const;

 private:
  // Transparent hasher: DocFreq/Idf are called per mined term in the
  // offline fan-out, so lookups must not allocate a temporary std::string.
  std::unordered_map<std::string, uint32_t, StringViewHash, std::equal_to<>>
      doc_freq_;
  size_t num_docs_ = 0;
};

}  // namespace ckr

#endif  // CKR_CORPUS_TERM_DICTIONARY_H_
