// Document model shared by the corpus generator, the search index, the
// detection pipeline, and the click simulator.
#ifndef CKR_CORPUS_DOCUMENT_H_
#define CKR_CORPUS_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/world.h"

namespace ckr {

using DocId = uint32_t;

/// Ground-truth record of one entity mention placed by the generator.
/// Visible only to the simulators (click model, editorial judges); the
/// ranking pipeline works from the raw text.
struct MentionTruth {
  EntityId entity = kInvalidEntity;
  size_t begin = 0;       ///< Byte offset of the mention in Document::text.
  size_t end = 0;
  double relevance = 0.0;  ///< r in [0,1]: topical relevance in this doc.
  double centrality = 0.0; ///< How central the entity is to the story.
};

/// A generated document.
struct Document {
  enum class Kind : uint8_t { kWeb = 0, kNews, kAnswers };

  DocId id = 0;
  Kind kind = Kind::kWeb;
  int topic = 0;
  std::string text;
  std::vector<MentionTruth> mentions;  ///< In increasing begin order.

  /// Ground-truth relevance of an entity in this document (max over its
  /// mentions); 0 if the entity was not deliberately placed.
  double TruthRelevance(EntityId entity) const {
    double r = 0.0;
    for (const auto& m : mentions) {
      if (m.entity == entity && m.relevance > r) r = m.relevance;
    }
    return r;
  }
};

}  // namespace ckr

#endif  // CKR_CORPUS_DOCUMENT_H_
