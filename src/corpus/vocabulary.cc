#include "corpus/vocabulary.h"

#include <cctype>

#include "common/check.h"
#include "text/stopwords.h"

namespace ckr {
namespace {

const char kConsonants[] = "bcdfghjklmnprstvwz";
const char kVowels[] = "aeiou";

std::string MakeSyllableWord(int syllables, Rng& rng) {
  std::string word;
  for (int s = 0; s < syllables; ++s) {
    word.push_back(kConsonants[rng.NextBounded(sizeof(kConsonants) - 1)]);
    word.push_back(kVowels[rng.NextBounded(sizeof(kVowels) - 1)]);
    // Occasionally close the syllable with a consonant for variety.
    if (rng.NextBernoulli(0.25)) {
      word.push_back(kConsonants[rng.NextBounded(sizeof(kConsonants) - 1)]);
    }
  }
  return word;
}

}  // namespace

WordFactory::WordFactory(uint64_t seed) : rng_(seed) {
  // Never generate stop words: they would distort idf statistics.
  for (std::string_view sw : StopWordSet()) used_.insert(std::string(sw));
}

std::string WordFactory::MakeWord(int syllables, Rng& rng) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::string word = MakeSyllableWord(syllables, rng);
    if (used_.insert(word).second) return word;
  }
  // Exhausted the syllable space at this length; extend with a counter.
  std::string base = MakeSyllableWord(syllables, rng);
  for (int i = 0;; ++i) {
    std::string word = base + static_cast<char>('a' + (i % 26));
    if (used_.insert(word).second) return word;
    base = word;
  }
}

std::string WordFactory::MakeName(int syllables, Rng& rng) {
  std::string word = MakeWord(syllables, rng);
  word[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(word[0])));
  return word;
}

void WordFactory::Reserve(const std::string& word) { used_.insert(word); }

Vocabulary::Vocabulary(size_t background_size, size_t num_topics,
                       size_t per_topic, uint64_t seed)
    : background_size_(background_size),
      num_topics_(num_topics),
      background_zipf_(background_size, 1.07) {
  Rng rng(seed);
  WordFactory factory(seed ^ 0xabcdef);
  words_.reserve(background_size + num_topics * per_topic);
  for (size_t i = 0; i < background_size; ++i) {
    int syll = 1 + static_cast<int>(rng.NextBounded(3));
    std::string w = factory.MakeWord(syll, rng);
    index_[w] = static_cast<WordId>(words_.size());
    words_.push_back(std::move(w));
  }
  topic_words_.resize(num_topics);
  for (size_t t = 0; t < num_topics; ++t) {
    topic_words_[t].reserve(per_topic);
    for (size_t i = 0; i < per_topic; ++i) {
      int syll = 2 + static_cast<int>(rng.NextBounded(2));
      std::string w = factory.MakeWord(syll, rng);
      WordId id = static_cast<WordId>(words_.size());
      index_[w] = id;
      words_.push_back(std::move(w));
      topic_words_[t].push_back(id);
    }
  }
}

WordId Vocabulary::AddWord(const std::string& word) {
  auto it = index_.find(word);
  if (it != index_.end()) return it->second;
  WordId id = static_cast<WordId>(words_.size());
  index_[word] = id;
  words_.push_back(word);
  return id;
}

bool Vocabulary::Lookup(const std::string& word, WordId* id) const {
  auto it = index_.find(word);
  if (it == index_.end()) return false;
  *id = it->second;
  return true;
}

WordId Vocabulary::SampleBackground(Rng& rng) const {
  // Zipf rank r (1-based) maps directly to word id r-1: low ids are the
  // most frequent words.
  return static_cast<WordId>(background_zipf_.Sample(rng) - 1);
}

WordId Vocabulary::SampleForTopic(size_t topic, double topic_prob,
                                  Rng& rng) const {
  CKR_DCHECK(topic < num_topics_);
  if (rng.NextBernoulli(topic_prob)) {
    const auto& tw = topic_words_[topic];
    return tw[rng.NextBounded(tw.size())];
  }
  return SampleBackground(rng);
}

bool Vocabulary::IsTopicWord(WordId id, size_t topic) const {
  return TopicOf(id) == static_cast<int>(topic);
}

int Vocabulary::TopicOf(WordId id) const {
  if (id < background_size_) return -1;
  size_t per_topic = topic_words_.empty() ? 0 : topic_words_[0].size();
  if (per_topic == 0) return -1;
  size_t offset = id - background_size_;
  size_t topic = offset / per_topic;
  if (topic >= num_topics_) return -1;
  return static_cast<int>(topic);
}

}  // namespace ckr
