// Document generation: the substitute for Yahoo! News stories, Yahoo!
// Answers snippets, and the web corpus behind the search engine.
//
// Each document is written around a primary topic. On-topic entities are
// planted with a latent centrality that controls mention count, position,
// and the ground-truth relevance label; a few off-topic entities are
// planted with low relevance (the paper's "Texas" example); generic junk
// units appear regardless of topic. The text itself is sampled from the
// topic's word distribution, so snippet mining and tf*idf behave as they
// would on real topical text.
#ifndef CKR_CORPUS_DOC_GENERATOR_H_
#define CKR_CORPUS_DOC_GENERATOR_H_

#include <vector>

#include "common/rng.h"
#include "corpus/document.h"
#include "corpus/world.h"

namespace ckr {

/// Generates the three corpora of the world deterministically.
class DocGenerator {
 public:
  /// `world` must outlive the generator.
  explicit DocGenerator(const World& world);

  /// Generates one document of the given kind. `id` should be unique per
  /// corpus; it also perturbs the random stream so corpora are stable under
  /// resizing.
  Document Generate(Document::Kind kind, DocId id);

  /// Generates a whole corpus of `count` documents.
  std::vector<Document> GenerateCorpus(Document::Kind kind, size_t count);

 private:
  struct PlannedEntity {
    EntityId entity;
    double relevance;
    double centrality;
    int mention_count;
  };

  std::vector<PlannedEntity> PlanEntities(int topic, Document::Kind kind,
                                          Rng& rng);
  Document Assemble(Document::Kind kind, DocId id, int topic,
                    size_t token_budget,
                    const std::vector<PlannedEntity>& plan, Rng& rng);

  const World& world_;
};

}  // namespace ckr

#endif  // CKR_CORPUS_DOC_GENERATOR_H_
