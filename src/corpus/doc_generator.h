// Document generation: the substitute for Yahoo! News stories, Yahoo!
// Answers snippets, and the web corpus behind the search engine.
//
// Each document is written around a primary topic. On-topic entities are
// planted with a latent centrality that controls mention count, position,
// and the ground-truth relevance label; a few off-topic entities are
// planted with low relevance (the paper's "Texas" example); generic junk
// units appear regardless of topic. The text itself is sampled from the
// topic's word distribution, so snippet mining and tf*idf behave as they
// would on real topical text.
#ifndef CKR_CORPUS_DOC_GENERATOR_H_
#define CKR_CORPUS_DOC_GENERATOR_H_

#include <vector>

#include "common/rng.h"
#include "corpus/document.h"
#include "corpus/world.h"

namespace ckr {

/// Generates the three corpora of the world deterministically. Stateless
/// beyond the world reference: every document is derived from a
/// counter-seeded per-document RNG stream, so Generate() is safe to call
/// concurrently for distinct ids and corpora are stable under resizing.
class DocGenerator {
 public:
  /// `world` must outlive the generator.
  explicit DocGenerator(const World& world);

  /// Generates one document of the given kind. `id` should be unique per
  /// corpus; it also perturbs the random stream so corpora are stable under
  /// resizing.
  Document Generate(Document::Kind kind, DocId id) const;

  /// Generates a whole corpus of `count` documents.
  std::vector<Document> GenerateCorpus(Document::Kind kind, size_t count) const;

  /// Topic of document (kind, id) without assembling its text — replays
  /// only the topic draw of the per-document stream, so it agrees with
  /// Generate() by construction. Used by the click-log generator to place
  /// clicks on topically matching documents at corpus scales where
  /// materializing every document is off the table.
  int DocTopic(Document::Kind kind, DocId id) const;

 private:
  struct PlannedEntity {
    EntityId entity;
    double relevance;
    double centrality;
    int mention_count;
  };

  /// The per-document RNG stream both Generate() and DocTopic() replay.
  Rng PerDocRng(Document::Kind kind, DocId id) const;

  std::vector<PlannedEntity> PlanEntities(int topic, Document::Kind kind,
                                          Rng& rng) const;
  Document Assemble(Document::Kind kind, DocId id, int topic,
                    size_t token_budget,
                    const std::vector<PlannedEntity>& plan, Rng& rng) const;

  const World& world_;
};

}  // namespace ckr

#endif  // CKR_CORPUS_DOC_GENERATOR_H_
