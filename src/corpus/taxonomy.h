// The entity taxonomy of the Contextual Shortcuts platform (paper Section
// II-A): "a handful major types, such as people, organizations, places,
// events, animals, products, and each of these major types contains a
// large number of subtypes, e.g. actor, musician, scientist".
#ifndef CKR_CORPUS_TAXONOMY_H_
#define CKR_CORPUS_TAXONOMY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ckr {

/// Major ("high level") entity types. kConcept marks abstract query-log
/// concepts that are not in the editorial dictionaries; kPattern marks
/// regex-detected entities (emails, URLs, phones) which bypass relevance
/// ranking entirely.
enum class EntityType : uint8_t {
  kPerson = 0,
  kPlace,
  kOrganization,
  kEvent,
  kAnimal,
  kProduct,
  kConcept,
  kPattern,
};

constexpr int kNumEntityTypes = 8;

/// Subtypes under each major type (a representative subset of the paper's
/// "large number of subtypes").
struct TaxonomyNode {
  EntityType type;
  std::string subtype;
};

/// Name of a major type ("person", "place", ...).
std::string_view EntityTypeName(EntityType type);

/// Parses a major-type name; returns kConcept for unknown names.
EntityType ParseEntityType(std::string_view name);

/// The taxonomy: subtype lists per major type.
class Taxonomy {
 public:
  Taxonomy();

  /// All subtypes of a major type (non-empty for every dictionary type).
  const std::vector<std::string>& Subtypes(EntityType type) const;

  /// Total number of (type, subtype) nodes.
  size_t NodeCount() const;

 private:
  std::vector<std::vector<std::string>> subtypes_;
};

}  // namespace ckr

#endif  // CKR_CORPUS_TAXONOMY_H_
