// The synthetic world behind every experiment.
//
// The paper's system consumed proprietary Yahoo! assets. This module
// defines the latent universe that replaces them: topics, a vocabulary, and
// a population of entities/concepts, each with latent ground-truth
// *interestingness* (how appealing to the broad user base, Section IV-A)
// and *popularity* (query demand). Per-document *relevance* of a mention is
// assigned by the document generator. These latents drive only the
// simulated user behaviour (queries, clicks, editorial judgments); the
// learning pipeline never observes them directly — it sees the features of
// Section IV mined from the generated artifacts.
#ifndef CKR_CORPUS_WORLD_H_
#define CKR_CORPUS_WORLD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "corpus/taxonomy.h"
#include "corpus/vocabulary.h"

namespace ckr {

/// Identifier of an entity/concept in the world.
using EntityId = uint32_t;

constexpr EntityId kInvalidEntity = static_cast<EntityId>(-1);

/// Scale and shape knobs of the synthetic world. Defaults reproduce the
/// paper's dataset scale (Section V-A.1) on a laptop.
struct WorldConfig {
  uint64_t seed = 20090329;  // ICDE 2009 :-)

  // Vocabulary.
  size_t num_topics = 24;
  size_t background_vocab = 4000;
  size_t words_per_topic = 140;

  // Entity universe.
  size_t num_named_entities = 900;   ///< Editorial-dictionary entities.
  size_t num_concepts = 600;         ///< Query-log multi-term concepts.
  size_t num_generic_concepts = 60;  ///< Junk units ("my favorite", ...).

  // Corpora.
  size_t num_web_docs = 6000;       ///< The "web corpus" behind the engine.
  size_t num_news_stories = 1500;   ///< Yahoo! News stories (pre-cleaning).
  size_t num_answers_snippets = 900;

  // Document shape (token counts).
  size_t web_doc_min_tokens = 120;
  size_t web_doc_max_tokens = 420;
  size_t news_min_tokens = 250;
  size_t news_max_tokens = 700;
  size_t answers_min_tokens = 40;
  size_t answers_max_tokens = 130;

  // Mention structure.
  double topic_word_prob = 0.32;    ///< P(topic word) per sampled token.
  size_t on_topic_entities_min = 4;
  size_t on_topic_entities_max = 9;
  size_t off_topic_entities_max = 3;
  double generic_concept_prob = 0.35;  ///< P(doc contains >=1 junk unit).

  [[nodiscard]] Status Validate() const;
};

/// One entity or concept of the world.
struct Entity {
  EntityId id = kInvalidEntity;
  std::string surface;     ///< Display form, e.g. "Varok Tilmand".
  std::string key;         ///< Normalized lower-case match key.
  EntityType type = EntityType::kConcept;
  int subtype = 0;         ///< Index into Taxonomy::Subtypes(type).
  int primary_topic = 0;   ///< Home topic.
  int secondary_topic = -1;  ///< Optional second topic (-1 if none).

  // ---- Latent ground truth (visible only to simulators) ----
  double interestingness = 0.0;  ///< g in [0,1].
  double popularity = 0.0;       ///< Query demand in [0,1].
  double notability = 0.0;       ///< Drives Wikipedia article length.
  bool is_generic = false;       ///< Junk unit with no topical home.
  bool in_dictionary = false;    ///< Member of the editorial dictionaries.

  // Geo metadata pack payload for places (paper Section II-A).
  float latitude = 0.0f;
  float longitude = 0.0f;

  /// Companion vocabulary: words that co-occur with this entity's mentions
  /// in generated text (the analogue of real entity context, e.g. a
  /// politician co-occurring with legislature terms). A mix of shared
  /// topic words and entity-specific words; empty for generic junk units.
  std::vector<WordId> companions;

  /// Number of whitespace-separated terms in the surface form.
  int TermCount() const;
};

/// The entity universe plus vocabulary and taxonomy. Construction is fully
/// deterministic in WorldConfig::seed.
class World {
 public:
  /// Builds the world; returns InvalidArgument on nonsensical configs.
  [[nodiscard]] static StatusOr<std::unique_ptr<World>> Create(const WorldConfig& config);

  const WorldConfig& config() const { return config_; }
  const Vocabulary& vocabulary() const { return *vocab_; }
  const Taxonomy& taxonomy() const { return taxonomy_; }

  size_t NumEntities() const { return entities_.size(); }
  const Entity& entity(EntityId id) const { return entities_[id]; }
  const std::vector<Entity>& entities() const { return entities_; }

  /// Entities whose primary or secondary topic is `topic`.
  const std::vector<EntityId>& TopicEntities(size_t topic) const {
    return topic_entities_[topic];
  }

  /// All generic (junk) concepts.
  const std::vector<EntityId>& GenericConcepts() const {
    return generic_concepts_;
  }

  /// Looks up an entity by normalized key; kInvalidEntity if unknown.
  EntityId FindByKey(const std::string& key) const;

  /// Samples an entity for a document of `topic`, weighted by popularity.
  EntityId SampleTopicEntity(size_t topic, Rng& rng) const;

  /// Samples an entity whose topics exclude `topic` (the "Texas" case).
  EntityId SampleOffTopicEntity(size_t topic, Rng& rng) const;

 private:
  World(const WorldConfig& config);

  void BuildEntities();
  Entity MakeNamedEntity(EntityType type, Rng& rng, WordFactory& factory);
  Entity MakeConcept(Rng& rng);
  Entity MakeGenericConcept(Rng& rng);
  void FinishEntity(Entity entity);

  WorldConfig config_;
  std::unique_ptr<Vocabulary> vocab_;
  Taxonomy taxonomy_;
  Rng rng_;
  std::vector<Entity> entities_;
  std::vector<std::vector<EntityId>> topic_entities_;
  std::vector<EntityId> generic_concepts_;
  std::unordered_map<std::string, EntityId> key_index_;
};

}  // namespace ckr

#endif  // CKR_CORPUS_WORLD_H_
