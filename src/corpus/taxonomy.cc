#include "corpus/taxonomy.h"


namespace ckr {

std::string_view EntityTypeName(EntityType type) {
  switch (type) {
    case EntityType::kPerson:
      return "person";
    case EntityType::kPlace:
      return "place";
    case EntityType::kOrganization:
      return "organization";
    case EntityType::kEvent:
      return "event";
    case EntityType::kAnimal:
      return "animal";
    case EntityType::kProduct:
      return "product";
    case EntityType::kConcept:
      return "concept";
    case EntityType::kPattern:
      return "pattern";
  }
  return "unknown";
}

EntityType ParseEntityType(std::string_view name) {
  for (int i = 0; i < kNumEntityTypes; ++i) {
    EntityType t = static_cast<EntityType>(i);
    if (EntityTypeName(t) == name) return t;
  }
  return EntityType::kConcept;
}

Taxonomy::Taxonomy() {
  subtypes_.resize(kNumEntityTypes);
  subtypes_[static_cast<size_t>(EntityType::kPerson)] = {
      "actor",    "musician",  "scientist", "politician", "athlete",
      "author",   "director",  "journalist", "executive",
  };
  subtypes_[static_cast<size_t>(EntityType::kPlace)] = {
      "city", "country", "state", "landmark", "region", "street_address",
  };
  subtypes_[static_cast<size_t>(EntityType::kOrganization)] = {
      "company", "government", "ngo", "sports_team", "university", "band",
  };
  subtypes_[static_cast<size_t>(EntityType::kEvent)] = {
      "election", "sports_event", "disaster", "festival", "conflict",
  };
  subtypes_[static_cast<size_t>(EntityType::kAnimal)] = {
      "mammal", "bird", "reptile", "fish",
  };
  subtypes_[static_cast<size_t>(EntityType::kProduct)] = {
      "phone", "car", "movie", "game", "software", "book",
  };
  subtypes_[static_cast<size_t>(EntityType::kConcept)] = {"query_unit"};
  subtypes_[static_cast<size_t>(EntityType::kPattern)] = {
      "email", "url", "phone_number",
  };
}

const std::vector<std::string>& Taxonomy::Subtypes(EntityType type) const {
  return subtypes_[static_cast<size_t>(type)];
}

size_t Taxonomy::NodeCount() const {
  size_t n = 0;
  for (const auto& list : subtypes_) n += list.size();
  return n;
}

}  // namespace ckr
