#include "framework/runtime_ranker.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "framework/golomb.h"
#include "obs/hooks.h"
#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace ckr {
namespace {

double SafeRate(uint64_t bytes, double seconds) {
  return seconds > 0 ? static_cast<double>(bytes) / 1e6 / seconds : 0.0;
}

void SortRanked(std::vector<RankedAnnotation>* ranked) {
  std::sort(ranked->begin(), ranked->end(),
            [](const RankedAnnotation& a, const RankedAnnotation& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.begin < b.begin;
            });
}

}  // namespace

void QuantizedInterestingnessStore::Add(std::string_view key,
                                        const InterestingnessVector& vec) {
  raw_[std::string(key)] = vec.Flatten();
  finalized_ = false;
}

void QuantizedInterestingnessStore::Finalize() {
  const size_t dim = InterestingnessVector::Dim();
  field_min_.assign(dim, 1e300);
  field_max_.assign(dim, -1e300);
  for (const auto& [key, v] : raw_) {
    for (size_t i = 0; i < dim; ++i) {
      field_min_[i] = std::min(field_min_[i], v[i]);
      field_max_[i] = std::max(field_max_[i], v[i]);
    }
  }
  if (raw_.empty()) {
    field_min_.assign(dim, 0.0);
    field_max_.assign(dim, 1.0);
  }
  // Dense layout: ids in sorted-key order for run-to-run determinism.
  keys_.clear();
  keys_.reserve(raw_.size());
  for (const auto& [key, v] : raw_) keys_.push_back(key);
  std::sort(keys_.begin(), keys_.end());
  key_to_id_.clear();
  key_to_id_.reserve(keys_.size());
  flat_.assign(keys_.size() * dim, 0);
  for (uint32_t id = 0; id < keys_.size(); ++id) {
    key_to_id_.emplace(keys_[id], id);
    const std::vector<double>& v = raw_.at(keys_[id]);
    uint16_t* q = flat_.data() + static_cast<size_t>(id) * dim;
    for (size_t i = 0; i < dim; ++i) {
      double span = field_max_[i] - field_min_[i];
      double frac = span > 0 ? (v[i] - field_min_[i]) / span : 0.0;
      q[i] = static_cast<uint16_t>(frac * 65535.0 + 0.5);
    }
  }
  finalized_ = true;
}

uint32_t QuantizedInterestingnessStore::IdOf(std::string_view key) const {
  auto it = key_to_id_.find(key);
  return it == key_to_id_.end() ? kInvalidConcept : it->second;
}

bool QuantizedInterestingnessStore::LookupById(uint32_t id,
                                               std::vector<double>* out) const {
  if (id >= keys_.size()) return false;
  const size_t dim = InterestingnessVector::Dim();
  out->resize(dim);
  const uint16_t* q = flat_.data() + static_cast<size_t>(id) * dim;
  for (size_t i = 0; i < dim; ++i) {
    double span = field_max_[i] - field_min_[i];
    (*out)[i] = field_min_[i] + span * static_cast<double>(q[i]) / 65535.0;
  }
  return true;
}

bool QuantizedInterestingnessStore::Lookup(std::string_view key,
                                           std::vector<double>* out) const {
  return LookupById(IdOf(key), out);
}

size_t QuantizedInterestingnessStore::PayloadBytes() const {
  return keys_.size() * InterestingnessVector::Dim() * sizeof(uint16_t);
}

void QuantizedInterestingnessStore::SaveTo(BinaryWriter* writer) const {
  writer->U32(0x51493031);  // 'QI01'
  writer->U32(static_cast<uint32_t>(field_min_.size()));
  for (double v : field_min_) writer->F64(v);
  for (double v : field_max_) writer->F64(v);
  writer->U32(static_cast<uint32_t>(keys_.size()));
  const size_t dim = InterestingnessVector::Dim();
  for (uint32_t id = 0; id < keys_.size(); ++id) {
    writer->Str(keys_[id]);
    const uint16_t* q = flat_.data() + static_cast<size_t>(id) * dim;
    for (size_t i = 0; i < dim; ++i) writer->U16(q[i]);
  }
}

StatusOr<QuantizedInterestingnessStore> QuantizedInterestingnessStore::LoadFrom(
    BinaryReader* reader) {
  if (reader->U32() != 0x51493031) {
    return Status::InvalidArgument("bad interestingness-store magic");
  }
  QuantizedInterestingnessStore store;
  uint32_t dim = reader->U32();
  if (dim != InterestingnessVector::Dim()) {
    return Status::InvalidArgument("interestingness dimensionality mismatch");
  }
  store.field_min_.resize(dim);
  store.field_max_.resize(dim);
  for (double& v : store.field_min_) v = reader->F64();
  for (double& v : store.field_max_) v = reader->F64();
  uint32_t n = reader->U32();
  // Every record is at least its key's 4-byte length prefix plus dim
  // quantized values; a declared count that cannot fit the remaining
  // bytes is a corrupted size field and must fail before any reserve.
  const size_t min_record_bytes = sizeof(uint32_t) + dim * sizeof(uint16_t);
  if (n > reader->remaining() / min_record_bytes) {
    return Status::InvalidArgument(
        "interestingness store count exceeds blob size");
  }
  // Records may come from any writer order (the current SaveTo emits
  // sorted keys; pre-flat packs used hash order): collect, then freeze in
  // sorted-key order so loaded ids match a freshly finalized store.
  std::vector<std::pair<std::string, std::vector<uint16_t>>> records;
  records.reserve(n);
  for (uint32_t i = 0; i < n && reader->ok(); ++i) {
    std::string key = reader->Str();
    std::vector<uint16_t> q(dim);
    for (uint16_t& v : q) v = reader->U16();
    records.emplace_back(std::move(key), std::move(q));
  }
  if (!reader->ok()) {
    return Status::InvalidArgument("truncated interestingness store");
  }
  std::sort(records.begin(), records.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  store.keys_.reserve(records.size());
  store.flat_.reserve(records.size() * dim);
  for (uint32_t id = 0; id < records.size(); ++id) {
    store.key_to_id_.emplace(records[id].first, id);
    store.keys_.push_back(std::move(records[id].first));
    store.flat_.insert(store.flat_.end(), records[id].second.begin(),
                       records[id].second.end());
  }
  store.finalized_ = true;
  return store;
}

uint32_t GlobalTidTable::Intern(std::string_view term) {
  auto it = tids_.find(term);
  if (it != tids_.end()) return it->second;
  if (overflowed_ || tids_.size() >= capacity_ || tids_.size() >= kMaxTid) {
    overflowed_ = true;
    return kMaxTid;
  }
  uint32_t tid = static_cast<uint32_t>(tids_.size());
  tids_.emplace(std::string(term), tid);
  return tid;
}

uint32_t GlobalTidTable::Lookup(std::string_view term) const {
  auto it = tids_.find(term);
  return it == tids_.end() ? kMaxTid : it->second;
}

void GlobalTidTable::SaveTo(BinaryWriter* writer) const {
  writer->U32(0x54493031);  // 'TI01'
  writer->U32(static_cast<uint32_t>(tids_.size()));
  for (const auto& [term, tid] : tids_) {
    writer->Str(term);
    writer->U32(tid);
  }
}

StatusOr<GlobalTidTable> GlobalTidTable::LoadFrom(BinaryReader* reader) {
  if (reader->U32() != 0x54493031) {
    return Status::InvalidArgument("bad TID-table magic");
  }
  GlobalTidTable table;
  uint32_t n = reader->U32();
  // Each entry is at least a 4-byte key length prefix plus its 4-byte tid.
  if (n > reader->remaining() / (2 * sizeof(uint32_t))) {
    return Status::InvalidArgument("TID-table count exceeds blob size");
  }
  table.tids_.reserve(n);
  for (uint32_t i = 0; i < n && reader->ok(); ++i) {
    std::string term = reader->Str();
    uint32_t tid = reader->U32();
    if (tid > kMaxTid) return Status::InvalidArgument("TID out of range");
    table.tids_[std::move(term)] = tid;
  }
  if (!reader->ok()) return Status::InvalidArgument("truncated TID table");
  return table;
}

void PackedRelevanceStore::Add(std::string_view key,
                               const std::vector<RelevantTerm>& terms) {
  std::vector<RelevantTerm> kept(
      terms.begin(),
      terms.begin() + std::min<size_t>(terms.size(), 100));
  raw_[std::string(key)] = std::move(kept);
  finalized_ = false;
}

void PackedRelevanceStore::Finalize() {
  double max_score = 0.0;
  for (const auto& [key, terms] : raw_) {
    for (const RelevantTerm& t : terms) {
      max_score = std::max(max_score, t.score);
    }
  }
  score_scale_ = max_score > 0 ? max_score : 1.0;
  // Dense CSR layout in sorted-key order; interning in that order also
  // makes the TID numbering deterministic across runs.
  keys_.clear();
  keys_.reserve(raw_.size());
  for (const auto& [key, terms] : raw_) keys_.push_back(key);
  std::sort(keys_.begin(), keys_.end());
  key_to_id_.clear();
  key_to_id_.reserve(keys_.size());
  offsets_.assign(1, 0);
  offsets_.reserve(keys_.size() + 1);
  pairs_.clear();
  std::vector<uint32_t> packed;
  for (uint32_t id = 0; id < keys_.size(); ++id) {
    key_to_id_.emplace(keys_[id], id);
    const std::vector<RelevantTerm>& terms = raw_.at(keys_[id]);
    packed.clear();
    packed.reserve(terms.size());
    for (const RelevantTerm& t : terms) {
      uint32_t tid = tids_->Intern(t.term);
      uint32_t score10 = static_cast<uint32_t>(
          std::min(1.0, std::max(0.0, t.score / score_scale_)) * 1023.0 + 0.5);
      packed.push_back((tid << 10) | score10);
    }
    // Sorted by TID: enables the Golomb-compressed representation and
    // cache-friendly probing.
    std::sort(packed.begin(), packed.end());
    pairs_.insert(pairs_.end(), packed.begin(), packed.end());
    offsets_.push_back(static_cast<uint32_t>(pairs_.size()));
  }
  finalized_ = true;
}

uint32_t PackedRelevanceStore::IdOf(std::string_view key) const {
  auto it = key_to_id_.find(key);
  return it == key_to_id_.end() ? kInvalidConcept : it->second;
}

double PackedRelevanceStore::ScoreById(uint32_t id,
                                       const EpochSet& context_tids) const {
  if (id >= keys_.size()) return 0.0;
  double total = 0.0;
  const uint32_t* p = pairs_.data() + offsets_[id];
  const uint32_t* end = pairs_.data() + offsets_[id + 1];
  for (; p != end; ++p) {
    uint32_t tid = *p >> 10;
    if (context_tids.Contains(tid)) {
      total += static_cast<double>(*p & 1023u) / 1023.0 * score_scale_;
    }
  }
  return total;
}

double PackedRelevanceStore::Score(
    std::string_view key,
    const std::unordered_set<uint32_t>& context_tids) const {
  uint32_t id = IdOf(key);
  if (id == kInvalidConcept) return 0.0;
  double total = 0.0;
  for (uint32_t i = offsets_[id]; i < offsets_[id + 1]; ++i) {
    uint32_t pair = pairs_[i];
    uint32_t tid = pair >> 10;
    if (context_tids.count(tid) > 0) {
      total += static_cast<double>(pair & 1023u) / 1023.0 * score_scale_;
    }
  }
  return total;
}

size_t PackedRelevanceStore::PayloadBytes() const {
  return pairs_.size() * sizeof(uint32_t);
}

size_t PackedRelevanceStore::GolombCompressedBytes() const {
  size_t total = 0;
  std::vector<uint32_t> tids;
  for (uint32_t id = 0; id < keys_.size(); ++id) {
    size_t count = offsets_[id + 1] - offsets_[id];
    tids.clear();
    tids.reserve(count);
    for (uint32_t i = offsets_[id]; i < offsets_[id + 1]; ++i) {
      uint32_t tid = pairs_[i] >> 10;
      if (tids.empty() || tid > tids.back()) tids.push_back(tid);
    }
    auto encoded = EncodeSortedIds(tids, GlobalTidTable::kMaxTid + 1);
    if (encoded.ok()) {
      total += encoded.value().size();
      // 10-bit scores stored alongside, byte-packed.
      total += (count * 10 + 7) / 8;
    } else {
      total += count * sizeof(uint32_t);  // Fallback: raw.
    }
  }
  return total;
}

void PackedRelevanceStore::SaveTo(BinaryWriter* writer) const {
  writer->U32(0x50523031);  // 'PR01'
  writer->F64(score_scale_);
  writer->U32(static_cast<uint32_t>(keys_.size()));
  for (uint32_t id = 0; id < keys_.size(); ++id) {
    writer->Str(keys_[id]);
    writer->U32(offsets_[id + 1] - offsets_[id]);
    for (uint32_t i = offsets_[id]; i < offsets_[id + 1]; ++i) {
      writer->U32(pairs_[i]);
    }
  }
}

StatusOr<PackedRelevanceStore> PackedRelevanceStore::LoadFrom(
    BinaryReader* reader, GlobalTidTable* tids) {
  if (reader->U32() != 0x50523031) {
    return Status::InvalidArgument("bad relevance-store magic");
  }
  PackedRelevanceStore store(tids);
  store.score_scale_ = reader->F64();
  uint32_t n = reader->U32();
  // Each record is at least a 4-byte key length prefix plus its 4-byte
  // term count.
  if (n > reader->remaining() / (2 * sizeof(uint32_t))) {
    return Status::InvalidArgument("relevance store count exceeds blob size");
  }
  std::vector<std::pair<std::string, std::vector<uint32_t>>> records;
  records.reserve(n);
  for (uint32_t i = 0; i < n && reader->ok(); ++i) {
    std::string key = reader->Str();
    uint32_t m = reader->U32();
    if (m > 100) return Status::InvalidArgument("oversized term list");
    std::vector<uint32_t> pairs(m);
    for (uint32_t& p : pairs) p = reader->U32();
    records.emplace_back(std::move(key), std::move(pairs));
  }
  if (!reader->ok()) return Status::InvalidArgument("truncated relevance store");
  std::sort(records.begin(), records.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  store.keys_.reserve(records.size());
  store.offsets_.assign(1, 0);
  store.offsets_.reserve(records.size() + 1);
  for (uint32_t id = 0; id < records.size(); ++id) {
    store.key_to_id_.emplace(records[id].first, id);
    store.keys_.push_back(std::move(records[id].first));
    store.pairs_.insert(store.pairs_.end(), records[id].second.begin(),
                        records[id].second.end());
    store.offsets_.push_back(static_cast<uint32_t>(store.pairs_.size()));
  }
  store.finalized_ = true;
  return store;
}

void RuntimeStats::Merge(const RuntimeStats& other) {
  stemmer_seconds += other.stemmer_seconds;
  ranker_seconds += other.ranker_seconds;
  match_seconds += other.match_seconds;
  score_seconds += other.score_seconds;
  bytes_processed += other.bytes_processed;
  documents += other.documents;
  detections += other.detections;
}

double RuntimeStats::StemmerMBps() const {
  return SafeRate(bytes_processed, stemmer_seconds);
}

double RuntimeStats::RankerMBps() const {
  return SafeRate(bytes_processed, ranker_seconds);
}

double RuntimeStats::MatchMBps() const {
  return SafeRate(bytes_processed, match_seconds);
}

double RuntimeStats::ScoreMBps() const {
  return SafeRate(bytes_processed, score_seconds);
}

double RuntimeStats::DocsPerSec() const {
  double total = stemmer_seconds + ranker_seconds;
  return total > 0 ? static_cast<double>(documents) / total : 0.0;
}

RuntimeRanker::RuntimeRanker(const EntityDetector& detector,
                             const QuantizedInterestingnessStore& interestingness,
                             const PackedRelevanceStore& relevance,
                             const GlobalTidTable& tids, RankSvmModel model)
    : detector_(detector),
      interestingness_(interestingness),
      relevance_(relevance),
      tids_(tids),
      model_(std::move(model)) {
  // Resolve every detector entry to dense store ids once; the per-document
  // path then runs entirely on ids.
  const uint32_t n = static_cast<uint32_t>(detector_.NumEntries());
  entry_interest_.resize(n, kInvalidConcept);
  entry_relevance_.resize(n, kInvalidConcept);
  for (uint32_t i = 0; i < n; ++i) {
    const std::string& key = detector_.EntryKey(i);
    entry_interest_[i] = interestingness_.IdOf(key);
    entry_relevance_[i] = relevance_.IdOf(key);
  }
}

std::unordered_set<uint32_t> RuntimeRanker::StemToTids(
    std::string_view text) const {
  std::unordered_set<uint32_t> out;
  for (std::string& tok : TokenizeToStrings(text)) {
    if (IsStopWord(tok)) continue;
    uint32_t tid = tids_.Lookup(PorterStem(tok));
    if (tid != GlobalTidTable::kMaxTid) out.insert(tid);
  }
  return out;
}

std::vector<RankedAnnotation> RuntimeRanker::ProcessDocument(
    std::string_view text, RuntimeStats* stats) const {
  static thread_local RankerScratch scratch;
  return ProcessDocument(text, &scratch, stats);
}

std::vector<RankedAnnotation> RuntimeRanker::ProcessDocument(
    std::string_view text, RankerScratch* scratch, RuntimeStats* stats) const {
  // Stemmer component: tokenize once (shared with detection below) and
  // stem every non-stopword token into the context TID set.
  int64_t t0 = clock_->NowNanos();
  TokenizeInto(text, &scratch->detect.tokens);
  scratch->context.Reset(tids_.size());
  for (const Token& tok : scratch->detect.tokens) {
    if (IsStopWord(tok.text)) continue;
    PorterStemInto(tok.text, &scratch->stem_buf);
    uint32_t tid = tids_.Lookup(scratch->stem_buf);
    if (tid != GlobalTidTable::kMaxTid) scratch->context.Insert(tid);
  }
  double stem_s = clock_->SecondsSince(t0);

  // Ranker component, stage 1: candidate detection on the flat automaton.
  int64_t t1 = clock_->NowNanos();
  const std::vector<RawDetection>& raw =
      detector_.DetectRawPreTokenized(text, &scratch->detect);
  double match_s = clock_->SecondsSince(t1);

  // Ranker component, stage 2: id-keyed feature assembly + model scoring.
  int64_t t2 = clock_->NowNanos();
  std::vector<RankedAnnotation> ranked;
  scratch->seen_entries.Reset(detector_.NumEntries());
  for (const RawDetection& d : raw) {
    if (d.type == EntityType::kPattern ||
        d.entry_id == EntityDetector::kPatternEntry) {
      continue;
    }
    if (!scratch->seen_entries.Insert(d.entry_id)) continue;  // First only.
    uint32_t interest_id = entry_interest_[d.entry_id];
    if (!interestingness_.LookupById(interest_id, &scratch->features)) {
      // Degraded path: detected but missing a feature vector (store and
      // dictionary out of sync); the annotation is silently dropped, so
      // count it — drift here is otherwise invisible.
      CKR_OBS_COUNTER_INC("ckr.runtime.missing_feature_vector");
      continue;
    }
    // Log-scaled to match ExperimentRunner::Features' model layout.
    scratch->features.push_back(std::log1p(
        relevance_.ScoreById(entry_relevance_[d.entry_id], scratch->context)));
    RankedAnnotation a;
    a.key = detector_.EntryKey(d.entry_id);
    a.begin = d.begin;
    a.end = d.end;
    a.type = d.type;
    a.score = model_.Score(scratch->features);
    if (tracker_ != nullptr) {
      a.score += tracker_->Adjustment(a.key);
      CKR_OBS_COUNTER_INC("ckr.runtime.ctr_adjustments");
    }
    ranked.push_back(std::move(a));
  }
  SortRanked(&ranked);
  double score_s = clock_->SecondsSince(t2);

  CKR_OBS_HISTOGRAM_RECORD("ckr.runtime.stage.stem_seconds", stem_s);
  CKR_OBS_HISTOGRAM_RECORD("ckr.runtime.stage.match_seconds", match_s);
  CKR_OBS_HISTOGRAM_RECORD("ckr.runtime.stage.score_seconds", score_s);
  CKR_OBS_COUNTER_INC("ckr.runtime.documents");
  CKR_OBS_COUNTER_ADD("ckr.runtime.detections", ranked.size());
  CKR_OBS_COUNTER_ADD("ckr.runtime.bytes_processed", text.size());

  if (stats != nullptr) {
    stats->stemmer_seconds += stem_s;
    stats->match_seconds += match_s;
    stats->score_seconds += score_s;
    stats->ranker_seconds += match_s + score_s;
    stats->bytes_processed += text.size();
    stats->documents += 1;
    stats->detections += ranked.size();
  }
  return ranked;
}

std::vector<std::vector<RankedAnnotation>> RuntimeRanker::ProcessBatch(
    std::span<const std::string_view> docs, unsigned num_threads,
    RuntimeStats* stats) const {
  std::vector<std::vector<RankedAnnotation>> results(docs.size());
  unsigned workers = num_threads <= 1 ? 1 : num_threads;
  if (workers > docs.size() && !docs.empty()) {
    workers = static_cast<unsigned>(docs.size());
  }
  CKR_OBS_SCOPED_TIMER("ckr.runtime.batch_seconds");
  CKR_OBS_COUNTER_INC("ckr.runtime.batches");
  CKR_OBS_COUNTER_ADD("ckr.runtime.batch_docs", docs.size());
  CKR_OBS_GAUGE_SET("ckr.runtime.batch_workers", workers);
  std::vector<RankerScratch> scratches(workers);
  std::vector<RuntimeStats> worker_stats(workers);
  ParallelForWorkers(docs.size(), workers, [&](unsigned worker, size_t i) {
    results[i] = ProcessDocument(docs[i], &scratches[worker],
                                 &worker_stats[worker]);
  });
  if (stats != nullptr) {
    for (const RuntimeStats& ws : worker_stats) stats->Merge(ws);
  }
  return results;
}

std::vector<RankedAnnotation> RuntimeRanker::ProcessDocumentLegacy(
    std::string_view text, RuntimeStats* stats) const {
  int64_t t0 = clock_->NowNanos();
  std::unordered_set<uint32_t> context = StemToTids(text);
  double stem_s = clock_->SecondsSince(t0);

  int64_t t1 = clock_->NowNanos();
  std::vector<Detection> detections = detector_.Detect(text);
  std::vector<RankedAnnotation> ranked;
  std::vector<double> features;
  std::unordered_set<std::string> seen_keys;
  for (const Detection& d : detections) {
    if (d.type == EntityType::kPattern) continue;
    if (!seen_keys.insert(d.key).second) continue;  // First occurrence only.
    if (!interestingness_.Lookup(d.key, &features)) continue;
    // Log-scaled to match ExperimentRunner::Features' model layout.
    features.push_back(std::log1p(relevance_.Score(d.key, context)));
    RankedAnnotation a;
    a.key = d.key;
    a.begin = d.begin;
    a.end = d.end;
    a.type = d.type;
    a.score = model_.Score(features);
    if (tracker_ != nullptr) a.score += tracker_->Adjustment(d.key);
    ranked.push_back(std::move(a));
  }
  SortRanked(&ranked);
  double rank_s = clock_->SecondsSince(t1);

  if (stats != nullptr) {
    stats->stemmer_seconds += stem_s;
    stats->ranker_seconds += rank_s;
    stats->bytes_processed += text.size();
    stats->documents += 1;
    stats->detections += ranked.size();
  }
  return ranked;
}

}  // namespace ckr
