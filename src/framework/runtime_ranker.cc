#include "framework/runtime_ranker.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "framework/golomb.h"
#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace ckr {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

void QuantizedInterestingnessStore::Add(std::string_view key,
                                        const InterestingnessVector& vec) {
  raw_[std::string(key)] = vec.Flatten();
  finalized_ = false;
}

void QuantizedInterestingnessStore::Finalize() {
  const size_t dim = InterestingnessVector::Dim();
  field_min_.assign(dim, 1e300);
  field_max_.assign(dim, -1e300);
  for (const auto& [key, v] : raw_) {
    for (size_t i = 0; i < dim; ++i) {
      field_min_[i] = std::min(field_min_[i], v[i]);
      field_max_[i] = std::max(field_max_[i], v[i]);
    }
  }
  if (raw_.empty()) {
    field_min_.assign(dim, 0.0);
    field_max_.assign(dim, 1.0);
  }
  quantized_.clear();
  for (const auto& [key, v] : raw_) {
    std::vector<uint16_t> q(dim);
    for (size_t i = 0; i < dim; ++i) {
      double span = field_max_[i] - field_min_[i];
      double frac = span > 0 ? (v[i] - field_min_[i]) / span : 0.0;
      q[i] = static_cast<uint16_t>(frac * 65535.0 + 0.5);
    }
    quantized_[key] = std::move(q);
  }
  finalized_ = true;
}

bool QuantizedInterestingnessStore::Lookup(std::string_view key,
                                           std::vector<double>* out) const {
  auto it = quantized_.find(std::string(key));
  if (it == quantized_.end()) return false;
  const size_t dim = it->second.size();
  out->resize(dim);
  for (size_t i = 0; i < dim; ++i) {
    double span = field_max_[i] - field_min_[i];
    (*out)[i] = field_min_[i] +
                span * static_cast<double>(it->second[i]) / 65535.0;
  }
  return true;
}

size_t QuantizedInterestingnessStore::PayloadBytes() const {
  return quantized_.size() * InterestingnessVector::Dim() * sizeof(uint16_t);
}

void QuantizedInterestingnessStore::SaveTo(BinaryWriter* writer) const {
  writer->U32(0x51493031);  // 'QI01'
  writer->U32(static_cast<uint32_t>(field_min_.size()));
  for (double v : field_min_) writer->F64(v);
  for (double v : field_max_) writer->F64(v);
  writer->U32(static_cast<uint32_t>(quantized_.size()));
  for (const auto& [key, q] : quantized_) {
    writer->Str(key);
    for (uint16_t v : q) writer->U16(v);
  }
}

StatusOr<QuantizedInterestingnessStore> QuantizedInterestingnessStore::LoadFrom(
    BinaryReader* reader) {
  if (reader->U32() != 0x51493031) {
    return Status::InvalidArgument("bad interestingness-store magic");
  }
  QuantizedInterestingnessStore store;
  uint32_t dim = reader->U32();
  if (dim != InterestingnessVector::Dim()) {
    return Status::InvalidArgument("interestingness dimensionality mismatch");
  }
  store.field_min_.resize(dim);
  store.field_max_.resize(dim);
  for (double& v : store.field_min_) v = reader->F64();
  for (double& v : store.field_max_) v = reader->F64();
  uint32_t n = reader->U32();
  for (uint32_t i = 0; i < n && reader->ok(); ++i) {
    std::string key = reader->Str();
    std::vector<uint16_t> q(dim);
    for (uint16_t& v : q) v = reader->U16();
    store.quantized_[std::move(key)] = std::move(q);
  }
  if (!reader->ok()) {
    return Status::InvalidArgument("truncated interestingness store");
  }
  store.finalized_ = true;
  return store;
}

uint32_t GlobalTidTable::Intern(std::string_view term) {
  auto it = tids_.find(std::string(term));
  if (it != tids_.end()) return it->second;
  if (tids_.size() >= kMaxTid) {
    overflowed_ = true;
    return kMaxTid;
  }
  uint32_t tid = static_cast<uint32_t>(tids_.size());
  tids_.emplace(std::string(term), tid);
  return tid;
}

uint32_t GlobalTidTable::Lookup(std::string_view term) const {
  auto it = tids_.find(std::string(term));
  return it == tids_.end() ? kMaxTid : it->second;
}

void GlobalTidTable::SaveTo(BinaryWriter* writer) const {
  writer->U32(0x54493031);  // 'TI01'
  writer->U32(static_cast<uint32_t>(tids_.size()));
  for (const auto& [term, tid] : tids_) {
    writer->Str(term);
    writer->U32(tid);
  }
}

StatusOr<GlobalTidTable> GlobalTidTable::LoadFrom(BinaryReader* reader) {
  if (reader->U32() != 0x54493031) {
    return Status::InvalidArgument("bad TID-table magic");
  }
  GlobalTidTable table;
  uint32_t n = reader->U32();
  for (uint32_t i = 0; i < n && reader->ok(); ++i) {
    std::string term = reader->Str();
    uint32_t tid = reader->U32();
    if (tid > kMaxTid) return Status::InvalidArgument("TID out of range");
    table.tids_[std::move(term)] = tid;
  }
  if (!reader->ok()) return Status::InvalidArgument("truncated TID table");
  return table;
}

void PackedRelevanceStore::Add(std::string_view key,
                               const std::vector<RelevantTerm>& terms) {
  std::vector<RelevantTerm> kept(
      terms.begin(),
      terms.begin() + std::min<size_t>(terms.size(), 100));
  raw_[std::string(key)] = std::move(kept);
  finalized_ = false;
}

void PackedRelevanceStore::Finalize() {
  double max_score = 0.0;
  for (const auto& [key, terms] : raw_) {
    for (const RelevantTerm& t : terms) {
      max_score = std::max(max_score, t.score);
    }
  }
  score_scale_ = max_score > 0 ? max_score : 1.0;
  packed_.clear();
  for (const auto& [key, terms] : raw_) {
    std::vector<uint32_t> packed;
    packed.reserve(terms.size());
    for (const RelevantTerm& t : terms) {
      uint32_t tid = tids_->Intern(t.term);
      uint32_t score10 = static_cast<uint32_t>(
          std::min(1.0, std::max(0.0, t.score / score_scale_)) * 1023.0 + 0.5);
      packed.push_back((tid << 10) | score10);
    }
    // Sorted by TID: enables the Golomb-compressed representation and
    // cache-friendly probing.
    std::sort(packed.begin(), packed.end());
    packed_[key] = std::move(packed);
  }
  finalized_ = true;
}

double PackedRelevanceStore::Score(
    std::string_view key,
    const std::unordered_set<uint32_t>& context_tids) const {
  auto it = packed_.find(std::string(key));
  if (it == packed_.end()) return 0.0;
  double total = 0.0;
  for (uint32_t pair : it->second) {
    uint32_t tid = pair >> 10;
    if (context_tids.count(tid) > 0) {
      total += static_cast<double>(pair & 1023u) / 1023.0 * score_scale_;
    }
  }
  return total;
}

size_t PackedRelevanceStore::PayloadBytes() const {
  size_t pairs = 0;
  for (const auto& [key, packed] : packed_) pairs += packed.size();
  return pairs * sizeof(uint32_t);
}

size_t PackedRelevanceStore::GolombCompressedBytes() const {
  size_t total = 0;
  for (const auto& [key, packed] : packed_) {
    std::vector<uint32_t> tids;
    tids.reserve(packed.size());
    for (uint32_t pair : packed) {
      uint32_t tid = pair >> 10;
      if (tids.empty() || tid > tids.back()) tids.push_back(tid);
    }
    auto encoded = EncodeSortedIds(tids, GlobalTidTable::kMaxTid + 1);
    if (encoded.ok()) {
      total += encoded.value().size();
      // 10-bit scores stored alongside, byte-packed.
      total += (packed.size() * 10 + 7) / 8;
    } else {
      total += packed.size() * sizeof(uint32_t);  // Fallback: raw.
    }
  }
  return total;
}

void PackedRelevanceStore::SaveTo(BinaryWriter* writer) const {
  writer->U32(0x50523031);  // 'PR01'
  writer->F64(score_scale_);
  writer->U32(static_cast<uint32_t>(packed_.size()));
  for (const auto& [key, pairs] : packed_) {
    writer->Str(key);
    writer->U32(static_cast<uint32_t>(pairs.size()));
    for (uint32_t p : pairs) writer->U32(p);
  }
}

StatusOr<PackedRelevanceStore> PackedRelevanceStore::LoadFrom(
    BinaryReader* reader, GlobalTidTable* tids) {
  if (reader->U32() != 0x50523031) {
    return Status::InvalidArgument("bad relevance-store magic");
  }
  PackedRelevanceStore store(tids);
  store.score_scale_ = reader->F64();
  uint32_t n = reader->U32();
  for (uint32_t i = 0; i < n && reader->ok(); ++i) {
    std::string key = reader->Str();
    uint32_t m = reader->U32();
    if (m > 100) return Status::InvalidArgument("oversized term list");
    std::vector<uint32_t> pairs(m);
    for (uint32_t& p : pairs) p = reader->U32();
    store.packed_[std::move(key)] = std::move(pairs);
  }
  if (!reader->ok()) return Status::InvalidArgument("truncated relevance store");
  store.finalized_ = true;
  return store;
}

double RuntimeStats::StemmerMBps() const {
  return stemmer_seconds > 0
             ? static_cast<double>(bytes_processed) / 1e6 / stemmer_seconds
             : 0.0;
}

double RuntimeStats::RankerMBps() const {
  return ranker_seconds > 0
             ? static_cast<double>(bytes_processed) / 1e6 / ranker_seconds
             : 0.0;
}

RuntimeRanker::RuntimeRanker(const EntityDetector& detector,
                             const QuantizedInterestingnessStore& interestingness,
                             const PackedRelevanceStore& relevance,
                             const GlobalTidTable& tids, RankSvmModel model)
    : detector_(detector),
      interestingness_(interestingness),
      relevance_(relevance),
      tids_(tids),
      model_(std::move(model)) {}

std::unordered_set<uint32_t> RuntimeRanker::StemToTids(
    std::string_view text) const {
  std::unordered_set<uint32_t> out;
  for (std::string& tok : TokenizeToStrings(text)) {
    if (IsStopWord(tok)) continue;
    uint32_t tid = tids_.Lookup(PorterStem(tok));
    if (tid != GlobalTidTable::kMaxTid) out.insert(tid);
  }
  return out;
}

std::vector<RankedAnnotation> RuntimeRanker::ProcessDocument(
    std::string_view text, RuntimeStats* stats) const {
  auto t0 = std::chrono::steady_clock::now();
  std::unordered_set<uint32_t> context = StemToTids(text);
  double stem_s = SecondsSince(t0);

  auto t1 = std::chrono::steady_clock::now();
  std::vector<Detection> detections = detector_.Detect(text);
  std::vector<RankedAnnotation> ranked;
  std::vector<double> features;
  std::unordered_set<std::string> seen_keys;
  for (const Detection& d : detections) {
    if (d.type == EntityType::kPattern) continue;
    if (!seen_keys.insert(d.key).second) continue;  // First occurrence only.
    if (!interestingness_.Lookup(d.key, &features)) continue;
    // Log-scaled to match ExperimentRunner::Features' model layout.
    features.push_back(std::log1p(relevance_.Score(d.key, context)));
    RankedAnnotation a;
    a.key = d.key;
    a.begin = d.begin;
    a.end = d.end;
    a.type = d.type;
    a.score = model_.Score(features);
    if (tracker_ != nullptr) a.score += tracker_->Adjustment(d.key);
    ranked.push_back(std::move(a));
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedAnnotation& a, const RankedAnnotation& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.begin < b.begin;
            });
  double rank_s = SecondsSince(t1);

  if (stats != nullptr) {
    stats->stemmer_seconds += stem_s;
    stats->ranker_seconds += rank_s;
    stats->bytes_processed += text.size();
    stats->documents += 1;
    stats->detections += ranked.size();
  }
  return ranked;
}

}  // namespace ckr
