#include "framework/bitstream.h"

namespace ckr {

void BitWriter::WriteBit(bool bit) {
  size_t byte_index = bit_count_ >> 3;
  if (byte_index >= bytes_.size()) bytes_.push_back(0);
  if (bit) {
    bytes_[byte_index] |= static_cast<uint8_t>(1u << (7 - (bit_count_ & 7)));
  }
  ++bit_count_;
}

void BitWriter::WriteBits(uint64_t bits, int count) {
  for (int i = count - 1; i >= 0; --i) {
    WriteBit((bits >> i) & 1u);
  }
}

void BitWriter::WriteUnary(uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) WriteBit(true);
  WriteBit(false);
}

std::vector<uint8_t> BitWriter::Finish() { return std::move(bytes_); }

BitReader::BitReader(const std::vector<uint8_t>& bytes)
    : data_(bytes.data()), size_(bytes.size()) {}

BitReader::BitReader(const uint8_t* data, size_t size)
    : data_(data), size_(size) {}

bool BitReader::ReadBit() {
  size_t byte_index = pos_ >> 3;
  if (byte_index >= size_) {
    overflow_ = true;
    return false;
  }
  bool bit = (data_[byte_index] >> (7 - (pos_ & 7))) & 1u;
  ++pos_;
  return bit;
}

uint64_t BitReader::ReadBits(int count) {
  uint64_t out = 0;
  for (int i = 0; i < count; ++i) {
    out = (out << 1) | static_cast<uint64_t>(ReadBit());
  }
  return out;
}

uint64_t BitReader::ReadUnary() {
  uint64_t count = 0;
  while (ReadBit()) {
    ++count;
    if (overflow_) break;
  }
  return count;
}

}  // namespace ckr
