// The deployable model pack: everything the online Ranker of Section VI
// needs beyond the (externally provisioned) entity dictionaries — the
// trained ranking model, the Global TID Table, the quantized
// interestingness vectors and the packed relevant-term lists — in one
// versioned binary blob. Production pushes this artifact to serving
// machines; loading it skips the entire offline mining phase.
#ifndef CKR_FRAMEWORK_STORE_PACK_H_
#define CKR_FRAMEWORK_STORE_PACK_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "framework/runtime_ranker.h"
#include "ranksvm/rank_svm.h"

namespace ckr {

/// Owns the runtime stores. Heap-held components keep internal pointers
/// stable (PackedRelevanceStore references the TID table).
struct StorePack {
  std::unique_ptr<GlobalTidTable> tids;
  QuantizedInterestingnessStore interestingness;
  std::unique_ptr<PackedRelevanceStore> relevance;
  RankSvmModel model;

  /// Serializes the pack to a binary blob.
  std::string Serialize() const;

  /// Parses a blob produced by Serialize().
  [[nodiscard]] static StatusOr<StorePack> Deserialize(std::string_view blob);

  /// Convenience file I/O.
  [[nodiscard]] Status SaveToFile(const std::string& path) const;
  [[nodiscard]] static StatusOr<StorePack> LoadFromFile(const std::string& path);
};

/// Serializes components that live outside a StorePack (e.g. inside a
/// trained ContextualRanker) into the same blob format.
std::string SerializeStorePack(const GlobalTidTable& tids,
                               const QuantizedInterestingnessStore& interest,
                               const PackedRelevanceStore& relevance,
                               const RankSvmModel& model);

}  // namespace ckr

#endif  // CKR_FRAMEWORK_STORE_PACK_H_
