// Bit-level I/O used by the Golomb coder (paper Section VI cites integer
// compression, Witten/Moffat/Bell [26], as the way to shrink the per-
// concept relevant-term storage).
#ifndef CKR_FRAMEWORK_BITSTREAM_H_
#define CKR_FRAMEWORK_BITSTREAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ckr {

/// Append-only MSB-first bit writer.
class BitWriter {
 public:
  /// Writes the lowest `count` bits of `bits` (MSB of the group first).
  /// count must be <= 64.
  void WriteBits(uint64_t bits, int count);

  /// Writes a single bit.
  void WriteBit(bool bit);

  /// Writes `count` one-bits followed by a zero (unary coding).
  void WriteUnary(uint64_t count);

  /// Pads to a byte boundary and returns the buffer.
  std::vector<uint8_t> Finish();

  size_t BitCount() const { return bit_count_; }

 private:
  std::vector<uint8_t> bytes_;
  size_t bit_count_ = 0;
};

/// MSB-first bit reader over a finished buffer. Does not own the bytes;
/// the underlying storage must outlive the reader.
class BitReader {
 public:
  explicit BitReader(const std::vector<uint8_t>& bytes);

  /// Reads from a raw byte span — lets callers decode blobs that live
  /// inside a larger pool (e.g. concatenated posting-position blocks)
  /// without copying them out first.
  BitReader(const uint8_t* data, size_t size);

  /// Reads `count` bits (<= 64); returns them right-aligned. Reads past
  /// the end return zero bits and set overflow().
  uint64_t ReadBits(int count);

  bool ReadBit();

  /// Reads a unary count (ones before the terminating zero).
  uint64_t ReadUnary();

  bool overflow() const { return overflow_; }
  size_t BitPosition() const { return pos_; }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  size_t pos_ = 0;
  bool overflow_ = false;
};

}  // namespace ckr

#endif  // CKR_FRAMEWORK_BITSTREAM_H_
