#include "framework/store_pack.h"

#include <cstdio>

#include "framework/binary_io.h"

namespace ckr {
namespace {

constexpr uint32_t kPackMagic = 0x434b5231;  // 'CKR1'

}  // namespace

std::string SerializeStorePack(const GlobalTidTable& tids,
                               const QuantizedInterestingnessStore& interest,
                               const PackedRelevanceStore& relevance,
                               const RankSvmModel& model) {
  BinaryWriter writer;
  writer.U32(kPackMagic);
  tids.SaveTo(&writer);
  interest.SaveTo(&writer);
  relevance.SaveTo(&writer);
  // The compact v2 model blob; Deserialize sniffs the format, so packs
  // written with the v1 text blob load unchanged.
  writer.Str(model.SerializeBinary());
  return writer.Release();
}

std::string StorePack::Serialize() const {
  return SerializeStorePack(*tids, interestingness, *relevance, model);
}

StatusOr<StorePack> StorePack::Deserialize(std::string_view blob) {
  BinaryReader reader(blob);
  if (reader.U32() != kPackMagic) {
    return Status::InvalidArgument("bad store-pack magic");
  }
  StorePack pack;
  auto tids_or = GlobalTidTable::LoadFrom(&reader);
  if (!tids_or.ok()) return tids_or.status();
  pack.tids = std::make_unique<GlobalTidTable>(std::move(*tids_or));

  auto interest_or = QuantizedInterestingnessStore::LoadFrom(&reader);
  if (!interest_or.ok()) return interest_or.status();
  pack.interestingness = std::move(*interest_or);

  auto relevance_or =
      PackedRelevanceStore::LoadFrom(&reader, pack.tids.get());
  if (!relevance_or.ok()) return relevance_or.status();
  pack.relevance =
      std::make_unique<PackedRelevanceStore>(std::move(*relevance_or));

  auto model_or = RankSvmModel::Deserialize(reader.Str());
  if (!model_or.ok()) return model_or.status();
  pack.model = std::move(*model_or);

  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in store pack");
  }
  return pack;
}

Status StorePack::SaveToFile(const std::string& path) const {
  std::string blob = Serialize();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  size_t written = std::fwrite(blob.data(), 1, blob.size(), f);
  std::fclose(f);
  if (written != blob.size()) return Status::IOError("short write " + path);
  return Status::OK();
}

StatusOr<StorePack> StorePack::LoadFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::string blob;
  char buf[65536];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    blob.append(buf, n);
  }
  std::fclose(f);
  return Deserialize(blob);
}

}  // namespace ckr
