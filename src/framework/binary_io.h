// Forwarding header: the binary primitives moved to common/ so layers
// below the framework (e.g. the ranksvm v2 model format) can use them
// without depending on the runtime stack. Include "common/binary_io.h"
// in new code.
#ifndef CKR_FRAMEWORK_BINARY_IO_H_
#define CKR_FRAMEWORK_BINARY_IO_H_

#include "common/binary_io.h"  // IWYU pragma: export

#endif  // CKR_FRAMEWORK_BINARY_IO_H_
