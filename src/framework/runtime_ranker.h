// The production runtime of Section VI (Figure 4).
//
// All mining is offline; the online path must run under tight latency and
// memory budgets. The components mirror the paper:
//  * Stemmer — stems the incoming document once and caches the result;
//  * quantized interestingness store — each of the vector's fields fits in
//    two bytes ("this causes a minor decrease in granularity"), 18 MB per
//    million concepts;
//  * Global TID Table — maps each relevant term to a perfect-hash-style
//    term id that fits in 22 bits;
//  * packed relevance store — per concept up to 100 (TID, score) pairs,
//    score quantized to 10 bits, 32 bits per pair (~400 MB per million
//    concepts), optionally Golomb-compressed;
//  * Ranker — detects candidates, assembles features, scores with the
//    learned model, and returns the ranked list.
#ifndef CKR_FRAMEWORK_RUNTIME_RANKER_H_
#define CKR_FRAMEWORK_RUNTIME_RANKER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "detect/entity_detector.h"
#include "framework/binary_io.h"
#include "features/interestingness.h"
#include "features/relevance.h"
#include "online/ctr_tracker.h"
#include "ranksvm/rank_svm.h"

namespace ckr {

/// Per-field linear quantizer to uint16 ("each field [fits] two bytes").
class QuantizedInterestingnessStore {
 public:
  /// Registers a concept's raw vector. Ranges are fitted in Finalize().
  void Add(std::string_view key, const InterestingnessVector& vec);

  /// Fits per-field [min, max] ranges and quantizes everything.
  void Finalize();

  bool finalized() const { return finalized_; }
  size_t NumConcepts() const { return quantized_.size(); }

  /// Dequantized flat vector (InterestingnessVector::Dim() wide); false if
  /// the concept is unknown.
  bool Lookup(std::string_view key, std::vector<double>* out) const;

  /// Bytes used by the quantized payload (the paper's "18MB for 1 million
  /// concepts" accounting: NumConcepts * Dim * 2).
  size_t PayloadBytes() const;

  /// Serializes the finalized store (ranges + quantized vectors).
  void SaveTo(BinaryWriter* writer) const;

  /// Restores a store saved by SaveTo.
  static StatusOr<QuantizedInterestingnessStore> LoadFrom(BinaryReader* reader);

 private:
  std::unordered_map<std::string, std::vector<double>> raw_;
  std::unordered_map<std::string, std::vector<uint16_t>> quantized_;
  std::vector<double> field_min_;
  std::vector<double> field_max_;
  bool finalized_ = false;
};

/// Term -> TID mapping; TIDs are dense and must fit in 22 bits.
class GlobalTidTable {
 public:
  static constexpr uint32_t kMaxTid = (1u << 22) - 1;

  /// Returns the TID, interning the term if new. Fails (returns kMaxTid
  /// and sets overflow) past 2^22 terms.
  uint32_t Intern(std::string_view term);

  /// TID or kMaxTid when unknown.
  uint32_t Lookup(std::string_view term) const;

  size_t size() const { return tids_.size(); }
  bool overflowed() const { return overflowed_; }

  /// Serializes the term -> TID mapping.
  void SaveTo(BinaryWriter* writer) const;

  /// Restores a table saved by SaveTo (TIDs preserved exactly).
  static StatusOr<GlobalTidTable> LoadFrom(BinaryReader* reader);

 private:
  std::unordered_map<std::string, uint32_t> tids_;
  bool overflowed_ = false;
};

/// Packed per-concept relevant-term lists: each pair is tid << 10 | score,
/// score linearly quantized to [0, 1023] against the global maximum.
class PackedRelevanceStore {
 public:
  explicit PackedRelevanceStore(GlobalTidTable* tids) : tids_(tids) {}

  /// Registers a concept's mined terms (at most 100 kept).
  void Add(std::string_view key, const std::vector<RelevantTerm>& terms);

  /// Fits the global score scale and packs all lists. Call once.
  void Finalize();

  bool finalized() const { return finalized_; }
  size_t NumConcepts() const { return packed_.size(); }

  /// Relevance score of a concept against a set of context TIDs: the sum
  /// of dequantized scores of its terms present in the context.
  double Score(std::string_view key,
               const std::unordered_set<uint32_t>& context_tids) const;

  /// Uncompressed payload bytes (4 bytes per pair).
  size_t PayloadBytes() const;

  /// Bytes if every concept's sorted TID list were Golomb-compressed
  /// (scores still 10 bits each plus the coder's headers); reported by the
  /// memory bench.
  size_t GolombCompressedBytes() const;

  /// Serializes the finalized packed lists (raw mined terms are not kept).
  void SaveTo(BinaryWriter* writer) const;

  /// Restores a store saved by SaveTo; `tids` must be the matching table
  /// (same numbering) and outlive the store.
  static StatusOr<PackedRelevanceStore> LoadFrom(BinaryReader* reader,
                                                 GlobalTidTable* tids);

 private:
  GlobalTidTable* tids_;
  std::unordered_map<std::string, std::vector<RelevantTerm>> raw_;
  std::unordered_map<std::string, std::vector<uint32_t>> packed_;
  double score_scale_ = 1.0;  ///< Raw score corresponding to 1023.
  bool finalized_ = false;
};

/// Timing/throughput counters of one ProcessDocument call batch.
struct RuntimeStats {
  double stemmer_seconds = 0.0;
  double ranker_seconds = 0.0;
  uint64_t bytes_processed = 0;
  uint64_t documents = 0;
  uint64_t detections = 0;

  double StemmerMBps() const;
  double RankerMBps() const;
};

/// One ranked annotation produced by the runtime.
struct RankedAnnotation {
  std::string key;
  size_t begin = 0;
  size_t end = 0;
  EntityType type = EntityType::kConcept;
  double score = 0.0;
};

/// The online Ranker component (Figure 4). All stores must be finalized
/// and outlive the ranker.
class RuntimeRanker {
 public:
  RuntimeRanker(const EntityDetector& detector,
                const QuantizedInterestingnessStore& interestingness,
                const PackedRelevanceStore& relevance,
                const GlobalTidTable& tids, RankSvmModel model);

  /// Attaches (or detaches, with nullptr) a live CTR tracker; its
  /// Adjustment() is added to every model score — the online adaptation
  /// of the paper's Section VIII. The tracker must outlive the ranker.
  void SetOnlineTracker(const CtrTracker* tracker) { tracker_ = tracker; }

  /// Detects, scores and ranks the concepts of one document. Pattern
  /// entities are excluded (they bypass ranking). Accumulates timing into
  /// `stats` when non-null.
  std::vector<RankedAnnotation> ProcessDocument(std::string_view text,
                                                RuntimeStats* stats = nullptr)
      const;

 private:
  /// The Stemmer component: stems the document once into context TIDs.
  std::unordered_set<uint32_t> StemToTids(std::string_view text) const;

  const EntityDetector& detector_;
  const QuantizedInterestingnessStore& interestingness_;
  const PackedRelevanceStore& relevance_;
  const GlobalTidTable& tids_;
  RankSvmModel model_;
  const CtrTracker* tracker_ = nullptr;
};

}  // namespace ckr

#endif  // CKR_FRAMEWORK_RUNTIME_RANKER_H_
