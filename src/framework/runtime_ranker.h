// The production runtime of Section VI (Figure 4).
//
// All mining is offline; the online path must run under tight latency and
// memory budgets. The components mirror the paper:
//  * Stemmer — stems the incoming document once and caches the result;
//  * quantized interestingness store — each of the vector's fields fits in
//    two bytes ("this causes a minor decrease in granularity"), 18 MB per
//    million concepts;
//  * Global TID Table — maps each relevant term to a perfect-hash-style
//    term id that fits in 22 bits;
//  * packed relevance store — per concept up to 100 (TID, score) pairs,
//    score quantized to 10 bits, 32 bits per pair (~400 MB per million
//    concepts), optionally Golomb-compressed;
//  * Ranker — detects candidates, assembles features, scores with the
//    learned model, and returns the ranked list.
//
// Layout discipline: Finalize() freezes both stores into dense,
// concept-id-indexed contiguous arrays (the string-keyed maps are only a
// build-time convenience), and the Ranker resolves every detector entry to
// store ids once at construction. The steady-state document path therefore
// never hashes a std::string and — given a reused RankerScratch — performs
// no per-document heap allocations beyond its output list. ProcessBatch
// fans documents out across worker threads with one scratch per worker and
// per-index output slots, so results are deterministic in order and
// content regardless of thread count.
#ifndef CKR_FRAMEWORK_RUNTIME_RANKER_H_
#define CKR_FRAMEWORK_RUNTIME_RANKER_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/epoch_set.h"
#include "common/hash.h"
#include "common/status.h"
#include "detect/entity_detector.h"
#include "framework/binary_io.h"
#include "features/interestingness.h"
#include "features/relevance.h"
#include "obs/clock.h"
#include "online/ctr_tracker.h"
#include "ranksvm/rank_svm.h"

namespace ckr {

/// Sentinel for "concept not in this store".
inline constexpr uint32_t kInvalidConcept = static_cast<uint32_t>(-1);

/// Per-field linear quantizer to uint16 ("each field [fits] two bytes").
/// Finalize() assigns dense concept ids (sorted-key order) and packs all
/// vectors into one contiguous array.
class QuantizedInterestingnessStore {
 public:
  /// Registers a concept's raw vector. Ranges are fitted in Finalize().
  void Add(std::string_view key, const InterestingnessVector& vec);

  /// Fits per-field [min, max] ranges, assigns concept ids and quantizes
  /// everything into the dense layout.
  void Finalize();

  bool finalized() const { return finalized_; }
  size_t NumConcepts() const { return keys_.size(); }

  /// Dense id of a concept key, kInvalidConcept if unknown. Valid after
  /// Finalize(); ids are contiguous in [0, NumConcepts()).
  uint32_t IdOf(std::string_view key) const;

  /// Key of a dense id (inverse of IdOf).
  const std::string& KeyOf(uint32_t id) const { return keys_[id]; }

  /// Dequantized flat vector (InterestingnessVector::Dim() wide); false if
  /// the concept is unknown.
  bool Lookup(std::string_view key, std::vector<double>* out) const;

  /// Hash-free hot-path lookup by dense id; false for kInvalidConcept.
  bool LookupById(uint32_t id, std::vector<double>* out) const;

  /// Bytes used by the quantized payload (the paper's "18MB for 1 million
  /// concepts" accounting: NumConcepts * Dim * 2).
  size_t PayloadBytes() const;

  /// Serializes the finalized store (ranges + quantized vectors).
  void SaveTo(BinaryWriter* writer) const;

  /// Restores a store saved by SaveTo.
  [[nodiscard]] static StatusOr<QuantizedInterestingnessStore> LoadFrom(BinaryReader* reader);

 private:
  std::unordered_map<std::string, std::vector<double>> raw_;

  // Dense finalized layout: concept i occupies
  // flat_[i * Dim() .. (i + 1) * Dim()).
  std::vector<std::string> keys_;  ///< Sorted; index == concept id.
  std::unordered_map<std::string, uint32_t, StringViewHash, std::equal_to<>>
      key_to_id_;
  std::vector<uint16_t> flat_;
  std::vector<double> field_min_;
  std::vector<double> field_max_;
  bool finalized_ = false;
};

/// Term -> TID mapping; TIDs are dense and must fit in 22 bits.
class GlobalTidTable {
 public:
  static constexpr uint32_t kMaxTid = (1u << 22) - 1;

  /// Returns the TID, interning the term if new. Once the table is full
  /// (2^22 - 1 terms; kMaxTid is reserved as the unknown sentinel), new
  /// terms set the overflow flag and get kMaxTid without mutating the
  /// table; existing terms still resolve normally.
  uint32_t Intern(std::string_view term);

  /// TID or kMaxTid when unknown.
  uint32_t Lookup(std::string_view term) const;

  size_t size() const { return tids_.size(); }
  bool overflowed() const { return overflowed_; }

  /// Lowers the intern capacity so overflow behaviour is testable without
  /// four million inserts. Testing hook only.
  void SetCapacityForTesting(uint32_t capacity) { capacity_ = capacity; }

  /// Serializes the term -> TID mapping.
  void SaveTo(BinaryWriter* writer) const;

  /// Restores a table saved by SaveTo (TIDs preserved exactly).
  [[nodiscard]] static StatusOr<GlobalTidTable> LoadFrom(BinaryReader* reader);

 private:
  std::unordered_map<std::string, uint32_t, StringViewHash, std::equal_to<>>
      tids_;
  uint32_t capacity_ = kMaxTid;
  bool overflowed_ = false;
};

/// Packed per-concept relevant-term lists: each pair is tid << 10 | score,
/// score linearly quantized to [0, 1023] against the global maximum.
/// Finalize() freezes the lists into one CSR-style pair array indexed by
/// dense concept id.
class PackedRelevanceStore {
 public:
  explicit PackedRelevanceStore(GlobalTidTable* tids) : tids_(tids) {}

  /// Registers a concept's mined terms (at most 100 kept).
  void Add(std::string_view key, const std::vector<RelevantTerm>& terms);

  /// Fits the global score scale, assigns concept ids (sorted-key order —
  /// also makes TID interning order deterministic) and packs all lists.
  void Finalize();

  bool finalized() const { return finalized_; }
  size_t NumConcepts() const { return keys_.size(); }

  /// Dense id of a concept key, kInvalidConcept if unknown.
  uint32_t IdOf(std::string_view key) const;

  /// Key of a dense id (inverse of IdOf).
  const std::string& KeyOf(uint32_t id) const { return keys_[id]; }

  /// Relevance score of a concept against a set of context TIDs: the sum
  /// of dequantized scores of its terms present in the context.
  double Score(std::string_view key,
               const std::unordered_set<uint32_t>& context_tids) const;

  /// Hash-free hot-path scoring by dense id against an EpochSet context.
  double ScoreById(uint32_t id, const EpochSet& context_tids) const;

  /// Uncompressed payload bytes (4 bytes per pair).
  size_t PayloadBytes() const;

  /// Bytes if every concept's sorted TID list were Golomb-compressed
  /// (scores still 10 bits each plus the coder's headers); reported by the
  /// memory bench.
  size_t GolombCompressedBytes() const;

  /// Serializes the finalized packed lists (raw mined terms are not kept).
  void SaveTo(BinaryWriter* writer) const;

  /// Restores a store saved by SaveTo; `tids` must be the matching table
  /// (same numbering) and outlive the store.
  [[nodiscard]] static StatusOr<PackedRelevanceStore> LoadFrom(BinaryReader* reader,
                                                 GlobalTidTable* tids);

 private:
  GlobalTidTable* tids_;
  std::unordered_map<std::string, std::vector<RelevantTerm>> raw_;

  // Dense finalized layout: concept i's pairs occupy
  // pairs_[offsets_[i] .. offsets_[i + 1]).
  std::vector<std::string> keys_;  ///< Sorted; index == concept id.
  std::unordered_map<std::string, uint32_t, StringViewHash, std::equal_to<>>
      key_to_id_;
  std::vector<uint32_t> offsets_;
  std::vector<uint32_t> pairs_;
  double score_scale_ = 1.0;  ///< Raw score corresponding to 1023.
  bool finalized_ = false;
};

/// Timing/throughput counters of one ProcessDocument call batch.
struct RuntimeStats {
  double stemmer_seconds = 0.0;
  double ranker_seconds = 0.0;  ///< match_seconds + score_seconds.
  /// Per-component split of the ranker on the flat path: candidate
  /// detection (Aho-Corasick + collision resolution) vs feature assembly,
  /// model scoring and sorting.
  double match_seconds = 0.0;
  double score_seconds = 0.0;
  uint64_t bytes_processed = 0;
  uint64_t documents = 0;
  uint64_t detections = 0;

  /// Merges another stats block (used by the batch path's per-worker
  /// accumulators).
  void Merge(const RuntimeStats& other);

  double StemmerMBps() const;
  double RankerMBps() const;
  double MatchMBps() const;
  double ScoreMBps() const;
  /// Documents per second over stemmer + ranker time.
  double DocsPerSec() const;
};

/// One ranked annotation produced by the runtime.
struct RankedAnnotation {
  std::string key;
  size_t begin = 0;
  size_t end = 0;
  EntityType type = EntityType::kConcept;
  double score = 0.0;
};

/// Reusable per-call working state of the Ranker. One per thread; all
/// buffers are overwritten per document and reused across documents, so
/// the steady state performs zero heap allocations before the output list.
struct RankerScratch {
  EntityDetector::Scratch detect;
  EpochSet context;       ///< Stemmed context TIDs (universe: TID table).
  EpochSet seen_entries;  ///< Detector entries already emitted.
  std::string stem_buf;
  std::vector<double> features;
};

/// The online Ranker component (Figure 4). All stores must be finalized
/// and outlive the ranker.
class RuntimeRanker {
 public:
  RuntimeRanker(const EntityDetector& detector,
                const QuantizedInterestingnessStore& interestingness,
                const PackedRelevanceStore& relevance,
                const GlobalTidTable& tids, RankSvmModel model);

  /// Attaches (or detaches, with nullptr) a live CTR tracker; its
  /// Adjustment() is added to every model score — the online adaptation
  /// of the paper's Section VIII. The tracker must outlive the ranker.
  void SetOnlineTracker(const CtrTracker* tracker) { tracker_ = tracker; }

  /// Swaps the time source behind RuntimeStats and the obs stage timers
  /// (default: the process steady clock). With a FakeClock the reported
  /// stage durations are deterministic; ranked output never depends on
  /// the clock. The clock must outlive the ranker.
  void SetClockForTesting(const Clock* clock) { clock_ = clock; }

  /// Detects, scores and ranks the concepts of one document. Pattern
  /// entities are excluded (they bypass ranking). Accumulates timing into
  /// `stats` when non-null. Uses a thread-local scratch.
  std::vector<RankedAnnotation> ProcessDocument(std::string_view text,
                                                RuntimeStats* stats = nullptr)
      const;

  /// Explicit-scratch variant for callers that manage worker state.
  std::vector<RankedAnnotation> ProcessDocument(std::string_view text,
                                                RankerScratch* scratch,
                                                RuntimeStats* stats) const;

  /// Processes a batch of documents with up to `num_threads` workers (0 or
  /// 1 = inline). One scratch per worker; results land in per-document
  /// output slots, so ordering and content are independent of thread
  /// count. Per-component timing is accumulated per worker and merged into
  /// `stats` when non-null (wall-clock sums across workers, not elapsed
  /// time).
  std::vector<std::vector<RankedAnnotation>> ProcessBatch(
      std::span<const std::string_view> docs, unsigned num_threads,
      RuntimeStats* stats = nullptr) const;

  /// Reference implementation over the string-keyed map lookups (the
  /// pre-flat-layout hot path). Kept for the perf bench's old-vs-new
  /// comparison and for bit-identity verification; produces exactly the
  /// same ranking as ProcessDocument.
  std::vector<RankedAnnotation> ProcessDocumentLegacy(
      std::string_view text, RuntimeStats* stats = nullptr) const;

 private:
  /// The Stemmer component of the legacy path: stems the document once
  /// into context TIDs.
  std::unordered_set<uint32_t> StemToTids(std::string_view text) const;

  const EntityDetector& detector_;
  const QuantizedInterestingnessStore& interestingness_;
  const PackedRelevanceStore& relevance_;
  const GlobalTidTable& tids_;
  RankSvmModel model_;
  const CtrTracker* tracker_ = nullptr;
  const Clock* clock_ = &RealClock();

  /// Detector entry id -> dense store ids, resolved once at construction
  /// so the document path never hashes a concept key.
  std::vector<uint32_t> entry_interest_;
  std::vector<uint32_t> entry_relevance_;
};

}  // namespace ckr

#endif  // CKR_FRAMEWORK_RUNTIME_RANKER_H_
