#include "framework/golomb.h"

#include <algorithm>
#include <cmath>

#include "framework/bitstream.h"

namespace ckr {
namespace {

// Number of bits needed to represent v (>= 1 returns >= 1).
int BitWidth(uint64_t v) {
  int w = 0;
  while (v > 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

}  // namespace

void GolombEncode(uint64_t value, uint64_t m, BitWriter* writer) {
  uint64_t q = value / m;
  uint64_t r = value % m;
  writer->WriteUnary(q);
  if (m == 1) return;  // Remainder is always 0.
  // Truncated binary for the remainder.
  int b = BitWidth(m - 1);
  uint64_t cutoff = (1ULL << b) - m;
  if (r < cutoff) {
    writer->WriteBits(r, b - 1);
  } else {
    writer->WriteBits(r + cutoff, b);
  }
}

uint64_t GolombDecode(uint64_t m, BitReader* reader) {
  uint64_t q = reader->ReadUnary();
  if (m == 1) return q;
  int b = BitWidth(m - 1);
  uint64_t cutoff = (1ULL << b) - m;
  uint64_t r = reader->ReadBits(b - 1);
  if (r >= cutoff) {
    r = (r << 1) | static_cast<uint64_t>(reader->ReadBit());
    r -= cutoff;
  }
  return q * m + r;
}

uint64_t OptimalGolombParameter(double mean_gap) {
  if (mean_gap <= 1.0) return 1;
  // m = ceil(log(2 - p) / -log(1 - p)) with p = 1/mean; the 0.69*mean
  // approximation is within one of this for all practical p.
  double m = std::ceil(0.69 * mean_gap);
  return std::max<uint64_t>(1, static_cast<uint64_t>(m));
}

StatusOr<std::vector<uint8_t>> EncodeSortedIds(
    const std::vector<uint32_t>& ids, uint32_t universe) {
  for (size_t i = 1; i < ids.size(); ++i) {
    if (ids[i] <= ids[i - 1]) {
      return Status::InvalidArgument("ids must be strictly increasing");
    }
  }
  if (!ids.empty() && ids.back() >= universe) {
    return Status::InvalidArgument("id exceeds universe");
  }
  double mean_gap =
      ids.empty() ? 1.0
                  : static_cast<double>(universe) /
                        static_cast<double>(ids.size());
  uint64_t m = OptimalGolombParameter(mean_gap);

  BitWriter writer;
  // Header: count (32 bits) + parameter (32 bits).
  writer.WriteBits(ids.size(), 32);
  writer.WriteBits(m, 32);
  uint32_t prev = 0;
  bool first = true;
  for (uint32_t id : ids) {
    uint64_t gap = first ? id : (id - prev - 1);
    GolombEncode(gap, m, &writer);
    prev = id;
    first = false;
  }
  return writer.Finish();
}

StatusOr<std::vector<uint32_t>> DecodeSortedIds(
    const std::vector<uint8_t>& bytes) {
  std::vector<uint32_t> ids;
  Status s = DecodeSortedIdsInto(bytes.data(), bytes.size(), &ids);
  if (!s.ok()) return s;
  return ids;
}

StatusOr<size_t> AppendEncodedSortedIds(const std::vector<uint32_t>& ids,
                                        uint32_t universe,
                                        std::vector<uint8_t>* pool) {
  auto blob_or = EncodeSortedIds(ids, universe);
  if (!blob_or.ok()) return blob_or.status();
  size_t offset = pool->size();
  pool->insert(pool->end(), blob_or->begin(), blob_or->end());
  return offset;
}

Status DecodeSortedIdsInto(const uint8_t* data, size_t size,
                           std::vector<uint32_t>* out) {
  out->clear();
  BitReader reader(data, size);
  uint64_t count = reader.ReadBits(32);
  uint64_t m = reader.ReadBits(32);
  if (m == 0) return Status::InvalidArgument("corrupt header (m == 0)");
  out->reserve(count);
  uint32_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t gap = GolombDecode(m, &reader);
    uint32_t id = (i == 0) ? static_cast<uint32_t>(gap)
                           : prev + 1 + static_cast<uint32_t>(gap);
    if (reader.overflow()) {
      return Status::InvalidArgument("truncated Golomb stream");
    }
    out->push_back(id);
    prev = id;
  }
  return Status::OK();
}

}  // namespace ckr
