// Golomb coding of non-negative integers (Witten, Moffat & Bell, "Managing
// Gigabytes" [26]) — used by the runtime framework to compress each
// concept's sorted term-id list via delta (gap) encoding (paper Section
// VI: "this cost can be even further reduced through ... integer
// compression techniques, such as Golomb Coding").
#ifndef CKR_FRAMEWORK_GOLOMB_H_
#define CKR_FRAMEWORK_GOLOMB_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace ckr {

/// Encodes one value with parameter m (> 0): quotient in unary, remainder
/// in truncated binary.
void GolombEncode(uint64_t value, uint64_t m, class BitWriter* writer);

/// Decodes one value with parameter m (> 0).
uint64_t GolombDecode(uint64_t m, class BitReader* reader);

/// The Golomb parameter minimizing expected length for gaps with mean
/// `mean_gap` (the classic m ~= 0.69 * mean rule).
uint64_t OptimalGolombParameter(double mean_gap);

/// Delta-encodes a strictly increasing id list: first id, then gaps - 1,
/// all Golomb-coded with a parameter derived from the list density over
/// `universe`. Returns the byte buffer (self-contained: stores count and
/// parameter in a small header).
[[nodiscard]] StatusOr<std::vector<uint8_t>> EncodeSortedIds(
    const std::vector<uint32_t>& ids, uint32_t universe);

/// Inverse of EncodeSortedIds.
[[nodiscard]] StatusOr<std::vector<uint32_t>> DecodeSortedIds(
    const std::vector<uint8_t>& bytes);

/// Appends one EncodeSortedIds-format blob to `pool` and returns the byte
/// offset of its start. Blobs are byte-aligned and self-contained, so a
/// pool of concatenated blobs plus per-blob offsets serves as a compressed
/// positions store (the inverted index keeps one blob per posting entry).
[[nodiscard]] StatusOr<size_t> AppendEncodedSortedIds(const std::vector<uint32_t>& ids,
                                        uint32_t universe,
                                        std::vector<uint8_t>* pool);

/// Decodes one blob from a raw byte span into `*out` (cleared first,
/// capacity reused). Span-based so hot decode loops neither copy the blob
/// nor allocate a fresh result vector per call.
[[nodiscard]] Status DecodeSortedIdsInto(const uint8_t* data, size_t size,
                           std::vector<uint32_t>* out);

}  // namespace ckr

#endif  // CKR_FRAMEWORK_GOLOMB_H_
