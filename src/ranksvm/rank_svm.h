// Ranking SVM (paper Section III, after Joachims [9] / liblinear [10]).
//
// Learns a scoring function f(x) = w . phi(x) such that f(x_i) > f(x_j)
// whenever instance i should rank above instance j. Preference pairs are
// formed within each group (document window) from CTR labels. Training
// minimizes the pairwise hinge loss with L2 regularization via
// Pegasos-style stochastic subgradient descent.
//
// Kernels: linear, and an RBF approximation via random Fourier features
// (Rahimi & Recht) — the from-scratch substitute for SVM-light's RBF
// kernel ("we test with both linear and the radial basis function
// kernels", Section V-A.3). Features are standardized on the training
// split inside the model.
//
// Layout: the RFF projection and every batch intermediate are contiguous
// row-major matrices. The trainer pre-transforms instances in parallel
// (ParallelForWorkers; per-row outputs, so bit-identical for any worker
// count), materializes pairs with a sort-by-group pass, and runs the
// Pegasos loop sequentially over contiguous rows. Weights are
// bit-identical to the scalar reference in legacy_rank_svm.h, which the
// golden tests and bench_training_perf assert.
#ifndef CKR_RANKSVM_RANK_SVM_H_
#define CKR_RANKSVM_RANK_SVM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace ckr {

/// One ranking instance: a feature vector, its graded label (CTR), and the
/// group (document window) it belongs to. Pairs are only formed within a
/// group.
struct RankingInstance {
  std::vector<double> features;
  double label = 0.0;
  uint32_t group = 0;
};

/// Kernel choice.
enum class SvmKernel { kLinear = 0, kRbfFourier };

/// Training hyper-parameters (defaults mirror "default parameters" use in
/// the paper).
struct RankSvmConfig {
  SvmKernel kernel = SvmKernel::kLinear;
  double lambda = 1e-4;      ///< L2 regularization strength.
  int epochs = 60;           ///< Passes over the pair set.
  uint64_t seed = 13;
  double rbf_gamma = 4.0;    ///< RBF width; effective gamma = this / dim.
  size_t rff_dim = 768;      ///< Random Fourier feature dimensionality.
  double min_label_gap = 1e-9;  ///< Pairs need |label_i - label_j| above this.
  size_t max_pairs = 2000000;   ///< Safety cap on materialized pairs.
  /// Worker threads for the batch phases (RFF pre-transform, pair-diff
  /// materialization). Results are bit-identical for any value: every
  /// worker writes only per-row output slots. 0 = all hardware threads;
  /// the default stays 1 so nested callers (parallel CV folds) don't
  /// oversubscribe.
  unsigned num_threads = 1;
};

/// A trained scorer. Value type; cheap to copy relative to training.
class RankSvmModel {
 public:
  RankSvmModel() = default;

  /// Score of a raw (unstandardized) feature vector; higher ranks first.
  /// A feature-dimension mismatch returns 0.0 and logs a warning (see
  /// ScoreChecked for the Status-returning variant).
  double Score(const std::vector<double>& features) const;

  /// Like Score, but a feature-dimension mismatch is an InvalidArgument
  /// error instead of a silent 0.0.
  [[nodiscard]] StatusOr<double> ScoreChecked(const std::vector<double>& features) const;

  /// Dimensionality of raw input vectors.
  size_t InputDim() const { return mean_.size(); }

  /// Dimensionality of the transformed space the weights live in
  /// (InputDim for linear, rff_dim for RFF models).
  size_t FeatureDim() const {
    return kernel_ == SvmKernel::kLinear ? mean_.size() : rff_b_.size();
  }

  /// Standardizes + projects a batch into a row-major rows.size() x
  /// FeatureDim() matrix. Rows are transformed in parallel; the output is
  /// bit-identical for any worker count (0 = all hardware threads).
  std::vector<double> TransformBatch(
      const std::vector<std::vector<double>>& rows,
      unsigned num_threads = 1) const;

  /// Serializes to the line-oriented v1 text blob (stable across
  /// platforms, readable by every prior version).
  std::string Serialize() const;

  /// Serializes to the compact little-endian v2 binary blob (~2.4x
  /// smaller than v1 for RFF models; exact double round-trip).
  std::string SerializeBinary() const;

  /// Parses a blob produced by Serialize() or SerializeBinary(); the
  /// format is sniffed from the header.
  [[nodiscard]] static StatusOr<RankSvmModel> Deserialize(const std::string& blob);

  /// Linear weights in standardized space (linear kernel only; empty for
  /// RFF models). Useful for inspecting feature contributions.
  const std::vector<double>& weights() const { return weights_; }

 private:
  friend class RankSvmTrainer;
  friend class LegacyRankSvmTrainer;

  std::vector<double> Transform(const std::vector<double>& features) const;

  [[nodiscard]] static StatusOr<RankSvmModel> DeserializeText(const std::string& blob);
  [[nodiscard]] static StatusOr<RankSvmModel> DeserializeBinary(const std::string& blob);

  /// Transforms one raw row of InputDim() doubles into `out`
  /// (FeatureDim() doubles). `scratch` must hold InputDim() doubles when
  /// the kernel is RFF; it may alias nothing.
  void TransformRowInto(const double* features, double* out,
                        double* scratch) const;

  SvmKernel kernel_ = SvmKernel::kLinear;
  std::vector<double> mean_;   ///< Per-dim standardization mean.
  std::vector<double> inv_sd_; ///< Per-dim 1/sd (0 for constant dims).
  std::vector<double> weights_;
  // RFF projection: z(x) = sqrt(2/D) cos(Wx + b). W is a flat row-major
  // rff_dim x InputDim matrix (row d at rff_w_[d * InputDim()]).
  std::vector<double> rff_w_;
  std::vector<double> rff_b_;
};

/// Trains models from labeled instances.
class RankSvmTrainer {
 public:
  explicit RankSvmTrainer(const RankSvmConfig& config = {});

  /// Fails when no valid preference pair exists or dimensions disagree.
  [[nodiscard]] StatusOr<RankSvmModel> Train(
      const std::vector<RankingInstance>& data) const;

 private:
  RankSvmConfig config_;
};

}  // namespace ckr

#endif  // CKR_RANKSVM_RANK_SVM_H_
