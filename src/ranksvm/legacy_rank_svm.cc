#include "ranksvm/legacy_rank_svm.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

namespace ckr {

LegacyRankSvmTrainer::LegacyRankSvmTrainer(const RankSvmConfig& config)
    : config_(config) {}

StatusOr<RankSvmModel> LegacyRankSvmTrainer::Train(
    const std::vector<RankingInstance>& data) const {
  if (data.empty()) return Status::InvalidArgument("no training data");
  const size_t dim = data[0].features.size();
  if (dim == 0) return Status::InvalidArgument("zero-dimensional features");
  for (const RankingInstance& inst : data) {
    if (inst.features.size() != dim) {
      return Status::InvalidArgument("inconsistent feature dimensions");
    }
  }

  RankSvmModel model;
  model.kernel_ = config_.kernel;

  // Standardization fitted on the training data.
  model.mean_.assign(dim, 0.0);
  model.inv_sd_.assign(dim, 0.0);
  for (const RankingInstance& inst : data) {
    for (size_t i = 0; i < dim; ++i) model.mean_[i] += inst.features[i];
  }
  for (double& m : model.mean_) m /= static_cast<double>(data.size());
  std::vector<double> var(dim, 0.0);
  for (const RankingInstance& inst : data) {
    for (size_t i = 0; i < dim; ++i) {
      double d = inst.features[i] - model.mean_[i];
      var[i] += d * d;
    }
  }
  std::vector<bool> is_binary(dim, true);
  for (const RankingInstance& inst : data) {
    for (size_t i = 0; i < dim; ++i) {
      if (inst.features[i] != 0.0 && inst.features[i] != 1.0) {
        is_binary[i] = false;
      }
    }
  }
  for (size_t i = 0; i < dim; ++i) {
    if (is_binary[i]) {
      model.inv_sd_[i] = 1.0;
      continue;
    }
    double sd = std::sqrt(var[i] / static_cast<double>(data.size()));
    model.inv_sd_[i] = sd > 1e-12 ? 1.0 / sd : 0.0;
  }

  // The projection is drawn into the original nested layout, then copied
  // (value for value) into the model's flat storage.
  Rng rng(config_.seed);
  std::vector<std::vector<double>> rff_w;
  std::vector<double> rff_b;
  if (config_.kernel == SvmKernel::kRbfFourier) {
    rff_w.resize(config_.rff_dim);
    rff_b.resize(config_.rff_dim);
    const double w_sd =
        std::sqrt(2.0 * config_.rbf_gamma / static_cast<double>(dim));
    for (size_t d = 0; d < config_.rff_dim; ++d) {
      rff_w[d].resize(dim);
      for (size_t i = 0; i < dim; ++i) {
        rff_w[d][i] = w_sd * rng.NextGaussian();
      }
      rff_b[d] = 2.0 * M_PI * rng.NextDouble();
    }
    model.rff_w_.resize(config_.rff_dim * dim);
    for (size_t d = 0; d < config_.rff_dim; ++d) {
      for (size_t i = 0; i < dim; ++i) {
        model.rff_w_[d * dim + i] = rff_w[d][i];
      }
    }
    model.rff_b_ = rff_b;
  }

  auto transform =
      [&](const std::vector<double>& features) -> std::vector<double> {
    std::vector<double> x(features.size());
    for (size_t i = 0; i < features.size(); ++i) {
      x[i] = (features[i] - model.mean_[i]) * model.inv_sd_[i];
    }
    if (config_.kernel == SvmKernel::kLinear) return x;
    std::vector<double> z(rff_w.size());
    const double scale = std::sqrt(2.0 / static_cast<double>(rff_w.size()));
    for (size_t d = 0; d < rff_w.size(); ++d) {
      double dot = rff_b[d];
      const std::vector<double>& w = rff_w[d];
      for (size_t i = 0; i < x.size(); ++i) dot += w[i] * x[i];
      z[d] = scale * std::cos(dot);
    }
    return z;
  };

  // Pre-transform all instances once.
  std::vector<std::vector<double>> phi;
  phi.reserve(data.size());
  for (const RankingInstance& inst : data) {
    phi.push_back(transform(inst.features));
  }
  const size_t feat_dim = phi[0].size();

  // Materialize preference pairs within groups.
  std::map<uint32_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < data.size(); ++i) {
    groups[data[i].group].push_back(i);
  }
  std::vector<std::pair<size_t, size_t>> pairs;  // (winner, loser)
  for (const auto& [gid, members] : groups) {
    for (size_t a = 0; a < members.size(); ++a) {
      for (size_t b = a + 1; b < members.size(); ++b) {
        size_t i = members[a], j = members[b];
        double gap = data[i].label - data[j].label;
        if (std::abs(gap) < config_.min_label_gap) continue;
        if (gap > 0) {
          pairs.emplace_back(i, j);
        } else {
          pairs.emplace_back(j, i);
        }
        if (pairs.size() >= config_.max_pairs) break;
      }
      if (pairs.size() >= config_.max_pairs) break;
    }
    if (pairs.size() >= config_.max_pairs) break;
  }
  if (pairs.empty()) {
    return Status::FailedPrecondition("no preference pairs (all labels tied)");
  }

  // Pegasos-style SGD over the pairwise hinge loss.
  model.weights_.assign(feat_dim, 0.0);
  std::vector<double>& w = model.weights_;
  const double lambda = config_.lambda;
  uint64_t t = 0;
  const uint64_t total_steps =
      static_cast<uint64_t>(config_.epochs) * pairs.size();
  for (uint64_t step = 0; step < total_steps; ++step) {
    ++t;
    const auto& [wi, li] = pairs[rng.NextBounded(pairs.size())];
    const std::vector<double>& xw = phi[wi];
    const std::vector<double>& xl = phi[li];
    double margin = 0.0;
    for (size_t d = 0; d < feat_dim; ++d) margin += w[d] * (xw[d] - xl[d]);
    const double eta = 1.0 / (lambda * static_cast<double>(t));
    // w <- (1 - eta*lambda) w [+ eta * (xw - xl) if margin < 1]
    const double shrink = 1.0 - eta * lambda;
    if (margin < 1.0) {
      for (size_t d = 0; d < feat_dim; ++d) {
        w[d] = shrink * w[d] + eta * (xw[d] - xl[d]);
      }
    } else {
      for (size_t d = 0; d < feat_dim; ++d) w[d] *= shrink;
    }
  }
  return model;
}

}  // namespace ckr
