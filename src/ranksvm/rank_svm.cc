#include "ranksvm/rank_svm.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "common/string_util.h"

namespace ckr {

std::vector<double> RankSvmModel::Transform(
    const std::vector<double>& features) const {
  std::vector<double> x(features.size());
  for (size_t i = 0; i < features.size(); ++i) {
    x[i] = (features[i] - mean_[i]) * inv_sd_[i];
  }
  if (kernel_ == SvmKernel::kLinear) return x;
  // Random Fourier features for the RBF kernel.
  std::vector<double> z(rff_w_.size());
  const double scale = std::sqrt(2.0 / static_cast<double>(rff_w_.size()));
  for (size_t d = 0; d < rff_w_.size(); ++d) {
    double dot = rff_b_[d];
    const std::vector<double>& w = rff_w_[d];
    for (size_t i = 0; i < x.size(); ++i) dot += w[i] * x[i];
    z[d] = scale * std::cos(dot);
  }
  return z;
}

double RankSvmModel::Score(const std::vector<double>& features) const {
  if (features.size() != mean_.size()) return 0.0;
  std::vector<double> phi = Transform(features);
  double s = 0.0;
  for (size_t i = 0; i < phi.size(); ++i) s += weights_[i] * phi[i];
  return s;
}

std::string RankSvmModel::Serialize() const {
  std::ostringstream out;
  out.precision(17);
  out << "ranksvm v1\n";
  out << "kernel " << (kernel_ == SvmKernel::kLinear ? "linear" : "rbf_fourier")
      << "\n";
  auto dump = [&out](const char* name, const std::vector<double>& v) {
    out << name << " " << v.size();
    for (double x : v) out << " " << x;
    out << "\n";
  };
  dump("mean", mean_);
  dump("inv_sd", inv_sd_);
  dump("weights", weights_);
  out << "rff " << rff_w_.size() << "\n";
  for (size_t d = 0; d < rff_w_.size(); ++d) {
    out << "w" << d;
    for (double x : rff_w_[d]) out << " " << x;
    out << " b " << rff_b_[d] << "\n";
  }
  return out.str();
}

StatusOr<RankSvmModel> RankSvmModel::Deserialize(const std::string& blob) {
  std::istringstream in(blob);
  std::string magic, version;
  in >> magic >> version;
  if (magic != "ranksvm" || version != "v1") {
    return Status::InvalidArgument("bad model header");
  }
  RankSvmModel m;
  std::string tag, kernel;
  in >> tag >> kernel;
  if (tag != "kernel") return Status::InvalidArgument("missing kernel");
  m.kernel_ = (kernel == "linear") ? SvmKernel::kLinear
                                   : SvmKernel::kRbfFourier;
  auto load = [&in](const char* name, std::vector<double>* v) -> Status {
    std::string t;
    size_t n = 0;
    in >> t >> n;
    if (t != name) return Status::InvalidArgument("expected " + std::string(name));
    v->resize(n);
    for (size_t i = 0; i < n; ++i) in >> (*v)[i];
    return Status::OK();
  };
  CKR_RETURN_IF_ERROR(load("mean", &m.mean_));
  CKR_RETURN_IF_ERROR(load("inv_sd", &m.inv_sd_));
  CKR_RETURN_IF_ERROR(load("weights", &m.weights_));
  std::string t;
  size_t rff_n = 0;
  in >> t >> rff_n;
  if (t != "rff") return Status::InvalidArgument("expected rff");
  m.rff_w_.resize(rff_n);
  m.rff_b_.resize(rff_n);
  for (size_t d = 0; d < rff_n; ++d) {
    std::string wd;
    in >> wd;
    m.rff_w_[d].resize(m.mean_.size());
    for (size_t i = 0; i < m.mean_.size(); ++i) in >> m.rff_w_[d][i];
    std::string btag;
    in >> btag >> m.rff_b_[d];
    if (btag != "b") return Status::InvalidArgument("expected b");
  }
  if (in.fail()) return Status::InvalidArgument("truncated model blob");
  return m;
}

RankSvmTrainer::RankSvmTrainer(const RankSvmConfig& config)
    : config_(config) {}

StatusOr<RankSvmModel> RankSvmTrainer::Train(
    const std::vector<RankingInstance>& data) const {
  if (data.empty()) return Status::InvalidArgument("no training data");
  const size_t dim = data[0].features.size();
  if (dim == 0) return Status::InvalidArgument("zero-dimensional features");
  for (const RankingInstance& inst : data) {
    if (inst.features.size() != dim) {
      return Status::InvalidArgument("inconsistent feature dimensions");
    }
  }

  RankSvmModel model;
  model.kernel_ = config_.kernel;

  // Standardization fitted on the training data.
  model.mean_.assign(dim, 0.0);
  model.inv_sd_.assign(dim, 0.0);
  for (const RankingInstance& inst : data) {
    for (size_t i = 0; i < dim; ++i) model.mean_[i] += inst.features[i];
  }
  for (double& m : model.mean_) m /= static_cast<double>(data.size());
  std::vector<double> var(dim, 0.0);
  for (const RankingInstance& inst : data) {
    for (size_t i = 0; i < dim; ++i) {
      double d = inst.features[i] - model.mean_[i];
      var[i] += d * d;
    }
  }
  // Binary indicator dimensions (e.g. the taxonomy one-hots) are centered
  // but not variance-scaled: scaling a rare indicator by 1/sd blows it up
  // to +-5 and lets it dominate the RBF distance.
  std::vector<bool> is_binary(dim, true);
  for (const RankingInstance& inst : data) {
    for (size_t i = 0; i < dim; ++i) {
      if (inst.features[i] != 0.0 && inst.features[i] != 1.0) {
        is_binary[i] = false;
      }
    }
  }
  for (size_t i = 0; i < dim; ++i) {
    if (is_binary[i]) {
      model.inv_sd_[i] = 1.0;
      continue;
    }
    double sd = std::sqrt(var[i] / static_cast<double>(data.size()));
    model.inv_sd_[i] = sd > 1e-12 ? 1.0 / sd : 0.0;
  }

  Rng rng(config_.seed);
  if (config_.kernel == SvmKernel::kRbfFourier) {
    // W rows ~ N(0, 2*gamma I); b ~ U[0, 2pi).
    model.rff_w_.resize(config_.rff_dim);
    model.rff_b_.resize(config_.rff_dim);
    // Scale-free width: the configured gamma is divided by the input
    // dimensionality (the classic 1/num_features heuristic), so kernel
    // width stays comparable across feature ablations.
    const double w_sd =
        std::sqrt(2.0 * config_.rbf_gamma / static_cast<double>(dim));
    for (size_t d = 0; d < config_.rff_dim; ++d) {
      model.rff_w_[d].resize(dim);
      for (size_t i = 0; i < dim; ++i) {
        model.rff_w_[d][i] = w_sd * rng.NextGaussian();
      }
      model.rff_b_[d] = 2.0 * M_PI * rng.NextDouble();
    }
  }

  // Pre-transform all instances once.
  std::vector<std::vector<double>> phi;
  phi.reserve(data.size());
  for (const RankingInstance& inst : data) {
    phi.push_back(model.Transform(inst.features));
  }
  const size_t feat_dim = phi[0].size();

  // Materialize preference pairs within groups.
  std::map<uint32_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < data.size(); ++i) {
    groups[data[i].group].push_back(i);
  }
  std::vector<std::pair<size_t, size_t>> pairs;  // (winner, loser)
  for (const auto& [gid, members] : groups) {
    for (size_t a = 0; a < members.size(); ++a) {
      for (size_t b = a + 1; b < members.size(); ++b) {
        size_t i = members[a], j = members[b];
        double gap = data[i].label - data[j].label;
        if (std::abs(gap) < config_.min_label_gap) continue;
        if (gap > 0) {
          pairs.emplace_back(i, j);
        } else {
          pairs.emplace_back(j, i);
        }
        if (pairs.size() >= config_.max_pairs) break;
      }
      if (pairs.size() >= config_.max_pairs) break;
    }
    if (pairs.size() >= config_.max_pairs) break;
  }
  if (pairs.empty()) {
    return Status::FailedPrecondition("no preference pairs (all labels tied)");
  }

  // Pegasos-style SGD over the pairwise hinge loss.
  model.weights_.assign(feat_dim, 0.0);
  std::vector<double>& w = model.weights_;
  const double lambda = config_.lambda;
  uint64_t t = 0;
  const uint64_t total_steps =
      static_cast<uint64_t>(config_.epochs) * pairs.size();
  for (uint64_t step = 0; step < total_steps; ++step) {
    ++t;
    const auto& [wi, li] = pairs[rng.NextBounded(pairs.size())];
    const std::vector<double>& xw = phi[wi];
    const std::vector<double>& xl = phi[li];
    double margin = 0.0;
    for (size_t d = 0; d < feat_dim; ++d) margin += w[d] * (xw[d] - xl[d]);
    const double eta = 1.0 / (lambda * static_cast<double>(t));
    // w <- (1 - eta*lambda) w [+ eta * (xw - xl) if margin < 1]
    const double shrink = 1.0 - eta * lambda;
    if (margin < 1.0) {
      for (size_t d = 0; d < feat_dim; ++d) {
        w[d] = shrink * w[d] + eta * (xw[d] - xl[d]);
      }
    } else {
      for (size_t d = 0; d < feat_dim; ++d) w[d] *= shrink;
    }
  }
  return model;
}

}  // namespace ckr
