#include "ranksvm/rank_svm.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>

#include "common/binary_io.h"
#include "common/check.h"
#include "common/log.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "obs/hooks.h"

namespace ckr {

namespace {

/// Header of the compact binary model format.
constexpr char kBinaryMagic[] = "ckr.ranksvm.v2";

/// Pair-diff rows are precomputed when they fit this budget — sized so
/// the matrix stays roughly last-level-cache resident, where halving the
/// per-step traffic pays for the build. Above it (RFF-width rows) the
/// matrix would be pure DRAM and materializing loses; the SGD loop reads
/// the two phi rows per step instead (same arithmetic).
constexpr size_t kPairDiffBudgetBytes = 32u << 20;

/// Picks are drawn kPickAhead steps early through a small ring so the
/// upcoming row can be prefetched and the RNG arithmetic overlaps the
/// latency-bound SGD chain. Ring size must be a power of two > ahead.
constexpr size_t kPickRing = 16;
constexpr size_t kPickAhead = 8;

/// Row `p` of a row-major (rows x dim) matrix backed by `pool`. Bounds-
/// checked under CKR_DCHECK; identical codegen to raw pointer arithmetic
/// in release.
inline Span<const double> RowSpan(const std::vector<double>& pool, size_t p,
                                  size_t dim) {
  CKR_DCHECK_LE((p + 1) * dim, pool.size());
  return Span<const double>(pool.data() + p * dim, dim);
}

}  // namespace

void RankSvmModel::TransformRowInto(const double* features, double* out,
                                    double* scratch) const {
  const size_t dim = mean_.size();
  if (kernel_ == SvmKernel::kLinear) {
    for (size_t i = 0; i < dim; ++i) {
      out[i] = (features[i] - mean_[i]) * inv_sd_[i];
    }
    return;
  }
  double* x = scratch;
  for (size_t i = 0; i < dim; ++i) {
    x[i] = (features[i] - mean_[i]) * inv_sd_[i];
  }
  const size_t rff_dim = rff_b_.size();
  const double scale = std::sqrt(2.0 / static_cast<double>(rff_dim));
  const double* w_row = rff_w_.data();
  for (size_t d = 0; d < rff_dim; ++d, w_row += dim) {
    double dot = rff_b_[d];
    for (size_t i = 0; i < dim; ++i) dot += w_row[i] * x[i];
    out[d] = scale * std::cos(dot);
  }
}

std::vector<double> RankSvmModel::Transform(
    const std::vector<double>& features) const {
  std::vector<double> out(FeatureDim());
  std::vector<double> scratch(kernel_ == SvmKernel::kLinear ? 0
                                                            : mean_.size());
  TransformRowInto(features.data(), out.data(), scratch.data());
  return out;
}

std::vector<double> RankSvmModel::TransformBatch(
    const std::vector<std::vector<double>>& rows,
    unsigned num_threads) const {
  const size_t feat_dim = FeatureDim();
  std::vector<double> out(rows.size() * feat_dim);
  unsigned workers = num_threads == 0 ? DefaultWorkerCount() : num_threads;
  std::vector<std::vector<double>> scratch(
      std::max(1u, workers),
      std::vector<double>(kernel_ == SvmKernel::kLinear ? 0 : mean_.size()));
  ParallelForWorkers(rows.size(), workers, [&](unsigned worker, size_t i) {
    CKR_DCHECK_EQ(rows[i].size(), mean_.size());
    TransformRowInto(rows[i].data(), out.data() + i * feat_dim,
                     scratch[worker].data());
  });
  return out;
}

double RankSvmModel::Score(const std::vector<double>& features) const {
  if (features.size() != mean_.size()) {
    LogWarn("ranksvm: Score called with " + std::to_string(features.size()) +
            " features on a model expecting " + std::to_string(mean_.size()) +
            "; returning 0");
    return 0.0;
  }
  std::vector<double> phi = Transform(features);
  double s = 0.0;
  for (size_t i = 0; i < phi.size(); ++i) s += weights_[i] * phi[i];
  return s;
}

StatusOr<double> RankSvmModel::ScoreChecked(
    const std::vector<double>& features) const {
  if (features.size() != mean_.size()) {
    return Status::InvalidArgument(
        "feature dimension mismatch: got " +
        std::to_string(features.size()) + ", model expects " +
        std::to_string(mean_.size()));
  }
  std::vector<double> phi = Transform(features);
  double s = 0.0;
  for (size_t i = 0; i < phi.size(); ++i) s += weights_[i] * phi[i];
  return s;
}

std::string RankSvmModel::Serialize() const {
  std::ostringstream out;
  out.precision(17);
  out << "ranksvm v1\n";
  out << "kernel " << (kernel_ == SvmKernel::kLinear ? "linear" : "rbf_fourier")
      << "\n";
  auto dump = [&out](const char* name, const std::vector<double>& v) {
    out << name << " " << v.size();
    for (double x : v) out << " " << x;
    out << "\n";
  };
  dump("mean", mean_);
  dump("inv_sd", inv_sd_);
  dump("weights", weights_);
  const size_t dim = mean_.size();
  const size_t rff_dim = rff_b_.size();
  out << "rff " << rff_dim << "\n";
  for (size_t d = 0; d < rff_dim; ++d) {
    out << "w" << d;
    for (size_t i = 0; i < dim; ++i) out << " " << rff_w_[d * dim + i];
    out << " b " << rff_b_[d] << "\n";
  }
  return out.str();
}

std::string RankSvmModel::SerializeBinary() const {
  BinaryWriter writer;
  writer.Str(kBinaryMagic);
  writer.U16(static_cast<uint16_t>(kernel_));
  writer.U32(static_cast<uint32_t>(mean_.size()));
  writer.U32(static_cast<uint32_t>(weights_.size()));
  writer.U32(static_cast<uint32_t>(rff_b_.size()));
  auto dump = [&writer](const std::vector<double>& v) {
    for (double x : v) writer.F64(x);
  };
  dump(mean_);
  dump(inv_sd_);
  dump(weights_);
  dump(rff_w_);
  dump(rff_b_);
  return writer.Release();
}

StatusOr<RankSvmModel> RankSvmModel::DeserializeText(
    const std::string& blob) {
  std::istringstream in(blob);
  std::string magic, version;
  in >> magic >> version;
  if (magic != "ranksvm" || version != "v1") {
    return Status::InvalidArgument("bad model header");
  }
  RankSvmModel m;
  std::string tag, kernel;
  in >> tag >> kernel;
  if (tag != "kernel") return Status::InvalidArgument("missing kernel");
  if (kernel == "linear") {
    m.kernel_ = SvmKernel::kLinear;
  } else if (kernel == "rbf_fourier") {
    m.kernel_ = SvmKernel::kRbfFourier;
  } else {
    return Status::InvalidArgument("unknown kernel '" + kernel + "'");
  }
  auto load = [&in](const char* name, std::vector<double>* v) -> Status {
    std::string t;
    size_t n = 0;
    in >> t >> n;
    if (t != name) return Status::InvalidArgument("expected " + std::string(name));
    v->resize(n);
    for (size_t i = 0; i < n; ++i) in >> (*v)[i];
    return Status::OK();
  };
  CKR_RETURN_IF_ERROR(load("mean", &m.mean_));
  CKR_RETURN_IF_ERROR(load("inv_sd", &m.inv_sd_));
  CKR_RETURN_IF_ERROR(load("weights", &m.weights_));
  std::string t;
  size_t rff_n = 0;
  in >> t >> rff_n;
  if (t != "rff") return Status::InvalidArgument("expected rff");
  const size_t dim = m.mean_.size();
  m.rff_w_.resize(rff_n * dim);
  m.rff_b_.resize(rff_n);
  for (size_t d = 0; d < rff_n; ++d) {
    std::string wd;
    in >> wd;
    for (size_t i = 0; i < dim; ++i) in >> m.rff_w_[d * dim + i];
    std::string btag;
    in >> btag >> m.rff_b_[d];
    if (btag != "b") return Status::InvalidArgument("expected b");
  }
  if (in.fail()) return Status::InvalidArgument("truncated model blob");
  return m;
}

StatusOr<RankSvmModel> RankSvmModel::DeserializeBinary(
    const std::string& blob) {
  BinaryReader reader(blob);
  if (reader.Str() != kBinaryMagic) {
    return Status::InvalidArgument("bad model header");
  }
  RankSvmModel m;
  const uint16_t kernel = reader.U16();
  if (kernel > static_cast<uint16_t>(SvmKernel::kRbfFourier)) {
    return Status::InvalidArgument("unknown kernel id " +
                                   std::to_string(kernel));
  }
  m.kernel_ = static_cast<SvmKernel>(kernel);
  const size_t dim = reader.U32();
  const size_t weights = reader.U32();
  const size_t rff_dim = reader.U32();
  if (!reader.ok()) {
    return Status::InvalidArgument("truncated model header");
  }
  const size_t expected_weights =
      m.kernel_ == SvmKernel::kLinear ? dim : rff_dim;
  if (weights != expected_weights) {
    return Status::InvalidArgument("weight count does not match kernel");
  }
  // Validate the declared counts against the bytes actually present
  // before any allocation: a corrupted size field must fail cleanly, not
  // resize vectors to bogus lengths. Each count is bounded by the doubles
  // remaining, which also keeps rff_dim * dim free of overflow.
  const uint64_t max_doubles = reader.remaining() / sizeof(double);
  if (dim > max_doubles || weights > max_doubles || rff_dim > max_doubles ||
      (rff_dim != 0 && dim > max_doubles / rff_dim)) {
    CKR_OBS_COUNTER_INC("ckr.ranksvm.deserialize_rejected");
    return Status::InvalidArgument("model size fields exceed blob size");
  }
  const uint64_t need = 2 * static_cast<uint64_t>(dim) + weights +
                        static_cast<uint64_t>(rff_dim) * dim + rff_dim;
  if (need > max_doubles) {
    CKR_OBS_COUNTER_INC("ckr.ranksvm.deserialize_rejected");
    return Status::InvalidArgument("truncated model blob");
  }
  auto load = [&reader](std::vector<double>* v, size_t n) {
    v->resize(n);
    for (size_t i = 0; i < n; ++i) (*v)[i] = reader.F64();
  };
  load(&m.mean_, dim);
  load(&m.inv_sd_, dim);
  load(&m.weights_, weights);
  load(&m.rff_w_, rff_dim * dim);
  load(&m.rff_b_, rff_dim);
  if (!reader.AtEnd()) {
    CKR_OBS_COUNTER_INC("ckr.ranksvm.deserialize_rejected");
    return Status::InvalidArgument("truncated or oversized model blob");
  }
  return m;
}

StatusOr<RankSvmModel> RankSvmModel::Deserialize(const std::string& blob) {
  // v1 text blobs begin with their magic in the clear; anything else is
  // dispatched to the length-prefixed binary reader.
  if (blob.rfind("ranksvm", 0) == 0) return DeserializeText(blob);
  return DeserializeBinary(blob);
}

RankSvmTrainer::RankSvmTrainer(const RankSvmConfig& config)
    : config_(config) {}

StatusOr<RankSvmModel> RankSvmTrainer::Train(
    const std::vector<RankingInstance>& data) const {
  if (data.empty()) return Status::InvalidArgument("no training data");
  const size_t dim = data[0].features.size();
  if (dim == 0) return Status::InvalidArgument("zero-dimensional features");
  for (const RankingInstance& inst : data) {
    if (inst.features.size() != dim) {
      return Status::InvalidArgument("inconsistent feature dimensions");
    }
  }
  if (data.size() > UINT32_MAX) {
    return Status::InvalidArgument("too many instances");
  }
  CKR_OBS_SCOPED_TIMER("ckr.ranksvm.stage.train_seconds");
  CKR_OBS_COUNTER_INC("ckr.ranksvm.train_calls");
  CKR_OBS_COUNTER_ADD("ckr.ranksvm.train_instances", data.size());

  RankSvmModel model;
  model.kernel_ = config_.kernel;

  // Standardization fitted on the training data.
  model.mean_.assign(dim, 0.0);
  model.inv_sd_.assign(dim, 0.0);
  for (const RankingInstance& inst : data) {
    for (size_t i = 0; i < dim; ++i) model.mean_[i] += inst.features[i];
  }
  for (double& m : model.mean_) m /= static_cast<double>(data.size());
  std::vector<double> var(dim, 0.0);
  for (const RankingInstance& inst : data) {
    for (size_t i = 0; i < dim; ++i) {
      double d = inst.features[i] - model.mean_[i];
      var[i] += d * d;
    }
  }
  // Binary indicator dimensions (e.g. the taxonomy one-hots) are centered
  // but not variance-scaled: scaling a rare indicator by 1/sd blows it up
  // to +-5 and lets it dominate the RBF distance.
  std::vector<bool> is_binary(dim, true);
  for (const RankingInstance& inst : data) {
    for (size_t i = 0; i < dim; ++i) {
      if (inst.features[i] != 0.0 && inst.features[i] != 1.0) {
        is_binary[i] = false;
      }
    }
  }
  for (size_t i = 0; i < dim; ++i) {
    if (is_binary[i]) {
      model.inv_sd_[i] = 1.0;
      continue;
    }
    double sd = std::sqrt(var[i] / static_cast<double>(data.size()));
    model.inv_sd_[i] = sd > 1e-12 ? 1.0 / sd : 0.0;
  }

  Rng rng(config_.seed);
  if (config_.kernel == SvmKernel::kRbfFourier) {
    // W rows ~ N(0, 2*gamma I); b ~ U[0, 2pi). Draw order matches the
    // legacy trainer row by row, so the projection is bit-identical.
    model.rff_w_.resize(config_.rff_dim * dim);
    model.rff_b_.resize(config_.rff_dim);
    // Scale-free width: the configured gamma is divided by the input
    // dimensionality (the classic 1/num_features heuristic), so kernel
    // width stays comparable across feature ablations.
    const double w_sd =
        std::sqrt(2.0 * config_.rbf_gamma / static_cast<double>(dim));
    for (size_t d = 0; d < config_.rff_dim; ++d) {
      for (size_t i = 0; i < dim; ++i) {
        model.rff_w_[d * dim + i] = w_sd * rng.NextGaussian();
      }
      model.rff_b_[d] = 2.0 * M_PI * rng.NextDouble();
    }
  }

  // Pre-transform all instances into one contiguous n x feat_dim matrix.
  // Rows are independent, so the fan-out is bit-identical for any worker
  // count.
  const size_t n = data.size();
  const size_t feat_dim = model.FeatureDim();
  const unsigned workers =
      config_.num_threads == 0 ? DefaultWorkerCount() : config_.num_threads;
  std::vector<double> phi(n * feat_dim);
  {
    std::vector<std::vector<double>> scratch(
        std::max(1u, workers),
        std::vector<double>(config_.kernel == SvmKernel::kLinear ? 0 : dim));
    ParallelForWorkers(n, workers, [&](unsigned worker, size_t i) {
      model.TransformRowInto(data[i].features.data(),
                             phi.data() + i * feat_dim,
                             scratch[worker].data());
    });
  }

  // Materialize preference pairs within groups: one stable sort brings
  // each group's members together in ascending (group, instance) order —
  // the same order the legacy std::map pass produced — and a linear walk
  // emits the pairs.
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return data[a].group < data[b].group;
  });
  std::vector<uint32_t> winners, losers;
  bool truncated = false;
  size_t groups_consumed = 0;
  for (size_t start = 0; start < n && !truncated;) {
    size_t end = start + 1;
    while (end < n && data[order[end]].group == data[order[start]].group) {
      ++end;
    }
    for (size_t a = start; a < end && !truncated; ++a) {
      for (size_t b = a + 1; b < end; ++b) {
        const uint32_t i = order[a], j = order[b];
        double gap = data[i].label - data[j].label;
        if (std::abs(gap) < config_.min_label_gap) continue;
        if (gap > 0) {
          winners.push_back(i);
          losers.push_back(j);
        } else {
          winners.push_back(j);
          losers.push_back(i);
        }
        if (winners.size() >= config_.max_pairs) {
          truncated = true;
          break;
        }
      }
    }
    ++groups_consumed;
    start = end;
  }
  if (truncated) {
    // The cap silently biases training toward early (low-id) groups;
    // count how many groups never contributed and say so.
    size_t groups_total = 0;
    for (size_t start = 0; start < n;) {
      size_t end = start + 1;
      while (end < n && data[order[end]].group == data[order[start]].group) {
        ++end;
      }
      ++groups_total;
      start = end;
    }
    LogWarn("ranksvm: max_pairs=" + std::to_string(config_.max_pairs) +
            " truncated pair materialization after " +
            std::to_string(groups_consumed) + " of " +
            std::to_string(groups_total) +
            " groups; training is biased toward early groups");
  }
  if (truncated) CKR_OBS_COUNTER_INC("ckr.ranksvm.pair_cap_truncations");
  if (winners.empty()) {
    return Status::FailedPrecondition("no preference pairs (all labels tied)");
  }
  const size_t num_pairs = winners.size();
  CKR_OBS_COUNTER_ADD("ckr.ranksvm.train_pairs", num_pairs);

  // Precompute each pair's difference row when the whole matrix fits a
  // last-level-cache-sized budget: the SGD step then streams one short,
  // cache-resident row instead of chasing two, and the margin/update
  // arithmetic is unchanged (same subtractions, same order). Past the
  // budget (e.g. RFF-dim rows) materializing loses — the matrix would be
  // pure DRAM traffic at twice phi's footprint — so the step instead
  // reads both phi rows and fuses the subtraction into the margin and
  // update loops exactly like the legacy trainer does.
  std::vector<double> diff;
  const bool use_diff =
      num_pairs <= kPairDiffBudgetBytes / sizeof(double) / feat_dim;
  if (use_diff) {
    diff.resize(num_pairs * feat_dim);
    ParallelForWorkers(num_pairs, workers, [&](unsigned, size_t p) {
      const Span<const double> xw = RowSpan(phi, winners[p], feat_dim);
      const Span<const double> xl = RowSpan(phi, losers[p], feat_dim);
      double* out = diff.data() + p * feat_dim;
      for (size_t d = 0; d < feat_dim; ++d) out[d] = xw[d] - xl[d];
    });
  }

  // A column whose difference is exactly zero in every pair never moves
  // its weight: the weight starts at +0.0, the shrink step maps +0.0 to
  // +0.0, and the hinge step adds eta * (+-0.0), which keeps +0.0 — the
  // legacy trainer computes exactly +0.0 for that dimension at every
  // step. Its margin terms are +-0.0 additions, which never change the
  // running sum either. So dead columns can be compacted out of the hot
  // loop entirely, shortening the latency-bound margin chain, and the
  // final weights scattered back with literal +0.0 in the gaps. This
  // fires in practice: ablation masks zero out whole feature groups, and
  // a feature that is constant within every window cancels in every
  // within-group pair.
  size_t sgd_dim = feat_dim;
  std::vector<uint32_t> live_cols;
  if (use_diff) {
    std::vector<char> col_live(feat_dim, 0);
    for (size_t p = 0; p < num_pairs; ++p) {
      const double* row = diff.data() + p * feat_dim;
      for (size_t d = 0; d < feat_dim; ++d) {
        col_live[d] |= row[d] != 0.0 ? 1 : 0;
      }
    }
    for (size_t d = 0; d < feat_dim; ++d) {
      if (col_live[d]) live_cols.push_back(static_cast<uint32_t>(d));
    }
    if (live_cols.size() < feat_dim) {
      sgd_dim = live_cols.size();
      // In-place row compaction: each destination row starts at or
      // before its source row, and within a row live_cols[j] >= j, so
      // reads stay ahead of writes.
      for (size_t p = 0; p < num_pairs; ++p) {
        const double* src = diff.data() + p * feat_dim;
        double* dst = diff.data() + p * sgd_dim;
        for (size_t j = 0; j < sgd_dim; ++j) dst[j] = src[live_cols[j]];
      }
      diff.resize(num_pairs * sgd_dim);
    } else {
      live_cols.clear();
    }
  }

  // Pegasos-style SGD over the pairwise hinge loss. The loop is
  // sequential (each step reads the previous step's weights) but works on
  // contiguous rows. Picks are drawn through a small ring, kPickAhead
  // steps early — the identical NextBounded sequence the legacy per-step
  // calls consumed, in the identical order. Drawing ahead serves two
  // purposes: the upcoming row can be prefetched while earlier steps
  // retire, and the RNG arithmetic itself executes in the issue slots the
  // latency-bound margin chain leaves idle instead of forming its own
  // serial phase.
  //
  // The update is written branchlessly in both paths below: the hinge is
  // active on roughly half the steps of a converged run, so the classic
  // two-loop form (hit: shrink+add, miss: shrink only) mispredicts
  // constantly and each mispredict stalls the whole serial
  // margin->update->margin dependency chain. Folding the condition into
  // the step size (e = eta or 0.0) keeps one straight-line loop. This is
  // bit-identical to the legacy two-branch update: when e == 0,
  // e * d_row[d] is +-0.0 and adding +-0.0 to shrink * w[d] leaves it
  // unchanged (w never holds -0.0: weights start at +0.0 and an
  // exactly-zero update sum rounds to +0.0; shrink * w underflowing to a
  // signed zero would need |w| near DBL_TRUE_MIN, far below anything the
  // O(eta)-sized updates can produce).
  std::vector<double> sgd_w(sgd_dim, 0.0);
  double* const w = sgd_w.data();
  const double lambda = config_.lambda;
  const uint64_t total_steps =
      static_cast<uint64_t>(config_.epochs) * num_pairs;
  uint32_t ring[kPickRing];
  const uint64_t warmup = std::min<uint64_t>(total_steps, kPickAhead);
  for (uint64_t i = 0; i < warmup; ++i) {
    ring[i & (kPickRing - 1)] =
        static_cast<uint32_t>(rng.NextBounded(num_pairs));
  }
  if (use_diff) {
    for (uint64_t s = 0; s < total_steps; ++s) {
      const uint32_t pick = ring[s & (kPickRing - 1)];
      const uint64_t draw = s + kPickAhead;
      if (draw < total_steps) {
        const uint32_t next =
            static_cast<uint32_t>(rng.NextBounded(num_pairs));
        ring[draw & (kPickRing - 1)] = next;
        __builtin_prefetch(diff.data() + size_t{next} * sgd_dim);
      }
      const Span<const double> d_row = RowSpan(diff, pick, sgd_dim);
      double margin = 0.0;
      for (size_t d = 0; d < sgd_dim; ++d) margin += w[d] * d_row[d];
      const double eta = 1.0 / (lambda * static_cast<double>(s + 1));
      // w <- (1 - eta*lambda) w [+ eta * (xw - xl) if margin < 1]
      const double shrink = 1.0 - eta * lambda;
      const double e = margin < 1.0 ? eta : 0.0;
      for (size_t d = 0; d < sgd_dim; ++d) {
        w[d] = shrink * w[d] + e * d_row[d];
      }
    }
  } else {
    for (uint64_t s = 0; s < total_steps; ++s) {
      const uint32_t pick = ring[s & (kPickRing - 1)];
      const uint64_t draw = s + kPickAhead;
      if (draw < total_steps) {
        const uint32_t next =
            static_cast<uint32_t>(rng.NextBounded(num_pairs));
        ring[draw & (kPickRing - 1)] = next;
        __builtin_prefetch(phi.data() + size_t{winners[next]} * feat_dim);
        __builtin_prefetch(phi.data() + size_t{losers[next]} * feat_dim);
      }
      const Span<const double> xw = RowSpan(phi, winners[pick], feat_dim);
      const Span<const double> xl = RowSpan(phi, losers[pick], feat_dim);
      // Same fused subtraction as the legacy trainer — the update's
      // second pass over xw/xl hits rows the margin pass just loaded.
      double margin = 0.0;
      for (size_t d = 0; d < feat_dim; ++d) {
        margin += w[d] * (xw[d] - xl[d]);
      }
      const double eta = 1.0 / (lambda * static_cast<double>(s + 1));
      const double shrink = 1.0 - eta * lambda;
      const double e = margin < 1.0 ? eta : 0.0;
      for (size_t d = 0; d < feat_dim; ++d) {
        w[d] = shrink * w[d] + e * (xw[d] - xl[d]);
      }
    }
  }
  CKR_OBS_COUNTER_ADD("ckr.ranksvm.sgd_steps", total_steps);
  CKR_OBS_COUNTER_ADD("ckr.ranksvm.dead_columns_compacted",
                      feat_dim - sgd_dim);
  model.weights_.assign(feat_dim, 0.0);
  if (live_cols.empty()) {
    model.weights_ = std::move(sgd_w);
  } else {
    for (size_t j = 0; j < sgd_dim; ++j) {
      model.weights_[live_cols[j]] = sgd_w[j];
    }
  }
  return model;
}

}  // namespace ckr
