// The pre-flat scalar ranking-SVM trainer, preserved verbatim as the
// golden reference for the contiguous-matrix trainer in rank_svm.h: same
// standardization, same RFF draw order, same std::map pair
// materialization, same per-step rng consumption, same scalar Pegasos
// updates. Tests and bench_training_perf assert that RankSvmTrainer
// produces bit-identical weights before any speedup is timed.
//
// Not for production use: it allocates one vector per transformed
// instance and chases nested vectors in the SGD hot loop.
#ifndef CKR_RANKSVM_LEGACY_RANK_SVM_H_
#define CKR_RANKSVM_LEGACY_RANK_SVM_H_

#include <vector>

#include "common/status.h"
#include "ranksvm/rank_svm.h"

namespace ckr {

/// Trains models with the original nested-vector implementation. The
/// returned model is a regular RankSvmModel (flat storage); only the
/// training computation is legacy.
class LegacyRankSvmTrainer {
 public:
  explicit LegacyRankSvmTrainer(const RankSvmConfig& config = {});

  /// Fails when no valid preference pair exists or dimensions disagree.
  [[nodiscard]] StatusOr<RankSvmModel> Train(
      const std::vector<RankingInstance>& data) const;

 private:
  RankSvmConfig config_;
};

}  // namespace ckr

#endif  // CKR_RANKSVM_LEGACY_RANK_SVM_H_
