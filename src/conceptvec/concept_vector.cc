#include "conceptvec/concept_vector.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace ckr {
namespace {

// Normalize to [0,1] by the max, punish below `punish_thr`, drop below
// `drop_thr` — the treatment the paper applies to both vectors.
void NormalizePunishDrop(std::unordered_map<std::string, double>* weights,
                         double punish_thr, double drop_thr,
                         double punish_factor) {
  double max_w = 0.0;
  for (const auto& [k, w] : *weights) max_w = std::max(max_w, w);
  if (max_w <= 0.0) {
    weights->clear();
    return;
  }
  for (auto it = weights->begin(); it != weights->end();) {
    double w = it->second / max_w;
    if (w < punish_thr) w *= punish_factor;
    if (w < drop_thr) {
      it = weights->erase(it);
    } else {
      it->second = w;
      ++it;
    }
  }
}

}  // namespace

ConceptVectorGenerator::ConceptVectorGenerator(const TermDictionary& term_dict,
                                               const UnitDictionary& units,
                                               const ConceptVectorConfig& config)
    : term_dict_(term_dict), units_(units), config_(config) {
  for (const UnitInfo& u : units_.units()) {
    Status s = unit_matcher_.AddPhrase(
        u.phrase, static_cast<uint32_t>(matcher_payloads_.size()));
    CKR_DCHECK(s.ok());
    (void)s;
    matcher_payloads_.push_back(&u);
  }
  unit_matcher_.Build();
}

std::unordered_map<std::string, double> ConceptVectorGenerator::BuildTermVector(
    const std::vector<std::string>& tokens) const {
  std::unordered_map<std::string, double> tf;
  for (const std::string& t : tokens) {
    if (IsStopWord(t)) continue;
    tf[t] += 1.0;
  }
  for (auto& [term, f] : tf) f *= term_dict_.Idf(term);
  NormalizePunishDrop(&tf, config_.term_punish_threshold,
                      config_.term_drop_threshold, config_.punish_factor);
  return tf;
}

std::unordered_map<std::string, double> ConceptVectorGenerator::BuildUnitVector(
    const std::vector<std::string>& tokens) const {
  std::unordered_map<std::string, double> uv;
  for (const PhraseMatch& m : unit_matcher_.FindAll(tokens)) {
    const UnitInfo* info = matcher_payloads_[m.payload];
    // The unit vector holds the unit's (already normalized) score; repeat
    // occurrences do not accumulate.
    uv[info->phrase] = info->score;
  }
  NormalizePunishDrop(&uv, config_.unit_punish_threshold,
                      config_.unit_drop_threshold, config_.punish_factor);
  return uv;
}

std::vector<ConceptScore> ConceptVectorGenerator::Generate(
    std::string_view text) const {
  std::vector<std::string> tokens = TokenizeToStrings(text);
  std::unordered_map<std::string, double> term_vec = BuildTermVector(tokens);
  std::unordered_map<std::string, double> unit_vec = BuildUnitVector(tokens);

  // Merge (Section II-B cases 1-3).
  std::unordered_map<std::string, double> merged;
  for (const auto& [term, w] : term_vec) {
    auto it = unit_vec.find(term);
    if (it == unit_vec.end()) {
      merged[term] = w * config_.no_unit_punish_factor;  // Case 1.
    } else {
      merged[term] = w + it->second;  // Case 3.
    }
  }
  for (const auto& [unit, w] : unit_vec) {
    if (merged.count(unit) == 0) merged[unit] = w;  // Case 2.
  }

  // Step (4): multi-term specificity bonus.
  if (config_.multi_term_bonus) {
    for (auto& [phrase, w] : merged) {
      if (phrase.find(' ') == std::string::npos) continue;
      for (const std::string& part : SplitString(phrase, " ")) {
        auto t = term_vec.find(part);
        if (t != term_vec.end()) w += t->second;
        auto u = unit_vec.find(part);
        if (u != unit_vec.end()) w += u->second;
      }
    }
  }

  std::vector<ConceptScore> out;
  out.reserve(merged.size());
  for (auto& [phrase, w] : merged) out.push_back({phrase, w});
  std::sort(out.begin(), out.end(),
            [](const ConceptScore& a, const ConceptScore& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.phrase < b.phrase;
            });
  return out;
}

std::vector<double> ConceptVectorGenerator::ScoreCandidates(
    std::string_view text, const std::vector<std::string>& candidates) const {
  std::vector<std::string> tokens = TokenizeToStrings(text);
  std::unordered_map<std::string, double> term_vec = BuildTermVector(tokens);
  std::unordered_map<std::string, double> unit_vec = BuildUnitVector(tokens);
  std::vector<ConceptScore> vec = Generate(text);
  std::unordered_map<std::string, double> lookup;
  for (const ConceptScore& c : vec) lookup[c.phrase] = c.score;
  std::vector<double> scores;
  scores.reserve(candidates.size());
  for (const std::string& c : candidates) {
    std::string key = NormalizePhrase(c);
    auto it = lookup.find(key);
    if (it != lookup.end()) {
      scores.push_back(it->second);
      continue;
    }
    // Multi-term candidate absent from both vectors (e.g. a dictionary
    // entity that is not a query-log unit): its step-two weight is zero,
    // but the multi-term bonus of step (4) still applies — the sum of the
    // constituent terms' term- and unit-vector scores.
    double bonus = 0.0;
    if (config_.multi_term_bonus && key.find(' ') != std::string::npos) {
      for (const std::string& part : SplitString(key, " ")) {
        auto t = term_vec.find(part);
        if (t != term_vec.end()) bonus += t->second;
        auto u = unit_vec.find(part);
        if (u != unit_vec.end()) bonus += u->second;
      }
    }
    scores.push_back(bonus);
  }
  return scores;
}

}  // namespace ckr
