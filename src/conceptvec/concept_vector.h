// Concept vector generation (paper Section II-B) — the production baseline
// ranker that the learned model is evaluated against.
//
// Pipeline: (1) a tf*idf term vector over the document (stop words
// removed, weights normalized to [0,1], low weights punished then
// dropped); (2) a unit vector of all query-log units occurring in the
// document (same normalize/punish/drop treatment); (3) a merge with the
// paper's three cases; (4) the multi-term bonus that adds each contained
// term's term- and unit-vector scores so "more specific concepts
// eventually bubble up in the overall rank".
#ifndef CKR_CONCEPTVEC_CONCEPT_VECTOR_H_
#define CKR_CONCEPTVEC_CONCEPT_VECTOR_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "corpus/term_dictionary.h"
#include "detect/aho_corasick.h"
#include "units/unit_extractor.h"

namespace ckr {

/// Thresholds of the normalize/punish/drop treatment and the merge.
struct ConceptVectorConfig {
  double term_punish_threshold = 0.45;  ///< Below: weight is punished.
  double term_drop_threshold = 0.05;    ///< Below (post-punish): dropped.
  double unit_punish_threshold = 0.45;
  double unit_drop_threshold = 0.05;
  double punish_factor = 0.5;           ///< Multiplier applied when punishing.
  /// Merge case 1: a term absent from the unit vector "did not appear as a
  /// popular query", so its term weight is punished in the merge.
  double no_unit_punish_factor = 0.5;
  /// Step (4): the multi-term specificity bonus. Disable for the ablation
  /// bench.
  bool multi_term_bonus = true;
};

/// A scored concept.
struct ConceptScore {
  std::string phrase;
  double score = 0.0;
};

/// Generates concept vectors for documents. Thread-safe after construction.
class ConceptVectorGenerator {
 public:
  /// `term_dict` supplies idf; `units` supplies the unit dictionary (both
  /// must outlive the generator).
  ConceptVectorGenerator(const TermDictionary& term_dict,
                         const UnitDictionary& units,
                         const ConceptVectorConfig& config = {});

  /// Full merged concept vector of a document, sorted by descending score.
  std::vector<ConceptScore> Generate(std::string_view text) const;

  /// Scores an explicit candidate set against the document's concept
  /// vector (0 for candidates absent from the vector). Order matches
  /// `candidates`.
  std::vector<double> ScoreCandidates(
      std::string_view text, const std::vector<std::string>& candidates) const;

 private:
  std::unordered_map<std::string, double> BuildTermVector(
      const std::vector<std::string>& tokens) const;
  std::unordered_map<std::string, double> BuildUnitVector(
      const std::vector<std::string>& tokens) const;

  const TermDictionary& term_dict_;
  const UnitDictionary& units_;
  ConceptVectorConfig config_;
  PhraseMatcher unit_matcher_;
  std::vector<const UnitInfo*> matcher_payloads_;
};

}  // namespace ckr

#endif  // CKR_CONCEPTVEC_CONCEPT_VECTOR_H_
