// Wikipedia simulator.
//
// The paper uses the length of a concept's Wikipedia article as an
// interestingness feature ((9) wiki_word_count, after Hu et al. [14]),
// with 0 when no article exists. This store generates article word counts
// correlated with each entity's latent notability (heavy noise, many
// entities without articles) and can materialize article text on demand
// for the examples.
#ifndef CKR_WIKI_WIKI_STORE_H_
#define CKR_WIKI_WIKI_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "corpus/world.h"

namespace ckr {

/// Immutable article registry keyed by normalized concept phrase.
class WikiStore {
 public:
  /// Builds deterministically from the world's notability latents.
  /// Entities below the notability floor, and all generic junk units, get
  /// no article.
  static WikiStore Build(const World& world, uint64_t seed);

  /// Word count of the article for the phrase; 0 when no article exists.
  uint32_t ArticleWordCount(std::string_view phrase) const;

  /// True if an article exists.
  bool HasArticle(std::string_view phrase) const {
    return ArticleWordCount(phrase) > 0;
  }

  size_t NumArticles() const { return word_counts_.size(); }

  /// Materializes deterministic article text of the registered length
  /// (topic-flavored filler); empty string when no article exists.
  std::string ArticleText(const World& world, std::string_view phrase) const;

 private:
  std::unordered_map<std::string, uint32_t> word_counts_;
  std::unordered_map<std::string, EntityId> article_entity_;
  uint64_t seed_ = 0;
};

}  // namespace ckr

#endif  // CKR_WIKI_WIKI_STORE_H_
