#include "wiki/wiki_store.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "text/tokenizer.h"

namespace ckr {

WikiStore WikiStore::Build(const World& world, uint64_t seed) {
  WikiStore store;
  store.seed_ = seed;
  Rng rng(seed);
  for (const Entity& e : world.entities()) {
    if (e.is_generic) continue;  // Junk units have no encyclopedia entry.
    // Coverage grows with notability; low-notability entities usually
    // have no article at all.
    double p_article = std::min(0.95, 0.15 + 1.1 * e.notability);
    if (!rng.NextBernoulli(p_article)) continue;
    // Length: hundreds to thousands of words, log-normal-ish around a
    // notability-driven mode.
    double mode = 150.0 + 2800.0 * e.notability;
    double noise = std::exp(0.5 * rng.NextGaussian());
    uint32_t words = static_cast<uint32_t>(std::max(40.0, mode * noise));
    store.word_counts_[e.key] = words;
    store.article_entity_[e.key] = e.id;
  }
  return store;
}

uint32_t WikiStore::ArticleWordCount(std::string_view phrase) const {
  auto it = word_counts_.find(NormalizePhrase(phrase));
  return it == word_counts_.end() ? 0 : it->second;
}

std::string WikiStore::ArticleText(const World& world,
                                   std::string_view phrase) const {
  std::string key = NormalizePhrase(phrase);
  auto it = word_counts_.find(key);
  if (it == word_counts_.end()) return "";
  EntityId eid = article_entity_.at(key);
  const Entity& e = world.entity(eid);
  Rng rng(Mix64(HashCombine(seed_, Fnv1a64(key))));
  std::string text = e.surface;
  text += " is a " +
          std::string(EntityTypeName(e.type)) + ". ";
  const Vocabulary& vocab = world.vocabulary();
  size_t topic = static_cast<size_t>(e.primary_topic);
  size_t sentence_len = 0;
  for (uint32_t w = 0; w < it->second; ++w) {
    text += vocab.Word(vocab.SampleForTopic(topic, 0.3, rng));
    ++sentence_len;
    if (sentence_len >= 12 + rng.NextBounded(8)) {
      text += ". ";
      sentence_len = 0;
    } else {
      text += " ";
    }
  }
  text += ".";
  return text;
}

}  // namespace ckr
