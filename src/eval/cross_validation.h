// k-fold cross-validation split (paper Section V-A.3: "We randomly
// partitioned our document set into five subsets, used four subsets for
// training and the remaining subset for testing").
#ifndef CKR_EVAL_CROSS_VALIDATION_H_
#define CKR_EVAL_CROSS_VALIDATION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ckr {

/// Assigns each of `n` items a fold in [0, k). Folds are balanced (sizes
/// differ by at most one) and the assignment is a random permutation
/// deterministic in `seed`.
std::vector<int> KFoldAssignment(size_t n, int k, uint64_t seed);

/// Item indexes of the train/test split for one fold.
struct FoldSplit {
  std::vector<size_t> train;
  std::vector<size_t> test;
};

/// Materializes the split for fold `fold` of an assignment.
FoldSplit MakeFoldSplit(const std::vector<int>& assignment, int fold);

}  // namespace ckr

#endif  // CKR_EVAL_CROSS_VALIDATION_H_
