// Simulated editorial study (paper Section V-B).
//
// The original study had a team of expert judges rate each highlighted
// entity on two 3-level scales (interestingness, relevance) plus "Can't
// Tell". The simulator replaces the judges with noisy threshold functions
// over the world's latent ground truth: judge_value = latent + N(0,
// judge_noise), then bucketed by fixed thresholds. This preserves exactly
// what Table VI measures — how the judgment distribution over a ranker's
// top-k picks shifts when the ranking improves.
#ifndef CKR_EVAL_EDITORIAL_H_
#define CKR_EVAL_EDITORIAL_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "corpus/document.h"
#include "corpus/world.h"

namespace ckr {

/// 3-level judgment scales. kCantTell is the paper's rare fallback.
enum class InterestJudgment { kVery = 0, kSomewhat, kNot, kCantTell };
enum class RelevanceJudgment { kVery = 0, kSomewhat, kNot, kCantTell };

/// Judge behaviour.
struct JudgeConfig {
  uint64_t seed = 4242;
  double noise_sd = 0.12;          ///< Judge disagreement noise.
  double cant_tell_prob = 0.001;   ///< "those rare cases".
  // Interestingness thresholds on (latent + noise).
  double interest_very = 0.55;
  double interest_somewhat = 0.25;
  // Relevance thresholds.
  double relevance_very = 0.45;
  double relevance_somewhat = 0.20;
};

/// Judgment distribution over a set of rated entities (fractions sum to 1
/// per scale).
struct JudgmentDistribution {
  std::array<double, 4> interest{};   ///< Indexed by InterestJudgment.
  std::array<double, 4> relevance{};  ///< Indexed by RelevanceJudgment.
  size_t total = 0;
};

/// A (document, entity key) pair submitted for judgment.
struct JudgingTask {
  const Document* doc = nullptr;
  std::string key;
};

/// The simulated judging team.
class EditorialPanel {
 public:
  EditorialPanel(const World& world, const JudgeConfig& config = {});

  /// Rates one entity in one document.
  InterestJudgment JudgeInterest(const Document& doc, const std::string& key,
                                 Rng& rng) const;
  RelevanceJudgment JudgeRelevance(const Document& doc, const std::string& key,
                                   Rng& rng) const;

  /// Rates a batch and aggregates the distribution (deterministic in the
  /// panel seed and task order).
  JudgmentDistribution JudgeAll(const std::vector<JudgingTask>& tasks) const;

 private:
  /// Latent (interestingness, relevance) for a key on a doc; unknown keys
  /// get the low defaults of noise units.
  std::pair<double, double> Latents(const Document& doc,
                                    const std::string& key) const;

  const World& world_;
  JudgeConfig config_;
};

}  // namespace ckr

#endif  // CKR_EVAL_EDITORIAL_H_
