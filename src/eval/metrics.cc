#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"

namespace ckr {

void AccumulatePairwiseError(const std::vector<double>& pred,
                             const std::vector<double>& ctr, bool weighted,
                             PairwiseErrorAccumulator* acc) {
  CKR_DCHECK(pred.size() == ctr.size());
  const size_t n = pred.size();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double gap = ctr[i] - ctr[j];
      if (gap == 0.0) continue;  // No preference between the two.
      double weight = weighted ? std::abs(gap) : 1.0;
      acc->total_mass += weight;
      double pred_gap = pred[i] - pred[j];
      if (pred_gap == 0.0) {
        acc->error_mass += 0.5 * weight;  // Random tie-break in expectation.
      } else if ((gap > 0) != (pred_gap > 0)) {
        acc->error_mass += weight;
      }
    }
  }
}

double PairwiseErrorRate(const std::vector<double>& pred,
                         const std::vector<double>& ctr, bool weighted) {
  PairwiseErrorAccumulator acc;
  AccumulatePairwiseError(pred, ctr, weighted, &acc);
  return acc.Rate();
}

CtrBucketizer::CtrBucketizer(std::vector<double> all_ctrs)
    : sorted_(std::move(all_ctrs)) {
  std::sort(sorted_.begin(), sorted_.end());
}

int CtrBucketizer::BucketNo(double ctr) const {
  if (sorted_.empty()) return 0;
  // Rank fraction of `ctr` among all observed CTRs (midpoint of the range
  // of equal values for stability).
  auto lo = std::lower_bound(sorted_.begin(), sorted_.end(), ctr);
  auto hi = std::upper_bound(sorted_.begin(), sorted_.end(), ctr);
  double rank = 0.5 * static_cast<double>((lo - sorted_.begin()) +
                                          (hi - sorted_.begin()));
  double frac = rank / static_cast<double>(sorted_.size());
  int bucket = static_cast<int>(frac * 1000.0);
  return std::min(1000, std::max(0, bucket));
}

double NdcgAtK(const std::vector<double>& pred, const std::vector<double>& ctr,
               const CtrBucketizer& buckets, size_t k) {
  CKR_DCHECK(pred.size() == ctr.size());
  const size_t n = pred.size();
  if (n == 0) return 1.0;

  auto dcg = [&](const std::vector<size_t>& order) {
    double total = 0.0;
    const size_t limit = std::min(k, order.size());
    for (size_t j = 0; j < limit; ++j) {
      double gain = std::pow(2.0, buckets.Score(ctr[order[j]])) - 1.0;
      total += gain / std::log2(static_cast<double>(j) + 2.0);
    }
    return total;
  };

  std::vector<size_t> by_pred(n);
  std::iota(by_pred.begin(), by_pred.end(), 0);
  std::sort(by_pred.begin(), by_pred.end(), [&](size_t a, size_t b) {
    if (pred[a] != pred[b]) return pred[a] > pred[b];
    return a < b;
  });
  std::vector<size_t> ideal(n);
  std::iota(ideal.begin(), ideal.end(), 0);
  std::sort(ideal.begin(), ideal.end(), [&](size_t a, size_t b) {
    if (ctr[a] != ctr[b]) return ctr[a] > ctr[b];
    return a < b;
  });

  double ideal_dcg = dcg(ideal);
  if (ideal_dcg <= 0.0) return 1.0;  // No gain anywhere: any order is perfect.
  return dcg(by_pred) / ideal_dcg;
}

BootstrapCi BootstrapRatioCi(
    const std::vector<std::pair<double, double>>& groups, int resamples,
    double confidence, uint64_t seed, unsigned num_threads) {
  BootstrapCi ci;
  if (groups.empty() || resamples <= 0) return ci;
  double num = 0, den = 0;
  for (const auto& [n, d] : groups) {
    num += n;
    den += d;
  }
  ci.mean = den > 0 ? num / den : 0.0;

  // One independent RNG per replicate (seed mixed with the replicate id
  // through the Rng's SplitMix64 seeding): replicate r's resample is a
  // pure function of (seed, r), so the fan-out below is bit-identical
  // for any worker count.
  const unsigned workers =
      num_threads == 0 ? DefaultWorkerCount() : num_threads;
  std::vector<double> stats(static_cast<size_t>(resamples));
  ParallelFor(stats.size(), workers, [&](size_t r) {
    Rng rng(seed + 0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(r) + 1));
    double rn = 0, rd = 0;
    for (size_t i = 0; i < groups.size(); ++i) {
      const auto& [n, d] = groups[rng.NextBounded(groups.size())];
      rn += n;
      rd += d;
    }
    stats[r] = rd > 0 ? rn / rd : 0.0;
  });
  std::sort(stats.begin(), stats.end());
  double alpha = (1.0 - confidence) / 2.0;
  auto pick = [&](double q) {
    double idx = q * static_cast<double>(stats.size() - 1);
    return stats[static_cast<size_t>(idx + 0.5)];
  };
  ci.lo = pick(alpha);
  ci.hi = pick(1.0 - alpha);
  return ci;
}

}  // namespace ckr
