#include "eval/cross_validation.h"


#include "common/check.h"
#include "common/rng.h"

namespace ckr {

std::vector<int> KFoldAssignment(size_t n, int k, uint64_t seed) {
  CKR_DCHECK(k > 0);
  Rng rng(seed);
  std::vector<size_t> perm = rng.Permutation(n);
  std::vector<int> folds(n, 0);
  for (size_t i = 0; i < n; ++i) {
    folds[perm[i]] = static_cast<int>(i % static_cast<size_t>(k));
  }
  return folds;
}

FoldSplit MakeFoldSplit(const std::vector<int>& assignment, int fold) {
  FoldSplit split;
  for (size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] == fold) {
      split.test.push_back(i);
    } else {
      split.train.push_back(i);
    }
  }
  return split;
}

}  // namespace ckr
