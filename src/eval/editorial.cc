#include "eval/editorial.h"

namespace ckr {

EditorialPanel::EditorialPanel(const World& world, const JudgeConfig& config)
    : world_(world), config_(config) {}

std::pair<double, double> EditorialPanel::Latents(const Document& doc,
                                                  const std::string& key) const {
  EntityId id = world_.FindByKey(key);
  if (id == kInvalidEntity) return {0.04, 0.06};
  const Entity& e = world_.entity(id);
  double r = doc.TruthRelevance(id);
  if (r == 0.0) {
    bool on_topic =
        e.primary_topic == doc.topic || e.secondary_topic == doc.topic;
    r = on_topic ? 0.25 : 0.06;
  }
  return {e.interestingness, r};
}

InterestJudgment EditorialPanel::JudgeInterest(const Document& doc,
                                               const std::string& key,
                                               Rng& rng) const {
  if (rng.NextBernoulli(config_.cant_tell_prob)) {
    return InterestJudgment::kCantTell;
  }
  auto [g, r] = Latents(doc, key);
  (void)r;  // Interestingness is judged independently of relevance (§V-B).
  double judged = g + config_.noise_sd * rng.NextGaussian();
  if (judged >= config_.interest_very) return InterestJudgment::kVery;
  if (judged >= config_.interest_somewhat) return InterestJudgment::kSomewhat;
  return InterestJudgment::kNot;
}

RelevanceJudgment EditorialPanel::JudgeRelevance(const Document& doc,
                                                 const std::string& key,
                                                 Rng& rng) const {
  if (rng.NextBernoulli(config_.cant_tell_prob)) {
    return RelevanceJudgment::kCantTell;
  }
  auto [g, r] = Latents(doc, key);
  (void)g;
  double judged = r + config_.noise_sd * rng.NextGaussian();
  if (judged >= config_.relevance_very) return RelevanceJudgment::kVery;
  if (judged >= config_.relevance_somewhat) return RelevanceJudgment::kSomewhat;
  return RelevanceJudgment::kNot;
}

JudgmentDistribution EditorialPanel::JudgeAll(
    const std::vector<JudgingTask>& tasks) const {
  JudgmentDistribution dist;
  Rng rng(config_.seed);
  for (const JudgingTask& task : tasks) {
    if (task.doc == nullptr) continue;
    InterestJudgment ij = JudgeInterest(*task.doc, task.key, rng);
    RelevanceJudgment rj = JudgeRelevance(*task.doc, task.key, rng);
    dist.interest[static_cast<size_t>(ij)] += 1.0;
    dist.relevance[static_cast<size_t>(rj)] += 1.0;
    ++dist.total;
  }
  if (dist.total > 0) {
    for (double& x : dist.interest) x /= static_cast<double>(dist.total);
    for (double& x : dist.relevance) x /= static_cast<double>(dist.total);
  }
  return dist;
}

}  // namespace ckr
