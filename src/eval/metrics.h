// Evaluation metrics of Section V-A.2.
//
//  * (Weighted) pairwise error rate (Eq. 4/5): the fraction of mispredicted
//    preference pairs, with mistakes optionally punished by the CTR
//    difference of the pair. Prediction ties count as half a mistake — the
//    expectation of the paper's "in the case of ties, we assume a random
//    ordering of concepts".
//  * NDCG@k (Eq. 6): gain 2^score(j) - 1, discount log2(j + 1), where
//    score(j) = bucketNo(CTR(j)) / 100 maps observed CTRs through a
//    1000-bucket system-wide quantile table to judgments in [0, 10].
#ifndef CKR_EVAL_METRICS_H_
#define CKR_EVAL_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ckr {

/// Accumulates pairwise error mass across documents; report with Rate().
struct PairwiseErrorAccumulator {
  double error_mass = 0.0;
  double total_mass = 0.0;

  double Rate() const { return total_mass > 0 ? error_mass / total_mass : 0.0; }
};

/// Adds one document's pairs. `pred` are model scores (higher ranks
/// first), `ctr` the observed labels; both aligned and of equal size.
/// `weighted` selects Eq. 5 (weight = |ctr_i - ctr_j|) vs Eq. 4 (weight =
/// 1). Pairs with equal CTR are skipped (no preference). Tied predictions
/// contribute half their weight.
void AccumulatePairwiseError(const std::vector<double>& pred,
                             const std::vector<double>& ctr, bool weighted,
                             PairwiseErrorAccumulator* acc);

/// One-shot convenience over a single document.
double PairwiseErrorRate(const std::vector<double>& pred,
                         const std::vector<double>& ctr, bool weighted);

/// System-wide CTR quantile bucketizer: bucketNo() returns 0..1000 by the
/// CTR's rank among all observed CTRs, so score = bucketNo/100 in [0, 10].
class CtrBucketizer {
 public:
  /// `all_ctrs` = every CTR observed in the system (any order).
  explicit CtrBucketizer(std::vector<double> all_ctrs);

  /// Bucket number in [0, 1000].
  int BucketNo(double ctr) const;

  /// Judgment score in [0, 10].
  double Score(double ctr) const { return BucketNo(ctr) / 100.0; }

 private:
  std::vector<double> sorted_;
};

/// NDCG@k for one document: `pred` orders the items (higher first), gains
/// come from `ctr` via the bucketizer. Returns 1.0 for empty input.
/// Tied predictions are broken deterministically by original index.
double NdcgAtK(const std::vector<double>& pred, const std::vector<double>& ctr,
               const CtrBucketizer& buckets, size_t k);

/// A two-sided bootstrap confidence interval.
struct BootstrapCi {
  double mean = 0.0;
  double lo = 0.0;   ///< Lower percentile bound.
  double hi = 0.0;   ///< Upper percentile bound.
};

/// Percentile-bootstrap CI of a ratio-of-sums statistic over per-group
/// (error_mass, total_mass) contributions — the weighted error rate is
/// exactly this shape with one contribution per window. `groups` holds
/// (numerator, denominator) pairs; groups are resampled with replacement
/// `resamples` times. Each replicate draws from its own seeded RNG, so
/// the result is deterministic in `seed` and bit-identical for any
/// `num_threads` (0 = all hardware threads).
BootstrapCi BootstrapRatioCi(
    const std::vector<std::pair<double, double>>& groups, int resamples,
    double confidence, uint64_t seed, unsigned num_threads = 1);

}  // namespace ckr

#endif  // CKR_EVAL_METRICS_H_
