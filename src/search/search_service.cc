#include "search/search_service.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace ckr {

QueryEvaluator ChooseEvaluator(size_t num_docs, bool has_block_index) {
  return has_block_index && num_docs >= kEvaluatorCrossoverDocs
             ? QueryEvaluator::kMaxScore
             : QueryEvaluator::kExhaustive;
}

SearchService::SearchService(const InvertedIndex& index, const QueryLog& log,
                             const TermDictionary& term_dict)
    : index_(index),
      log_(log),
      term_dict_(term_dict),
      evaluator_(ChooseEvaluator(index.NumDocs(), index.has_block_index())) {}

std::vector<std::string> SearchService::Snippets(std::string_view concept_phrase,
                                                 size_t k) const {
  // Phrase-query semantics: concepts with little web presence return few
  // results and therefore few snippets — exactly the sparsity that keeps
  // weak concepts' mined keyword mass low (Section IV-C).
  std::vector<SearchResult> hits = index_.PhraseSearch(concept_phrase, k);
  std::vector<std::string> snippets;
  snippets.reserve(hits.size());
  for (const SearchResult& h : hits) {
    std::string s = index_.Snippet(h.doc, concept_phrase);
    if (!s.empty()) snippets.push_back(std::move(s));
  }
  return snippets;
}

uint64_t SearchService::PhraseResultCount(std::string_view concept_phrase) const {
  return index_.PhraseResultCount(concept_phrase);
}

uint64_t SearchService::RegularResultCount(std::string_view concept_phrase) const {
  // Count-only: the index marks the posting union in a doc bitmap instead
  // of scoring, sorting and materializing every matching document.
  return index_.RegularResultCount(concept_phrase);
}

std::vector<std::string> SearchService::PrismaFeedbackTerms(
    std::string_view concept_phrase, size_t max_terms, size_t feedback_docs) const {
  // Pseudo-relevance feedback [19][20]: weight terms of the top documents
  // by tf * idf, discounted by document rank.
  // Prisma refines *regular* queries, so the feedback pool is the
  // disjunctive top-50 - on loosely-matching queries it mixes senses,
  // which is why the paper finds its keywords noisier than phrase-query
  // snippets.
  std::vector<SearchResult> hits =
      index_.Search(concept_phrase, feedback_docs, Bm25Params{}, evaluator_);

  std::vector<std::string> concept_terms = TokenizeToStrings(concept_phrase);
  std::unordered_set<std::string> exclude(concept_terms.begin(),
                                          concept_terms.end());

  std::unordered_map<std::string, double> scores;
  for (size_t rank = 0; rank < hits.size(); ++rank) {
    const std::string& text = index_.DocText(hits[rank].doc);
    std::unordered_map<std::string, uint32_t> tf;
    for (std::string& tok : TokenizeToStrings(text)) {
      if (IsStopWord(tok) || exclude.count(tok) > 0) continue;
      ++tf[tok];
    }
    double rank_discount = 1.0 / std::log(2.0 + static_cast<double>(rank));
    for (const auto& [term, count] : tf) {
      scores[term] += static_cast<double>(count) * term_dict_.Idf(term) *
                      rank_discount;
    }
  }
  std::vector<std::pair<std::string, double>> ordered(scores.begin(),
                                                      scores.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  std::vector<std::string> out;
  for (const auto& [term, score] : ordered) {
    if (out.size() >= max_terms) break;
    out.push_back(term);
  }
  return out;
}

std::vector<Suggestion> SearchService::RelatedSuggestions(
    std::string_view concept_phrase, size_t max_suggestions) const {
  std::vector<std::string> terms = TokenizeToStrings(concept_phrase);
  std::unordered_set<uint32_t> query_ids;
  for (const std::string& t : terms) {
    if (IsStopWord(t)) continue;
    for (uint32_t qid : log_.QueriesWithTerm(t)) query_ids.insert(qid);
  }
  std::string norm = NormalizePhrase(concept_phrase);
  std::vector<Suggestion> out;
  out.reserve(query_ids.size());
  for (uint32_t qid : query_ids) {
    const QueryEntry& q = log_.entries()[qid];
    if (q.text == norm) continue;  // The query itself is not a suggestion.
    out.push_back({q.text, q.freq});
  }
  std::sort(out.begin(), out.end(), [](const Suggestion& a, const Suggestion& b) {
    if (a.freq != b.freq) return a.freq > b.freq;
    return a.query < b.query;
  });
  if (out.size() > max_suggestions) out.resize(max_suggestions);
  return out;
}

}  // namespace ckr
