// Search-services facade — the substitute for the Yahoo! Developer Network
// APIs the paper mines for relevant keywords (Section IV-B.1):
//  (a) search engine result snippets (top-100 results of a phrase query),
//  (b) Prisma query-refinement feedback terms (pseudo-relevance feedback
//      over the top-50 documents, capped at 20 feedback terms — the
//      limitation the paper reports), and
//  (c) related query suggestions (up to 300, with query frequencies).
#ifndef CKR_SEARCH_SEARCH_SERVICE_H_
#define CKR_SEARCH_SEARCH_SERVICE_H_

#include <string>
#include <string_view>
#include <vector>

#include "corpus/term_dictionary.h"
#include "index/inverted_index.h"
#include "querylog/query_log.h"

namespace ckr {

/// A related-query suggestion with its submission frequency.
struct Suggestion {
  std::string query;
  uint64_t freq = 0;
};

/// Corpus size at which the pruned evaluators start beating the
/// exhaustive scorer wall-clock: below it posting lists are too short
/// for skipping to pay for its bookkeeping (BENCH_offline.json
/// scale_legs — exhaustive wins at 6k docs, MaxScore wins by ~7.6x at
/// 1M; the crossover sits near 100k).
inline constexpr size_t kEvaluatorCrossoverDocs = 100000;

/// Evaluator policy for a corpus of `num_docs` documents: MaxScore once
/// the corpus crosses kEvaluatorCrossoverDocs *and* a block index exists
/// to run it on; the exhaustive scorer otherwise. Every evaluator
/// returns bit-identical results (index/top_k.h), so this is purely a
/// latency policy. SearchService and the serving snapshot loader both
/// apply it; set_evaluator overrides.
QueryEvaluator ChooseEvaluator(size_t num_docs, bool has_block_index);

/// Read-only facade over the index, the query log and the term dictionary.
/// All referenced objects must outlive the service.
class SearchService {
 public:
  SearchService(const InvertedIndex& index, const QueryLog& log,
                const TermDictionary& term_dict);

  /// Result snippets for the concept submitted as a phrase query; falls
  /// back to disjunctive retrieval when phrase matches are scarce.
  std::vector<std::string> Snippets(std::string_view concept_phrase,
                                    size_t k = 100) const;

  /// Number of results of the phrase query (feature searchengine_phrase).
  uint64_t PhraseResultCount(std::string_view concept_phrase) const;

  /// Number of results of the regular (disjunctive) query — the feature
  /// variation the paper tried and discarded during feature selection.
  uint64_t RegularResultCount(std::string_view concept_phrase) const;

  /// Prisma feedback terms: pseudo-relevance feedback over the top
  /// `feedback_docs` results, returning at most `max_terms` terms.
  std::vector<std::string> PrismaFeedbackTerms(std::string_view concept_phrase,
                                               size_t max_terms = 20,
                                               size_t feedback_docs = 50) const;

  /// Related query suggestions: queries sharing a non-stop-word term with
  /// the concept, ranked by frequency.
  std::vector<Suggestion> RelatedSuggestions(std::string_view concept_phrase,
                                             size_t max_suggestions = 300) const;

  const InvertedIndex& index() const { return index_; }
  const TermDictionary& term_dictionary() const { return term_dict_; }

  /// Top-k algorithm used for the service's disjunctive retrieval (the
  /// Prisma feedback pool). Every evaluator returns identical results
  /// (index/top_k.h); the pruned ones skip postings that cannot reach the
  /// top-k. Default: auto-selected from the corpus size at construction
  /// (ChooseEvaluator) — exhaustive at paper scale, MaxScore past the
  /// ~100k-doc crossover.
  QueryEvaluator evaluator() const { return evaluator_; }
  void set_evaluator(QueryEvaluator evaluator) { evaluator_ = evaluator; }

 private:
  const InvertedIndex& index_;
  const QueryLog& log_;
  const TermDictionary& term_dict_;
  QueryEvaluator evaluator_;
};

}  // namespace ckr

#endif  // CKR_SEARCH_SEARCH_SERVICE_H_
