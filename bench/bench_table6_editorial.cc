// Reproduces Table VI: the editorial study (Section V-B).
//
// Paper setup: 1200 documents (800 Yahoo! Answers snippets + 400 full
// News stories). For each document the top-3 (News) / top-2 (Answers)
// entities are selected by (a) the concept-vector score and (b) the
// learned ranking algorithm, and expert judges rate each selected entity
// on 3-level interestingness and relevance scales.
//
// Paper headline numbers (share of judgments):
//                      Concept Vector        Ranking Algorithm
//                      News      Answers     News      Answers
//  Very Interesting    32.6%     35.9%       45.4%     41.6%
//  Not  Interesting    26.4%     28.5%       15.1%     18.1%
//  Very Relevant       53.0%     50.3%       66.3%     61.3%
//  Not  Relevant       17.7%     20.4%        7.4%     10.6%
//
// Overall: non-interesting + non-relevant down ~45% (23.3% -> 12.8%);
// Very/Somewhat relevant ratio in News up from 1.82 to 2.52.
#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "bench_common.h"
#include "eval/editorial.h"

namespace {

using namespace ckr;

// Cached per-concept static features for model scoring.
struct ConceptFeatureCache {
  const Pipeline* pipeline = nullptr;
  std::unordered_map<std::string, InterestingnessVector> ivec;
  RelevanceScorer scorer;

  void Ensure(const std::string& key, EntityType type) {
    if (ivec.count(key) > 0) return;
    ivec[key] = pipeline->interestingness().Extract(key, type);
    scorer.AddConcept(key, pipeline->relevance_miner().Mine(
                               key, RelevanceResource::kSnippets, 100));
  }
};

// Top-k keys of a document under one of the two rankers.
std::vector<std::string> TopK(const Pipeline& p, const Document& doc,
                              size_t k, const RankSvmModel* model,
                              ConceptFeatureCache* cache) {
  std::vector<Detection> dets = p.detector().Detect(doc.text);
  std::vector<std::string> keys;
  std::vector<EntityType> types;
  std::unordered_set<std::string> seen;
  for (const Detection& d : dets) {
    if (d.type == EntityType::kPattern) continue;
    if (!seen.insert(d.key).second) continue;
    keys.push_back(d.key);
    types.push_back(d.type);
  }
  std::vector<double> scores;
  if (model == nullptr) {
    scores = p.concept_vectors().ScoreCandidates(doc.text, keys);
  } else {
    auto stemmed = RelevanceScorer::StemContext(doc.text);
    ModelSpec spec;
    spec.include_relevance = true;
    for (size_t i = 0; i < keys.size(); ++i) {
      cache->Ensure(keys[i], types[i]);
      WindowInstance inst;
      inst.interestingness = cache->ivec[keys[i]];
      inst.relevance[0] = cache->scorer.Score(keys[i], stemmed);
      scores.push_back(model->Score(ExperimentRunner::Features(inst, spec)) +
                       1e-9 * inst.relevance[0]);
    }
  }
  std::vector<size_t> order(keys.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return keys[a] < keys[b];
  });
  std::vector<std::string> top;
  for (size_t i = 0; i < order.size() && top.size() < k; ++i) {
    top.push_back(keys[order[i]]);
  }
  return top;
}

void PrintDistribution(const char* scale, const char* row_name, double news,
                       double answers) {
  std::printf("  %-12s %-22s %5.1f%%   %5.1f%%\n", scale, row_name,
              100.0 * news, 100.0 * answers);
}

}  // namespace

int main() {
  ckr_bench::Lab lab = ckr_bench::BuildLab();
  const Pipeline& p = *lab.pipeline;

  // Train the deployed combined model on the click dataset.
  ExperimentRunner runner(lab.dataset);
  ModelSpec spec;
  spec.include_relevance = true;
  spec.tie_break_relevance = true;
  auto model_or = runner.TrainFullModel(spec);
  if (!model_or.ok()) {
    std::fprintf(stderr, "model: %s\n", model_or.status().ToString().c_str());
    return 1;
  }

  // Test corpus: 400 news stories + 800 answers snippets (paper sizes).
  // News documents come from beyond the click-training range.
  DocGenerator gen(p.world());
  std::vector<Document> news, answers;
  for (DocId i = 0; i < 400; ++i) {
    news.push_back(gen.Generate(Document::Kind::kNews, 700000 + i));
  }
  for (DocId i = 0; i < 800; ++i) {
    answers.push_back(gen.Generate(Document::Kind::kAnswers, 800000 + i));
  }

  ConceptFeatureCache cache;
  cache.pipeline = &p;
  EditorialPanel panel(p.world());

  struct Cell {
    JudgmentDistribution dist;
    size_t entities = 0;
  };
  auto judge = [&](const std::vector<Document>& docs, size_t k,
                   const RankSvmModel* model) {
    std::vector<JudgingTask> tasks;
    for (const Document& d : docs) {
      for (const std::string& key : TopK(p, d, k, model, &cache)) {
        tasks.push_back({&d, key});
      }
    }
    Cell cell;
    cell.dist = panel.JudgeAll(tasks);
    cell.entities = tasks.size();
    return cell;
  };

  // Top-3 in News, top-2 in Answers (paper Section V-B.2).
  Cell cv_news = judge(news, 3, nullptr);
  Cell cv_ans = judge(answers, 2, nullptr);
  Cell ml_news = judge(news, 3, &*model_or);
  Cell ml_ans = judge(answers, 2, &*model_or);

  std::printf("=== Table VI: editorial study (%zu news + %zu answers "
              "documents) ===\n",
              news.size(), answers.size());
  std::printf("judged entities: cv news=%zu answers=%zu | model news=%zu "
              "answers=%zu\n\n",
              cv_news.entities, cv_ans.entities, ml_news.entities,
              ml_ans.entities);

  auto block = [&](const char* title, const Cell& n, const Cell& a) {
    std::printf("%s                                 News    Answers\n", title);
    PrintDistribution("Interest", "Very Interesting",
                      n.dist.interest[0], a.dist.interest[0]);
    PrintDistribution("Interest", "Somewhat Interesting",
                      n.dist.interest[1], a.dist.interest[1]);
    PrintDistribution("Interest", "Not Interesting",
                      n.dist.interest[2], a.dist.interest[2]);
    PrintDistribution("Relevance", "Very Relevant",
                      n.dist.relevance[0], a.dist.relevance[0]);
    PrintDistribution("Relevance", "Somewhat Relevant",
                      n.dist.relevance[1], a.dist.relevance[1]);
    PrintDistribution("Relevance", "Not Relevant",
                      n.dist.relevance[2], a.dist.relevance[2]);
  };
  block("-- Concept Vector Score (paper: VI 32.6/35.9, VR 53.0/50.3) --",
        cv_news, cv_ans);
  std::printf("\n");
  block("-- Ranking Algorithm    (paper: VI 45.4/41.6, VR 66.3/61.3) --",
        ml_news, ml_ans);

  // Headline aggregates.
  double cv_bad = (cv_news.dist.interest[2] + cv_ans.dist.interest[2] +
                   cv_news.dist.relevance[2] + cv_ans.dist.relevance[2]) /
                  4.0;
  double ml_bad = (ml_news.dist.interest[2] + ml_ans.dist.interest[2] +
                   ml_news.dist.relevance[2] + ml_ans.dist.relevance[2]) /
                  4.0;
  std::printf("\nnon-interesting/non-relevant average: %.1f%% -> %.1f%% "
              "(-%.0f%%; paper: 23.3%% -> 12.8%%, -45%%)\n",
              100 * cv_bad, 100 * ml_bad, 100 * (cv_bad - ml_bad) / cv_bad);
  double cv_ratio = cv_news.dist.relevance[0] /
                    std::max(1e-9, cv_news.dist.relevance[1]);
  double ml_ratio = ml_news.dist.relevance[0] /
                    std::max(1e-9, ml_news.dist.relevance[1]);
  std::printf("Very/Somewhat relevant ratio in News: %.2f -> %.2f "
              "(paper: 1.82 -> 2.52)\n",
              cv_ratio, ml_ratio);
  return 0;
}
