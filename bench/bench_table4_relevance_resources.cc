// Reproduces Table IV (weighted error rates when ranking by the relevance
// score alone, per mining resource) and Figure 2 (NDCG@{1,2,3} of the
// relevance-score ranking).
//
// Paper rows:                      weighted error
//   Random                         50.01%
//   Concept Vector Score           30.22%
//   Best Interestingness Model     23.69%
//   Prisma                         32.32%
//   Query Suggestions              31.23%
//   Snippets                       24.86%
//
// No model is trained for the resource rows: concepts are ranked directly
// by their mined-keyword co-occurrence score (Section V-A.5). Snippets win
// because they provide much better keyword coverage than Prisma's 20-term
// cap or the suggestion pool.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace ckr;
  ckr_bench::Lab lab = ckr_bench::BuildLab();
  std::printf("=== Table IV: weighted error rates, relevance-score "
              "ranking ===\n");
  ckr_bench::PrintDatasetHeader(lab);
  ExperimentRunner runner(lab.dataset);

  ckr_bench::PrintRow("Random", 50.01, runner.EvaluateRandom());
  ckr_bench::PrintRow("Concept Vector Score", 30.22,
                      runner.EvaluateBaseline());
  ckr_bench::PrintRow("Best Interestingness Model", 23.69,
                      ckr_bench::BestOfKernels(runner, ModelSpec{}));

  EvalResult prisma =
      runner.EvaluateRelevanceOnly(RelevanceResource::kPrisma);
  EvalResult suggestions =
      runner.EvaluateRelevanceOnly(RelevanceResource::kQuerySuggestions);
  EvalResult snippets =
      runner.EvaluateRelevanceOnly(RelevanceResource::kSnippets);
  ckr_bench::PrintRow("Prisma", 32.32, prisma);
  ckr_bench::PrintRow("Query Suggestions", 31.23, suggestions);
  ckr_bench::PrintRow("Snippets", 24.86, snippets);

  std::printf("\n=== Figure 2: NDCG at top k = {1, 2, 3}, relevance-score "
              "ranking ===\n");
  ckr_bench::PrintNdcg("Prisma", prisma);
  ckr_bench::PrintNdcg("Query Suggestions", suggestions);
  ckr_bench::PrintNdcg("Snippets", snippets);
  return 0;
}
