// Offline-phase performance: the term-id flat index vs the string-keyed
// legacy index, plus the parallel per-concept mining fan-out.
//
// The paper's offline phase hammers the search backend — feature (4)
// searchengine_phrase issues one phrase-count query per concept, and
// relevant-keyword mining runs a ranked query per (concept, resource) and
// reads the top snippets (Sections IV-A/IV-B). This binary builds the
// paper-scale world, indexes the same web corpus into both layouts, and
// reports old-vs-new throughput for the three query kinds the offline
// phase issues, mining wall-clock scaling across worker counts, and the
// index memory footprint. The summary run verifies both layouts return
// bit-identical results before timing anything, and writes every number
// to BENCH_offline.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "clicks/click_log.h"
#include "core/pipeline.h"
#include "corpus/corpus_stream.h"
#include "detect/pattern_detector.h"
#include "features/offline_miner.h"
#include "index/inverted_index.h"
#include "index/legacy_index.h"
#include "obs/metrics.h"

namespace {

using namespace ckr;

struct OfflineLab {
  std::unique_ptr<Pipeline> pipeline;
  LegacyInvertedIndex legacy;
  InvertedIndex flat;
  std::vector<std::string> phrase_queries;   ///< Entity keys (multi-token).
  std::vector<std::string> regular_queries;  ///< Query-log texts.
  std::vector<ConceptKey> concepts;          ///< Mining workload.
};

OfflineLab* GetLab() {
  static OfflineLab* lab = [] {
    auto* l = new OfflineLab();
    auto pipeline_or = Pipeline::Build(PipelineConfig{});  // Paper scale.
    if (!pipeline_or.ok()) {
      std::fprintf(stderr, "pipeline: %s\n",
                   pipeline_or.status().ToString().c_str());
      std::exit(1);
    }
    l->pipeline = std::move(*pipeline_or);

    // Same web corpus, same Add order -> comparable indexes.
    for (const Document& doc : l->pipeline->web_corpus()) {
      l->legacy.Add(doc);
      l->flat.Add(doc);
    }
    l->legacy.Finalize();
    l->flat.Finalize();

    // Phrase workload: one count query per entity/concept key, exactly
    // what feature (4) issues during the offline fan-out.
    const World& world = l->pipeline->world();
    for (const Entity& e : world.entities()) {
      l->phrase_queries.push_back(e.key);
    }
    // Regular workload: the distinct query-log texts (ranked retrieval +
    // result counting, the Prisma / mining query mix).
    for (const QueryEntry& q : l->pipeline->query_log().entries()) {
      l->regular_queries.push_back(q.text);
    }
    // Mining workload: a representative slice of the concept universe
    // (every 4th entity) so the scaling runs finish in seconds.
    for (size_t i = 0; i < world.NumEntities(); i += 4) {
      const Entity& e = world.entity(static_cast<EntityId>(i));
      l->concepts.push_back({e.key, e.type});
    }
    return l;
  }();
  return lab;
}

double WallSeconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool SameResults(const std::vector<SearchResult>& a,
                 const std::vector<SearchResult>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].doc != b[i].doc || a[i].score != b[i].score) return false;
  }
  return true;
}

bool SameMined(const std::vector<MinedConcept>& a,
               const std::vector<MinedConcept>& b) {
  if (a.size() != b.size()) return false;
  for (size_t c = 0; c < a.size(); ++c) {
    for (size_t r = 0; r < kNumRelevanceResources; ++r) {
      const auto& ta = a[c].relevance[r];
      const auto& tb = b[c].relevance[r];
      if (ta.size() != tb.size()) return false;
      for (size_t t = 0; t < ta.size(); ++t) {
        if (ta[t].term != tb[t].term || ta[t].score != tb[t].score) {
          return false;
        }
      }
    }
  }
  return true;
}

// ---- google-benchmark loops (old vs new, per query kind) ----

void BM_SearchTop50Legacy(benchmark::State& state) {
  OfflineLab* lab = GetLab();
  size_t i = 0;
  for (auto _ : state) {
    auto r = lab->legacy.Search(lab->regular_queries[i], 50);
    benchmark::DoNotOptimize(r);
    i = (i + 1) % lab->regular_queries.size();
  }
}
BENCHMARK(BM_SearchTop50Legacy)->Unit(benchmark::kMicrosecond);

void BM_SearchTop50Flat(benchmark::State& state) {
  OfflineLab* lab = GetLab();
  size_t i = 0;
  for (auto _ : state) {
    auto r = lab->flat.Search(lab->regular_queries[i], 50);
    benchmark::DoNotOptimize(r);
    i = (i + 1) % lab->regular_queries.size();
  }
}
BENCHMARK(BM_SearchTop50Flat)->Unit(benchmark::kMicrosecond);

void BM_SearchTop50MaxScore(benchmark::State& state) {
  OfflineLab* lab = GetLab();
  size_t i = 0;
  for (auto _ : state) {
    auto r = lab->flat.Search(lab->regular_queries[i], 50, Bm25Params{},
                              QueryEvaluator::kMaxScore);
    benchmark::DoNotOptimize(r);
    i = (i + 1) % lab->regular_queries.size();
  }
}
BENCHMARK(BM_SearchTop50MaxScore)->Unit(benchmark::kMicrosecond);

void BM_SearchTop50BlockMaxWand(benchmark::State& state) {
  OfflineLab* lab = GetLab();
  size_t i = 0;
  for (auto _ : state) {
    auto r = lab->flat.Search(lab->regular_queries[i], 50, Bm25Params{},
                              QueryEvaluator::kBlockMaxWand);
    benchmark::DoNotOptimize(r);
    i = (i + 1) % lab->regular_queries.size();
  }
}
BENCHMARK(BM_SearchTop50BlockMaxWand)->Unit(benchmark::kMicrosecond);

void BM_PhraseCountLegacy(benchmark::State& state) {
  OfflineLab* lab = GetLab();
  size_t i = 0;
  for (auto _ : state) {
    auto n = lab->legacy.PhraseResultCount(lab->phrase_queries[i]);
    benchmark::DoNotOptimize(n);
    i = (i + 1) % lab->phrase_queries.size();
  }
}
BENCHMARK(BM_PhraseCountLegacy)->Unit(benchmark::kMicrosecond);

void BM_PhraseCountFlat(benchmark::State& state) {
  OfflineLab* lab = GetLab();
  size_t i = 0;
  for (auto _ : state) {
    auto n = lab->flat.PhraseResultCount(lab->phrase_queries[i]);
    benchmark::DoNotOptimize(n);
    i = (i + 1) % lab->phrase_queries.size();
  }
}
BENCHMARK(BM_PhraseCountFlat)->Unit(benchmark::kMicrosecond);

void BM_RegularCountLegacy(benchmark::State& state) {
  OfflineLab* lab = GetLab();
  size_t i = 0;
  for (auto _ : state) {
    auto n = lab->legacy.RegularResultCount(lab->regular_queries[i]);
    benchmark::DoNotOptimize(n);
    i = (i + 1) % lab->regular_queries.size();
  }
}
BENCHMARK(BM_RegularCountLegacy)->Unit(benchmark::kMicrosecond);

void BM_RegularCountFlat(benchmark::State& state) {
  OfflineLab* lab = GetLab();
  size_t i = 0;
  for (auto _ : state) {
    auto n = lab->flat.RegularResultCount(lab->regular_queries[i]);
    benchmark::DoNotOptimize(n);
    i = (i + 1) % lab->regular_queries.size();
  }
}
BENCHMARK(BM_RegularCountFlat)->Unit(benchmark::kMicrosecond);

// ---- summary run: equivalence check, throughputs, scaling, JSON ----

struct QpsPair {
  double legacy_seconds = 0.0;
  double flat_seconds = 0.0;
  size_t queries = 0;
  double LegacyQps() const {
    return legacy_seconds > 0
               ? static_cast<double>(queries) / legacy_seconds
               : 0.0;
  }
  double FlatQps() const {
    return flat_seconds > 0
               ? static_cast<double>(queries) / flat_seconds
               : 0.0;
  }
  double Speedup() const {
    return flat_seconds > 0 ? legacy_seconds / flat_seconds : 0.0;
  }
};

struct MiningPoint {
  unsigned workers = 0;
  double wall_seconds = 0.0;
};

// One top-50 evaluator pass over the regular workload: per-query latency
// quantiles plus the pruning counters the block index reports.
struct EvaluatorLeg {
  const char* name = "";
  double total_seconds = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  uint64_t postings_scored = 0;
  uint64_t blocks_decoded = 0;
  uint64_t blocks_skipped = 0;
};

EvaluatorLeg TimeEvaluator(OfflineLab* lab, const char* name,
                           QueryEvaluator evaluator) {
  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  obs::Counter* c_scored = reg.GetCounter("ckr.index.postings_scored");
  obs::Counter* c_decoded = reg.GetCounter("ckr.index.blocks_decoded");
  obs::Counter* c_skipped = reg.GetCounter("ckr.index.blocks_skipped");
  const uint64_t scored0 = c_scored->Value();
  const uint64_t decoded0 = c_decoded->Value();
  const uint64_t skipped0 = c_skipped->Value();

  constexpr int kRepeats = 3;
  std::vector<double> lat_us;
  lat_us.reserve(lab->regular_queries.size() * kRepeats);
  const auto t_all = std::chrono::steady_clock::now();
  for (int r = 0; r < kRepeats; ++r) {
    for (const std::string& q : lab->regular_queries) {
      const auto t0 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(lab->flat.Search(q, 50, Bm25Params{},
                                                evaluator));
      lat_us.push_back(WallSeconds(t0) * 1e6);
    }
  }
  EvaluatorLeg leg;
  leg.name = name;
  leg.total_seconds = WallSeconds(t_all);
  std::sort(lat_us.begin(), lat_us.end());
  if (!lat_us.empty()) {
    leg.p50_us = lat_us[lat_us.size() / 2];
    leg.p99_us = lat_us[lat_us.size() * 99 / 100];
  }
  leg.postings_scored = c_scored->Value() - scored0;
  leg.blocks_decoded = c_decoded->Value() - decoded0;
  leg.blocks_skipped = c_skipped->Value() - skipped0;
  return leg;
}

// ---- corpus-scale legs: streaming build, docid reorder, click log ----

struct ScaleLeg {
  size_t target_docs = 0;
  size_t docs = 0;
  size_t terms = 0;
  uint64_t postings = 0;
  double stream_build_seconds = 0.0;   ///< Generate + Add, both indexes.
  double finalize_seconds = 0.0;       ///< Add-order Finalize.
  double reorder_finalize_seconds = 0.0;  ///< Bisection Finalize.
  size_t posting_bytes_add_order = 0;
  size_t posting_bytes_bisection = 0;
  ClickLogStats clicks;
  double click_seconds = 0.0;
  bool bit_identical = true;
  size_t queries = 0;
  int repeats = 0;
  double evaluator_seconds[3] = {0.0, 0.0, 0.0};  // exhaustive, ms, bmw.
};

constexpr const char* kScaleEvaluatorNames[3] = {"exhaustive", "maxscore",
                                                 "block_max_wand"};

/// Serving depth for the timed scale legs (bit-identity is also checked at
/// top-50).
constexpr size_t kScaleTopK = 10;

/// One leg of the 100x sweep: stream-generate `target_docs` web documents
/// once into two out-of-core index builds (Add order vs bisection
/// reorder), compare compressed posting bytes, assert every evaluator on
/// the reordered index returns the add-order exhaustive results
/// bit-identically (external ids make the comparison layout-free), then
/// time the three evaluators over an entity-key query workload and stream
/// an ORCAS-shaped click log over the same corpus.
ScaleLeg RunScaleLeg(size_t target_docs) {
  ScaleLeg leg;
  leg.target_docs = target_docs;
  auto world_or = World::Create(ScaledWorldConfig(target_docs, 20090331));
  if (!world_or.ok()) {
    std::fprintf(stderr, "scale leg %zu: %s\n", target_docs,
                 world_or.status().ToString().c_str());
    std::exit(1);
  }
  const World& world = *world_or.value();
  CorpusStreamer streamer(world);

  IndexBuildOptions stream_opts;
  stream_opts.store_text = false;
  stream_opts.build_block_index = false;
  InvertedIndex add_order(stream_opts);
  IndexBuildOptions reorder_opts = stream_opts;
  reorder_opts.docid_order = DocidOrder::kBisection;
  InvertedIndex reordered(reorder_opts);

  auto t0 = std::chrono::steady_clock::now();
  Status s = streamer.Stream(Document::Kind::kWeb, target_docs,
                             CorpusStreamConfig{}, [&](Document&& doc) {
                               add_order.Add(doc);
                               reordered.Add(doc);
                             });
  if (!s.ok()) {
    std::fprintf(stderr, "scale leg %zu: %s\n", target_docs,
                 s.ToString().c_str());
    std::exit(1);
  }
  leg.stream_build_seconds = WallSeconds(t0);

  t0 = std::chrono::steady_clock::now();
  add_order.Finalize();
  leg.finalize_seconds = WallSeconds(t0);
  t0 = std::chrono::steady_clock::now();
  reordered.Finalize();
  leg.reorder_finalize_seconds = WallSeconds(t0);

  add_order.RebuildBlockIndex(BlockCodec::kVarintGB);
  reordered.RebuildBlockIndex(BlockCodec::kVarintGB);
  leg.docs = add_order.NumDocs();
  leg.terms = add_order.NumTerms();
  leg.postings = add_order.block_index().store().NumPostings();
  leg.posting_bytes_add_order =
      add_order.block_index().store().CompressedPostingBytes();
  leg.posting_bytes_bisection =
      reordered.block_index().store().CompressedPostingBytes();

  // Entity-key workload, ~250 queries regardless of scale.
  std::vector<std::string> queries;
  const size_t step = std::max<size_t>(1, world.NumEntities() / 250);
  for (size_t i = 0; i < world.NumEntities(); i += step) {
    queries.push_back(world.entity(static_cast<EntityId>(i)).key);
  }
  leg.queries = queries.size();

  // Bit-identity across layout and evaluator for every workload query, at
  // both the deep (top-50) and serving (top-10) depths.
  for (const std::string& q : queries) {
    for (size_t k : {size_t{50}, kScaleTopK}) {
      const auto oracle = add_order.Search(q, k);
      for (QueryEvaluator evaluator :
           {QueryEvaluator::kExhaustive, QueryEvaluator::kMaxScore,
            QueryEvaluator::kBlockMaxWand}) {
        leg.bit_identical =
            leg.bit_identical &&
            SameResults(oracle,
                        reordered.Search(q, k, Bm25Params{}, evaluator));
      }
    }
  }

  // Timed legs run at the serving depth: top-10 fills the heap early, so
  // the pruning thresholds bite — the crossover where MaxScore overtakes
  // the CSR exhaustive scan is exactly what these legs exist to record.
  leg.repeats = target_docs <= 10000 ? 10 : target_docs <= 200000 ? 3 : 1;
  const QueryEvaluator evaluators[3] = {QueryEvaluator::kExhaustive,
                                        QueryEvaluator::kMaxScore,
                                        QueryEvaluator::kBlockMaxWand};
  for (size_t e = 0; e < 3; ++e) {
    t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < leg.repeats; ++r) {
      for (const std::string& q : queries) {
        benchmark::DoNotOptimize(
            reordered.Search(q, kScaleTopK, Bm25Params{}, evaluators[e]));
      }
    }
    leg.evaluator_seconds[e] = WallSeconds(t0);
  }

  // ORCAS-shaped click log over the same corpus (6 pairs/doc default).
  ClickLogGenerator log(world, Document::Kind::kWeb, target_docs,
                        ClickLogConfig{});
  t0 = std::chrono::steady_clock::now();
  StatusOr<ClickLogStats> stats = CollectClickLogStats(log);
  leg.click_seconds = WallSeconds(t0);
  if (!stats.ok()) {
    std::fprintf(stderr, "scale leg %zu clicks: %s\n", target_docs,
                 stats.status().ToString().c_str());
    std::exit(1);
  }
  leg.clicks = *stats;
  return leg;
}

std::vector<ScaleLeg> RunScaleLegs() {
  std::vector<size_t> targets = {6000, 100000};
  if (std::getenv("CKR_BENCH_MILLION") != nullptr) {
    targets.push_back(1000000);
  }
  std::vector<ScaleLeg> legs;
  for (size_t t : targets) {
    std::printf("scale leg: %zu docs...\n", t);
    legs.push_back(RunScaleLeg(t));
  }
  return legs;
}

// ---- signature-prefilter legs: rejection rate + wall-clock delta ----

struct SignatureLeg {
  size_t target_docs = 0;
  size_t docs = 0;
  size_t queries = 0;
  int repeats = 0;
  bool bit_identical = true;        ///< Phrase counts + hits, on vs off.
  double gated_seconds = 0.0;       ///< Phrase-count pass, prefilter on.
  double ungated_seconds = 0.0;     ///< Same pass, prefilter off.
  uint64_t docs_tested = 0;         ///< ckr.sig.docs_tested delta.
  uint64_t docs_rejected = 0;       ///< ckr.sig.docs_rejected delta.
  bool patterns_identical = true;   ///< Pattern spans, on vs off.
  double pattern_gated_seconds = 0.0;
  double pattern_ungated_seconds = 0.0;
  uint64_t windows_tested = 0;      ///< ckr.sig.windows_tested delta.
  uint64_t windows_rejected = 0;    ///< ckr.sig.windows_rejected delta.
  size_t signature_bytes = 0;       ///< SignatureMatrix pool footprint.
  double DocRejectionRate() const {
    return docs_tested > 0 ? static_cast<double>(docs_rejected) /
                                 static_cast<double>(docs_tested)
                           : 0.0;
  }
  double WindowRejectionRate() const {
    return windows_tested > 0 ? static_cast<double>(windows_rejected) /
                                    static_cast<double>(windows_tested)
                              : 0.0;
  }
  double Speedup() const {
    return gated_seconds > 0 ? ungated_seconds / gated_seconds : 0.0;
  }
};

/// One signature leg: stream-generate `target_docs` web documents into
/// twin indexes differing only in build_signature_filter, prove every
/// phrase count and phrase hit bit-identical across the pair (the
/// zero-false-negative contract, also property-tested at small scale),
/// then time the phrase-count workload on both and read the rejection
/// counters around the gated pass. The pattern-window gate gets the same
/// treatment inline during streaming: each document's text is scanned
/// with the window prefilter on and off, timed separately, spans
/// compared. Counter fields are zero under CKR_OBS_DISABLED; the
/// wall-clock and bit-identity columns do not depend on obs.
SignatureLeg RunSignatureLeg(size_t target_docs) {
  SignatureLeg leg;
  leg.target_docs = target_docs;
  auto world_or = World::Create(ScaledWorldConfig(target_docs, 20090331));
  if (!world_or.ok()) {
    std::fprintf(stderr, "signature leg %zu: %s\n", target_docs,
                 world_or.status().ToString().c_str());
    std::exit(1);
  }
  const World& world = *world_or.value();
  CorpusStreamer streamer(world);

  IndexBuildOptions gated_opts;
  gated_opts.store_text = false;
  gated_opts.build_block_index = false;
  IndexBuildOptions ungated_opts = gated_opts;
  ungated_opts.build_signature_filter = false;
  InvertedIndex gated(gated_opts);
  InvertedIndex ungated(ungated_opts);

  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  obs::Counter* c_wtested = reg.GetCounter("ckr.sig.windows_tested");
  obs::Counter* c_wrejected = reg.GetCounter("ckr.sig.windows_rejected");
  const uint64_t wtested0 = c_wtested->Value();
  const uint64_t wrejected0 = c_wrejected->Value();

  std::vector<PatternMatch> pat_on, pat_off;
  Status s = streamer.Stream(
      Document::Kind::kWeb, target_docs, CorpusStreamConfig{},
      [&](Document&& doc) {
        auto t0 = std::chrono::steady_clock::now();
        DetectPatternsInto(doc.text, &pat_on, /*signature_prefilter=*/true);
        leg.pattern_gated_seconds += WallSeconds(t0);
        t0 = std::chrono::steady_clock::now();
        DetectPatternsInto(doc.text, &pat_off, /*signature_prefilter=*/false);
        leg.pattern_ungated_seconds += WallSeconds(t0);
        if (pat_on.size() != pat_off.size()) {
          leg.patterns_identical = false;
        } else {
          for (size_t i = 0; i < pat_on.size(); ++i) {
            if (pat_on[i].begin != pat_off[i].begin ||
                pat_on[i].end != pat_off[i].end) {
              leg.patterns_identical = false;
            }
          }
        }
        gated.Add(doc);
        ungated.Add(doc);
      });
  if (!s.ok()) {
    std::fprintf(stderr, "signature leg %zu: %s\n", target_docs,
                 s.ToString().c_str());
    std::exit(1);
  }
  leg.windows_tested = c_wtested->Value() - wtested0;
  leg.windows_rejected = c_wrejected->Value() - wrejected0;

  gated.Finalize();
  ungated.Finalize();
  leg.docs = gated.NumDocs();
  leg.signature_bytes = gated.signatures().MemoryBytes();

  // Entity-key phrase workload (the feature-(4) query shape), ~250
  // queries regardless of scale.
  std::vector<std::string> queries;
  const size_t step = std::max<size_t>(1, world.NumEntities() / 250);
  for (size_t i = 0; i < world.NumEntities(); i += step) {
    queries.push_back(world.entity(static_cast<EntityId>(i)).key);
  }
  leg.queries = queries.size();

  // Exact-safety before timing: the rejection-rate claim is void if the
  // prefilter ever changes a count or a hit list.
  for (const std::string& q : queries) {
    leg.bit_identical = leg.bit_identical && gated.PhraseResultCount(q) ==
                                                 ungated.PhraseResultCount(q);
    leg.bit_identical =
        leg.bit_identical &&
        SameResults(gated.PhraseSearch(q, 10), ungated.PhraseSearch(q, 10));
  }

  obs::Counter* c_tested = reg.GetCounter("ckr.sig.docs_tested");
  obs::Counter* c_rejected = reg.GetCounter("ckr.sig.docs_rejected");
  leg.repeats = target_docs <= 10000 ? 10 : 3;
  const uint64_t tested0 = c_tested->Value();
  const uint64_t rejected0 = c_rejected->Value();
  auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < leg.repeats; ++r) {
    for (const std::string& q : queries) {
      benchmark::DoNotOptimize(gated.PhraseResultCount(q));
    }
  }
  leg.gated_seconds = WallSeconds(t0);
  leg.docs_tested = c_tested->Value() - tested0;
  leg.docs_rejected = c_rejected->Value() - rejected0;
  t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < leg.repeats; ++r) {
    for (const std::string& q : queries) {
      benchmark::DoNotOptimize(ungated.PhraseResultCount(q));
    }
  }
  leg.ungated_seconds = WallSeconds(t0);
  return leg;
}

std::vector<SignatureLeg> RunSignatureLegs(bool smoke_only) {
  std::vector<size_t> targets = {6000};
  if (!smoke_only) targets.push_back(100000);
  std::vector<SignatureLeg> legs;
  for (size_t t : targets) {
    std::printf("signature leg: %zu docs...\n", t);
    legs.push_back(RunSignatureLeg(t));
  }
  return legs;
}

void PrintSignatureLegs(const std::vector<SignatureLeg>& legs) {
  std::printf("signature prefilter (phrase-count workload, counts and hits "
              "bit-identical on/off):\n");
  for (const SignatureLeg& leg : legs) {
    std::printf("  %8zu docs  bit-identical: %s  patterns identical: %s\n",
                leg.docs, leg.bit_identical ? "yes" : "NO",
                leg.patterns_identical ? "yes" : "NO");
    std::printf("    phrase pass (%zu queries x%d): gated %.3fs, ungated "
                "%.3fs (%.2fx); docs rejected %llu/%llu (%.1f%%)\n",
                leg.queries, leg.repeats, leg.gated_seconds,
                leg.ungated_seconds, leg.Speedup(),
                static_cast<unsigned long long>(leg.docs_rejected),
                static_cast<unsigned long long>(leg.docs_tested),
                leg.DocRejectionRate() * 100.0);
    std::printf("    pattern scan: gated %.3fs, ungated %.3fs; windows "
                "rejected %llu/%llu (%.1f%%); signatures %.2f MB\n",
                leg.pattern_gated_seconds, leg.pattern_ungated_seconds,
                static_cast<unsigned long long>(leg.windows_rejected),
                static_cast<unsigned long long>(leg.windows_tested),
                leg.WindowRejectionRate() * 100.0,
                static_cast<double>(leg.signature_bytes) / 1e6);
  }
}

void RunSummary() {
  OfflineLab* lab = GetLab();

  // Equivalence before timing: the speedup claim is void if the layouts
  // disagree on any workload query.
  bool identical = true;
  for (const std::string& q : lab->regular_queries) {
    identical = identical && SameResults(lab->flat.Search(q, 50),
                                         lab->legacy.Search(q, 50));
    identical = identical && lab->flat.RegularResultCount(q) ==
                                 lab->legacy.RegularResultCount(q);
  }
  for (const std::string& q : lab->phrase_queries) {
    identical = identical && lab->flat.PhraseResultCount(q) ==
                                 lab->legacy.PhraseResultCount(q);
    identical = identical && SameResults(lab->flat.PhraseSearch(q, 100),
                                         lab->legacy.PhraseSearch(q, 100));
  }

  // ckr_obs probes: the flat index and the offline miner report into the
  // global registry, so deltas across the timed sections below give the
  // per-stage breakdown (all zeros when built with CKR_OBS_DISABLED).
  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  obs::Counter* c_searches = reg.GetCounter("ckr.index.searches");
  obs::Counter* c_docs = reg.GetCounter("ckr.index.search_docs_touched");
  obs::Counter* c_phrase = reg.GetCounter("ckr.index.phrase_searches");
  const uint64_t searches0 = c_searches->Value();
  const uint64_t docs_touched0 = c_docs->Value();
  const uint64_t phrase0 = c_phrase->Value();

  // Timed passes over the full workloads (several repeats so the fast
  // paths get out of the noise).
  constexpr int kRepeats = 3;
  QpsPair search, phrase_count, regular_count;
  search.queries = lab->regular_queries.size() * kRepeats;
  regular_count.queries = lab->regular_queries.size() * kRepeats;
  phrase_count.queries = lab->phrase_queries.size() * kRepeats;

  auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < kRepeats; ++r) {
    for (const std::string& q : lab->regular_queries) {
      benchmark::DoNotOptimize(lab->legacy.Search(q, 50));
    }
  }
  search.legacy_seconds = WallSeconds(t0);
  t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < kRepeats; ++r) {
    for (const std::string& q : lab->regular_queries) {
      benchmark::DoNotOptimize(lab->flat.Search(q, 50));
    }
  }
  search.flat_seconds = WallSeconds(t0);

  t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < kRepeats; ++r) {
    for (const std::string& q : lab->phrase_queries) {
      benchmark::DoNotOptimize(lab->legacy.PhraseResultCount(q));
    }
  }
  phrase_count.legacy_seconds = WallSeconds(t0);
  t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < kRepeats; ++r) {
    for (const std::string& q : lab->phrase_queries) {
      benchmark::DoNotOptimize(lab->flat.PhraseResultCount(q));
    }
  }
  phrase_count.flat_seconds = WallSeconds(t0);

  t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < kRepeats; ++r) {
    for (const std::string& q : lab->regular_queries) {
      benchmark::DoNotOptimize(lab->legacy.RegularResultCount(q));
    }
  }
  regular_count.legacy_seconds = WallSeconds(t0);
  t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < kRepeats; ++r) {
    for (const std::string& q : lab->regular_queries) {
      benchmark::DoNotOptimize(lab->flat.RegularResultCount(q));
    }
  }
  regular_count.flat_seconds = WallSeconds(t0);

  const uint64_t obs_searches = c_searches->Value() - searches0;
  const uint64_t obs_docs_touched = c_docs->Value() - docs_touched0;
  const uint64_t obs_phrase = c_phrase->Value() - phrase0;

  // ---- block-index legs: pruned top-50 vs the exhaustive oracle ----

  // Equivalence first (the latency table is void if any evaluator strays),
  // for both codecs: VarintGB is the Finalize() default; Simple8b gets the
  // same sweep after a rebuild, which also yields its compressed size.
  bool pruned_identical = true;
  for (const std::string& q : lab->regular_queries) {
    const auto oracle = lab->flat.Search(q, 50);
    pruned_identical =
        pruned_identical &&
        SameResults(oracle, lab->flat.Search(q, 50, Bm25Params{},
                                             QueryEvaluator::kMaxScore)) &&
        SameResults(oracle, lab->flat.Search(q, 50, Bm25Params{},
                                             QueryEvaluator::kBlockMaxWand));
  }
  const uint64_t block_postings = lab->flat.block_index().store().NumPostings();
  // The uncompressed baseline: the flat index's CSR doc + tf columns at
  // 4 bytes each.
  const uint64_t csr_posting_bytes = block_postings * 8;
  const size_t varint_bytes =
      lab->flat.block_index().store().CompressedPostingBytes();
  lab->flat.RebuildBlockIndex(BlockCodec::kSimple8b);
  const size_t simple8b_bytes =
      lab->flat.block_index().store().CompressedPostingBytes();
  for (const std::string& q : lab->regular_queries) {
    const auto oracle = lab->flat.Search(q, 50);
    pruned_identical =
        pruned_identical &&
        SameResults(oracle, lab->flat.Search(q, 50, Bm25Params{},
                                             QueryEvaluator::kMaxScore)) &&
        SameResults(oracle, lab->flat.Search(q, 50, Bm25Params{},
                                             QueryEvaluator::kBlockMaxWand));
  }
  lab->flat.RebuildBlockIndex(BlockCodec::kVarintGB);

  const EvaluatorLeg legs[] = {
      TimeEvaluator(lab, "exhaustive", QueryEvaluator::kExhaustive),
      TimeEvaluator(lab, "maxscore", QueryEvaluator::kMaxScore),
      TimeEvaluator(lab, "block_max_wand", QueryEvaluator::kBlockMaxWand),
  };
  auto scored_reduction = [&legs](const EvaluatorLeg& leg) {
    return legs[0].postings_scored > 0
               ? 1.0 - static_cast<double>(leg.postings_scored) /
                           static_cast<double>(legs[0].postings_scored)
               : 0.0;
  };

  // Mining fan-out scaling: same concepts, 1/2/4/8 workers; outputs must
  // be identical for every worker count.
  obs::Histogram* mine_hist =
      reg.GetHistogram("ckr.offline.stage.mine_all_seconds");
  const uint64_t mine_calls0 = mine_hist->Count();
  const double mine_seconds0 = mine_hist->Sum();
  OfflineConceptMiner miner(lab->pipeline->interestingness(),
                            lab->pipeline->relevance_miner());
  constexpr size_t kRelevanceTerms = 50;
  std::vector<MiningPoint> mining;
  std::vector<MinedConcept> mined_serial;
  bool mining_identical = true;
  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    OfflineMiningStats stats;
    auto mined = miner.MineAll(lab->concepts, kRelevanceTerms, workers,
                               &stats);
    if (workers == 1) {
      mined_serial = std::move(mined);
    } else {
      mining_identical = mining_identical && SameMined(mined_serial, mined);
    }
    mining.push_back({workers, stats.wall_seconds});
  }

  const uint64_t obs_mine_calls = mine_hist->Count() - mine_calls0;
  const double obs_mine_seconds = mine_hist->Sum() - mine_seconds0;

  // 100x corpus-scale legs (1M docs only under CKR_BENCH_MILLION).
  const std::vector<ScaleLeg> scale_legs = RunScaleLegs();

  // Signature-prefilter legs at the same two scales.
  const std::vector<SignatureLeg> signature_legs =
      RunSignatureLegs(/*smoke_only=*/false);

  size_t legacy_bytes = lab->legacy.MemoryBytes();
  size_t flat_bytes = lab->flat.MemoryBytes();

  std::printf("=== offline phase: term-id flat index vs legacy ===\n");
  std::printf("corpus: %zu docs, %zu terms; workloads: %zu regular, "
              "%zu phrase queries, %zu mining concepts\n",
              lab->flat.NumDocs(), lab->flat.NumTerms(),
              lab->regular_queries.size(), lab->phrase_queries.size(),
              lab->concepts.size());
  std::printf("results bit-identical across layouts: %s\n",
              identical ? "yes" : "NO");
  std::printf("workload              legacy qps      flat qps   speedup\n");
  std::printf("search top-50      %11.0f  %12.0f  %7.2fx\n",
              search.LegacyQps(), search.FlatQps(), search.Speedup());
  std::printf("phrase count       %11.0f  %12.0f  %7.2fx\n",
              phrase_count.LegacyQps(), phrase_count.FlatQps(),
              phrase_count.Speedup());
  std::printf("regular count      %11.0f  %12.0f  %7.2fx\n",
              regular_count.LegacyQps(), regular_count.FlatQps(),
              regular_count.Speedup());
  std::printf("index memory: legacy %.2f MB, flat %.2f MB (%.2fx smaller, "
              "position pool %.2f MB)\n",
              static_cast<double>(legacy_bytes) / 1e6,
              static_cast<double>(flat_bytes) / 1e6,
              flat_bytes > 0
                  ? static_cast<double>(legacy_bytes) /
                        static_cast<double>(flat_bytes)
                  : 0.0,
              static_cast<double>(lab->flat.PositionPoolBytes()) / 1e6);
  std::printf("block index: pruned top-50 bit-identical to exhaustive "
              "(both codecs): %s\n",
              pruned_identical ? "yes" : "NO");
  std::printf("posting bytes: csr %.2f MB, varint-gb %.2f MB (%.2fx), "
              "simple8b %.2f MB (%.2fx)\n",
              static_cast<double>(csr_posting_bytes) / 1e6,
              static_cast<double>(varint_bytes) / 1e6,
              varint_bytes > 0 ? static_cast<double>(csr_posting_bytes) /
                                     static_cast<double>(varint_bytes)
                               : 0.0,
              static_cast<double>(simple8b_bytes) / 1e6,
              simple8b_bytes > 0 ? static_cast<double>(csr_posting_bytes) /
                                       static_cast<double>(simple8b_bytes)
                                 : 0.0);
  std::printf("evaluator          p50 us    p99 us   postings scored  "
              "reduction   blocks dec/skip\n");
  for (const EvaluatorLeg& leg : legs) {
    std::printf("%-15s  %8.1f  %8.1f  %16llu  %8.1f%%  %8llu/%llu\n",
                leg.name, leg.p50_us, leg.p99_us,
                static_cast<unsigned long long>(leg.postings_scored),
                scored_reduction(leg) * 100.0,
                static_cast<unsigned long long>(leg.blocks_decoded),
                static_cast<unsigned long long>(leg.blocks_skipped));
  }
  std::printf("corpus-scale legs (streamed build, no stored text; bisection "
              "vs add-order postings; top-%zu evaluator wall-clock):\n",
              kScaleTopK);
  for (const ScaleLeg& leg : scale_legs) {
    std::printf("  %8zu docs  %8zu terms  %10llu postings  "
                "bit-identical: %s\n",
                leg.docs, leg.terms,
                static_cast<unsigned long long>(leg.postings),
                leg.bit_identical ? "yes" : "NO");
    std::printf("    build %.1fs, finalize %.1fs, reorder finalize %.1fs; "
                "postings %.2f MB -> %.2f MB (%.2f%% smaller)\n",
                leg.stream_build_seconds, leg.finalize_seconds,
                leg.reorder_finalize_seconds,
                static_cast<double>(leg.posting_bytes_add_order) / 1e6,
                static_cast<double>(leg.posting_bytes_bisection) / 1e6,
                leg.posting_bytes_add_order > 0
                    ? 100.0 * (1.0 -
                               static_cast<double>(
                                   leg.posting_bytes_bisection) /
                                   static_cast<double>(
                                       leg.posting_bytes_add_order))
                    : 0.0);
    std::printf("    clicks: %llu pairs (%llu distinct q-d, %llu queries, "
                "%llu docs, %llu users) in %.1fs\n",
                static_cast<unsigned long long>(leg.clicks.pairs),
                static_cast<unsigned long long>(
                    leg.clicks.distinct_query_doc_pairs),
                static_cast<unsigned long long>(leg.clicks.distinct_queries),
                static_cast<unsigned long long>(leg.clicks.distinct_docs),
                static_cast<unsigned long long>(leg.clicks.distinct_users),
                leg.click_seconds);
    std::printf("    evaluators (%zu queries x%d):", leg.queries,
                leg.repeats);
    for (size_t e = 0; e < 3; ++e) {
      std::printf("  %s %.3fs", kScaleEvaluatorNames[e],
                  leg.evaluator_seconds[e]);
    }
    std::printf("\n");
  }
  PrintSignatureLegs(signature_legs);
  std::printf("mining fan-out (%zu concepts, %u hardware threads), outputs "
              "identical across worker counts: %s\n",
              lab->concepts.size(), std::thread::hardware_concurrency(),
              mining_identical ? "yes" : "NO");
  for (const MiningPoint& p : mining) {
    std::printf("  %u worker%s  %.3f s  %.2fx\n", p.workers,
                p.workers == 1 ? " " : "s", p.wall_seconds,
                mining.front().wall_seconds > 0
                    ? mining.front().wall_seconds / p.wall_seconds
                    : 0.0);
  }
  std::printf("obs%s: %llu searches touching %llu postings docs, "
              "%llu phrase searches; mine_all %llu samples %.3f s\n",
              obs_searches == 0 ? " (hooks compiled out)" : "",
              static_cast<unsigned long long>(obs_searches),
              static_cast<unsigned long long>(obs_docs_touched),
              static_cast<unsigned long long>(obs_phrase),
              static_cast<unsigned long long>(obs_mine_calls),
              obs_mine_seconds);
  std::printf("\n");

  std::FILE* f = std::fopen("BENCH_offline.json", "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_offline.json\n");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"documents\": %zu,\n", lab->flat.NumDocs());
  std::fprintf(f, "  \"terms\": %zu,\n", lab->flat.NumTerms());
  std::fprintf(f, "  \"regular_queries\": %zu,\n",
               lab->regular_queries.size());
  std::fprintf(f, "  \"phrase_queries\": %zu,\n", lab->phrase_queries.size());
  std::fprintf(f, "  \"results_bit_identical\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(f,
               "  \"search_top50\": {\"legacy_qps\": %.1f, \"flat_qps\": "
               "%.1f, \"speedup\": %.4f},\n",
               search.LegacyQps(), search.FlatQps(), search.Speedup());
  std::fprintf(f,
               "  \"phrase_count\": {\"legacy_qps\": %.1f, \"flat_qps\": "
               "%.1f, \"speedup\": %.4f},\n",
               phrase_count.LegacyQps(), phrase_count.FlatQps(),
               phrase_count.Speedup());
  std::fprintf(f,
               "  \"regular_count\": {\"legacy_qps\": %.1f, \"flat_qps\": "
               "%.1f, \"speedup\": %.4f},\n",
               regular_count.LegacyQps(), regular_count.FlatQps(),
               regular_count.Speedup());
  std::fprintf(f,
               "  \"memory\": {\"legacy_bytes\": %zu, \"flat_bytes\": %zu, "
               "\"position_pool_bytes\": %zu, \"legacy_over_flat\": %.4f},\n",
               legacy_bytes, flat_bytes, lab->flat.PositionPoolBytes(),
               flat_bytes > 0
                   ? static_cast<double>(legacy_bytes) /
                        static_cast<double>(flat_bytes)
                   : 0.0);
  // Per-stage breakdown from the ckr_obs registry (deltas over the timed
  // flat passes / the mining loop; all zeros under CKR_OBS_DISABLED).
  std::fprintf(f,
               "  \"obs\": {\"index_searches\": %llu, "
               "\"index_docs_touched\": %llu, \"phrase_searches\": %llu, "
               "\"mine_all\": {\"samples\": %llu, \"seconds\": %.6f}},\n",
               static_cast<unsigned long long>(obs_searches),
               static_cast<unsigned long long>(obs_docs_touched),
               static_cast<unsigned long long>(obs_phrase),
               static_cast<unsigned long long>(obs_mine_calls),
               obs_mine_seconds);
  // Block-index legs: compressed posting sizes against the 8 B/posting CSR
  // baseline, and per-evaluator top-50 latency quantiles + pruning
  // counters (counter fields are zero under CKR_OBS_DISABLED).
  std::fprintf(f,
               "  \"block_index\": {\n"
               "    \"pruned_results_bit_identical\": %s,\n"
               "    \"postings\": %llu,\n"
               "    \"posting_bytes\": {\"csr_baseline\": %llu, "
               "\"varint_gb\": %zu, \"simple8b\": %zu, "
               "\"csr_over_varint_gb\": %.4f, \"csr_over_simple8b\": %.4f},\n",
               pruned_identical ? "true" : "false",
               static_cast<unsigned long long>(block_postings),
               static_cast<unsigned long long>(csr_posting_bytes),
               varint_bytes, simple8b_bytes,
               varint_bytes > 0 ? static_cast<double>(csr_posting_bytes) /
                                      static_cast<double>(varint_bytes)
                                : 0.0,
               simple8b_bytes > 0 ? static_cast<double>(csr_posting_bytes) /
                                        static_cast<double>(simple8b_bytes)
                                  : 0.0);
  std::fprintf(f, "    \"evaluators\": [\n");
  for (size_t i = 0; i < 3; ++i) {
    const EvaluatorLeg& leg = legs[i];
    std::fprintf(f,
                 "      {\"name\": \"%s\", \"p50_us\": %.2f, \"p99_us\": "
                 "%.2f, \"total_seconds\": %.6f, \"postings_scored\": %llu, "
                 "\"postings_scored_reduction\": %.4f, \"blocks_decoded\": "
                 "%llu, \"blocks_skipped\": %llu}%s\n",
                 leg.name, leg.p50_us, leg.p99_us, leg.total_seconds,
                 static_cast<unsigned long long>(leg.postings_scored),
                 scored_reduction(leg),
                 static_cast<unsigned long long>(leg.blocks_decoded),
                 static_cast<unsigned long long>(leg.blocks_skipped),
                 i + 1 < 3 ? "," : "");
  }
  std::fprintf(f, "    ]\n  },\n");
  // Corpus-scale legs: streamed out-of-core builds at paper scale and
  // 100x (plus 1M docs under CKR_BENCH_MILLION), with the reordering size
  // delta and per-evaluator wall-clock at each scale.
  std::fprintf(f, "  \"scale_legs\": [\n");
  for (size_t i = 0; i < scale_legs.size(); ++i) {
    const ScaleLeg& leg = scale_legs[i];
    std::fprintf(f,
                 "    {\"target_docs\": %zu, \"documents\": %zu, "
                 "\"terms\": %zu, \"postings\": %llu,\n",
                 leg.target_docs, leg.docs, leg.terms,
                 static_cast<unsigned long long>(leg.postings));
    std::fprintf(f,
                 "     \"stream_build_seconds\": %.3f, "
                 "\"finalize_seconds\": %.3f, "
                 "\"reorder_finalize_seconds\": %.3f,\n",
                 leg.stream_build_seconds, leg.finalize_seconds,
                 leg.reorder_finalize_seconds);
    std::fprintf(f,
                 "     \"posting_bytes\": {\"add_order\": %zu, "
                 "\"bisection\": %zu, \"reorder_saving\": %.4f},\n",
                 leg.posting_bytes_add_order, leg.posting_bytes_bisection,
                 leg.posting_bytes_add_order > 0
                     ? 1.0 - static_cast<double>(leg.posting_bytes_bisection) /
                                 static_cast<double>(
                                     leg.posting_bytes_add_order)
                     : 0.0);
    std::fprintf(f,
                 "     \"click_log\": {\"pairs\": %llu, "
                 "\"distinct_query_doc_pairs\": %llu, "
                 "\"distinct_queries\": %llu, \"distinct_docs\": %llu, "
                 "\"distinct_users\": %llu, \"seconds\": %.3f},\n",
                 static_cast<unsigned long long>(leg.clicks.pairs),
                 static_cast<unsigned long long>(
                     leg.clicks.distinct_query_doc_pairs),
                 static_cast<unsigned long long>(leg.clicks.distinct_queries),
                 static_cast<unsigned long long>(leg.clicks.distinct_docs),
                 static_cast<unsigned long long>(leg.clicks.distinct_users),
                 leg.click_seconds);
    std::fprintf(f,
                 "     \"results_bit_identical\": %s, \"queries\": %zu, "
                 "\"repeats\": %d, \"top_k\": %zu,\n",
                 leg.bit_identical ? "true" : "false", leg.queries,
                 leg.repeats, kScaleTopK);
    std::fprintf(f, "     \"evaluators\": [");
    for (size_t e = 0; e < 3; ++e) {
      std::fprintf(f, "{\"name\": \"%s\", \"total_seconds\": %.4f}%s",
                   kScaleEvaluatorNames[e], leg.evaluator_seconds[e],
                   e + 1 < 3 ? ", " : "");
    }
    std::fprintf(f, "]}%s\n", i + 1 < scale_legs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  // Signature-prefilter legs: the exact-safety bit (counts and hits
  // bit-identical with the gate on and off), the rejection rates from the
  // ckr.sig.* counters (zero under CKR_OBS_DISABLED), and the wall-clock
  // delta of the phrase-count workload at each scale.
  std::fprintf(f, "  \"signature\": {\n    \"legs\": [\n");
  for (size_t i = 0; i < signature_legs.size(); ++i) {
    const SignatureLeg& leg = signature_legs[i];
    std::fprintf(f,
                 "      {\"target_docs\": %zu, \"documents\": %zu, "
                 "\"queries\": %zu, \"repeats\": %d,\n",
                 leg.target_docs, leg.docs, leg.queries, leg.repeats);
    std::fprintf(f,
                 "       \"results_bit_identical\": %s, "
                 "\"patterns_bit_identical\": %s,\n",
                 leg.bit_identical ? "true" : "false",
                 leg.patterns_identical ? "true" : "false");
    std::fprintf(f,
                 "       \"phrase_count\": {\"gated_seconds\": %.6f, "
                 "\"ungated_seconds\": %.6f, \"speedup\": %.4f},\n",
                 leg.gated_seconds, leg.ungated_seconds, leg.Speedup());
    std::fprintf(f,
                 "       \"docs_tested\": %llu, \"docs_rejected\": %llu, "
                 "\"doc_rejection_rate\": %.4f,\n",
                 static_cast<unsigned long long>(leg.docs_tested),
                 static_cast<unsigned long long>(leg.docs_rejected),
                 leg.DocRejectionRate());
    std::fprintf(f,
                 "       \"pattern_scan\": {\"gated_seconds\": %.6f, "
                 "\"ungated_seconds\": %.6f},\n",
                 leg.pattern_gated_seconds, leg.pattern_ungated_seconds);
    std::fprintf(f,
                 "       \"windows_tested\": %llu, \"windows_rejected\": "
                 "%llu, \"window_rejection_rate\": %.4f,\n",
                 static_cast<unsigned long long>(leg.windows_tested),
                 static_cast<unsigned long long>(leg.windows_rejected),
                 leg.WindowRejectionRate());
    std::fprintf(f, "       \"signature_bytes\": %zu}%s\n",
                 leg.signature_bytes,
                 i + 1 < signature_legs.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  },\n");
  std::fprintf(f, "  \"mining_concepts\": %zu,\n", lab->concepts.size());
  // Mining scaling is bounded by the physical cores available; record them
  // so consumers can judge the speedup_vs_1 column.
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"mining_identical_across_workers\": %s,\n",
               mining_identical ? "true" : "false");
  std::fprintf(f, "  \"mining\": [\n");
  for (size_t i = 0; i < mining.size(); ++i) {
    const MiningPoint& p = mining[i];
    std::fprintf(f,
                 "    {\"workers\": %u, \"wall_seconds\": %.6f, "
                 "\"speedup_vs_1\": %.4f}%s\n",
                 p.workers, p.wall_seconds,
                 mining.front().wall_seconds > 0
                     ? mining.front().wall_seconds / p.wall_seconds
                     : 0.0,
                 i + 1 < mining.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_offline.json\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (std::getenv("CKR_BENCH_SIGNATURE_SMOKE") != nullptr) {
    // The check_all.sh gate: one paper-scale signature leg, exact-safety
    // enforced with a hard exit so a prefilter regression fails CI even
    // though the full bench run is too slow for the gate.
    const auto legs = RunSignatureLegs(/*smoke_only=*/true);
    PrintSignatureLegs(legs);
    for (const SignatureLeg& leg : legs) {
      if (!leg.bit_identical || !leg.patterns_identical) {
        std::fprintf(stderr,
                     "signature smoke: prefilter changed results at %zu "
                     "docs\n",
                     leg.target_docs);
        return 1;
      }
    }
    benchmark::Shutdown();
    return 0;
  }
  RunSummary();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
