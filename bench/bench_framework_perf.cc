// Reproduces the Section VI performance experiment with google-benchmark.
//
// Paper setup: "we used 1445 randomly chosen documents with an average
// size of 2.5KB, and each document contained 6.45 detections on average.
// The total running time of the stemmer and ranker components were 0.457
// sec and 1.519 sec, respectively, which translates to processing rates of
// 7.9MB/sec and 2.4MB/sec" (Dual Core AMD Opteron 275, 1808 MHz).
//
// We run the trained production runtime over an equivalent document set
// and report the same two throughput numbers. Absolute rates differ with
// hardware; the shape to preserve is that ranking costs a small multiple
// of stemming and both run at MB/s-scale, fast enough for online serving.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "core/contextual_ranker.h"
#include "corpus/doc_generator.h"

namespace {

using namespace ckr;

struct PerfLab {
  std::unique_ptr<ContextualRanker> ranker;
  std::vector<std::string> docs;
  size_t total_bytes = 0;
};

PerfLab* GetLab() {
  static PerfLab* lab = [] {
    auto* l = new PerfLab();
    ContextualRankerOptions options;  // Paper-scale world.
    auto ranker_or = ContextualRanker::Train(options);
    if (!ranker_or.ok()) {
      std::fprintf(stderr, "train: %s\n",
                   ranker_or.status().ToString().c_str());
      std::exit(1);
    }
    l->ranker = std::move(*ranker_or);
    DocGenerator gen(l->ranker->pipeline().world());
    // 1445 documents, news-sized (~2.5 KB average), fresh ids.
    for (DocId i = 0; i < 1445; ++i) {
      Document d = gen.Generate(Document::Kind::kNews, 600000 + i);
      l->total_bytes += d.text.size();
      l->docs.push_back(std::move(d.text));
    }
    return l;
  }();
  return lab;
}

void BM_RuntimeProcessDocument(benchmark::State& state) {
  PerfLab* lab = GetLab();
  size_t i = 0;
  size_t bytes = 0;
  for (auto _ : state) {
    auto ranked = lab->ranker->Rank(lab->docs[i]);
    benchmark::DoNotOptimize(ranked);
    bytes += lab->docs[i].size();
    i = (i + 1) % lab->docs.size();
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_RuntimeProcessDocument)->Unit(benchmark::kMicrosecond);

void BM_StemmerComponent(benchmark::State& state) {
  PerfLab* lab = GetLab();
  size_t i = 0;
  size_t bytes = 0;
  for (auto _ : state) {
    // The stemmer stage in isolation: tokenize + Porter-stem the document
    // (what RuntimeRanker::StemToTids does before TID lookup).
    auto stemmed = RelevanceScorer::StemContext(lab->docs[i]);
    benchmark::DoNotOptimize(stemmed);
    bytes += lab->docs[i].size();
    i = (i + 1) % lab->docs.size();
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_StemmerComponent)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);

  // The paper's summary run: process all 1445 documents once and report
  // the two component throughputs from the runtime's own instrumentation.
  PerfLab* lab = GetLab();
  lab->ranker->ResetStats();
  uint64_t detections = 0;
  for (const std::string& text : lab->docs) {
    detections += lab->ranker->Rank(text).size();
  }
  const RuntimeStats& stats = lab->ranker->stats();
  std::printf("=== Section VI performance (paper: 1445 docs, avg 2.5KB, "
              "6.45 detections; stemmer 7.9 MB/s, ranker 2.4 MB/s) ===\n");
  std::printf("documents: %llu, avg size %.2f KB, avg detections %.2f\n",
              static_cast<unsigned long long>(stats.documents),
              static_cast<double>(stats.bytes_processed) /
                  static_cast<double>(stats.documents) / 1000.0,
              static_cast<double>(detections) /
                  static_cast<double>(stats.documents));
  std::printf("stemmer: %.3f sec total -> %.1f MB/s\n", stats.stemmer_seconds,
              stats.StemmerMBps());
  std::printf("ranker:  %.3f sec total -> %.1f MB/s\n", stats.ranker_seconds,
              stats.RankerMBps());
  std::printf("\n");

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
