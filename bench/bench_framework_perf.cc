// Reproduces the Section VI performance experiment with google-benchmark.
//
// Paper setup: "we used 1445 randomly chosen documents with an average
// size of 2.5KB, and each document contained 6.45 detections on average.
// The total running time of the stemmer and ranker components were 0.457
// sec and 1.519 sec, respectively, which translates to processing rates of
// 7.9MB/sec and 2.4MB/sec" (Dual Core AMD Opteron 275, 1808 MHz).
//
// We run the trained production runtime over an equivalent document set
// and report the same two throughput numbers, for both runtime layouts:
//  * legacy — string-keyed map lookups and a hash-set context (the
//    pre-flat-layout hot path, kept as ProcessDocumentLegacy);
//  * flat — the id-keyed contiguous layout with a reused scratch.
// Plus ProcessBatch scaling across worker threads. The summary run also
// verifies the two layouts produce bit-identical rankings and writes all
// measurements to BENCH_runtime.json for machine consumption.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/contextual_ranker.h"
#include "corpus/doc_generator.h"
#include "obs/metrics.h"

namespace {

using namespace ckr;

struct PerfLab {
  std::unique_ptr<ContextualRanker> ranker;
  std::vector<std::string> docs;
  std::vector<std::string_view> views;
  size_t total_bytes = 0;
};

PerfLab* GetLab() {
  static PerfLab* lab = [] {
    auto* l = new PerfLab();
    ContextualRankerOptions options;  // Paper-scale world.
    auto ranker_or = ContextualRanker::Train(options);
    if (!ranker_or.ok()) {
      std::fprintf(stderr, "train: %s\n",
                   ranker_or.status().ToString().c_str());
      std::exit(1);
    }
    l->ranker = std::move(*ranker_or);
    DocGenerator gen(l->ranker->pipeline().world());
    // 1445 documents, news-sized (~2.5 KB average), fresh ids.
    for (DocId i = 0; i < 1445; ++i) {
      Document d = gen.Generate(Document::Kind::kNews, 600000 + i);
      l->total_bytes += d.text.size();
      l->docs.push_back(std::move(d.text));
    }
    for (const std::string& d : l->docs) l->views.push_back(d);
    return l;
  }();
  return lab;
}

double WallSeconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool SameRanking(const std::vector<RankedAnnotation>& a,
                 const std::vector<RankedAnnotation>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].key != b[i].key || a[i].begin != b[i].begin ||
        a[i].end != b[i].end || a[i].type != b[i].type ||
        a[i].score != b[i].score) {  // Exact: bit-identical scores.
      return false;
    }
  }
  return true;
}

void BM_RuntimeProcessDocument(benchmark::State& state) {
  PerfLab* lab = GetLab();
  RankerScratch scratch;
  size_t i = 0;
  size_t bytes = 0;
  for (auto _ : state) {
    auto ranked =
        lab->ranker->runtime().ProcessDocument(lab->docs[i], &scratch,
                                               nullptr);
    benchmark::DoNotOptimize(ranked);
    bytes += lab->docs[i].size();
    i = (i + 1) % lab->docs.size();
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_RuntimeProcessDocument)->Unit(benchmark::kMicrosecond);

void BM_RuntimeProcessDocumentLegacy(benchmark::State& state) {
  PerfLab* lab = GetLab();
  size_t i = 0;
  size_t bytes = 0;
  for (auto _ : state) {
    auto ranked = lab->ranker->runtime().ProcessDocumentLegacy(lab->docs[i]);
    benchmark::DoNotOptimize(ranked);
    bytes += lab->docs[i].size();
    i = (i + 1) % lab->docs.size();
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_RuntimeProcessDocumentLegacy)->Unit(benchmark::kMicrosecond);

void BM_StemmerComponent(benchmark::State& state) {
  PerfLab* lab = GetLab();
  size_t i = 0;
  size_t bytes = 0;
  for (auto _ : state) {
    // The stemmer stage in isolation: tokenize + Porter-stem the document
    // (what the runtime's stemmer phase does before TID lookup).
    auto stemmed = RelevanceScorer::StemContext(lab->docs[i]);
    benchmark::DoNotOptimize(stemmed);
    bytes += lab->docs[i].size();
    i = (i + 1) % lab->docs.size();
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_StemmerComponent)->Unit(benchmark::kMicrosecond);

void BM_ProcessBatch(benchmark::State& state) {
  PerfLab* lab = GetLab();
  unsigned threads = static_cast<unsigned>(state.range(0));
  size_t bytes = 0;
  for (auto _ : state) {
    auto results = lab->ranker->runtime().ProcessBatch(lab->views, threads);
    benchmark::DoNotOptimize(results);
    bytes += lab->total_bytes;
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_ProcessBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

struct BatchPoint {
  unsigned threads = 1;
  double wall_seconds = 0.0;
  double docs_per_sec = 0.0;
  double mbps = 0.0;
};

/// The paper's summary run: process all 1445 documents once per layout and
/// report component throughputs from the runtime's own instrumentation,
/// then batch wall-clock scaling. Returns the JSON blob written to disk.
void RunSummary() {
  PerfLab* lab = GetLab();
  const RuntimeRanker& runtime = lab->ranker->runtime();

  // Legacy layout (string-keyed maps, hash-set context).
  RuntimeStats legacy;
  std::vector<std::vector<RankedAnnotation>> legacy_out;
  legacy_out.reserve(lab->docs.size());
  for (const std::string& text : lab->docs) {
    legacy_out.push_back(runtime.ProcessDocumentLegacy(text, &legacy));
  }

  // Flat layout, single thread, one reused scratch. The ckr_obs stage
  // histograms are sampled before/after so the deltas cover exactly this
  // pass (training above already recorded into the same histograms). In
  // an obs-off build (CKR_OBS_DISABLED) the hooks are compiled out and
  // every delta is zero — the JSON records that honestly.
  struct StageProbe {
    const char* key;
    obs::Histogram* hist;
    uint64_t calls0 = 0, calls = 0;
    double seconds0 = 0.0, seconds = 0.0;
  };
  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  StageProbe stages[] = {
      {"stem", reg.GetHistogram("ckr.runtime.stage.stem_seconds")},
      {"match", reg.GetHistogram("ckr.runtime.stage.match_seconds")},
      {"score", reg.GetHistogram("ckr.runtime.stage.score_seconds")},
  };
  for (StageProbe& s : stages) {
    s.calls0 = s.hist->Count();
    s.seconds0 = s.hist->Sum();
  }
  RuntimeStats flat;
  RankerScratch scratch;
  std::vector<std::vector<RankedAnnotation>> flat_out;
  flat_out.reserve(lab->docs.size());
  for (const std::string& text : lab->docs) {
    flat_out.push_back(runtime.ProcessDocument(text, &scratch, &flat));
  }
  for (StageProbe& s : stages) {
    s.calls = s.hist->Count() - s.calls0;
    s.seconds = s.hist->Sum() - s.seconds0;
  }

  bool identical = true;
  uint64_t detections = 0;
  for (size_t i = 0; i < lab->docs.size(); ++i) {
    identical = identical && SameRanking(legacy_out[i], flat_out[i]);
    detections += flat_out[i].size();
  }

  // Batch scaling (wall-clock, includes the fan-out overhead).
  std::vector<BatchPoint> batch;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    auto t0 = std::chrono::steady_clock::now();
    auto results = runtime.ProcessBatch(lab->views, threads);
    BatchPoint p;
    p.threads = threads;
    p.wall_seconds = WallSeconds(t0);
    p.docs_per_sec = p.wall_seconds > 0
                         ? static_cast<double>(results.size()) / p.wall_seconds
                         : 0.0;
    p.mbps = p.wall_seconds > 0
                 ? static_cast<double>(lab->total_bytes) / 1e6 / p.wall_seconds
                 : 0.0;
    identical = identical && results.size() == flat_out.size();
    for (size_t i = 0; i < results.size(); ++i) {
      identical = identical && SameRanking(results[i], flat_out[i]);
    }
    batch.push_back(p);
  }

  double ranker_speedup =
      legacy.RankerMBps() > 0 ? flat.RankerMBps() / legacy.RankerMBps() : 0.0;

  std::printf("=== Section VI performance (paper: 1445 docs, avg 2.5KB, "
              "6.45 detections; stemmer 7.9 MB/s, ranker 2.4 MB/s) ===\n");
  std::printf("documents: %llu, avg size %.2f KB, avg detections %.2f\n",
              static_cast<unsigned long long>(flat.documents),
              static_cast<double>(flat.bytes_processed) /
                  static_cast<double>(flat.documents) / 1000.0,
              static_cast<double>(detections) /
                  static_cast<double>(flat.documents));
  std::printf("layout   stemmer MB/s   ranker MB/s   docs/s\n");
  std::printf("legacy   %12.1f  %12.1f  %7.0f\n", legacy.StemmerMBps(),
              legacy.RankerMBps(), legacy.DocsPerSec());
  std::printf("flat     %12.1f  %12.1f  %7.0f\n", flat.StemmerMBps(),
              flat.RankerMBps(), flat.DocsPerSec());
  std::printf("flat ranker split: match %.1f MB/s, score %.1f MB/s\n",
              flat.MatchMBps(), flat.ScoreMBps());
  std::printf("obs per-stage (flat pass%s):\n",
              stages[0].calls == 0 ? ", hooks compiled out" : "");
  for (const StageProbe& s : stages) {
    std::printf("  %-6s %8llu samples  %.4f s  %8.2f us/doc\n", s.key,
                static_cast<unsigned long long>(s.calls), s.seconds,
                s.calls > 0 ? s.seconds / static_cast<double>(s.calls) * 1e6
                            : 0.0);
  }
  std::printf("ranker speedup (flat / legacy): %.2fx\n", ranker_speedup);
  std::printf("outputs bit-identical across layouts and batch: %s\n",
              identical ? "yes" : "NO");
  std::printf("batch scaling (wall-clock, %u hardware threads):\n",
              std::thread::hardware_concurrency());
  for (const BatchPoint& p : batch) {
    std::printf("  %u thread%s  %.3f s  %7.0f docs/s  %6.1f MB/s  %.2fx\n",
                p.threads, p.threads == 1 ? " " : "s", p.wall_seconds,
                p.docs_per_sec, p.mbps,
                batch.front().wall_seconds > 0
                    ? batch.front().wall_seconds / p.wall_seconds
                    : 0.0);
  }
  std::printf("\n");

  std::FILE* f = std::fopen("BENCH_runtime.json", "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_runtime.json\n");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"documents\": %llu,\n",
               static_cast<unsigned long long>(flat.documents));
  std::fprintf(f, "  \"total_bytes\": %zu,\n", lab->total_bytes);
  // Batch scaling is bounded by the physical cores available; record them
  // so consumers can judge the speedup_vs_1 column.
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"avg_detections\": %.4f,\n",
               static_cast<double>(detections) /
                   static_cast<double>(flat.documents));
  std::fprintf(f,
               "  \"legacy\": {\"stemmer_seconds\": %.6f, \"ranker_seconds\": "
               "%.6f, \"stemmer_mbps\": %.3f, \"ranker_mbps\": %.3f, "
               "\"docs_per_sec\": %.1f},\n",
               legacy.stemmer_seconds, legacy.ranker_seconds,
               legacy.StemmerMBps(), legacy.RankerMBps(), legacy.DocsPerSec());
  std::fprintf(f,
               "  \"flat\": {\"stemmer_seconds\": %.6f, \"ranker_seconds\": "
               "%.6f, \"match_seconds\": %.6f, \"score_seconds\": %.6f, "
               "\"stemmer_mbps\": %.3f, \"ranker_mbps\": %.3f, "
               "\"match_mbps\": %.3f, \"score_mbps\": %.3f, "
               "\"docs_per_sec\": %.1f},\n",
               flat.stemmer_seconds, flat.ranker_seconds, flat.match_seconds,
               flat.score_seconds, flat.StemmerMBps(), flat.RankerMBps(),
               flat.MatchMBps(), flat.ScoreMBps(), flat.DocsPerSec());
  // Per-stage breakdown from the ckr_obs histograms (deltas over the
  // flat pass only; all zeros when built with CKR_OBS_DISABLED).
  std::fprintf(f, "  \"obs_stages\": {");
  for (size_t i = 0; i < std::size(stages); ++i) {
    const StageProbe& s = stages[i];
    std::fprintf(f, "%s\"%s\": {\"samples\": %llu, \"seconds\": %.6f}",
                 i == 0 ? "" : ", ", s.key,
                 static_cast<unsigned long long>(s.calls), s.seconds);
  }
  std::fprintf(f, "},\n");
  std::fprintf(f, "  \"ranker_speedup_flat_over_legacy\": %.4f,\n",
               ranker_speedup);
  std::fprintf(f, "  \"outputs_bit_identical\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(f, "  \"batch\": [\n");
  for (size_t i = 0; i < batch.size(); ++i) {
    const BatchPoint& p = batch[i];
    std::fprintf(f,
                 "    {\"threads\": %u, \"wall_seconds\": %.6f, "
                 "\"docs_per_sec\": %.1f, \"mbps\": %.3f, "
                 "\"speedup_vs_1\": %.4f}%s\n",
                 p.threads, p.wall_seconds, p.docs_per_sec, p.mbps,
                 batch.front().wall_seconds > 0
                     ? batch.front().wall_seconds / p.wall_seconds
                     : 0.0,
                 i + 1 < batch.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_runtime.json\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  RunSummary();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
