// Reproduces the Section VI memory accounting.
//
// Paper figures for 1 million supported concepts:
//  * interestingness vectors: 9 fields x 2 bytes = 18 MB;
//  * relevant-term lists: up to 100 (TID, score) pairs x 32 bits = 400 MB,
//    with TIDs fitting in 22 bits and scores in 10 bits;
//  * further reducible via shared TIDs and Golomb coding [26].
//
// We build the runtime stores over our concept universe, report measured
// bytes, extrapolate to 1M concepts, and measure the Golomb saving.
#include <cstdio>

#include "core/contextual_ranker.h"

int main() {
  ckr::ContextualRankerOptions options;  // Paper-scale world.
  auto ranker_or = ckr::ContextualRanker::Train(options);
  if (!ranker_or.ok()) {
    std::fprintf(stderr, "train: %s\n",
                 ranker_or.status().ToString().c_str());
    return 1;
  }
  const ckr::ContextualRanker& ranker = **ranker_or;
  const auto& interest = ranker.interestingness_store();
  const auto& relevance = ranker.relevance_store();
  const auto& tids = ranker.tid_table();

  const double n = static_cast<double>(interest.NumConcepts());
  const double to_million = 1e6 / n;

  std::printf("=== Section VI memory accounting ===\n");
  std::printf("concepts in the system: %.0f\n\n", n);

  double interest_bytes = static_cast<double>(interest.PayloadBytes());
  std::printf("interestingness vectors: %.1f KB measured -> %.1f MB per 1M "
              "concepts\n",
              interest_bytes / 1e3, interest_bytes * to_million / 1e6);
  std::printf("  (paper: 18 MB with 9 fields; our vector carries %zu fields "
              "-> %zu bytes/concept after one-hot type encoding)\n\n",
              ckr::InterestingnessVector::Dim(),
              ckr::InterestingnessVector::Dim() * 2);

  double rel_bytes = static_cast<double>(relevance.PayloadBytes());
  double rel_per_concept =
      rel_bytes / static_cast<double>(relevance.NumConcepts());
  std::printf("packed relevant terms: %.1f KB measured (%.0f bytes/concept) "
              "-> %.1f MB per 1M concepts\n",
              rel_bytes / 1e3, rel_per_concept,
              rel_per_concept * 1e6 / 1e6);
  std::printf("  (paper: up to 400 bytes/concept -> ~400 MB per 1M; lists "
              "shorter than 100 terms shrink proportionally)\n\n");

  std::printf("Global TID Table: %zu distinct terms (22-bit budget: %u, "
              "overflowed: %s)\n",
              tids.size(), ckr::GlobalTidTable::kMaxTid + 1,
              tids.overflowed() ? "YES" : "no");
  std::printf("  (paper: 'the total number of unique terms ... decreases as "
              "we increase the number of concepts' -> fits in 22 bits)\n\n");

  double golomb = static_cast<double>(relevance.GolombCompressedBytes());
  std::printf("Golomb-coded TID lists + 10-bit scores: %.1f KB (%.1f%% of "
              "the packed size)\n",
              golomb / 1e3, 100.0 * golomb / rel_bytes);
  std::printf("  (paper: cost 'can be even further reduced through ... "
              "Golomb Coding')\n");
  return 0;
}
