// Ablation benches for the design choices DESIGN.md calls out:
//
//  A. the multi-term specificity bonus of the concept vector (Section
//     II-B step 4) — quantifies its effect on the production baseline
//     (in our world it over-rewards long concepts against entity names);
//  B. the 500-character window overlap of Section V-A.1 — removing the
//     overlap separates neighboring concepts at window borders;
//  C. weighted (Eq. 5) vs plain (Eq. 4) error rate — the weighted metric
//     separates techniques more sharply because big-CTR mistakes dominate;
//  D. the 2-byte field quantization of Section VI — the paper calls the
//     granularity loss "minor"; we quantify it on the deployed model.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "framework/runtime_ranker.h"

namespace {

using namespace ckr;

EvalResult CombinedCv(const ExperimentRunner& runner) {
  ModelSpec spec;
  spec.include_relevance = true;
  spec.tie_break_relevance = true;
  auto result = runner.EvaluateModelCV(spec);
  if (!result.ok()) {
    std::fprintf(stderr, "model: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return *result;
}

}  // namespace

int main() {
  std::printf("=== Ablations ===\n\n");

  // ---- A: concept-vector multi-term bonus ----
  {
    PipelineConfig with_cfg;
    PipelineConfig without_cfg;
    without_cfg.conceptvec.multi_term_bonus = false;
    auto with_p = Pipeline::Build(with_cfg);
    auto without_p = Pipeline::Build(without_cfg);
    if (!with_p.ok() || !without_p.ok()) return 1;
    auto with_ds = DatasetBuilder(**with_p, {}).Build();
    auto without_ds = DatasetBuilder(**without_p, {}).Build();
    if (!with_ds.ok() || !without_ds.ok()) return 1;
    EvalResult with_r = ExperimentRunner(*with_ds).EvaluateBaseline();
    EvalResult without_r = ExperimentRunner(*without_ds).EvaluateBaseline();
    std::printf("[A] concept-vector multi-term bonus (paper II-B step 4: "
                "'more specific concepts eventually bubble up')\n");
    std::printf("    baseline weighted error with bonus:    %.2f%%\n",
                100 * with_r.weighted_error_rate);
    std::printf("    baseline weighted error without bonus: %.2f%%\n\n",
                100 * without_r.weighted_error_rate);

    // ---- B: window overlap (reuses the default pipeline) ----
    DatasetConfig no_overlap;
    no_overlap.window_overlap = 0;
    auto ds0 = DatasetBuilder(**with_p, no_overlap).Build();
    if (!ds0.ok()) return 1;
    ExperimentRunner runner_overlap(*with_ds);
    ExperimentRunner runner_no_overlap(*ds0);
    EvalResult overlap_r = CombinedCv(runner_overlap);
    EvalResult no_overlap_r = CombinedCv(runner_no_overlap);
    std::printf("[B] evaluation windows (paper V-A.1: 2500 chars, 500 "
                "overlap 'so that the neighboring concepts are not "
                "separated')\n");
    std::printf("    overlap 500: %zu windows, combined error %.2f%%\n",
                with_ds->num_windows, 100 * overlap_r.weighted_error_rate);
    std::printf("    overlap 0:   %zu windows, combined error %.2f%%\n\n",
                ds0->num_windows, 100 * no_overlap_r.weighted_error_rate);

    // ---- C: weighted vs plain error ----
    ExperimentRunner runner(*with_ds);
    EvalResult random = runner.EvaluateRandom();
    EvalResult baseline = runner.EvaluateBaseline();
    EvalResult combined = overlap_r;
    std::printf("[C] weighted (Eq. 5) vs plain (Eq. 4) error rate\n");
    std::printf("    %-16s weighted %6.2f%%  plain %6.2f%%\n", "random",
                100 * random.weighted_error_rate, 100 * random.error_rate);
    std::printf("    %-16s weighted %6.2f%%  plain %6.2f%%\n", "baseline",
                100 * baseline.weighted_error_rate, 100 * baseline.error_rate);
    std::printf("    %-16s weighted %6.2f%%  plain %6.2f%%\n\n", "combined",
                100 * combined.weighted_error_rate, 100 * combined.error_rate);

    // ---- D: 2-byte quantization of the interestingness vectors ----
    ModelSpec spec;
    spec.include_relevance = true;
    auto model_or = runner.TrainFullModel(spec);
    if (!model_or.ok()) return 1;
    const RankSvmModel& model = *model_or;

    QuantizedInterestingnessStore store;
    for (const WindowInstance& inst : with_ds->instances) {
      store.Add(inst.key, inst.interestingness);
    }
    store.Finalize();

    std::vector<double> exact_scores, quant_scores;
    std::vector<double> dequantized;
    for (const WindowInstance& inst : with_ds->instances) {
      exact_scores.push_back(model.Score(
          ExperimentRunner::Features(inst, spec)));
      store.Lookup(inst.key, &dequantized);
      dequantized.push_back(std::log1p(
          inst.relevance[static_cast<size_t>(spec.relevance_resource)]));
      quant_scores.push_back(model.Score(dequantized));
    }
    PairwiseErrorAccumulator exact_acc, quant_acc;
    auto groups = with_ds->GroupByWindow();
    for (const auto& group : groups) {
      std::vector<double> pe, pq, ctr;
      for (size_t idx : group) {
        pe.push_back(exact_scores[idx]);
        pq.push_back(quant_scores[idx]);
        ctr.push_back(with_ds->instances[idx].ctr);
      }
      AccumulatePairwiseError(pe, ctr, true, &exact_acc);
      AccumulatePairwiseError(pq, ctr, true, &quant_acc);
    }
    // Rank agreement between exact and quantized scoring.
    size_t agree = 0, total = 0;
    for (const auto& group : groups) {
      for (size_t a = 0; a < group.size(); ++a) {
        for (size_t b = a + 1; b < group.size(); ++b) {
          double de = exact_scores[group[a]] - exact_scores[group[b]];
          double dq = quant_scores[group[a]] - quant_scores[group[b]];
          if (de == 0) continue;
          ++total;
          if ((de > 0) == (dq > 0)) ++agree;
        }
      }
    }
    std::printf("[D] 2-byte field quantization (paper VI: 'a minor decrease "
                "in granularity')\n");
    std::printf("    weighted error, exact features:     %.2f%%\n",
                100 * exact_acc.Rate());
    std::printf("    weighted error, quantized features: %.2f%%\n",
                100 * quant_acc.Rate());
    std::printf("    pairwise order agreement: %.2f%%\n",
                100.0 * static_cast<double>(agree) /
                    static_cast<double>(total));
  }
  return 0;
}
