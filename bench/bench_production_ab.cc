// Reproduces the production results of Section V-C.
//
// "Under this setup, we annotate much fewer entities and concepts in News
// articles, and make sure they are ranked at top ... the number of average
// weekly views was reduced by 52.5%, and yet the number of average weekly
// clicks received was down by only 2.0%. This translates to an increase of
// 100.1% in CTR."
//
// Replay: the control arm runs the old production behaviour (annotate the
// top-8 entities by concept-vector score); the treatment arm annotates
// only the top-ranked few according to the learned model. "Views" counts
// annotation impressions (annotations shown x story views), matching how
// an annotation-tracking pipeline accounts exposure.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "bench_common.h"
#include "common/hash.h"

namespace {

using namespace ckr;

struct ArmTotals {
  double views = 0;
  double clicks = 0;

  double Ctr() const { return views > 0 ? clicks / views : 0.0; }
};

}  // namespace

int main() {
  ckr_bench::Lab lab = ckr_bench::BuildLab();
  const Pipeline& p = *lab.pipeline;

  ExperimentRunner runner(lab.dataset);
  ModelSpec spec;
  spec.include_relevance = true;
  spec.tie_break_relevance = true;
  auto model_or = runner.TrainFullModel(spec);
  if (!model_or.ok()) {
    std::fprintf(stderr, "model: %s\n", model_or.status().ToString().c_str());
    return 1;
  }
  const RankSvmModel& model = *model_or;

  // Feature caches for model scoring of arbitrary stories.
  std::unordered_map<std::string, InterestingnessVector> ivec_cache;
  RelevanceScorer scorer;
  auto ensure = [&](const std::string& key, EntityType type) {
    if (ivec_cache.count(key) > 0) return;
    ivec_cache[key] = p.interestingness().Extract(key, type);
    scorer.AddConcept(key, p.relevance_miner().Mine(
                               key, RelevanceResource::kSnippets, 100));
  };

  // The old production system annotated every detected entity; the new
  // setup annotates "much fewer", keeping only the learned ranker's top
  // picks.
  const size_t kControlAnnotations = 1000;  // Effectively "all detections".
  const size_t kTreatmentAnnotations = 4;
  DocGenerator gen(p.world());

  ArmTotals control, treatment, oracle;
  const DocId kStories = 600;  // Fresh traffic beyond the training range.
  for (DocId i = 0; i < kStories; ++i) {
    Document story = gen.Generate(Document::Kind::kNews, 900000 + i);
    std::vector<Detection> dets = p.detector().Detect(story.text);

    // Distinct candidate keys.
    std::vector<std::string> keys;
    std::vector<EntityType> types;
    std::vector<size_t> positions;
    std::unordered_set<std::string> seen;
    for (const Detection& d : dets) {
      if (d.type == EntityType::kPattern) continue;
      if (!seen.insert(d.key).second) continue;
      keys.push_back(d.key);
      types.push_back(d.type);
      positions.push_back(d.begin);
    }
    if (keys.empty()) continue;

    std::vector<double> cv_scores =
        p.concept_vectors().ScoreCandidates(story.text, keys);
    auto stemmed = RelevanceScorer::StemContext(story.text);
    std::vector<double> ml_scores(keys.size());
    for (size_t k = 0; k < keys.size(); ++k) {
      ensure(keys[k], types[k]);
      WindowInstance inst;
      inst.interestingness = ivec_cache[keys[k]];
      inst.relevance[0] = scorer.Score(keys[k], stemmed);
      ml_scores[k] = model.Score(ExperimentRunner::Features(inst, spec)) +
                     1e-9 * inst.relevance[0];
    }

    auto top_indexes = [&](const std::vector<double>& scores, size_t n) {
      std::vector<size_t> order(keys.size());
      for (size_t k = 0; k < order.size(); ++k) order[k] = k;
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (scores[a] != scores[b]) return scores[a] > scores[b];
        return keys[a] < keys[b];
      });
      if (order.size() > n) order.resize(n);
      return order;
    };

    // Shared traffic and shared user behaviour across arms.
    Rng traffic(Mix64(HashCombine(4242, story.id)));
    double story_views =
        p.clicks().config().mean_views *
        std::exp(p.clicks().config().views_sigma * traffic.NextGaussian());
    auto run_arm = [&](const std::vector<size_t>& picked, ArmTotals* arm) {
      for (size_t idx : picked) {
        Rng user = traffic.Fork(Fnv1a64(keys[idx]));
        double click_p =
            p.clicks().ClickProbability(story, keys[idx], positions[idx],
                                        user);
        arm->views += story_views;
        arm->clicks += story_views * click_p;
      }
    };
    run_arm(top_indexes(cv_scores, kControlAnnotations), &control);
    run_arm(top_indexes(ml_scores, kTreatmentAnnotations), &treatment);
    // Oracle arm: top-k by the true (noise-free) click propensity — the
    // ceiling for any ranker at this annotation budget.
    std::vector<double> oracle_scores(keys.size());
    for (size_t k = 0; k < keys.size(); ++k) {
      Rng probe(1);
      double acc = 0;
      for (int t = 0; t < 8; ++t) {
        acc += p.clicks().ClickProbability(story, keys[k], positions[k], probe);
      }
      oracle_scores[k] = acc;
    }
    run_arm(top_indexes(oracle_scores, kTreatmentAnnotations), &oracle);
  }

  double oracle_click_delta = (oracle.clicks - control.clicks) / control.clicks;
  double view_delta = (treatment.views - control.views) / control.views;
  double click_delta = (treatment.clicks - control.clicks) / control.clicks;
  double ctr_delta = (treatment.Ctr() - control.Ctr()) / control.Ctr();

  std::printf("=== Section V-C: production A/B replay (%u stories) ===\n",
              static_cast<unsigned>(kStories));
  std::printf("control:   all detections (old production)  views=%.0f "
              "clicks=%.0f ctr=%.4f\n",
              control.views, control.clicks, control.Ctr());
  std::printf("treatment: top-%zu by learned ranker  views=%.0f clicks=%.0f "
              "ctr=%.4f\n",
              kTreatmentAnnotations, treatment.views, treatment.clicks,
              treatment.Ctr());
  std::printf("\nannotation views:  %+.1f%%   (paper: -52.5%%)\n",
              100.0 * view_delta);
  std::printf("annotation clicks: %+.1f%%   (paper:  -2.0%%)\n",
              100.0 * click_delta);
  std::printf("CTR:               %+.1f%%   (paper: +100.1%%)\n",
              100.0 * ctr_delta);
  std::printf("(oracle ranker at the same budget: clicks %+.1f%%)\n",
              100.0 * oracle_click_delta);
  return 0;
}
