// Reproduces Table II: "Concepts and their summation values, where
// summation is the sum of scores for the concept's top hundred relevant
// keywords."
//
// The paper sorts a large set of concepts by the summation of their mined
// relevant-keyword scores: highly specific concepts (e.g. "methicillin
// resistant staphylococcus aureus") land at the top with summations
// ~9000-9500 while generic junk units ("my favorite", "the other", "what
// is happening") land at the bottom with ~1500-2100 — a ratio of roughly
// 4-6x. We reproduce the ranking over our concept universe and report the
// top and bottom of the sorted list plus the aggregate separation.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "features/relevance.h"

namespace {

struct Row {
  std::string key;
  double summation;
  bool generic;
};

}  // namespace

int main() {
  ckr::PipelineConfig config;  // Paper-scale world.
  auto pipeline_or = ckr::Pipeline::Build(config);
  if (!pipeline_or.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 pipeline_or.status().ToString().c_str());
    return 1;
  }
  const ckr::Pipeline& p = **pipeline_or;

  std::vector<Row> rows;
  for (const ckr::Entity& e : p.world().entities()) {
    if (e.TermCount() < 2) continue;  // Table II shows multi-term concepts.
    auto terms = p.relevance_miner().Mine(
        e.key, ckr::RelevanceResource::kSnippets, 100);
    rows.push_back({e.key, ckr::RelevanceMiner::SummationOfScores(terms),
                    e.is_generic});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.summation > b.summation; });

  std::printf("=== Table II: concepts and their summation values ===\n");
  std::printf("Paper (upper): methicillin resistant staphylococcus aureus "
              "9544.3 | motorola razr v3m silver 9118.7 | egyptian foreign "
              "minister ahmed aboul gheit 9024.9\n");
  std::printf("Paper (lower): my favorite 2142.9 | the other 1718.0 | what "
              "is happening 1503.0\n\n");

  std::printf("%-40s %12s %s\n", "concept", "summation", "kind");
  std::printf("---- top of the sorted list ----\n");
  for (size_t i = 0; i < std::min<size_t>(5, rows.size()); ++i) {
    std::printf("%-40s %12.1f %s\n", rows[i].key.c_str(), rows[i].summation,
                rows[i].generic ? "GENERIC" : "specific");
  }
  std::printf("---- bottom of the sorted list ----\n");
  for (size_t i = rows.size() >= 5 ? rows.size() - 5 : 0; i < rows.size();
       ++i) {
    std::printf("%-40s %12.1f %s\n", rows[i].key.c_str(), rows[i].summation,
                rows[i].generic ? "GENERIC" : "specific");
  }

  // Aggregate separation: mean of the specific top decile vs generic mean.
  double top_decile = 0;
  size_t top_n = std::max<size_t>(1, rows.size() / 10);
  size_t counted = 0;
  for (const Row& r : rows) {
    if (counted >= top_n) break;
    if (!r.generic) {
      top_decile += r.summation;
      ++counted;
    }
  }
  top_decile /= static_cast<double>(counted);
  double generic_mean = 0;
  size_t generic_n = 0;
  double generic_in_top_half = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (!rows[i].generic) continue;
    generic_mean += rows[i].summation;
    ++generic_n;
    if (i < rows.size() / 2) ++generic_in_top_half;
  }
  generic_mean /= static_cast<double>(std::max<size_t>(1, generic_n));

  std::printf("\nmeasured: specific top-decile mean = %.1f, generic mean = "
              "%.1f (ratio %.2fx; paper's extremes ratio ~4.8x)\n",
              top_decile, generic_mean, top_decile / generic_mean);
  std::printf("generic concepts in the top half of the ranking: %.0f%% "
              "(paper: generic concepts rank very low)\n",
              100.0 * static_cast<double>(generic_in_top_half) /
                  static_cast<double>(std::max<size_t>(1, generic_n)));
  return 0;
}
