// Serving-daemon benchmark: drives ckr_serve with the deterministic
// million-user load generator and reports the latency distribution,
// throughput, and shed accounting the daemon's telemetry captures.
//
// Legs, each on a fresh daemon + metric registry:
//  * closed loop  — N clients submit-and-wait; measures service capacity
//    with queueing kept near zero.
//  * open loop    — requests fired on a Poisson arrival schedule at a
//    target offered QPS, independent of service times; run once near
//    capacity and once far above it, where admission control (bounded
//    queue + deadlines) turns overload into fast sheds instead of
//    unbounded queueing delay.
//  * hot swap     — closed loop while a freshly built generation is
//    published mid-run; the zero-downtime contract means no request may
//    fail or be shed.
//
// Output: printf summary table + BENCH_serving.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "corpus/document.h"
#include "corpus/world.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "search/search_service.h"
#include "serve/load_gen.h"
#include "serve/server.h"
#include "serve/sharded_index.h"
#include "serve/snapshot.h"

namespace ckr {
namespace {

constexpr size_t kDocs = 20000;
constexpr size_t kShards = 4;
constexpr uint64_t kSeed = 20090331;
constexpr uint64_t kRequestsPerLeg = 2000;
constexpr unsigned kWorkers = 2;
constexpr unsigned kClients = 2;

struct LegResult {
  const char* name = "";
  const char* mode = "";
  uint64_t offered = 0;
  double offered_qps = 0.0;  // 0 for closed-loop legs.
  double seconds = 0.0;
  double throughput_qps = 0.0;
  double latency_p50_us = 0.0;
  double latency_p99_us = 0.0;
  double latency_p999_us = 0.0;
  double queue_p50_us = 0.0;
  double queue_p99_us = 0.0;
  double max_queue_depth = 0.0;
  uint64_t completed = 0;
  uint64_t partial = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_deadline = 0;
  uint64_t swaps = 0;
  double shed_rate = 0.0;
  bool all_answered = false;
};

std::unique_ptr<ServingSnapshot> BuildSnapshot(const World& world) {
  ShardedIndexConfig config;
  config.num_shards = kShards;
  config.build.store_text = false;
  config.build.build_block_index = true;
  auto sharded =
      ShardedIndex::Build(world, Document::Kind::kWeb, kDocs, config);
  CKR_CHECK(sharded.ok());
  auto snapshot =
      std::make_unique<ServingSnapshot>(std::move(sharded).value());
  snapshot->evaluator =
      ChooseEvaluator(snapshot->index.MaxShardDocs(),
                      snapshot->index.shard(0).has_block_index());
  return snapshot;
}

void FillFromMetrics(obs::MetricRegistry& metrics, LegResult* leg) {
  obs::Histogram* latency = metrics.GetHistogram("ckr.serve.latency_seconds");
  obs::Histogram* queued = metrics.GetHistogram("ckr.serve.queue_seconds");
  leg->latency_p50_us = latency->Percentile(0.5) * 1e6;
  leg->latency_p99_us = latency->Percentile(0.99) * 1e6;
  leg->latency_p999_us = latency->Percentile(0.999) * 1e6;
  leg->queue_p50_us = queued->Percentile(0.5) * 1e6;
  leg->queue_p99_us = queued->Percentile(0.99) * 1e6;
  leg->completed = metrics.GetCounter("ckr.serve.completed")->Value();
  leg->partial = metrics.GetCounter("ckr.serve.partial")->Value();
  leg->shed_queue_full =
      metrics.GetCounter("ckr.serve.shed_queue_full")->Value();
  leg->shed_deadline = metrics.GetCounter("ckr.serve.shed_deadline")->Value();
  leg->swaps = metrics.GetCounter("ckr.serve.snapshot_swaps")->Value();
  leg->shed_rate =
      leg->offered == 0
          ? 0.0
          : static_cast<double>(leg->shed_queue_full + leg->shed_deadline) /
                static_cast<double>(leg->offered);
}

/// Closed loop: kClients threads, each submit-and-wait. `swap_snapshot`
/// (optional) is published once a quarter of the load is answered.
LegResult RunClosedLoop(const char* name, const World& world,
                        const LoadGenerator& gen,
                        std::unique_ptr<ServingSnapshot> swap_snapshot) {
  LegResult leg;
  leg.name = name;
  leg.mode = "closed";
  leg.offered = kRequestsPerLeg;

  obs::MetricRegistry metrics;
  ServeDaemonConfig config;
  config.num_workers = kWorkers;
  config.queue_capacity = 4096;  // Closed loop never fills it.
  config.metrics = &metrics;
  ServeDaemon daemon(config);
  daemon.Publish(BuildSnapshot(world));
  CKR_CHECK(daemon.Start().ok());

  std::atomic<uint64_t> answered{0};
  std::atomic<uint64_t> failed{0};
  std::thread publisher;
  if (swap_snapshot != nullptr) {
    publisher = std::thread([&, snapshot = std::move(swap_snapshot)]() mutable {
      while (answered.load(std::memory_order_acquire) < kRequestsPerLeg / 4) {
        std::this_thread::yield();
      }
      daemon.Publish(std::move(snapshot));
    });
  }

  const Clock& wall = RealClock();
  const int64_t start = wall.NowNanos();
  std::vector<std::thread> clients;
  for (unsigned c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (uint64_t i = c; i < kRequestsPerLeg; i += kClients) {
        ServeRequest request;
        request.id = i;
        request.query = gen.Request(i).query;
        request.k = gen.config().top_k;
        std::atomic<bool> done{false};
        request.done = [&](ServeResponse&& response) {
          if (response.outcome != ServeOutcome::kOk) {
            failed.fetch_add(1, std::memory_order_relaxed);
          }
          answered.fetch_add(1, std::memory_order_relaxed);
          done.store(true, std::memory_order_release);
        };
        (void)daemon.Submit(std::move(request));
        while (!done.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  if (publisher.joinable()) publisher.join();
  leg.seconds = wall.SecondsSince(start);
  daemon.Stop();

  leg.throughput_qps = static_cast<double>(kRequestsPerLeg) / leg.seconds;
  leg.all_answered =
      answered.load() == kRequestsPerLeg && failed.load() == 0;
  FillFromMetrics(metrics, &leg);
  return leg;
}

/// Open loop: one dispatcher fires requests on the Poisson schedule at
/// `offered_qps`, regardless of completions. Small queue + per-request
/// deadline make overload shed instead of queue without bound.
LegResult RunOpenLoop(const char* name, const World& world,
                      const LoadGenerator& gen, double offered_qps,
                      int64_t deadline_budget_nanos) {
  LegResult leg;
  leg.name = name;
  leg.mode = "open";
  leg.offered = kRequestsPerLeg;
  leg.offered_qps = offered_qps;

  obs::MetricRegistry metrics;
  ServeDaemonConfig config;
  config.num_workers = kWorkers;
  config.queue_capacity = 64;  // Bounded: overload must shed, not queue.
  config.metrics = &metrics;
  ServeDaemon daemon(config);
  daemon.Publish(BuildSnapshot(world));
  CKR_CHECK(daemon.Start().ok());
  obs::Gauge* depth_gauge = metrics.GetGauge("ckr.serve.queue_depth");

  const std::vector<int64_t> arrivals =
      gen.ArrivalNanos(kRequestsPerLeg, offered_qps);
  std::atomic<uint64_t> answered{0};
  const Clock& wall = RealClock();
  const int64_t start = wall.NowNanos();
  double max_depth = 0.0;
  for (uint64_t i = 0; i < kRequestsPerLeg; ++i) {
    const int64_t target = start + arrivals[static_cast<size_t>(i)];
    const int64_t lag = target - wall.NowNanos();
    if (lag > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(lag));
    }
    ServeRequest request;
    request.id = i;
    request.query = gen.Request(i).query;
    request.k = gen.config().top_k;
    request.deadline_nanos = wall.NowNanos() + deadline_budget_nanos;
    request.done = [&](ServeResponse&&) {
      answered.fetch_add(1, std::memory_order_relaxed);
    };
    (void)daemon.Submit(std::move(request));
    max_depth = std::max(max_depth, depth_gauge->Value());
  }
  daemon.Stop();  // Drains the backlog; every admitted request answers.
  leg.seconds = wall.SecondsSince(start);
  leg.max_queue_depth = max_depth;
  leg.throughput_qps = static_cast<double>(kRequestsPerLeg) / leg.seconds;
  leg.all_answered = answered.load() == kRequestsPerLeg;
  FillFromMetrics(metrics, &leg);
  return leg;
}

void PrintLeg(const LegResult& leg) {
  std::printf(
      "%-14s %6s %7.0f qps  lat p50/p99/p999 %8.1f/%9.1f/%9.1f us  "
      "shed %5.1f%%  swaps %llu  %s\n",
      leg.name, leg.mode, leg.throughput_qps, leg.latency_p50_us,
      leg.latency_p99_us, leg.latency_p999_us, leg.shed_rate * 100.0,
      static_cast<unsigned long long>(leg.swaps),
      leg.all_answered ? "all answered" : "LOST REQUESTS");
}

void WriteLegJson(std::FILE* f, const LegResult& leg, bool last) {
  std::fprintf(
      f,
      "    {\"name\": \"%s\", \"mode\": \"%s\", \"offered\": %llu, "
      "\"offered_qps\": %.1f, \"seconds\": %.4f, \"throughput_qps\": %.1f,\n"
      "     \"latency_us\": {\"p50\": %.1f, \"p99\": %.1f, \"p999\": %.1f}, "
      "\"queue_us\": {\"p50\": %.1f, \"p99\": %.1f},\n"
      "     \"completed\": %llu, \"partial\": %llu, \"shed_queue_full\": "
      "%llu, \"shed_deadline\": %llu, \"shed_rate\": %.4f,\n"
      "     \"max_queue_depth\": %.0f, \"snapshot_swaps\": %llu, "
      "\"all_answered\": %s}%s\n",
      leg.name, leg.mode, static_cast<unsigned long long>(leg.offered),
      leg.offered_qps, leg.seconds, leg.throughput_qps, leg.latency_p50_us,
      leg.latency_p99_us, leg.latency_p999_us, leg.queue_p50_us,
      leg.queue_p99_us, static_cast<unsigned long long>(leg.completed),
      static_cast<unsigned long long>(leg.partial),
      static_cast<unsigned long long>(leg.shed_queue_full),
      static_cast<unsigned long long>(leg.shed_deadline), leg.shed_rate,
      leg.max_queue_depth, static_cast<unsigned long long>(leg.swaps),
      leg.all_answered ? "true" : "false", last ? "" : ",");
}

void Run() {
  std::printf("bench_serving: %zu docs, %zu shards, %u workers, %u clients, "
              "%llu requests/leg\n",
              kDocs, kShards, kWorkers, kClients,
              static_cast<unsigned long long>(kRequestsPerLeg));
  auto world_or = World::Create(ScaledWorldConfig(kDocs, kSeed));
  CKR_CHECK(world_or.ok());
  const std::unique_ptr<World> world = std::move(world_or).value();

  LoadGenConfig load_config;
  load_config.seed = kSeed;
  const LoadGenerator gen(*world, load_config);
  std::printf("load: %u zipf users, hot set %zu rotating every %llu "
              "requests (p_hot=%.2f)\n",
              load_config.num_users, load_config.hot_set_size,
              static_cast<unsigned long long>(load_config.burst_period),
              load_config.hot_entity_prob);

  std::vector<LegResult> legs;
  legs.push_back(RunClosedLoop("closed_loop", *world, gen, nullptr));
  const double capacity_qps = legs[0].throughput_qps;
  // Near capacity the open loop mostly completes; at 3x it must shed.
  legs.push_back(RunOpenLoop("open_0.7x", *world, gen, 0.7 * capacity_qps,
                             /*deadline_budget_nanos=*/200'000'000));
  legs.push_back(RunOpenLoop("open_3x", *world, gen, 3.0 * capacity_qps,
                             /*deadline_budget_nanos=*/200'000'000));
  legs.push_back(
      RunClosedLoop("hot_swap", *world, gen, BuildSnapshot(*world)));

  std::printf("\n");
  for (const LegResult& leg : legs) PrintLeg(leg);
  const LegResult& swap = legs.back();
  std::printf("hot swap leg: %llu swap(s), zero failed requests: %s\n",
              static_cast<unsigned long long>(swap.swaps),
              swap.all_answered && swap.shed_queue_full == 0 &&
                      swap.shed_deadline == 0
                  ? "yes"
                  : "NO");

  std::FILE* f = std::fopen("BENCH_serving.json", "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serving.json\n");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"documents\": %zu,\n", kDocs);
  std::fprintf(f, "  \"shards\": %zu,\n", kShards);
  std::fprintf(f, "  \"workers\": %u,\n", kWorkers);
  std::fprintf(f, "  \"clients\": %u,\n", kClients);
  std::fprintf(f, "  \"load\": {\"users\": %u, \"user_zipf\": %.2f, "
               "\"hot_entity_prob\": %.2f, \"hot_set_size\": %zu, "
               "\"burst_period\": %llu, \"seed\": %llu},\n",
               load_config.num_users, load_config.user_zipf,
               load_config.hot_entity_prob, load_config.hot_set_size,
               static_cast<unsigned long long>(load_config.burst_period),
               static_cast<unsigned long long>(load_config.seed));
  std::fprintf(f, "  \"legs\": [\n");
  for (size_t i = 0; i < legs.size(); ++i) {
    WriteLegJson(f, legs[i], i + 1 == legs.size());
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"hot_swap_zero_downtime\": %s\n",
               swap.all_answered && swap.shed_queue_full == 0 &&
                       swap.shed_deadline == 0
                   ? "true"
                   : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_serving.json\n");
}

}  // namespace
}  // namespace ckr

int main() {
  ckr::Run();
  return 0;
}
