// Reproduces Table V (weighted error rates with all features) and Figure 3
// (NDCG@{1,2,3} of the combined model).
//
// Paper rows:                      weighted error
//   Random                         50.01%
//   Concept Vector Score           30.22%
//   Best Interestingness Model     23.69%
//   Best Relevance                 24.86%
//   Interestingness + Relevance    18.66%
//
// The combined model trains on all interestingness features plus the
// snippet relevance score, breaking score ties in favor of higher
// relevance (Section V-A.6).
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace ckr;
  ckr_bench::Lab lab = ckr_bench::BuildLab();
  std::printf("=== Table V: weighted error rates, all features ===\n");
  ckr_bench::PrintDatasetHeader(lab);
  ExperimentRunner runner(lab.dataset);

  EvalResult random = runner.EvaluateRandom();
  EvalResult baseline = runner.EvaluateBaseline();
  EvalResult interest = ckr_bench::BestOfKernels(runner, ModelSpec{});
  EvalResult relevance =
      runner.EvaluateRelevanceOnly(RelevanceResource::kSnippets);

  ModelSpec combined_spec;
  combined_spec.include_relevance = true;
  combined_spec.tie_break_relevance = true;
  EvalResult combined = ckr_bench::BestOfKernels(runner, combined_spec);

  ckr_bench::PrintRow("Random", 50.01, random);
  ckr_bench::PrintRow("Concept Vector Score", 30.22, baseline);
  ckr_bench::PrintRow("Best Interestingness Model", 23.69, interest);
  ckr_bench::PrintRow("Best Relevance", 24.86, relevance);
  ckr_bench::PrintRow("Interestingness + Relevance", 18.66, combined);

  double paper_reduction = (30.22 - 18.66) / 30.22;
  double measured_reduction =
      (baseline.weighted_error_rate - combined.weighted_error_rate) /
      baseline.weighted_error_rate;
  std::printf("\nheadline: error rate reduced from %.2f%% to %.2f%% "
              "(-%.0f%%; paper: 30.22%% -> 18.66%%, -%.0f%%)\n",
              100.0 * baseline.weighted_error_rate,
              100.0 * combined.weighted_error_rate,
              100.0 * measured_reduction, 100.0 * paper_reduction);

  std::printf("\n=== Figure 3: NDCG at top k = {1, 2, 3}, combined "
              "model ===\n");
  ckr_bench::PrintNdcg("Random", random);
  ckr_bench::PrintNdcg("Concept Vector Score", baseline);
  ckr_bench::PrintNdcg("Interestingness + Relevance", combined);
  return 0;
}
