// Shared scaffolding for the experiment binaries: builds the paper-scale
// pipeline + click dataset once and provides the result-printing helpers
// used by the Table III/IV/V reproductions.
#ifndef CKR_BENCH_BENCH_COMMON_H_
#define CKR_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

#include "core/dataset.h"
#include "core/experiment.h"
#include "core/pipeline.h"

namespace ckr_bench {

struct Lab {
  std::unique_ptr<ckr::Pipeline> pipeline;
  ckr::ClickDataset dataset;
};

/// Builds the default (paper-scale) world and dataset; exits on failure.
inline Lab BuildLab() {
  ckr::PipelineConfig config;
  auto pipeline_or = ckr::Pipeline::Build(config);
  if (!pipeline_or.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 pipeline_or.status().ToString().c_str());
    std::exit(1);
  }
  Lab lab;
  lab.pipeline = std::move(*pipeline_or);
  ckr::DatasetBuilder builder(*lab.pipeline, ckr::DatasetConfig{});
  auto dataset_or = builder.Build();
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 dataset_or.status().ToString().c_str());
    std::exit(1);
  }
  lab.dataset = std::move(*dataset_or);
  return lab;
}

inline void PrintDatasetHeader(const Lab& lab) {
  const ckr::ClickDataset& ds = lab.dataset;
  std::printf("dataset: %zu stories survive cleaning (paper: 870), "
              "%zu windows (paper: 947), %zu concept instances (paper: "
              "6420), %llu sampled clicks (paper: 16549)\n\n",
              ds.surviving_stories.size(), ds.num_windows,
              ds.instances.size(),
              static_cast<unsigned long long>(ds.total_clicks));
}

/// Prints one technique's row: weighted error + NDCG@{1,2,3}.
inline void PrintRow(const char* name, double paper_werr,
                     const ckr::EvalResult& r) {
  if (paper_werr > 0) {
    std::printf("  %-34s %6.2f%%  [%5.2f, %5.2f]   (paper: %5.2f%%)\n", name,
                100.0 * r.weighted_error_rate, 100.0 * r.weighted_error_ci.lo,
                100.0 * r.weighted_error_ci.hi, paper_werr);
  } else {
    std::printf("  %-34s %6.2f%%  [%5.2f, %5.2f]\n", name,
                100.0 * r.weighted_error_rate, 100.0 * r.weighted_error_ci.lo,
                100.0 * r.weighted_error_ci.hi);
  }
}

inline void PrintNdcg(const char* name, const ckr::EvalResult& r) {
  std::printf("  %-34s ndcg@1=%.3f  ndcg@2=%.3f  ndcg@3=%.3f\n", name,
              r.ndcg[0], r.ndcg[1], r.ndcg[2]);
}

/// The paper evaluates linear and RBF kernels with default parameters and
/// reports the best result (Section V-A.3).
inline ckr::EvalResult BestOfKernels(const ckr::ExperimentRunner& runner,
                                     ckr::ModelSpec spec) {
  spec.svm.kernel = ckr::SvmKernel::kLinear;
  auto linear = runner.EvaluateModelCV(spec);
  spec.svm.kernel = ckr::SvmKernel::kRbfFourier;
  auto rbf = runner.EvaluateModelCV(spec);
  if (!linear.ok()) {
    std::fprintf(stderr, "model: %s\n", linear.status().ToString().c_str());
    std::exit(1);
  }
  if (!rbf.ok()) return *linear;
  return linear->weighted_error_rate <= rbf->weighted_error_rate ? *linear
                                                                 : *rbf;
}

}  // namespace ckr_bench

#endif  // CKR_BENCH_BENCH_COMMON_H_
