// Reproduces the paper's future-work scenario (Section VIII): "the system
// would be able to respond to sudden fluctuations in click data ...
// potentially react intelligently to world events in real time."
//
// Scenario: a mid-tier entity suddenly becomes the story of the week (a
// breaking world event multiplies its click propensity). We stream daily
// click feedback through the CtrTracker and compare the entity's average
// rank on fresh stories with and without the online adjustment, before,
// during, and after the event. Static model: the rank barely moves.
// Online model: the entity is boosted within a tick or two of the event
// and decays back afterwards. The spike detector flags it while hot.
#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "core/contextual_ranker.h"
#include "corpus/doc_generator.h"
#include "online/ctr_tracker.h"

namespace {

using namespace ckr;

// Average rank position (1-based) of `key` over stories that contain it;
// 0 if never seen.
double AverageRank(const ContextualRanker& ranker,
                   const std::vector<Document>& stories,
                   const std::string& key) {
  double total = 0;
  size_t n = 0;
  for (const Document& s : stories) {
    auto ranked = ranker.Rank(s.text);
    for (size_t i = 0; i < ranked.size(); ++i) {
      if (ranked[i].key == key) {
        total += static_cast<double>(i + 1);
        ++n;
        break;
      }
    }
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

}  // namespace

int main() {
  ContextualRankerOptions options;  // Paper-scale world.
  auto ranker_or = ContextualRanker::Train(options);
  if (!ranker_or.ok()) {
    std::fprintf(stderr, "train: %s\n", ranker_or.status().ToString().c_str());
    return 1;
  }
  ContextualRanker& ranker = **ranker_or;
  const World& world = ranker.pipeline().world();

  // Pick a mid-tier entity: interesting enough to appear in stories, far
  // from the top of the static ranking.
  const Entity* subject = nullptr;
  for (const Entity& e : world.entities()) {
    if (e.is_generic || e.TermCount() < 2) continue;
    if (e.interestingness > 0.18 && e.interestingness < 0.3 &&
        e.popularity > 0.2) {
      subject = &e;
      break;
    }
  }
  if (subject == nullptr) {
    std::fprintf(stderr, "no mid-tier subject found\n");
    return 1;
  }
  std::printf("=== Section VIII: online reaction to a world event ===\n");
  std::printf("subject: '%s' (latent interestingness %.2f)\n\n",
              subject->key.c_str(), subject->interestingness);

  // Stories of the subject's topic so it reliably appears.
  DocGenerator gen(world);
  std::vector<Document> eval_stories;
  for (DocId i = 0; eval_stories.size() < 40 && i < 4000; ++i) {
    Document d = gen.Generate(Document::Kind::kNews, 350000 + i);
    if (d.TruthRelevance(subject->id) > 0) eval_stories.push_back(std::move(d));
  }

  CtrTrackerConfig tcfg;
  tcfg.adjustment_weight = 2.5;
  tcfg.max_adjustment = 1.5;
  tcfg.decay = 0.5;  // Forget fast: reacting to events is the point.
  tcfg.spike_ratio = 2.5;
  CtrTracker tracker(tcfg);
  const ClickSimulator& clicks = ranker.pipeline().clicks();
  // Daily feedback: simulate traffic on a rolling set of stories. During
  // the event days the subject's clicks are multiplied (the world event).
  auto stream_day = [&](int day, double event_multiplier) {
    Rng day_rng(1000 + static_cast<uint64_t>(day));
    for (int s = 0; s < 60; ++s) {
      Document story = gen.Generate(
          Document::Kind::kNews,
          static_cast<DocId>(400000 + day * 60 + s));
      auto detections = ranker.pipeline().detector().Detect(story.text);
      StoryReport report = clicks.Simulate(story, detections);
      for (const AnnotationRecord& a : report.annotations) {
        tracker.Record(a.key, a.views, a.clicks);
      }
    }
    if (event_multiplier > 1.0) {
      // Breaking news: the subject is suddenly everywhere and everyone
      // clicks it — a burst of high-CTR exposure on top of the organic
      // traffic.
      uint64_t burst_views = 4000 + day_rng.NextBounded(1000);
      uint64_t burst_clicks = static_cast<uint64_t>(
          static_cast<double>(burst_views) * 0.20 *
          (0.8 + 0.4 * day_rng.NextDouble()));
      tracker.Record(subject->key, burst_views, burst_clicks);
    }
    // Note: the caller ticks after inspecting the fresh period.
  };

  std::printf("%-6s %-10s %-12s %-12s %s\n", "day", "phase", "static-rank",
              "online-rank", "spiking?");
  for (int day = 0; day < 12; ++day) {
    bool event = day >= 4 && day < 7;
    stream_day(day, event ? 12.0 : 1.0);
    // Spike detection reads the fresh (pre-tick) period.
    bool spiking = tracker.IsSpiking(subject->key);
    tracker.Tick();

    ranker.SetOnlineTracker(nullptr);
    double static_rank = AverageRank(ranker, eval_stories, subject->key);
    ranker.SetOnlineTracker(&tracker);
    double online_rank = AverageRank(ranker, eval_stories, subject->key);

    std::printf("%-6d %-10s %-12.2f %-12.2f %s\n", day,
                event ? "EVENT" : "quiet", static_rank, online_rank,
                spiking ? "SPIKE" : "-");
  }
  ranker.SetOnlineTracker(nullptr);
  std::printf("\nexpected shape: the online rank jumps toward 1 within a "
              "day of the event and decays back after it ends; the static "
              "rank never moves.\n");
  return 0;
}
