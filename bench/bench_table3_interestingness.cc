// Reproduces Table III (weighted error rates with interestingness
// features) and Figure 1 (NDCG@{1,2,3} of random / concept-vector / full
// interestingness model).
//
// Paper rows:                      weighted error
//   Random                         50.01%
//   Concept Vector Score           30.22%
//   All Features                   23.69%
//   - Query Logs                   24.50%
//   - Taxonomy Based               24.47%
//   - Search Results               23.80%
//   - Other                        23.78%
//   - Text Based                   23.73%
//
// The leave-one-group-out rows quantify each group's contribution: query
// logs and taxonomy matter most.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace ckr;
  ckr_bench::Lab lab = ckr_bench::BuildLab();
  std::printf("=== Table III: weighted error rates, interestingness "
              "features ===\n");
  ckr_bench::PrintDatasetHeader(lab);
  ExperimentRunner runner(lab.dataset);

  EvalResult random = runner.EvaluateRandom();
  EvalResult baseline = runner.EvaluateBaseline();
  ckr_bench::PrintRow("Random", 50.01, random);
  ckr_bench::PrintRow("Concept Vector Score", 30.22, baseline);

  ModelSpec all;
  EvalResult all_result = ckr_bench::BestOfKernels(runner, all);
  ckr_bench::PrintRow("All Features", 23.69, all_result);

  struct Ablation {
    const char* name;
    FeatureGroup group;
    double paper;
  };
  const Ablation ablations[] = {
      {"- Query Logs", FeatureGroup::kQueryLogs, 24.50},
      {"- Taxonomy Based", FeatureGroup::kTaxonomy, 24.47},
      {"- Search Results", FeatureGroup::kSearchResults, 23.80},
      {"- Other", FeatureGroup::kOther, 23.78},
      {"- Text Based", FeatureGroup::kTextBased, 23.73},
  };
  for (const Ablation& a : ablations) {
    ModelSpec spec;
    spec.group_mask = MaskWithout(a.group);
    ckr_bench::PrintRow(a.name, a.paper, ckr_bench::BestOfKernels(runner, spec));
  }

  std::printf("\n=== Figure 1: NDCG at top k = {1, 2, 3} ===\n");
  std::printf("(paper trend: model > concept vector > random, all rising "
              "with k)\n");
  ckr_bench::PrintNdcg("Random", random);
  ckr_bench::PrintNdcg("Concept Vector Score", baseline);
  ckr_bench::PrintNdcg("Interestingness Model", all_result);
  return 0;
}
