// Training & evaluation engine performance: the contiguous-matrix trainer
// vs the preserved nested-vector legacy trainer, plus the parallel CV and
// bootstrap fan-outs.
//
// The trainer rewrite keeps every floating-point operation and RNG draw in
// the legacy order, so weights are bit-identical — the speedup comes from
// memory layout (one flat pre-transformed matrix, precomputed pair
// difference rows), prefetching, and hoisting the RNG off the SGD critical
// path. This binary builds the paper-scale dataset, asserts the
// equivalences (legacy vs. flat Train for both kernels; legacy sequential
// CV vs. the parallel EvaluateModelCV, every metric field), and only then
// times: the RFF pre-transform (per-row loop vs. flat batch, worker
// scaling), full Train for both kernels, cross-validated evaluation, and
// the Table III ablation sweep. Everything lands in BENCH_training.json.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "eval/metrics.h"
#include "ranksvm/legacy_rank_svm.h"
#include "ranksvm/rank_svm.h"

namespace {

using namespace ckr;

double WallSeconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::vector<RankingInstance> BuildTrainingData(const ClickDataset& dataset,
                                               const ModelSpec& spec) {
  std::vector<RankingInstance> train;
  train.reserve(dataset.instances.size());
  for (const WindowInstance& inst : dataset.instances) {
    RankingInstance ri;
    ri.features = ExperimentRunner::Features(inst, spec);
    ri.label = inst.ctr;
    ri.group = inst.window_group;
    train.push_back(std::move(ri));
  }
  return train;
}

// The pre-parallel evaluation path: sequential folds, legacy trainer,
// single-threaded bootstrap. Mirrors ExperimentRunner::EvaluateModelCV +
// EvaluateScores exactly (same accumulation order) so the comparison with
// the parallel engine is bit-for-bit.
EvalResult LegacySequentialCv(const ClickDataset& dataset,
                              const ModelSpec& spec) {
  int folds = 0;
  for (int f : dataset.story_fold) folds = std::max(folds, f + 1);
  std::vector<double> scores(dataset.instances.size(), 0.0);
  for (int fold = 0; fold < folds; ++fold) {
    std::vector<RankingInstance> train;
    for (const WindowInstance& inst : dataset.instances) {
      if (dataset.story_fold[inst.story_index] == fold) continue;
      RankingInstance ri;
      ri.features = ExperimentRunner::Features(inst, spec);
      ri.label = inst.ctr;
      ri.group = inst.window_group;
      train.push_back(std::move(ri));
    }
    auto model_or = LegacyRankSvmTrainer(spec.svm).Train(train);
    if (!model_or.ok()) {
      std::fprintf(stderr, "legacy fold %d: %s\n", fold,
                   model_or.status().ToString().c_str());
      std::exit(1);
    }
    for (size_t i = 0; i < dataset.instances.size(); ++i) {
      const WindowInstance& inst = dataset.instances[i];
      if (dataset.story_fold[inst.story_index] != fold) continue;
      double s = model_or->Score(ExperimentRunner::Features(inst, spec));
      if (spec.tie_break_relevance) {
        s += 1e-9 * inst.relevance[static_cast<size_t>(
                        spec.relevance_resource)];
      }
      scores[i] = s;
    }
  }

  EvalResult result;
  const auto window_groups = dataset.GroupByWindow();
  const CtrBucketizer buckets(dataset.AllCtrs());
  PairwiseErrorAccumulator weighted, plain;
  double ndcg_sum[3] = {0, 0, 0};
  std::vector<std::pair<double, double>> window_masses;
  window_masses.reserve(window_groups.size());
  for (const auto& group : window_groups) {
    std::vector<double> pred, ctr;
    pred.reserve(group.size());
    ctr.reserve(group.size());
    for (size_t idx : group) {
      pred.push_back(scores[idx]);
      ctr.push_back(dataset.instances[idx].ctr);
    }
    PairwiseErrorAccumulator window_acc;
    AccumulatePairwiseError(pred, ctr, /*weighted=*/true, &window_acc);
    window_masses.emplace_back(window_acc.error_mass, window_acc.total_mass);
    weighted.error_mass += window_acc.error_mass;
    weighted.total_mass += window_acc.total_mass;
    AccumulatePairwiseError(pred, ctr, /*weighted=*/false, &plain);
    for (size_t k = 0; k < 3; ++k) {
      ndcg_sum[k] += NdcgAtK(pred, ctr, buckets, k + 1);
    }
  }
  result.weighted_error_rate = weighted.Rate();
  result.weighted_error_ci = BootstrapRatioCi(
      window_masses, /*resamples=*/2000, /*confidence=*/0.95,
      /*seed=*/8675309, /*num_threads=*/1);
  result.error_rate = plain.Rate();
  result.windows = window_groups.size();
  for (size_t k = 0; k < 3; ++k) {
    result.ndcg[k] = result.windows > 0
                         ? ndcg_sum[k] / static_cast<double>(result.windows)
                         : 0.0;
  }
  return result;
}

bool SameEval(const EvalResult& a, const EvalResult& b) {
  return a.weighted_error_rate == b.weighted_error_rate &&
         a.error_rate == b.error_rate && a.windows == b.windows &&
         a.ndcg[0] == b.ndcg[0] && a.ndcg[1] == b.ndcg[1] &&
         a.ndcg[2] == b.ndcg[2] &&
         a.weighted_error_ci.mean == b.weighted_error_ci.mean &&
         a.weighted_error_ci.lo == b.weighted_error_ci.lo &&
         a.weighted_error_ci.hi == b.weighted_error_ci.hi;
}

struct TimedPair {
  double legacy_seconds = 0.0;
  double flat_seconds = 0.0;
  double Speedup() const {
    return flat_seconds > 0 ? legacy_seconds / flat_seconds : 0.0;
  }
};

struct ScalePoint {
  unsigned workers = 0;
  double seconds = 0.0;
};

// Minimum wall time over `repeats` runs of `fn`.
template <typename Fn>
double MinSeconds(int repeats, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    double s = WallSeconds(t0);
    if (r == 0 || s < best) best = s;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  ckr_bench::Lab lab = ckr_bench::BuildLab();
  const ClickDataset& dataset = lab.dataset;

  std::printf("=== training engine: flat matrices + deterministic "
              "parallelism vs legacy ===\n");
  ckr_bench::PrintDatasetHeader(lab);

  ModelSpec linear_spec;  // Default: all interestingness groups, linear.
  ModelSpec rbf_spec;
  rbf_spec.svm.kernel = SvmKernel::kRbfFourier;

  const std::vector<RankingInstance> train_data =
      BuildTrainingData(dataset, linear_spec);
  const size_t feat_dim =
      train_data.empty() ? 0 : train_data[0].features.size();

  // ---- Equivalence gates: the speedup claims are void unless the flat
  // engine reproduces the legacy engine bit for bit. ----

  auto legacy_linear = LegacyRankSvmTrainer(linear_spec.svm).Train(train_data);
  auto flat_linear = RankSvmTrainer(linear_spec.svm).Train(train_data);
  auto legacy_rbf = LegacyRankSvmTrainer(rbf_spec.svm).Train(train_data);
  auto flat_rbf = RankSvmTrainer(rbf_spec.svm).Train(train_data);
  if (!legacy_linear.ok() || !flat_linear.ok() || !legacy_rbf.ok() ||
      !flat_rbf.ok()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }
  const bool train_linear_identical =
      flat_linear->SerializeBinary() == legacy_linear->SerializeBinary();
  const bool train_rbf_identical =
      flat_rbf->SerializeBinary() == legacy_rbf->SerializeBinary();

  ExperimentRunner runner1(dataset, 1);
  EvalResult legacy_cv = LegacySequentialCv(dataset, linear_spec);
  auto flat_cv = runner1.EvaluateModelCV(linear_spec);
  if (!flat_cv.ok()) {
    std::fprintf(stderr, "cv: %s\n", flat_cv.status().ToString().c_str());
    return 1;
  }
  const bool cv_identical = SameEval(legacy_cv, *flat_cv);

  std::printf("weights bit-identical to legacy: linear %s, rbf %s\n",
              train_linear_identical ? "yes" : "NO",
              train_rbf_identical ? "yes" : "NO");
  std::printf("CV metrics bit-identical to legacy sequential: %s "
              "(weighted error %.4f%%)\n",
              cv_identical ? "yes" : "NO",
              100.0 * flat_cv->weighted_error_rate);
  if (!train_linear_identical || !train_rbf_identical || !cv_identical) {
    std::fprintf(stderr, "EQUIVALENCE FAILED — timings not comparable\n");
    return 1;
  }

  constexpr int kRepeats = 5;

  // ---- Full Train, both kernels, measured first while the process is
  // quiet — the linear run is ~40ms and latency-sensitive, so it goes
  // before the phases that allocate tens of MB of transform output. The
  // linear run is the headline: the RBF margin loop is FP-add
  // latency-bound, so layout can't buy as much there without changing
  // summation order (which would break bit-identity). ----
  TimedPair train_linear, train_rbf;
  // Short enough that scheduler noise on a busy host can dominate a
  // min-of-5; use more repeats so both minima converge.
  constexpr int kTrainLinearRepeats = 15;
  train_linear.legacy_seconds = MinSeconds(kTrainLinearRepeats, [&] {
    benchmark::DoNotOptimize(
        LegacyRankSvmTrainer(linear_spec.svm).Train(train_data));
  });
  train_linear.flat_seconds = MinSeconds(kTrainLinearRepeats, [&] {
    benchmark::DoNotOptimize(
        RankSvmTrainer(linear_spec.svm).Train(train_data));
  });
  train_rbf.legacy_seconds = MinSeconds(kRepeats, [&] {
    benchmark::DoNotOptimize(
        LegacyRankSvmTrainer(rbf_spec.svm).Train(train_data));
  });
  train_rbf.flat_seconds = MinSeconds(kRepeats, [&] {
    benchmark::DoNotOptimize(
        RankSvmTrainer(rbf_spec.svm).Train(train_data));
  });

  // ---- RFF pre-transform: legacy one-row-at-a-time loop vs one flat
  // batched matrix, plus worker scaling of the batch. ----
  std::vector<std::vector<double>> rows;
  rows.reserve(train_data.size());
  for (const RankingInstance& ri : train_data) rows.push_back(ri.features);

  TimedPair transform;
  transform.legacy_seconds = MinSeconds(kRepeats, [&] {
    std::vector<std::vector<double>> one(1);
    for (const auto& row : rows) {
      one[0] = row;
      benchmark::DoNotOptimize(flat_rbf->TransformBatch(one, 1));
    }
  });
  transform.flat_seconds = MinSeconds(kRepeats, [&] {
    benchmark::DoNotOptimize(flat_rbf->TransformBatch(rows, 1));
  });
  const std::vector<double> transform_ref = flat_rbf->TransformBatch(rows, 1);
  bool transform_identical = true;
  std::vector<ScalePoint> transform_scaling;
  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    transform_scaling.push_back({workers, MinSeconds(kRepeats, [&] {
      benchmark::DoNotOptimize(flat_rbf->TransformBatch(rows, workers));
    })});
    transform_identical = transform_identical &&
                          flat_rbf->TransformBatch(rows, workers) ==
                              transform_ref;
  }

  // ---- Cross-validated evaluation: legacy sequential vs the parallel
  // engine at several worker counts. ----
  const double cv_legacy_seconds =
      MinSeconds(2, [&] { LegacySequentialCv(dataset, linear_spec); });
  std::vector<ScalePoint> cv_scaling;
  for (unsigned workers : {1u, 2u, 4u}) {
    ExperimentRunner runner(dataset, workers);
    cv_scaling.push_back({workers, MinSeconds(2, [&] {
      auto r = runner.EvaluateModelCV(linear_spec);
      if (!r.ok()) std::exit(1);
      benchmark::DoNotOptimize(r);
    })});
  }

  // ---- Table III ablation sweep: the All-Features model plus the five
  // leave-one-group-out rows, end to end. ----
  std::vector<ModelSpec> sweep;
  sweep.push_back(linear_spec);
  for (FeatureGroup g :
       {FeatureGroup::kQueryLogs, FeatureGroup::kTaxonomy,
        FeatureGroup::kSearchResults, FeatureGroup::kOther,
        FeatureGroup::kTextBased}) {
    ModelSpec spec;
    spec.group_mask = MaskWithout(g);
    sweep.push_back(spec);
  }
  auto t0 = std::chrono::steady_clock::now();
  for (const ModelSpec& spec : sweep) {
    LegacySequentialCv(dataset, spec);
  }
  const double sweep_legacy_seconds = WallSeconds(t0);
  ExperimentRunner runner_all(dataset, 0);  // All hardware threads.
  t0 = std::chrono::steady_clock::now();
  for (const ModelSpec& spec : sweep) {
    auto r = runner_all.EvaluateModelCV(spec);
    if (!r.ok()) return 1;
    benchmark::DoNotOptimize(r);
  }
  const double sweep_flat_seconds = WallSeconds(t0);

  // ---- Report. ----
  const unsigned hardware = std::thread::hardware_concurrency();
  std::printf("\ninstances %zu, feature dim %zu, rff dim %zu, hardware "
              "threads %u\n",
              train_data.size(), feat_dim, rbf_spec.svm.rff_dim, hardware);
  std::printf("phase                      legacy s      flat s   speedup\n");
  std::printf("rff pre-transform        %10.4f  %10.4f  %7.2fx\n",
              transform.legacy_seconds, transform.flat_seconds,
              transform.Speedup());
  std::printf("train (linear)           %10.4f  %10.4f  %7.2fx\n",
              train_linear.legacy_seconds, train_linear.flat_seconds,
              train_linear.Speedup());
  std::printf("train (rbf)              %10.4f  %10.4f  %7.2fx\n",
              train_rbf.legacy_seconds, train_rbf.flat_seconds,
              train_rbf.Speedup());
  std::printf("cv eval (1 worker)       %10.4f  %10.4f  %7.2fx\n",
              cv_legacy_seconds, cv_scaling[0].seconds,
              cv_scaling[0].seconds > 0
                  ? cv_legacy_seconds / cv_scaling[0].seconds
                  : 0.0);
  std::printf("ablation sweep (%zu specs) %9.3f  %10.3f  %7.2fx\n",
              sweep.size(), sweep_legacy_seconds, sweep_flat_seconds,
              sweep_flat_seconds > 0
                  ? sweep_legacy_seconds / sweep_flat_seconds
                  : 0.0);
  std::printf("transform scaling (batch, outputs identical: %s):\n",
              transform_identical ? "yes" : "NO");
  for (const ScalePoint& p : transform_scaling) {
    std::printf("  %u worker%s  %.4f s  %.2fx\n", p.workers,
                p.workers == 1 ? " " : "s", p.seconds,
                p.seconds > 0 ? transform_scaling.front().seconds / p.seconds
                              : 0.0);
  }
  std::printf("cv eval worker scaling:\n");
  for (const ScalePoint& p : cv_scaling) {
    std::printf("  %u worker%s  %.3f s  %.2fx vs legacy\n", p.workers,
                p.workers == 1 ? " " : "s", p.seconds,
                p.seconds > 0 ? cv_legacy_seconds / p.seconds : 0.0);
  }

  std::FILE* f = std::fopen("BENCH_training.json", "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_training.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"instances\": %zu,\n", train_data.size());
  std::fprintf(f, "  \"feature_dim\": %zu,\n", feat_dim);
  std::fprintf(f, "  \"rff_dim\": %zu,\n", rbf_spec.svm.rff_dim);
  // Parallel scaling is bounded by the physical cores available; record
  // them so consumers can judge the speedup columns.
  std::fprintf(f, "  \"hardware_threads\": %u,\n", hardware);
  std::fprintf(f, "  \"train_weights_identical_linear\": %s,\n",
               train_linear_identical ? "true" : "false");
  std::fprintf(f, "  \"train_weights_identical_rbf\": %s,\n",
               train_rbf_identical ? "true" : "false");
  std::fprintf(f, "  \"cv_metrics_identical\": %s,\n",
               cv_identical ? "true" : "false");
  std::fprintf(f, "  \"transform_identical_across_workers\": %s,\n",
               transform_identical ? "true" : "false");
  std::fprintf(f,
               "  \"rff_transform\": {\"legacy_seconds\": %.6f, "
               "\"flat_seconds\": %.6f, \"speedup\": %.4f},\n",
               transform.legacy_seconds, transform.flat_seconds,
               transform.Speedup());
  std::fprintf(f, "  \"transform_scaling\": [\n");
  for (size_t i = 0; i < transform_scaling.size(); ++i) {
    const ScalePoint& p = transform_scaling[i];
    std::fprintf(f,
                 "    {\"workers\": %u, \"seconds\": %.6f, "
                 "\"speedup_vs_1\": %.4f}%s\n",
                 p.workers, p.seconds,
                 p.seconds > 0 ? transform_scaling.front().seconds / p.seconds
                               : 0.0,
                 i + 1 < transform_scaling.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"train_linear\": {\"legacy_seconds\": %.6f, "
               "\"flat_seconds\": %.6f, \"speedup\": %.4f},\n",
               train_linear.legacy_seconds, train_linear.flat_seconds,
               train_linear.Speedup());
  std::fprintf(f,
               "  \"train_rbf\": {\"legacy_seconds\": %.6f, "
               "\"flat_seconds\": %.6f, \"speedup\": %.4f},\n",
               train_rbf.legacy_seconds, train_rbf.flat_seconds,
               train_rbf.Speedup());
  std::fprintf(f, "  \"cv_legacy_seconds\": %.6f,\n", cv_legacy_seconds);
  std::fprintf(f, "  \"cv_scaling\": [\n");
  for (size_t i = 0; i < cv_scaling.size(); ++i) {
    const ScalePoint& p = cv_scaling[i];
    std::fprintf(f,
                 "    {\"workers\": %u, \"seconds\": %.6f, "
                 "\"speedup_vs_legacy\": %.4f}%s\n",
                 p.workers, p.seconds,
                 p.seconds > 0 ? cv_legacy_seconds / p.seconds : 0.0,
                 i + 1 < cv_scaling.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"ablation_sweep\": {\"specs\": %zu, \"legacy_seconds\": "
               "%.6f, \"flat_seconds\": %.6f, \"speedup\": %.4f}\n",
               sweep.size(), sweep_legacy_seconds, sweep_flat_seconds,
               sweep_flat_seconds > 0
                   ? sweep_legacy_seconds / sweep_flat_seconds
                   : 0.0);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_training.json\n");
  benchmark::Shutdown();
  return 0;
}
