// Contextual-advertising example (the paper's first motivating
// application, Section I-A).
//
// "Contextual advertising systems ... first attempt to discover the
// relevant keywords in a document, and then find the ads that best match
// the set of keywords. It has been shown that reducing a document to a
// small set of key concepts can improve performance of such systems by
// decreasing their overall latency without a loss in relevance."
//
// This example builds a small ad inventory keyed on concepts, then matches
// pages two ways: (a) against every detected entity, and (b) against only
// the ranker's top-3 key concepts. It reports the latency saved and the
// quality of the ads selected (via the world's latent relevance), showing
// the paper's claimed effect: fewer, better keywords -> faster matching
// without losing ad relevance.
#include <chrono>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "core/contextual_ranker.h"
#include "corpus/doc_generator.h"

namespace {

using namespace ckr;

struct Ad {
  std::string keyword;  ///< Targeted concept key.
  std::string copy;     ///< Creative.
};

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  ContextualRankerOptions options;
  options.pipeline = PipelineConfig::SmallForTests();
  std::printf("Training the ranking stack...\n");
  auto ranker_or = ContextualRanker::Train(options);
  if (!ranker_or.ok()) {
    std::fprintf(stderr, "Train failed: %s\n",
                 ranker_or.status().ToString().c_str());
    return 1;
  }
  const ContextualRanker& ranker = **ranker_or;
  const World& world = ranker.pipeline().world();

  // Ad inventory: one campaign per sufficiently popular concept.
  std::unordered_map<std::string, Ad> inventory;
  for (const Entity& e : world.entities()) {
    if (e.is_generic || e.popularity < 0.25) continue;
    inventory[e.key] = {e.key, "Great deals related to " + e.surface + "!"};
  }
  std::printf("ad inventory: %zu campaigns\n\n", inventory.size());

  DocGenerator gen(world);
  const DocId kPages = 60;

  // Strategy A: match ads against every detected entity.
  // Strategy B: match against the top-3 key concepts only.
  double naive_seconds = 0, ranked_seconds = 0;
  double naive_quality = 0, ranked_quality = 0;
  size_t naive_ads = 0, ranked_ads = 0;
  for (DocId i = 0; i < kPages; ++i) {
    Document page = gen.Generate(Document::Kind::kNews, 2718281 + i);

    auto match_quality = [&](const std::string& key) {
      EntityId id = world.FindByKey(key);
      return id == kInvalidEntity ? 0.0 : page.TruthRelevance(id);
    };

    {
      auto t0 = std::chrono::steady_clock::now();
      auto detections = ranker.pipeline().detector().Detect(page.text);
      std::unordered_set<std::string> seen;
      double best = 0;
      size_t matched = 0;
      for (const Detection& d : detections) {
        if (d.type == EntityType::kPattern) continue;
        if (!seen.insert(d.key).second) continue;
        auto it = inventory.find(d.key);
        if (it == inventory.end()) continue;
        ++matched;
        best = std::max(best, match_quality(d.key));
      }
      naive_seconds += Seconds(t0);
      naive_ads += matched;
      naive_quality += best;
    }
    {
      auto t0 = std::chrono::steady_clock::now();
      auto top = ranker.Rank(page.text, 3);
      double best = 0;
      size_t matched = 0;
      for (const auto& a : top) {
        auto it = inventory.find(a.key);
        if (it == inventory.end()) continue;
        ++matched;
        best = std::max(best, match_quality(a.key));
      }
      ranked_seconds += Seconds(t0);
      ranked_ads += matched;
      ranked_quality += best;
    }
  }

  std::printf("=== matching every detected entity (naive) ===\n");
  std::printf("  candidate ads considered: %zu (%.1f per page)\n", naive_ads,
              static_cast<double>(naive_ads) / kPages);
  std::printf("  best-ad relevance (latent): %.3f\n", naive_quality / kPages);
  std::printf("\n=== matching only the top-3 key concepts ===\n");
  std::printf("  candidate ads considered: %zu (%.1f per page)\n", ranked_ads,
              static_cast<double>(ranked_ads) / kPages);
  std::printf("  best-ad relevance (latent): %.3f\n", ranked_quality / kPages);
  std::printf("\ncandidate reduction: %.0f%% with %.0f%% of the naive "
              "strategy's ad relevance retained\n",
              100.0 * (1.0 - static_cast<double>(ranked_ads) /
                                 static_cast<double>(naive_ads)),
              100.0 * ranked_quality / std::max(1e-9, naive_quality));
  std::printf("(the paper's point: a small set of key concepts preserves "
              "relevance while shrinking the matching workload)\n");
  return 0;
}
