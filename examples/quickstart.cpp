// Quickstart: build the system at a reduced scale, train the ranker, and
// rank the key concepts of a fresh news story.
//
// Demonstrates the three layers of the public API:
//   1. ContextualRanker::Train — offline phase (world, mining, learning);
//   2. ContextualRanker::Rank — the Section VI production runtime;
//   3. ExperimentRunner — the paper's evaluation harness.
#include <cstdio>

#include "core/contextual_ranker.h"
#include "core/experiment.h"
#include "corpus/doc_generator.h"

int main() {
  ckr::ContextualRankerOptions options;
  options.pipeline = ckr::PipelineConfig::SmallForTests();  // Snappy demo.

  std::printf("Training ContextualRanker (reduced scale)...\n");
  auto ranker_or = ckr::ContextualRanker::Train(options);
  if (!ranker_or.ok()) {
    std::fprintf(stderr, "Train failed: %s\n",
                 ranker_or.status().ToString().c_str());
    return 1;
  }
  const ckr::ContextualRanker& ranker = **ranker_or;
  const ckr::ClickDataset& ds = ranker.dataset();
  std::printf("dataset: %zu stories, %zu windows, %zu instances, "
              "%zu distinct concepts, %llu clicks\n",
              ds.surviving_stories.size(), ds.num_windows,
              ds.instances.size(), ds.num_distinct_concepts,
              static_cast<unsigned long long>(ds.total_clicks));

  // Rank a brand-new story (not part of the training traffic).
  ckr::DocGenerator gen(ranker.pipeline().world());
  ckr::Document story = gen.Generate(ckr::Document::Kind::kNews, 999983);
  auto ranked = ranker.Rank(story.text, /*top_n=*/5);
  std::printf("\nTop concepts of a fresh story (topic %d):\n", story.topic);
  for (const auto& a : ranked) {
    std::printf("  %-32s score=%8.3f [%s]\n", a.key.c_str(), a.score,
                std::string(ckr::EntityTypeName(a.type)).c_str());
  }

  // Reproduce the headline comparison on this small world.
  ckr::ExperimentRunner runner(ds);
  auto print = [](const char* name, const ckr::EvalResult& r) {
    std::printf("  %-28s weighted-error=%6.2f%%  ndcg@1=%.3f @2=%.3f @3=%.3f\n",
                name, 100.0 * r.weighted_error_rate, r.ndcg[0], r.ndcg[1],
                r.ndcg[2]);
  };
  std::printf("\nEvaluation (5-fold CV where applicable):\n");
  print("random", runner.EvaluateRandom());
  print("concept vector (baseline)", runner.EvaluateBaseline());
  ckr::ModelSpec interest;
  auto r_interest = runner.EvaluateModelCV(interest);
  if (r_interest.ok()) print("interestingness model", *r_interest);
  print("relevance only (snippets)",
        runner.EvaluateRelevanceOnly(ckr::RelevanceResource::kSnippets));
  ckr::ModelSpec combined;
  combined.include_relevance = true;
  combined.tie_break_relevance = true;
  auto r_combined = runner.EvaluateModelCV(combined);
  if (r_combined.ok()) print("interestingness + relevance", *r_combined);

  ckr::ModelSpec interest_rbf;
  interest_rbf.svm.kernel = ckr::SvmKernel::kRbfFourier;
  auto r_irbf = runner.EvaluateModelCV(interest_rbf);
  if (r_irbf.ok()) print("interestingness (rbf)", *r_irbf);
  ckr::ModelSpec combined_rbf = combined;
  combined_rbf.svm.kernel = ckr::SvmKernel::kRbfFourier;
  auto r_crbf = runner.EvaluateModelCV(combined_rbf);
  if (r_crbf.ok()) print("combined (rbf)", *r_crbf);
  return 0;
}
