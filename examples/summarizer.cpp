// Key-concept summarization example (the paper's second motivating
// application, Section I-A: snippet generation for search results and
// small-screen devices).
//
// Summarizes a document by (1) extracting its ranked key concepts and
// (2) selecting the sentences that cover the most key-concept mass —
// a classic concept-driven extractive summarizer built entirely on the
// library's public API (ranker + sentence boundary detection).
//
// Usage: summarizer [num_sentences]   (default 3)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "core/contextual_ranker.h"
#include "corpus/doc_generator.h"
#include "text/sentence.h"

int main(int argc, char** argv) {
  size_t num_sentences =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 3;

  ckr::ContextualRankerOptions options;
  options.pipeline = ckr::PipelineConfig::SmallForTests();
  std::printf("Training the ranking stack...\n");
  auto ranker_or = ckr::ContextualRanker::Train(options);
  if (!ranker_or.ok()) {
    std::fprintf(stderr, "Train failed: %s\n",
                 ranker_or.status().ToString().c_str());
    return 1;
  }
  const ckr::ContextualRanker& ranker = **ranker_or;

  ckr::DocGenerator gen(ranker.pipeline().world());
  ckr::Document story = gen.Generate(ckr::Document::Kind::kNews, 16180339);
  std::printf("document: %zu characters, topic %d\n\n", story.text.size(),
              story.topic);

  // Step 1: ranked key concepts with their occurrence spans.
  auto ranked = ranker.Rank(story.text);
  std::printf("key concepts:");
  for (size_t i = 0; i < std::min<size_t>(5, ranked.size()); ++i) {
    std::printf(" [%s]", ranked[i].key.c_str());
  }
  std::printf("\n\n");

  // Step 2: score sentences by the rank-discounted key-concept mass they
  // cover; emit the top ones in document order.
  std::vector<ckr::TextSpan> sentences = ckr::DetectSentences(story.text);
  std::vector<double> scores(sentences.size(), 0.0);
  for (size_t r = 0; r < ranked.size(); ++r) {
    double weight = 1.0 / static_cast<double>(r + 1);
    for (size_t s = 0; s < sentences.size(); ++s) {
      if (ranked[r].begin >= sentences[s].begin &&
          ranked[r].end <= sentences[s].end) {
        scores[s] += weight;
      }
    }
  }
  std::vector<size_t> order(sentences.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  if (order.size() > num_sentences) order.resize(num_sentences);
  std::sort(order.begin(), order.end());  // Restore document order.

  std::printf("summary (%zu of %zu sentences):\n", order.size(),
              sentences.size());
  for (size_t idx : order) {
    std::string sentence = story.text.substr(sentences[idx].begin,
                                             sentences[idx].size());
    for (char& c : sentence) {
      if (c == '\n') c = ' ';
    }
    std::printf("  * %s\n", sentence.c_str());
  }
  return 0;
}
