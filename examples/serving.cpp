// Serving example: the production deployment path.
//
// Offline box: train the system and export the StorePack artifact (model +
// Global TID table + quantized interestingness vectors + packed relevant
// terms). Serving box: load the pack, build a RuntimeRanker next to the
// (separately provisioned) entity dictionaries, and serve documents —
// here with the Section-VIII online CTR tracker attached, so live click
// feedback keeps adjusting the ranking between requests.
#include <cstdio>
#include <string>

#include "core/contextual_ranker.h"
#include "corpus/doc_generator.h"
#include "framework/store_pack.h"
#include "online/ctr_tracker.h"

int main() {
  // ---- Offline: train and export the artifact ----
  ckr::ContextualRankerOptions options;
  options.pipeline = ckr::PipelineConfig::SmallForTests();
  std::printf("[offline] training...\n");
  auto trained_or = ckr::ContextualRanker::Train(options);
  if (!trained_or.ok()) {
    std::fprintf(stderr, "train: %s\n",
                 trained_or.status().ToString().c_str());
    return 1;
  }
  const ckr::ContextualRanker& trained = **trained_or;
  std::string path = "/tmp/ckr_store_pack.bin";
  {
    std::string blob = trained.SerializePack();
    auto pack = ckr::StorePack::Deserialize(blob);
    if (!pack.ok() || !pack->SaveToFile(path).ok()) {
      std::fprintf(stderr, "pack export failed\n");
      return 1;
    }
    std::printf("[offline] exported %zu-byte store pack to %s\n",
                blob.size(), path.c_str());
  }

  // ---- Serving: load the artifact and serve ----
  auto pack_or = ckr::StorePack::LoadFromFile(path);
  if (!pack_or.ok()) {
    std::fprintf(stderr, "load: %s\n", pack_or.status().ToString().c_str());
    return 1;
  }
  const ckr::StorePack& pack = *pack_or;
  std::printf("[serving] loaded pack: %zu concepts, %zu terms in the TID "
              "table\n",
              pack.interestingness.NumConcepts(), pack.tids->size());

  ckr::RuntimeRanker server(trained.pipeline().detector(),
                            pack.interestingness, *pack.relevance,
                            *pack.tids, pack.model);
  ckr::CtrTracker live_feedback;
  server.SetOnlineTracker(&live_feedback);

  // Serve a few requests, feeding simulated click telemetry back in
  // between (one Tick per batch).
  ckr::DocGenerator gen(trained.pipeline().world());
  ckr::RuntimeStats stats;
  for (int batch = 0; batch < 3; ++batch) {
    std::printf("\n[serving] batch %d\n", batch);
    for (ckr::DocId i = 0; i < 3; ++i) {
      ckr::Document doc = gen.Generate(ckr::Document::Kind::kNews,
                                       910000 + batch * 100 + i);
      auto ranked = server.ProcessDocument(doc.text, &stats);
      std::printf("  doc %u: %zu annotations, top:", doc.id, ranked.size());
      for (size_t k = 0; k < std::min<size_t>(3, ranked.size()); ++k) {
        std::printf(" [%s]", ranked[k].key.c_str());
      }
      std::printf("\n");
      // Telemetry: pretend each annotation was shown 100 times and the
      // top one clicked more.
      for (size_t k = 0; k < ranked.size(); ++k) {
        live_feedback.Record(ranked[k].key, 100, k == 0 ? 8 : 1);
      }
    }
    live_feedback.Tick();
  }
  std::printf("\n[serving] throughput: stemmer %.1f MB/s, ranker %.1f MB/s "
              "over %llu docs\n",
              stats.StemmerMBps(), stats.RankerMBps(),
              static_cast<unsigned long long>(stats.documents));
  std::remove(path.c_str());
  return 0;
}
