// News-annotation example: the Contextual Shortcuts user experience.
//
// Takes a generated news story (optionally wrapped in HTML), runs the full
// detection + ranking stack, keeps only the top-N key concepts (the
// production policy of Section V-C), and renders the annotated story with
// [[shortcut]] markers plus an "overlay card" per annotation — the kind of
// content a click on a Shortcut would open (type, taxonomy subtype, geo
// metadata for places, a wiki blurb for notable entities).
//
// Usage: news_annotation [top_n]   (default 5)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/contextual_ranker.h"
#include "corpus/doc_generator.h"
#include "text/html.h"
#include "wiki/wiki_store.h"

namespace {

// Inserts [[ ]] markers around the annotated spans (descending offset so
// earlier offsets stay valid).
std::string Annotate(const std::string& text,
                     std::vector<ckr::RankedAnnotation> annotations) {
  std::sort(annotations.begin(), annotations.end(),
            [](const ckr::RankedAnnotation& a, const ckr::RankedAnnotation& b) {
              return a.begin > b.begin;
            });
  std::string out = text;
  for (const auto& a : annotations) {
    out.insert(a.end, "]]");
    out.insert(a.begin, "[[");
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  size_t top_n = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 5;

  ckr::ContextualRankerOptions options;
  options.pipeline = ckr::PipelineConfig::SmallForTests();
  std::printf("Training the annotation stack...\n");
  auto ranker_or = ckr::ContextualRanker::Train(options);
  if (!ranker_or.ok()) {
    std::fprintf(stderr, "Train failed: %s\n",
                 ranker_or.status().ToString().c_str());
    return 1;
  }
  const ckr::ContextualRanker& ranker = **ranker_or;
  const ckr::World& world = ranker.pipeline().world();

  // A fresh story, delivered as HTML like a real news page.
  ckr::DocGenerator gen(world);
  ckr::Document story = gen.Generate(ckr::Document::Kind::kNews, 31415926);
  std::string html = "<html><body><p>" + ckr::EscapeHtml(story.text) +
                     "</p><script>track();</script></body></html>";

  // Pre-processing: strip the HTML before detection (paper Section II).
  std::string plain = ckr::StripHtml(html);
  auto ranked = ranker.Rank(plain, top_n);

  std::printf("\n===== Annotated story (top %zu shortcuts) =====\n\n", top_n);
  std::string annotated = Annotate(plain, ranked);
  // Show the first ~1200 characters to keep the demo readable.
  std::printf("%.1200s%s\n", annotated.c_str(),
              annotated.size() > 1200 ? " ..." : "");

  std::printf("\n===== Shortcut overlays =====\n");
  ckr::WikiStore wiki =
      ckr::WikiStore::Build(world, options.pipeline.world.seed ^ 0x817ac1e);
  for (const auto& a : ranked) {
    std::printf("\n[[%s]]  score=%.2f\n", a.key.c_str(), a.score);
    ckr::EntityId id = world.FindByKey(a.key);
    if (id == ckr::kInvalidEntity) {
      std::printf("  query-log concept (no editorial record); would show "
                  "web search results\n");
      continue;
    }
    const ckr::Entity& e = world.entity(id);
    std::printf("  type: %s / %s\n",
                std::string(ckr::EntityTypeName(e.type)).c_str(),
                e.type == ckr::EntityType::kConcept
                    ? "query_unit"
                    : world.taxonomy()
                          .Subtypes(e.type)[static_cast<size_t>(e.subtype)]
                          .c_str());
    if (e.type == ckr::EntityType::kPlace) {
      std::printf("  map: lat=%.3f lon=%.3f\n", e.latitude, e.longitude);
    }
    uint32_t words = wiki.ArticleWordCount(e.key);
    if (words > 0) {
      std::string blurb = wiki.ArticleText(world, e.key).substr(0, 120);
      std::printf("  wiki (%u words): %s...\n", words, blurb.c_str());
    } else {
      std::printf("  no encyclopedia entry; would show news results\n");
    }
  }
  return 0;
}
