// ckr_serve — operator CLI for the sharded serving daemon.
//
// Builds a scaled synthetic corpus, partitions it into doc-range shards,
// starts the daemon, replays a deterministic load-generator workload
// against it (closed loop), optionally hot-swaps a freshly built
// generation mid-run, and prints the serving telemetry: outcome counts,
// queue/latency percentiles, throughput.
//
//   ckr_serve [--docs N] [--shards N] [--workers N] [--clients N]
//             [--requests N] [--k N] [--queue N] [--seed S] [--swap]
//
// Exit 0 on success, 1 on build/serve failure, 2 on usage error.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "corpus/document.h"
#include "corpus/world.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "search/search_service.h"
#include "serve/load_gen.h"
#include "serve/server.h"
#include "serve/sharded_index.h"
#include "serve/snapshot.h"

namespace {

struct Options {
  uint64_t docs = 20000;
  size_t shards = 4;
  unsigned workers = 2;
  unsigned clients = 2;
  uint64_t requests = 2000;
  size_t k = 10;
  size_t queue = 1024;
  uint64_t seed = 20090331;
  bool swap = false;
};

bool ParseUint(const char* s, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: ckr_serve [--docs N] [--shards N] [--workers N] "
               "[--clients N] [--requests N] [--k N] [--queue N] [--seed S] "
               "[--swap]\n");
  return 2;
}

std::unique_ptr<ckr::ServingSnapshot> BuildSnapshot(const ckr::World& world,
                                                    const Options& opt) {
  ckr::ShardedIndexConfig config;
  config.num_shards = opt.shards;
  config.build.store_text = false;
  config.build.build_block_index = true;
  auto sharded = ckr::ShardedIndex::Build(world, ckr::Document::Kind::kWeb,
                                          opt.docs, config);
  if (!sharded.ok()) {
    std::fprintf(stderr, "ckr_serve: build failed: %s\n",
                 sharded.status().message().c_str());
    return nullptr;
  }
  auto snapshot =
      std::make_unique<ckr::ServingSnapshot>(std::move(sharded).value());
  snapshot->evaluator =
      ckr::ChooseEvaluator(snapshot->index.MaxShardDocs(),
                           snapshot->index.shard(0).has_block_index());
  return snapshot;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    uint64_t v = 0;
    if (arg == "--swap") {
      opt.swap = true;
    } else if (i + 1 < argc && ParseUint(argv[i + 1], &v)) {
      ++i;
      if (arg == "--docs") {
        opt.docs = v;
      } else if (arg == "--shards") {
        opt.shards = static_cast<size_t>(v);
      } else if (arg == "--workers") {
        opt.workers = static_cast<unsigned>(v);
      } else if (arg == "--clients") {
        opt.clients = static_cast<unsigned>(v);
      } else if (arg == "--requests") {
        opt.requests = v;
      } else if (arg == "--k") {
        opt.k = static_cast<size_t>(v);
      } else if (arg == "--queue") {
        opt.queue = static_cast<size_t>(v);
      } else if (arg == "--seed") {
        opt.seed = v;
      } else {
        return Usage();
      }
    } else {
      return Usage();
    }
  }
  if (opt.docs == 0 || opt.shards == 0 || opt.workers == 0 ||
      opt.clients == 0) {
    return Usage();
  }

  std::printf("ckr_serve: building %llu-doc world, %zu shards...\n",
              static_cast<unsigned long long>(opt.docs), opt.shards);
  auto world_or = ckr::World::Create(ckr::ScaledWorldConfig(
      static_cast<size_t>(opt.docs), opt.seed));
  if (!world_or.ok()) {
    std::fprintf(stderr, "ckr_serve: world: %s\n",
                 world_or.status().message().c_str());
    return 1;
  }
  const std::unique_ptr<ckr::World> world = std::move(world_or).value();

  ckr::obs::MetricRegistry metrics;
  ckr::ServeDaemonConfig daemon_config;
  daemon_config.num_workers = opt.workers;
  daemon_config.queue_capacity = opt.queue;
  daemon_config.metrics = &metrics;
  ckr::ServeDaemon daemon(daemon_config);

  auto snapshot = BuildSnapshot(*world, opt);
  if (snapshot == nullptr) return 1;
  const char* evaluator_name =
      snapshot->evaluator == ckr::QueryEvaluator::kExhaustive ? "exhaustive"
                                                              : "maxscore";
  daemon.Publish(std::move(snapshot));
  if (!daemon.Start().ok()) {
    std::fprintf(stderr, "ckr_serve: daemon failed to start\n");
    return 1;
  }

  ckr::LoadGenConfig load_config;
  load_config.seed = opt.seed;
  load_config.top_k = opt.k;
  const ckr::LoadGenerator gen(*world, load_config);

  std::printf(
      "ckr_serve: %llu requests, %u clients, %u workers, evaluator=%s%s\n",
      static_cast<unsigned long long>(opt.requests), opt.clients, opt.workers,
      evaluator_name, opt.swap ? ", swap mid-run" : "");

  const ckr::Clock& wall = ckr::RealClock();
  const int64_t start_nanos = wall.NowNanos();
  std::atomic<uint64_t> answered{0};

  std::thread publisher;
  if (opt.swap) {
    publisher = std::thread([&] {
      auto next = BuildSnapshot(*world, opt);
      if (next == nullptr) return;
      while (answered.load(std::memory_order_acquire) < opt.requests / 2) {
        std::this_thread::yield();
      }
      daemon.Publish(std::move(next));
    });
  }

  std::vector<std::thread> clients;
  for (unsigned c = 0; c < opt.clients; ++c) {
    clients.emplace_back([&, c] {
      for (uint64_t i = c; i < opt.requests; i += opt.clients) {
        const ckr::LoadRequest load = gen.Request(i);
        ckr::ServeRequest request;
        request.id = i;
        request.query = load.query;
        request.k = load_config.top_k;
        std::atomic<bool> done{false};
        request.done = [&](ckr::ServeResponse&&) {
          answered.fetch_add(1, std::memory_order_relaxed);
          done.store(true, std::memory_order_release);
        };
        (void)daemon.Submit(std::move(request));
        // Closed loop: wait for this request before issuing the next.
        while (!done.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  if (publisher.joinable()) publisher.join();
  const double elapsed = wall.SecondsSince(start_nanos);
  daemon.Stop();

  const auto counter = [&](const char* name) {
    return static_cast<unsigned long long>(metrics.GetCounter(name)->Value());
  };
  ckr::obs::Histogram* latency = metrics.GetHistogram("ckr.serve.latency_seconds");
  ckr::obs::Histogram* queueh = metrics.GetHistogram("ckr.serve.queue_seconds");
  std::printf("\n  outcome counts\n");
  std::printf("    completed        %10llu\n", counter("ckr.serve.completed"));
  std::printf("    partial          %10llu\n", counter("ckr.serve.partial"));
  std::printf("    shed_queue_full  %10llu\n",
              counter("ckr.serve.shed_queue_full"));
  std::printf("    shed_deadline    %10llu\n",
              counter("ckr.serve.shed_deadline"));
  std::printf("    snapshot_swaps   %10llu\n",
              counter("ckr.serve.snapshot_swaps"));
  std::printf("  latency  p50 %8.1f us   p99 %8.1f us   p999 %8.1f us\n",
              latency->Percentile(0.5) * 1e6, latency->Percentile(0.99) * 1e6,
              latency->Percentile(0.999) * 1e6);
  std::printf("  queueing p50 %8.1f us   p99 %8.1f us   p999 %8.1f us\n",
              queueh->Percentile(0.5) * 1e6, queueh->Percentile(0.99) * 1e6,
              queueh->Percentile(0.999) * 1e6);
  std::printf("  %.2f s wall, %.0f req/s, live generations %lld\n", elapsed,
              static_cast<double>(opt.requests) / elapsed,
              static_cast<long long>(daemon.LiveGenerations()));
  return 0;
}
