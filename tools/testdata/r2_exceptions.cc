// Fixture: exception constructs R2 bans inside src/.
// Linted under the virtual path src/r2_exceptions.cc.
#include <stdexcept>

int Parse(int x) {
  if (x < 0) {
    throw std::runtime_error("negative");  // line 7: throw
  }
  try {  // line 9: try
    return x + 1;
  } catch (const std::exception&) {  // line 11: catch
    return 0;
  }
}
