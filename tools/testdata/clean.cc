// Fixture: idiomatic repo code that must produce zero violations,
// including near-miss identifiers the token-level rules must not trip on.
// Linted under the virtual path src/clean.cc.
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"

namespace fixture {

// Substrings of banned names inside identifiers are fine.
int operand(int x) { return x + 1; }
int strand_count(const std::string& strand) {
  return static_cast<int>(strand.size());
}

// "rand(" inside a comment or string must not fire: rand() is text here.
const char* kDoc = "call rand() never";

class Catalog {
 public:
  [[nodiscard]] Status Open(const std::string& path);
  [[nodiscard]] ckr::StatusOr<uint32_t> Lookup(const std::string& key) const;

  std::vector<uint32_t> DumpSorted() const {
    std::vector<uint32_t> out;
    for (const auto& [key, id] : sorted_) {  // ordered map: fine
      out.push_back(id);
    }
    return out;
  }

 private:
  std::map<std::string, uint32_t> sorted_;
  std::unordered_map<std::string, uint32_t> index_;  // lookups only: fine
};

}  // namespace fixture
