// R7 fixture: atomic operations must name an explicit std::memory_order.
// Linted under a virtual src/ path.
#include <atomic>

namespace fixture {

// ckr-lint: allow-file(R6)
std::atomic<int> cell{0};

int BareLoad() { return cell.load(); }           // R7: implicit seq_cst.
void BareStore(int v) { cell.store(v); }         // R7.
int BareRmw() { return cell.fetch_add(1); }      // R7.
bool BareCas(int want) {
  int expected = 0;
  return cell.compare_exchange_strong(expected, want);  // R7.
}

int GoodLoad() { return cell.load(std::memory_order_acquire); }
void GoodStore(int v) { cell.store(v, std::memory_order_release); }
int GoodRmw() { return cell.fetch_add(1, std::memory_order_relaxed); }
bool GoodCas(int want) {
  int expected = 0;
  return cell.compare_exchange_strong(expected, want,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire);
}

// ckr-lint: seqcst
int IntendedSeqCst() { return cell.load(); }     // Waived: clean.

struct Pantry {
  int store() const { return 7; }                // Not an atomic op.
};
// An argument-less .store() can only be an accessor (the atomic one
// always takes a value): clean.
int ViaAccessor(const Pantry& p) { return p.store(); }

}  // namespace fixture
