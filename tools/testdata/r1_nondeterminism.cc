// Fixture: every R1 nondeterminism source the linter must flag.
// Linted by ckr_lint_test under the virtual path src/r1_nondeterminism.cc.
#include <chrono>
#include <cstdlib>
#include <random>

int UnseededRand() {
  return rand();  // line 8: rand()
}

int QualifiedRand() {
  return std::rand();  // line 12: std::rand()
}

void SeedFromTime() {
  srand(42);  // line 16: srand
}

unsigned HardwareEntropy() {
  std::random_device rd;  // line 20: random_device
  return rd();
}

double WallClock() {
  auto t = std::chrono::steady_clock::now();  // line 25: clock now()
  auto s = std::chrono::system_clock::now();  // line 26: clock now()
  return std::chrono::duration<double>(t.time_since_epoch()).count() +
         std::chrono::duration<double>(s.time_since_epoch()).count();
}
