// Fixture: every suppression form silences its rule.
// Linted under the virtual path src/suppressed.cc.
// ckr-lint: allow-file(R5)
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/binary_io.h"

namespace fixture {

double StatsClock() {
  auto t = std::chrono::steady_clock::now();  // ckr-lint: allow(R1) timing
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

double StatsClockAnnotatedAbove() {
  // ckr-lint: allow(R1) standalone annotation covers the next line
  auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

std::vector<uint32_t> DumpCounts(
    const std::unordered_map<std::string, uint32_t>& counts) {
  std::vector<uint32_t> out;
  uint64_t total = 0;
  for (const auto& [key, n] : counts) {  // ckr-lint: ordered
    total += n;
  }
  out.push_back(static_cast<uint32_t>(total));
  return out;
}

void LegacyCopy(char* dst, const char* src) {
  strcpy(dst, src);  // silenced by the file-level allow-file(R5)
}

class Guarded {
 public:
  int Peek() const { return cell_.load(std::memory_order_relaxed); }
  // ckr-lint: seqcst
  int PeekSeqCst() const { return cell_.load(); }

 private:
  // ckr-lint: unguarded(monotonic stat cell; relaxed reads suffice)
  std::atomic<int> cell_{0};
};

}  // namespace fixture
