// R8 fixture: nested scoped-lock acquisitions against the declared
// hierarchy. The chain is declared across two comments, so the inversion
// between its endpoints is only visible through the transitive closure.
#include <mutex>

// ckr-lock-order: fine_mu < mid_mu
// ckr-lock-order: mid_mu < coarse_mu

namespace fixture {

class Pair {
 public:
  void Ascending() {
    std::lock_guard<std::mutex> fine(fine_mu);
    std::lock_guard<std::mutex> coarse(coarse_mu);  // In order: clean.
  }
  void Inverted() {
    std::lock_guard<std::mutex> coarse(coarse_mu);
    std::lock_guard<std::mutex> fine(fine_mu);      // R8 (transitive).
  }
  void InvertedAdjacent() {
    std::unique_lock<std::mutex> mid(mid_mu);
    MutexLock fine(&fine_mu);                       // R8 (direct edge).
  }
  void Sequential() {
    {
      std::lock_guard<std::mutex> coarse(coarse_mu);
    }
    std::lock_guard<std::mutex> fine(fine_mu);      // Released: clean.
  }
  void OutsideTheHierarchy() {
    std::lock_guard<std::mutex> other(other_mu);
    std::lock_guard<std::mutex> fine(fine_mu);      // Undeclared: clean.
  }

 private:
  // ckr-lint: unguarded(fixture lock)
  std::mutex fine_mu;
  // ckr-lint: unguarded(fixture lock)
  std::mutex mid_mu;
  // ckr-lint: unguarded(fixture lock)
  std::mutex coarse_mu;
  // ckr-lint: unguarded(fixture lock)
  std::mutex other_mu;
};

}  // namespace fixture
