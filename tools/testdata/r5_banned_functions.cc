// Fixture: banned C functions.
// Linted under the virtual path src/r5_banned_functions.cc.
#include <cstdio>
#include <cstdlib>
#include <cstring>

void Copy(char* dst, const char* src) {
  strcpy(dst, src);  // line 8: strcpy
}

void Format(char* buf, int x) {
  sprintf(buf, "%d", x);  // line 12: sprintf
}

int ParseInt(const char* s) {
  return atoi(s);  // line 16: atoi
}

int QualifiedParse(const char* s) {
  return std::atoi(s);  // line 20: std::atoi
}
