// Signature-prefilter fixture: the three mistakes the doc_signature
// module must never make — nondeterministic bit positions (R1),
// undisciplined shared counters (R6), and an implicit seq_cst on the
// rejection tally (R7). Linted under the module's own virtual
// src/index/ path so a rule regression that un-covers the signature
// code fails this test instead of slipping through review.
#include <atomic>
#include <cstdlib>
#include <vector>

namespace fixture {

class BadSignatureMatrix {
 public:
  unsigned BitPosition(unsigned tid) const {
    return (tid * static_cast<unsigned>(rand())) % bits_;  // R1: rand().
  }
  void RecordRejection() { rejected_.fetch_add(1); }  // R7: implicit order.

 private:
  unsigned bits_ = 256;
  std::vector<unsigned long long> pool_;
  std::atomic<unsigned long long> rejected_{0};  // R6: bare atomic member.
};

}  // namespace fixture
