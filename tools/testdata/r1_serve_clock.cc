// Fixture: a serving-path file that reads the wall clock directly instead
// of going through the injected ckr::Clock. Deadlines and latency
// accounting in src/serve must be testable with a fake clock, so a raw
// steady_clock::now() there is an R1 violation like anywhere else in src/.
#include <chrono>
#include <cstdint>

int64_t DeadlineFromNow(int64_t budget_nanos) {
  const auto now = std::chrono::steady_clock::now();  // line 9: R1
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             now.time_since_epoch())
             .count() +
         budget_nanos;
}
