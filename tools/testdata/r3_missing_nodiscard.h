// Fixture: Status-returning declarations with and without [[nodiscard]].
// Linted under the virtual path src/r3_missing_nodiscard.h.
#ifndef CKR_TOOLS_TESTDATA_R3_MISSING_NODISCARD_H_
#define CKR_TOOLS_TESTDATA_R3_MISSING_NODISCARD_H_

#include <string>

#include "common/status.h"

namespace fixture {

class Store {
 public:
  Status Open(const std::string& path);  // line 14: missing [[nodiscard]]

  [[nodiscard]] Status Close();  // fine

  static StatusOr<Store> Load(const std::string& p);  // line 18: missing

  [[nodiscard]] static ckr::StatusOr<int> Count();  // fine

  virtual ckr::Status Flush();  // line 22: missing (virtual qualifier)

  bool ok() const;  // fine: not a Status return

 private:
  Status last_;  // fine: member variable, not a function
};

}  // namespace fixture

#endif  // CKR_TOOLS_TESTDATA_R3_MISSING_NODISCARD_H_
