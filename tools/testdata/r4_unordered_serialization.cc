// Fixture: hash-order iteration inside a serialization TU.
// Linted under the virtual path src/r4_unordered_serialization.cc.
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/binary_io.h"

namespace fixture {

struct Table {
  std::unordered_map<std::string, uint32_t> ids;
  std::unordered_set<uint32_t> live;
  std::map<std::string, uint32_t> sorted;
};

std::vector<uint32_t> Dump(const Table& t) {
  std::vector<uint32_t> out;
  for (const auto& [key, id] : t.ids) {  // line 22: hash order
    out.push_back(id);
  }
  for (uint32_t v : t.live) {  // line 25: hash order
    out.push_back(v);
  }
  for (const auto& [key, id] : t.sorted) {  // fine: ordered map
    out.push_back(id);
  }
  return out;
}

}  // namespace fixture
