// R6 fixture: synchronization-primitive members must declare their guard
// discipline. Linted under a virtual src/ path.
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

namespace fixture {

class Widget {
 public:
  int Get() const;
  void TakesAtomicParam(std::atomic<int>& cell);  // Parameter: clean.

 private:
  std::mutex mu_;                    // R6: raw mutex, no discipline.
  std::atomic<int> hits_{0};         // R6: bare atomic member.
  std::condition_variable_any cv_;   // R6: bare condvar member.
  // ckr-lint: unguarded(fixture: primed before any reader thread exists)
  std::atomic<bool> primed_{false};  // Waived with a reason: clean.
  // ckr-lint: unguarded()
  std::atomic<int> unexcused_{0};    // R6: empty reason is no waiver.
  std::atomic<long> count_ CKR_GUARDED_BY(mu_){0};  // Annotated: clean.
  std::shared_ptr<std::atomic<int>> shared_;        // R6: nested atomic.
  int plain_ = 0;                    // Not a sync primitive: clean.
};

struct Pod {
  std::atomic<unsigned> seen{0};     // R6: structs are records too.
};

enum class Mode { kAtomic };         // "enum class" is not a record.

// Namespace scope is not a member declaration: clean (R6 is about
// members, whose guard relationship to a mutex must be stated).
std::atomic<int> process_wide{0};

using AtomicInt = std::atomic<int>;  // Alias, not a member: clean.

int Uses(Widget&) { return 0; }

}  // namespace fixture
