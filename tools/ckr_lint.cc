#include "tools/ckr_lint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iterator>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/parallel.h"
#include "common/string_util.h"

namespace ckr {
namespace lint {
namespace {

// ---------------------------------------------------------------------
// Token stream. Comments, string literals, and character literals are
// stripped during scanning (their content can never violate a rule), but
// comment text is inspected for ckr-lint suppression directives before
// being dropped.
// ---------------------------------------------------------------------

enum class TokKind { kIdent, kPunct };

struct Tok {
  TokKind kind;
  std::string text;
  int line;
};

/// Per-file suppression state gathered from ckr-lint comments, plus the
/// lock-order declarations found in this file's comments.
struct Suppressions {
  std::set<std::string> file_rules;                ///< allow-file(...)
  std::map<int, std::set<std::string>> line_rules; ///< line -> rules
  /// (first, second) pairs from lock-order declaration comments.
  std::vector<std::pair<std::string, std::string>> lock_edges;

  bool Allows(const std::string& rule, int line) const {
    if (file_rules.count(rule) != 0) return true;
    auto it = line_rules.find(line);
    return it != line_rules.end() && it->second.count(rule) != 0;
  }
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Parses an identifier chain "a < b < c" from a lock-order declaration
/// comment. Identifiers collected before the first malformed position
/// still count (a trailing rationale is tolerated); a chain needs at
/// least two names to declare anything.
void ParseLockOrderChain(std::string_view chain, Suppressions* sup) {
  std::vector<std::string> names;
  size_t p = 0;
  const size_t n = chain.size();
  auto skip_ws = [&] {
    while (p < n && (chain[p] == ' ' || chain[p] == '\t')) ++p;
  };
  while (true) {
    skip_ws();
    size_t s = p;
    while (p < n && IsIdentChar(chain[p])) ++p;
    if (p == s) break;
    names.emplace_back(chain.substr(s, p - s));
    skip_ws();
    if (p >= n || chain[p] != '<') break;
    ++p;
  }
  for (size_t i = 0; i + 1 < names.size(); ++i) {
    sup->lock_edges.emplace_back(names[i], names[i + 1]);
  }
}

/// Parses one comment body for a ckr-lint directive or a lock-order
/// declaration. `standalone` is true when the comment is the first thing
/// on its line, in which case the suppression also covers the following
/// line (annotation-above style).
void ParseDirective(std::string_view comment, int line, bool standalone,
                    Suppressions* sup) {
  size_t lo = comment.find("ckr-lock-order:");
  if (lo != std::string_view::npos) {
    ParseLockOrderChain(comment.substr(lo + 15), sup);
    return;
  }
  size_t at = comment.find("ckr-lint:");
  if (at == std::string_view::npos) return;
  std::string_view rest = comment.substr(at + 9);

  auto add_rules = [&](std::string_view list, bool whole_file) {
    for (const std::string& rule : SplitString(list, ", \t")) {
      if (whole_file) {
        sup->file_rules.insert(rule);
      } else {
        sup->line_rules[line].insert(rule);
        if (standalone) sup->line_rules[line + 1].insert(rule);
      }
    }
  };
  auto allow_one = [&](const char* rule) {
    sup->line_rules[line].insert(rule);
    if (standalone) sup->line_rules[line + 1].insert(rule);
  };

  size_t open;
  if ((open = rest.find("allow-file(")) != std::string_view::npos) {
    size_t close = rest.find(')', open);
    if (close != std::string_view::npos) {
      add_rules(rest.substr(open + 11, close - open - 11), true);
    }
  } else if ((open = rest.find("allow(")) != std::string_view::npos) {
    size_t close = rest.find(')', open);
    if (close != std::string_view::npos) {
      add_rules(rest.substr(open + 6, close - open - 6), false);
    }
  } else if ((open = rest.find("unguarded")) != std::string_view::npos) {
    // The waiver demands a justification: an absent or empty reason
    // leaves R6 in force, so "unguarded" can never be cargo-culted.
    size_t paren = rest.find('(', open);
    size_t close = rest.rfind(')');
    if (paren != std::string_view::npos && close != std::string_view::npos &&
        close > paren) {
      std::string_view reason = rest.substr(paren + 1, close - paren - 1);
      size_t a = reason.find_first_not_of(" \t");
      if (a != std::string_view::npos) allow_one("R6");
    }
  } else if (rest.find("seqcst") != std::string_view::npos) {
    allow_one("R7");
  } else if (rest.find("ordered") != std::string_view::npos) {
    allow_one("R4");
  }
}

/// Tokenizes C++ source. Multi-char punctuators that matter to the rules
/// ("::", "->", "[[", "]]") come out as single tokens; everything else is
/// one punct token per character.
std::vector<Tok> Tokenize(std::string_view src, Suppressions* sup) {
  std::vector<Tok> toks;
  int line = 1;
  size_t i = 0;
  const size_t n = src.size();
  // Tracks whether any token has been emitted on the current line, so a
  // directive comment knows if it stands alone.
  int last_tok_line = 0;

  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      size_t end = src.find('\n', i);
      if (end == std::string_view::npos) end = n;
      ParseDirective(src.substr(i, end - i), line,
                     /*standalone=*/last_tok_line != line, sup);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      size_t end = src.find("*/", i + 2);
      if (end == std::string_view::npos) end = n;
      ParseDirective(src.substr(i, end - i), line,
                     /*standalone=*/last_tok_line != line, sup);
      for (size_t j = i; j < std::min(end + 2, n); ++j) {
        if (src[j] == '\n') ++line;
      }
      i = std::min(end + 2, n);
      continue;
    }
    // Raw string literal (only the R"( form used in this tree).
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      size_t open = src.find('(', i + 2);
      if (open != std::string_view::npos) {
        std::string close = ")";
        close.append(src.substr(i + 2, open - (i + 2)));
        close.push_back('"');
        size_t end = src.find(close, open + 1);
        if (end == std::string_view::npos) end = n;
        for (size_t j = i; j < std::min(end + close.size(), n); ++j) {
          if (src[j] == '\n') ++line;
        }
        i = std::min(end + close.size(), n);
        continue;
      }
    }
    // String / character literal.
    if (c == '"' || c == '\'') {
      char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        if (src[i] == '\n') ++line;
        ++i;
      }
      ++i;  // Closing quote.
      continue;
    }
    // Identifier / keyword / number.
    if (IsIdentChar(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(src[i])) ++i;
      toks.push_back({TokKind::kIdent,
                      std::string(src.substr(start, i - start)), line});
      last_tok_line = line;
      continue;
    }
    // Multi-char punctuators the rules care about.
    auto two = src.substr(i, 2);
    if (two == "::" || two == "->" || two == "[[" || two == "]]") {
      toks.push_back({TokKind::kPunct, std::string(two), line});
      last_tok_line = line;
      i += 2;
      continue;
    }
    toks.push_back({TokKind::kPunct, std::string(1, c), line});
    last_tok_line = line;
    ++i;
  }
  return toks;
}

// ---------------------------------------------------------------------
// Rule checks over the token stream.
// ---------------------------------------------------------------------

struct Ctx {
  std::string_view path;
  FileKind kind;
  const std::vector<Tok>& toks;
  const Suppressions& sup;
  bool includes_binary_io;
  std::vector<Violation>* out;

  void Report(const std::string& rule, int line,
              const std::string& message) const {
    if (sup.Allows(rule, line)) return;
    out->push_back({std::string(path), line, rule, message});
  }

  const std::string& Text(size_t i) const { return toks[i].text; }
  bool Is(size_t i, std::string_view t) const {
    return i < toks.size() && toks[i].text == t;
  }
  bool IsIdent(size_t i) const {
    return i < toks.size() && toks[i].kind == TokKind::kIdent;
  }
};

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// R1: nondeterminism sources. rand/srand/random_device are banned
/// everywhere; <chrono> clock now() is banned outside bench/.
void CheckR1(const Ctx& ctx) {
  const auto& toks = ctx.toks;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = toks[i].text;
    const bool member_call =
        i > 0 && (ctx.Is(i - 1, ".") || ctx.Is(i - 1, "->"));
    if ((t == "rand" || t == "srand") && ctx.Is(i + 1, "(") &&
        !member_call) {
      ctx.Report("R1", toks[i].line,
                 t + "() draws from hidden global state; all randomness "
                     "must flow from a seeded ckr::Rng");
      continue;
    }
    if (t == "random_device") {
      ctx.Report("R1", toks[i].line,
                 "std::random_device is nondeterministic by design; seed a "
                 "ckr::Rng explicitly");
      continue;
    }
    if (t == "now" && ctx.Is(i + 1, "(") && i >= 2 && ctx.Is(i - 1, "::") &&
        ctx.IsIdent(i - 2) && EndsWith(ctx.Text(i - 2), "clock")) {
      if (ctx.kind == FileKind::kBench) continue;  // Measuring is its job.
      ctx.Report("R1", toks[i].line,
                 ctx.Text(i - 2) + "::now() reads the wall clock; outside "
                 "bench/ it needs an explicit ckr-lint allow(R1)");
    }
  }
}

/// R2: exceptions in src/. Status/StatusOr is the only error channel
/// across library boundaries.
void CheckR2(const Ctx& ctx) {
  if (ctx.kind != FileKind::kSrc) return;
  for (const Tok& tok : ctx.toks) {
    if (tok.kind != TokKind::kIdent) continue;
    if (tok.text == "throw" || tok.text == "try" || tok.text == "catch") {
      ctx.Report("R2", tok.line,
                 "'" + tok.text + "' in src/: error paths must return "
                 "Status/StatusOr, never unwind");
    }
  }
}

/// R3: [[nodiscard]] on Status/StatusOr-returning declarations in src/
/// headers. The class-level attribute already makes the compiler reject
/// discards; the per-declaration attribute keeps the contract visible at
/// every API site, so its absence is a lint error.
void CheckR3(const Ctx& ctx) {
  if (ctx.kind != FileKind::kSrc || !EndsWith(ctx.path, ".h")) return;
  const auto& toks = ctx.toks;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = toks[i].text;
    if (t != "Status" && t != "StatusOr") continue;

    // Start of the return type, absorbing a ckr:: qualifier.
    size_t anchor = i;
    if (i >= 2 && ctx.Is(i - 1, "::") && ctx.Is(i - 2, "ckr")) anchor = i - 2;

    // Skip StatusOr template arguments to the closing '>'.
    size_t j = i + 1;
    if (t == "StatusOr") {
      if (!ctx.Is(j, "<")) continue;
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (ctx.Is(j, "<")) ++depth;
        if (ctx.Is(j, ">") && --depth == 0) break;
      }
      ++j;
    }
    // A declaration looks like: [qualifiers] Status Name ( ...
    if (!ctx.IsIdent(j) || !ctx.Is(j + 1, "(")) continue;

    // Walk back through declaration qualifiers looking for [[nodiscard]]
    // and for evidence this is a declaration rather than an expression.
    bool has_nodiscard = false;
    size_t k = anchor;
    bool declaration = true;
    while (k > 0) {
      const std::string& prev = toks[k - 1].text;
      if (prev == "virtual" || prev == "static" || prev == "inline" ||
          prev == "explicit" || prev == "constexpr" || prev == "friend") {
        --k;
        continue;
      }
      if (prev == "]]") {
        // Scan the attribute block for "nodiscard".
        size_t a = k - 1;
        while (a > 0 && !ctx.Is(a - 1, "[[")) {
          if (toks[a - 1].text == "nodiscard") has_nodiscard = true;
          --a;
        }
        k = a > 0 ? a - 1 : 0;
        continue;
      }
      declaration = prev == ";" || prev == "{" || prev == "}" ||
                    prev == ":" || prev == "public" || prev == "private" ||
                    prev == "protected";
      break;
    }
    if (declaration && !has_nodiscard) {
      ctx.Report("R3", toks[i].line,
                 "'" + ctx.Text(j) + "' returns " + t +
                 " but is not [[nodiscard]]; dropped Status values lose "
                 "errors silently");
    }
  }
}

/// R4: range-for over an unordered container in a file that includes a
/// binary_io.h. Hash iteration order is implementation-defined, so such a
/// loop adjacent to serialization machinery is a reproducibility hazard
/// unless explicitly annotated `ckr-lint: ordered`.
void CheckR4(const Ctx& ctx) {
  if (!ctx.includes_binary_io) return;
  const auto& toks = ctx.toks;

  // Names declared with an unordered_{map,set} type in this file.
  std::set<std::string> unordered_names;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = toks[i].text;
    if (t != "unordered_map" && t != "unordered_set") continue;
    size_t j = i + 1;
    if (ctx.Is(j, "<")) {
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (ctx.Is(j, "<")) ++depth;
        if (ctx.Is(j, ">") && --depth == 0) break;
      }
      ++j;
    }
    if (ctx.IsIdent(j)) unordered_names.insert(ctx.Text(j));
  }

  for (size_t i = 0; i < toks.size(); ++i) {
    if (!(toks[i].kind == TokKind::kIdent && toks[i].text == "for") ||
        !ctx.Is(i + 1, "(")) {
      continue;
    }
    // Find the range-for ':' at parenthesis depth 1; a ';' at depth 1
    // first means a classic for loop.
    int depth = 0;
    size_t colon = 0;
    size_t close = 0;
    for (size_t j = i + 1; j < toks.size(); ++j) {
      const std::string& t = toks[j].text;
      if (t == "(") ++depth;
      if (t == ")" && --depth == 0) {
        close = j;
        break;
      }
      if (depth == 1 && t == ";") break;
      if (depth == 1 && t == ":" && colon == 0) colon = j;
    }
    if (colon == 0 || close == 0) continue;
    for (size_t j = colon + 1; j < close; ++j) {
      if (toks[j].kind != TokKind::kIdent) continue;
      const std::string& name = toks[j].text;
      if (unordered_names.count(name) != 0 ||
          name.find("unordered_") != std::string::npos) {
        ctx.Report("R4", toks[i].line,
                   "range-for over unordered container '" + name +
                   "' in a serialization TU: hash order is not "
                   "deterministic (annotate '// ckr-lint: ordered' if the "
                   "loop provably does not feed serialized bytes)");
        break;
      }
    }
  }
}

/// R5: banned C functions (unbounded writes and silent-failure parsing).
void CheckR5(const Ctx& ctx) {
  static const std::set<std::string> kBanned = {"strcpy", "sprintf", "atoi",
                                                "gets"};
  const auto& toks = ctx.toks;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || kBanned.count(toks[i].text) == 0) {
      continue;
    }
    const bool member_call =
        i > 0 && (ctx.Is(i - 1, ".") || ctx.Is(i - 1, "->"));
    if (ctx.Is(i + 1, "(") && !member_call) {
      ctx.Report("R5", toks[i].line,
                 "'" + toks[i].text + "' is banned (unbounded write or "
                 "silent parse failure); use the std::string/StrTo* "
                 "equivalents");
    }
  }
}

/// R6: synchronization-primitive data members in src/ must declare their
/// guard discipline — a thread-safety annotation or an explicit,
/// justified waiver. The walk tracks record scopes (class/struct/union
/// bodies) with a brace-kind stack; only declarations at record-body
/// level, outside parameter lists, are members.
void CheckR6(const Ctx& ctx) {
  if (ctx.kind != FileKind::kSrc) return;
  static const std::set<std::string> kSyncTypes = {
      "mutex",
      "recursive_mutex",
      "shared_mutex",
      "timed_mutex",
      "recursive_timed_mutex",
      "shared_timed_mutex",
      "condition_variable",
      "condition_variable_any",
      "atomic",
      "atomic_flag"};
  static const std::set<std::string> kAnnotations = {
      "CKR_GUARDED_BY", "CKR_PT_GUARDED_BY", "CKR_ACQUIRED_BEFORE",
      "CKR_ACQUIRED_AFTER"};
  const auto& toks = ctx.toks;

  std::vector<char> scopes;  // One entry per open brace; 1 = record body.
  bool pending_record = false;
  int paren_depth = 0;
  size_t stmt_start = 0;  // First token of the current statement.

  for (size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "(") {
      ++paren_depth;
      pending_record = false;  // Function or template-parameter usage.
      continue;
    }
    if (t == ")") {
      if (paren_depth > 0) --paren_depth;
      continue;
    }
    if (t == ">") {
      pending_record = false;  // e.g. the keyword inside template<...>.
      continue;
    }
    if (t == "{") {
      scopes.push_back(pending_record ? 1 : 0);
      pending_record = false;
      stmt_start = i + 1;
      continue;
    }
    if (t == "}") {
      if (!scopes.empty()) scopes.pop_back();
      stmt_start = i + 1;
      continue;
    }
    if (t == ";") {
      pending_record = false;  // Forward declaration.
      stmt_start = i + 1;
      continue;
    }
    if (toks[i].kind != TokKind::kIdent) continue;
    if (t == "class" || t == "struct" || t == "union") {
      // "enum class" opens an enumeration, not a record.
      if (!(i > 0 && ctx.Is(i - 1, "enum"))) pending_record = true;
      continue;
    }
    if (scopes.empty() || scopes.back() != 1 || paren_depth != 0) continue;
    if (kSyncTypes.count(t) == 0) continue;
    if (!(i >= 2 && ctx.Is(i - 1, "::") && ctx.Is(i - 2, "std"))) continue;
    if (ctx.IsIdent(stmt_start) &&
        (ctx.Text(stmt_start) == "using" ||
         ctx.Text(stmt_start) == "typedef" ||
         ctx.Text(stmt_start) == "friend")) {
      continue;
    }

    // Find the declarator name: skip template arguments, then the
    // pointer/reference/array punctuation and any closing angles of an
    // enclosing template type (the atomic may sit inside a smart
    // pointer or container).
    size_t j = i + 1;
    if (ctx.Is(j, "<")) {
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (ctx.Is(j, "<")) ++depth;
        if (ctx.Is(j, ">") && --depth == 0) break;
      }
      ++j;
    }
    while (j < toks.size() &&
           (ctx.Is(j, ">") || ctx.Is(j, "*") || ctx.Is(j, "&") ||
            ctx.Is(j, "[") || ctx.Is(j, "]"))) {
      ++j;
    }
    if (!ctx.IsIdent(j)) continue;
    const std::string name = ctx.Text(j);
    if (ctx.Is(j + 1, "(")) continue;  // A function returning the type.

    // Scan the rest of the declaration (balancing initializer braces)
    // for an accepted annotation.
    bool annotated = false;
    size_t k = j;
    int bal = 0;
    for (; k < toks.size(); ++k) {
      const std::string& s = toks[k].text;
      if (s == "{") {
        ++bal;
      } else if (s == "}") {
        if (bal == 0) break;  // Record body closing: unterminated decl.
        --bal;
      } else if (s == ";" && bal == 0) {
        break;
      } else if (toks[k].kind == TokKind::kIdent &&
                 kAnnotations.count(s) != 0) {
        annotated = true;
      }
    }
    if (!annotated) {
      std::string fix =
          t == "mutex"
              ? "use the annotated ckr::Mutex (common/mutex.h) so "
                "-Wthread-safety and the lock-order check can see it"
              : "annotate it with CKR_GUARDED_BY(...) or a CKR_ACQUIRED_* "
                "ordering";
      ctx.Report("R6", toks[i].line,
                 "std::" + t + " member '" + name +
                 "' declares no guard discipline; " + fix +
                 ", or waive it with '// ckr-lint: unguarded(reason)'");
    }
    // Re-process the declaration's terminator in the main loop so the
    // scope stack stays balanced.
    if (k > i) i = k - 1;
  }
}

/// R7: atomic operations in src/ must name an explicit memory order. A
/// bare call silently defaults to seq_cst — either an unstated cost or
/// an unstated correctness assumption.
void CheckR7(const Ctx& ctx) {
  if (ctx.kind != FileKind::kSrc) return;
  // Ops whose zero-argument form cannot be atomic (store and the RMWs
  // always take a value), so an argument-less call is some unrelated
  // accessor and is skipped.
  static const std::set<std::string> kNeedsArg = {
      "store",          "exchange",  "fetch_add",
      "fetch_sub",      "fetch_and", "fetch_or",
      "fetch_xor",      "compare_exchange_strong",
      "compare_exchange_weak"};
  // Ops whose zero-argument form is exactly the implicit-seq_cst one.
  static const std::set<std::string> kZeroArgAtomic = {"load",
                                                      "test_and_set"};
  const auto& toks = ctx.toks;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = toks[i].text;
    const bool needs_arg = kNeedsArg.count(t) != 0;
    if (!needs_arg && kZeroArgAtomic.count(t) == 0) continue;
    const bool member_call =
        i > 0 && (ctx.Is(i - 1, ".") || ctx.Is(i - 1, "->"));
    if (!member_call || !ctx.Is(i + 1, "(")) continue;
    if (needs_arg && ctx.Is(i + 2, ")")) continue;  // Accessor, not atomic.

    bool named_order = false;
    int depth = 0;
    for (size_t j = i + 1; j < toks.size(); ++j) {
      const std::string& s = toks[j].text;
      if (s == "(") ++depth;
      if (s == ")" && --depth == 0) break;
      if (toks[j].kind == TokKind::kIdent &&
          s.rfind("memory_order", 0) == 0) {
        named_order = true;
      }
    }
    if (!named_order) {
      ctx.Report("R7", toks[i].line,
                 "'" + t + "' names no std::memory_order and silently "
                 "defaults to seq_cst; spell the order out (or annotate "
                 "intended sequential consistency with the seqcst waiver)");
    }
  }
}

/// R8: lock-order inversions against the declared hierarchy. Walks
/// scoped lock sites (MutexLock / lock_guard / unique_lock /
/// scoped_lock), keeps the stack of locks held per brace scope, and
/// flags any acquisition of a declared lock while holding one the
/// hierarchy places after it.
void CheckR8(const Ctx& ctx, const LockOrderSpec& order) {
  if (order.empty()) return;
  static const std::set<std::string> kScopedLocks = {
      "MutexLock", "lock_guard", "unique_lock", "scoped_lock"};
  const auto& toks = ctx.toks;
  struct Held {
    std::string name;
    int depth;
  };
  std::vector<Held> held;
  int depth = 0;
  for (size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "{") {
      ++depth;
      continue;
    }
    if (t == "}") {
      --depth;
      while (!held.empty() && held.back().depth > depth) held.pop_back();
      continue;
    }
    if (toks[i].kind != TokKind::kIdent || kScopedLocks.count(t) == 0) {
      continue;
    }
    size_t j = i + 1;
    if (ctx.Is(j, "<")) {
      int d = 0;
      for (; j < toks.size(); ++j) {
        if (ctx.Is(j, "<")) ++d;
        if (ctx.Is(j, ">") && --d == 0) break;
      }
      ++j;
    }
    if (!ctx.IsIdent(j) || !ctx.Is(j + 1, "(")) continue;  // Not a decl.
    // The mutex is the last identifier of the first constructor argument
    // ("&state.log_mu" and "this->mu_" both resolve to the member name).
    std::string name;
    size_t k = j + 1;
    int pd = 0;
    for (; k < toks.size(); ++k) {
      const std::string& s = toks[k].text;
      if (s == "(") {
        ++pd;
        continue;
      }
      if (s == ")") {
        if (--pd == 0) break;
        continue;
      }
      if (pd == 1 && s == ",") break;
      if (toks[k].kind == TokKind::kIdent) name = s;
    }
    if (!name.empty() && order.Declared(name)) {
      for (const Held& h : held) {
        if (order.Before(name, h.name)) {
          ctx.Report("R8", toks[i].line,
                     "acquires '" + name + "' while holding '" + h.name +
                     "', but the declared lock order puts '" + name +
                     "' first — inversion (deadlock risk)");
        }
      }
      held.push_back({name, depth});
    }
    if (k > i) i = k;
  }
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string FormatViolation(const Violation& v) {
  std::ostringstream os;
  os << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message;
  return os.str();
}

FileKind ClassifyPath(std::string_view path) {
  auto in_dir = [&](std::string_view dir) {
    if (path.substr(0, dir.size() + 1) ==
        std::string(dir) + "/") {
      return true;
    }
    return path.find("/" + std::string(dir) + "/") != std::string_view::npos;
  };
  if (in_dir("src")) return FileKind::kSrc;
  if (in_dir("bench")) return FileKind::kBench;
  if (in_dir("tests")) return FileKind::kTests;
  return FileKind::kOther;
}

void LockOrderSpec::AddEdge(const std::string& first,
                            const std::string& second) {
  if (first == second) return;
  later_[first].insert(second);
  later_.try_emplace(second);  // So Declared() sees sinks too.
}

void LockOrderSpec::Finalize() {
  // Tiny graphs (a handful of locks): iterate to a fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [name, afters] : later_) {
      std::set<std::string> add;
      for (const std::string& mid : afters) {
        auto it = later_.find(mid);
        if (it == later_.end()) continue;
        for (const std::string& far : it->second) {
          if (far != name && afters.count(far) == 0) add.insert(far);
        }
      }
      if (!add.empty()) {
        afters.insert(add.begin(), add.end());
        changed = true;
      }
    }
  }
}

bool LockOrderSpec::Declared(const std::string& name) const {
  return later_.count(name) != 0;
}

bool LockOrderSpec::Before(const std::string& a, const std::string& b) const {
  auto it = later_.find(a);
  return it != later_.end() && it->second.count(b) != 0;
}

void CollectLockOrder(std::string_view content, LockOrderSpec* spec) {
  // Fast path: no marker anywhere (including in strings) means no
  // declarations; the tokenizer pass is only paid by files that have it.
  if (content.find("ckr-lock-order:") == std::string_view::npos) return;
  Suppressions sup;
  Tokenize(content, &sup);
  for (const auto& [first, second] : sup.lock_edges) {
    spec->AddEdge(first, second);
  }
}

std::vector<Violation> LintContent(std::string_view path,
                                   std::string_view content) {
  return LintContent(path, content, nullptr);
}

std::vector<Violation> LintContent(std::string_view path,
                                   std::string_view content,
                                   const LockOrderSpec* lock_order) {
  Suppressions sup;
  std::vector<Tok> toks = Tokenize(content, &sup);

  // Single-file mode: the file's own declarations are the hierarchy.
  LockOrderSpec local;
  if (lock_order == nullptr) {
    for (const auto& [first, second] : sup.lock_edges) {
      local.AddEdge(first, second);
    }
    local.Finalize();
    lock_order = &local;
  }

  // R4's precondition: serialization machinery is in scope. Matches both
  // common/binary_io.h and framework/binary_io.h, plus the block-index
  // serialization headers (block_postings.h / block_max_index.h expose
  // AppendTo/Serialize, so TUs including them can feed writers too).
  bool includes_binary_io = false;
  std::istringstream lines{std::string(content)};
  std::string raw;
  while (std::getline(lines, raw)) {
    if (raw.find("#include") == std::string::npos) continue;
    if (raw.find("binary_io.h") != std::string::npos ||
        raw.find("block_postings.h") != std::string::npos ||
        raw.find("block_max_index.h") != std::string::npos) {
      includes_binary_io = true;
      break;
    }
  }

  std::vector<Violation> out;
  Ctx ctx{path, ClassifyPath(path), toks, sup, includes_binary_io, &out};
  CheckR1(ctx);
  CheckR2(ctx);
  CheckR3(ctx);
  CheckR4(ctx);
  CheckR5(ctx);
  CheckR6(ctx);
  CheckR7(ctx);
  CheckR8(ctx, *lock_order);
  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

StatusOr<std::vector<Violation>> LintPath(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return LintContent(path, buf.str());
}

LintRunResult LintFiles(const std::vector<std::string>& paths,
                        unsigned jobs) {
  LintRunResult result;
  const size_t n = paths.size();
  result.files = n;

  // Pass one (serial; I/O-bound): read everything once and gather the
  // global lock-order registry, so a hierarchy declared in one header
  // binds lock sites in every file.
  std::vector<std::string> contents(n);
  std::vector<char> readable(n, 0);
  LockOrderSpec order;
  for (size_t i = 0; i < n; ++i) {
    std::ifstream in(paths[i], std::ios::binary);
    if (!in) {
      result.errors.push_back(paths[i] + ": cannot open");
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    contents[i] = buf.str();
    readable[i] = 1;
    CollectLockOrder(contents[i], &order);
  }
  order.Finalize();

  // Pass two (parallel; tokenization-bound): each file lints into its
  // own slot, and slots merge in input order — the result is
  // byte-identical to a serial run for any worker count.
  if (jobs == 0) jobs = DefaultWorkerCount();
  std::vector<std::vector<Violation>> slots(n);
  ParallelForWorkers(n, jobs, [&](unsigned, size_t i) {
    if (readable[i] != 0) slots[i] = LintContent(paths[i], contents[i], &order);
  });
  for (std::vector<Violation>& slot : slots) {
    result.violations.insert(result.violations.end(),
                             std::make_move_iterator(slot.begin()),
                             std::make_move_iterator(slot.end()));
  }
  return result;
}

std::string LintReportJson(const LintRunResult& result) {
  std::ostringstream os;
  os << "{\"errors\":[";
  for (size_t i = 0; i < result.errors.size(); ++i) {
    if (i != 0) os << ",";
    os << "\"" << JsonEscape(result.errors[i]) << "\"";
  }
  os << "],\"files\":" << result.files << ",\"violations\":[";
  for (size_t i = 0; i < result.violations.size(); ++i) {
    const Violation& v = result.violations[i];
    if (i != 0) os << ",";
    os << "{\"file\":\"" << JsonEscape(v.file) << "\",\"line\":" << v.line
       << ",\"message\":\"" << JsonEscape(v.message) << "\",\"rule\":\""
       << JsonEscape(v.rule) << "\"}";
  }
  os << "]}\n";
  return os.str();
}

}  // namespace lint
}  // namespace ckr
