#include "tools/ckr_lint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "common/string_util.h"

namespace ckr {
namespace lint {
namespace {

// ---------------------------------------------------------------------
// Token stream. Comments, string literals, and character literals are
// stripped during scanning (their content can never violate a rule), but
// comment text is inspected for ckr-lint suppression directives before
// being dropped.
// ---------------------------------------------------------------------

enum class TokKind { kIdent, kPunct };

struct Tok {
  TokKind kind;
  std::string text;
  int line;
};

/// Per-file suppression state gathered from ckr-lint comments.
struct Suppressions {
  std::set<std::string> file_rules;                ///< allow-file(...)
  std::map<int, std::set<std::string>> line_rules; ///< line -> rules

  bool Allows(const std::string& rule, int line) const {
    if (file_rules.count(rule) != 0) return true;
    auto it = line_rules.find(line);
    return it != line_rules.end() && it->second.count(rule) != 0;
  }
};

/// Parses one comment body for a ckr-lint directive. `standalone` is true
/// when the comment is the first thing on its line, in which case the
/// suppression also covers the following line (annotation-above style).
void ParseDirective(std::string_view comment, int line, bool standalone,
                    Suppressions* sup) {
  size_t at = comment.find("ckr-lint:");
  if (at == std::string_view::npos) return;
  std::string_view rest = comment.substr(at + 9);

  auto add_rules = [&](std::string_view list, bool whole_file) {
    for (const std::string& rule : SplitString(list, ", \t")) {
      if (whole_file) {
        sup->file_rules.insert(rule);
      } else {
        sup->line_rules[line].insert(rule);
        if (standalone) sup->line_rules[line + 1].insert(rule);
      }
    }
  };

  size_t open;
  if ((open = rest.find("allow-file(")) != std::string_view::npos) {
    size_t close = rest.find(')', open);
    if (close != std::string_view::npos) {
      add_rules(rest.substr(open + 11, close - open - 11), true);
    }
  } else if ((open = rest.find("allow(")) != std::string_view::npos) {
    size_t close = rest.find(')', open);
    if (close != std::string_view::npos) {
      add_rules(rest.substr(open + 6, close - open - 6), false);
    }
  } else if (rest.find("ordered") != std::string_view::npos) {
    sup->line_rules[line].insert("R4");
    if (standalone) sup->line_rules[line + 1].insert("R4");
  }
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Tokenizes C++ source. Multi-char punctuators that matter to the rules
/// ("::", "->", "[[", "]]") come out as single tokens; everything else is
/// one punct token per character.
std::vector<Tok> Tokenize(std::string_view src, Suppressions* sup) {
  std::vector<Tok> toks;
  int line = 1;
  size_t i = 0;
  const size_t n = src.size();
  // Tracks whether any token has been emitted on the current line, so a
  // directive comment knows if it stands alone.
  int last_tok_line = 0;

  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      size_t end = src.find('\n', i);
      if (end == std::string_view::npos) end = n;
      ParseDirective(src.substr(i, end - i), line,
                     /*standalone=*/last_tok_line != line, sup);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      size_t end = src.find("*/", i + 2);
      if (end == std::string_view::npos) end = n;
      ParseDirective(src.substr(i, end - i), line,
                     /*standalone=*/last_tok_line != line, sup);
      for (size_t j = i; j < std::min(end + 2, n); ++j) {
        if (src[j] == '\n') ++line;
      }
      i = std::min(end + 2, n);
      continue;
    }
    // Raw string literal (only the R"( form used in this tree).
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      size_t open = src.find('(', i + 2);
      if (open != std::string_view::npos) {
        std::string close = ")";
        close.append(src.substr(i + 2, open - (i + 2)));
        close.push_back('"');
        size_t end = src.find(close, open + 1);
        if (end == std::string_view::npos) end = n;
        for (size_t j = i; j < std::min(end + close.size(), n); ++j) {
          if (src[j] == '\n') ++line;
        }
        i = std::min(end + close.size(), n);
        continue;
      }
    }
    // String / character literal.
    if (c == '"' || c == '\'') {
      char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        if (src[i] == '\n') ++line;
        ++i;
      }
      ++i;  // Closing quote.
      continue;
    }
    // Identifier / keyword / number.
    if (IsIdentChar(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(src[i])) ++i;
      toks.push_back({TokKind::kIdent,
                      std::string(src.substr(start, i - start)), line});
      last_tok_line = line;
      continue;
    }
    // Multi-char punctuators the rules care about.
    auto two = src.substr(i, 2);
    if (two == "::" || two == "->" || two == "[[" || two == "]]") {
      toks.push_back({TokKind::kPunct, std::string(two), line});
      last_tok_line = line;
      i += 2;
      continue;
    }
    toks.push_back({TokKind::kPunct, std::string(1, c), line});
    last_tok_line = line;
    ++i;
  }
  return toks;
}

// ---------------------------------------------------------------------
// Rule checks over the token stream.
// ---------------------------------------------------------------------

struct Ctx {
  std::string_view path;
  FileKind kind;
  const std::vector<Tok>& toks;
  const Suppressions& sup;
  bool includes_binary_io;
  std::vector<Violation>* out;

  void Report(const std::string& rule, int line,
              const std::string& message) const {
    if (sup.Allows(rule, line)) return;
    out->push_back({std::string(path), line, rule, message});
  }

  const std::string& Text(size_t i) const { return toks[i].text; }
  bool Is(size_t i, std::string_view t) const {
    return i < toks.size() && toks[i].text == t;
  }
  bool IsIdent(size_t i) const {
    return i < toks.size() && toks[i].kind == TokKind::kIdent;
  }
};

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// R1: nondeterminism sources. rand/srand/random_device are banned
/// everywhere; <chrono> clock now() is banned outside bench/.
void CheckR1(const Ctx& ctx) {
  const auto& toks = ctx.toks;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = toks[i].text;
    const bool member_call =
        i > 0 && (ctx.Is(i - 1, ".") || ctx.Is(i - 1, "->"));
    if ((t == "rand" || t == "srand") && ctx.Is(i + 1, "(") &&
        !member_call) {
      ctx.Report("R1", toks[i].line,
                 t + "() draws from hidden global state; all randomness "
                     "must flow from a seeded ckr::Rng");
      continue;
    }
    if (t == "random_device") {
      ctx.Report("R1", toks[i].line,
                 "std::random_device is nondeterministic by design; seed a "
                 "ckr::Rng explicitly");
      continue;
    }
    if (t == "now" && ctx.Is(i + 1, "(") && i >= 2 && ctx.Is(i - 1, "::") &&
        ctx.IsIdent(i - 2) && EndsWith(ctx.Text(i - 2), "clock")) {
      if (ctx.kind == FileKind::kBench) continue;  // Measuring is its job.
      ctx.Report("R1", toks[i].line,
                 ctx.Text(i - 2) + "::now() reads the wall clock; outside "
                 "bench/ it needs an explicit ckr-lint allow(R1)");
    }
  }
}

/// R2: exceptions in src/. Status/StatusOr is the only error channel
/// across library boundaries.
void CheckR2(const Ctx& ctx) {
  if (ctx.kind != FileKind::kSrc) return;
  for (const Tok& tok : ctx.toks) {
    if (tok.kind != TokKind::kIdent) continue;
    if (tok.text == "throw" || tok.text == "try" || tok.text == "catch") {
      ctx.Report("R2", tok.line,
                 "'" + tok.text + "' in src/: error paths must return "
                 "Status/StatusOr, never unwind");
    }
  }
}

/// R3: [[nodiscard]] on Status/StatusOr-returning declarations in src/
/// headers. The class-level attribute already makes the compiler reject
/// discards; the per-declaration attribute keeps the contract visible at
/// every API site, so its absence is a lint error.
void CheckR3(const Ctx& ctx) {
  if (ctx.kind != FileKind::kSrc || !EndsWith(ctx.path, ".h")) return;
  const auto& toks = ctx.toks;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = toks[i].text;
    if (t != "Status" && t != "StatusOr") continue;

    // Start of the return type, absorbing a ckr:: qualifier.
    size_t anchor = i;
    if (i >= 2 && ctx.Is(i - 1, "::") && ctx.Is(i - 2, "ckr")) anchor = i - 2;

    // Skip StatusOr template arguments to the closing '>'.
    size_t j = i + 1;
    if (t == "StatusOr") {
      if (!ctx.Is(j, "<")) continue;
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (ctx.Is(j, "<")) ++depth;
        if (ctx.Is(j, ">") && --depth == 0) break;
      }
      ++j;
    }
    // A declaration looks like: [qualifiers] Status Name ( ...
    if (!ctx.IsIdent(j) || !ctx.Is(j + 1, "(")) continue;

    // Walk back through declaration qualifiers looking for [[nodiscard]]
    // and for evidence this is a declaration rather than an expression.
    bool has_nodiscard = false;
    size_t k = anchor;
    bool declaration = true;
    while (k > 0) {
      const std::string& prev = toks[k - 1].text;
      if (prev == "virtual" || prev == "static" || prev == "inline" ||
          prev == "explicit" || prev == "constexpr" || prev == "friend") {
        --k;
        continue;
      }
      if (prev == "]]") {
        // Scan the attribute block for "nodiscard".
        size_t a = k - 1;
        while (a > 0 && !ctx.Is(a - 1, "[[")) {
          if (toks[a - 1].text == "nodiscard") has_nodiscard = true;
          --a;
        }
        k = a > 0 ? a - 1 : 0;
        continue;
      }
      declaration = prev == ";" || prev == "{" || prev == "}" ||
                    prev == ":" || prev == "public" || prev == "private" ||
                    prev == "protected";
      break;
    }
    if (declaration && !has_nodiscard) {
      ctx.Report("R3", toks[i].line,
                 "'" + ctx.Text(j) + "' returns " + t +
                 " but is not [[nodiscard]]; dropped Status values lose "
                 "errors silently");
    }
  }
}

/// R4: range-for over an unordered container in a file that includes a
/// binary_io.h. Hash iteration order is implementation-defined, so such a
/// loop adjacent to serialization machinery is a reproducibility hazard
/// unless explicitly annotated `ckr-lint: ordered`.
void CheckR4(const Ctx& ctx) {
  if (!ctx.includes_binary_io) return;
  const auto& toks = ctx.toks;

  // Names declared with an unordered_{map,set} type in this file.
  std::set<std::string> unordered_names;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const std::string& t = toks[i].text;
    if (t != "unordered_map" && t != "unordered_set") continue;
    size_t j = i + 1;
    if (ctx.Is(j, "<")) {
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (ctx.Is(j, "<")) ++depth;
        if (ctx.Is(j, ">") && --depth == 0) break;
      }
      ++j;
    }
    if (ctx.IsIdent(j)) unordered_names.insert(ctx.Text(j));
  }

  for (size_t i = 0; i < toks.size(); ++i) {
    if (!(toks[i].kind == TokKind::kIdent && toks[i].text == "for") ||
        !ctx.Is(i + 1, "(")) {
      continue;
    }
    // Find the range-for ':' at parenthesis depth 1; a ';' at depth 1
    // first means a classic for loop.
    int depth = 0;
    size_t colon = 0;
    size_t close = 0;
    for (size_t j = i + 1; j < toks.size(); ++j) {
      const std::string& t = toks[j].text;
      if (t == "(") ++depth;
      if (t == ")" && --depth == 0) {
        close = j;
        break;
      }
      if (depth == 1 && t == ";") break;
      if (depth == 1 && t == ":" && colon == 0) colon = j;
    }
    if (colon == 0 || close == 0) continue;
    for (size_t j = colon + 1; j < close; ++j) {
      if (toks[j].kind != TokKind::kIdent) continue;
      const std::string& name = toks[j].text;
      if (unordered_names.count(name) != 0 ||
          name.find("unordered_") != std::string::npos) {
        ctx.Report("R4", toks[i].line,
                   "range-for over unordered container '" + name +
                   "' in a serialization TU: hash order is not "
                   "deterministic (annotate '// ckr-lint: ordered' if the "
                   "loop provably does not feed serialized bytes)");
        break;
      }
    }
  }
}

/// R5: banned C functions (unbounded writes and silent-failure parsing).
void CheckR5(const Ctx& ctx) {
  static const std::set<std::string> kBanned = {"strcpy", "sprintf", "atoi",
                                                "gets"};
  const auto& toks = ctx.toks;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || kBanned.count(toks[i].text) == 0) {
      continue;
    }
    const bool member_call =
        i > 0 && (ctx.Is(i - 1, ".") || ctx.Is(i - 1, "->"));
    if (ctx.Is(i + 1, "(") && !member_call) {
      ctx.Report("R5", toks[i].line,
                 "'" + toks[i].text + "' is banned (unbounded write or "
                 "silent parse failure); use the std::string/StrTo* "
                 "equivalents");
    }
  }
}

}  // namespace

std::string FormatViolation(const Violation& v) {
  std::ostringstream os;
  os << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message;
  return os.str();
}

FileKind ClassifyPath(std::string_view path) {
  auto in_dir = [&](std::string_view dir) {
    if (path.substr(0, dir.size() + 1) ==
        std::string(dir) + "/") {
      return true;
    }
    return path.find("/" + std::string(dir) + "/") != std::string_view::npos;
  };
  if (in_dir("src")) return FileKind::kSrc;
  if (in_dir("bench")) return FileKind::kBench;
  if (in_dir("tests")) return FileKind::kTests;
  return FileKind::kOther;
}

std::vector<Violation> LintContent(std::string_view path,
                                   std::string_view content) {
  Suppressions sup;
  std::vector<Tok> toks = Tokenize(content, &sup);

  // R4's precondition: serialization machinery is in scope. Matches both
  // common/binary_io.h and framework/binary_io.h, plus the block-index
  // serialization headers (block_postings.h / block_max_index.h expose
  // AppendTo/Serialize, so TUs including them can feed writers too).
  bool includes_binary_io = false;
  std::istringstream lines{std::string(content)};
  std::string raw;
  while (std::getline(lines, raw)) {
    if (raw.find("#include") == std::string::npos) continue;
    if (raw.find("binary_io.h") != std::string::npos ||
        raw.find("block_postings.h") != std::string::npos ||
        raw.find("block_max_index.h") != std::string::npos) {
      includes_binary_io = true;
      break;
    }
  }

  std::vector<Violation> out;
  Ctx ctx{path, ClassifyPath(path), toks, sup, includes_binary_io, &out};
  CheckR1(ctx);
  CheckR2(ctx);
  CheckR3(ctx);
  CheckR4(ctx);
  CheckR5(ctx);
  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

StatusOr<std::vector<Violation>> LintPath(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return LintContent(path, buf.str());
}

}  // namespace lint
}  // namespace ckr
