// CLI driver: walks the given files/directories (default: src bench
// tests) and reports contract violations. Exit 0 = clean, 1 = violations,
// 2 = I/O or usage error. Fixture files under any "testdata" directory
// and build trees are skipped — fixtures violate rules on purpose.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "tools/ckr_lint.h"

namespace fs = std::filesystem;

namespace {

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

bool SkipPath(const std::string& p) {
  return p.find("testdata") != std::string::npos ||
         p.find("/build") != std::string::npos ||
         p.rfind("build", 0) == 0;
}

void Collect(const fs::path& root, std::vector<std::string>* files) {
  if (fs::is_regular_file(root)) {
    if (IsSourceFile(root)) files->push_back(root.string());
    return;
  }
  if (!fs::is_directory(root)) return;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string p = entry.path().string();
    if (IsSourceFile(entry.path()) && !SkipPath(p)) files->push_back(p);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      if (!fs::exists(argv[i])) {
        std::fprintf(stderr, "ckr_lint: no such path: %s\n", argv[i]);
        return 2;
      }
      Collect(argv[i], &files);
    }
  } else {
    for (const char* dir : {"src", "bench", "tests", "tools"}) {
      if (fs::exists(dir)) Collect(dir, &files);
    }
  }
  std::sort(files.begin(), files.end());

  size_t violations = 0;
  for (const std::string& file : files) {
    auto result = ckr::lint::LintPath(file);
    if (!result.ok()) {
      std::fprintf(stderr, "ckr_lint: %s\n",
                   result.status().ToString().c_str());
      return 2;
    }
    for (const auto& v : *result) {
      std::printf("%s\n", ckr::lint::FormatViolation(v).c_str());
      ++violations;
    }
  }
  std::fprintf(stderr, "ckr_lint: %zu file(s), %zu violation(s)\n",
               files.size(), violations);
  return violations == 0 ? 0 : 1;
}
