// CLI driver: walks the given files/directories (default: src bench
// tests tools) and reports contract violations. Exit 0 = clean, 1 =
// violations, 2 = I/O or usage error. Fixture files under any "testdata"
// directory and build trees are skipped — fixtures violate rules on
// purpose.
//
// Flags (before or between paths):
//   --jobs N      lint with N worker threads (default: hardware
//                 concurrency; output is byte-identical for any N)
//   --json FILE   additionally write the deterministic JSON report to
//                 FILE ("-" = stdout, suppressing the text report)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "tools/ckr_lint.h"

namespace fs = std::filesystem;

namespace {

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

bool SkipPath(const std::string& p) {
  return p.find("testdata") != std::string::npos ||
         p.find("/build") != std::string::npos ||
         p.rfind("build", 0) == 0;
}

void Collect(const fs::path& root, std::vector<std::string>* files) {
  if (fs::is_regular_file(root)) {
    if (IsSourceFile(root)) files->push_back(root.string());
    return;
  }
  if (!fs::is_directory(root)) return;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string p = entry.path().string();
    if (IsSourceFile(entry.path()) && !SkipPath(p)) files->push_back(p);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::string json_path;
  unsigned jobs = 0;  // 0 = hardware concurrency.
  bool any_path_arg = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ckr_lint: --jobs needs a count\n");
        return 2;
      }
      jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
      continue;
    }
    if (arg == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ckr_lint: --json needs a file (or -)\n");
        return 2;
      }
      json_path = argv[++i];
      continue;
    }
    if (!fs::exists(arg)) {
      std::fprintf(stderr, "ckr_lint: no such path: %s\n", arg.c_str());
      return 2;
    }
    any_path_arg = true;
    Collect(arg, &files);
  }
  if (!any_path_arg) {
    for (const char* dir : {"src", "bench", "tests", "tools"}) {
      if (fs::exists(dir)) Collect(dir, &files);
    }
  }
  std::sort(files.begin(), files.end());

  const ckr::lint::LintRunResult result = ckr::lint::LintFiles(files, jobs);
  const bool json_to_stdout = json_path == "-";

  for (const std::string& err : result.errors) {
    std::fprintf(stderr, "ckr_lint: %s\n", err.c_str());
  }
  if (!json_to_stdout) {
    for (const auto& v : result.violations) {
      std::printf("%s\n", ckr::lint::FormatViolation(v).c_str());
    }
  }
  if (!json_path.empty()) {
    const std::string report = ckr::lint::LintReportJson(result);
    if (json_to_stdout) {
      std::fwrite(report.data(), 1, report.size(), stdout);
    } else {
      std::ofstream out(json_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "ckr_lint: cannot write %s\n",
                     json_path.c_str());
        return 2;
      }
      out << report;
    }
  }
  std::fprintf(stderr, "ckr_lint: %zu file(s), %zu violation(s)\n",
               result.files, result.violations.size());
  if (!result.errors.empty()) return 2;
  return result.violations.empty() ? 0 : 1;
}
