// ckr_lint: in-repo static analyzer enforcing the contracts the
// reproduction's bit-for-bit determinism rests on. The compiler enforces
// what it can see ([[nodiscard]] Status, -Werror); this tool enforces the
// token-level conventions it cannot:
//
//   R1  no nondeterminism sources: rand()/srand(), std::random_device,
//       and <chrono> clock ::now() calls (wall-clock reads are allowed in
//       bench/ where they measure, not compute).
//   R2  no throw/try/catch in src/ — Status/StatusOr is the only error
//       channel across library boundaries.
//   R3  every Status/StatusOr-returning function declared in a src/
//       header carries [[nodiscard]].
//   R4  no range-for over an unordered_{map,set} in any file that
//       includes serialization machinery (a binary_io.h, or the
//       block-index headers block_postings.h / block_max_index.h) —
//       hash-order iteration feeding a serializer silently breaks
//       reproducibility.
//   R5  banned C functions: strcpy, sprintf, atoi, gets.
//
// Suppressions (always scoped and greppable):
//   // ckr-lint: allow(R1[,R5...])   this line, or the next line when the
//                                    comment stands alone
//   // ckr-lint: ordered             alias for allow(R4)
//   // ckr-lint: allow-file(R2,...)  whole file
#ifndef CKR_TOOLS_CKR_LINT_H_
#define CKR_TOOLS_CKR_LINT_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ckr {
namespace lint {

/// One rule violation at a source location.
struct Violation {
  std::string file;
  int line = 0;
  std::string rule;     ///< "R1".."R5".
  std::string message;  ///< Human-readable description.
};

/// "file:line: [RN] message" — the format editors and CI understand.
std::string FormatViolation(const Violation& v);

/// Which contract set applies, derived from the path ("src/", "bench/",
/// "tests/"). Files outside those trees get the src rules minus R2/R3.
enum class FileKind { kSrc, kBench, kTests, kOther };

FileKind ClassifyPath(std::string_view path);

/// Lints one file's content. `path` decides the applicable rules (see
/// ClassifyPath) and is echoed into the violations; no I/O happens here.
std::vector<Violation> LintContent(std::string_view path,
                                   std::string_view content);

/// Reads and lints a file on disk.
[[nodiscard]] StatusOr<std::vector<Violation>> LintPath(
    const std::string& path);

}  // namespace lint
}  // namespace ckr

#endif  // CKR_TOOLS_CKR_LINT_H_
