// ckr_lint: in-repo static analyzer enforcing the contracts the
// reproduction's bit-for-bit determinism rests on. The compiler enforces
// what it can see ([[nodiscard]] Status, -Werror); this tool enforces the
// token-level conventions it cannot:
//
//   R1  no nondeterminism sources: rand()/srand(), std::random_device,
//       and <chrono> clock ::now() calls (wall-clock reads are allowed in
//       bench/ where they measure, not compute).
//   R2  no throw/try/catch in src/ — Status/StatusOr is the only error
//       channel across library boundaries.
//   R3  every Status/StatusOr-returning function declared in a src/
//       header carries [[nodiscard]].
//   R4  no range-for over an unordered_{map,set} in any file that
//       includes serialization machinery (a binary_io.h, or the
//       block-index headers block_postings.h / block_max_index.h) —
//       hash-order iteration feeding a serializer silently breaks
//       reproducibility.
//   R5  banned C functions: strcpy, sprintf, atoi, gets.
//   R6  every std::mutex / std::atomic (and friends: shared_mutex,
//       condition_variable, atomic_flag, ...) data member in src/ must
//       declare its discipline: a thread-safety annotation
//       (CKR_GUARDED_BY / CKR_PT_GUARDED_BY / CKR_ACQUIRED_*) or an
//       explicit waiver with a reason. Raw std::mutex members also trade
//       up to the annotated ckr::Mutex so Clang -Wthread-safety and R8
//       can see them.
//   R7  every atomic load/store/RMW in src/ must name an explicit
//       std::memory_order — a bare call silently defaults to seq_cst,
//       which is either an unstated cost or an unstated correctness
//       assumption; sequentially-consistent call sites say so.
//   R8  the declared lock hierarchy. Lock-order declarations (see the
//       marker syntax at the bottom of this comment) are gathered
//       across all scanned files into one partial order (transitively
//       closed); a scope that acquires a declared lock while holding a
//       declared lock ranked after it is an inversion. Scoped lock sites
//       (MutexLock / lock_guard / unique_lock / scoped_lock) are what the
//       check reads.
//
// Suppressions (always scoped and greppable):
//   // ckr-lint: allow(R1[,R5...])   this line, or the next line when the
//                                    comment stands alone
//   // ckr-lint: ordered             alias for allow(R4)
//   // ckr-lint: unguarded(reason)   alias for allow(R6); the reason is
//                                    mandatory — an empty one is ignored
//   // ckr-lint: seqcst              alias for allow(R7)
//   // ckr-lint: allow-file(R2,...)  whole file
//
// Lock-order declarations use their own comment marker (one chain per
// line comment, identifiers separated by '<', no trailing text):
//   // ckr-lock-order: lifecycle_mu_ < queue_mu_ < registry_mu_
#ifndef CKR_TOOLS_CKR_LINT_H_
#define CKR_TOOLS_CKR_LINT_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ckr {
namespace lint {

/// One rule violation at a source location.
struct Violation {
  std::string file;
  int line = 0;
  std::string rule;     ///< "R1".."R8".
  std::string message;  ///< Human-readable description.
};

/// "file:line: [RN] message" — the format editors and CI understand.
std::string FormatViolation(const Violation& v);

/// Which contract set applies, derived from the path ("src/", "bench/",
/// "tests/"). Files outside those trees get the src rules minus
/// R2/R3/R6/R7.
enum class FileKind { kSrc, kBench, kTests, kOther };

FileKind ClassifyPath(std::string_view path);

/// The declared lock hierarchy R8 checks against: a partial order over
/// mutex member names, built from "ckr-lock-order:" comments. AddEdge as
/// declarations are found, then Finalize() once to take the transitive
/// closure; Before() answers ordering queries afterwards.
class LockOrderSpec {
 public:
  /// Declares that `first` is acquired before `second`.
  void AddEdge(const std::string& first, const std::string& second);

  /// Transitive closure over all added edges. Call once, after the last
  /// AddEdge; Before() is only meaningful afterwards.
  void Finalize();

  /// True when `name` participates in any declaration. Undeclared locks
  /// are outside the hierarchy and never checked.
  bool Declared(const std::string& name) const;

  /// True when the (finalized) order declares `a` acquired before `b`.
  bool Before(const std::string& a, const std::string& b) const;

  bool empty() const { return later_.empty(); }

 private:
  /// name -> every name declared (transitively) after it.
  std::map<std::string, std::set<std::string>> later_;
};

/// Scans `content` for "ckr-lock-order:" declarations (comments only —
/// string literals are ignored) and adds their edges to `spec`. Cheap on
/// files without the marker.
void CollectLockOrder(std::string_view content, LockOrderSpec* spec);

/// Lints one file's content. `path` decides the applicable rules (see
/// ClassifyPath) and is echoed into the violations; no I/O happens here.
/// `lock_order` is the finalized cross-file hierarchy for R8; pass null
/// to build it from this file's own declarations (single-file mode).
std::vector<Violation> LintContent(std::string_view path,
                                   std::string_view content,
                                   const LockOrderSpec* lock_order);
std::vector<Violation> LintContent(std::string_view path,
                                   std::string_view content);

/// Reads and lints a file on disk (single-file lock-order mode).
[[nodiscard]] StatusOr<std::vector<Violation>> LintPath(
    const std::string& path);

/// Outcome of linting a file set: violations in input-path order (then
/// by line), read failures in input-path order. Deterministic for a
/// given input order regardless of `jobs`.
struct LintRunResult {
  size_t files = 0;  ///< Paths scanned (including ones that failed).
  std::vector<Violation> violations;
  std::vector<std::string> errors;  ///< "path: reason" read failures.

  bool clean() const { return violations.empty() && errors.empty(); }
};

/// Two-pass run over `paths`: pass one reads every file and gathers the
/// global lock-order registry; pass two lints the files in parallel on
/// up to `jobs` workers (0 = one per hardware thread) with per-slot
/// output buffers, so the merged result is byte-identical to jobs=1.
LintRunResult LintFiles(const std::vector<std::string>& paths,
                        unsigned jobs);

/// Deterministic machine-readable report: one JSON object with bytewise
/// -sorted keys, no whitespace, trailing newline. Same bytes for the
/// same result on every run/platform — CI archives it as an artifact
/// and diffs are meaningful.
std::string LintReportJson(const LintRunResult& result);

}  // namespace lint
}  // namespace ckr

#endif  // CKR_TOOLS_CKR_LINT_H_
