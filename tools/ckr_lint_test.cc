// Fixture-driven self-tests for ckr_lint: each testdata file carries
// known violations (or none); the expected (rule, line) pairs here are
// the linter's contract. Fixtures are linted under virtual src/ paths so
// path-scoped rules (R2/R3 src-only, R1's bench allowlist) are exercised
// independently of where testdata lives on disk.
#include "tools/ckr_lint.h"

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace ckr {
namespace lint {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(CKR_LINT_TESTDATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

using RuleLine = std::pair<std::string, int>;

std::multiset<RuleLine> RuleLines(const std::vector<Violation>& vs) {
  std::multiset<RuleLine> out;
  for (const auto& v : vs) out.insert({v.rule, v.line});
  return out;
}

TEST(CkrLintTest, R1FlagsEveryNondeterminismSource) {
  auto vs = LintContent("src/r1_nondeterminism.cc",
                        ReadFixture("r1_nondeterminism.cc"));
  EXPECT_EQ(RuleLines(vs), (std::multiset<RuleLine>{{"R1", 8},
                                                    {"R1", 12},
                                                    {"R1", 16},
                                                    {"R1", 20},
                                                    {"R1", 25},
                                                    {"R1", 26}}));
}

TEST(CkrLintTest, R1ClockAllowedInBench) {
  // The same content under bench/ keeps the rand/srand/random_device
  // violations but drops the clock ones: measuring is bench's job.
  auto vs = LintContent("bench/r1_nondeterminism.cc",
                        ReadFixture("r1_nondeterminism.cc"));
  EXPECT_EQ(RuleLines(vs), (std::multiset<RuleLine>{
                               {"R1", 8}, {"R1", 12}, {"R1", 16}, {"R1", 20}}));
}

TEST(CkrLintTest, R1FlagsRawClockOnServingPath) {
  // The serving daemon's deadlines ride the injected ckr::Clock; a raw
  // steady_clock::now() under src/serve must be flagged so deadline and
  // latency logic stays drivable by a fake clock in tests.
  const std::string content = ReadFixture("r1_serve_clock.cc");
  auto vs = LintContent("src/serve/r1_serve_clock.cc", content);
  EXPECT_EQ(RuleLines(vs), (std::multiset<RuleLine>{{"R1", 9}}));
}

TEST(CkrLintTest, R2FlagsExceptionConstructsInSrcOnly) {
  const std::string content = ReadFixture("r2_exceptions.cc");
  auto vs = LintContent("src/r2_exceptions.cc", content);
  EXPECT_EQ(RuleLines(vs),
            (std::multiset<RuleLine>{{"R2", 7}, {"R2", 9}, {"R2", 11}}));
  // Outside src/ the Status-only discipline does not apply (tests may
  // exercise exception behavior of third-party code).
  EXPECT_TRUE(LintContent("tests/r2_exceptions.cc", content).empty());
}

TEST(CkrLintTest, R3FlagsMissingNodiscardInSrcHeaders) {
  const std::string content = ReadFixture("r3_missing_nodiscard.h");
  auto vs = LintContent("src/r3_missing_nodiscard.h", content);
  EXPECT_EQ(RuleLines(vs),
            (std::multiset<RuleLine>{{"R3", 14}, {"R3", 18}, {"R3", 22}}));
  // Not a header: out of scope.
  EXPECT_TRUE(LintContent("src/r3_missing_nodiscard.cc", content).empty());
}

TEST(CkrLintTest, R4FlagsHashOrderIterationInSerializationTu) {
  auto vs = LintContent("src/r4_unordered_serialization.cc",
                        ReadFixture("r4_unordered_serialization.cc"));
  EXPECT_EQ(RuleLines(vs),
            (std::multiset<RuleLine>{{"R4", 22}, {"R4", 25}}));
}

TEST(CkrLintTest, R4RequiresBinaryIoInclude) {
  // The identical loops without a binary_io.h include are not
  // serialization-adjacent, so R4 stays quiet.
  std::string content = ReadFixture("r4_unordered_serialization.cc");
  const std::string include_line = "#include \"common/binary_io.h\"\n";
  auto at = content.find(include_line);
  ASSERT_NE(at, std::string::npos);
  content.erase(at, include_line.size());
  EXPECT_TRUE(
      LintContent("src/r4_unordered_serialization.cc", content).empty());
}

TEST(CkrLintTest, R4CoversBlockIndexSerializationHeaders) {
  // The block-index headers expose AppendTo/Serialize, so including them
  // arms R4 exactly like a binary_io.h include does.
  const std::string fixture = ReadFixture("r4_unordered_serialization.cc");
  const std::string include_line = "#include \"common/binary_io.h\"\n";
  for (const char* header :
       {"index/block_postings.h", "index/block_max_index.h"}) {
    std::string content = fixture;
    auto at = content.find(include_line);
    ASSERT_NE(at, std::string::npos);
    content.replace(at, include_line.size(),
                    std::string("#include \"") + header + "\"\n");
    auto vs = LintContent("src/r4_unordered_serialization.cc", content);
    EXPECT_EQ(RuleLines(vs),
              (std::multiset<RuleLine>{{"R4", 22}, {"R4", 25}}))
        << header;
  }
}

TEST(CkrLintTest, R5FlagsBannedFunctions) {
  auto vs = LintContent("src/r5_banned_functions.cc",
                        ReadFixture("r5_banned_functions.cc"));
  EXPECT_EQ(RuleLines(vs), (std::multiset<RuleLine>{
                               {"R5", 8}, {"R5", 12}, {"R5", 16}, {"R5", 20}}));
}

TEST(CkrLintTest, R6FlagsUndisciplinedSyncMembers) {
  const std::string content = ReadFixture("r6_unguarded_members.cc");
  auto vs = LintContent("src/r6_unguarded_members.cc", content);
  EXPECT_EQ(RuleLines(vs), (std::multiset<RuleLine>{{"R6", 16},
                                                    {"R6", 17},
                                                    {"R6", 18},
                                                    {"R6", 22},
                                                    {"R6", 24},
                                                    {"R6", 29}}));
  // The guard-discipline contract binds library code only; tests and
  // benches may hold loose state.
  EXPECT_TRUE(LintContent("tests/r6_unguarded_members.cc", content).empty());
}

TEST(CkrLintTest, R7FlagsImplicitSeqCstOps) {
  const std::string content = ReadFixture("r7_memory_order.cc");
  auto vs = LintContent("src/r7_memory_order.cc", content);
  EXPECT_EQ(RuleLines(vs), (std::multiset<RuleLine>{
                               {"R7", 10}, {"R7", 11}, {"R7", 12}, {"R7", 15}}));
  EXPECT_TRUE(LintContent("bench/r7_memory_order.cc", content).empty());
}

TEST(CkrLintTest, SignatureModulePathIsCoveredByR1R6R7) {
  // The signature prefilter's contract hinges on deterministic bit
  // positions (R1) and cleanly-disciplined rejection counters (R6/R7);
  // this fixture plants the canonical violation of each under the
  // module's own virtual path, proving the rules bind there. The
  // whole-tree lint test covers the real doc_signature sources.
  const std::string content = ReadFixture("sig_prefilter_bad.cc");
  auto vs = LintContent("src/index/doc_signature_bad.cc", content);
  EXPECT_EQ(RuleLines(vs), (std::multiset<RuleLine>{
                               {"R1", 16}, {"R7", 18}, {"R6", 23}}));
  // The same content under tests/ keeps only the determinism rule: R6/R7
  // bind library code, R1 binds everywhere (reproducibility contract).
  auto test_vs = LintContent("tests/doc_signature_bad.cc", content);
  EXPECT_EQ(RuleLines(test_vs), (std::multiset<RuleLine>{{"R1", 16}}));
}

TEST(CkrLintTest, R8FlagsLockOrderInversions) {
  const std::string content = ReadFixture("r8_lock_order.cc");
  auto vs = LintContent("src/r8_lock_order.cc", content);
  // Line 19 inverts through the transitive closure of the two declared
  // edges; line 23 inverts a direct edge via the MutexLock form.
  EXPECT_EQ(RuleLines(vs),
            (std::multiset<RuleLine>{{"R8", 19}, {"R8", 23}}));
}

TEST(CkrLintTest, R8OnlyBindsDeclaredLocks) {
  // Neutralizing the declaration marker (same length, so lines hold)
  // empties the hierarchy and the identical nesting is no violation:
  // R8 enforces declared order, it does not guess one.
  std::string content = ReadFixture("r8_lock_order.cc");
  size_t at;
  while ((at = content.find("ckr-lock-order:")) != std::string::npos) {
    content.replace(at, 15, "ckr-lock-nixed:");
  }
  EXPECT_TRUE(LintContent("src/r8_lock_order.cc", content).empty());
}

TEST(CkrLintTest, LockOrderRegistryIsGlobalAcrossFiles) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "ckr_lint_xfile" / "src";
  fs::create_directories(dir);
  const std::string header = "// ckr-lock-order: fine_mu < coarse_mu\n";
  const std::string body =
      "#include <mutex>\n"
      "void Bad(std::mutex& fine_mu, std::mutex& coarse_mu) {\n"
      "  std::lock_guard<std::mutex> a(coarse_mu);\n"
      "  std::lock_guard<std::mutex> b(fine_mu);\n"
      "}\n";
  const std::string order_h = (dir / "order.h").string();
  const std::string use_cc = (dir / "use.cc").string();
  std::ofstream(order_h, std::ios::binary) << header;
  std::ofstream(use_cc, std::ios::binary) << body;

  // The declaration lives in one file, the inversion in another: only
  // the two-pass run can connect them.
  LintRunResult run = LintFiles({order_h, use_cc}, 1);
  ASSERT_EQ(run.violations.size(), 1u);
  EXPECT_EQ(run.violations[0].rule, "R8");
  EXPECT_EQ(run.violations[0].file, use_cc);
  EXPECT_EQ(run.violations[0].line, 4);
  EXPECT_TRUE(run.errors.empty());

  // Single-file mode sees no declarations and stays silent.
  EXPECT_TRUE(LintContent("src/use.cc", body).empty());
}

TEST(CkrLintTest, ParallelLintIsByteIdenticalToSerial) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "ckr_lint_par" / "src";
  fs::create_directories(dir);
  std::vector<std::string> paths;
  for (const char* fixture :
       {"r1_nondeterminism.cc", "r5_banned_functions.cc",
        "r6_unguarded_members.cc", "r7_memory_order.cc", "r8_lock_order.cc",
        "clean.cc", "suppressed.cc"}) {
    const std::string dst = (dir / fixture).string();
    std::ofstream(dst, std::ios::binary) << ReadFixture(fixture);
    paths.push_back(dst);
  }
  const LintRunResult serial = LintFiles(paths, 1);
  EXPECT_FALSE(serial.violations.empty());
  for (unsigned jobs : {2u, 4u, 8u}) {
    const LintRunResult parallel = LintFiles(paths, jobs);
    EXPECT_EQ(LintReportJson(serial), LintReportJson(parallel))
        << "jobs=" << jobs;
  }
}

TEST(CkrLintTest, JsonReportIsDeterministicBytes) {
  LintRunResult r;
  r.files = 2;
  r.violations.push_back({"src/a.cc", 3, "R5", "uses \"atoi\""});
  r.errors.push_back("src/missing.cc: cannot open");
  EXPECT_EQ(LintReportJson(r),
            "{\"errors\":[\"src/missing.cc: cannot open\"],\"files\":2,"
            "\"violations\":[{\"file\":\"src/a.cc\",\"line\":3,"
            "\"message\":\"uses \\\"atoi\\\"\",\"rule\":\"R5\"}]}\n");
}

TEST(CkrLintTest, LintFilesReportsUnreadablePaths) {
  LintRunResult run = LintFiles({"src/definitely_not_here.cc"}, 1);
  ASSERT_EQ(run.errors.size(), 1u);
  EXPECT_NE(run.errors[0].find("definitely_not_here"), std::string::npos);
  EXPECT_FALSE(run.clean());
}

TEST(CkrLintTest, LockOrderSpecClosesTransitively) {
  LockOrderSpec spec;
  spec.AddEdge("a", "b");
  spec.AddEdge("b", "c");
  spec.Finalize();
  EXPECT_TRUE(spec.Declared("a"));
  EXPECT_TRUE(spec.Declared("c"));
  EXPECT_FALSE(spec.Declared("d"));
  EXPECT_TRUE(spec.Before("a", "b"));
  EXPECT_TRUE(spec.Before("a", "c"));
  EXPECT_FALSE(spec.Before("c", "a"));
  EXPECT_FALSE(spec.Before("b", "a"));
}

TEST(CkrLintTest, CleanFixtureHasNoViolations) {
  auto vs = LintContent("src/clean.cc", ReadFixture("clean.cc"));
  for (const auto& v : vs) ADD_FAILURE() << FormatViolation(v);
}

TEST(CkrLintTest, SuppressionsSilenceEachForm) {
  auto vs = LintContent("src/suppressed.cc", ReadFixture("suppressed.cc"));
  for (const auto& v : vs) ADD_FAILURE() << FormatViolation(v);
}

TEST(CkrLintTest, SuppressionIsRuleScoped) {
  // allow(R1) must not silence an R5 violation on the same line.
  const std::string content =
      "int f(const char* s) {\n"
      "  return atoi(s);  // ckr-lint: allow(R1)\n"
      "}\n";
  auto vs = LintContent("src/x.cc", content);
  EXPECT_EQ(RuleLines(vs), (std::multiset<RuleLine>{{"R5", 2}}));
}

TEST(CkrLintTest, CommentsAndStringsAreNotCode) {
  const std::string content =
      "// rand() in a comment\n"
      "/* std::random_device in a block\n   comment */\n"
      "const char* s = \"throw strcpy(\";\n"
      "const char* r = R\"(try { rand(); })\";\n";
  EXPECT_TRUE(LintContent("src/x.cc", content).empty());
}

TEST(CkrLintTest, FormatViolationIsFileLineRuleMessage) {
  Violation v{"src/a.cc", 12, "R1", "msg"};
  EXPECT_EQ(FormatViolation(v), "src/a.cc:12: [R1] msg");
}

TEST(CkrLintTest, ClassifyPathUnderstandsRepoLayout) {
  EXPECT_EQ(ClassifyPath("src/common/rng.cc"), FileKind::kSrc);
  EXPECT_EQ(ClassifyPath("/root/repo/src/common/rng.cc"), FileKind::kSrc);
  EXPECT_EQ(ClassifyPath("bench/bench_offline_perf.cc"), FileKind::kBench);
  EXPECT_EQ(ClassifyPath("tests/core_test.cc"), FileKind::kTests);
  EXPECT_EQ(ClassifyPath("examples/quickstart.cpp"), FileKind::kOther);
}

// The acceptance gate as a test: the real src/ tree must lint clean, so a
// regression that introduces a violation fails in ctest, not just in the
// check_all.sh script.
TEST(CkrLintTest, RepoSrcTreeIsClean) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path(CKR_LINT_SOURCE_DIR);
  ASSERT_TRUE(fs::is_directory(root / "src"));
  size_t files = 0;
  for (const auto& entry : fs::recursive_directory_iterator(root / "src")) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".cc" && ext != ".h") continue;
    auto result = LintPath(entry.path().string());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    for (const auto& v : *result) ADD_FAILURE() << FormatViolation(v);
    ++files;
  }
  EXPECT_GT(files, 50u);  // Sanity: the walk actually saw the tree.
}

// The same gate through the two-pass runner: the whole tree (src, bench,
// tests, tools — what CI lints) must be clean against the *global*
// lock-order registry, which single-file LintPath cannot see.
TEST(CkrLintTest, RepoTreeIsCleanUnderGlobalLockOrderRegistry) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path(CKR_LINT_SOURCE_DIR);
  std::vector<std::string> paths;
  for (const char* dir : {"src", "bench", "tests", "tools"}) {
    ASSERT_TRUE(fs::is_directory(root / dir)) << dir;
    for (const auto& entry :
         fs::recursive_directory_iterator(root / dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string p = entry.path().string();
      const std::string ext = entry.path().extension().string();
      if (ext != ".cc" && ext != ".h") continue;
      if (p.find("testdata") != std::string::npos) continue;
      paths.push_back(p);
    }
  }
  std::sort(paths.begin(), paths.end());
  const LintRunResult run = LintFiles(paths, 2);
  for (const auto& e : run.errors) ADD_FAILURE() << e;
  for (const auto& v : run.violations) ADD_FAILURE() << FormatViolation(v);
  EXPECT_GT(run.files, 100u);
}

TEST(CkrLintTest, RealClockUsesLineScopedSuppressionNotAnExemption) {
  // src/obs/real_clock.cc is the one sanctioned steady_clock::now call
  // site in src/. It must lint clean via a single line-scoped allow(R1)
  // comment — and the same content with that comment stripped must be
  // flagged, proving the linter gained no hidden path exemption for obs.
  namespace fs = std::filesystem;
  const fs::path path =
      fs::path(CKR_LINT_SOURCE_DIR) / "src" / "obs" / "real_clock.cc";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string content = buf.str();
  EXPECT_TRUE(LintContent("src/obs/real_clock.cc", content).empty());

  const std::string suppression = "// ckr-lint: allow(R1)";
  const auto at = content.find(suppression);
  ASSERT_NE(at, std::string::npos);
  EXPECT_EQ(content.find(suppression, at + 1), std::string::npos)
      << "real_clock.cc should need exactly one suppression";
  content.erase(at, suppression.size());
  auto vs = LintContent("src/obs/real_clock.cc", content);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "R1");
}

}  // namespace
}  // namespace lint
}  // namespace ckr
