#!/usr/bin/env bash
# The one gate: tier-1 tests, the three sanitizer suites (with
# CKR_DCHECK invariants live — the presets set CKR_ENABLE_DCHECKS, which
# also arms the runtime lock-order registry), the ckr_lint contract
# linter over the tree, and the clang thread-safety-analysis build plus
# clang-tidy when clang is available.
# Exits non-zero if anything fails; CI runs exactly this script.
#
# Usage: scripts/check_all.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: configure + build + ctest (default preset) =="
cmake --preset default
cmake --build --preset default -j "$(nproc)"
ctest --preset default -j "$(nproc)"

echo "== corpus-scale smoke: 50k-doc streamed build + docid reorder =="
# Streams a ~50k-doc scaled world through the out-of-core index build,
# checks bisection reordering shrinks the compressed postings while every
# evaluator stays bit-identical, and sanity-checks the ORCAS-shaped click
# log. Plain ctest skips this test; the env flag arms it here.
CKR_SCALE_SMOKE=1 ./build/tests/scale_smoke_test

echo "== signature smoke: prefilter exact-safety + rejection rate at 6k docs =="
# One paper-scale signature-prefilter leg from the offline bench: phrase
# counts/hits and pattern spans must be bit-identical with the gate on and
# off (exits non-zero on any divergence) and the rejection-rate/wall-clock
# numbers are printed for the log. The full two-scale sweep lands in
# BENCH_offline.json via a plain bench_offline_perf run.
CKR_BENCH_SIGNATURE_SMOKE=1 ./build/bench/bench_offline_perf

echo "== serving smoke: sharded oracle bit-identity, hot swap, shedding =="
# Ungated (also part of plain ctest); re-run standalone here so a serving
# regression is named in the gate output instead of buried in the suite.
./build/tests/serve_smoke_test

echo "== ckr_lint: contract rules over src/ bench/ tests/ tools/ =="
# Also writes the machine-readable report CI archives as an artifact.
./build/tools/ckr_lint --json build/ckr_lint.json

echo "== obs kill switch: CKR_OBS_DISABLED build + rank-fingerprint diff =="
# Build with every CKR_OBS_* hook compiled out, run the kill-switch suite,
# then prove observability never changes ranking: obs_disabled_test writes
# an FNV-1a fingerprint of its ranked output — which also folds in the
# block-index top-50 results of every query evaluator (exhaustive,
# MaxScore, Block-Max-WAND), so the diff covers the block postings build
# and the pruned search paths too — and the fingerprint from the
# instrumented build must be byte-identical to the obs-off one.
cmake --preset obs-off
cmake --build --preset obs-off -j "$(nproc)"
ctest --preset obs-off -j "$(nproc)"
fp_dir="$(mktemp -d)"
trap 'rm -rf "$fp_dir"' EXIT
CKR_RANK_FINGERPRINT_FILE="$fp_dir/default.fp" \
  ./build/tests/obs_disabled_test \
  --gtest_filter='ObsDisabledTest.RankerOutputFingerprint' > /dev/null
CKR_RANK_FINGERPRINT_FILE="$fp_dir/obs_off.fp" \
  ./build-obs-off/tests/obs_disabled_test \
  --gtest_filter='ObsDisabledTest.RankerOutputFingerprint' > /dev/null
diff "$fp_dir/default.fp" "$fp_dir/obs_off.fp"
echo "rank fingerprint identical across obs-on/obs-off: $(cat "$fp_dir/default.fp")"

echo "== asan =="
scripts/asan_check.sh
echo "== tsan =="
scripts/tsan_check.sh
echo "== ubsan =="
scripts/ubsan_check.sh

echo "== clang -Wthread-safety (skipped gracefully when unavailable) =="
scripts/clang_tsa_check.sh

echo "== clang-tidy (skipped gracefully when unavailable) =="
scripts/tidy_check.sh

echo "check_all: OK"
