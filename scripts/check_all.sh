#!/usr/bin/env bash
# The one gate: tier-1 tests, the three sanitizer suites (with
# CKR_DCHECK invariants live — the presets set CKR_ENABLE_DCHECKS), the
# ckr_lint contract linter over the tree, and clang-tidy when available.
# Exits non-zero if anything fails; CI runs exactly this script.
#
# Usage: scripts/check_all.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: configure + build + ctest (default preset) =="
cmake --preset default
cmake --build --preset default -j "$(nproc)"
ctest --preset default -j "$(nproc)"

echo "== ckr_lint: contract rules over src/ bench/ tests/ tools/ =="
./build/tools/ckr_lint

echo "== asan =="
scripts/asan_check.sh
echo "== tsan =="
scripts/tsan_check.sh
echo "== ubsan =="
scripts/ubsan_check.sh

echo "== clang-tidy (skipped gracefully when unavailable) =="
scripts/tidy_check.sh

echo "check_all: OK"
