#!/usr/bin/env bash
# Runs clang-tidy (config in .clang-tidy) over src/ using the compile
# database from the default preset. The container image used for growth
# sessions does not ship clang-tidy, so absence is a skip, not a failure —
# ckr_lint carries the repo-specific contracts either way.
#
# Usage: scripts/tidy_check.sh [files...]
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "tidy_check: clang-tidy not found; skipping (ckr_lint still gates)"
  exit 0
fi

if [[ ! -f build/compile_commands.json ]]; then
  cmake --preset default -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

files=("$@")
if [[ ${#files[@]} -eq 0 ]]; then
  mapfile -t files < <(find src -name '*.cc' | sort)
fi

clang-tidy -p build --quiet "${files[@]}"
echo "tidy_check: OK (${#files[@]} files)"
