#!/usr/bin/env bash
# Builds the concurrency-sensitive targets under ThreadSanitizer and runs
# the detector/framework/batch test suites. ProcessBatch is the only
# multi-threaded steady-state path, so a clean run here is the data-race
# gate for the Section VI serving layer.
#
# Usage: scripts/tsan_check.sh [extra ctest args]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)" --target \
  common_test detect_test framework_test batch_test offline_parallel_test \
  training_parallel_test
ctest --test-dir build-tsan --output-on-failure "$@" \
  -R '(Batch|Parallel|Detector|AhoCorasick|Runtime|TidTable|QuantizedStore|PackedRelevance)'
