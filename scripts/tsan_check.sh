#!/usr/bin/env bash
# Builds the concurrency-sensitive targets under ThreadSanitizer and runs
# the detector/framework/batch suites plus the serving-daemon suites
# (bounded MPMC queue, RCU snapshot swap under concurrent readers, the
# worker pool's shed/serve paths, and the swap-under-load smoke). A clean
# run here is the data-race gate for the multi-threaded paths.
#
# Usage: scripts/tsan_check.sh [extra ctest args]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)" --target \
  common_test detect_test framework_test batch_test offline_parallel_test \
  training_parallel_test serve_test serve_smoke_test
ctest --test-dir build-tsan --output-on-failure "$@" \
  -R '(Batch|Parallel|Detector|AhoCorasick|Runtime|TidTable|QuantizedStore|PackedRelevance|RequestQueue|SnapshotRegistry|ServeDaemon|ServeSmoke)'
