#!/usr/bin/env bash
# Builds the tree with clang so -Wthread-safety (armed only for clang in
# the root CMakeLists) type-checks the CKR_* capability annotations at
# -Werror: guarded fields touched without their mutex, CKR_EXCLUDES
# violations, and unbalanced acquire/release all fail the build.
#
# The growth container ships only g++, so absence of clang++ is a skip,
# not a failure (the tidy_check.sh pattern) — ckr_lint rules R6-R8 still
# gate the annotations' presence and the declared lock order on every
# build, and the runtime LockOrderRegistry checks ordering under the
# sanitizer presets.
#
# Usage: scripts/clang_tsa_check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang++ >/dev/null 2>&1; then
  echo "clang_tsa_check: clang++ not found; skipping (ckr_lint R6-R8 still gate)"
  exit 0
fi

cmake --preset clang-tsa
cmake --build --preset clang-tsa -j "$(nproc)"
echo "clang_tsa_check: OK (-Wthread-safety -Werror clean)"
