#!/usr/bin/env bash
# Builds the training & evaluation suites under UndefinedBehaviorSanitizer
# and runs them. The flat trainer does manual pointer arithmetic over the
# pre-transformed matrix and the pair-difference rows, and the v2 model
# format round-trips raw little-endian doubles, so a clean run here is the
# UB gate for the contiguous training engine.
#
# Usage: scripts/ubsan_check.sh [extra ctest args]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset ubsan
cmake --build --preset ubsan -j "$(nproc)" --target \
  ranksvm_test training_parallel_test eval_test core_test
ctest --test-dir build-ubsan --output-on-failure "$@" \
  -R '(RankSvm|TrainingParallel|Bootstrap|Core)'
