#!/usr/bin/env bash
# Builds the index + offline-mining test suites under AddressSanitizer and
# runs them. The flat index hand-manages CSR offsets and a shared Golomb
# byte pool, and the block-compressed postings layer decodes untrusted
# codec blobs into fixed stack arrays through hand-rolled cursors, so a
# clean run here is the memory-safety gate for the term-id layout, the
# block index, and the equivalence suites that compare them to the legacy
# index byte for byte.
#
# Usage: scripts/asan_check.sh [extra ctest args]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset asan
cmake --build --preset asan -j "$(nproc)" --target \
  index_test index_equiv_test block_index_test offline_parallel_test
ctest --test-dir build-asan --output-on-failure "$@" \
  -R '(Index|Snippet|ParallelMining|Codec|Store|BlockIndex|BlockMax)'
