// Unit tests for ckr_clicks: the click model and tracking reports.
#include <gtest/gtest.h>

#include "clicks/click_model.h"
#include "corpus/doc_generator.h"
#include "corpus/world.h"
#include "detect/entity_detector.h"

namespace ckr {
namespace {

WorldConfig SmallWorld() {
  WorldConfig cfg;
  cfg.num_topics = 6;
  cfg.background_vocab = 600;
  cfg.words_per_topic = 40;
  cfg.num_named_entities = 150;
  cfg.num_concepts = 80;
  cfg.num_generic_concepts = 10;
  return cfg;
}

class ClicksTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto world_or = World::Create(SmallWorld());
    ASSERT_TRUE(world_or.ok());
    world_ = std::move(*world_or);
    gen_ = std::make_unique<DocGenerator>(*world_);
    detector_ = std::make_unique<EntityDetector>(
        EntityDetector::FromWorld(*world_, nullptr, {}));
  }

  StoryReport SimulateStory(DocId id, const ClickModelConfig& cfg = {}) {
    Document story = gen_->Generate(Document::Kind::kNews, id);
    ClickSimulator sim(*world_, cfg);
    return sim.Simulate(story, detector_->Detect(story.text));
  }

  std::unique_ptr<World> world_;
  std::unique_ptr<DocGenerator> gen_;
  std::unique_ptr<EntityDetector> detector_;
};

TEST_F(ClicksTest, ReportShape) {
  StoryReport report = SimulateStory(1);
  EXPECT_GT(report.views, 0u);
  ASSERT_FALSE(report.annotations.empty());
  for (const AnnotationRecord& a : report.annotations) {
    EXPECT_EQ(a.views, report.views);  // Paper: views == story views.
    EXPECT_LE(a.clicks, a.views);
    EXPECT_NE(a.type, EntityType::kPattern);
    EXPECT_FALSE(a.key.empty());
  }
}

TEST_F(ClicksTest, DistinctKeysCollapseToEarliestPosition) {
  StoryReport report = SimulateStory(2);
  std::unordered_set<std::string> keys;
  for (const AnnotationRecord& a : report.annotations) {
    EXPECT_TRUE(keys.insert(a.key).second) << "duplicate " << a.key;
  }
}

TEST_F(ClicksTest, DeterministicPerStory) {
  StoryReport a = SimulateStory(3);
  StoryReport b = SimulateStory(3);
  ASSERT_EQ(a.annotations.size(), b.annotations.size());
  EXPECT_EQ(a.views, b.views);
  for (size_t i = 0; i < a.annotations.size(); ++i) {
    EXPECT_EQ(a.annotations[i].clicks, b.annotations[i].clicks);
  }
}

TEST_F(ClicksTest, ViewScaleMultipliesViews) {
  Document story = gen_->Generate(Document::Kind::kNews, 4);
  ClickSimulator sim(*world_, {});
  auto dets = detector_->Detect(story.text);
  StoryReport r1 = sim.Simulate(story, dets, 1.0);
  StoryReport r4 = sim.Simulate(story, dets, 4.0);
  EXPECT_NEAR(static_cast<double>(r4.views),
              4.0 * static_cast<double>(r1.views), 2.0);
}

TEST_F(ClicksTest, RelevantInterestingEntitiesEarnHigherCtr) {
  // Aggregate over many stories: CTR of high-latent annotations beats
  // low-latent ones.
  double hi_ctr = 0, lo_ctr = 0;
  size_t hi_n = 0, lo_n = 0;
  for (DocId id = 0; id < 120; ++id) {
    Document story = gen_->Generate(Document::Kind::kNews, id);
    ClickSimulator sim(*world_, {});
    StoryReport report = sim.Simulate(story, detector_->Detect(story.text));
    for (const AnnotationRecord& a : report.annotations) {
      EntityId eid = world_->FindByKey(a.key);
      if (eid == kInvalidEntity) continue;
      double g = world_->entity(eid).interestingness;
      double r = story.TruthRelevance(eid);
      double quality = 0.45 * r + 0.3 * g + 0.25 * r * g;
      if (quality > 0.4) {
        hi_ctr += a.Ctr();
        ++hi_n;
      } else if (quality < 0.1) {
        lo_ctr += a.Ctr();
        ++lo_n;
      }
    }
  }
  ASSERT_GT(hi_n, 20u);
  ASSERT_GT(lo_n, 20u);
  EXPECT_GT(hi_ctr / static_cast<double>(hi_n),
            2.0 * (lo_ctr / static_cast<double>(lo_n) + 1e-4));
}

TEST_F(ClicksTest, PositionBiasReducesClickProbability) {
  Document story = gen_->Generate(Document::Kind::kNews, 7);
  ClickSimulator sim(*world_, {});
  ASSERT_FALSE(story.mentions.empty());
  const std::string& key = world_->entity(story.mentions[0].entity).key;
  // Average the noisy probability over many draws at both positions.
  double front = 0, back = 0;
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    front += sim.ClickProbability(story, key, 0, rng);
    back += sim.ClickProbability(story, key, story.text.size() - 1, rng);
  }
  EXPECT_GT(front, 1.5 * back);
}

TEST_F(ClicksTest, UnknownKeysGetFloorLatents) {
  Document story = gen_->Generate(Document::Kind::kNews, 8);
  ClickSimulator sim(*world_, {});
  Rng rng(6);
  double unknown = 0;
  for (int i = 0; i < 500; ++i) {
    unknown += sim.ClickProbability(story, "zz unknown zz", 0, rng);
  }
  unknown /= 500;
  EXPECT_LT(unknown, sim.config().base_ctr * 0.1);
}

TEST(FilterReportsTest, AppliesCleaningRules) {
  auto make = [](uint64_t views, std::vector<uint64_t> clicks) {
    StoryReport r;
    r.views = views;
    for (size_t i = 0; i < clicks.size(); ++i) {
      AnnotationRecord a;
      a.key = "k" + std::to_string(i);
      a.views = views;
      a.clicks = clicks[i];
      r.annotations.push_back(a);
    }
    return r;
  };
  std::vector<StoryReport> reports = {
      make(100, {5, 2}),   // Kept.
      make(10, {5, 2}),    // Dropped: < 30 views.
      make(100, {9}),      // Dropped: single concept.
      make(100, {3, 3}),   // Dropped: no concept with > 3 clicks.
      make(35, {4, 0, 0}), // Kept: exactly at the boundaries.
  };
  auto kept = FilterReports(reports, {});
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].views, 100u);
  EXPECT_EQ(kept[1].views, 35u);
}

TEST(FilterReportsTest, CustomThresholds) {
  StoryReport r;
  r.views = 50;
  for (int i = 0; i < 3; ++i) {
    AnnotationRecord a;
    a.key = "k" + std::to_string(i);
    a.views = 50;
    a.clicks = 2;
    r.annotations.push_back(a);
  }
  ReportFilter strict;
  strict.min_top_clicks = 1;
  EXPECT_EQ(FilterReports({r}, strict).size(), 1u);
  strict.min_views = 60;
  EXPECT_TRUE(FilterReports({r}, strict).empty());
}

}  // namespace
}  // namespace ckr
