// Parameterized property suites: invariants swept over parameter grids
// (TEST_P / INSTANTIATE_TEST_SUITE_P), plus randomized cross-checks of
// optimized components against brute-force references.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "corpus/document.h"
#include "detect/aho_corasick.h"
#include "detect/entity_detector.h"
#include "detect/pattern_detector.h"
#include "index/block_codecs.h"
#include "index/inverted_index.h"
#include "eval/metrics.h"
#include "framework/bitstream.h"
#include "framework/golomb.h"
#include "ranksvm/rank_svm.h"
#include "serve/sharded_index.h"
#include "text/porter_stemmer.h"
#include "text/sentence.h"
#include "text/tokenizer.h"

namespace ckr {
namespace {

// ---------- Golomb coding over a parameter grid ----------

class GolombSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GolombSweep, RoundTripRandomValues) {
  const uint64_t m = GetParam();
  Rng rng(m * 977 + 1);
  BitWriter writer;
  std::vector<uint64_t> values;
  for (int i = 0; i < 200; ++i) {
    uint64_t v = rng.NextBounded(1 + m * 20);
    values.push_back(v);
    GolombEncode(v, m, &writer);
  }
  auto bytes = writer.Finish();
  BitReader reader(bytes);
  for (uint64_t v : values) {
    ASSERT_EQ(GolombDecode(m, &reader), v) << "m=" << m;
  }
  EXPECT_FALSE(reader.overflow());
}

INSTANTIATE_TEST_SUITE_P(Parameters, GolombSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 31,
                                           64, 100, 1000));

// ---------- Window partitioning over (size, window, overlap) ----------

class WindowSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(WindowSweep, CoverageStrideAndBounds) {
  auto [text_size, window, overlap] = GetParam();
  if (overlap >= window) {
    GTEST_SKIP() << "invalid combination (API requires overlap < window)";
  }
  auto spans = PartitionIntoWindows(text_size, window, overlap);
  if (text_size == 0) {
    EXPECT_TRUE(spans.empty());
    return;
  }
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans.front().begin, 0u);
  EXPECT_EQ(spans.back().end, text_size);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_LT(spans[i].begin, spans[i].end);
    EXPECT_LE(spans[i].size(), window);
    if (i > 0) {
      EXPECT_EQ(spans[i].begin, spans[i - 1].begin + (window - overlap));
      EXPECT_LE(spans[i].begin, spans[i - 1].end);  // No gaps.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Parameters, WindowSweep,
    ::testing::Combine(::testing::Values(0u, 1u, 100u, 2499u, 2500u, 2501u,
                                         9999u, 20000u),
                       ::testing::Values(2500u, 1000u, 300u),
                       ::testing::Values(0u, 100u, 500u)));

// ---------- Zipf sampler over (n, exponent) ----------

class ZipfSweep
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(ZipfSweep, PmfNormalizedAndMonotone) {
  auto [n, exponent] = GetParam();
  ZipfSampler zipf(n, exponent);
  double total = 0;
  for (size_t r = 1; r <= n; ++r) {
    total += zipf.Pmf(r);
    if (r > 1) {
      EXPECT_LE(zipf.Pmf(r), zipf.Pmf(r - 1) + 1e-15);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  Rng rng(static_cast<uint64_t>(static_cast<double>(n * 1000) +
                                 exponent * 10));
  for (int i = 0; i < 1000; ++i) {
    size_t r = zipf.Sample(rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Parameters, ZipfSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 10u, 100u, 5000u),
                       ::testing::Values(0.5, 1.0, 1.07, 1.5, 2.0)));

// ---------- Porter stemmer over random pseudo-words ----------

class StemmerSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StemmerSweep, OutputIsSaneForRandomWords) {
  Rng rng(GetParam());
  const char alphabet[] = "abcdefghijklmnopqrstuvwxyz";
  for (int i = 0; i < 500; ++i) {
    size_t len = 1 + rng.NextBounded(14);
    std::string word;
    for (size_t c = 0; c < len; ++c) {
      word.push_back(alphabet[rng.NextBounded(26)]);
    }
    std::string stem = PorterStem(word);
    ASSERT_FALSE(stem.empty()) << word;
    EXPECT_LE(stem.size(), word.size() + 1) << word;  // "+1": -iz -> -ize.
    // Stem is a lower-case alphabetic string.
    for (char c : stem) {
      EXPECT_TRUE(c >= 'a' && c <= 'z') << word << " -> " << stem;
    }
    // Stemming never touches words of length <= 2.
    if (word.size() <= 2) {
      EXPECT_EQ(stem, word);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StemmerSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------- Tokenizer offsets over random byte soup ----------

class TokenizerSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TokenizerSweep, OffsetsAlwaysConsistent) {
  Rng rng(GetParam());
  const char charset[] =
      "abc XYZ 019 .,!?()'\"\t\n-@/:;";
  for (int trial = 0; trial < 60; ++trial) {
    size_t len = rng.NextBounded(300);
    std::string text;
    for (size_t i = 0; i < len; ++i) {
      text.push_back(charset[rng.NextBounded(sizeof(charset) - 1)]);
    }
    for (const Token& tok : Tokenize(text)) {
      ASSERT_LT(tok.begin, tok.end);
      ASSERT_LE(tok.end, text.size());
      EXPECT_EQ(text.substr(tok.begin, tok.end - tok.begin), tok.raw);
      EXPECT_FALSE(tok.text.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenizerSweep,
                         ::testing::Values(11, 22, 33));

// ---------- Pairwise error metric properties ----------

class MetricsSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricsSweep, ErrorRateBoundsAndExtremes) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    size_t n = 2 + rng.NextBounded(10);
    std::vector<double> ctr(n), pred(n);
    for (size_t i = 0; i < n; ++i) {
      ctr[i] = rng.NextDouble();
      pred[i] = rng.NextDouble();
    }
    for (bool weighted : {false, true}) {
      double e = PairwiseErrorRate(pred, ctr, weighted);
      ASSERT_GE(e, 0.0);
      ASSERT_LE(e, 1.0);
      // Ranking by the labels themselves is perfect; by their negation,
      // maximally wrong.
      EXPECT_DOUBLE_EQ(PairwiseErrorRate(ctr, ctr, weighted), 0.0);
      std::vector<double> neg(n);
      for (size_t i = 0; i < n; ++i) neg[i] = -ctr[i];
      EXPECT_DOUBLE_EQ(PairwiseErrorRate(neg, ctr, weighted), 1.0);
      // Complement property: flipping the prediction flips the error.
      double flipped = PairwiseErrorRate(neg, ctr, weighted);
      EXPECT_NEAR(e + PairwiseErrorRate(pred, ctr, weighted), e + e, 1e-12);
      (void)flipped;
    }
  }
}

TEST_P(MetricsSweep, NdcgBoundsAndPerfection) {
  Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 30; ++trial) {
    size_t n = 1 + rng.NextBounded(12);
    std::vector<double> ctr(n), pred(n);
    for (size_t i = 0; i < n; ++i) {
      ctr[i] = rng.NextDouble() * 0.2;
      pred[i] = rng.NextDouble();
    }
    CtrBucketizer buckets(ctr);
    for (size_t k = 1; k <= 3; ++k) {
      double x = NdcgAtK(pred, ctr, buckets, k);
      ASSERT_GE(x, 0.0);
      ASSERT_LE(x, 1.0 + 1e-12);
      EXPECT_NEAR(NdcgAtK(ctr, ctr, buckets, k), 1.0, 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsSweep, ::testing::Values(7, 17, 27));

// ---------- Aho-Corasick vs brute force ----------

class AhoCorasickSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AhoCorasickSweep, MatchesBruteForceOnRandomStreams) {
  Rng rng(GetParam());
  const char* vocab[] = {"a", "b", "c", "d", "e"};
  for (int trial = 0; trial < 20; ++trial) {
    // Random patterns of 1-3 tokens.
    PhraseMatcher matcher;
    std::vector<std::vector<std::string>> patterns;
    size_t n_patterns = 1 + rng.NextBounded(8);
    std::set<std::string> seen_phrases;
    for (size_t p = 0; p < n_patterns; ++p) {
      size_t len = 1 + rng.NextBounded(3);
      std::vector<std::string> pat;
      std::string phrase;
      for (size_t t = 0; t < len; ++t) {
        pat.push_back(vocab[rng.NextBounded(5)]);
        if (t > 0) phrase += " ";
        phrase += pat.back();
      }
      if (!seen_phrases.insert(phrase).second) continue;
      ASSERT_TRUE(
          matcher.AddPhrase(phrase, static_cast<uint32_t>(patterns.size()))
              .ok());
      patterns.push_back(pat);
    }
    matcher.Build();

    // Random token stream.
    std::vector<std::string> tokens;
    size_t stream_len = rng.NextBounded(60);
    for (size_t i = 0; i < stream_len; ++i) {
      tokens.emplace_back(vocab[rng.NextBounded(5)]);
    }

    // Brute force: every (start, pattern) pair.
    std::set<std::tuple<uint32_t, uint32_t, uint32_t>> expected;
    for (uint32_t p = 0; p < patterns.size(); ++p) {
      const auto& pat = patterns[p];
      for (uint32_t s = 0; s + pat.size() <= tokens.size(); ++s) {
        bool match = true;
        for (size_t t = 0; t < pat.size(); ++t) {
          if (tokens[s + t] != pat[t]) {
            match = false;
            break;
          }
        }
        if (match) {
          expected.insert({s, static_cast<uint32_t>(pat.size()), p});
        }
      }
    }
    std::set<std::tuple<uint32_t, uint32_t, uint32_t>> actual;
    for (const PhraseMatch& m : matcher.FindAll(tokens)) {
      actual.insert({m.token_begin, m.token_count, m.payload});
    }
    ASSERT_EQ(actual, expected) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AhoCorasickSweep,
                         ::testing::Values(101, 202, 303, 404));

// ---------- RankSVM learnability across problem shapes ----------

class RankSvmSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(RankSvmSweep, LearnsAcrossShapes) {
  auto [dim, group_size] = GetParam();
  Rng rng(dim * 131 + group_size);
  std::vector<double> w(dim);
  for (double& x : w) x = rng.NextGaussian();
  std::vector<RankingInstance> data;
  for (size_t i = 0; i < 300; ++i) {
    RankingInstance inst;
    inst.features.resize(dim);
    double score = 0;
    for (size_t d = 0; d < dim; ++d) {
      inst.features[d] = rng.NextGaussian();
      score += w[d] * inst.features[d];
    }
    inst.label = score;
    inst.group = static_cast<uint32_t>(i / group_size);
    data.push_back(std::move(inst));
  }
  auto model = RankSvmTrainer().Train(data);
  ASSERT_TRUE(model.ok());
  size_t correct = 0, total = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    for (size_t j = i + 1; j < data.size(); ++j) {
      if (data[i].group != data[j].group) continue;
      ++total;
      double si = model->Score(data[i].features);
      double sj = model->Score(data[j].features);
      if ((si > sj) == (data[i].label > data[j].label)) ++correct;
    }
  }
  ASSERT_GT(total, 50u);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.92)
      << "dim=" << dim << " group=" << group_size;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RankSvmSweep,
    ::testing::Combine(::testing::Values(1u, 3u, 8u, 17u),
                       ::testing::Values(2u, 5u, 10u)));

// ---------- Top-k evaluator equivalence over (seed, codec) ----------
//
// MaxScore and Block-Max-WAND prune with bounds that dominate the exact
// scores with zero slack (index/block_max_index.h), so on ANY corpus and
// query they must return exactly the exhaustive top-k — same docs, same
// order, bit-identical doubles. This sweep hammers that claim with random
// Zipf-ish corpora and random multi-term queries for both codecs.

class EvaluatorSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, BlockCodec>> {};

TEST_P(EvaluatorSweep, PrunedTopKIsBitIdenticalToExhaustive) {
  auto [seed, codec] = GetParam();
  Rng rng(seed);
  InvertedIndex index;
  const size_t num_docs = 150 + rng.NextBounded(250);
  for (size_t d = 0; d < num_docs; ++d) {
    std::string text;
    const size_t len = 3 + rng.NextBounded(50);
    for (size_t i = 0; i < len; ++i) {
      // Zipf-ish: skewed list lengths exercise skipping; a small head
      // vocabulary forces frequent score ties.
      const uint64_t u = rng.NextBounded(100);
      const uint64_t term = u < 55   ? rng.NextBounded(6)
                            : u < 85 ? 6 + rng.NextBounded(30)
                                     : 36 + rng.NextBounded(300);
      text += "w" + std::to_string(term) + " ";
    }
    Document doc;
    doc.id = static_cast<DocId>(d * 3 + 1);
    doc.text = std::move(text);
    index.Add(std::move(doc));
  }
  index.Finalize();
  index.RebuildBlockIndex(codec);

  for (int q = 0; q < 40; ++q) {
    std::string query;
    const size_t terms = 1 + rng.NextBounded(6);
    for (size_t t = 0; t < terms; ++t) {
      query += "w" + std::to_string(rng.NextBounded(340)) + " ";
    }
    for (size_t k : {1u, 10u, 50u}) {
      const auto oracle = index.Search(query, k);
      for (QueryEvaluator evaluator :
           {QueryEvaluator::kMaxScore, QueryEvaluator::kBlockMaxWand}) {
        const auto got = index.Search(query, k, Bm25Params{}, evaluator);
        ASSERT_EQ(oracle.size(), got.size())
            << "query=" << query << " k=" << k;
        for (size_t i = 0; i < oracle.size(); ++i) {
          ASSERT_EQ(oracle[i].doc, got[i].doc)
              << "query=" << query << " k=" << k << " rank=" << i;
          // Bit-identity, not tolerance: the pruned evaluators sum the
          // same doubles in the same order as the exhaustive scorer.
          ASSERT_EQ(oracle[i].score, got[i].score)
              << "query=" << query << " k=" << k << " rank=" << i;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndCodecs, EvaluatorSweep,
    ::testing::Combine(::testing::Values(11u, 23u, 37u, 51u),
                       ::testing::Values(BlockCodec::kVarintGB,
                                         BlockCodec::kSimple8b)),
    [](const auto& pinfo) {
      return "Seed" + std::to_string(std::get<0>(pinfo.param)) +
             (std::get<1>(pinfo.param) == BlockCodec::kVarintGB ? "VarintGB"
                                                                : "Simple8b");
    });

// ---------- Docid-order invariance (the permutation/remap contract) ------
//
// Internal docid assignment is a private layout choice: BM25 depends only
// on per-document statistics (tf, df, doc length, average length), all of
// which are permutation-invariant, and the ranking order is total (score
// descending, external id ascending). So every public read — ranked
// search under all three evaluators, disjunctive result counts, phrase
// counts — must be bit-identical under ANY permutation of the internal
// order, under every codec. This contract is what makes bisection
// reordering safe to apply inside Finalize().

class DocidOrderSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, BlockCodec>> {};

TEST_P(DocidOrderSweep, PublicReadsInvariantUnderPermutation) {
  auto [seed, codec] = GetParam();
  Rng rng(seed);
  std::vector<Document> corpus;
  const size_t num_docs = 120 + rng.NextBounded(180);
  for (size_t d = 0; d < num_docs; ++d) {
    std::string text;
    const size_t len = 3 + rng.NextBounded(50);
    for (size_t i = 0; i < len; ++i) {
      const uint64_t u = rng.NextBounded(100);
      const uint64_t term = u < 55   ? rng.NextBounded(6)
                            : u < 85 ? 6 + rng.NextBounded(30)
                                     : 36 + rng.NextBounded(300);
      text += "w" + std::to_string(term) + " ";
    }
    Document doc;
    doc.id = static_cast<DocId>(d * 3 + 1);
    doc.text = std::move(text);
    corpus.push_back(std::move(doc));
  }

  auto build = [&corpus](IndexBuildOptions opts) {
    InvertedIndex idx(std::move(opts));
    for (const Document& d : corpus) idx.Add(d);
    idx.Finalize();
    return idx;
  };
  IndexBuildOptions base_opts;
  base_opts.block_codec = codec;
  const InvertedIndex base = build(base_opts);

  // A uniformly random permutation (Fisher-Yates off the sweep's rng) and
  // the bisection order — one adversarial layout, one production layout.
  std::vector<uint32_t> perm(corpus.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<uint32_t>(i);
  for (size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[static_cast<size_t>(rng.NextBounded(i))]);
  }
  IndexBuildOptions perm_opts = base_opts;
  perm_opts.docid_order = DocidOrder::kExplicit;
  perm_opts.explicit_order = perm;
  const InvertedIndex shuffled = build(std::move(perm_opts));
  IndexBuildOptions bis_opts = base_opts;
  bis_opts.docid_order = DocidOrder::kBisection;
  const InvertedIndex clustered = build(std::move(bis_opts));
  const InvertedIndex* variants[] = {&shuffled, &clustered};

  auto expect_same = [](const std::vector<SearchResult>& a,
                        const std::vector<SearchResult>& b,
                        const std::string& query) {
    ASSERT_EQ(a.size(), b.size()) << "query=" << query;
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].doc, b[i].doc) << "query=" << query << " rank=" << i;
      ASSERT_EQ(a[i].score, b[i].score) << "query=" << query << " rank=" << i;
    }
  };
  for (int q = 0; q < 30; ++q) {
    std::string query;
    const size_t terms = 1 + rng.NextBounded(5);
    for (size_t t = 0; t < terms; ++t) {
      query += "w" + std::to_string(rng.NextBounded(340)) + " ";
    }
    for (const InvertedIndex* other : variants) {
      ASSERT_EQ(base.RegularResultCount(query),
                other->RegularResultCount(query))
          << "query=" << query;
      for (QueryEvaluator evaluator :
           {QueryEvaluator::kExhaustive, QueryEvaluator::kMaxScore,
            QueryEvaluator::kBlockMaxWand}) {
        expect_same(base.Search(query, 15, Bm25Params{}, evaluator),
                    other->Search(query, 15, Bm25Params{}, evaluator), query);
      }
    }
  }
  // Phrases sampled as adjacent token pairs of real documents, so a good
  // fraction actually match somewhere.
  for (int p = 0; p < 20; ++p) {
    const Document& d =
        corpus[static_cast<size_t>(rng.NextBounded(corpus.size()))];
    std::vector<Token> toks = Tokenize(d.text);
    if (toks.size() < 2) continue;
    const size_t at = static_cast<size_t>(rng.NextBounded(toks.size() - 1));
    const std::string phrase =
        std::string(toks[at].text) + " " + std::string(toks[at + 1].text);
    for (const InvertedIndex* other : variants) {
      ASSERT_EQ(base.PhraseResultCount(phrase), other->PhraseResultCount(phrase))
          << "phrase=" << phrase;
      expect_same(base.PhraseSearch(phrase, 10), other->PhraseSearch(phrase, 10),
                  phrase);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndCodecs, DocidOrderSweep,
    ::testing::Combine(::testing::Values(5u, 19u, 43u),
                       ::testing::Values(BlockCodec::kVarintGB,
                                         BlockCodec::kSimple8b)),
    [](const auto& pinfo) {
      return "Seed" + std::to_string(std::get<0>(pinfo.param)) +
             (std::get<1>(pinfo.param) == BlockCodec::kVarintGB ? "VarintGB"
                                                                : "Simple8b");
    });

// ---------- Sharded scatter/gather exactness (the serving contract) -----
//
// Doc-partitioned sharding with merged collection stats must be
// *bit-identical* to the single-index oracle: every document carries the
// same tf/length/norm/idf in its shard as in the union (the stats
// override), each shard's local top-k is exact under the total ranking
// order, and the merge uses the same comparator — so the global top-k is
// reproduced score-bit for score-bit at ANY shard count, under every
// evaluator.

class ShardedSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

TEST_P(ShardedSweep, TopKIsBitIdenticalToSingleIndexOracle) {
  auto [seed, num_shards] = GetParam();
  Rng rng(seed);
  const size_t num_docs = 180 + rng.NextBounded(200);

  // Oracle over the union, plus one shard per contiguous range. The
  // skewed vocabulary (as in EvaluatorSweep) forces long postings and
  // frequent cross-shard score ties.
  InvertedIndex oracle;
  std::vector<std::unique_ptr<InvertedIndex>> shards;
  for (size_t s = 0; s < num_shards; ++s) {
    shards.push_back(std::make_unique<InvertedIndex>());
  }
  for (size_t d = 0; d < num_docs; ++d) {
    std::string text;
    const size_t len = 3 + rng.NextBounded(40);
    for (size_t i = 0; i < len; ++i) {
      const uint64_t u = rng.NextBounded(100);
      const uint64_t term = u < 55   ? rng.NextBounded(6)
                            : u < 85 ? 6 + rng.NextBounded(25)
                                     : 31 + rng.NextBounded(200);
      text += "w" + std::to_string(term) + " ";
    }
    Document doc;
    doc.id = static_cast<DocId>(d * 7 + 3);
    doc.text = text;
    oracle.Add(doc);
    for (size_t s = 0; s < num_shards; ++s) {
      const ShardRange range = ShardRangeOf(s, num_shards, num_docs);
      if (d >= range.begin && d < range.end) {
        shards[s]->Add(std::move(doc));
        break;
      }
    }
  }
  oracle.Finalize();
  oracle.RebuildBlockIndex(BlockCodec::kVarintGB);
  for (auto& shard : shards) {
    shard->Finalize();
    // Built BEFORE the stats override: FromShards must rebuild it with
    // the merged (global) idf, or the pruned evaluators' maxima would
    // reflect shard-local stats and the sweep below would diverge.
    shard->RebuildBlockIndex(BlockCodec::kVarintGB);
  }
  auto sharded_or = ShardedIndex::FromShards(std::move(shards));
  ASSERT_TRUE(sharded_or.ok()) << sharded_or.status().message();
  const ShardedIndex& sharded = sharded_or.value();

  for (int q = 0; q < 30; ++q) {
    std::string query;
    const size_t terms = 1 + rng.NextBounded(5);
    for (size_t t = 0; t < terms; ++t) {
      query += "w" + std::to_string(rng.NextBounded(240)) + " ";
    }
    ASSERT_EQ(sharded.RegularResultCount(query),
              oracle.RegularResultCount(query))
        << query;
    // k=1 sits far below the tie width of the head terms: the merge must
    // resolve cross-shard ties exactly as the oracle's heap does.
    for (size_t k : {1u, 7u, 40u}) {
      const auto expected = oracle.Search(query, k);
      for (QueryEvaluator evaluator :
           {QueryEvaluator::kExhaustive, QueryEvaluator::kMaxScore,
            QueryEvaluator::kBlockMaxWand}) {
        const auto got = sharded.Search(query, k, Bm25Params{}, evaluator);
        ASSERT_EQ(got.size(), expected.size())
            << "query=" << query << " k=" << k << " shards=" << num_shards;
        for (size_t i = 0; i < got.size(); ++i) {
          ASSERT_EQ(got[i].doc, expected[i].doc)
              << "query=" << query << " k=" << k << " rank=" << i;
          ASSERT_EQ(got[i].score, expected[i].score)
              << "query=" << query << " k=" << k << " rank=" << i;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndShardCounts, ShardedSweep,
    ::testing::Combine(::testing::Values(13u, 29u, 61u),
                       ::testing::Values(1u, 2u, 4u, 8u)),
    [](const auto& pinfo) {
      return "Seed" + std::to_string(std::get<0>(pinfo.param)) + "Shards" +
             std::to_string(std::get<1>(pinfo.param));
    });

TEST(ShardedEdgeCases, EmptyShardsAreValidAndInvisible) {
  // Shards 1 and 3 hold no documents at all; search behaves as if they
  // did not exist, and FromShards accepts them.
  std::vector<std::unique_ptr<InvertedIndex>> shards;
  for (int s = 0; s < 4; ++s) {
    shards.push_back(std::make_unique<InvertedIndex>());
  }
  InvertedIndex oracle;
  for (size_t d = 0; d < 12; ++d) {
    Document doc;
    doc.id = static_cast<DocId>(d);
    doc.text = "alpha beta gamma w" + std::to_string(d % 3);
    oracle.Add(doc);
    shards[d % 2 == 0 ? 0 : 2]->Add(std::move(doc));
  }
  oracle.Finalize();
  for (auto& shard : shards) shard->Finalize();
  auto sharded_or = ShardedIndex::FromShards(std::move(shards));
  ASSERT_TRUE(sharded_or.ok()) << sharded_or.status().message();
  const ShardedIndex& sharded = sharded_or.value();
  EXPECT_EQ(sharded.NumDocs(), 12u);
  const auto expected = oracle.Search("alpha w1", 20);
  const auto got = sharded.Search("alpha w1", 20);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].doc, expected[i].doc);
    EXPECT_EQ(got[i].score, expected[i].score);
  }
}

// ---------- Signature prefilter exact-safety (zero false negatives) ------
//
// The AND-mask prefilter (index/doc_signature.h) may only ever skip true
// negatives: a rejected document provably lacks a query term. Collisions
// can let non-matching documents *through* (they fail the real positional
// check), but no matching document may be rejected — so every public read
// must be bit-identical with the prefilter on and off, on any corpus,
// under both codecs, across all three evaluators. This sweep builds twin
// indexes over random Zipf-ish corpora and hammers phrase counts, phrase
// search, ranked search, and disjunctive counts with queries drawn both
// from inside documents (guaranteed-present phrases) and at random
// (mostly-absent and partially-out-of-vocabulary phrases).

class SignatureSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, BlockCodec>> {};

TEST_P(SignatureSweep, PrefilterOnAndOffAreBitIdentical) {
  auto [seed, codec] = GetParam();
  Rng rng(seed);
  std::vector<Document> corpus;
  std::vector<std::vector<std::string>> doc_terms;
  const size_t num_docs = 120 + rng.NextBounded(180);
  for (size_t d = 0; d < num_docs; ++d) {
    std::vector<std::string> terms;
    const size_t len = 3 + rng.NextBounded(50);
    std::string text;
    for (size_t i = 0; i < len; ++i) {
      const uint64_t u = rng.NextBounded(100);
      const uint64_t term = u < 55   ? rng.NextBounded(6)
                            : u < 85 ? 6 + rng.NextBounded(30)
                                     : 36 + rng.NextBounded(300);
      terms.push_back("w" + std::to_string(term));
      text += terms.back() + " ";
    }
    Document doc;
    doc.id = static_cast<DocId>(d * 3 + 1);
    doc.text = std::move(text);
    corpus.push_back(std::move(doc));
    doc_terms.push_back(std::move(terms));
  }

  auto build = [&corpus](IndexBuildOptions opts) {
    InvertedIndex idx(std::move(opts));
    for (const Document& d : corpus) idx.Add(d);
    idx.Finalize();
    return idx;
  };
  IndexBuildOptions on_opts;
  on_opts.block_codec = codec;
  IndexBuildOptions off_opts;
  off_opts.block_codec = codec;
  off_opts.build_signature_filter = false;
  const InvertedIndex gated = build(on_opts);
  const InvertedIndex plain = build(off_opts);
  ASSERT_TRUE(gated.has_signatures());
  ASSERT_FALSE(plain.has_signatures());

  // Phrase workload: in-document windows (always present), random windows
  // with one term swapped (the adversarial terms-present-but-not-adjacent
  // shape), fully random short phrases, and degenerate inputs.
  std::vector<std::string> phrases = {"", "   ", "w0 w0", "zzz", "w0 zzz"};
  for (int q = 0; q < 30; ++q) {
    const size_t d = rng.NextBounded(num_docs);
    const std::vector<std::string>& terms = doc_terms[d];
    const size_t width = 1 + rng.NextBounded(3);
    if (terms.size() < width) continue;
    const size_t start = rng.NextBounded(terms.size() - width + 1);
    std::string phrase;
    for (size_t i = 0; i < width; ++i) phrase += terms[start + i] + " ";
    phrases.push_back(phrase);
    if (width > 1) {
      // Swap in a random term: both terms usually exist somewhere, the
      // exact window usually does not.
      std::string swapped = phrase;
      swapped += "w" + std::to_string(rng.NextBounded(340));
      phrases.push_back(swapped);
    }
  }
  for (int q = 0; q < 15; ++q) {
    std::string phrase;
    const size_t width = 2 + rng.NextBounded(3);
    for (size_t i = 0; i < width; ++i) {
      phrase += "w" + std::to_string(rng.NextBounded(340)) + " ";
    }
    phrases.push_back(phrase);
  }

  for (const std::string& phrase : phrases) {
    ASSERT_EQ(gated.PhraseResultCount(phrase), plain.PhraseResultCount(phrase))
        << "phrase='" << phrase << "'";
    for (size_t k : {1u, 10u, 50u}) {
      const auto a = gated.PhraseSearch(phrase, k);
      const auto b = plain.PhraseSearch(phrase, k);
      ASSERT_EQ(a.size(), b.size()) << "phrase='" << phrase << "' k=" << k;
      for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].doc, b[i].doc) << "phrase='" << phrase << "' k=" << k;
        ASSERT_EQ(a[i].score, b[i].score)
            << "phrase='" << phrase << "' k=" << k;
      }
    }
    // Disjunctive count over the same term bag.
    ASSERT_EQ(gated.RegularResultCount(phrase),
              plain.RegularResultCount(phrase))
        << "phrase='" << phrase << "'";
  }

  // Ranked search: the signature option must not perturb any evaluator.
  for (int q = 0; q < 15; ++q) {
    std::string query;
    const size_t terms = 1 + rng.NextBounded(6);
    for (size_t t = 0; t < terms; ++t) {
      query += "w" + std::to_string(rng.NextBounded(340)) + " ";
    }
    for (size_t k : {1u, 10u, 50u}) {
      for (QueryEvaluator evaluator :
           {QueryEvaluator::kExhaustive, QueryEvaluator::kMaxScore,
            QueryEvaluator::kBlockMaxWand}) {
        const auto a = gated.Search(query, k, Bm25Params{}, evaluator);
        const auto b = plain.Search(query, k, Bm25Params{}, evaluator);
        ASSERT_EQ(a.size(), b.size()) << "query='" << query << "' k=" << k;
        for (size_t i = 0; i < a.size(); ++i) {
          ASSERT_EQ(a[i].doc, b[i].doc) << "query='" << query << "' k=" << k;
          ASSERT_EQ(a[i].score, b[i].score)
              << "query='" << query << "' k=" << k;
        }
      }
    }
  }

  // Related-documents determinism: same result on repeated calls, never
  // contains the probe document, respects the ranking contract.
  for (int q = 0; q < 5; ++q) {
    const DocId probe = static_cast<DocId>(rng.NextBounded(num_docs) * 3 + 1);
    const auto a = gated.RelatedDocuments(probe, 10);
    const auto b = gated.RelatedDocuments(probe, 10);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].doc, b[i].doc);
      ASSERT_EQ(a[i].score, b[i].score);
      ASSERT_NE(a[i].doc, probe);
      if (i > 0) {
        ASSERT_TRUE(a[i - 1].score > a[i].score ||
                    (a[i - 1].score == a[i].score && a[i - 1].doc < a[i].doc));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndCodecs, SignatureSweep,
    ::testing::Combine(::testing::Values(11u, 23u, 37u, 51u),
                       ::testing::Values(BlockCodec::kVarintGB,
                                         BlockCodec::kSimple8b)),
    [](const auto& pinfo) {
      return "Seed" + std::to_string(std::get<0>(pinfo.param)) +
             (std::get<1>(pinfo.param) == BlockCodec::kVarintGB ? "VarintGB"
                                                                : "Simple8b");
    });

// The detector-side gates obey the same contract: detections (entities
// and patterns) are identical with the signature prefilter on and off,
// over random documents that mix entry phrases, entry fragments, pattern
// entities, and out-of-vocabulary noise.

class DetectorSignatureSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DetectorSignatureSweep, GatedDetectionsMatchUngated) {
  Rng rng(GetParam());
  std::vector<EntityDetector::DictionaryEntry> dict;
  for (int e = 0; e < 12; ++e) {
    std::string key = "e" + std::to_string(e);
    if (e % 3 != 0) key += " f" + std::to_string(e);  // Multi-term entries.
    if (e % 5 == 0) key += " g" + std::to_string(e);
    dict.push_back({key, EntityType::kConcept, 0});
  }
  DetectorOptions off;
  off.signature_prefilter = false;
  const EntityDetector gated(dict, nullptr, DetectorOptions{});
  const EntityDetector plain(dict, nullptr, off);

  const char* pattern_bits[] = {"bob@mail.example.com", "www.example.com",
                                "https://x.org/a", "555-123-4567"};
  for (int doc = 0; doc < 120; ++doc) {
    std::string text;
    const size_t len = rng.NextBounded(60);
    for (size_t i = 0; i < len; ++i) {
      const uint64_t u = rng.NextBounded(100);
      if (u < 20) {
        // An entry phrase or a fragment of one (prefix only: tests the
        // automaton's partial-match handling under the gate).
        const auto& key = dict[rng.NextBounded(dict.size())].key;
        text += rng.NextBernoulli(0.5) ? key
                                       : key.substr(0, key.find(' '));
        text += " ";
      } else if (u < 24) {
        text += std::string(pattern_bits[rng.NextBounded(4)]) + " ";
      } else {
        text += "n" + std::to_string(rng.NextBounded(400)) + " ";
      }
    }
    const auto a = gated.Detect(text);
    const auto b = plain.Detect(text);
    ASSERT_EQ(a.size(), b.size()) << "text='" << text << "'";
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].key, b[i].key);
      ASSERT_EQ(a[i].surface, b[i].surface);
      ASSERT_EQ(a[i].begin, b[i].begin);
      ASSERT_EQ(a[i].end, b[i].end);
      ASSERT_EQ(static_cast<int>(a[i].type), static_cast<int>(b[i].type));
    }
    // The raw pattern scan obeys the same on/off identity.
    std::vector<PatternMatch> pa;
    std::vector<PatternMatch> pb;
    DetectPatternsInto(text, &pa, true);
    DetectPatternsInto(text, &pb, false);
    ASSERT_EQ(pa.size(), pb.size()) << "text='" << text << "'";
    for (size_t i = 0; i < pa.size(); ++i) {
      ASSERT_EQ(pa[i].begin, pb[i].begin);
      ASSERT_EQ(pa[i].end, pb[i].end);
      ASSERT_EQ(pa[i].text, pb[i].text);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectorSignatureSweep,
                         ::testing::Values(19u, 43u, 67u));

TEST(ShardedEdgeCases, DuplicateExternalIdsAcrossShardsAreRejected) {
  std::vector<std::unique_ptr<InvertedIndex>> shards;
  for (int s = 0; s < 2; ++s) {
    auto shard = std::make_unique<InvertedIndex>();
    Document doc;
    doc.id = 42;  // Same external id in both shards.
    doc.text = "duplicate";
    shard->Add(std::move(doc));
    shard->Finalize();
    shards.push_back(std::move(shard));
  }
  EXPECT_FALSE(ShardedIndex::FromShards(std::move(shards)).ok());
}

}  // namespace
}  // namespace ckr
