// Tests for sense disambiguation (the paper's "jaguar" case).
#include <gtest/gtest.h>

#include "detect/disambiguator.h"
#include "detect/entity_detector.h"
#include "text/tokenizer.h"

namespace ckr {
namespace {

SenseDisambiguator MakeJaguar() {
  SenseDisambiguator d;
  Sense animal;
  animal.type = EntityType::kAnimal;
  animal.subtype = 0;
  animal.profile = {"jungle", "predator", "cat", "wildlife", "prey"};
  Sense car;
  car.type = EntityType::kProduct;
  car.subtype = 1;
  car.profile = {"engine", "sedan", "luxury", "dealership", "horsepower"};
  d.AddSense("jaguar", animal);
  d.AddSense("jaguar", car);
  return d;
}

TEST(DisambiguatorTest, ResolvesByContext) {
  SenseDisambiguator d = MakeJaguar();
  EXPECT_TRUE(d.HasSenses("Jaguar"));
  EXPECT_FALSE(d.HasSenses("tiger"));
  EXPECT_EQ(d.NumAmbiguousKeys(), 1u);

  auto animal_ctx = TokenizeToStrings(
      "deep in the jungle the jaguar stalked its prey at night");
  auto car_ctx = TokenizeToStrings(
      "the new jaguar sedan has a quiet engine and luxury seats");
  size_t pos_a = 5, pos_c = 2;  // Token index of "jaguar" in each.
  const Sense* sa = d.Resolve("jaguar", animal_ctx, pos_a, pos_a + 1);
  const Sense* sc = d.Resolve("jaguar", car_ctx, pos_c, pos_c + 1);
  ASSERT_NE(sa, nullptr);
  ASSERT_NE(sc, nullptr);
  EXPECT_EQ(sa->type, EntityType::kAnimal);
  EXPECT_EQ(sc->type, EntityType::kProduct);
}

TEST(DisambiguatorTest, TieFallsBackToPrimarySense) {
  SenseDisambiguator d = MakeJaguar();
  auto neutral = TokenizeToStrings("the jaguar was mentioned briefly today");
  const Sense* s = d.Resolve("jaguar", neutral, 1, 2);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->type, EntityType::kAnimal);  // First registered sense.
}

TEST(DisambiguatorTest, UnknownKeyReturnsNull) {
  SenseDisambiguator d = MakeJaguar();
  auto ctx = TokenizeToStrings("some text");
  EXPECT_EQ(d.Resolve("tiger", ctx, 0, 1), nullptr);
}

TEST(DisambiguatorTest, WindowBoundsRespected) {
  SenseDisambiguator d = MakeJaguar();
  // The car cue is 30 tokens away: outside a 5-token window.
  std::vector<std::string> far_ctx;
  far_ctx.push_back("jaguar");
  for (int i = 0; i < 29; ++i) far_ctx.push_back("filler");
  far_ctx.push_back("engine");
  const Sense* s = d.Resolve("jaguar", far_ctx, 0, 1, /*window_tokens=*/5);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->type, EntityType::kAnimal);  // Cue unseen -> primary.
  const Sense* wide = d.Resolve("jaguar", far_ctx, 0, 1, /*window_tokens=*/40);
  EXPECT_EQ(wide->type, EntityType::kProduct);  // Cue seen.
}

TEST(DisambiguatorTest, MentionTokensDoNotSelfVote) {
  SenseDisambiguator d;
  Sense self;
  self.type = EntityType::kPlace;
  self.profile = {"paris"};  // Profile equals the mention itself.
  Sense other;
  other.type = EntityType::kPerson;
  other.profile = {"hilton"};
  d.AddSense("paris", self);
  d.AddSense("paris", other);
  auto ctx = TokenizeToStrings("socialite paris hilton arrived");
  const Sense* s = d.Resolve("paris", ctx, 1, 2);
  ASSERT_NE(s, nullptr);
  // "paris" inside the mention does not count; "hilton" next to it does.
  EXPECT_EQ(s->type, EntityType::kPerson);
}

TEST(DetectorDisambiguationTest, EndToEndTypeOverride) {
  std::vector<EntityDetector::DictionaryEntry> dict = {
      {"jaguar", EntityType::kAnimal, 0},
  };
  EntityDetector detector(dict, nullptr, {});
  SenseDisambiguator d = MakeJaguar();
  detector.SetDisambiguator(&d);

  auto dets =
      detector.Detect("The Jaguar dealership sells a luxury sedan model.");
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_EQ(dets[0].key, "jaguar");
  EXPECT_EQ(dets[0].type, EntityType::kProduct);

  auto dets2 = detector.Detect("A jaguar is a large predator of the jungle.");
  ASSERT_EQ(dets2.size(), 1u);
  EXPECT_EQ(dets2[0].type, EntityType::kAnimal);

  detector.SetDisambiguator(nullptr);
  auto dets3 =
      detector.Detect("The Jaguar dealership sells a luxury sedan model.");
  ASSERT_EQ(dets3.size(), 1u);
  EXPECT_EQ(dets3[0].type, EntityType::kAnimal);  // Dictionary default.
}

}  // namespace
}  // namespace ckr
