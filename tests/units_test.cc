// Unit tests for ckr_units: iterative MI-validated unit extraction.
#include <gtest/gtest.h>

#include "corpus/world.h"
#include "querylog/query_generator.h"
#include "units/unit_extractor.h"

namespace ckr {
namespace {

TEST(UnitDictionaryTest, AddFindScore) {
  UnitDictionary dict;
  dict.Add({"tom cruise", 2, 70, 3.0, 0.9});
  dict.Add({"tom", 1, 75, 0.0, 0.4});
  EXPECT_EQ(dict.size(), 2u);
  ASSERT_NE(dict.Find("tom cruise"), nullptr);
  EXPECT_EQ(dict.Find("tom cruise")->num_terms, 2);
  EXPECT_DOUBLE_EQ(dict.UnitScore("tom cruise"), 0.9);
  EXPECT_DOUBLE_EQ(dict.UnitScore("nope"), 0.0);
  EXPECT_TRUE(dict.Contains("tom"));
  EXPECT_EQ(dict.MultiTermUnits().size(), 1u);
}

TEST(UnitDictionaryTest, DuplicateAddReplaces) {
  UnitDictionary dict;
  dict.Add({"x y", 2, 10, 1.0, 0.5});
  dict.Add({"x y", 2, 20, 2.0, 0.8});
  EXPECT_EQ(dict.size(), 1u);
  EXPECT_DOUBLE_EQ(dict.UnitScore("x y"), 0.8);
}

TEST(UnitExtractorTest, RequiresFinalizedLog) {
  QueryLog log;
  log.AddQuery("a b", 10);
  UnitExtractor extractor;
  auto result = extractor.Extract(log);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(UnitExtractorTest, ExtractsCohesivePair) {
  QueryLog log;
  // "alpha bravo" always co-occur; "alpha" and "noise" never do.
  log.AddQuery("alpha bravo", 40);
  log.AddQuery("alpha bravo charlie", 10);
  log.AddQuery("noise", 30);
  log.AddQuery("charlie", 20);
  log.Finalize();
  UnitExtractorConfig cfg;
  cfg.min_term_freq = 2;
  cfg.min_unit_freq = 2;
  cfg.mi_threshold = 0.2;
  auto dict_or = UnitExtractor(cfg).Extract(log);
  ASSERT_TRUE(dict_or.ok());
  const UnitDictionary& dict = *dict_or;
  EXPECT_TRUE(dict.Contains("alpha bravo"));
  const UnitInfo* u = dict.Find("alpha bravo");
  EXPECT_EQ(u->num_terms, 2);
  EXPECT_EQ(u->freq, 50u);
  EXPECT_GT(u->raw_mi, 0.0);
  EXPECT_FALSE(dict.Contains("bravo charlie") &&
               dict.Find("bravo charlie")->raw_mi >
                   dict.Find("alpha bravo")->raw_mi);
}

TEST(UnitExtractorTest, RareCooccurrenceRejectedByFrequency) {
  QueryLog log;
  log.AddQuery("delta echo", 1);  // Below min_unit_freq.
  log.AddQuery("delta", 30);
  log.AddQuery("echo", 30);
  log.Finalize();
  UnitExtractorConfig cfg;
  cfg.min_term_freq = 2;
  cfg.min_unit_freq = 3;
  cfg.mi_threshold = 0.0;
  auto dict_or = UnitExtractor(cfg).Extract(log);
  ASSERT_TRUE(dict_or.ok());
  EXPECT_FALSE(dict_or->Contains("delta echo"));
}

TEST(UnitExtractorTest, IndependentTermsRejectedByMi) {
  QueryLog log;
  // "x" and "y" co-occur at chance level given their high frequencies.
  log.AddQuery("x y", 10);
  log.AddQuery("x", 500);
  log.AddQuery("y", 500);
  log.Finalize();
  UnitExtractorConfig cfg;
  cfg.min_term_freq = 2;
  cfg.min_unit_freq = 2;
  cfg.mi_threshold = 1.5;
  auto dict_or = UnitExtractor(cfg).Extract(log);
  ASSERT_TRUE(dict_or.ok());
  EXPECT_FALSE(dict_or->Contains("x y"));
}

TEST(UnitExtractorTest, IterativeGrowthToTrigram) {
  QueryLog log;
  log.AddQuery("new york city", 50);
  log.AddQuery("new york", 30);
  log.AddQuery("city", 20);
  log.AddQuery("background", 40);
  log.Finalize();
  UnitExtractorConfig cfg;
  cfg.min_term_freq = 2;
  cfg.min_unit_freq = 2;
  cfg.mi_threshold = 0.1;
  auto dict_or = UnitExtractor(cfg).Extract(log);
  ASSERT_TRUE(dict_or.ok());
  EXPECT_TRUE(dict_or->Contains("new york"));
  EXPECT_TRUE(dict_or->Contains("new york city"));
  const UnitInfo* tri = dict_or->Find("new york city");
  EXPECT_EQ(tri->num_terms, 3);
}

TEST(UnitExtractorTest, ScoresAreNormalized) {
  QueryLog log;
  log.AddQuery("a b", 40);
  log.AddQuery("c d", 15);
  log.AddQuery("filler words here", 60);
  log.Finalize();
  UnitExtractorConfig cfg;
  cfg.min_term_freq = 2;
  cfg.min_unit_freq = 2;
  cfg.mi_threshold = 0.0;
  auto dict_or = UnitExtractor(cfg).Extract(log);
  ASSERT_TRUE(dict_or.ok());
  for (const UnitInfo& u : dict_or->units()) {
    EXPECT_GE(u.score, 0.0) << u.phrase;
    EXPECT_LE(u.score, 1.0) << u.phrase;
  }
}

TEST(UnitExtractorTest, RecoversWorldConceptsFromTraffic) {
  // End-to-end property: multi-term world concepts with real query demand
  // are recovered as units.
  WorldConfig wcfg;
  wcfg.num_topics = 6;
  wcfg.background_vocab = 600;
  wcfg.words_per_topic = 40;
  wcfg.num_named_entities = 120;
  wcfg.num_concepts = 80;
  wcfg.num_generic_concepts = 10;
  auto world_or = World::Create(wcfg);
  ASSERT_TRUE(world_or.ok());
  QueryGeneratorConfig qcfg;
  qcfg.num_submissions = 40000;
  QueryLog log = QueryGenerator(**world_or, qcfg).Generate();
  UnitExtractorConfig ucfg;
  ucfg.min_term_freq = 3;
  ucfg.min_unit_freq = 3;
  auto dict_or = UnitExtractor(ucfg).Extract(log);
  ASSERT_TRUE(dict_or.ok());

  size_t multi_total = 0, recovered = 0;
  double pop_threshold = 0.4;
  for (const Entity& e : (*world_or)->entities()) {
    if (e.TermCount() < 2 || e.popularity < pop_threshold) continue;
    ++multi_total;
    if (dict_or->Contains(e.key)) ++recovered;
  }
  ASSERT_GT(multi_total, 20u);
  // Popular multi-term entities should be recovered at a high rate.
  EXPECT_GT(static_cast<double>(recovered) / static_cast<double>(multi_total),
            0.85);
}

}  // namespace
}  // namespace ckr
