// Integration tests for ckr_core: the full pipeline, dataset construction,
// the experiment runner, and the end-to-end ContextualRanker.
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "core/contextual_ranker.h"
#include "core/dataset.h"
#include "core/experiment.h"
#include "core/pipeline.h"
#include "corpus/doc_generator.h"

namespace ckr {
namespace {

// One shared small pipeline + dataset for the whole file.
class CoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto p = Pipeline::Build(PipelineConfig::SmallForTests());
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    pipeline_ = p->release();
    DatasetBuilder builder(*pipeline_, DatasetConfig{});
    auto ds = builder.Build();
    ASSERT_TRUE(ds.ok()) << ds.status().ToString();
    dataset_ = new ClickDataset(std::move(*ds));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete pipeline_;
    pipeline_ = nullptr;
    dataset_ = nullptr;
  }

  static Pipeline* pipeline_;
  static ClickDataset* dataset_;
};

Pipeline* CoreTest::pipeline_ = nullptr;
ClickDataset* CoreTest::dataset_ = nullptr;

TEST_F(CoreTest, PipelineComponentsAreWired) {
  EXPECT_GT(pipeline_->world().NumEntities(), 200u);
  EXPECT_EQ(pipeline_->web_corpus().size(),
            pipeline_->config().world.num_web_docs);
  EXPECT_TRUE(pipeline_->index().finalized());
  EXPECT_TRUE(pipeline_->query_log().finalized());
  EXPECT_GT(pipeline_->units().size(), 100u);
  EXPECT_GT(pipeline_->wiki().NumArticles(), 20u);
  EXPECT_GT(pipeline_->detector().NumDictionaryEntries(), 100u);
  EXPECT_GT(pipeline_->term_dictionary().NumDocs(), 0u);
  EXPECT_GT(pipeline_->stemmed_term_dictionary().NumTerms(), 0u);
}

TEST_F(CoreTest, PipelineRejectsBadConfig) {
  PipelineConfig cfg = PipelineConfig::SmallForTests();
  cfg.world.num_topics = 0;
  EXPECT_FALSE(Pipeline::Build(cfg).ok());
}

TEST_F(CoreTest, DatasetShape) {
  const ClickDataset& ds = *dataset_;
  EXPECT_GT(ds.surviving_stories.size(), 20u);
  EXPECT_GT(ds.num_windows, 20u);
  EXPECT_GT(ds.instances.size(), 100u);
  EXPECT_GT(ds.total_clicks, 100u);
  EXPECT_GT(ds.num_distinct_concepts, 50u);
  EXPECT_EQ(ds.story_fold.size(), ds.surviving_stories.size());
  // The production annotation cut holds per story.
  std::unordered_map<uint32_t, std::unordered_set<std::string>> per_story;
  for (const WindowInstance& inst : ds.instances) {
    per_story[inst.story_index].insert(inst.key);
  }
  for (const auto& [story, keys] : per_story) {
    EXPECT_LE(keys.size(), DatasetConfig{}.max_annotations_per_story);
  }
}

TEST_F(CoreTest, InstancesCarryFeaturesAndLabels) {
  for (const WindowInstance& inst : dataset_->instances) {
    EXPECT_FALSE(inst.key.empty());
    EXPECT_GE(inst.ctr, 0.0);
    EXPECT_LE(inst.ctr, 1.0);
    EXPECT_GE(inst.baseline_score, 0.0);
    for (double r : inst.relevance) EXPECT_GE(r, 0.0);
    EXPECT_GE(inst.views, ReportFilter{}.min_views);
  }
}

TEST_F(CoreTest, WindowsHaveAtLeastTwoInstances) {
  for (const auto& group : dataset_->GroupByWindow()) {
    EXPECT_GE(group.size(), 2u);
  }
}

TEST_F(CoreTest, ExperimentOrderingMatchesPaper) {
  ExperimentRunner runner(*dataset_);
  EvalResult random = runner.EvaluateRandom();
  EvalResult baseline = runner.EvaluateBaseline();
  EvalResult relevance =
      runner.EvaluateRelevanceOnly(RelevanceResource::kSnippets);
  ModelSpec combined;
  combined.include_relevance = true;
  auto combined_or = runner.EvaluateModelCV(combined);
  ASSERT_TRUE(combined_or.ok()) << combined_or.status().ToString();

  // The paper's qualitative ordering (Table V): random worst, baseline
  // clearly better, the combined learned model best.
  EXPECT_NEAR(random.weighted_error_rate, 0.5, 0.06);
  EXPECT_LT(baseline.weighted_error_rate, random.weighted_error_rate - 0.03);
  EXPECT_LT(combined_or->weighted_error_rate,
            baseline.weighted_error_rate - 0.03);
  EXPECT_LT(combined_or->weighted_error_rate,
            relevance.weighted_error_rate + 0.02);
  // NDCG mirrors the error ordering (Figures 1-3): combined beats random
  // at every cutoff.
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_GT(combined_or->ndcg[k], random.ndcg[k]);
  }
}

TEST_F(CoreTest, AblationDegradesButStaysUseful) {
  ExperimentRunner runner(*dataset_);
  ModelSpec full;
  auto full_or = runner.EvaluateModelCV(full);
  ASSERT_TRUE(full_or.ok());
  ModelSpec no_logs;
  no_logs.group_mask = MaskWithout(FeatureGroup::kQueryLogs);
  auto no_logs_or = runner.EvaluateModelCV(no_logs);
  ASSERT_TRUE(no_logs_or.ok());
  // Dropping the strongest group should not *improve* things materially
  // (generous tolerance: the reduced test scale is noisy).
  EXPECT_GT(no_logs_or->weighted_error_rate,
            full_or->weighted_error_rate - 0.05);
}

TEST_F(CoreTest, TrainFullModelProducesServingScores) {
  ExperimentRunner runner(*dataset_);
  ModelSpec spec;
  spec.include_relevance = true;
  auto model_or = runner.TrainFullModel(spec);
  ASSERT_TRUE(model_or.ok());
  const WindowInstance& inst = dataset_->instances.front();
  double s = model_or->Score(ExperimentRunner::Features(inst, spec));
  EXPECT_TRUE(std::isfinite(s));
}

TEST(ContextualRankerTest, EndToEndTrainAndRank) {
  ContextualRankerOptions options;
  options.pipeline = PipelineConfig::SmallForTests();
  auto ranker_or = ContextualRanker::Train(options);
  ASSERT_TRUE(ranker_or.ok()) << ranker_or.status().ToString();
  const ContextualRanker& ranker = **ranker_or;

  EXPECT_GT(ranker.interestingness_store().NumConcepts(), 200u);
  EXPECT_GT(ranker.relevance_store().NumConcepts(), 200u);
  EXPECT_FALSE(ranker.tid_table().overflowed());

  // Rank a held-out story; scores must be sorted and keys unique.
  DocGenerator gen(ranker.pipeline().world());
  Document story = gen.Generate(Document::Kind::kNews, 424242);
  auto ranked = ranker.Rank(story.text);
  ASSERT_GT(ranked.size(), 2u);
  std::unordered_set<std::string> keys;
  for (size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_TRUE(keys.insert(ranked[i].key).second);
    if (i > 0) {
      EXPECT_GE(ranked[i - 1].score, ranked[i].score);
    }
    EXPECT_NE(ranked[i].type, EntityType::kPattern);
  }

  // top_n truncation.
  auto top3 = ranker.Rank(story.text, 3);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_EQ(top3[0].key, ranked[0].key);

  // Stats accumulated across the two calls.
  EXPECT_EQ(ranker.stats().documents, 2u);
  EXPECT_GT(ranker.stats().bytes_processed, story.text.size());
}

TEST(ContextualRankerTest, RankedTopBeatsBottomInLatentQuality) {
  ContextualRankerOptions options;
  options.pipeline = PipelineConfig::SmallForTests();
  auto ranker_or = ContextualRanker::Train(options);
  ASSERT_TRUE(ranker_or.ok());
  const ContextualRanker& ranker = **ranker_or;
  const World& world = ranker.pipeline().world();
  DocGenerator gen(world);

  double top_quality = 0, bottom_quality = 0;
  size_t n = 0;
  for (DocId id = 500000; id < 500040; ++id) {
    Document story = gen.Generate(Document::Kind::kNews, id);
    auto ranked = ranker.Rank(story.text);
    if (ranked.size() < 4) continue;
    auto quality = [&](const RankedAnnotation& a) {
      EntityId eid = world.FindByKey(a.key);
      if (eid == kInvalidEntity) return 0.0;
      double g = world.entity(eid).interestingness;
      double r = story.TruthRelevance(eid);
      return 0.45 * r + 0.3 * g + 0.25 * r * g;
    };
    top_quality += quality(ranked.front());
    bottom_quality += quality(ranked.back());
    ++n;
  }
  ASSERT_GT(n, 10u);
  EXPECT_GT(top_quality / static_cast<double>(n),
            bottom_quality / static_cast<double>(n) + 0.1);
}

}  // namespace
}  // namespace ckr
